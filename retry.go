package crac

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"time"
)

// RetryPolicy bounds the exponential-backoff retry loop WithRetry adds
// around transient store failures.
type RetryPolicy struct {
	// MaxAttempts caps the total tries (first attempt included);
	// values below 1 mean 1 — no retries.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter in [0, 1] randomizes each delay by ±Jitter of itself, so
	// concurrent retriers decorrelate.
	Jitter float64
	// Classify overrides the retryable-error predicate (default:
	// Transient).
	Classify func(error) bool

	// sleep is a test seam; nil uses a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy returns the policy WithRetry and Supervisor use
// when handed a zero policy: 4 attempts, 10ms base delay doubling to
// at most 1s, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts == 0 && p.BaseDelay == 0 && p.MaxDelay == 0 && p.Multiplier == 0 {
		classify, sleep := p.Classify, p.sleep
		p = DefaultRetryPolicy()
		p.Classify, p.sleep = classify, sleep
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier < 1 {
		p.Multiplier = 1
	}
	if p.Classify == nil {
		p.Classify = Transient
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// delay returns the backoff before retry attempt (1-based retry
// index), jittered.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	return time.Duration(d)
}

// run executes op up to MaxAttempts times, sleeping the backoff between
// attempts, until op succeeds, fails non-transiently, or ctx ends.
func (p RetryPolicy) run(ctx context.Context, op func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || attempt >= p.MaxAttempts || !p.Classify(err) {
			return err
		}
		if serr := p.sleep(ctx, p.delay(attempt)); serr != nil {
			return err // ctx ended: report the op's error, not the sleep's
		}
	}
}

// WithRetry wraps store so every operation retries on transient
// failures (classified by policy.Classify, default Transient) with
// bounded exponential backoff and jitter. A zero policy means
// DefaultRetryPolicy.
//
// Only idempotent halves are retried. Put's write callback runs
// exactly once, into a staging buffer; the retries reissue only the
// buffered commit, so a flaky store never re-drives the checkpoint
// pipeline (whose plugin hooks are not idempotent). Delete treats
// ErrImageNotFound on a retry as success — the previous attempt may
// have deleted the image before its acknowledgment was lost. Context
// cancellation is never retried.
//
// The wrapper preserves the RandomAccessStore capability of the
// underlying store: the returned Store also implements GetAt (with
// retry on open) exactly when store does.
func WithRetry(store Store, policy RetryPolicy) Store {
	p := policy.normalized()
	rs := &retryStore{inner: store, policy: p}
	if _, ok := store.(RandomAccessStore); ok {
		return &retryStoreRA{retryStore: rs}
	}
	return rs
}

type retryStore struct {
	inner  Store
	policy RetryPolicy
}

func (s *retryStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	// Stage once: the checkpoint pipeline behind write must not run
	// twice (plugin hooks, epoch cuts, and delta bookkeeping are not
	// idempotent). Only the buffered bytes are retried.
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	b := buf.Bytes()
	return s.policy.run(ctx, func() error {
		return s.inner.Put(ctx, name, func(w io.Writer) error {
			_, err := w.Write(b)
			return err
		})
	})
}

func (s *retryStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := s.policy.run(ctx, func() error {
		var err error
		rc, err = s.inner.Get(ctx, name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rc, nil
}

func (s *retryStore) List(ctx context.Context) ([]string, error) {
	var names []string
	err := s.policy.run(ctx, func() error {
		var err error
		names, err = s.inner.List(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

func (s *retryStore) Delete(ctx context.Context, name string) error {
	attempt := 0
	return s.policy.run(ctx, func() error {
		attempt++
		err := s.inner.Delete(ctx, name)
		if err != nil && attempt > 1 && errors.Is(err, ErrImageNotFound) {
			// An earlier attempt may have deleted the image before its
			// acknowledgment was lost: the goal state holds.
			return nil
		}
		return err
	})
}

// SingleImage passes the one-slot property through (see
// SingleImageStore).
func (s *retryStore) SingleImage() bool { return singleImageStore(s.inner) }

// Unwrap returns the underlying store.
func (s *retryStore) Unwrap() Store { return s.inner }

// retryStoreRA adds the RandomAccessStore capability when the wrapped
// store has it.
type retryStoreRA struct{ *retryStore }

func (s *retryStoreRA) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	ras := s.inner.(RandomAccessStore)
	var rc ReaderAtCloser
	var size int64
	err := s.policy.run(ctx, func() error {
		var err error
		rc, size, err = ras.GetAt(ctx, name)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return rc, size, nil
}

var (
	_ Store             = (*retryStore)(nil)
	_ RandomAccessStore = (*retryStoreRA)(nil)
)
