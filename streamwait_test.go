package crac

import (
	"context"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/proxy"
	"repro/internal/trace"
)

// waitEventRig runs a cross-stream dependency through any binding:
// stream A records an event after writing a value; stream B waits on the
// event and then doubles it. The result proves B observed A's write.
func waitEventRig(t *testing.T, rt crt.Runtime) {
	t.Helper()
	fat, err := rt.RegisterFatBinary("sync-test")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFunction(fat, "set", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		ctx.Float32s(args[0], 1)[0] = 21
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFunction(fat, "double", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		ctx.Float32s(args[0], 1)[0] *= 2
	}); err != nil {
		t.Fatal(err)
	}
	d, err := rt.Malloc(4)
	if err != nil {
		t.Fatal(err)
	}
	sA, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	sB, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := rt.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
	if err := rt.LaunchKernel(fat, "set", one, sA, uint64(d)); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventRecord(ev, sA); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamWaitEvent(sB, ev); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchKernel(fat, "double", one, sB, uint64(d)); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	host, err := rt.AppAlloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(host, d, 4, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	v, err := crt.HostF32(rt, host, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 42 {
		t.Fatalf("cross-stream dependency violated: got %v, want 42", v[0])
	}
}

func TestStreamWaitEventAcrossBindings(t *testing.T) {
	t.Run("native", func(t *testing.T) {
		rt, err := NewNative()
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		waitEventRig(t, rt)
	})
	t.Run("crac", func(t *testing.T) {
		s, err := NewSession(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		waitEventRig(t, s.Runtime())
	})
	t.Run("proxy", func(t *testing.T) {
		rt, err := proxy.New(proxy.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		waitEventRig(t, rt)
	})
	t.Run("traced", func(t *testing.T) {
		rt, err := NewNative()
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		waitEventRig(t, trace.New(rt))
	})
}

func TestStreamWaitEventSurvivesRestart(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Build the dependency after a checkpoint/restart cycle: the
	// recreated streams and events must still support WaitEvent.
	rt := s.Runtime()
	if _, err := rt.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	img := checkpointToBuffer(t, s)
	if err := s.Restart(context.Background(), img); err != nil {
		t.Fatal(err)
	}
	waitEventRig(t, rt)
}

func TestMemGetInfo(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	free0, total, err := rt.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if total != gpusim.TeslaV100().GlobalMemBytes || free0 != total {
		t.Fatalf("fresh device: free=%d total=%d", free0, total)
	}
	const sz = 8 << 20
	d, err := rt.Malloc(sz)
	if err != nil {
		t.Fatal(err)
	}
	free1, _, err := rt.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if free0-free1 < sz {
		t.Fatalf("free dropped by %d, want >= %d", free0-free1, uint64(sz))
	}
	if err := rt.Free(d); err != nil {
		t.Fatal(err)
	}
	free2, _, err := rt.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if free2 != free0 {
		t.Fatalf("free not restored after cudaFree: %d vs %d", free2, free0)
	}
	// And after a restart, the replayed allocation state matches.
	if _, err := rt.Malloc(sz); err != nil {
		t.Fatal(err)
	}
	before, _, _ := rt.MemGetInfo()
	img := checkpointToBuffer(t, s)
	if err := s.Restart(context.Background(), img); err != nil {
		t.Fatal(err)
	}
	after, _, err := rt.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("MemGetInfo changed across restart: %d vs %d", before, after)
	}
}
