package crac

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"testing"
	"time"
)

// cancelAfterWriter cancels a context once n bytes have passed through,
// so the checkpoint is guaranteed to be cut off strictly mid-image.
type cancelAfterWriter struct {
	w      io.Writer
	left   int
	cancel context.CancelFunc
}

func (cw *cancelAfterWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if cw.left > 0 {
		cw.left -= n
		if cw.left <= 0 {
			cw.cancel()
		}
	}
	return n, err
}

// cancelAfterStore wraps a DirStore so the image stream triggers the
// cancellation after a fixed byte count.
type cancelAfterStore struct {
	*DirStore
	after  int
	cancel context.CancelFunc
}

func (cs *cancelAfterStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	return cs.DirStore.Put(ctx, name, func(w io.Writer) error {
		return write(&cancelAfterWriter{w: w, left: cs.after, cancel: cs.cancel})
	})
}

// bigSession builds a session with enough active device memory that an
// image write spans many shards.
func bigSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	rt := s.Runtime()
	for i := 0; i < 8; i++ {
		if _, err := rt.Malloc(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestCheckpointCancelledMidPipeline is the cancellation contract in
// one test: a checkpoint cancelled mid-stream returns ErrCancelled
// (wrapping context.Canceled), leaves no partial image and no temp file
// in the DirStore, and the session remains fully usable — the next
// checkpoint and a restart from it succeed.
func TestCheckpointCancelledMidPipeline(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			s := bigSession(t, WithWorkers(workers), WithShardSize(64<<10))
			dir := t.TempDir()
			ds, err := NewDirStore(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			store := &cancelAfterStore{DirStore: ds, after: 256 << 10, cancel: cancel}

			_, err = s.CheckpointTo(ctx, store, "doomed")
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("cancelled CheckpointTo = %v, want ErrCancelled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled CheckpointTo = %v, want to wrap context.Canceled", err)
			}

			// No partial image became visible, and the temp file is gone.
			if names, err := ds.List(context.Background()); err != nil || len(names) != 0 {
				t.Fatalf("List after cancelled checkpoint = %v, %v", names, err)
			}
			if entries, _ := os.ReadDir(dir); len(entries) != 0 {
				t.Fatalf("cancelled checkpoint left files behind: %v", entries)
			}

			// The session keeps working: checkpoint again, restart from it.
			if _, err := s.CheckpointTo(context.Background(), ds, "gen0"); err != nil {
				t.Fatalf("checkpoint after cancellation: %v", err)
			}
			if err := s.RestartFrom(context.Background(), ds, "gen0"); err != nil {
				t.Fatalf("restart after cancellation: %v", err)
			}
			if s.Generation() != 1 {
				t.Fatalf("Generation = %d, want 1", s.Generation())
			}
		})
	}
}

// TestCheckpointDeadlineExceeded drives the deadline (rather than
// explicit-cancel) flavor through the parallel pipeline: an expired
// deadline surfaces as ErrCancelled and wraps
// context.DeadlineExceeded.
func TestCheckpointDeadlineExceeded(t *testing.T) {
	s := bigSession(t, WithWorkers(4), WithShardSize(64<<10))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var img bytes.Buffer
	_, err := s.Checkpoint(ctx, &img)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("deadline Checkpoint = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Checkpoint = %v, want to wrap DeadlineExceeded", err)
	}
	// Still usable afterwards.
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatalf("checkpoint after deadline abort: %v", err)
	}
}

// TestRestoreCancelled checks the restore path classifies cancellation
// the same way.
func TestRestoreCancelled(t *testing.T) {
	s := bigSession(t, WithWorkers(4))
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Restore(ctx, bytes.NewReader(img.Bytes()))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled Restore = %v, want ErrCancelled", err)
	}
}
