package crac

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/crt"
	"repro/internal/faults"
)

// svFixture is a supervisor over sessions holding one device buffer,
// with helpers to mutate and read it back.
type svFixture struct {
	t     *testing.T
	sv    *Supervisor
	store Store
	inj   *faults.Injector
	probe uint64 // device buffer (address stable: no ASLR)
	host  uint64 // pinned readback buffer
	n     uint64
}

func newSVFixture(t *testing.T, store Store, inj *faults.Injector, events *[]SupervisorEvent) *svFixture {
	t.Helper()
	f := &svFixture{t: t, store: store, inj: inj, n: 128 << 10}
	factory := func() (*Session, error) {
		s, err := New(WithWorkers(0), WithShardSize(64<<10))
		if err != nil {
			return nil, err
		}
		rt := s.Runtime()
		d, err := rt.Malloc(f.n)
		if err != nil {
			s.Close()
			return nil, err
		}
		h, err := rt.AppAlloc(f.n)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := rt.Memset(d, 0, f.n); err != nil {
			s.Close()
			return nil, err
		}
		f.probe, f.host = d, h
		return s, nil
	}
	sv, err := NewSupervisor(SupervisorConfig{
		Factory: factory,
		Store:   store,
		Prefix:  "g",
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2},
		OnEvent: func(ev SupervisorEvent) {
			if events != nil {
				*events = append(*events, ev)
			}
		},
	})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	t.Cleanup(sv.Close)
	f.sv = sv
	return f
}

func (f *svFixture) mutate(v byte) {
	f.t.Helper()
	if err := f.sv.Session().Runtime().Memset(f.probe, v, f.n); err != nil {
		f.t.Fatalf("Memset: %v", err)
	}
}

// readback returns the first word of the device buffer via the current
// session.
func (f *svFixture) readback() uint32 {
	f.t.Helper()
	rt := f.sv.Session().Runtime()
	if err := rt.Memcpy(f.host, f.probe, 4, crt.MemcpyDeviceToHost); err != nil {
		f.t.Fatalf("Memcpy: %v", err)
	}
	w, err := crt.HostU32(rt, f.host, 1)
	if err != nil {
		f.t.Fatalf("HostU32: %v", err)
	}
	return w[0]
}

func (f *svFixture) kill() {
	f.sv.Session().Close()
	f.sv.ReportFailure(errors.New("injected kill"))
}

func word(v byte) uint32 {
	return uint32(v) | uint32(v)<<8 | uint32(v)<<16 | uint32(v)<<24
}

func TestSupervisorRecoversFromNewestImage(t *testing.T) {
	ctx := context.Background()
	f := newSVFixture(t, NewMemStore(), nil, nil)

	f.mutate(0x11)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.mutate(0x22)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.mutate(0x33) // never checkpointed: must be lost on recovery
	old := f.sv.Session()
	f.kill()
	if err := f.sv.Recover(ctx); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.sv.Session() == old {
		t.Fatal("recovery kept the dead session")
	}
	if got := f.readback(); got != word(0x22) {
		t.Fatalf("recovered state = %#x, want %#x (newest checkpoint)", got, word(0x22))
	}
	st := f.sv.Stats()
	if st.Recoveries != 1 || st.Failures != 1 || st.ColdStarts != 0 {
		t.Fatalf("stats = %+v, want 1 recovery from 1 failure", st)
	}
	if st.LastRecoveredFrom != "g000001" {
		t.Fatalf("LastRecoveredFrom = %q, want g000001", st.LastRecoveredFrom)
	}
	if st.LastMTTR <= 0 || st.TotalMTTR < st.LastMTTR {
		t.Fatalf("MTTR accounting broken: %+v", st)
	}
}

func TestSupervisorFallsBackPastCorruptTip(t *testing.T) {
	ctx := context.Background()
	var events []SupervisorEvent
	store := NewMemStore()
	inj := faults.New(faults.Config{Seed: 5})
	fstore := NewFaultStore(store, inj)
	f := newSVFixture(t, fstore, inj, &events)

	f.mutate(0x44)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f.mutate(0x55)
	inj.FailNext(faults.OpPut, faults.KindBitFlip) // tip commits corrupted
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint (flipped): %v", err)
	}
	f.kill()
	if err := f.sv.Recover(ctx); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.readback(); got != word(0x44) {
		t.Fatalf("recovered state = %#x, want %#x (intact predecessor)", got, word(0x44))
	}
	st := f.sv.Stats()
	if st.LastRecoveredFrom != "g000000" {
		t.Fatalf("LastRecoveredFrom = %q, want g000000 (fallback)", st.LastRecoveredFrom)
	}
	var skips int
	for _, ev := range events {
		if ev.Kind == "verify-skip" {
			if ev.Name != "g000001" {
				t.Errorf("verify-skip on %q, want g000001", ev.Name)
			}
			if !errors.Is(ev.Err, ErrCorruptImage) {
				t.Errorf("verify-skip err = %v, want ErrCorruptImage", ev.Err)
			}
			skips++
		}
	}
	if skips != 1 {
		t.Fatalf("%d verify-skip events, want 1", skips)
	}
}

func TestSupervisorColdStartWhenNothingIntact(t *testing.T) {
	ctx := context.Background()
	var events []SupervisorEvent
	f := newSVFixture(t, NewMemStore(), nil, &events)

	f.mutate(0x66)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Corrupt the only image in place.
	corruptStored(t, f.store, "g000000", 0.5)
	f.kill()
	if err := f.sv.Recover(ctx); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.readback(); got != 0 {
		t.Fatalf("cold-started state = %#x, want the factory's zeroed buffer", got)
	}
	st := f.sv.Stats()
	if st.ColdStarts != 1 || st.Recoveries != 0 {
		t.Fatalf("stats = %+v, want a cold start", st)
	}
	var sawCold bool
	for _, ev := range events {
		if ev.Kind == "cold-start" {
			sawCold = true
		}
	}
	if !sawCold {
		t.Fatal("no cold-start event emitted")
	}
}

func TestSupervisorCheckpointRecoversDeadSession(t *testing.T) {
	ctx := context.Background()
	f := newSVFixture(t, NewMemStore(), nil, nil)
	f.mutate(0x77)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// The session dies without ReportFailure; the next Checkpoint finds
	// out, recovers, and reports the checkpoint's failure.
	f.sv.Session().Close()
	if err := f.sv.Checkpoint(ctx); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Checkpoint on dead session = %v, want ErrSessionClosed", err)
	}
	if got := f.readback(); got != word(0x77) {
		t.Fatalf("state after in-checkpoint recovery = %#x, want %#x", got, word(0x77))
	}
	// The supervisor is healthy again: the next checkpoint just works.
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint after recovery: %v", err)
	}
}

func TestSupervisorResumesGenerationNumbering(t *testing.T) {
	ctx := context.Background()
	store := NewMemStore()
	// Pre-existing survivor (plus noise the parser must ignore).
	for _, name := range []string{"g000007", "unrelated", "g000003~quarantined"} {
		if err := store.Put(ctx, name, func(w io.Writer) error {
			_, err := w.Write([]byte("x"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := newSVFixture(t, store, nil, nil)
	f.mutate(0x21)
	if err := f.sv.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := store.Get(ctx, "g000008"); err != nil {
		t.Fatalf("new checkpoint not at g000008 (numbering did not resume): %v", err)
	}
	rc, err := store.Get(ctx, "g000007")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "x" {
		t.Fatal("supervisor overwrote the surviving g000007")
	}
}

func TestSupervisorRunHonorsContext(t *testing.T) {
	f := newSVFixture(t, NewMemStore(), nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := f.sv.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want ctx deadline", err)
	}
}
