package crac

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/faults"
)

// storeFixture builds one Store implementation for the shared
// conformance suite. single marks one-slot stores (FileStore), whose
// List reports a fixed name and whose every Put lands in the same
// place.
type storeFixture struct {
	name   string
	single bool
	build  func(t *testing.T) Store
}

// conformanceFixtures covers every Store the package ships: the local
// file-backed pair, the in-memory store, the fault-injecting wrapper
// (with no faults armed — it must be transparent), the retry wrapper,
// and the HTTP client/server pair over a real loopback listener.
func conformanceFixtures() []storeFixture {
	return []storeFixture{
		{name: "FileStore", single: true, build: func(t *testing.T) Store {
			return NewFileStore(filepath.Join(t.TempDir(), "slot.img"), WithNoSync())
		}},
		{name: "DirStore", build: func(t *testing.T) Store {
			s, err := NewDirStore(t.TempDir(), 0, WithNoSync())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{name: "MemStore", build: func(t *testing.T) Store {
			return NewMemStore()
		}},
		{name: "FaultStore", build: func(t *testing.T) Store {
			// No faults armed: the wrapper must behave exactly like the
			// store it wraps.
			return NewFaultStore(NewMemStore(), faults.New(faults.Config{}))
		}},
		{name: "RetryStore", build: func(t *testing.T) Store {
			return WithRetry(NewMemStore(), DefaultRetryPolicy())
		}},
		{name: "HTTPStore", build: func(t *testing.T) Store {
			srv := httptest.NewServer(ServeStore(NewMemStore()))
			t.Cleanup(srv.Close)
			s, err := NewHTTPStore(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{name: "CASStore", build: func(t *testing.T) Store {
			// Content-addressed dedup over a local backing: entries become
			// manifests + chunks, but the Store contract must be
			// indistinguishable from the backing alone.
			return NewCASStore(NewMemStore())
		}},
		{name: "CASStore-HTTP", build: func(t *testing.T) Store {
			// The deployment shape migration uses: dedup against a remote
			// store, batch-exists across real HTTP.
			srv := httptest.NewServer(ServeStore(NewMemStore()))
			t.Cleanup(srv.Close)
			s, err := NewHTTPStore(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			return NewCASStore(s)
		}},
	}
}

// TestStoreConformance runs every Store implementation through the
// same contract: Put atomicity, round-trips, overwrite, missing-name
// errors, List ordering, ranged GetAt reads, and context cancellation.
func TestStoreConformance(t *testing.T) {
	for _, fx := range conformanceFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { conformRoundTrip(t, fx) })
			t.Run("PutAtomic", func(t *testing.T) { conformPutAtomic(t, fx) })
			t.Run("Missing", func(t *testing.T) { conformMissing(t, fx) })
			t.Run("List", func(t *testing.T) { conformList(t, fx) })
			t.Run("GetAt", func(t *testing.T) { conformGetAt(t, fx) })
			t.Run("Cancelled", func(t *testing.T) { conformCancelled(t, fx) })
			t.Run("Len", func(t *testing.T) { conformLen(t, fx) })
			t.Run("Concurrent", func(t *testing.T) { conformConcurrent(t, fx) })
		})
	}
}

func conformPut(t *testing.T, s Store, name string, data []byte) {
	t.Helper()
	if err := s.Put(context.Background(), name, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		t.Fatalf("Put(%q): %v", name, err)
	}
}

func conformGet(t *testing.T, s Store, name string) []byte {
	t.Helper()
	rc, err := s.Get(context.Background(), name)
	if err != nil {
		t.Fatalf("Get(%q): %v", name, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("reading %q: %v", name, err)
	}
	return data
}

func conformRoundTrip(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	want := bytes.Repeat([]byte("roundtrip"), 1000)
	conformPut(t, s, "img", want)
	if got := conformGet(t, s, "img"); !bytes.Equal(got, want) {
		t.Fatalf("round trip: got %d bytes, want %d", len(got), len(want))
	}
	// Overwrite replaces, never appends.
	conformPut(t, s, "img", []byte("v2"))
	if got := conformGet(t, s, "img"); string(got) != "v2" {
		t.Fatalf("after overwrite: %q, want %q", got, "v2")
	}
	if err := s.Delete(context.Background(), "img"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(context.Background(), "img"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrImageNotFound", err)
	}
}

func conformPutAtomic(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	conformPut(t, s, "img", []byte("intact"))
	boom := errors.New("pipeline failure")
	err := s.Put(context.Background(), "img", func(w io.Writer) error {
		w.Write(bytes.Repeat([]byte("torn"), 4096))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failed Put = %v, want the write error back", err)
	}
	// All-or-nothing: the failed write neither replaced nor destroyed
	// the previous image.
	if got := conformGet(t, s, "img"); string(got) != "intact" {
		t.Fatalf("after failed Put: %q, want previous image intact", got)
	}
	// A failed first write publishes nothing.
	s2 := fx.build(t)
	if err := s2.Put(context.Background(), "fresh", func(w io.Writer) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed Put = %v, want the write error back", err)
	}
	if _, err := s2.Get(context.Background(), "fresh"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get after failed Put = %v, want ErrImageNotFound", err)
	}
}

func conformMissing(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	if _, err := s.Get(context.Background(), "absent"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrImageNotFound", err)
	}
	if err := s.Delete(context.Background(), "absent"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Delete(absent) = %v, want ErrImageNotFound", err)
	}
	if ra, ok := s.(RandomAccessStore); ok {
		if _, _, err := ra.GetAt(context.Background(), "absent"); !errors.Is(err, ErrImageNotFound) {
			t.Fatalf("GetAt(absent) = %v, want ErrImageNotFound", err)
		}
	}
	// Missing-image errors are deterministic, not transient: retrying
	// them would never help.
	if _, err := s.Get(context.Background(), "absent"); Transient(err) {
		t.Fatalf("Get(absent) classified transient: %v", err)
	}
}

func conformList(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	names, err := s.List(context.Background())
	if err != nil {
		t.Fatalf("List on empty store: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("List on empty store = %v", names)
	}
	if fx.single {
		conformPut(t, s, "only", []byte("x"))
		names, err := s.List(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 {
			t.Fatalf("single-slot List = %v, want one name", names)
		}
		return
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		conformPut(t, s, n, []byte(n))
	}
	names, err = s.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("List = %v, want lexical order", names)
	}
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("List = %v, want [alpha mid zeta]", names)
	}
}

func conformGetAt(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	ra, ok := s.(RandomAccessStore)
	if !ok {
		t.Skipf("%s does not implement RandomAccessStore", fx.name)
	}
	data := make([]byte, 100_003) // odd size: exercises the tail read
	for i := range data {
		data[i] = byte(i * 7)
	}
	conformPut(t, s, "img", data)
	src, size, err := ra.GetAt(context.Background(), "img")
	if err != nil {
		t.Fatalf("GetAt: %v", err)
	}
	defer src.Close()
	if size != int64(len(data)) {
		t.Fatalf("GetAt size = %d, want %d", size, len(data))
	}
	reads := []struct{ off, n int }{
		{0, 16},               // head
		{50_000, 4096},        // middle
		{len(data) - 17, 17},  // exact tail
		{len(data) - 100, 99}, // short of the tail
	}
	for _, r := range reads {
		buf := make([]byte, r.n)
		n, err := src.ReadAt(buf, int64(r.off))
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d+%d): %v", r.off, r.n, err)
		}
		if n != r.n || !bytes.Equal(buf[:n], data[r.off:r.off+r.n]) {
			t.Fatalf("ReadAt(%d+%d): wrong bytes (n=%d)", r.off, r.n, n)
		}
	}
	// Reads at or past EOF report io.EOF, not an error.
	if _, err := src.ReadAt(make([]byte, 8), size); err != io.EOF {
		t.Fatalf("ReadAt(EOF) = %v, want io.EOF", err)
	}
	// A read straddling EOF returns the available bytes with io.EOF.
	buf := make([]byte, 64)
	n, err := src.ReadAt(buf, size-10)
	if n != 10 || err != io.EOF {
		t.Fatalf("ReadAt straddling EOF = (%d, %v), want (10, io.EOF)", n, err)
	}
	if !bytes.Equal(buf[:10], data[len(data)-10:]) {
		t.Fatal("ReadAt straddling EOF: wrong tail bytes")
	}
}

func conformCancelled(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	conformPut(t, s, "img", []byte("x"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops := map[string]func() error{
		"Put": func() error {
			return s.Put(ctx, "c", func(w io.Writer) error { _, err := w.Write([]byte("y")); return err })
		},
		"Get": func() error {
			rc, err := s.Get(ctx, "img")
			if err == nil {
				rc.Close()
			}
			return err
		},
		"List":   func() error { _, err := s.List(ctx); return err },
		"Delete": func() error { return s.Delete(ctx, "img") },
	}
	for name, op := range ops {
		err := op()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx = %v, want context.Canceled", name, err)
		}
		// Cancellation is the caller's own doing — never transient, or a
		// retry policy would keep hammering an abandoned operation.
		if Transient(err) {
			t.Errorf("%s cancellation classified transient: %v", name, err)
		}
	}
	// The store stays usable after cancelled calls.
	if got := conformGet(t, s, "img"); string(got) != "x" {
		t.Fatalf("after cancelled ops: %q, want %q", got, "x")
	}
}

// conformLen checks StoreLen against List on every store — the cheap
// count and the name slice must never disagree.
func conformLen(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	ctx := context.Background()
	check := func(want int) {
		t.Helper()
		n, err := StoreLen(ctx, s)
		if err != nil {
			t.Fatalf("StoreLen: %v", err)
		}
		names, err := s.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n != want || n != len(names) {
			t.Fatalf("StoreLen = %d, List = %d names, want %d", n, len(names), want)
		}
	}
	check(0)
	if fx.single {
		conformPut(t, s, "only", []byte("x"))
		check(1)
		return
	}
	for _, n := range []string{"a", "b", "c"} {
		conformPut(t, s, n, []byte(n))
	}
	check(3)
	if err := s.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	check(2)
}

// conformConcurrent is the concurrent-clients section: the Pool makes
// parallel store access the default, so every implementation must take
// interleaved Put/Get/List/Delete from many goroutines without torn
// reads or lost writes. Each goroutine owns a disjoint name set (the
// Pool's tenant scoping gives the same shape), so contents stay
// deterministic while the store-level operations interleave freely.
func conformConcurrent(t *testing.T, fx storeFixture) {
	s := fx.build(t)
	ctx := context.Background()
	const (
		clients = 8
		rounds  = 12
	)
	payload := func(g, round int) []byte {
		return bytes.Repeat([]byte{byte('a' + g), byte(round)}, 2048)
	}

	if fx.single {
		// One slot, many writers: every Put must stay atomic, so the
		// final content is exactly one writer's payload — never a splice.
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					p := payload(g, i)
					if err := s.Put(ctx, "slot", func(w io.Writer) error {
						_, err := w.Write(p)
						return err
					}); err != nil {
						errCh <- fmt.Errorf("client %d put: %w", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		got := conformGet(t, s, "slot")
		if len(got) != 4096 {
			t.Fatalf("slot is %d bytes, want 4096", len(got))
		}
		for i, b := range got {
			if b != got[i%2] {
				t.Fatalf("slot content spliced at byte %d: %#x vs %#x", i, b, got[i%2])
			}
		}
		return
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := func(i int) string { return fmt.Sprintf("c%d-%d", g, i%3) }
			for i := 0; i < rounds; i++ {
				want := payload(g, i)
				if err := s.Put(ctx, name(i), func(w io.Writer) error {
					_, err := w.Write(want)
					return err
				}); err != nil {
					errCh <- fmt.Errorf("client %d put %s: %w", g, name(i), err)
					return
				}
				rc, err := s.Get(ctx, name(i))
				if err != nil {
					errCh <- fmt.Errorf("client %d get %s: %w", g, name(i), err)
					return
				}
				got, err := io.ReadAll(rc)
				rc.Close()
				if err != nil {
					errCh <- fmt.Errorf("client %d read %s: %w", g, name(i), err)
					return
				}
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("client %d: %s holds wrong bytes under concurrency", g, name(i))
					return
				}
				switch {
				case i%5 == 4: // churn: drop the name just written, re-put next round
					if err := s.Delete(ctx, name(i)); err != nil {
						errCh <- fmt.Errorf("client %d delete %s: %w", g, name(i), err)
						return
					}
				case i%4 == 3: // cross-client directory traffic
					if _, err := s.List(ctx); err != nil {
						errCh <- fmt.Errorf("client %d list: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Reconcile: every client re-puts its names, then the directory
	// must hold exactly clients x 3 images and Len must agree.
	for g := 0; g < clients; g++ {
		for i := 0; i < 3; i++ {
			conformPut(t, s, fmt.Sprintf("c%d-%d", g, i), payload(g, i))
		}
	}
	names, err := s.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != clients*3 {
		t.Fatalf("after churn: %d images, want %d (%v)", len(names), clients*3, names)
	}
	n, err := StoreLen(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != clients*3 {
		t.Fatalf("StoreLen after churn = %d, want %d", n, clients*3)
	}
	for g := 0; g < clients; g++ {
		for i := 0; i < 3; i++ {
			nm := fmt.Sprintf("c%d-%d", g, i)
			if got := conformGet(t, s, nm); !bytes.Equal(got, payload(g, i)) {
				t.Fatalf("%s corrupted by concurrent churn", nm)
			}
		}
	}
}
