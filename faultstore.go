package crac

import (
	"bytes"
	"context"
	"io"
	"time"

	"repro/internal/faults"
)

// FaultStore wraps a Store and injects deterministic, seedable
// failures into every operation — the test double behind the fault
// torture suite and the harness "faults" experiment. The injected
// classes (see internal/faults):
//
//   - transient and permanent errors: the operation fails with no
//     effect on the underlying store; transient ones satisfy
//     Transient() and are retried by WithRetry.
//   - torn writes/reads: a Put commits only a prefix of the image
//     (modeling a non-atomic store crashing mid-write), a Get serves a
//     prefix then fails. Torn faults are transient — a retry starts
//     clean.
//   - bit flips: the operation "succeeds" with one silently flipped
//     bit, detectable only by the integrity layer (Verify, Scrub, the
//     image trailer).
//   - latency: a fixed delay added to every operation.
//
// A FaultStore is deterministic per seed and operation sequence; tests
// echo the seed on failure so any run reproduces.
type FaultStore struct {
	inner Store
	inj   *faults.Injector
}

// NewFaultStore wraps store with the fault injector.
func NewFaultStore(store Store, inj *faults.Injector) *FaultStore {
	return &FaultStore{inner: store, inj: inj}
}

// Injector returns the wrapped injector (for FailNext and Stats).
func (s *FaultStore) Injector() *faults.Injector { return s.inj }

// Unwrap returns the underlying store.
func (s *FaultStore) Unwrap() Store { return s.inner }

// delay applies the decision's configured latency, honouring ctx.
func delay(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Put implements Store. The image is staged in memory first, so a torn
// decision can commit an exact prefix and a bit flip an exact byte.
func (s *FaultStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	d := s.inj.Decide(faults.OpPut)
	if err := delay(ctx, d.Delay); err != nil {
		return err
	}
	switch d.Kind {
	case faults.KindTransient, faults.KindPermanent:
		return d.Err
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	b := buf.Bytes()
	switch d.Kind {
	case faults.KindTorn:
		// The underlying Put is atomic, so the torn prefix is committed
		// as a (complete-looking, truncated) image — exactly what a
		// non-atomic store leaves behind when the writer dies mid-copy.
		cut := int(d.Frac * float64(len(b)))
		if cut < 1 && len(b) > 0 {
			cut = 1
		}
		if err := s.inner.Put(ctx, name, func(w io.Writer) error {
			_, err := w.Write(b[:cut])
			return err
		}); err != nil {
			return err
		}
		return d.Err
	case faults.KindBitFlip:
		faults.FlipBit(b, d.Frac)
	}
	return s.inner.Put(ctx, name, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

// tornReader serves up to n bytes of r, then fails with errAfter.
type tornReader struct {
	r        io.ReadCloser
	n        int64
	errAfter error
}

func (t *tornReader) Read(p []byte) (int, error) {
	if t.n <= 0 {
		return 0, t.errAfter
	}
	if int64(len(p)) > t.n {
		p = p[:t.n]
	}
	n, err := t.r.Read(p)
	t.n -= int64(n)
	if err == io.EOF {
		err = nil // the injected error ends the stream, not EOF
	}
	return n, err
}

func (t *tornReader) Close() error { return t.r.Close() }

// Get implements Store.
func (s *FaultStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	d := s.inj.Decide(faults.OpGet)
	if err := delay(ctx, d.Delay); err != nil {
		return nil, err
	}
	switch d.Kind {
	case faults.KindTransient, faults.KindPermanent:
		return nil, d.Err
	}
	rc, err := s.inner.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	switch d.Kind {
	case faults.KindTorn:
		// Size unknown until read: slurp, then serve the prefix. Images
		// in tests are small; exactness beats streaming here.
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		cut := int64(d.Frac * float64(len(b)))
		return &tornReader{r: io.NopCloser(bytes.NewReader(b)), n: cut, errAfter: d.Err}, nil
	case faults.KindBitFlip:
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		faults.FlipBit(b, d.Frac)
		return io.NopCloser(bytes.NewReader(b)), nil
	}
	return rc, nil
}

// List implements Store.
func (s *FaultStore) List(ctx context.Context) ([]string, error) {
	d := s.inj.Decide(faults.OpList)
	if err := delay(ctx, d.Delay); err != nil {
		return nil, err
	}
	if d.Err != nil {
		return nil, d.Err
	}
	return s.inner.List(ctx)
}

// Delete implements Store.
func (s *FaultStore) Delete(ctx context.Context, name string) error {
	d := s.inj.Decide(faults.OpDelete)
	if err := delay(ctx, d.Delay); err != nil {
		return err
	}
	if d.Err != nil {
		return d.Err
	}
	return s.inner.Delete(ctx, name)
}

// flippedReaderAt serves the underlying bytes with one bit flipped at
// a fixed offset.
type flippedReaderAt struct {
	r    ReaderAtCloser
	off  int64
	mask byte
}

func (f *flippedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.r.ReadAt(p, off)
	if i := f.off - off; i >= 0 && i < int64(n) {
		p[i] ^= f.mask
	}
	return n, err
}

func (f *flippedReaderAt) Close() error { return f.r.Close() }

// tornReaderAt serves bytes below the cut; any read reaching the cut
// fails with the injected error.
type tornReaderAt struct {
	r        ReaderAtCloser
	cut      int64
	errAfter error
}

func (t *tornReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= t.cut {
		return 0, t.errAfter
	}
	if off+int64(len(p)) > t.cut {
		n, err := t.r.ReadAt(p[:t.cut-off], off)
		if err == nil {
			err = t.errAfter
		}
		return n, err
	}
	return t.r.ReadAt(p, off)
}

func (t *tornReaderAt) Close() error { return t.r.Close() }

// GetAt implements RandomAccessStore, injecting into the lazy-restart
// read path. When the underlying store lacks random access, the image
// is slurped (same fallback the lazy path itself uses).
func (s *FaultStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	d := s.inj.Decide(faults.OpGetAt)
	if err := delay(ctx, d.Delay); err != nil {
		return nil, 0, err
	}
	switch d.Kind {
	case faults.KindTransient, faults.KindPermanent:
		return nil, 0, d.Err
	}
	src, size, err := openImageAt(ctx, s.inner, name)
	if err != nil {
		return nil, 0, err
	}
	switch d.Kind {
	case faults.KindTorn:
		cut := int64(d.Frac * float64(size))
		return &tornReaderAt{r: src, cut: cut, errAfter: d.Err}, size, nil
	case faults.KindBitFlip:
		off := int64(d.Frac * float64(size))
		if off >= size && size > 0 {
			off = size - 1
		}
		return &flippedReaderAt{r: src, off: off, mask: 1 << (off % 8)}, size, nil
	}
	return src, size, nil
}

// SingleImage passes the one-slot property of the underlying store
// through, so incremental checkpointing makes the same base-only
// decision it would make unwrapped.
func (s *FaultStore) SingleImage() bool { return singleImageStore(s.inner) }

var (
	_ Store             = (*FaultStore)(nil)
	_ RandomAccessStore = (*FaultStore)(nil)
)
