// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, in Quick mode so `go test
// -bench=.` stays tractable), plus microbenchmarks of the primitives the
// paper's numbers decompose into: trampoline dispatch, kernel launch,
// checkpoint, restart.
//
// Regenerate the full-size artifacts with:
//
//	go run ./cmd/cracbench -exp all
package crac_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/harness"
	"repro/internal/kernels"
)

// runExperiment executes one harness experiment in Quick mode b.N times.
func runExperiment(b *testing.B, id string) {
	e := harness.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	opt := harness.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opt)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				t.Fprint(io.Discard)
			}
		}
	}
}

// One benchmark per paper artifact (Section 4, Figures 2-6, Tables 1-3).

func BenchmarkIntroTop500(b *testing.B)            { runExperiment(b, "intro") }
func BenchmarkTable1Characterization(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2CommandLines(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkFig2RodiniaOverhead(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3CheckpointRestart(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4aSimpleStreams(b *testing.B)     { runExperiment(b, "fig4a") }
func BenchmarkFig4bKernelTime(b *testing.B)        { runExperiment(b, "fig4b") }
func BenchmarkFig5aStreamBenchmarks(b *testing.B)  { runExperiment(b, "fig5a") }
func BenchmarkFig5bRealWorld(b *testing.B)         { runExperiment(b, "fig5b") }
func BenchmarkFig5cCheckpointRestart(b *testing.B) { runExperiment(b, "fig5c") }
func BenchmarkTable3BLASvsIPC(b *testing.B)        { runExperiment(b, "table3") }
func BenchmarkFig6FSGSBASE(b *testing.B)           { runExperiment(b, "fig6") }
func BenchmarkAblationDesignChoices(b *testing.B)  { runExperiment(b, "ablations") }

// Beyond the paper: live-migration downtime vs stop-copy-restart.
func BenchmarkMigrate(b *testing.B) { runExperiment(b, "migrate") }

// Beyond the paper: content-addressed dedup, stored bytes plain vs CAS.
func BenchmarkDedup(b *testing.B) { runExperiment(b, "dedup") }

// Beyond the paper: multi-tenant pool, N concurrent sessions under a
// seeded checkpoint/restart/mutate mix with staggered epoch cuts.
func BenchmarkPoolLoad(b *testing.B) { runExperiment(b, "load") }

// Microbenchmarks of the primitives.

// benchSession builds a CRAC session with a registered kernel module and
// one device buffer.
func benchSession(b *testing.B, opts ...crac.Option) (*crac.Session, crt.Runtime, crt.FatBinHandle, uint64) {
	b.Helper()
	s, err := crac.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		b.Fatal(err)
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			b.Fatal(err)
		}
	}
	buf, err := rt.Malloc(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	return s, rt, fat, buf
}

// BenchmarkDispatchNative measures a small CUDA call through the direct
// binding (the baseline of every overhead figure).
func BenchmarkDispatchNative(b *testing.B) {
	rt, err := crac.NewNative()
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	buf, _ := rt.Malloc(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Memset(buf, byte(i), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchCRACSyscall measures the same call through the CRAC
// trampoline with syscall-based fs switching (unpatched kernel).
func BenchmarkDispatchCRACSyscall(b *testing.B) {
	_, rt, _, buf := benchSession(b, crac.WithSwitcher(crac.SwitchSyscall))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Memset(buf, byte(i), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchCRACFSGSBase measures the trampoline with the
// FSGSBASE register write (Section 4.4.5).
func BenchmarkDispatchCRACFSGSBase(b *testing.B) {
	_, rt, _, buf := benchSession(b, crac.WithSwitcher(crac.SwitchFSGSBase))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Memset(buf, byte(i), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelLaunchCRAC measures a full kernel launch + sync cycle
// under CRAC (three trampoline crossings per the paper's formula).
func BenchmarkKernelLaunchCRAC(b *testing.B) {
	_, rt, fat, buf := benchSession(b)
	lc := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 256}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.LaunchKernel(fat, "fill", lc, crt.DefaultStream, buf, kernels.F32Arg(1), 16); err != nil {
			b.Fatal(err)
		}
	}
	if err := rt.DeviceSynchronize(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMallocFreeCRAC measures the logged cudaMalloc/cudaFree pair
// (including the modelled driver latency that dominates restart replay).
func BenchmarkMallocFreeCRAC(b *testing.B) {
	_, rt, _, _ := benchSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := rt.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures writing a checkpoint image of a session
// with 16 MiB of active device memory.
func BenchmarkCheckpoint(b *testing.B) {
	s, rt, _, _ := benchSession(b)
	big, err := rt.Malloc(16 << 20)
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Memset(big, 0xAB, 16<<20); err != nil {
		b.Fatal(err)
	}
	var img bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.Reset()
		if _, err := s.Checkpoint(context.Background(), &img); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(img.Len()))
}

// BenchmarkRestart measures the full restart path: fresh lower half,
// upper-half restore, log replay, memory refill.
func BenchmarkRestart(b *testing.B) {
	s, rt, _, _ := benchSession(b)
	// A log with some churn, so replay has work to do.
	for i := 0; i < 32; i++ {
		a, err := rt.Malloc(64 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			if err := rt.Free(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelBenchSession builds a session with ≥64 MiB of live device
// allocations spread across ≥16 mallocs (each larger than the image
// shard size, so both the region fan-out and the intra-allocation shard
// fan-out are exercised), plus a few upper-half cudaHostAlloc regions
// that travel in the image body itself.
func parallelBenchSession(b *testing.B, workers int, gz bool) (*crac.Session, uint64) {
	b.Helper()
	opts := []crac.Option{crac.WithWorkers(workers)}
	if gz {
		opts = append(opts, crac.WithGzip(1)) // BestSpeed: the honest fast-compression setting
	}
	s, err := crac.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	rt := s.Runtime()
	const (
		allocs    = 16
		allocSize = 4 << 20
	)
	var total uint64
	for i := 0; i < allocs; i++ {
		a, err := rt.Malloc(allocSize)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Memset(a, byte(0x11*i+1), allocSize); err != nil {
			b.Fatal(err)
		}
		total += allocSize
	}
	for i := 0; i < 4; i++ {
		h, err := rt.HostAlloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Memset(h, byte(i+1), 1<<20); err != nil {
			b.Fatal(err)
		}
		total += 1 << 20
	}
	return s, total
}

// countingWriter counts image bytes without buffering them, so the
// benchmark measures the data path rather than bytes.Buffer growth.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// BenchmarkCheckpointParallel measures the pipelined checkpoint write
// (68 MiB of live state) at worker count 1 (the serial reference path)
// and at full fan-out, raw and gzip'd.
func BenchmarkCheckpointParallel(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
		gz      bool
	}{
		{"workers=1", 1, false},
		{"workers=all", 0, false},
		{"gzip/workers=1", 1, true},
		{"gzip/workers=all", 0, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, total := parallelBenchSession(b, bc.workers, bc.gz)
			// Warm up the heap so the first timed iteration doesn't pay
			// the OS page-fault cost of the section buffers.
			if _, err := s.Checkpoint(context.Background(), &countingWriter{}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var w countingWriter
				if _, err := s.Checkpoint(context.Background(), &w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestartParallel measures the full restart path (image parse,
// fresh lower half, region restore, log replay, memory refill) at
// worker count 1 and full fan-out.
func BenchmarkRestartParallel(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=all", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, total := parallelBenchSession(b, bc.workers, false)
			var img bytes.Buffer
			if _, err := s.Checkpoint(context.Background(), &img); err != nil {
				b.Fatal(err)
			}
			if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestartLazy measures time-to-first-kernel on the standard
// ~69 MiB workload: from the start of the restart until one kernel
// launch + sync has completed on the restored session. The eager rows
// pay the full image decode and refill before the kernel can run; the
// lazy rows (RestartAsync) pay only the metadata scan and log replay,
// faulting in just the pages the kernel touches, while the prefetcher
// drains the rest in the background (outside the timed window). The
// lazy time-to-first-kernel is expected to be ≥10× below the eager
// one; drainMs/op reports the overlapped background drain.
func BenchmarkRestartLazy(b *testing.B) {
	for _, bc := range []struct {
		name string
		lazy bool
	}{
		{"eager", false},
		{"lazy", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, total := parallelBenchSession(b, 0, false)
			rt := s.Runtime()
			fat, err := rt.RegisterFatBinary(kernels.Module)
			if err != nil {
				b.Fatal(err)
			}
			for name, k := range kernels.Table() {
				if err := rt.RegisterFunction(fat, name, k); err != nil {
					b.Fatal(err)
				}
			}
			probe, err := rt.Malloc(64 << 10)
			if err != nil {
				b.Fatal(err)
			}
			store, err := crac.NewDirStore(b.TempDir(), 0, crac.WithNoSync())
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
				b.Fatal(err)
			}
			firstKernel := func() {
				lc := crt.LaunchConfig{Grid: crt.Dim3{X: 16}, Block: crt.Dim3{X: 256}}
				if err := rt.LaunchKernel(fat, "fill", lc, crt.DefaultStream, probe, kernels.F32Arg(3), (64<<10)/4); err != nil {
					b.Fatal(err)
				}
				if err := rt.DeviceSynchronize(); err != nil {
					b.Fatal(err)
				}
			}
			// Warm up one full cycle.
			if err := s.RestartFrom(ctx, store, "img"); err != nil {
				b.Fatal(err)
			}
			firstKernel()
			b.SetBytes(int64(total))
			var drain, visible time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The previous iteration discarded a whole address space;
				// collect it outside the timed window (symmetrically for
				// both arms) so TTFK measures the restart path, not GC
				// scheduling noise.
				b.StopTimer()
				runtime.GC()
				b.StartTimer()
				if bc.lazy {
					tv := time.Now()
					p, err := s.RestartAsync(ctx, store, "img")
					if err != nil {
						b.Fatal(err)
					}
					visible += time.Since(tv)
					firstKernel()
					// The background drain runs outside the TTFK window.
					b.StopTimer()
					st, err := p.Wait()
					if err != nil {
						b.Fatal(err)
					}
					drain += st.RestoreBackgroundDuration
					b.StartTimer()
				} else {
					if err := s.RestartFrom(ctx, store, "img"); err != nil {
						b.Fatal(err)
					}
					firstKernel()
				}
			}
			b.StopTimer()
			if bc.lazy {
				b.ReportMetric(float64(drain.Nanoseconds())/1e6/float64(b.N), "drainMs/op")
				b.ReportMetric(float64(visible.Nanoseconds())/1e6/float64(b.N), "visibleMs/op")
			}
		})
	}
}

// countingStore measures image bytes flowing through Store.Put without
// retaining them — the write-side cost of a checkpoint policy.
type countingStore struct {
	bytes int64
	puts  int64
}

func (cs *countingStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	var w countingWriter
	if err := write(&w); err != nil {
		return err
	}
	cs.bytes += w.n
	cs.puts++
	return nil
}
func (cs *countingStore) Get(context.Context, string) (io.ReadCloser, error) {
	return nil, crac.ErrImageNotFound
}
func (cs *countingStore) List(context.Context) ([]string, error) { return nil, nil }
func (cs *countingStore) Delete(context.Context, string) error   { return nil }

// BenchmarkCheckpointIncremental compares full v2 checkpoints against
// the incremental v3 chain on a sparse-update workload: ~69 MiB of live
// state (upper-half host buffers + device allocations + a managed
// buffer) with well under 10% dirtied between checkpoints. The
// imgMB/op metric is the average image size each policy writes per
// checkpoint — the incremental chain is expected to write ≥5× fewer
// payload bytes and finish proportionally faster.
func BenchmarkCheckpointIncremental(b *testing.B) {
	const (
		hostBufs  = 16
		devAllocs = 16
		bufSize   = 2 << 20
	)
	for _, bc := range []struct {
		name string
		opts []crac.Option
	}{
		{"full-v2", nil},
		// A bounded chain depth measures the steady state; an unbounded
		// one would grow per-checkpoint lineage state with b.N.
		{"incremental", []crac.Option{crac.WithIncremental(64)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := append([]crac.Option{crac.WithWorkers(0), crac.WithShardSize(256 << 10)}, bc.opts...)
			s, err := crac.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			rt := s.Runtime()
			var host, dev []uint64
			var total uint64
			for i := 0; i < hostBufs; i++ {
				h, err := rt.HostAlloc(bufSize)
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
					b.Fatal(err)
				}
				host = append(host, h)
				total += bufSize
			}
			for i := 0; i < devAllocs; i++ {
				d, err := rt.Malloc(bufSize)
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(d, byte(0x21*i+3), bufSize); err != nil {
					b.Fatal(err)
				}
				dev = append(dev, d)
				total += bufSize
			}
			m, err := rt.MallocManaged(bufSize)
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.Memset(m, 0x7F, bufSize); err != nil {
				b.Fatal(err)
			}
			total += bufSize

			store := &countingStore{}
			ctx := context.Background()
			// The chain's base (and the full path's warm-up) stays out of
			// the timed region: the steady state is what matters.
			if _, err := s.CheckpointTo(ctx, store, "gen-base"); err != nil {
				b.Fatal(err)
			}
			store.bytes, store.puts = 0, 0
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Sparse update: 256 KiB of one host buffer, one 2 MiB
				// device allocation — ~3% of the live state.
				if err := rt.Memset(host[i%hostBufs]+4096, byte(i), 256<<10); err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(dev[i%devAllocs], byte(i+1), bufSize); err != nil {
					b.Fatal(err)
				}
				if _, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if store.puts > 0 {
				b.ReportMetric(float64(store.bytes)/float64(store.puts)/(1<<20), "imgMB/op")
			}
		})
	}
}

// BenchmarkCheckpointPause measures the application-visible pause of a
// checkpoint — the stop-the-world window — on the standard ~69 MiB
// sparse-update workload, across the policy matrix: blocking vs
// concurrent (snapshot-and-release), full images vs incremental deltas.
// ns/op is the full checkpoint latency; the pauseMs/op metric is what a
// serving application actually freezes for. The concurrent rows are
// expected to pause ≥5× less than their blocking counterparts (pinned
// by TestConcurrentPauseReduction in concurrent_test.go).
func BenchmarkCheckpointPause(b *testing.B) {
	const (
		hostBufs  = 16
		devAllocs = 16
		bufSize   = 2 << 20
	)
	for _, bc := range []struct {
		name string
		opts []crac.Option
	}{
		{"blocking/full", nil},
		{"blocking/delta", []crac.Option{crac.WithIncremental(64)}},
		{"concurrent/full", []crac.Option{crac.WithConcurrentCheckpoint()}},
		{"concurrent/delta", []crac.Option{crac.WithConcurrentCheckpoint(), crac.WithIncremental(64)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := append([]crac.Option{crac.WithWorkers(0), crac.WithShardSize(256 << 10)}, bc.opts...)
			s, err := crac.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			rt := s.Runtime()
			var host, dev []uint64
			var total uint64
			for i := 0; i < hostBufs; i++ {
				h, err := rt.HostAlloc(bufSize)
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
					b.Fatal(err)
				}
				host = append(host, h)
				total += bufSize
			}
			for i := 0; i < devAllocs; i++ {
				d, err := rt.Malloc(bufSize)
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(d, byte(0x21*i+3), bufSize); err != nil {
					b.Fatal(err)
				}
				dev = append(dev, d)
				total += bufSize
			}
			m, err := rt.MallocManaged(bufSize)
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.Memset(m, 0x7F, bufSize); err != nil {
				b.Fatal(err)
			}
			total += bufSize

			store := &countingStore{}
			ctx := context.Background()
			if _, err := s.CheckpointTo(ctx, store, "gen-base"); err != nil {
				b.Fatal(err)
			}
			var pause time.Duration
			b.SetBytes(int64(total))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Memset(host[i%hostBufs]+4096, byte(i), 256<<10); err != nil {
					b.Fatal(err)
				}
				if err := rt.Memset(dev[i%devAllocs], byte(i+1), bufSize); err != nil {
					b.Fatal(err)
				}
				st, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i))
				if err != nil {
					b.Fatal(err)
				}
				pause += st.PauseDuration
			}
			b.StopTimer()
			b.ReportMetric(float64(pause.Nanoseconds())/1e6/float64(b.N), "pauseMs/op")
			b.ReportMetric(float64(pause.Nanoseconds())/float64(b.N), "pause-ns/op")
		})
	}
}

// BenchmarkUVMFaultRoundTrip measures one host→device→host page
// migration cycle through the pager.
func BenchmarkUVMFaultRoundTrip(b *testing.B) {
	_, rt, fat, _ := benchSession(b)
	m, err := rt.MallocManaged(4096)
	if err != nil {
		b.Fatal(err)
	}
	lc := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Host write faults the page to the host...
		if _, err := rt.HostAccess(m, 8, true); err != nil {
			b.Fatal(err)
		}
		// ...the kernel faults it back to the device.
		if err := rt.LaunchKernel(fat, "fill", lc, crt.DefaultStream, m, kernels.F32Arg(1), 2); err != nil {
			b.Fatal(err)
		}
		if err := rt.DeviceSynchronize(); err != nil {
			b.Fatal(err)
		}
	}
}

// Example output comparing dispatch costs, for the documentation.
func ExampleSession() {
	s, err := crac.New()
	if err != nil {
		panic(err)
	}
	defer s.Close()
	rt := s.Runtime()
	if _, err := rt.Malloc(1 << 20); err != nil {
		panic(err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		panic(err)
	}
	if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
		panic(err)
	}
	fmt.Println("restarted:", s.Generation() == 1)
	// Output: restarted: true
}
