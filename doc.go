// Package crac is a reproduction of "CRAC: Checkpoint-Restart
// Architecture for CUDA with Streams and UVM" (Jain & Cooperman,
// SC 2020) as a pure-Go library over a simulated CUDA substrate.
//
// The package exposes CRAC's user-facing surface:
//
//   - Session: a split-process CUDA execution — the application's upper
//     half plus a lower-half helper program owning the (simulated) CUDA
//     library — that can be checkpointed to an image and restarted, with
//     streams and Unified Virtual Memory fully supported.
//   - NewNative: the uninstrumented baseline binding, for measuring
//     CRAC's runtime overhead exactly as the paper does.
//   - The crt.Runtime interface (re-exported concepts), which application
//     code programs against so the same code runs natively, under CRAC,
//     or under the proxy-based baseline (internal/proxy) used in the
//     paper's Table 3 comparison.
//
// A checkpoint drains all CUDA streams, saves the memory of active
// mallocs and the CUDA call log together with every upper-half memory
// region, and omits the CUDA library itself. A restart loads a fresh
// lower half, restores the upper half, and replays the log so all
// allocations reappear at their original addresses (the paper's
// log-and-replay design, Section 3).
//
// The checkpoint/restart data path is parallel and pipelined: region
// and allocation payloads are sharded across a worker pool while a
// single writer streams the image in deterministic order, and restores
// fan the refills out the same way. Config.CheckpointWorkers,
// Config.CheckpointShardSize and Config.GzipLevel tune it;
// CheckpointWorkers=1 selects the serial reference path, which produces
// byte-identical images.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package crac
