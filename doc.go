// Package crac is a reproduction of "CRAC: Checkpoint-Restart
// Architecture for CUDA with Streams and UVM" (Jain & Cooperman,
// SC 2020) as a pure-Go library over a simulated CUDA substrate.
//
// # Sessions
//
// New launches a Session — a split-process CUDA execution: the
// application's upper half plus a lower-half helper program owning the
// (simulated) CUDA library — configured through functional options:
//
//	s, err := crac.New(crac.WithWorkers(8), crac.WithGzip(gzip.BestSpeed))
//
// The zero option set matches the paper's main configuration (Tesla
// V100, syscall fs switch, no compression, ASLR off). The application
// programs against s.Runtime(), and the same code runs natively
// (NewNative), under CRAC, or under the proxy-based baseline
// (internal/proxy) used in the paper's Table 3 comparison.
//
// # Checkpoint and restart
//
// A checkpoint drains all CUDA streams, saves the memory of active
// mallocs and the CUDA call log together with every upper-half memory
// region, and omits the CUDA library itself. A restart loads a fresh
// lower half, restores the upper half, and replays the log so all
// allocations reappear at their original addresses (the paper's
// log-and-replay design, Section 3).
//
// Checkpoints land in a Store — a named-image destination with
// all-or-nothing writes. FileStore holds one image at a fixed path,
// DirStore keeps one file per generation with an optional retention
// policy, MemStore stays in memory; remote backends implement the same
// four methods:
//
//	store, _ := crac.NewDirStore("ckpts", 3) // keep the newest 3
//	stats, err := s.CheckpointTo(ctx, store, "gen042")
//	...
//	err = s.RestartFrom(ctx, store, "gen042")             // same process
//	s2, err := crac.RestoreFrom(ctx, store, "gen042",     // new process
//	    crac.WithKernels(reg))
//
// Every operation takes a context.Context, threaded down through the
// checkpoint engine, the parallel shard pipeline, and the plugin
// drains: a deadline or cancellation aborts the image mid-write,
// surfaces as ErrCancelled (also matching the context's own error via
// errors.Is), and — through a Store — leaves no partial image behind.
// The session survives a cancelled checkpoint and keeps running.
//
// Failures classify with errors.Is against the package's typed errors:
// ErrBadImage, ErrUnsupportedVersion, ErrReplayMismatch, ErrCancelled,
// ErrSessionClosed, ErrImageNotFound, ErrCorruptImage (integrity
// damage, distinct from structural ErrBadImage), and ErrTransient
// (retry-safe store failures; see Transient).
//
// # Images as artifacts
//
// OpenImage, OpenImageFile, and OpenImageFrom parse a checkpoint image
// without restoring it. Image.Info reports the format version and the
// region/section layout; Image.Log summarizes the CUDA call log — the
// replay a restore implies and the resources active at checkpoint.
// cmd/cracinspect renders exactly this surface. For cross-process
// restores, a KernelRegistry (passed via WithKernels) resolves kernel
// names during replay, standing in for device code in the restored
// application's text segment.
//
// # Incremental checkpoints
//
// WithIncremental turns repeated CheckpointTo calls into a delta
// chain: a full v3 base image, then up to n deltas carrying only the
// memory pages and allocation bytes written since their parent —
// page-granular write tracking for upper-half regions, content-hashed
// shards for plugin sections, and UVM-aware skipping of CPU-resident
// managed pages untouched since the previous checkpoint. On sparse
// workloads a delta is typically an order of magnitude smaller (and
// faster to write) than a full image:
//
//	s, _ := crac.New(crac.WithIncremental(8)) // ≤8 deltas per base
//	store, _ := crac.NewDirStore("ckpts", 4)  // Keep never orphans a chain
//	for i := 0; ; i++ {
//	    ... run the workload ...
//	    s.CheckpointTo(ctx, store, fmt.Sprintf("gen%03d", i))
//	}
//	...
//	s2, err := crac.RestoreFrom(ctx, store, "gen042") // materializes base+deltas
//
// Deltas name their parent image, and RestartFrom / RestoreFrom /
// OpenImageFrom follow the lineage through the same Store
// transparently; a delta opened outside its store still parses for
// inspection but restores only with ErrDeltaChain. A restart breaks
// the chain (the next checkpoint is a base), and DirStore retention
// keeps every ancestor a retained image needs. Image.Info reports a
// delta's depth, parent, and dirty ratio; cracinspect prints them.
//
// # Concurrent checkpoints
//
// CheckpointAsync shrinks the application-visible pause to the epoch
// cut: the session stops only for the stream drain and the arming of a
// copy-on-write snapshot (O(metadata)), then the image write and the
// Store commit overlap with further execution. The committed image is
// byte-identical to a blocking checkpoint taken at the cut, no matter
// how hard the application mutates memory during the overlap:
//
//	p, err := s.CheckpointAsync(ctx, store, "gen042")
//	if err != nil { ... }           // pause is already over here
//	... keep serving traffic ...
//	stats, err := p.Wait()          // commit point
//	fmt.Println(stats.PauseDuration, "paused of", stats.Duration)
//
// Only one checkpoint may be in flight (ErrCheckpointInFlight
// otherwise); a failed or cancelled overlapped checkpoint leaves no
// partial image and releases every retained copy-on-write page. The
// ctx passed to CheckpointAsync governs the overlapped write too — keep
// it live until Wait reports completion (cancelling it aborts the
// in-flight image).
// WithConcurrentCheckpoint reroutes the blocking Checkpoint and
// CheckpointTo onto the same path, so existing checkpoint loops get
// the short pause without code changes, and Stats.PauseDuration splits
// the stop-the-world window from the overlapped WriteDuration. For a
// precise cut, bracket the arming with the (now real) Quiesce/Resume
// pair, which gates kernel launches and memory writes until resumed.
//
// # Lazy restart
//
// RestartAsync turns restore latency into time-to-first-kernel: the
// visible phase reads only the image metadata and the replay log,
// rebuilds the lower half, and maps every restored byte cold — the
// application (and its kernels) run immediately, faulting image shards
// in on first access, while a background prefetcher drains the rest of
// the image concurrently (device memory first, managed UVM pages
// last). On the standard workload this is an order of magnitude faster
// to first kernel than an eager restart:
//
//	p, err := s.RestartAsync(ctx, store, "gen042")
//	if err != nil { ... }            // the session is already executing
//	... serve traffic; cold memory faults in on demand ...
//	stats, err := p.Wait()           // background drain finished
//	fmt.Println(stats.RestoreVisibleDuration, "visible of", stats.RestoreDuration)
//
// Once the drain completes, memory is byte-identical to an eager
// restart of the same image (DESIGN.md invariant 11); before that,
// every access sees the same bytes through the fault path. Delta
// chains restore shard-by-shard from the nearest ancestor that owns
// each shard. Cancelling ctx stops only the prefetcher — the session
// stays fully usable (faults keep materializing) and restartable.
// WithLazyRestart reroutes RestartFrom and RestoreFrom onto the same
// path for existing code.
//
// # Live migration
//
// Migrate moves a running session onto a fresh one — typically with
// the destination store served by another host over the netstore
// protocol (NewHTTPStore / ServeStore). Pre-copy rounds stream
// concurrent delta checkpoints to the destination while the source
// keeps executing; when the dirty rate converges (or plateaus) the
// source is quiesced, a final delta is cut under the pause into a
// source-local store, and the destination session activates lazily —
// reading the pre-copied images locally and post-copy faulting the
// final cut across the wire while a background tail replicates it
// over and clears the source:
//
//	dst, _ := crac.NewHTTPStore("http://ckpt-host:9120")
//	src := crac.NewMemStore()                // final-cut staging
//	m, err := crac.Migrate(ctx, s, src, dst,
//	    crac.WithMigrateRounds(6))
//	if err != nil { ... }                    // source still resumable
//	fmt.Println(m.Report.Downtime, "down,",  // quiesce -> dest executing
//	    m.Report.PreCopyBytes, "pre-copied over",
//	    len(m.Report.Rounds)-1, "rounds")
//	... m.Dest is executing; serve from it ...
//	err = m.Wait()                           // post-copy tail drained:
//	                                         // dst holds the whole chain
//
// The migrated session's memory is byte-identical to a blocking
// checkpoint taken at the final cut. The source is left quiesced —
// resume it to fail back, close it to complete the handoff
// (WithMigrateCloseSource does the latter automatically). Network
// failures classify through Transient, so WithRetry composes around
// an HTTP store; cmd/cracmigrate packages both roles as a CLI.
//
// # Content-addressed storage and compaction
//
// NewCASStore wraps any Store with chunk-level deduplication: images
// become small manifests, shard payloads are stored once per unique
// content (SHA-256 keyed), and identical state across generations,
// sessions, and fleets is stored — and, over an HTTP destination that
// answers the batch-exists probe, transferred — only once:
//
//	cs := crac.NewCASStore(backing)          // any Store, local or HTTP
//	_, err := s.CheckpointTo(ctx, cs, "gen042") // manifest + novel chunks
//	...
//	rep, err := crac.DedupReport(ctx, cs)    // cracinspect -dedup
//	fmt.Printf("%.1fx dedup over %d chunks\n", rep.Ratio(), rep.Chunks)
//	_, err = cs.GC(ctx)                      // sweep unreferenced chunks
//
// Reads reconstruct the original bytes exactly (lazy restart's random
// access included), List hides the chunk namespace, and GC never
// touches a chunk a live manifest references.
//
// Compact squashes a delta chain's base + k deltas into one
// self-contained base from stored bytes alone — no session, no
// quiesce, safe while the writing session keeps checkpointing — then
// deletes the squashed ancestors no other lineage needs:
//
//	st, err := crac.Compact(ctx, store, "gen042")
//	fmt.Println("depth", st.Depth, "freed", st.Deleted)
//
// The compacted tip restores byte-identically to the chain it
// replaced and keeps the identity live deltas bind to.
// SupervisorConfig.CompactAfter runs it automatically whenever the
// chain depth reaches the bound.
//
// # Fault tolerance
//
// Every v2/v3 image ends in a whole-image checksum trailer, checked as
// the image is read (Info reports Verified); Image.Verify, VerifyChain
// and Scrub re-check stored images — Scrub quarantines corrupt images
// and the deltas their corruption condemns, and RepairChain re-bases a
// broken lineage. Flaky stores wrap with WithRetry (or per-session
// WithCheckpointRetry), which retries transiently failing operations
// with bounded exponential backoff — the checkpoint pipeline itself
// runs exactly once per attempt. Supervisor composes all of it into a
// CRAFT-style restart loop: periodic checkpoints, failure detection,
// and automatic restart from the newest generation whose whole chain
// verifies:
//
//	sv, err := crac.NewSupervisor(crac.SupervisorConfig{
//	    Factory: newAppSession,          // a fresh session per process
//	    Store:   store,
//	    Retry:   crac.DefaultRetryPolicy(),
//	    Interval: time.Minute,
//	})
//	if err != nil { ... }
//	go sv.Run(ctx)                       // checkpoint every Interval
//	...
//	sv.ReportFailure(err)                // crash detected: next cycle
//	                                     // restarts from the newest
//	                                     // verified image
//	fmt.Println(sv.Stats().LastMTTR)
//
// A corrupt tip falls back generation by generation; when nothing
// intact remains the supervisor cold-starts a fresh factory session.
// crac.NewFaultStore injects deterministic store faults (transient and
// permanent errors, torn writes, bit flips, latency) for testing, and
// cracrun -verify/-scrub plus cracinspect -verify surface the
// integrity checks on the command line.
//
// # Multi-tenant pools
//
// Pool multiplexes many sessions over one Store for fleet-level
// serving: admission control and per-tenant quotas (sessions,
// in-flight checkpoints, stored bytes), one shared pipeline worker
// budget instead of per-session worker pools, and a stagger scheduler
// that admits epoch cuts against a global retained-page budget so
// concurrent copy-on-write checkpoints never stampede memory:
//
//	p, err := crac.NewPool(store,
//	    crac.WithPoolMaxSessions(1000),
//	    crac.WithPoolPageBudget(1<<16),  // pages retained across all cuts
//	    crac.WithPoolTenantDefaults(crac.TenantQuota{
//	        MaxSessions:    8,
//	        MaxStoredBytes: 256 << 20,
//	    }))
//	if err != nil { ... }
//	defer p.Close()
//
//	ps, err := p.Open("alice")           // admission + quota check
//	if errors.Is(err, crac.ErrQuotaExceeded) { ... } // tenant's own limit
//	if errors.Is(err, crac.ErrPoolSaturated) { ... } // pool full: back off, retry
//	_, err = ps.Checkpoint(ctx, "gen0")  // staggered cut, tenant-scoped name
//	err = ps.Restart(ctx, "gen0")
//
//	st := p.Stats()                      // p50/p95/p99, rejections,
//	fmt.Println(st.CheckpointP99)        // retained-page high-water mark
//
// Image names are scoped per tenant inside the shared store, stored
// bytes are metered as images stream in (an over-budget checkpoint
// aborts atomically and charges nothing), and Pool.Stats /
// Pool.TenantStats expose the latency distribution and admission
// counters per tenant and in aggregate.
//
// # Performance
//
// The checkpoint/restart data path is parallel and pipelined: region
// and allocation payloads are sharded across a worker pool while a
// single writer streams the image in deterministic order, and restores
// fan the refills out the same way. WithWorkers, WithShardSize and
// WithGzip tune it; WithWorkers(1) selects the serial reference path,
// which produces byte-identical images.
//
// # Legacy surface
//
// Config and NewSession (plus CheckpointFile/RestartFile) survive as
// deprecated shims over the option/store surface and will not grow new
// fields; see DESIGN.md's migration table.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package crac
