package crac

// Fault-injection torture (ISSUE 6): every checkpoint/restart entry
// point is driven through a store that randomly fails, tears writes,
// and flips bits, under -race in CI. The invariants:
//
//   - no silent corruption: a restore that succeeds carries exactly the
//     checkpointed bytes; everything else fails with a classified
//     sentinel (never a panic, never garbage state);
//   - the session survives its store: checkpoint failures leave it
//     usable;
//   - nothing leaks: retained snapshot pages and goroutines return to
//     baseline.
//
// The schedule is deterministic per seed; CRAC_TORTURE_SEED selects it
// and failures echo the seed for replay.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/crt"
	"repro/internal/faults"
)

func tortureSeed(t *testing.T) int64 {
	seed := int64(1)
	if v := os.Getenv("CRAC_TORTURE_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CRAC_TORTURE_SEED=%q: %v", v, err)
		}
		seed = n
	}
	t.Logf("torture seed %d (set CRAC_TORTURE_SEED to reproduce)", seed)
	return seed
}

// classified reports whether err is an acceptable injected-fault
// outcome: a CRAC sentinel or a (possibly retries-exhausted) transient.
func classified(err error) bool {
	return wantAny(err, ErrCorruptImage, ErrBadImage, ErrImageNotFound,
		ErrDeltaChain, ErrUnsupportedVersion) ||
		Transient(err) || errors.As(err, new(*faults.Error))
}

// settleGoroutines waits for the goroutine count to return to at most
// base+2 (drains and async commits shutting down).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", n, base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTortureFaultyStore(t *testing.T) {
	seed := tortureSeed(t)
	modes := []struct {
		name    string
		opts    []Option
		async   bool
		lazy    bool
		overlap bool // mutation during the checkpoint is part of the contract
	}{
		{name: "blocking"},
		{name: "async", async: true, overlap: true},
		{name: "delta", opts: []Option{WithIncremental(3)}},
		{name: "concurrent", opts: []Option{WithConcurrentCheckpoint()}, overlap: true},
		{name: "lazy", lazy: true},
	}
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2}
	const iters = 24
	const bufSize = 128 << 10

	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			baseGoroutines := runtime.NumGoroutine()
			inj := faults.New(faults.Config{
				Seed:  seed,
				Put:   faults.Rates{Transient: 0.15, Permanent: 0.05, Torn: 0.08, BitFlip: 0.08},
				Get:   faults.Rates{Transient: 0.10, Torn: 0.05, BitFlip: 0.05},
				GetAt: faults.Rates{Transient: 0.10, Torn: 0.05, BitFlip: 0.05},
			})
			store := NewFaultStore(NewMemStore(), inj)
			ctx := context.Background()

			opts := append([]Option{WithWorkers(2), WithShardSize(32 << 10), WithCheckpointRetry(retry)}, mode.opts...)
			s, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			rt := s.Runtime()
			d, err := rt.Malloc(bufSize)
			if err != nil {
				t.Fatal(err)
			}
			host, err := rt.AppAlloc(bufSize)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := rt.Malloc(bufSize)
			if err != nil {
				t.Fatal(err)
			}

			// On the snapshot-and-release paths, a background mutator
			// races the checkpoint pipeline on a second buffer the content
			// checks never look at. (Blocking checkpoints are cooperative
			// stop-the-world: mutating during one is a caller bug, not a
			// robustness gap.)
			quit := make(chan struct{})
			mutDone := make(chan error, 1)
			if mode.overlap {
				go func() {
					for i := 0; ; i++ {
						select {
						case <-quit:
							mutDone <- nil
							return
						default:
						}
						if err := rt.Memset(scratch, byte(i), 8192); err != nil {
							mutDone <- err
							return
						}
					}
				}()
			} else {
				mutDone <- nil
			}

			committed := map[string]byte{}
			for i := 0; i < iters; i++ {
				val := byte(i + 1)
				if err := rt.Memset(d, val, bufSize); err != nil {
					t.Fatalf("iter %d: Memset: %v (seed %d)", i, err, seed)
				}
				name := fmt.Sprintf("t%03d", i)
				var cerr error
				if mode.async {
					p, aerr := s.CheckpointAsync(ctx, store, name)
					if aerr != nil {
						cerr = aerr
					} else {
						_, cerr = p.Wait()
					}
				} else {
					_, cerr = s.CheckpointTo(ctx, store, name)
				}
				if cerr == nil {
					committed[name] = val
				} else {
					if errors.Is(cerr, ErrSessionClosed) {
						t.Fatalf("iter %d: store fault killed the session (seed %d): %v", i, seed, cerr)
					}
					if !classified(cerr) {
						t.Fatalf("iter %d: unclassified checkpoint error (seed %d): %v", i, seed, cerr)
					}
				}
			}
			close(quit)
			if err := <-mutDone; err != nil {
				t.Fatalf("mutator died (seed %d): %v", seed, err)
			}
			// The session survived every injected fault.
			if err := rt.Memset(d, 0xEE, 4096); err != nil {
				t.Fatalf("session unusable after torture (seed %d): %v", seed, err)
			}

			// Every image the store ended up holding — committed, torn,
			// or flipped — must parse clean or classify.
			vstore := WithRetry(store, retry)
			names, err := vstore.List(ctx)
			if err != nil {
				t.Fatalf("List (seed %d): %v", seed, err)
			}
			for _, name := range names {
				img, oerr := OpenImageFrom(ctx, vstore, name)
				if oerr != nil {
					if !classified(oerr) {
						t.Fatalf("image %q: unclassified parse error (seed %d): %v", name, seed, oerr)
					}
					continue
				}
				if verr := img.Verify(ctx); verr != nil && !classified(verr) {
					t.Fatalf("image %q: unclassified verify error (seed %d): %v", name, seed, verr)
				}
			}

			// Committed checkpoints whose chain verifies must restore to
			// exactly the checkpointed bytes.
			restored := 0
			for name, val := range committed {
				if _, verr := VerifyChain(ctx, vstore, name); verr != nil {
					if !classified(verr) {
						t.Fatalf("chain %q: unclassified error (seed %d): %v", name, seed, verr)
					}
					continue
				}
				var s2 *Session
				var rerr error
				if mode.lazy {
					s2, rerr = New(WithWorkers(2), WithLazyRestart(), WithCheckpointRetry(retry))
					if rerr == nil {
						rs, aerr := s2.RestartAsync(ctx, vstore, name)
						if aerr != nil {
							rerr = aerr
						} else {
							_, rerr = rs.Wait()
						}
					}
				} else {
					s2, rerr = RestoreFrom(ctx, vstore, name, WithWorkers(2), WithCheckpointRetry(retry))
				}
				if rerr != nil {
					// A fresh injected Get fault, or retries exhausted: fine,
					// as long as it classifies and nothing leaks.
					if !classified(rerr) {
						t.Fatalf("restore %q: unclassified error (seed %d): %v", name, seed, rerr)
					}
					if s2 != nil {
						s2.Close()
					}
					continue
				}
				rt2 := s2.Runtime()
				if err := rt2.Memcpy(host, d, 4, crt.MemcpyDeviceToHost); err != nil {
					t.Fatalf("restore %q: readback: %v (seed %d)", name, err, seed)
				}
				w, err := crt.HostU32(rt2, host, 1)
				if err != nil {
					t.Fatal(err)
				}
				if w[0] != word(val) {
					t.Fatalf("restore %q: silent corruption: got %#x, want %#x (seed %d)", name, w[0], word(val), seed)
				}
				restored++
				s2.Close()
				if n := s2.Space().RetainedPages(); n != 0 {
					t.Fatalf("restore %q: %d retained pages leaked (seed %d)", name, n, seed)
				}
			}
			t.Logf("seed %d: %d/%d checkpoints committed, %d restored intact, %d faults injected",
				seed, len(committed), iters, restored, inj.Injected())

			s.Close()
			if n := s.Space().RetainedPages(); n != 0 {
				t.Errorf("%d retained pages leaked (seed %d)", n, seed)
			}
			settleGoroutines(t, baseGoroutines)
		})
	}
}

// TestTortureRestartSupervised runs the Supervisor's full
// detect-verify-restart loop under a hostile store, asserting it always
// lands on a usable session with uncorrupted state.
func TestTortureRestartSupervised(t *testing.T) {
	seed := tortureSeed(t)
	inj := faults.New(faults.Config{
		Seed: seed + 100,
		Put:  faults.Rates{Transient: 0.15, Torn: 0.08, BitFlip: 0.08},
		Get:  faults.Rates{Transient: 0.08},
	})
	store := NewFaultStore(NewMemStore(), inj)
	f := newSVFixture(t, store, inj, nil)
	ctx := context.Background()

	lastCommitted := byte(0)
	for i := 0; i < 20; i++ {
		val := byte(i + 1)
		f.mutate(val)
		if err := f.sv.Checkpoint(ctx); err == nil {
			lastCommitted = val
		} else if !classified(err) && !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("iter %d: unclassified checkpoint error (seed %d): %v", i, seed, err)
		}
		if i%5 == 4 {
			f.kill()
			if err := f.sv.Recover(ctx); err != nil {
				t.Fatalf("iter %d: Recover (seed %d): %v", i, seed, err)
			}
			// Recovered state must be some committed value (or the cold
			// start's zero), never a torn/flipped in-between.
			got := f.readback()
			valid := got == 0
			for v := byte(1); v <= val && !valid; v++ {
				valid = got == word(v)
			}
			if !valid {
				t.Fatalf("iter %d: recovered to corrupt state %#x (seed %d)", i, got, seed)
			}
		}
	}
	_ = lastCommitted
	st := f.sv.Stats()
	if st.Failures != 4 {
		t.Fatalf("failures = %d, want the 4 injected kills (seed %d)", st.Failures, seed)
	}
	if st.Recoveries+st.ColdStarts < 4 {
		t.Fatalf("recoveries+cold = %d+%d, want >= 4 (seed %d)", st.Recoveries, st.ColdStarts, seed)
	}
}
