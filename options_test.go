package crac

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crt"
)

// runFixedWorkload performs an identical, deterministic CUDA workload
// on a session, so two equally-configured sessions produce
// byte-identical checkpoint images. Kernel registration happens in a
// fixed order (unlike setupVecAdd's map iteration, whose random order
// would legitimately reorder the call log between sessions).
func runFixedWorkload(t *testing.T, s *Session) {
	t.Helper()
	rt := s.Runtime()
	const n = 4096
	fat, err := rt.RegisterFatBinary("vectest")
	if err != nil {
		t.Fatalf("RegisterFatBinary: %v", err)
	}
	for _, name := range []string{"scale", "vecAdd"} {
		if err := rt.RegisterFunction(fat, name, vecAddKernels[name]); err != nil {
			t.Fatalf("RegisterFunction(%s): %v", name, err)
		}
	}
	var da, db, dc uint64
	for _, p := range []*uint64{&da, &db, &dc} {
		if *p, err = rt.Malloc(n * 4); err != nil {
			t.Fatalf("Malloc: %v", err)
		}
	}
	// An upper-half heap allocation, so the image carries at least one
	// region in addition to the plugin sections.
	if _, err := rt.AppAlloc(n * 4); err != nil {
		t.Fatalf("AppAlloc: %v", err)
	}
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: n / 256}, Block: crt.Dim3{X: 256}}
	if err := rt.LaunchKernel(fat, "vecAdd", cfg, crt.DefaultStream, da, db, dc, n); err != nil {
		t.Fatalf("LaunchKernel: %v", err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatalf("DeviceSynchronize: %v", err)
	}
}

// TestConfigShimEquivalence proves the deprecated Config/NewSession
// shim and the functional-option surface configure identical sessions:
// the same workload checkpoints to byte-identical images under both.
func TestConfigShimEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts []Option
	}{
		{
			name: "defaults",
			cfg:  Config{},
			opts: nil,
		},
		{
			name: "tuned-data-path",
			cfg: Config{
				GzipImage:           true,
				GzipLevel:           gzip.BestSpeed,
				CheckpointWorkers:   2,
				CheckpointShardSize: 64 << 10,
			},
			opts: []Option{WithGzip(gzip.BestSpeed), WithWorkers(2), WithShardSize(64 << 10)},
		},
		{
			name: "fsgsbase-switch",
			cfg:  Config{Switch: SwitchFSGSBase},
			opts: []Option{WithSwitcher(SwitchFSGSBase)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := NewSession(tc.cfg)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			defer legacy.Close()
			modern, err := New(tc.opts...)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer modern.Close()

			runFixedWorkload(t, legacy)
			runFixedWorkload(t, modern)

			var a, b bytes.Buffer
			if _, err := legacy.Checkpoint(context.Background(), &a); err != nil {
				t.Fatalf("legacy Checkpoint: %v", err)
			}
			if _, err := modern.Checkpoint(context.Background(), &b); err != nil {
				t.Fatalf("modern Checkpoint: %v", err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("Config shim and options produced different images (%d vs %d bytes)",
					a.Len(), b.Len())
			}
		})
	}
}

// TestCloseIdempotent covers the double-destroy bug: a second Close
// must be a no-op, and operations after Close report ErrSessionClosed.
func TestCloseIdempotent(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not double-destroy
	if _, err := s.Checkpoint(context.Background(), &bytes.Buffer{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrSessionClosed", err)
	}
	if err := s.Quiesce(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Quiesce after Close = %v, want ErrSessionClosed", err)
	}
	if s.Library() != nil || s.Space() == nil {
		// Space survives (it is just memory); the lower half does not.
		t.Fatalf("Close left lib=%v", s.Library())
	}
}

// TestCloseAfterFailedRestart covers the second half of the
// double-destroy bug: a restart that fails after tearing down the old
// lower half leaves the session closed, and Close must not re-destroy
// the already-destroyed objects.
func TestCloseAfterFailedRestart(t *testing.T) {
	s, err := New(WithASLR(42))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Runtime().Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		t.Fatal(err)
	}
	// With ASLR on, the fresh lower half lands elsewhere and replay
	// detects the mismatch — after the old lower half is already gone.
	err = s.Restart(context.Background(), bytes.NewReader(img.Bytes()))
	if err == nil {
		t.Skip("ASLR layout happened to match; cannot exercise the failure path")
	}
	if !errors.Is(err, ErrReplayMismatch) {
		t.Fatalf("Restart = %v, want ErrReplayMismatch", err)
	}
	// The session is closed now, not pointing at destroyed objects.
	if _, err := s.Checkpoint(context.Background(), &bytes.Buffer{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Checkpoint after failed restart = %v, want ErrSessionClosed", err)
	}
	// A second restart attempt also reports closed rather than
	// double-destroying.
	if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("second Restart = %v, want ErrSessionClosed", err)
	}
	s.Close() // must be a no-op, not a double-destroy
}

// TestCheckpointFileAtomic proves the deprecated CheckpointFile shim
// inherits the FileStore atomic-write path: a failing checkpoint leaves
// no partial image on disk.
func TestCheckpointFileAtomic(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // forces the checkpoint to fail after the temp file opens
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.img")
	if _, _, err := s.CheckpointFile(path); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("CheckpointFile on closed session = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed CheckpointFile left %s behind", path)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed CheckpointFile left temp files: %v", entries)
	}
}

// TestCheckpointFileRoundTrip keeps the shim honest end-to-end.
func TestCheckpointFileRoundTrip(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	runFixedWorkload(t, s)
	path := filepath.Join(t.TempDir(), "ckpt.img")
	size, st, err := s.CheckpointFile(path)
	if err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	if size <= 0 || st.Regions == 0 {
		t.Fatalf("CheckpointFile size=%d stats=%+v", size, st)
	}
	if err := s.RestartFile(path); err != nil {
		t.Fatalf("RestartFile: %v", err)
	}
	if s.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", s.Generation())
	}
}
