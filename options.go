package crac

import (
	"repro/internal/dmtcp"
	"repro/internal/gpusim"
)

// An Option configures a Session built by New, Restore, or RestoreFrom.
// The zero configuration (no options) matches the paper's main setup: a
// Tesla V100, the syscall fs switch, no compression, ASLR off, and the
// parallel data path using every CPU.
type Option func(*settings)

// settings is the resolved option set. The deprecated Config shim
// lowers onto the same struct, which is what makes the equivalence
// between the two surfaces exact (see compat.go).
type settings struct {
	prop         gpusim.Properties
	switcher     SwitcherKind
	gzip         bool
	gzipLevel    int
	workers      int
	shardSize    int
	imageVersion int
	incremental  int  // max deltas per base; 0 = incremental off
	concurrent   bool // blocking entry points use the snapshot path
	lazyRestart  bool // RestartFrom/RestoreFrom use the lazy fault-in path
	aslr         bool
	aslrSeed     int64
	retry        *RetryPolicy        // nil: no store retry wrapping
	budget       *dmtcp.WorkerBudget // nil: per-process default pools

	deviceArenaChunk  uint64
	pinnedArenaChunk  uint64
	managedArenaChunk uint64
	growthMmaps       int

	kernels *KernelRegistry
}

func resolve(opts []Option) settings {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithDevice selects the simulated device properties (default: Tesla
// V100).
func WithDevice(prop gpusim.Properties) Option {
	return func(s *settings) { s.prop = prop }
}

// WithSwitcher selects the fs-register switch mechanism of the
// upper→lower trampoline (default: SwitchSyscall, the unpatched-kernel
// configuration of the paper's main experiments).
func WithSwitcher(k SwitcherKind) Option {
	return func(s *settings) { s.switcher = k }
}

// WithGzip enables per-shard gzip compression of checkpoint images at
// the given compress/gzip level (gzip.BestSpeed..gzip.BestCompression;
// 0 selects gzip.DefaultCompression). Each shard compresses
// independently, so higher levels still scale across WithWorkers.
func WithGzip(level int) Option {
	return func(s *settings) { s.gzip, s.gzipLevel = true, level }
}

// WithWorkers bounds the checkpoint/restart data-path fan-out (image
// write pipeline, active-malloc drain, region/memory refill): n<=0 uses
// all CPUs, n==1 forces the serial reference path, which produces
// byte-identical images.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithShardSize overrides the v2 image shard granularity in bytes
// (0 = the format default).
func WithShardSize(bytes int) Option {
	return func(s *settings) { s.shardSize = bytes }
}

// WithImageVersion pins the written image format: 2 (or 0) for the
// chunked parallel layout, 1 for the legacy serial layout. Readers
// accept both regardless.
func WithImageVersion(v int) Option {
	return func(s *settings) { s.imageVersion = v }
}

// WithIncremental enables incremental checkpointing: CheckpointTo
// writes a full v3 base image, then up to n delta images — each
// carrying only the memory pages and allocation bytes written since its
// parent — before rotating to a fresh base. Deltas name their parent
// image, so restoring the chain tip transparently materializes
// base + deltas (RestartFrom / RestoreFrom / OpenImageFrom follow the
// lineage through the same Store). n <= 0 disables incremental mode.
//
// Only store-bound checkpoints join a chain: a plain Session.Checkpoint
// to an io.Writer has no name for a parent to refer to and always
// writes a self-contained image. A restart breaks the chain — the next
// checkpoint after it is a base.
func WithIncremental(n int) Option {
	return func(s *settings) { s.incremental = n }
}

// WithDeltaEvery is WithIncremental expressed as a base cadence: a full
// base image every n checkpoints, deltas in between (n <= 1 disables
// incremental mode). WithDeltaEvery(n) ≡ WithIncremental(n-1).
func WithDeltaEvery(n int) Option {
	return func(s *settings) { s.incremental = n - 1 }
}

// WithConcurrentCheckpoint routes Checkpoint and CheckpointTo through
// the snapshot-and-release (copy-on-write) path: the application is
// stopped only for the stream drain, the epoch cut, and the snapshot
// arming, while the shard pipeline, compression, and the Store commit
// overlap with further execution. The resulting image is byte-identical
// to a blocking checkpoint taken at the cut. CheckpointAsync uses the
// snapshot path regardless of this option; the option moves the
// blocking entry points onto it too, so existing checkpoint loops get
// the short pause without code changes.
func WithConcurrentCheckpoint() Option {
	return func(s *settings) { s.concurrent = true }
}

// WithLazyRestart routes RestartFrom and RestoreFrom through the lazy
// on-demand restore path: only image metadata and the replay log are
// read eagerly, every restored byte faults in on first access, and a
// background prefetcher drains the rest of the image while the
// application executes — time-to-first-kernel shrinks from
// O(image size) to O(replay log). The drain continues past the call's
// return (cancelled by Close or a later restart); use RestartAsync
// directly to observe or wait for it. Restored memory is byte-
// identical to an eager restart once the drain completes (DESIGN.md
// invariant 11), and every access before that sees the same bytes the
// eager path would have written.
func WithLazyRestart() Option {
	return func(s *settings) { s.lazyRestart = true }
}

// WithCheckpointRetry wraps every store-bound operation of the session
// (CheckpointTo, CheckpointAsync, RestartFrom, lazy restarts) in
// WithRetry with the given policy: transient store failures back off
// and retry instead of failing the checkpoint. The zero RetryPolicy
// selects DefaultRetryPolicy. Only the store commit retries — the
// checkpoint pipeline itself runs once (see WithRetry).
func WithCheckpointRetry(policy RetryPolicy) Option {
	return func(s *settings) { s.retry = &policy }
}

// WithASLR enables address-space randomization with the given seed.
// CRAC requires ASLR off (the default); enabling it demonstrates the
// replay-mismatch failure of paper Section 3.2.4 (see
// ErrReplayMismatch).
func WithASLR(seed int64) Option {
	return func(s *settings) { s.aslr, s.aslrSeed = true, seed }
}

// WithArenaChunks tunes the lower-half arena growth chunk sizes, passed
// through to the CUDA library (0 keeps each default).
func WithArenaChunks(device, pinned, managed uint64) Option {
	return func(s *settings) {
		s.deviceArenaChunk, s.pinnedArenaChunk, s.managedArenaChunk = device, pinned, managed
	}
}

// WithGrowthMmaps tunes how many growth mmaps the arenas may issue.
func WithGrowthMmaps(n int) Option {
	return func(s *settings) { s.growthMmaps = n }
}

// withWorkerBudget attaches the session's checkpoint pipeline to a
// shared resourcing domain. Pool wires this for every session it
// opens; it is not part of the public option surface because budgets
// only make sense with the admission control a Pool adds around them.
func withWorkerBudget(b *dmtcp.WorkerBudget) Option {
	return func(s *settings) { s.budget = b }
}

// WithKernels registers the application's kernel tables on the new
// session, making module kernels resolvable during log replay in a
// process that never executed the original RegisterFunction calls.
// Required for cross-process Restore / RestoreFrom; harmless elsewhere.
func WithKernels(reg *KernelRegistry) Option {
	return func(s *settings) { s.kernels = reg.clone() }
}
