package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dmtcp"
)

// A MigrateOption configures Migrate.
type MigrateOption func(*migrateSettings)

type migrateSettings struct {
	prefix        string
	maxRounds     int
	convergeFrac  float64
	convergeBytes uint64
	roundDelay    time.Duration
	closeSource   bool
	destOpts      []Option // nil: inherit the source session's settings
}

func resolveMigrate(opts []MigrateOption) migrateSettings {
	cfg := migrateSettings{
		prefix:        "migrate",
		maxRounds:     5,
		convergeFrac:  0.02,
		convergeBytes: 64 << 10,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxRounds < 1 {
		cfg.maxRounds = 1
	}
	return cfg
}

// WithMigratePrefix names the migration's images: pre-copy rounds are
// written as <prefix>-0, <prefix>-1, ... and the final cut as
// <prefix>-final (default prefix "migrate"). Use distinct prefixes
// when one destination store receives migrations from several
// sessions.
func WithMigratePrefix(prefix string) MigrateOption {
	return func(s *migrateSettings) { s.prefix = prefix }
}

// WithMigrateRounds caps the pre-copy phase at n rounds (the full base
// plus n-1 delta rounds; default 5, minimum 1). The final cut is not
// counted — it always happens.
func WithMigrateRounds(n int) MigrateOption {
	return func(s *migrateSettings) { s.maxRounds = n }
}

// WithMigrateConvergence tunes when pre-copy stops early: a delta
// round whose dirty payload is at most frac of the base round's total
// payload, or at most minBytes, means the dirty rate has converged and
// the final cut will be cheap (defaults: 2% and 64 KiB). Rounds also
// stop when the dirty payload stops shrinking — the application is
// writing faster than the network drains, and more rounds would only
// move the same pages again.
func WithMigrateConvergence(frac float64, minBytes uint64) MigrateOption {
	return func(s *migrateSettings) { s.convergeFrac, s.convergeBytes = frac, minBytes }
}

// WithMigrateRoundDelay inserts a pause between pre-copy rounds,
// letting the application run (and re-dirty pages) between deltas.
// Mostly useful in demos and experiments; production migrations want
// back-to-back rounds (the default) so the chain converges as fast as
// the network allows.
func WithMigrateRoundDelay(d time.Duration) MigrateOption {
	return func(s *migrateSettings) { s.roundDelay = d }
}

// WithMigrateCloseSource closes the source session once the
// destination is active (after a brief Resume, so goroutines blocked
// at the quiesce gate unwind). The default leaves the source alive and
// quiesced at the cut: the caller decides whether to Resume it (the
// two sessions then diverge) or Close it — which is also what a
// torture test needs to compare the two sides byte-for-byte.
func WithMigrateCloseSource() MigrateOption {
	return func(s *migrateSettings) { s.closeSource = true }
}

// WithMigrateSession configures the destination session with its own
// option set (it is built with exactly these options, as crac.New
// would). By default the destination inherits the source session's
// configuration — workers, shard size, compression, image version —
// which also guarantees the activated state is byte-identical to the
// source's cut.
func WithMigrateSession(opts ...Option) MigrateOption {
	return func(s *migrateSettings) { s.destOpts = opts }
}

// MigrateRound describes one image the migration moved: a pre-copy
// round (round 0 is the full base, later rounds are deltas of what the
// still-running application dirtied), or the final cut taken under
// quiesce.
type MigrateRound struct {
	// Name is the image's name in its store.
	Name string
	// Final marks the cut image written under quiesce.
	Final bool
	// Delta reports whether the image was a v3 delta (round 0 and
	// rebased rounds are full bases).
	Delta bool
	// ImageBytes is the encoded image size moved to the store.
	ImageBytes uint64
	// PayloadBytes is the dirty payload the round carried;
	// PayloadTotal the full span layout it was measured against. Their
	// ratio shrinking round over round is pre-copy convergence.
	PayloadBytes uint64
	PayloadTotal uint64
	// DirtyShards of TotalShards were emitted.
	DirtyShards int
	TotalShards int
	// Pause is the application-visible stop-the-world slice of the
	// round (CoW arming for pre-copy rounds; contained in the
	// migration's Downtime for the final cut).
	Pause time.Duration
	// Duration is the round's wall time including the store commit.
	Duration time.Duration
}

// MigrateReport is the migration's account of itself: every round
// moved, the convergence outcome, and the downtime split.
type MigrateReport struct {
	// Rounds lists the pre-copy rounds in order, then the final cut.
	Rounds []MigrateRound
	// PreCopyBytes is the total image bytes moved while the source kept
	// executing; FinalBytes the cut image written inside the downtime
	// window.
	PreCopyBytes uint64
	FinalBytes   uint64
	// Converged reports that pre-copy stopped because the dirty rate
	// met the convergence policy (not because it hit the round cap or
	// plateaued).
	Converged bool
	// Downtime is the service gap: source quiesce until the destination
	// session could execute (RestartAsync returned). The post-copy
	// drain continues in the background and is not part of it.
	Downtime time.Duration
	// Duration is the whole Migrate call, pre-copy included.
	Duration time.Duration
	// Tip is the chain tip image name (the final cut); restoring it
	// from the destination store reproduces the migrated state.
	Tip string
}

// Migration is a completed handoff: the destination session is live
// and executing, while the post-copy tail — the background drain of
// cold memory and the replication of the final cut image to the
// destination store — may still be in flight. Wait (or Done) observes
// it.
type Migration struct {
	// Dest is the activated destination session.
	Dest *Session
	// Report describes the migration's rounds and downtime.
	Report *MigrateReport

	done chan struct{}
	err  error
}

// Done returns a channel closed when the post-copy tail has finished
// (drain complete, final image replicated to the destination store).
func (m *Migration) Done() <-chan struct{} { return m.done }

// Wait blocks until the post-copy tail finishes. A tail error is not
// fatal to the destination session — cold memory keeps materializing
// on demand and the session stays fully usable — but until the final
// image is replicated, the destination store alone cannot reproduce
// the migrated state (the cut image still lives in the source store).
func (m *Migration) Wait() error {
	<-m.done
	return m.err
}

// migImage records one image the migration wrote, for rollback.
type migImage struct {
	store Store
	name  string
}

// Migrate moves a live session from the source store's node to the
// destination: iterative pre-copy rounds stream a full base and then
// v3 deltas of whatever the still-executing application re-dirtied
// into dst, until the dirty rate converges (or the round cap is hit);
// the source is then quiesced for the final copy-on-write cut — an
// O(dirty tail) delta written to the *source-side* store src, so no
// network transfer sits inside the downtime window — and a fresh
// destination session activates from the chain with a lazy
// RestartAsync, post-copy faulting the tail across the wire straight
// from src before the cut image has been replicated to dst. Downtime
// is quiesce → destination executable: the same order as a concurrent
// checkpoint pause plus a lazy restart's time-to-first-kernel,
// independent of the session's total footprint.
//
// src is the store local to the session's node (it receives the final
// cut and serves the post-copy tail; a DirStore served via ServeStore
// in a real deployment, any Store in-process). dst is the
// destination-side store the pre-copy chain streams into, typically an
// HTTPStore pointing at the destination node. The background tail
// (observed via the returned Migration) replicates the cut image from
// src to dst once the drain completes, after which dst holds the whole
// chain and src can be decommissioned.
//
// While Migrate runs, the session's checkpoint machinery belongs to
// the migration: checkpoints and restarts report ErrMigrationInFlight.
// On success the source session is left quiesced at the cut (see
// WithMigrateCloseSource), and its incremental lineage is rebased —
// the migration consumed the plugin's dirty baseline, so the next
// checkpoint after a Resume writes a self-contained base. On failure —
// context cancellation or a store error in any phase — the migration
// aborts cleanly: the source resumes executing where it was, every
// image the migration wrote is deleted from both stores, no
// copy-on-write pages stay retained, and the error is returned (a
// cancelled context matches ErrCancelled).
func Migrate(ctx context.Context, sess *Session, src, dst Store, opts ...MigrateOption) (*Migration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := resolveMigrate(opts)
	if singleImageStore(dst) {
		return nil, fmt.Errorf("crac: migrate: destination store holds a single image and cannot hold a pre-copy chain")
	}
	// The final cut is written to src and later replicated to dst; if
	// both are the same store the replication (and its source-side
	// delete) must not run, or it would delete the image it just
	// "copied".
	samePair := sameStore(src, dst)
	if err := sess.beginMigration(); err != nil {
		return nil, err
	}
	defer sess.endMigration()
	src = sess.retryWrap(src)
	dst = sess.retryWrap(dst)

	start := time.Now()
	rep := &MigrateReport{}
	var written []migImage
	quiesced := false
	var dest *Session
	abort := func(err error) (*Migration, error) {
		if quiesced {
			sess.Resume()
		}
		if dest != nil {
			dest.Close()
		}
		// The migration's rounds advanced the plugin's dirty baseline
		// past the session's own chain: rebase so the next checkpoint is
		// a self-contained base instead of a delta against an image that
		// is about to be deleted.
		sess.Rebase()
		sess.plugin.ResetIncremental()
		// Roll back even when the failure is the caller's own
		// cancellation: cleanup uses a detached context.
		cctx := context.WithoutCancel(ctx)
		for _, im := range written {
			im.store.Delete(cctx, im.name)
		}
		return nil, wrapCancelled(err)
	}

	// Phase 1 — pre-copy: stream a base, then deltas of what the
	// running application re-dirties, until the dirty payload converges
	// (or stops shrinking, or the round cap hits).
	var prev *dmtcp.DeltaState
	var basePayload uint64 = 1
	var lastPayload uint64
	for round := 0; ; round++ {
		name := fmt.Sprintf("%s-%d", cfg.prefix, round)
		t0 := time.Now()
		st, next, imgBytes, err := sess.migrateRound(ctx, dst, name, prev)
		if err != nil {
			return abort(fmt.Errorf("crac: migrate pre-copy round %d: %w", round, err))
		}
		written = append(written, migImage{dst, name})
		prev = next
		rep.Rounds = append(rep.Rounds, MigrateRound{
			Name:         name,
			Delta:        st.Delta,
			ImageBytes:   imgBytes,
			PayloadBytes: st.PayloadWritten,
			PayloadTotal: st.PayloadTotal,
			DirtyShards:  st.ShardsWritten,
			TotalShards:  st.ShardsTotal,
			Pause:        st.PauseDuration,
			Duration:     time.Since(t0),
		})
		rep.PreCopyBytes += imgBytes
		if round == 0 {
			basePayload = max(st.PayloadTotal, 1)
		} else {
			if st.PayloadWritten <= cfg.convergeBytes ||
				float64(st.PayloadWritten) <= cfg.convergeFrac*float64(basePayload) {
				rep.Converged = true
				break
			}
			if st.PayloadWritten >= lastPayload {
				break // dirty rate plateaued: more rounds move the same pages again
			}
		}
		lastPayload = st.PayloadWritten
		if round+1 >= cfg.maxRounds {
			break
		}
		if cfg.roundDelay > 0 {
			if err := sleepCtx(ctx, cfg.roundDelay); err != nil {
				return abort(err)
			}
		}
	}

	// The destination session is built before the downtime window opens
	// (its lower-half construction is not the source's problem). It
	// inherits the source's configuration — including the image-shaping
	// options that make the activated state byte-identical — unless
	// WithMigrateSession overrides it.
	destCfg := sess.cfg
	if cfg.destOpts != nil {
		destCfg = resolve(cfg.destOpts)
	}
	var err error
	dest, err = newSession(destCfg)
	if err != nil {
		return abort(fmt.Errorf("crac: migrate: building destination session: %w", err))
	}
	// Replay on the destination must resolve the same kernels the
	// source could, whether they were registered via WithKernels or at
	// runtime through RegisterFunction.
	for module, funcs := range sess.rt.KernelTables() {
		dest.rt.RegisterKernelTable(module, funcs)
	}

	// Phase 2 — the cut: quiesce the source and write the final delta
	// to the source-side store. Everything from here to RestartAsync
	// returning is the migration's visible downtime.
	finalName := cfg.prefix + "-final"
	downStart := time.Now()
	if err := sess.Quiesce(); err != nil {
		return abort(err)
	}
	quiesced = true
	t0 := time.Now()
	st, _, finalBytes, err := sess.migrateRound(ctx, src, finalName, prev)
	if err != nil {
		return abort(fmt.Errorf("crac: migrate final cut: %w", err))
	}
	written = append(written, migImage{src, finalName})
	rep.Rounds = append(rep.Rounds, MigrateRound{
		Name:         finalName,
		Final:        true,
		Delta:        st.Delta,
		ImageBytes:   finalBytes,
		PayloadBytes: st.PayloadWritten,
		PayloadTotal: st.PayloadTotal,
		DirtyShards:  st.ShardsWritten,
		TotalShards:  st.ShardsTotal,
		Pause:        st.PauseDuration,
		Duration:     time.Since(t0),
	})
	rep.FinalBytes = finalBytes
	rep.Tip = finalName

	// Phase 3 — activation: the destination restarts lazily from the
	// chain tip, resolving each image from dst first and falling back
	// to src — which is where (and only where) the final cut lives
	// right now. The visible phase is metadata + log replay; the tail
	// post-copy faults across the wire on demand.
	view := &fallbackStore{primary: dst, fallback: src}
	rst, err := dest.RestartAsync(ctx, view, finalName)
	if err != nil {
		return abort(fmt.Errorf("crac: migrate: activating destination: %w", err))
	}
	rep.Downtime = time.Since(downStart)

	// The source is no longer the session of record. Its lineage was
	// consumed by the migration either way.
	sess.Rebase()
	sess.plugin.ResetIncremental()
	if cfg.closeSource {
		sess.Resume() // let goroutines blocked at the gate unwind
		sess.Close()
	}

	rep.Duration = time.Since(start)
	m := &Migration{Dest: dest, Report: rep, done: make(chan struct{})}
	go func() {
		defer close(m.done)
		// Post-copy drain: the prefetcher pulls the rest of the chain
		// through the fallback view (dst for the pre-copy rounds, src
		// for the cut).
		if _, err := rst.Wait(); err != nil {
			m.err = fmt.Errorf("crac: migrate post-copy drain: %w", err)
			return
		}
		if samePair {
			return
		}
		// The destination no longer needs src for faults; make dst
		// self-contained by replicating the cut image, then drop it from
		// the source side.
		if err := copyImage(ctx, src, dst, finalName); err != nil {
			m.err = fmt.Errorf("crac: migrate: replicating %q to destination store: %w", finalName, err)
			return
		}
		// Best-effort: a stale cut image on the source node is garbage,
		// not a correctness problem.
		src.Delete(context.WithoutCancel(ctx), finalName)
	}()
	return m, nil
}

// beginMigration claims the session for a migration.
func (s *Session) beginMigration() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lib == nil {
		return ErrSessionClosed
	}
	if s.migrating {
		return fmt.Errorf("%w: cannot start another", ErrMigrationInFlight)
	}
	if s.inflight != nil {
		return fmt.Errorf("%w: cannot migrate", ErrCheckpointInFlight)
	}
	s.migrating = true
	return nil
}

func (s *Session) endMigration() {
	s.mu.Lock()
	s.migrating = false
	s.mu.Unlock()
}

// migrateRound takes one incremental snapshot-and-release checkpoint
// of the session into store under name, chained to prev (nil: a full
// base). It is the migration-side twin of CheckpointAsync's body,
// waited on: the CoW snapshot arms inside a micro-quiesce (or under
// the caller's Quiesce for the final cut), the image writes through
// the store, and the plugin's dirty baseline advances only on commit.
// Every retained CoW page is released whether the round commits or
// fails.
func (s *Session) migrateRound(ctx context.Context, store Store, name string, prev *dmtcp.DeltaState) (Stats, *dmtcp.DeltaState, uint64, error) {
	if _, err := s.reserveCheckpointSlot(name, true); err != nil {
		return Stats{}, nil, 0, err
	}
	defer s.releaseCheckpoint()
	s.mu.Lock()
	space := s.space
	s.mu.Unlock()
	fz, pause, err := s.armFrozen(ctx, space, true, prev, name)
	if err != nil {
		return Stats{}, nil, 0, wrapCancelled(err)
	}
	var st Stats
	var next *dmtcp.DeltaState
	var moved int64
	err = store.Put(ctx, name, func(w io.Writer) error {
		mw := &meterWriter{w: w}
		var cerr error
		st, next, cerr = s.engine.WriteFrozen(ctx, mw, fz)
		moved = mw.n
		return cerr
	})
	fz.Release()
	st.PauseDuration = pause
	if err != nil {
		return st, nil, 0, wrapCancelled(err)
	}
	s.plugin.CommitIncremental()
	return st, next, uint64(moved), nil
}

// meterWriter counts the bytes that actually crossed into the store.
type meterWriter struct {
	w io.Writer
	n int64
}

func (m *meterWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.n += int64(n)
	return n, err
}

// fallbackStore resolves reads from primary first and falls back to
// fallback for names primary does not hold — the migration's union
// view: the pre-copy chain lives at the destination, the final cut (at
// activation time) only at the source. Writes and deletes go to
// primary alone.
type fallbackStore struct {
	primary  Store
	fallback Store
}

func (f *fallbackStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	return f.primary.Put(ctx, name, write)
}

func (f *fallbackStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	rc, err := f.primary.Get(ctx, name)
	if errors.Is(err, ErrImageNotFound) {
		return f.fallback.Get(ctx, name)
	}
	return rc, err
}

// GetAt implements RandomAccessStore over both sides (slurping through
// Get when a side lacks the capability).
func (f *fallbackStore) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	src, size, err := openImageAt(ctx, f.primary, name)
	if errors.Is(err, ErrImageNotFound) {
		return openImageAt(ctx, f.fallback, name)
	}
	return src, size, err
}

func (f *fallbackStore) List(ctx context.Context) ([]string, error) {
	names, err := f.primary.List(ctx)
	if err != nil {
		return nil, err
	}
	fnames, err := f.fallback.List(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range fnames {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *fallbackStore) Delete(ctx context.Context, name string) error {
	return f.primary.Delete(ctx, name)
}

var (
	_ Store             = (*fallbackStore)(nil)
	_ RandomAccessStore = (*fallbackStore)(nil)
)

// sameStore reports whether a and b are the same store value.
// Interface equality panics on incomparable dynamic types; such a pair
// is treated as distinct.
func sameStore(a, b Store) (same bool) {
	defer func() { _ = recover() }()
	return a == b
}

// copyImage streams the named image from one store into another.
func copyImage(ctx context.Context, from, to Store, name string) error {
	rc, err := from.Get(ctx, name)
	if err != nil {
		return err
	}
	defer rc.Close()
	return to.Put(ctx, name, func(w io.Writer) error {
		_, cerr := io.Copy(w, rc)
		return cerr
	})
}
