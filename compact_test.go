package crac

// Pauseless chain compaction (ISSUE 9): Compact squashes base + k
// deltas into a new base from stored bytes alone — while the session
// that wrote them keeps checkpointing — and condemned ancestors plus
// unreferenced chunks are reclaimed without ever touching a chunk a
// live manifest references.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/cas"
)

// chainDigest restores the named chain (materializing deltas) and
// digests the image layout plus every restored region payload — the
// "restored bytes" identity the compaction contract is stated in.
func chainDigest(t *testing.T, store Store, tip string) [32]byte {
	t.Helper()
	ctx := context.Background()
	img, err := OpenImageFrom(ctx, store, tip)
	if err != nil {
		t.Fatalf("resolving %q: %v", tip, err)
	}
	h := sha256.New()
	info := img.Info()
	for _, r := range info.Regions {
		fmt.Fprintf(h, "region %x %x %s %s\n", r.Start, r.Len, r.Prot, r.Label)
	}
	for _, s := range info.Sections {
		data, _ := img.Section(s.Name)
		fmt.Fprintf(h, "section %s %d\n", s.Name, len(data))
		h.Write(data)
	}
	sess, err := RestoreFrom(ctx, store, tip)
	if err != nil {
		t.Fatalf("restoring %q: %v", tip, err)
	}
	defer sess.Close()
	regions := snapshotRegions(t, sess)
	starts := make([]uint64, 0, len(regions))
	for start := range regions {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		fmt.Fprintf(h, "payload %x %d\n", start, len(regions[start]))
		h.Write(regions[start])
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

func TestCompactSquashesChainByteIdentically(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store func(t *testing.T) Store
	}{
		{"MemStore", func(t *testing.T) Store { return NewMemStore() }},
		{"CASStore", func(t *testing.T) Store { return NewCASStore(NewMemStore()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			store := tc.store(t)
			s, err := New(WithShardSize(64<<10), WithIncremental(16))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			w := newIncrWorkload(t, s.Runtime())
			tip := "gen0"
			if _, err := s.CheckpointTo(ctx, store, tip); err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 4; round++ {
				w.step(t, round)
				tip = fmt.Sprintf("gen%d", round)
				if _, err := s.CheckpointTo(ctx, store, tip); err != nil {
					t.Fatal(err)
				}
			}
			before := chainDigest(t, store, tip)

			st, err := Compact(ctx, store, tip)
			if err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if st.Depth != 4 || len(st.Squashed) != 4 {
				t.Fatalf("Compact stats = %+v, want depth 4", st)
			}
			if len(st.Deleted) != 4 {
				t.Fatalf("Compact deleted %v, want all 4 stranded ancestors", st.Deleted)
			}

			// The tip is now a base…
			timg, err := OpenImageFrom(ctx, store, tip)
			if err != nil {
				t.Fatal(err)
			}
			if info := timg.Info(); info.Delta || info.Parent != "" || info.DeltaDepth != 0 {
				t.Fatalf("compacted tip is not a base: %+v", info)
			}
			// …and restores the exact bytes the chain did.
			if after := chainDigest(t, store, tip); after != before {
				t.Fatal("restored bytes differ after compaction")
			}

			// The live session's next delta still applies: its recorded
			// parentID must match the identity Compact preserved.
			w.step(t, 9)
			if st, err := s.CheckpointTo(ctx, store, "gen5"); err != nil || !st.Delta {
				t.Fatalf("post-compaction delta: %v", err)
			}
			if _, err := VerifyChain(ctx, store, "gen5"); err != nil {
				t.Fatalf("VerifyChain over the compacted base: %v", err)
			}
			restored, err := RestoreFrom(ctx, store, "gen5")
			if err != nil {
				t.Fatalf("restoring a delta recorded over the compacted base: %v", err)
			}
			restored.Close()
		})
	}
}

func TestCompactBaseIsNoOp(t *testing.T) {
	ctx := context.Background()
	store := NewMemStore()
	s, err := New(WithShardSize(64<<10), WithIncremental(8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	newIncrWorkload(t, s.Runtime())
	if _, err := s.CheckpointTo(ctx, store, "base"); err != nil {
		t.Fatal(err)
	}
	before := conformGet(t, store, "base")
	st, err := Compact(ctx, store, "base")
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth != 0 || len(st.Squashed) != 0 {
		t.Fatalf("Compact on a base = %+v, want no-op", st)
	}
	if after := conformGet(t, store, "base"); !bytes.Equal(before, after) {
		t.Fatal("no-op compaction rewrote the base")
	}
}

// TestCompactRetainsSharedAncestors pins the lineage rule: a condemned
// ancestor another live lineage still reaches must survive compaction.
// The fork is a second delta recording the same parent — byte-for-byte
// the sibling of the compacted tip, stored under its own name.
func TestCompactRetainsSharedAncestors(t *testing.T) {
	ctx := context.Background()
	store := NewMemStore()
	s, err := New(WithShardSize(64<<10), WithIncremental(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	if _, err := s.CheckpointTo(ctx, store, "base"); err != nil {
		t.Fatal(err)
	}
	w.step(t, 1)
	if st, err := s.CheckpointTo(ctx, store, "fork-a"); err != nil || !st.Delta {
		t.Fatalf("fork-a: %v", err)
	}
	// fork-b: a sibling delta over the same base.
	conformPut(t, store, "fork-b", conformGet(t, store, "fork-a"))
	digestB := chainDigest(t, store, "fork-b")

	st, err := Compact(ctx, store, "fork-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Squashed) != 1 || st.Squashed[0] != "base" {
		t.Fatalf("Compact squashed %v, want [base]", st.Squashed)
	}
	// base is condemned but fork-b still needs it: it must NOT be
	// deleted.
	for _, d := range st.Deleted {
		if d == "base" {
			t.Fatalf("Compact deleted %q, still the parent of live lineage fork-b", d)
		}
	}
	if _, err := store.Get(ctx, "base"); err != nil {
		t.Fatalf("shared ancestor gone after compaction: %v", err)
	}
	if _, err := VerifyChain(ctx, store, "fork-b"); err != nil {
		t.Fatalf("VerifyChain(fork-b) after compacting its sibling: %v", err)
	}
	if d := chainDigest(t, store, "fork-b"); d != digestB {
		t.Fatal("fork-b restores differently after its sibling was compacted")
	}
}

// TestCompactTortureConcurrentWriter is the -race torture for the
// pauseless contract: one session checkpoints continuously (no
// Quiesce, no pause) while the main loop repeatedly compacts the chain
// tip of a CASStore. Invariants, checked every round:
//
//   - the bytes restored from a compacted tip are identical to the
//     bytes the original chain resolved to;
//   - deltas the writer records over a compacted base keep verifying
//     and restoring;
//   - no chunk referenced by any live manifest is ever GC'd (every
//     listed image re-reads fully after each compaction + GC pass).
func TestCompactTortureConcurrentWriter(t *testing.T) {
	seed := tortureSeed(t)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	cstore := NewCASStore(NewMemStore())

	s, err := New(WithShardSize(64<<10), WithIncremental(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	if _, err := s.CheckpointTo(ctx, cstore, "gen000"); err != nil {
		t.Fatal(err)
	}

	const (
		writerGens = 15
		compactors = 6
	)
	var (
		mu      sync.Mutex // serializes CheckpointTo calls vs tip reads
		tipName = "gen000"
		gen     = 0
	)
	checkpoint := func() bool {
		mu.Lock()
		defer mu.Unlock()
		gen++
		w.step(t, gen)
		name := fmt.Sprintf("gen%03d", gen)
		if _, err := s.CheckpointTo(ctx, cstore, name); err != nil {
			t.Errorf("checkpoint %s: %v", name, err)
			return false
		}
		tipName = name
		return true
	}
	currentTip := func() string {
		mu.Lock()
		defer mu.Unlock()
		return tipName
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < writerGens; i++ {
			if !checkpoint() {
				return
			}
		}
	}()

	for i := 0; i < compactors; i++ {
		tip := currentTip()
		before := chainDigest(t, cstore, tip)
		if _, err := Compact(ctx, cstore, tip); err != nil {
			t.Fatalf("Compact(%s) under concurrent writer: %v", tip, err)
		}
		if after := chainDigest(t, cstore, tip); after != before {
			t.Fatalf("restored bytes of %s changed across compaction", tip)
		}
		// GC safety: every chunk any live manifest references must
		// still be present — reconstructing every image proves it.
		names, err := cstore.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			rc, err := cstore.Get(ctx, n)
			if err != nil {
				t.Fatalf("image %q unreadable after compaction %d: %v", n, i, err)
			}
			if _, err := io.Copy(io.Discard, rc); err != nil {
				t.Fatalf("image %q torn after compaction %d: %v", n, i, err)
			}
			rc.Close()
		}
		// Jitter the interleaving a little per seed.
		if rng.Intn(2) == 0 {
			checkpoint()
		}
	}
	<-writerDone
	if t.Failed() {
		return
	}

	// Final sweep: the surviving tip chain verifies and restores, and
	// every manifest's chunk references resolve in the backing.
	tip := currentTip()
	if _, err := VerifyChain(ctx, cstore, tip); err != nil {
		t.Fatalf("final VerifyChain(%s): %v", tip, err)
	}
	sess, err := RestoreFrom(ctx, cstore, tip)
	if err != nil {
		t.Fatalf("final restore: %v", err)
	}
	sess.Close()
	rep, err := DedupReport(ctx, cstore)
	if err != nil {
		t.Fatal(err)
	}
	names, err := cstore.Backing().List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	chunksInStore := 0
	for _, n := range names {
		if cas.IsChunkName(n) {
			chunksInStore++
		}
	}
	if rep.Chunks > chunksInStore {
		t.Fatalf("manifests reference %d unique chunks but the store holds %d", rep.Chunks, chunksInStore)
	}
}
