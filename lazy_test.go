package crac

// Acceptance tests for lazy on-demand restart (ISSUE 5): restart reads
// only metadata and the replay log eagerly, faults shards in on first
// access, and drains the rest in the background — with post-drain
// memory byte-identical to an eager restart (DESIGN.md invariant 11).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// sessionSnapshot checkpoints the session to a buffer (v2, blocking)
// — the canonical "what does memory hold" probe: it reads every
// restored byte through the fault path.
func sessionSnapshot(t testing.TB, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLazyRestartByteIdentity checks that a lazy restart, once
// drained, leaves the session byte-identical to an eager restart of
// the same image — across formats (v2 raw and gzip'd, v1, and an
// incremental v3 chain whose shards resolve from base and deltas).
func TestLazyRestartByteIdentity(t *testing.T) {
	cases := []struct {
		name  string
		opts  []Option
		chain bool
	}{
		{"v2", nil, false},
		{"v2-gzip", []Option{WithGzip(1)}, false},
		{"v1", []Option{WithImageVersion(1)}, false},
		{"v1-gzip", []Option{WithImageVersion(1), WithGzip(1)}, false},
		{"v3-chain", []Option{WithIncremental(8), WithShardSize(64 << 10)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]Option{WithWorkers(0)}, tc.opts...)
			s, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			w := newIncrWorkload(t, s.Runtime())
			store := NewMemStore()
			ctx := context.Background()
			tip := "gen0"
			if _, err := s.CheckpointTo(ctx, store, tip); err != nil {
				t.Fatal(err)
			}
			if tc.chain {
				for round := 1; round <= 3; round++ {
					w.step(t, round)
					tip = fmt.Sprintf("gen%d", round)
					if _, err := s.CheckpointTo(ctx, store, tip); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Eager reference: a fresh session restored the classic way.
			ref, err := RestoreFrom(ctx, store, tip, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			want := sessionSnapshot(t, ref)

			// Lazy: restart the original session in place.
			p, err := s.RestartAsync(ctx, store, tip)
			if err != nil {
				t.Fatal(err)
			}
			// Touch a few bytes through the fault path before the drain.
			if _, err := s.Runtime().HostAccess(w.host[3]+777, 64, false); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Runtime().HostAccess(w.dev[1]+incrBufSize/2, 64, false); err != nil {
				t.Fatal(err)
			}
			st, err := p.Wait()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if st.RestoreVisibleDuration <= 0 || st.RestoreDuration < st.RestoreVisibleDuration {
				t.Fatalf("restore stats not split: %+v", st)
			}
			if cold := s.Space().ColdBytes(); cold != 0 {
				t.Fatalf("%d bytes still cold after drain", cold)
			}
			got := sessionSnapshot(t, s)
			if !bytes.Equal(want, got) {
				t.Fatalf("lazy-restored memory differs from eager (%d vs %d image bytes)", len(got), len(want))
			}
		})
	}
}

// TestLazyRestartTortureByteIdentity is the invariant-11 torture test:
// after a lazy restart, deterministic mutations interleave with racing
// readers and the background prefetcher — every access goes through
// the fault path while the drain is in flight. The drained state must
// equal an eager restart followed by the same mutations. Run under
// -race in CI.
func TestLazyRestartTortureByteIdentity(t *testing.T) {
	opts := []Option{WithWorkers(0), WithShardSize(128 << 10), WithGzip(1)}
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	store := NewMemStore()
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, w *incrWorkload) {
		for round := 0; round < 24; round++ {
			w.step(t, round+5)
			if err := w.rt.Memset(w.managed+uint64(round%32)*4096, byte(round), 2048); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Eager reference: restore, then the same deterministic mutations.
	ref, err := RestoreFrom(ctx, store, "img", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refW := &incrWorkload{rt: ref.Runtime(), host: w.host, dev: w.dev, managed: w.managed}
	mutate(t, refW)
	want := sessionSnapshot(t, ref)

	// Lazy: the same mutations run while the prefetcher drains, with
	// reader goroutines pounding the fault path from the side.
	p, err := s.RestartAsync(ctx, store, "img")
	if err != nil {
		t.Fatal(err)
	}
	stopReaders := make(chan struct{})
	var wg sync.WaitGroup
	readErr := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i += 3 {
				select {
				case <-stopReaders:
					return
				default:
				}
				var addr uint64
				switch i % 3 {
				case 0:
					addr = w.host[i%incrHostBufs] + uint64(i%7)*1024
				case 1:
					addr = w.dev[i%incrDevAllocs] + uint64(i%5)*2048
				default:
					addr = w.managed + uint64(i%32)*4096
				}
				if _, err := s.Runtime().HostAccess(addr, 512, false); err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	mutate(t, w)
	if _, err := p.Wait(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stopReaders)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("reader failed during drain: %v", err)
	default:
	}
	got := sessionSnapshot(t, s)
	if !bytes.Equal(want, got) {
		t.Fatal("lazy-restored + mutated memory differs from eager + same mutations")
	}
}

// TestLazyRestartManagedLeftCold checks that the managed (UVM) side of
// a lazy restart stays cold: payload materialization neither migrates
// pages nor stamps touch epochs, so every managed page is still
// host-resident and untouched after the drain — until the application
// actually reaches it.
func TestLazyRestartManagedLeftCold(t *testing.T) {
	s, err := New(WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := newIncrWorkload(t, s.Runtime())
	store := NewMemStore()
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
		t.Fatal(err)
	}
	p, err := s.RestartAsync(ctx, store, "img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	uvmMgr := s.Library().UVM()
	pages := uvmMgr.Stats().PagesOnHostNow + uvmMgr.Stats().PagesOnDeviceNow
	if got := uvmMgr.UntouchedHostPages(); got != pages {
		t.Fatalf("%d of %d managed pages touched by the drain", pages-got, pages)
	}
	// First real access migrates and stamps as usual.
	if _, err := s.Runtime().HostAccess(w.managed, 4096, false); err != nil {
		t.Fatal(err)
	}
	if got := uvmMgr.UntouchedHostPages(); got != pages-1 {
		t.Fatalf("after one touch: %d untouched pages, want %d", got, pages-1)
	}
}

// TestLazyRestartCancelLeavesRestorable cancels the background drain
// right after the visible phase: the remaining cold memory must keep
// materializing on demand, the drained/faulted content must match an
// eager restart, and the session must accept a fresh (eager) restart
// afterwards.
func TestLazyRestartCancelLeavesRestorable(t *testing.T) {
	// A workload big enough that the drain cannot win the race against
	// the immediate cancel below.
	opts := []Option{WithWorkers(0)}
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	var dev []uint64
	const allocs, allocSize = 16, 4 << 20
	for i := 0; i < allocs; i++ {
		d, err := rt.Malloc(allocSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(d, byte(0x11*i+1), allocSize); err != nil {
			t.Fatal(err)
		}
		dev = append(dev, d)
	}
	store := NewMemStore()
	if _, err := s.CheckpointTo(context.Background(), store, "img"); err != nil {
		t.Fatal(err)
	}

	ref, err := RestoreFrom(context.Background(), store, "img", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := sessionSnapshot(t, ref)

	ctx, cancel := context.WithCancel(context.Background())
	p, err := s.RestartAsync(ctx, store, "img")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := p.Wait(); err != nil {
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("drain error is not ErrCancelled: %v", err)
		}
	} else {
		// The drain won the race after all (a very slow cancel): nothing
		// left to assert about mid-flight state, but the equivalence
		// below still must hold.
		t.Log("drain completed before the cancel landed")
	}

	// On-demand materialization still works for everything the drain
	// did not reach: a full checkpoint reads every byte.
	got := sessionSnapshot(t, s)
	if !bytes.Equal(want, got) {
		t.Fatal("post-cancel memory differs from eager restart")
	}
	if cold := s.Space().ColdBytes(); cold != 0 {
		t.Fatalf("%d bytes cold after a full read-through", cold)
	}
	// And the session restarts again, eagerly, from the same store.
	if err := s.RestartFrom(context.Background(), store, "img"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, sessionSnapshot(t, s)) {
		t.Fatal("post-cancel eager restart differs")
	}
}

// TestWithLazyRestartOption checks the option reroutes RestartFrom and
// that a session close mid-drain cancels cleanly.
func TestWithLazyRestartOption(t *testing.T) {
	s, err := New(WithWorkers(0), WithLazyRestart())
	if err != nil {
		t.Fatal(err)
	}
	w := newIncrWorkload(t, s.Runtime())
	store := NewMemStore()
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
		t.Fatal(err)
	}
	if err := s.RestartFrom(ctx, store, "img"); err != nil {
		t.Fatal(err)
	}
	// The restart is lazy: reads still work (fault path), generation
	// advanced.
	if s.Generation() != 1 {
		t.Fatalf("generation %d, want 1", s.Generation())
	}
	b, err := s.Runtime().HostAccess(w.host[0], 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatalf("host buffer byte %#x, want 0x01", b[0])
	}
	// Close mid-drain must cancel and release without hanging.
	s.Close()
}
