package crac

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStorePanicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	fs := NewFileStore(path)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic in write callback did not propagate")
			}
		}()
		_ = fs.Put(context.Background(), "img", func(w io.Writer) error {
			_, _ = w.Write([]byte("partial"))
			panic("writer died")
		})
	}()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover file after panic: %s", e.Name())
	}
}

func TestFileStoreFailedWriteLeavesOldImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	fs := NewFileStore(path)
	ctx := context.Background()
	if err := fs.Put(ctx, "img", func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("pipeline died")
	if err := fs.Put(ctx, "img", func(w io.Writer) error {
		_, _ = w.Write([]byte("BAD"))
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("Put = %v, want the write error", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "good" {
		t.Fatalf("image = %q, want the previous committed bytes", b)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want just the image", len(entries))
	}
}

func TestMemStorePutAllOrNothing(t *testing.T) {
	s := NewMemStore()
	ctx := context.Background()
	wantErr := errors.New("mid-write failure")
	if err := s.Put(ctx, "img", func(w io.Writer) error {
		_, _ = w.Write([]byte("partial bytes"))
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("Put = %v, want the write error", err)
	}
	if _, err := s.Get(ctx, "img"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("Get after failed Put = %v, want ErrImageNotFound (no partial image)", err)
	}
}

func TestMemStorePutCancelledContextNotPublished(t *testing.T) {
	s := NewMemStore()
	ctx, cancel := context.WithCancel(context.Background())
	err := s.Put(ctx, "img", func(w io.Writer) error {
		_, werr := w.Write([]byte("bytes"))
		cancel() // the context dies between the write and the publish
		return werr
	})
	if err == nil {
		t.Fatal("Put succeeded with a context cancelled mid-commit")
	}
	if _, gerr := s.Get(context.Background(), "img"); !errors.Is(gerr, ErrImageNotFound) {
		t.Fatalf("Get = %v, want ErrImageNotFound (cancelled Put must not publish)", gerr)
	}
}

func TestDirStorePruneKeepsDurableChain(t *testing.T) {
	for _, sync := range []bool{false, true} {
		name := "nosync"
		var opts []StoreOption
		if !sync {
			opts = append(opts, WithNoSync())
		} else {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			ds, err := NewDirStore(t.TempDir(), 2, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for _, n := range []string{"a", "b", "c", "d"} {
				if err := ds.Put(ctx, n, func(w io.Writer) error {
					_, werr := w.Write([]byte(n))
					return werr
				}); err != nil {
					t.Fatal(err)
				}
			}
			names, err := ds.List(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 {
				t.Fatalf("List = %v, want the newest 2 kept", names)
			}
			for _, n := range names {
				if n != "c" && n != "d" {
					t.Fatalf("List = %v, want {c, d}", names)
				}
			}
		})
	}
}

func TestWithNoSyncPlumbing(t *testing.T) {
	fs := NewFileStore("x", WithNoSync())
	if !fs.NoSync {
		t.Fatal("NewFileStore(WithNoSync) did not set NoSync")
	}
	if NewFileStore("x").NoSync {
		t.Fatal("NewFileStore defaults to NoSync")
	}
	ds, err := NewDirStore(t.TempDir(), 0, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	if !ds.NoSync {
		t.Fatal("NewDirStore(WithNoSync) did not set NoSync")
	}
	ds2, err := NewDirStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NoSync {
		t.Fatal("NewDirStore defaults to NoSync")
	}
}

func TestValidateImageNameAllowsQuarantineSuffix(t *testing.T) {
	s := NewMemStore()
	ctx := context.Background()
	if err := s.Put(ctx, "img~quarantined", func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatalf("quarantine name rejected: %v", err)
	}
	ds, err := NewDirStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(ctx, "img~quarantined", func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatalf("DirStore rejected quarantine name: %v", err)
	}
}
