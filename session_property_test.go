package crac

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"repro/internal/crt"
)

// TestQuickImageDeterminism property: two checkpoints taken back to back
// with no intervening CUDA or host activity produce byte-identical
// images, for arbitrary prior allocation histories. (Checkpointing is a
// pure function of process state — there is no hidden nondeterminism in
// the image format or the drain.)
func TestQuickImageDeterminism(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := NewSession(Config{})
		if err != nil {
			return false
		}
		defer s.Close()
		rt := s.Runtime()
		var live []uint64
		for _, op := range ops {
			switch {
			case op%3 == 0 && len(live) > 0:
				i := int(op) % len(live)
				if rt.Free(live[i]) == nil {
					live = append(live[:i], live[i+1:]...)
				}
			case op%3 == 1:
				if a, err := rt.MallocManaged(uint64(op)*64 + 64); err == nil {
					live = append(live, a)
				}
			default:
				if a, err := rt.Malloc(uint64(op)*128 + 128); err == nil {
					if rt.Memset(a, op, 64) != nil {
						return false
					}
					live = append(live, a)
				}
			}
		}
		var img1, img2 bytes.Buffer
		if _, err := s.Checkpoint(context.Background(), &img1); err != nil {
			return false
		}
		if _, err := s.Checkpoint(context.Background(), &img2); err != nil {
			return false
		}
		return bytes.Equal(img1.Bytes(), img2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRestartIdempotent property: restarting twice from the same
// image yields the same live device state both times (restart is a pure
// function of the image).
func TestQuickRestartIdempotent(t *testing.T) {
	f := func(sizes []uint16) bool {
		s, err := NewSession(Config{})
		if err != nil {
			return false
		}
		defer s.Close()
		rt := s.Runtime()
		for _, sz := range sizes {
			if len(sizes) > 24 {
				sizes = sizes[:24]
			}
			if a, err := rt.Malloc(uint64(sz) + 1); err == nil {
				if rt.Memset(a, byte(sz), uint64(sz)+1) != nil {
					return false
				}
			}
		}
		var img bytes.Buffer
		if _, err := s.Checkpoint(context.Background(), &img); err != nil {
			return false
		}
		snapshot := func() []cActive {
			var out []cActive
			for _, a := range s.Library().ActiveDeviceMallocs() {
				buf := make([]byte, a.Size)
				if err := s.Space().ReadAt(a.Addr, buf); err != nil {
					return nil
				}
				out = append(out, cActive{a.Addr, a.Size, string(buf)})
			}
			return out
		}
		if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
			return false
		}
		first := snapshot()
		if err := s.Restart(context.Background(), bytes.NewReader(img.Bytes())); err != nil {
			return false
		}
		second := snapshot()
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

type cActive struct {
	addr uint64
	size uint64
	data string
}

// TestAsyncOrderingUnderCRAC: stream-ordered operations observe FIFO
// semantics through the trampoline exactly as natively — an async copy
// enqueued after a kernel sees the kernel's output.
func TestAsyncOrderingUnderCRAC(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	fat, da, _, _, _ := setupVecAdd(t, rt, 256)
	stream, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	pin, err := rt.MallocHost(256 * 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 256}}
	// kernel then async D2H on the same stream: the copy must see the
	// scaled values.
	if err := rt.LaunchKernel(fat, "scale", cfg, stream, da, 256, 10); err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyAsync(pin, da, 256*4, crt.MemcpyDeviceToHost, stream); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamSynchronize(stream); err != nil {
		t.Fatal(err)
	}
	hv, err := crt.HostF32(rt, pin, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if hv[i] != float32(10*i) {
			t.Fatalf("async ordering violated: pin[%d] = %v, want %v", i, hv[i], float32(10*i))
		}
	}
}
