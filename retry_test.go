package crac

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/faults"
)

// flakyStore fails the first failN calls of each op with err, then
// delegates to the inner store.
type flakyStore struct {
	inner Store
	err   error
	puts  int
	gets  int
	lists int
	dels  int
	failN int
}

func (s *flakyStore) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	s.puts++
	if s.puts <= s.failN {
		// Consume the writer the way a real store would before dying
		// mid-commit.
		_ = write(io.Discard)
		return s.err
	}
	return s.inner.Put(ctx, name, write)
}

func (s *flakyStore) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	s.gets++
	if s.gets <= s.failN {
		return nil, s.err
	}
	return s.inner.Get(ctx, name)
}

func (s *flakyStore) List(ctx context.Context) ([]string, error) {
	s.lists++
	if s.lists <= s.failN {
		return nil, s.err
	}
	return s.inner.List(ctx)
}

func (s *flakyStore) Delete(ctx context.Context, name string) error {
	s.dels++
	if s.dels <= s.failN {
		return s.err
	}
	return s.inner.Delete(ctx, name)
}

// transientErr is a minimal error satisfying the Transient() predicate
// without touching the faults package.
type transientErr struct{}

func (transientErr) Error() string   { return "flaky" }
func (transientErr) Transient() bool { return true }

// noSleep replaces the backoff with an instant, counted no-op.
func noSleep(count *int) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*count++
		return ctx.Err()
	}
}

func TestTransientPredicate(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{ErrTransient, true},
		{fmt.Errorf("wrap: %w", ErrTransient), true},
		{transientErr{}, true},
		{fmt.Errorf("wrap: %w", transientErr{}), true},
		{&faults.Error{Op: faults.OpPut, Kind: faults.KindTransient}, true},
		{&faults.Error{Op: faults.OpPut, Kind: faults.KindPermanent}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", context.Canceled), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryRecoversTransientPut(t *testing.T) {
	inner := NewMemStore()
	fl := &flakyStore{inner: inner, err: transientErr{}, failN: 2}
	var sleeps int
	p := DefaultRetryPolicy()
	p.sleep = noSleep(&sleeps)
	rs := WithRetry(fl, p)

	writes := 0
	err := rs.Put(context.Background(), "img", func(w io.Writer) error {
		writes++
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if writes != 1 {
		t.Fatalf("write callback ran %d times, want exactly 1", writes)
	}
	if fl.puts != 3 {
		t.Fatalf("inner Put called %d times, want 3 (2 failures + success)", fl.puts)
	}
	if sleeps != 2 {
		t.Fatalf("slept %d times, want 2", sleeps)
	}
	rc, err := inner.Get(context.Background(), "img")
	if err != nil {
		t.Fatalf("Get after retry: %v", err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "payload" {
		t.Fatalf("stored %q, want %q", b, "payload")
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	fl := &flakyStore{inner: NewMemStore(), err: transientErr{}, failN: 100}
	var sleeps int
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Nanosecond, Multiplier: 2, MaxDelay: time.Microsecond}
	p.sleep = noSleep(&sleeps)
	rs := WithRetry(fl, p)

	_, err := rs.Get(context.Background(), "img")
	if err == nil || !Transient(err) {
		t.Fatalf("Get = %v, want the transient error back", err)
	}
	if fl.gets != 3 {
		t.Fatalf("inner Get called %d times, want MaxAttempts=3", fl.gets)
	}
}

func TestRetryDoesNotRetryPermanent(t *testing.T) {
	fl := &flakyStore{inner: NewMemStore(), err: errors.New("disk on fire"), failN: 100}
	var sleeps int
	p := DefaultRetryPolicy()
	p.sleep = noSleep(&sleeps)
	rs := WithRetry(fl, p)

	if _, err := rs.List(context.Background()); err == nil {
		t.Fatal("List succeeded through a permanent failure")
	}
	if fl.lists != 1 {
		t.Fatalf("inner List called %d times, want 1 (no retries)", fl.lists)
	}
	if sleeps != 0 {
		t.Fatalf("slept %d times on a permanent error", sleeps)
	}
}

func TestRetryDeleteIdempotent(t *testing.T) {
	// First Delete reaches the store (removing the image) but its ack
	// is "lost" (transient error reported); the retry sees
	// ErrImageNotFound, which must count as success.
	inner := NewMemStore()
	if err := inner.Put(context.Background(), "img", func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ackLost := &ackLostDeleteStore{Store: inner}
	p := DefaultRetryPolicy()
	var sleeps int
	p.sleep = noSleep(&sleeps)
	rs := WithRetry(ackLost, p)
	if err := rs.Delete(context.Background(), "img"); err != nil {
		t.Fatalf("Delete: %v (want retried not-found treated as success)", err)
	}
	if names, _ := inner.List(context.Background()); len(names) != 0 {
		t.Fatalf("image still present: %v", names)
	}
}

// ackLostDeleteStore performs the first Delete but reports a transient
// failure for it.
type ackLostDeleteStore struct {
	Store
	calls int
}

func (s *ackLostDeleteStore) Delete(ctx context.Context, name string) error {
	s.calls++
	err := s.Store.Delete(ctx, name)
	if s.calls == 1 && err == nil {
		return transientErr{}
	}
	return err
}

func TestRetryContextCancelStopsRetries(t *testing.T) {
	fl := &flakyStore{inner: NewMemStore(), err: transientErr{}, failN: 100}
	ctx, cancel := context.WithCancel(context.Background())
	p := DefaultRetryPolicy()
	p.sleep = func(sctx context.Context, d time.Duration) error {
		cancel() // the context dies while backing off
		return sctx.Err()
	}
	rs := WithRetry(fl, p)
	_, err := rs.Get(ctx, "img")
	if err == nil {
		t.Fatal("Get succeeded after cancellation")
	}
	if fl.gets != 1 {
		t.Fatalf("inner Get called %d times after ctx cancel, want 1", fl.gets)
	}
}

func TestRetryPreservesRandomAccess(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir, 0, WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := WithRetry(ds, RetryPolicy{}).(RandomAccessStore); !ok {
		t.Fatal("WithRetry(DirStore) lost the RandomAccessStore capability")
	}
	plain := &flakyStore{inner: NewMemStore()} // no GetAt
	if _, ok := WithRetry(plain, RetryPolicy{}).(RandomAccessStore); ok {
		t.Fatal("WithRetry invented a RandomAccessStore capability on a plain Store")
	}
}

func TestRetryDelayBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}.normalized()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.delay(i + 1); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	pj := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}.normalized()
	for i := 0; i < 50; i++ {
		d := pj.delay(1)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±50%% of 100ms", d)
		}
	}
}

func TestRetryThroughFaultStoreEndToEnd(t *testing.T) {
	// A session checkpointing through WithCheckpointRetry over a fault
	// store with forced transient failures must commit exactly one
	// intact image.
	inj := faults.New(faults.Config{Seed: 11})
	inj.FailNext(faults.OpPut, faults.KindTransient)
	inj.FailNext(faults.OpPut, faults.KindTransient)
	store := NewFaultStore(NewMemStore(), inj)

	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2}
	s, err := New(WithWorkers(0), WithCheckpointRetry(p))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rt := s.Runtime()
	d, err := rt.Malloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(d, 0xAB, 64<<10); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
		t.Fatalf("CheckpointTo through transient faults: %v", err)
	}
	if chain, err := VerifyChain(ctx, store, "img"); err != nil {
		t.Fatalf("VerifyChain after retried checkpoint: %v (chain %v)", err, chain)
	}
	if got := inj.Injected(); got != 2 {
		t.Fatalf("injected %d faults, want the 2 queued", got)
	}
}
