package crac

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/addrspace"
	"repro/internal/cracplugin"
	"repro/internal/dmtcp"
	"repro/internal/replaylog"
)

// maxLazyChainDepth bounds how many parent links a lazy restart
// follows, mirroring the eager resolver's cap.
const maxLazyChainDepth = 512

// Restarting is a lazy restart whose visible phase has completed: the
// session is already executing (RestartAsync returned), while the
// background prefetcher is still draining the image. Wait (or Done)
// observes the drain; the Stats it returns split the restore into the
// application-visible phase and the overlapped background drain.
//
// A failed or cancelled drain is not fatal: the remaining cold memory
// keeps materializing on demand, and Wait reports the drain's error
// (ErrCancelled for a cancelled context) while the session stays fully
// usable and restartable.
type Restarting struct{ h *lazyHandle }

// Done returns a channel closed when the background drain finished
// (successfully or not).
func (p *Restarting) Done() <-chan struct{} { return p.h.done }

// Wait blocks until the background drain finishes and returns the
// restore Stats (RestoreVisibleDuration / RestoreBackgroundDuration /
// RestoreDuration) and the drain's error, if any.
func (p *Restarting) Wait() (Stats, error) {
	<-p.h.done
	return p.h.st, p.h.err
}

// lazyHandle tracks one lazy restart's background state on the
// session, so a later restart or Close can cancel the drain and close
// the image sources.
type lazyHandle struct {
	cancel    context.CancelFunc
	done      chan struct{}
	closeOnce sync.Once
	closers   []io.Closer
	st        Stats
	err       error
}

func (h *lazyHandle) closeSources() {
	h.closeOnce.Do(func() {
		for _, c := range h.closers {
			c.Close()
		}
	})
}

// detach cancels the drain, waits it out, and closes the sources —
// called when the space the handle serves is being discarded.
func (h *lazyHandle) detach() {
	h.cancel()
	<-h.done
	h.closeSources()
}

func closeAll(closers []io.Closer) {
	for _, c := range closers {
		c.Close()
	}
}

// openIndexChain opens the named image (and, for a delta, its whole
// parent chain) for random access and links the shard indexes.
func openIndexChain(ctx context.Context, store Store, name string) ([]*dmtcp.ShardIndex, []io.Closer, error) {
	var chain []*dmtcp.ShardIndex
	var closers []io.Closer
	fail := func(err error) ([]*dmtcp.ShardIndex, []io.Closer, error) {
		closeAll(closers)
		return nil, nil, err
	}
	seen := make(map[string]bool)
	cur := name
	for {
		if seen[cur] || len(chain) > maxLazyChainDepth {
			return fail(fmt.Errorf("%w: broken lineage at %q", ErrDeltaChain, cur))
		}
		seen[cur] = true
		src, size, err := openImageAt(ctx, store, cur)
		if err != nil {
			if len(chain) > 0 {
				err = fmt.Errorf("%w: opening parent %q: %w", ErrDeltaChain, cur, err)
			}
			return fail(err)
		}
		closers = append(closers, src)
		ix, err := dmtcp.OpenShardIndex(src, size)
		if err != nil {
			return fail(fmt.Errorf("image %q: %w", cur, err))
		}
		if len(chain) > 0 {
			if err := chain[len(chain)-1].SetParent(ix); err != nil {
				return fail(err)
			}
		}
		chain = append(chain, ix)
		if !ix.Delta {
			return chain, closers, nil
		}
		cur = ix.Parent
	}
}

// RestartAsync restarts the session lazily from the named image: the
// blocking (visible) phase reads only the image metadata and the
// replay log, rebuilds the lower half, replays the log, and maps every
// restored byte — upper-half regions and active-malloc memory alike —
// as cold. When RestartAsync returns, the application may run (and
// launch kernels) immediately: the first access to any cold range
// faults its image shards in, while a background prefetcher drains the
// rest of the image concurrently — device memory first, managed (UVM)
// memory last. Delta chains restore shard-by-shard from the nearest
// ancestor that owns each shard, through the same Store.
//
// ctx governs both the visible phase and the background drain: it must
// stay live until the returned handle reports completion, or the drain
// is cancelled (which only stops prefetching — cold memory still
// materializes on demand and the session stays fully usable).
//
// Like Restart, a failure during the visible phase (after the old
// lower half is torn down) leaves the session closed.
func (s *Session) RestartAsync(ctx context.Context, store Store, name string) (*Restarting, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	store = s.retryWrap(store)
	start := time.Now()
	chain, closers, err := openIndexChain(ctx, store, name)
	if err != nil {
		return nil, wrapCancelled(err)
	}
	failOpen := func(err error) (*Restarting, error) {
		closeAll(closers)
		return nil, wrapCancelled(err)
	}
	logBytes, err := chain[0].SectionBytes(cracplugin.SectionLog)
	if err != nil {
		return failOpen(err)
	}
	log, err := replaylog.DecodeBytes(logBytes)
	if err != nil {
		return failOpen(fmt.Errorf("%w: decoding image log: %v", ErrBadImage, err))
	}

	// Same guards as the eager restart: no restart under quiesce, none
	// while a checkpoint is in flight, and qmu held for the whole
	// visible phase so a racing Quiesce cannot freeze the old space
	// mid-swap.
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.quiesced > 0 {
		return failOpen(fmt.Errorf("%w: resume before restarting", ErrQuiesced))
	}
	s.mu.Lock()
	if s.migrating {
		s.mu.Unlock()
		return failOpen(fmt.Errorf("%w: cannot restart", ErrMigrationInFlight))
	}
	if s.inflight != nil {
		s.mu.Unlock()
		return failOpen(fmt.Errorf("%w: cannot restart", ErrCheckpointInFlight))
	}
	oldLib, oldHelper, oldLazy := s.lib, s.helper, s.lazy
	s.lib, s.helper, s.lazy = nil, nil, nil
	s.mu.Unlock()
	if oldLib == nil {
		return failOpen(ErrSessionClosed)
	}
	// A previous lazy restart's drain serves the space that is about to
	// be discarded: stop it first.
	if oldLazy != nil {
		oldLazy.detach()
	}

	// The old process dies; a fresh lower half comes up.
	oldLib.Destroy()
	oldHelper.Unload()
	// A lazily-restored space is written through FillCold as shards
	// arrive; demand-zero mmap backing keeps the arena rebuild (and so
	// the visible phase) O(metadata) instead of O(arena bytes).
	space := newSpace(s.cfg)
	space.SetMmapBacked(true)
	helper, lib, entries, err := buildLowerHalf(s.cfg, space)
	if err != nil {
		closeAll(closers)
		return nil, err
	}
	abort := func(err error) (*Restarting, error) {
		lib.Destroy()
		helper.Unload()
		closeAll(closers)
		return nil, wrapCancelled(err)
	}

	// Map every image region at its final protection, content cold —
	// the lazy counterpart of RestoreRegions. Fills go through the
	// privileged FillCold push, so no write-then-protect dance is
	// needed.
	for _, rd := range chain[0].Regions {
		if _, err := space.MMap(rd.Start, rd.Len, rd.Prot, addrspace.MapFixedNoReplace,
			addrspace.HalfUpper, rd.Label); err != nil {
			return abort(fmt.Errorf("crac: mapping region %#x+%d (%s): %w", rd.Start, rd.Len, rd.Label, err))
		}
	}
	restorer, err := dmtcp.NewLazyRestorer(space, chain)
	if err != nil {
		return abort(err)
	}
	restorer.Mergers = sectionMergers
	restorer.PlanRegions()

	// Replay the log into the fresh library (recreating every
	// allocation at its original address), then let the plugins lay
	// their fill plans instead of refilling eagerly.
	if err := s.rt.Rebind(lib, entries, log); err != nil {
		return abort(err)
	}
	if err := s.engine.RunLazyRestartHooks(ctx, restorer); err != nil {
		return abort(err)
	}
	// Arm the gate, then mark everything cold. From here on, any access
	// to restored memory materializes its shards on demand.
	space.BeginLazy(restorer.MaterializeRange)
	restorer.Seal()

	drainCtx, cancel := context.WithCancel(ctx)
	h := &lazyHandle{cancel: cancel, done: make(chan struct{}), closers: closers}
	s.mu.Lock()
	s.space, s.helper, s.lib = space, helper, lib
	s.generation++
	// A restored process starts a fresh incremental lineage.
	s.incr = nil
	s.lazy = h
	s.mu.Unlock()
	s.plugin.ResetIncremental()

	visible := time.Since(start)
	go func() {
		bgStart := time.Now()
		err := restorer.Prefetch(drainCtx)
		bg := time.Since(bgStart)
		if err == nil {
			// Fully drained: uninstall the gate (restoring the zero-cost
			// data-plane fast path) and release the image sources — every
			// shard any future fault could need has been decoded.
			space.EndLazy()
			h.closeSources()
		}
		h.st = Stats{
			RestoreVisibleDuration:    visible,
			RestoreBackgroundDuration: bg,
			RestoreDuration:           visible + bg,
		}
		h.err = wrapCancelled(err)
		close(h.done)
	}()
	return &Restarting{h: h}, nil
}
