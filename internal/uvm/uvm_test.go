package uvm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterAndLookup(t *testing.T) {
	m := NewManager()
	r := m.Register(0x10000, 3*PageSize)
	if r.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", r.Pages())
	}
	if _, ok := m.Lookup(0x10000 + PageSize); !ok {
		t.Fatal("lookup inside region failed")
	}
	if _, ok := m.Lookup(0x10000 + 3*PageSize); ok {
		t.Fatal("lookup past end succeeded")
	}
	if !m.Contains(0x10000) {
		t.Fatal("Contains failed")
	}
}

func TestUnregister(t *testing.T) {
	m := NewManager()
	m.Register(0x10000, PageSize)
	if err := m.Unregister(0x10000); err != nil {
		t.Fatal(err)
	}
	if err := m.Unregister(0x10000); !errors.Is(err, ErrNotManaged) {
		t.Fatalf("double unregister err = %v", err)
	}
}

func TestFaultMigration(t *testing.T) {
	m := NewManager()
	base := uint64(0x20000)
	m.Register(base, 4*PageSize)

	// Pages start host-resident: host access does not fault.
	faults, err := m.Access(Host, base, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("host access to host-resident pages faulted %d times", faults)
	}
	// Device touch faults each page once.
	faults, err = m.Access(Device, base, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 4 {
		t.Fatalf("device faults = %d, want 4", faults)
	}
	if res, _ := m.ResidencyOf(base); res != OnDevice {
		t.Fatalf("residency = %v, want device", res)
	}
	// Second device touch: no faults.
	faults, _ = m.Access(Device, base, 4*PageSize)
	if faults != 0 {
		t.Fatalf("re-access faulted %d times", faults)
	}
	// Host touch of one page migrates it back.
	faults, _ = m.Access(Host, base+PageSize, 1)
	if faults != 1 {
		t.Fatalf("host fault = %d, want 1", faults)
	}
	st := m.Stats()
	if st.DeviceFaults != 4 || st.HostFaults != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PagesOnHostNow != 1 || st.PagesOnDeviceNow != 3 {
		t.Fatalf("residency counts = %+v", st)
	}
}

func TestAccessPartialPages(t *testing.T) {
	m := NewManager()
	base := uint64(0x30000)
	m.Register(base, 4*PageSize)
	// A 10-byte access straddling a page boundary touches two pages.
	faults, err := m.Access(Device, base+PageSize-5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 2 {
		t.Fatalf("straddling access faults = %d, want 2", faults)
	}
}

func TestAccessOutsideRegion(t *testing.T) {
	m := NewManager()
	m.Register(0x40000, PageSize)
	if _, err := m.Access(Device, 0x90000, 8); !errors.Is(err, ErrNotManaged) {
		t.Fatalf("err = %v, want ErrNotManaged", err)
	}
}

func TestAccessSpansRegions(t *testing.T) {
	m := NewManager()
	m.Register(0x50000, PageSize)
	m.Register(0x50000+PageSize, PageSize) // adjacent region
	faults, err := m.Access(Device, 0x50000, 2*PageSize)
	if err != nil {
		t.Fatalf("spanning access: %v", err)
	}
	if faults != 2 {
		t.Fatalf("faults = %d, want 2", faults)
	}
}

func TestPrefetch(t *testing.T) {
	m := NewManager()
	base := uint64(0x60000)
	m.Register(base, 8*PageSize)
	moved, err := m.Prefetch(Device, base, 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 8 {
		t.Fatalf("moved = %d, want 8", moved)
	}
	// Prefetch does not count as faults.
	if st := m.Stats(); st.DeviceFaults != 0 {
		t.Fatalf("prefetch counted faults: %+v", st)
	}
	// Subsequent device access is fault-free.
	if f, _ := m.Access(Device, base, 8*PageSize); f != 0 {
		t.Fatalf("faults after prefetch = %d", f)
	}
}

func TestConcurrentAccessSamePage(t *testing.T) {
	// Two "streams" hammering the same page from both sides must never
	// corrupt the residency state — the situation CRAC supports and
	// CRUM's shadow paging cannot (paper Section 1 item 2).
	m := NewManager()
	base := uint64(0x70000)
	m.Register(base, PageSize)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(side Side) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if _, err := m.Access(side, base, 8); err != nil {
					t.Errorf("access: %v", err)
					return
				}
			}
		}(Side(i % 2))
	}
	wg.Wait()
	st := m.Stats()
	if st.PagesOnHostNow+st.PagesOnDeviceNow != 1 {
		t.Fatalf("page residency corrupted: %+v", st)
	}
}

// TestQuickResidencyConservation property: after any access sequence,
// PagesOnHost + PagesOnDevice equals the registered page count, and
// bytes migrated in each direction are multiples of the page size
// (DESIGN.md invariant 5).
func TestQuickResidencyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager()
		base := uint64(0x80000)
		const pages = 8
		m.Register(base, pages*PageSize)
		for _, op := range ops {
			side := Side(op % 2)
			page := uint64(op/2) % pages
			n := uint64(op%3)*PageSize/2 + 1
			if base+page*PageSize+n > base+pages*PageSize {
				n = PageSize
			}
			_, _ = m.Access(side, base+page*PageSize, n)
		}
		st := m.Stats()
		return st.PagesOnHostNow+st.PagesOnDeviceNow == pages &&
			st.BytesToDevice%PageSize == 0 && st.BytesToHost%PageSize == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSideAndResidencyStrings(t *testing.T) {
	if Host.String() != "host" || Device.String() != "device" {
		t.Fatal("Side strings")
	}
	if OnHost.String() != "host" || OnDevice.String() != "device" {
		t.Fatal("Residency strings")
	}
}

func TestCleanSinceTracksTouchesAndResidency(t *testing.T) {
	m := NewManager()
	r := m.Register(0x1000, 8*PageSize)
	_ = r
	cut := m.CutEpoch()
	// Never-touched, host-resident pages are clean.
	if !m.CleanSince(0x1000, 8*PageSize, cut) {
		t.Fatal("untouched host pages must be clean")
	}
	// A host access after the cut dirties its pages.
	if _, err := m.Access(Host, 0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if m.CleanSince(0x1000, PageSize, cut) {
		t.Fatal("touched page must not be clean")
	}
	if !m.CleanSince(0x1000+PageSize, 7*PageSize, cut) {
		t.Fatal("untouched tail must stay clean")
	}
	// Device-resident pages are never clean, even when touched before
	// the cut.
	if _, err := m.Access(Device, 0x1000+4*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	cut2 := m.CutEpoch()
	if m.CleanSince(0x1000+4*PageSize, PageSize, cut2) {
		t.Fatal("device-resident page must not be clean")
	}
	// Migrating it back before a new cut makes it clean again only
	// after the touch falls behind the cut.
	if _, err := m.Access(Host, 0x1000+4*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if m.CleanSince(0x1000+4*PageSize, PageSize, cut2) {
		t.Fatal("freshly migrated page must not be clean against an old cut")
	}
	cut3 := m.CutEpoch()
	if !m.CleanSince(0x1000+4*PageSize, PageSize, cut3) {
		t.Fatal("host page untouched since newest cut must be clean")
	}
	// Unmanaged bytes are never clean.
	if m.CleanSince(0x9000_0000, PageSize, cut3) {
		t.Fatal("unmanaged range must not report clean")
	}
}

func TestPrefetchCountsAsTouch(t *testing.T) {
	m := NewManager()
	m.Register(0x1000, 4*PageSize)
	cut := m.CutEpoch()
	if _, err := m.Prefetch(Device, 0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if m.CleanSince(0x1000, PageSize, cut) {
		t.Fatal("prefetched page must not be clean")
	}
}

// TestSnapshotFreezesCleanSince: the frozen view keeps answering from
// capture-time state while the live manager moves on — the property
// that keeps an overlapped checkpoint's skip decisions byte-identical
// to a blocking one's.
func TestSnapshotFreezesCleanSince(t *testing.T) {
	m := NewManager()
	m.Register(0x1000, 4*PageSize)
	cut := m.CutEpoch()
	sn := m.Snapshot()
	// Touch and migrate a page after the capture.
	if _, err := m.Access(Device, 0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if m.CleanSince(0x1000, PageSize, cut) {
		t.Fatal("live view must see the post-capture touch")
	}
	if !sn.CleanSince(0x1000, PageSize, cut) {
		t.Fatal("frozen view must not see the post-capture touch")
	}
	// A page dirty at capture stays dirty in the frozen view.
	if _, err := m.Access(Device, 0x1000+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	sn2 := m.Snapshot()
	if sn2.CleanSince(0x1000+PageSize, PageSize, cut) {
		t.Fatal("frozen view must keep capture-time dirtiness")
	}
	// Unmanaged bytes report not-clean, as on the live manager.
	if sn.CleanSince(0x9000_0000, PageSize, cut) {
		t.Fatal("unmanaged range must not report clean in the frozen view")
	}
}
