// Package uvm simulates CUDA Unified Virtual Memory (UVM): managed
// allocations whose pages migrate on demand between host and device when
// either side touches them, as on Pascal-and-later GPUs with hardware
// page faulting (paper Section 2.3).
//
// The simulated host and device share one address space, so "migration"
// is modelled as per-page residency state plus fault counters, under a
// per-page lock. This preserves the properties the paper's evaluation
// relies on: host and device may interleave accesses to the same page in
// any order (no read-modify-write pattern restriction, unlike CRUM), and
// two concurrent CUDA streams may write the same page (the case where
// CRUM's shadow-page scheme fails, Section 1 item 2).
package uvm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the UVM page granularity (matches the address-space pages).
const PageSize = 4096

// Residency is where a managed page currently resides.
type Residency uint8

// Residency states.
const (
	OnHost Residency = iota
	OnDevice
)

// String names the residency.
func (r Residency) String() string {
	if r == OnDevice {
		return "device"
	}
	return "host"
}

// Side identifies the accessor in an access or fault.
type Side uint8

// Access sides.
const (
	Host Side = iota
	Device
)

// String names the side.
func (s Side) String() string {
	if s == Device {
		return "device"
	}
	return "host"
}

type page struct {
	mu  sync.Mutex
	res Residency
	// gen is the manager's touch epoch at the page's last access or
	// prefetch (0: never touched). Incremental checkpointing skips
	// host-resident pages untouched since the previous checkpoint's cut.
	gen uint64
}

// Region is one managed allocation under UVM control.
type Region struct {
	Base uint64
	Len  uint64

	mgr   *Manager
	pages []page

	hostFaults   atomic.Uint64
	deviceFaults atomic.Uint64
	migratedIn   atomic.Uint64 // bytes migrated host→device
	migratedOut  atomic.Uint64 // bytes migrated device→host
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return len(r.pages) }

// Stats summarizes a region's fault activity.
type Stats struct {
	HostFaults        uint64
	DeviceFaults      uint64
	BytesToDevice     uint64
	BytesToHost       uint64
	PagesOnDeviceNow  int
	PagesOnHostNow    int
	RegisteredRegions int
	RegisteredBytes   uint64
}

// Manager tracks all managed regions of one CUDA library instance.
type Manager struct {
	mu      sync.Mutex
	regions map[uint64]*Region // keyed by base address

	// epoch is the touch-epoch counter backing CutEpoch, starting at 1.
	epoch atomic.Uint64
}

// ErrNotManaged is returned for addresses outside any managed region.
var ErrNotManaged = errors.New("uvm: address not in a managed region")

// NewManager creates an empty UVM manager.
func NewManager() *Manager {
	m := &Manager{regions: make(map[uint64]*Region)}
	m.epoch.Store(1)
	return m
}

// CutEpoch takes a touch-tracking cut: it returns the current epoch and
// advances to the next one. Pages touched before the call carry a stamp
// ≤ the returned cut; pages touched after it carry a larger stamp. See
// CleanSince.
func (m *Manager) CutEpoch() uint64 {
	return m.epoch.Add(1) - 1
}

// CleanSince reports whether every page of [addr, addr+length) is
// host-resident and untouched since the given cut — the pages whose
// content the CPU side already holds and that no access has moved or
// mutated since the previous checkpoint, which an incremental drain may
// therefore skip (never-touched pages, stamp 0, are clean under any
// cut). Bytes outside any managed region report false: the caller
// cannot reason about them.
func (m *Manager) CleanSince(addr, length, cut uint64) bool {
	for length > 0 {
		r, ok := m.Lookup(addr)
		if !ok {
			return false
		}
		chunk := r.Base + r.Len - addr
		if chunk > length {
			chunk = length
		}
		first := (addr - r.Base) / PageSize
		last := (addr + chunk - 1 - r.Base) / PageSize
		for pi := first; pi <= last; pi++ {
			p := &r.pages[pi]
			p.mu.Lock()
			dirty := p.res != OnHost || p.gen > cut
			p.mu.Unlock()
			if dirty {
				return false
			}
		}
		addr += chunk
		length -= chunk
	}
	return true
}

// Snapshot is a frozen copy of every managed page's residency and touch
// epoch, captured by Manager.Snapshot. A concurrent checkpoint freezes
// the UVM state in the stop-the-world window and evaluates its
// may-skip-this-allocation decisions against the frozen view while the
// application keeps faulting pages around — so the emitted image equals
// the one a blocking checkpoint at the capture point would have written.
type Snapshot struct {
	regions []snapRegion
}

type snapRegion struct {
	base, length uint64
	res          []Residency
	gen          []uint64
}

// Snapshot captures the residency and touch epoch of every managed page.
// O(pages) metadata copy; no payload is touched.
func (m *Manager) Snapshot() *Snapshot {
	m.mu.Lock()
	regions := make([]*Region, 0, len(m.regions))
	for _, r := range m.regions {
		regions = append(regions, r)
	}
	m.mu.Unlock()
	sn := &Snapshot{regions: make([]snapRegion, 0, len(regions))}
	for _, r := range regions {
		sr := snapRegion{base: r.Base, length: r.Len,
			res: make([]Residency, len(r.pages)), gen: make([]uint64, len(r.pages))}
		for i := range r.pages {
			p := &r.pages[i]
			p.mu.Lock()
			sr.res[i] = p.res
			sr.gen[i] = p.gen
			p.mu.Unlock()
		}
		sn.regions = append(sn.regions, sr)
	}
	return sn
}

// CleanSince is Manager.CleanSince evaluated against the frozen state:
// whether every page of [addr, addr+length) was host-resident and
// untouched since the cut at capture time. Bytes outside any region
// captured report false.
func (s *Snapshot) CleanSince(addr, length, cut uint64) bool {
	for length > 0 {
		var sr *snapRegion
		for i := range s.regions {
			r := &s.regions[i]
			if addr >= r.base && addr < r.base+r.length {
				sr = r
				break
			}
		}
		if sr == nil {
			return false
		}
		chunk := sr.base + sr.length - addr
		if chunk > length {
			chunk = length
		}
		first := (addr - sr.base) / PageSize
		last := (addr + chunk - 1 - sr.base) / PageSize
		for pi := first; pi <= last; pi++ {
			if sr.res[pi] != OnHost || sr.gen[pi] > cut {
				return false
			}
		}
		addr += chunk
		length -= chunk
	}
	return true
}

// UntouchedHostPages counts pages that are host-resident and never
// touched since the manager came up (stamp 0). After a lazy restart
// this is the managed memory left cold: payload materialization writes
// through the address space, not through Access, so it neither
// migrates pages nor stamps touch epochs — the pages move (and warm)
// only when the restarted application actually reaches them.
func (m *Manager) UntouchedHostPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, r := range m.regions {
		for i := range r.pages {
			p := &r.pages[i]
			p.mu.Lock()
			if p.res == OnHost && p.gen == 0 {
				n++
			}
			p.mu.Unlock()
		}
	}
	return n
}

// Register places [base, base+length) under UVM control with all pages
// initially host-resident (as cudaMallocManaged memory starts).
func (m *Manager) Register(base, length uint64) *Region {
	n := int((length + PageSize - 1) / PageSize)
	r := &Region{Base: base, Len: length, mgr: m, pages: make([]page, n)}
	m.mu.Lock()
	m.regions[base] = r
	m.mu.Unlock()
	return r
}

// Unregister removes the region based at base.
func (m *Manager) Unregister(base uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regions[base]; !ok {
		return fmt.Errorf("%w: base %#x", ErrNotManaged, base)
	}
	delete(m.regions, base)
	return nil
}

// Lookup returns the managed region containing addr, if any.
func (m *Manager) Lookup(addr uint64) (*Region, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.regions {
		if addr >= r.Base && addr < r.Base+r.Len {
			return r, true
		}
	}
	return nil, false
}

// Contains reports whether addr falls in any managed region.
func (m *Manager) Contains(addr uint64) bool {
	_, ok := m.Lookup(addr)
	return ok
}

// Access records an access by side to [addr, addr+length) inside the
// manager's regions. Pages not resident on the accessing side fault and
// migrate. Returns the number of pages that faulted.
//
// Accesses spanning region boundaries are split; bytes outside any
// managed region are an error.
func (m *Manager) Access(side Side, addr, length uint64) (faults int, err error) {
	for length > 0 {
		r, ok := m.Lookup(addr)
		if !ok {
			return faults, fmt.Errorf("%w: %#x", ErrNotManaged, addr)
		}
		chunk := r.Base + r.Len - addr
		if chunk > length {
			chunk = length
		}
		faults += r.access(side, addr, chunk)
		addr += chunk
		length -= chunk
	}
	return faults, nil
}

// access handles the portion of an access within one region.
func (r *Region) access(side Side, addr, length uint64) int {
	first := (addr - r.Base) / PageSize
	last := (addr + length - 1 - r.Base) / PageSize
	faults := 0
	want := OnHost
	if side == Device {
		want = OnDevice
	}
	for pi := first; pi <= last; pi++ {
		p := &r.pages[pi]
		p.mu.Lock()
		p.gen = r.mgr.epoch.Load()
		if p.res != want {
			// Hardware page fault: migrate the page to the accessor.
			p.res = want
			faults++
			if side == Device {
				r.deviceFaults.Add(1)
				r.migratedIn.Add(PageSize)
			} else {
				r.hostFaults.Add(1)
				r.migratedOut.Add(PageSize)
			}
		}
		p.mu.Unlock()
	}
	return faults
}

// Prefetch migrates [addr, addr+length) to the given side without
// counting faults (cudaMemPrefetchAsync semantics). Returns pages moved.
func (m *Manager) Prefetch(side Side, addr, length uint64) (moved int, err error) {
	for length > 0 {
		r, ok := m.Lookup(addr)
		if !ok {
			return moved, fmt.Errorf("%w: %#x", ErrNotManaged, addr)
		}
		chunk := r.Base + r.Len - addr
		if chunk > length {
			chunk = length
		}
		first := (addr - r.Base) / PageSize
		last := (addr + chunk - 1 - r.Base) / PageSize
		want := OnHost
		if side == Device {
			want = OnDevice
		}
		for pi := first; pi <= last; pi++ {
			p := &r.pages[pi]
			p.mu.Lock()
			p.gen = m.epoch.Load()
			if p.res != want {
				p.res = want
				moved++
				if side == Device {
					r.migratedIn.Add(PageSize)
				} else {
					r.migratedOut.Add(PageSize)
				}
			}
			p.mu.Unlock()
		}
		addr += chunk
		length -= chunk
	}
	return moved, nil
}

// ResidencyOf returns the residency of the page containing addr.
func (m *Manager) ResidencyOf(addr uint64) (Residency, error) {
	r, ok := m.Lookup(addr)
	if !ok {
		return OnHost, fmt.Errorf("%w: %#x", ErrNotManaged, addr)
	}
	pi := (addr - r.Base) / PageSize
	p := &r.pages[pi]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.res, nil
}

// Stats aggregates counters over all regions.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st Stats
	st.RegisteredRegions = len(m.regions)
	for _, r := range m.regions {
		st.RegisteredBytes += r.Len
		st.HostFaults += r.hostFaults.Load()
		st.DeviceFaults += r.deviceFaults.Load()
		st.BytesToDevice += r.migratedIn.Load()
		st.BytesToHost += r.migratedOut.Load()
		for i := range r.pages {
			p := &r.pages[i]
			p.mu.Lock()
			if p.res == OnDevice {
				st.PagesOnDeviceNow++
			} else {
				st.PagesOnHostNow++
			}
			p.mu.Unlock()
		}
	}
	return st
}

// Regions returns the bases of all registered regions (unordered).
func (m *Manager) Regions() []*Region {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Region, 0, len(m.regions))
	for _, r := range m.regions {
		out = append(out, r)
	}
	return out
}
