// Package dmtcp simulates the parts of DMTCP that CRAC delegates to: a
// checkpoint engine that serializes the *upper half only* of a split
// process to an image, a plugin interface with the
// precheckpoint/resume/restart hook lifecycle (the DMTCP plugin model of
// Arya et al. that CRAC builds on), and a coordinator for multi-rank
// coordinated checkpoints (the MPI+CUDA proof of principle of Section 6).
//
// The image deliberately excludes every lower-half region: the active
// CUDA library and its arenas are *not* checkpointed; a fresh lower half
// is constructed at restart and brought up to date by the CRAC plugin's
// log replay (paper Section 3.1).
//
// # Image formats
//
// Two image formats exist. v1 ("CRACIMG1") is the original serial
// layout: an optional whole-body gzip stream of interleaved region
// headers and payloads. v2 ("CRACIMG2") is the chunked layout written by
// the parallel pipeline: all region and section headers first, then the
// concatenated payload split into fixed-size shards, each shard framed
// as {rawLen, encLen, bytes}. With gzip enabled every shard is an
// independent gzip member, so shards compress on separate CPUs and the
// concatenation remains a valid multistream gzip payload. Shard
// boundaries depend only on the shard size, never on the worker count,
// so a v2 image is byte-identical whether written serially or by N
// workers. ReadImage accepts both formats.
package dmtcp

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/addrspace"
	"repro/internal/par"
)

// SectionMap carries named plugin payloads inside a checkpoint image.
type SectionMap struct {
	order  []string
	m      map[string][]byte
	opaque map[string]bool
}

// NewSectionMap returns an empty section map.
func NewSectionMap() *SectionMap {
	return &SectionMap{m: make(map[string][]byte), opaque: make(map[string]bool)}
}

// MarkOpaque declares a section's bytes self-delta-encoded: the v3
// delta writer must not apply generic shard-level deduplication to it
// (the owning plugin already emitted an incremental encoding), and
// chain materialization resolves it through a registered SectionMerger
// instead of byte-offset inheritance.
func (s *SectionMap) MarkOpaque(name string) { s.opaque[name] = true }

// Opaque reports whether the section was marked with MarkOpaque.
func (s *SectionMap) Opaque(name string) bool { return s.opaque[name] }

// Add stores a section, replacing any previous content under name.
func (s *SectionMap) Add(name string, data []byte) {
	if _, ok := s.m[name]; !ok {
		s.order = append(s.order, name)
	}
	s.m[name] = data
}

// AddZero installs a zero-filled section of exactly size bytes and
// returns the slice for the caller to fill in place. Callers that know
// their payload layout up front (the CRAC plugin's active-malloc drain)
// fill disjoint ranges from many goroutines without any intermediate
// buffer or regrowth copy.
func (s *SectionMap) AddZero(name string, size int) []byte {
	b := make([]byte, size)
	s.Add(name, b)
	return b
}

// Get returns a section's content.
func (s *SectionMap) Get(name string) ([]byte, bool) {
	b, ok := s.m[name]
	return b, ok
}

// Names returns section names in insertion order.
func (s *SectionMap) Names() []string { return append([]string(nil), s.order...) }

// SectionWriter streams content into one section; see SectionMap.Writer.
type SectionWriter struct {
	sm   *SectionMap
	name string
	buf  []byte
}

// Writer returns a streaming writer for the named section. sizeHint
// preallocates capacity (0 is fine); the section becomes visible in the
// map when Close is called. This replaces the bytes.Buffer-then-copy
// idiom for producers that don't know their final size.
func (s *SectionMap) Writer(name string, sizeHint int) *SectionWriter {
	return &SectionWriter{sm: s, name: name, buf: make([]byte, 0, sizeHint)}
}

// Write implements io.Writer.
func (w *SectionWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Close publishes the accumulated bytes as the section content.
func (w *SectionWriter) Close() error {
	w.sm.Add(w.name, w.buf)
	return nil
}

// Plugin is a DMTCP plugin: CRAC registers one to drain the GPU and save
// CUDA state before the image is written, and to rebuild the lower half
// at restart.
type Plugin interface {
	// Name identifies the plugin.
	Name() string
	// PreCheckpoint runs before the image is written: quiesce, then
	// contribute payload sections. ctx cancellation should abort the
	// drain early; the engine never proceeds to the image body after a
	// hook error.
	PreCheckpoint(ctx context.Context, sections *SectionMap) error
	// Resume runs after a successful checkpoint, when the original
	// process continues.
	Resume() error
	// Restart runs in the restarted process after the upper-half regions
	// have been restored.
	Restart(ctx context.Context, sections *SectionMap) error
}

// RegionData is one serialized upper-half region.
type RegionData struct {
	Start uint64
	Len   uint64
	Prot  addrspace.Prot
	Label string
	Data  []byte
}

// Image is a parsed checkpoint image.
type Image struct {
	Version  int // image format version (1, 2 or 3)
	Gzip     bool
	Regions  []RegionData
	Sections *SectionMap

	// Verified reports that the stream carried an integrity trailer and
	// its whole-image checksum matched. False means a legacy, pre-trailer
	// image: still readable, but only per-shard hashes (v3) or the gzip
	// CRC (v1+gzip) guard its bytes.
	Verified bool

	// Delta is non-nil for v3 images. A v3 base parses to a complete
	// (materialized) image; a v3 delta holds only its dirty shards until
	// ApplyDelta / ResolveChain combines it with its parent chain —
	// Regions carry no Data and Sections is empty until then.
	Delta *DeltaInfo
}

// Complete reports whether the image carries its full payload (v1/v2
// images always do; v3 deltas only after chain materialization).
func (img *Image) Complete() bool {
	return img.Delta == nil || img.Delta.Materialized
}

// TotalRegionBytes sums the serialized region payloads.
func (img *Image) TotalRegionBytes() uint64 {
	var n uint64
	for _, r := range img.Regions {
		n += r.Len
	}
	return n
}

// Stats describes one checkpoint operation.
type Stats struct {
	Regions      int
	RegionBytes  uint64
	SectionBytes uint64
	// Duration is the wall time of the whole checkpoint, including
	// plugin hooks. WriteDuration covers only serializing the image
	// body; HookDuration covers the PreCheckpoint and Resume hooks.
	// Benchmarks should attribute image-write cost to WriteDuration:
	// the old single Duration silently folded hook time in.
	// PauseDuration is the application-visible stop-the-world window: a
	// blocking checkpoint pauses for its whole Duration, while a
	// concurrent (snapshot-and-release) checkpoint pauses only for the
	// drain + copy-on-write arming and overlaps the rest with execution.
	Duration      time.Duration
	WriteDuration time.Duration
	HookDuration  time.Duration
	PauseDuration time.Duration

	// Lazy-restart timing split (Session.RestartAsync /
	// WithLazyRestart). RestoreVisibleDuration is the application-
	// blocking phase: index scan, metadata, lower-half rebuild, and log
	// replay — everything before the first kernel can launch.
	// RestoreBackgroundDuration is the overlapped prefetcher drain;
	// RestoreDuration the total until the image was fully materialized.
	// An eager restart is all-visible (the background split is zero).
	RestoreDuration           time.Duration
	RestoreVisibleDuration    time.Duration
	RestoreBackgroundDuration time.Duration

	// Incremental (v3) accounting. ShardsTotal and PayloadTotal cover
	// the full span layout of the checkpointed state; ShardsWritten and
	// PayloadWritten count only the emitted (dirty) shards — for a full
	// image the pairs are equal. Delta reports whether the image was a
	// delta, and DeltaDepth its distance from the chain's base.
	Delta          bool
	DeltaDepth     int
	ShardsTotal    int
	ShardsWritten  int
	PayloadTotal   uint64
	PayloadWritten uint64
}

// DirtyRatio is PayloadWritten over PayloadTotal — the fraction of the
// checkpointed state a delta actually carried (1 for a full image).
func (st Stats) DirtyRatio() float64 {
	if st.PayloadTotal == 0 {
		return 1
	}
	return float64(st.PayloadWritten) / float64(st.PayloadTotal)
}

// DefaultShardSize is the payload shard granularity of the v2 pipeline:
// large enough that per-shard framing and goroutine handoff are noise,
// small enough that a handful of regions still fans out across CPUs.
const DefaultShardSize = 1 << 20

// Engine writes and restores checkpoint images for one process.
type Engine struct {
	// Gzip enables image compression. The paper's experiments disable
	// DMTCP's default gzip compression (Section 4.4.1), so false is the
	// default here too.
	Gzip bool
	// GzipLevel selects the compression level when Gzip is on
	// (gzip.BestSpeed..gzip.BestCompression); 0 means
	// gzip.DefaultCompression.
	GzipLevel int
	// Workers bounds the checkpoint pipeline fan-out: <=0 uses all
	// CPUs, 1 runs the serial reference path (same image bytes).
	Workers int
	// ShardSize overrides DefaultShardSize (v2 images only).
	ShardSize int
	// ImageVersion selects the written format: 0 or 2 for the chunked
	// v2 layout, 1 for the legacy serial layout.
	ImageVersion int

	// ShardHook, when set, runs in commit order just before each payload
	// shard is written to the image stream; returning an error aborts the
	// checkpoint with that error. Fault-injection tests use it to fail
	// the writer mid-image at a chosen shard.
	ShardHook func(shard int) error

	// Budget, when set, attaches this engine to a shared resourcing
	// domain: pipeline workers acquire a slot from it for each shard
	// they process, and staging/compression buffers recycle through its
	// pools instead of the package-wide ones. Engines sharing one
	// budget (a crac.Pool) run a bounded worker set regardless of how
	// many of them checkpoint at once. nil uses the package default
	// (unbounded, per-process pools).
	Budget *WorkerBudget

	plugins []Plugin
}

// NewEngine returns an engine with no plugins.
func NewEngine() *Engine { return &Engine{} }

// Register appends a plugin. Hooks run in registration order for
// PreCheckpoint/Restart and reverse order for Resume.
func (e *Engine) Register(p Plugin) { e.plugins = append(e.plugins, p) }

var (
	imageMagicV1 = [8]byte{'C', 'R', 'A', 'C', 'I', 'M', 'G', '1'}
	imageMagicV2 = [8]byte{'C', 'R', 'A', 'C', 'I', 'M', 'G', '2'}
	imageMagicV3 = [8]byte{'C', 'R', 'A', 'C', 'I', 'M', 'G', '3'}
)

// ErrBadImage reports a malformed checkpoint image.
var ErrBadImage = errors.New("dmtcp: bad checkpoint image")

// ErrUnsupportedVersion reports a checkpoint image whose format version
// this build does not speak: the CRACIMG magic prefix matched, but the
// version digit is newer (or older) than the reader understands, or an
// engine was asked to write an unknown version. Distinct from
// ErrBadImage so callers can tell "not an image" from "an image from a
// different release".
var ErrUnsupportedVersion = errors.New("dmtcp: unsupported image version")

// Decoder sanity caps. The simulated windows are 2 GiB each, so any
// single region or section beyond maxItemBytes, or counts beyond
// maxItemCount, can only come from a corrupt or hostile image; rejecting
// them up front keeps the decoder safe on fuzzed input.
const (
	maxItemBytes  = 1 << 31
	maxTotalBytes = 1 << 33
	maxItemCount  = 1 << 20
	maxFrameBytes = 1 << 30
)

func (e *Engine) shardSize() int {
	if e.ShardSize <= 0 {
		return DefaultShardSize
	}
	// A frame's rawLen must stay under the reader's maxFrameBytes cap,
	// or the written image could never be read back.
	if e.ShardSize > maxFrameBytes {
		return maxFrameBytes
	}
	return e.ShardSize
}

// Checkpoint runs the plugin PreCheckpoint hooks, writes the upper half
// of space plus all plugin sections to w, then runs the Resume hooks.
// Cancelling ctx aborts the operation between hooks and between payload
// shards, returning the context's error; the image written so far is
// abandoned where it stands (callers that need all-or-nothing semantics
// write through an atomic sink, e.g. a Store).
func (e *Engine) Checkpoint(ctx context.Context, w io.Writer, space *addrspace.Space) (Stats, error) {
	if e.ImageVersion == 3 {
		// The v3 path has its own hook lifecycle (delta-aware plugins);
		// with no lineage this writes a standalone full base image.
		st, _, err := e.CheckpointDelta(ctx, w, space, nil, "")
		return st, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	sections := NewSectionMap()
	for _, p := range e.plugins {
		if err := ctx.Err(); err != nil {
			return Stats{}, err
		}
		if err := p.PreCheckpoint(ctx, sections); err != nil {
			return Stats{}, fmt.Errorf("dmtcp: plugin %s precheckpoint: %w", p.Name(), err)
		}
	}
	hookDur := time.Since(start)

	// Only upper-half regions enter the image. This relies on CRAC's own
	// region attribution, not the merged maps view (Section 3.2.2).
	regions := space.RegionsIn(addrspace.HalfUpper)
	st := Stats{Regions: len(regions)}

	writeStart := time.Now()
	version := e.ImageVersion
	if version == 0 {
		version = 2
	}
	// Every format except v1+gzip gets the integrity trailer (the v1
	// gzip body is read through a buffered inflater that may consume
	// past the member's end, so trailing bytes cannot be located).
	var tw *trailerWriter
	sink := w
	if version != 1 || !e.Gzip {
		tw = newTrailerWriter(w)
		sink = tw
	}
	// Buffer the image stream: header and frame writes are a few bytes
	// each and must not hit the underlying writer (often a file)
	// directly.
	bw := bufio.NewWriterSize(sink, 256<<10)
	var err error
	switch version {
	case 1:
		err = e.writeImageV1(ctx, bw, space, regions, sections, &st)
	case 2:
		err = e.writeImageV2(ctx, bw, space, regions, sections, &st)
	default:
		err = fmt.Errorf("%w: cannot write version %d", ErrUnsupportedVersion, version)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil && tw != nil {
		err = tw.Finish()
	}
	st.WriteDuration = time.Since(writeStart)
	if err != nil {
		return st, err
	}

	resumeStart := time.Now()
	for i := len(e.plugins) - 1; i >= 0; i-- {
		if err := e.plugins[i].Resume(); err != nil {
			return st, fmt.Errorf("dmtcp: plugin %s resume: %w", e.plugins[i].Name(), err)
		}
	}
	st.HookDuration = hookDur + time.Since(resumeStart)
	st.Duration = time.Since(start)
	// A blocking checkpoint stops the world for its whole duration.
	st.PauseDuration = st.Duration
	return st, nil
}

// v1GzipPool recycles the whole-body gzip writer of the v1 serial
// format across checkpoints (Reset re-arms a closed writer); v1 always
// compresses at the default level, so every pooled writer fits.
var v1GzipPool sync.Pool

// v1ChunkPool recycles the bounded payload chunk buffer of writeBodyV1.
var v1ChunkPool sync.Pool

// writeImageV1 emits the legacy serial format: interleaved region
// headers and payloads, optionally wrapped in a single gzip stream.
func (e *Engine) writeImageV1(ctx context.Context, w io.Writer, view addrspace.View, regions []addrspace.RegionInfo, sections *SectionMap, st *Stats) error {
	if _, err := w.Write(imageMagicV1[:]); err != nil {
		return err
	}
	var flags [4]byte
	if e.Gzip {
		flags[0] = 1
	}
	if _, err := w.Write(flags[:]); err != nil {
		return err
	}
	body := w
	var gz *gzip.Writer
	if e.Gzip {
		if pw, _ := v1GzipPool.Get().(*gzip.Writer); pw != nil {
			pw.Reset(w)
			gz = pw
		} else {
			gz = gzip.NewWriter(w)
		}
		body = gz
	}
	if err := writeBodyV1(ctx, body, view, regions, sections, st, e.shardSize()); err != nil {
		return err
	}
	if gz != nil {
		err := gz.Close()
		v1GzipPool.Put(gz)
		return err
	}
	return nil
}

func writeBodyV1(ctx context.Context, w io.Writer, view addrspace.View, regions []addrspace.RegionInfo, sections *SectionMap, st *Stats, chunk int) error {
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(regions)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	// One bounded, pooled chunk buffer: region payloads stream through
	// it instead of a grow-only whole-region buffer, and the buffer
	// itself is recycled across checkpoints instead of reallocated per
	// image.
	bp, _ := v1ChunkPool.Get().(*[]byte)
	if bp == nil || cap(*bp) < chunk {
		b := make([]byte, chunk)
		bp = &b
	}
	defer v1ChunkPool.Put(bp)
	buf := (*bp)[:chunk]
	for _, ri := range regions {
		binary.LittleEndian.PutUint64(u64[:], ri.Start)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], ri.Len)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(ri.Prot)}); err != nil {
			return err
		}
		if err := writeString(w, ri.Label); err != nil {
			return err
		}
		for off := uint64(0); off < ri.Len; off += uint64(chunk) {
			if err := ctx.Err(); err != nil {
				return err
			}
			n := ri.Len - off
			if n > uint64(chunk) {
				n = uint64(chunk)
			}
			if err := view.ReadAt(ri.Start+off, buf[:n]); err != nil {
				return fmt.Errorf("dmtcp: reading region %v: %w", ri, err)
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		st.RegionBytes += ri.Len
	}
	names := sections.Names()
	binary.LittleEndian.PutUint32(u32[:], uint32(len(names)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		if err := writeString(w, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(len(data)))
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		st.SectionBytes += uint64(len(data))
	}
	return nil
}

// shardJob is one unit of the v2/v3 write pipeline: a payload shard to
// be read from the address space (regions) or sliced from memory
// (sections), optionally compressed, and written in index order. v3
// jobs additionally carry the shard's span address and content hash,
// framed into the extended v3 shard header.
type shardJob struct {
	addr   uint64 // source address when reading from the space
	src    []byte // in-memory source (section shard); nil for regions
	rawLen int

	v3      bool
	spanIdx uint32 // destination span (regions, then sections)
	spanOff uint64 // offset within the span
	hash    uint64 // FNV-1a of the raw bytes
	hashed  bool   // hash precomputed (section shards); else workers fill it

	enc    []byte        // framed payload, valid once done is closed
	rawBuf *[]byte       // pooled region buffer to recycle after consumption
	encBuf *bytes.Buffer // pooled compression buffer to recycle
	err    error
	done   chan struct{}
}

// writeImageV2 emits the chunked format through the parallel pipeline:
// workers read shards out of the address space (and compress them when
// gzip is on) concurrently, while this goroutine streams the frames to w
// in deterministic shard order.
func (e *Engine) writeImageV2(ctx context.Context, w io.Writer, view addrspace.View, regions []addrspace.RegionInfo, sections *SectionMap, st *Stats) error {
	if _, err := w.Write(imageMagicV2[:]); err != nil {
		return err
	}
	var flags [4]byte
	if e.Gzip {
		flags[0] = 1
	}
	if _, err := w.Write(flags[:]); err != nil {
		return err
	}

	// Header tables: regions then sections, no payload. Headers are tiny
	// and stay uncompressed so the reader can size every destination
	// before the first payload byte arrives.
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(regions)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, ri := range regions {
		binary.LittleEndian.PutUint64(u64[:], ri.Start)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], ri.Len)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(ri.Prot)}); err != nil {
			return err
		}
		if err := writeString(w, ri.Label); err != nil {
			return err
		}
		st.RegionBytes += ri.Len
	}
	names := sections.Names()
	binary.LittleEndian.PutUint32(u32[:], uint32(len(names)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		if err := writeString(w, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(len(data)))
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		st.SectionBytes += uint64(len(data))
	}
	shard := e.shardSize()
	binary.LittleEndian.PutUint32(u32[:], uint32(shard))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}

	// Shard plan: deterministic, independent of the worker count, so the
	// image bytes are identical for any Workers setting.
	var jobs []shardJob
	for _, ri := range regions {
		for off := uint64(0); off < ri.Len; off += uint64(shard) {
			n := ri.Len - off
			if n > uint64(shard) {
				n = uint64(shard)
			}
			jobs = append(jobs, shardJob{addr: ri.Start + off, rawLen: int(n), done: make(chan struct{})})
		}
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		for off := 0; off < len(data); off += shard {
			n := len(data) - off
			if n > shard {
				n = shard
			}
			jobs = append(jobs, shardJob{src: data[off : off+n], rawLen: n, done: make(chan struct{})})
		}
	}
	return e.runWritePipeline(ctx, w, view, jobs)
}

func (e *Engine) runWritePipeline(ctx context.Context, w io.Writer, view addrspace.View, jobs []shardJob) error {
	shard := e.shardSize()
	// Per-shard staging buffers, compression buffers, and per-level
	// gzip writers recycle through the engine's WorkerBudget across
	// checkpoints (not just within one image write), so a steady
	// checkpoint cadence stops allocating its data path; the budget's
	// worker slots bound how many shards are in flight across every
	// engine sharing it.
	bgt := e.budget()
	// Reading through a copy-on-write snapshot: drop each region shard's
	// retained pages as soon as its frame is written, bounding the
	// snapshot's peak memory to roughly the in-flight shard window.
	releaser, _ := view.(addrspace.RangeReleaser)

	process := func(j *shardJob, gz *gzip.Writer) {
		// A cancelled context turns every remaining shard into a no-op:
		// the pipeline protocol (every job completes, in order) is kept,
		// but no further memory is read or compressed, so a deadline
		// aborts the image write promptly mid-stream.
		if err := ctx.Err(); err != nil {
			j.err = err
			return
		}
		raw := j.src
		if raw == nil {
			j.rawBuf = bgt.getShardBuf(shard)
			raw = (*j.rawBuf)[:j.rawLen]
			if err := view.ReadAt(j.addr, raw); err != nil {
				j.err = fmt.Errorf("dmtcp: reading shard %#x+%d: %w", j.addr, j.rawLen, err)
				return
			}
		}
		if j.v3 && !j.hashed {
			j.hash = fnvSum64(raw)
			j.hashed = true
		}
		if gz == nil {
			j.enc = raw
			return
		}
		// One gzip member per shard: members concatenate into a valid
		// multistream payload, and each compresses on its own CPU.
		buf := bgt.getEncBuf()
		buf.Reset()
		gz.Reset(buf)
		if _, err := gz.Write(raw); err != nil {
			j.err = err
			return
		}
		if err := gz.Close(); err != nil {
			j.err = err
			return
		}
		j.enc = buf.Bytes()
		j.encBuf = buf
		if j.rawBuf != nil {
			bgt.putShardBuf(j.rawBuf)
			j.rawBuf = nil
		}
	}

	level := e.GzipLevel
	if level == 0 {
		level = gzip.DefaultCompression
	}
	newGz := func() (*gzip.Writer, error) {
		if !e.Gzip {
			return nil, nil
		}
		return bgt.getGz(level)
	}

	var hdr [shardHdrV3]byte
	consume := func(i int, j *shardJob) error {
		if j.err != nil {
			return j.err
		}
		if e.ShardHook != nil {
			if err := e.ShardHook(i); err != nil {
				j.enc = nil
				if j.rawBuf != nil {
					bgt.putShardBuf(j.rawBuf)
					j.rawBuf = nil
				}
				if j.encBuf != nil {
					bgt.putEncBuf(j.encBuf)
					j.encBuf = nil
				}
				return err
			}
		}
		var h []byte
		if j.v3 {
			binary.LittleEndian.PutUint32(hdr[0:], j.spanIdx)
			binary.LittleEndian.PutUint64(hdr[4:], j.spanOff)
			binary.LittleEndian.PutUint32(hdr[12:], uint32(j.rawLen))
			binary.LittleEndian.PutUint32(hdr[16:], uint32(len(j.enc)))
			binary.LittleEndian.PutUint64(hdr[20:], j.hash)
			h = hdr[:shardHdrV3]
		} else {
			binary.LittleEndian.PutUint32(hdr[0:], uint32(j.rawLen))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(len(j.enc)))
			h = hdr[:8]
		}
		if _, err := w.Write(h); err != nil {
			return err
		}
		_, err := w.Write(j.enc)
		j.enc = nil
		if j.rawBuf != nil {
			bgt.putShardBuf(j.rawBuf)
			j.rawBuf = nil
		}
		if j.encBuf != nil {
			bgt.putEncBuf(j.encBuf)
			j.encBuf = nil
		}
		if err == nil && releaser != nil && j.src == nil {
			// The frame is on the wire: the snapshot may drop this
			// region range's copy-on-write pages.
			releaser.ReleaseRange(j.addr, uint64(j.rawLen))
		}
		return err
	}

	workers := par.Workers(e.Workers)
	if workers == 1 || len(jobs) <= 1 {
		// Serial reference path: identical bytes, no goroutines. The
		// budget slot is still taken per shard so even serial engines
		// share the machine fairly with the rest of their pool.
		gz, err := newGz()
		if err != nil {
			return err
		}
		defer bgt.putGz(level, gz)
		for i := range jobs {
			if err := bgt.acquire(ctx); err != nil {
				return err
			}
			process(&jobs[i], gz)
			bgt.release()
			if err := consume(i, &jobs[i]); err != nil {
				return err
			}
		}
		return nil
	}

	// Workers acquire an in-flight token *before* pulling a job index,
	// which bounds memory to ~2 shards per worker and (because the index
	// channel is FIFO) guarantees the shard the writer is waiting on is
	// always among the next pulls — no deadlock.
	idxCh := make(chan int, len(jobs))
	for i := range jobs {
		idxCh <- i
	}
	close(idxCh)
	sem := make(chan struct{}, workers*2)
	var wg sync.WaitGroup
	var spawnErr error
	for g := 0; g < workers; g++ {
		gz, err := newGz()
		if err != nil {
			spawnErr = err
			break
		}
		wg.Add(1)
		go func(gz *gzip.Writer) {
			defer wg.Done()
			defer bgt.putGz(level, gz)
			for {
				sem <- struct{}{}
				i, ok := <-idxCh
				if !ok {
					<-sem
					return
				}
				// One budget slot per shard: a fleet of engines sharing
				// a bounded budget processes at most that many shards at
				// once, no matter how many checkpoints are in flight. A
				// cancelled wait keeps the pipeline protocol (every job
				// completes) and surfaces through consume.
				if err := bgt.acquire(ctx); err != nil {
					jobs[i].err = err
				} else {
					process(&jobs[i], gz)
					bgt.release()
				}
				close(jobs[i].done)
			}
		}(gz)
	}
	var firstErr error
	if spawnErr != nil {
		firstErr = spawnErr
	}
	for i := range jobs {
		if spawnErr != nil {
			break
		}
		<-jobs[i].done
		if firstErr == nil {
			firstErr = consume(i, &jobs[i])
		} else if jobs[i].rawBuf != nil {
			bgt.putShardBuf(jobs[i].rawBuf)
			jobs[i].rawBuf = nil
		}
		<-sem
	}
	wg.Wait()
	return firstErr
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return fmt.Errorf("dmtcp: string too long (%d)", len(s))
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(n[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readStagePool recycles the staging chunk readExact streams large
// payloads through, so repeated image reads stop allocating (and
// copying through) a fresh bytes.Buffer per item.
var readStagePool = sync.Pool{New: func() any {
	b := make([]byte, 256<<10)
	return &b
}}

// trustedExact bounds the up-front allocation readExact risks on an
// unverified length claim: items at most this large get an exact buffer
// immediately; larger claims grow only as data actually arrives.
const trustedExact = 1 << 20

// readExact reads exactly n bytes. Small items land in an exactly-sized
// buffer with no slack; large items stream through a pooled staging
// chunk so a hostile length claim cannot force a giant allocation.
func readExact(r io.Reader, n uint64) ([]byte, error) {
	if n > maxItemBytes {
		return nil, fmt.Errorf("%w: oversized item (%d bytes)", ErrBadImage, n)
	}
	if n == 0 {
		return nil, nil
	}
	if n <= trustedExact {
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	bp := readStagePool.Get().(*[]byte)
	defer readStagePool.Put(bp)
	stage := *bp
	out := make([]byte, 0, trustedExact)
	for uint64(len(out)) < n {
		k := n - uint64(len(out))
		if k > uint64(len(stage)) {
			k = uint64(len(stage))
		}
		if _, err := io.ReadFull(r, stage[:k]); err != nil {
			return nil, err
		}
		out = append(out, stage[:k]...)
	}
	// The result may live as long as the parsed Image; don't pin
	// append's geometric-growth slack.
	if uint64(cap(out)) > n+n/4 {
		out = append(make([]byte, 0, n), out...)
	}
	return out, nil
}

// ReadImage parses a checkpoint image in either format, then checks
// the integrity trailer (when one is present — see trailer.go) against
// the body it just consumed; a mismatch reports ErrCorruptImage.
func ReadImage(r io.Reader) (*Image, error) {
	// The whole body — magic included — flows through the hashing
	// reader, so the trailer check at the end covers every byte the
	// parser consumed.
	hr := newHashingReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(hr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadImage, err)
	}
	var img *Image
	var err error
	switch magic {
	case imageMagicV1:
		img, err = readImageV1(hr)
	case imageMagicV2:
		img, err = readImageV2(hr)
	case imageMagicV3:
		img, err = readImageV3(hr)
	default:
		// A CRACIMG prefix with an unknown version digit is an image from
		// a build we don't speak, not garbage.
		if bytes.Equal(magic[:7], imageMagicV1[:7]) {
			return nil, fmt.Errorf("%w: %q", ErrUnsupportedVersion, magic[:])
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
	if err != nil {
		return nil, err
	}
	if img.Version == 1 && img.Gzip {
		// The buffered inflater may have consumed past the gzip member's
		// end, so a trailer cannot be located; the member's own CRC
		// already covered the body.
		return img, nil
	}
	img.Verified, err = verifyTrailer(hr)
	if err != nil {
		return nil, err
	}
	return img, nil
}

func readImageV1(r io.Reader) (*Image, error) {
	var flags [4]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	img := &Image{Version: 1, Gzip: flags[0]&1 != 0, Sections: NewSectionMap()}
	body := r
	if img.Gzip {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("%w: gzip: %v", ErrBadImage, err)
		}
		defer gz.Close()
		body = gz
	}
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(body, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	nRegions := binary.LittleEndian.Uint32(u32[:])
	if nRegions > maxItemCount {
		return nil, fmt.Errorf("%w: region count %d", ErrBadImage, nRegions)
	}
	for i := uint32(0); i < nRegions; i++ {
		var rd RegionData
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Start = binary.LittleEndian.Uint64(u64[:])
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Len = binary.LittleEndian.Uint64(u64[:])
		var prot [1]byte
		if _, err := io.ReadFull(body, prot[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot[0])
		label, err := readString(body)
		if err != nil {
			return nil, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		rd.Label = label
		rd.Data, err = readExact(body, rd.Len)
		if err != nil {
			return nil, fmt.Errorf("%w: region %d data: %v", ErrBadImage, i, err)
		}
		img.Regions = append(img.Regions, rd)
	}
	if _, err := io.ReadFull(body, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	nSections := binary.LittleEndian.Uint32(u32[:])
	if nSections > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSections)
	}
	for i := uint32(0); i < nSections; i++ {
		name, err := readString(body)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		data, err := readExact(body, binary.LittleEndian.Uint64(u64[:]))
		if err != nil {
			return nil, fmt.Errorf("%w: section %d data: %v", ErrBadImage, i, err)
		}
		img.Sections.Add(name, data)
	}
	if img.Gzip {
		// No CRAC trailer covers a v1+gzip image, so drain the member to
		// its end: the inflater verifies the gzip CRC footer only when
		// read through, and any bytes past it are corruption.
		var tail [1]byte
		if n, err := io.ReadFull(body, tail[:]); n != 0 || err != io.EOF {
			if err == nil {
				err = errors.New("trailing data after gzip member")
			}
			return nil, fmt.Errorf("%w: gzip stream: %v", ErrCorruptImage, err)
		}
	}
	return img, nil
}

// destSpan is one destination range of the v2 concatenated payload. The
// backing slice is allocated lazily, when payload bytes actually reach
// the span: a hostile header claiming giant regions then costs nothing
// until the input provides real payload to fill them.
type destSpan struct {
	off  uint64 // offset of (*b)[0] in the raw payload stream
	size uint64
	b    *[]byte
}

// frame is one not-yet-decoded v2 payload shard.
type frame struct {
	rawOff uint64
	rawLen int
	enc    []byte
}

func readImageV2(r io.Reader) (*Image, error) {
	var flags [4]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	img := &Image{Version: 2, Gzip: flags[0]&1 != 0, Sections: NewSectionMap()}

	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	nRegions := binary.LittleEndian.Uint32(u32[:])
	if nRegions > maxItemCount {
		return nil, fmt.Errorf("%w: region count %d", ErrBadImage, nRegions)
	}
	var totalRaw uint64
	for i := uint32(0); i < nRegions; i++ {
		var rd RegionData
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Start = binary.LittleEndian.Uint64(u64[:])
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Len = binary.LittleEndian.Uint64(u64[:])
		if rd.Len > maxItemBytes {
			return nil, fmt.Errorf("%w: region %d len %d", ErrBadImage, i, rd.Len)
		}
		var prot [1]byte
		if _, err := io.ReadFull(r, prot[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot[0])
		label, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		rd.Label = label
		totalRaw += rd.Len
		img.Regions = append(img.Regions, rd)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	nSections := binary.LittleEndian.Uint32(u32[:])
	if nSections > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSections)
	}
	secLens := make([]uint64, 0, nSections)
	secNames := make([]string, 0, nSections)
	for i := uint32(0); i < nSections; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		n := binary.LittleEndian.Uint64(u64[:])
		if n > maxItemBytes {
			return nil, fmt.Errorf("%w: section %d len %d", ErrBadImage, i, n)
		}
		secNames = append(secNames, name)
		secLens = append(secLens, n)
		totalRaw += n
	}
	if totalRaw > maxTotalBytes {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadImage, totalRaw)
	}
	// Shard-size hint: informational only.
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: shard size: %v", ErrBadImage, err)
	}

	// Lay out every destination, then walk the frame stream. A frame may
	// in principle span destination boundaries (the writer never emits
	// one, but the format allows it), so placement goes through the span
	// list.
	secData := make([][]byte, len(secNames))
	spans := make([]destSpan, 0, len(img.Regions)+len(secNames))
	var off uint64
	for i := range img.Regions {
		spans = append(spans, destSpan{off: off, size: img.Regions[i].Len, b: &img.Regions[i].Data})
		off += img.Regions[i].Len
	}
	for i := range secNames {
		spans = append(spans, destSpan{off: off, size: secLens[i], b: &secData[i]})
		off += secLens[i]
	}

	var frames []frame
	var consumed uint64
	for consumed < totalRaw {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: frame header at %d: %v", ErrBadImage, consumed, err)
		}
		rawLen := binary.LittleEndian.Uint32(hdr[0:])
		encLen := binary.LittleEndian.Uint32(hdr[4:])
		if rawLen == 0 || uint64(rawLen) > maxFrameBytes || encLen == 0 || uint64(encLen) > maxFrameBytes {
			return nil, fmt.Errorf("%w: frame %d/%d bytes at %d", ErrBadImage, rawLen, encLen, consumed)
		}
		if consumed+uint64(rawLen) > totalRaw {
			return nil, fmt.Errorf("%w: frame overruns payload at %d", ErrBadImage, consumed)
		}
		if !img.Gzip {
			if encLen != rawLen {
				return nil, fmt.Errorf("%w: stored frame %d != %d at %d", ErrBadImage, encLen, rawLen, consumed)
			}
			// Stored frames read straight into their destinations.
			ensureSpans(spans, consumed, uint64(rawLen))
			if err := readIntoSpans(r, spans, consumed, int(rawLen)); err != nil {
				return nil, fmt.Errorf("%w: frame data at %d: %v", ErrBadImage, consumed, err)
			}
		} else {
			enc, err := readExact(r, uint64(encLen))
			if err != nil {
				return nil, fmt.Errorf("%w: frame data at %d: %v", ErrBadImage, consumed, err)
			}
			// Allocate destinations here, sequentially: the parallel
			// decode below only fills them.
			ensureSpans(spans, consumed, uint64(rawLen))
			frames = append(frames, frame{rawOff: consumed, rawLen: int(rawLen), enc: enc})
		}
		consumed += uint64(rawLen)
	}

	// Compressed frames are independent gzip members over disjoint raw
	// ranges: inflate them in parallel, each directly into its spans.
	if err := par.ForErr(len(frames), func(i int) error {
		f := frames[i]
		gz, err := gzip.NewReader(bytes.NewReader(f.enc))
		if err != nil {
			return fmt.Errorf("%w: frame at %d: gzip: %v", ErrBadImage, f.rawOff, err)
		}
		defer gz.Close()
		gz.Multistream(false)
		if err := readIntoSpans(gz, spans, f.rawOff, f.rawLen); err != nil {
			return fmt.Errorf("%w: frame at %d: %v", ErrBadImage, f.rawOff, err)
		}
		// The member must hold exactly rawLen bytes.
		var tail [1]byte
		if n, _ := gz.Read(tail[:]); n != 0 {
			return fmt.Errorf("%w: frame at %d: trailing bytes", ErrBadImage, f.rawOff)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Publish sections in table order; zero-length (or payload-free
	// zero-size) sections still appear.
	for i, name := range secNames {
		if secData[i] == nil {
			secData[i] = make([]byte, secLens[i])
		}
		img.Sections.Add(name, secData[i])
	}
	return img, nil
}

// ensureSpans allocates the backing slice of every span overlapping the
// raw range [off, off+n). Must be called sequentially (it mutates the
// destinations the parallel decode then fills).
func ensureSpans(spans []destSpan, off, n uint64) {
	for i := range spans {
		s := &spans[i]
		if s.off+s.size <= off {
			continue
		}
		if s.off >= off+n {
			break
		}
		if *s.b == nil && s.size > 0 {
			*s.b = make([]byte, s.size)
		}
	}
}

// readIntoSpans copies n raw-payload bytes starting at raw offset off
// from r into the destination spans (already allocated by ensureSpans).
func readIntoSpans(r io.Reader, spans []destSpan, off uint64, n int) error {
	for n > 0 {
		// Find the span containing off (spans are sorted by offset).
		lo, hi := 0, len(spans)
		for lo < hi {
			mid := (lo + hi) / 2
			if spans[mid].off+spans[mid].size <= off {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(spans) || spans[lo].off > off {
			return io.ErrUnexpectedEOF
		}
		s := spans[lo]
		o := off - s.off
		k := int(s.size - o)
		if k > n {
			k = n
		}
		if _, err := io.ReadFull(r, (*s.b)[o:int(o)+k]); err != nil {
			return err
		}
		off += uint64(k)
		n -= k
	}
	return nil
}

// RestoreRegions recreates every image region in space (attributed to the
// upper half, at the original addresses) and fills in the saved bytes,
// fanning the fills out across all CPUs.
func RestoreRegions(img *Image, space *addrspace.Space) error {
	return RestoreRegionsN(context.Background(), img, space, 0)
}

// RestoreRegionsN is RestoreRegions with an explicit worker count
// (workers<=0: all CPUs, 1: serial) and cancellation. The mappings are
// created serially — they mutate the region list — then the fills run
// concurrently over disjoint ranges (see the addrspace concurrency
// contract), then read-only protections are applied.
func RestoreRegionsN(ctx context.Context, img *Image, space *addrspace.Space, workers int) error {
	if !img.Complete() {
		return fmt.Errorf("%w: cannot restore regions from an unmaterialized delta", ErrDeltaChain)
	}
	for _, rd := range img.Regions {
		if _, err := space.MMap(rd.Start, rd.Len, rd.Prot|addrspace.ProtWrite, addrspace.MapFixedNoReplace,
			addrspace.HalfUpper, rd.Label); err != nil {
			return fmt.Errorf("dmtcp: restoring region %#x+%d (%s): %w", rd.Start, rd.Len, rd.Label, err)
		}
	}
	type fill struct {
		addr uint64
		data []byte
	}
	var fills []fill
	for _, rd := range img.Regions {
		for off := uint64(0); off < uint64(len(rd.Data)); off += DefaultShardSize {
			end := off + DefaultShardSize
			if end > uint64(len(rd.Data)) {
				end = uint64(len(rd.Data))
			}
			fills = append(fills, fill{addr: rd.Start + off, data: rd.Data[off:end]})
		}
	}
	if err := par.ForErrCtx(ctx, workers, len(fills), func(i int) error {
		if err := space.WriteAt(fills[i].addr, fills[i].data); err != nil {
			return fmt.Errorf("dmtcp: filling region %#x+%d: %w", fills[i].addr, len(fills[i].data), err)
		}
		return nil
	}); err != nil {
		return err
	}
	for _, rd := range img.Regions {
		if rd.Prot&addrspace.ProtWrite == 0 {
			if err := space.MProtect(rd.Start, rd.Len, rd.Prot); err != nil {
				return fmt.Errorf("dmtcp: protecting region %#x+%d: %w", rd.Start, rd.Len, err)
			}
		}
	}
	return nil
}

// RunRestartHooks invokes every plugin's Restart hook with the image's
// sections, in registration order.
func (e *Engine) RunRestartHooks(ctx context.Context, img *Image) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, p := range e.plugins {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := p.Restart(ctx, img.Sections); err != nil {
			return fmt.Errorf("dmtcp: plugin %s restart: %w", p.Name(), err)
		}
	}
	return nil
}
