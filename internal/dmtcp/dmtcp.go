// Package dmtcp simulates the parts of DMTCP that CRAC delegates to: a
// checkpoint engine that serializes the *upper half only* of a split
// process to an image, a plugin interface with the
// precheckpoint/resume/restart hook lifecycle (the DMTCP plugin model of
// Arya et al. that CRAC builds on), and a coordinator for multi-rank
// coordinated checkpoints (the MPI+CUDA proof of principle of Section 6).
//
// The image deliberately excludes every lower-half region: the active
// CUDA library and its arenas are *not* checkpointed; a fresh lower half
// is constructed at restart and brought up to date by the CRAC plugin's
// log replay (paper Section 3.1).
package dmtcp

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/addrspace"
)

// SectionMap carries named plugin payloads inside a checkpoint image.
type SectionMap struct {
	order []string
	m     map[string][]byte
}

// NewSectionMap returns an empty section map.
func NewSectionMap() *SectionMap {
	return &SectionMap{m: make(map[string][]byte)}
}

// Add stores a section, replacing any previous content under name.
func (s *SectionMap) Add(name string, data []byte) {
	if _, ok := s.m[name]; !ok {
		s.order = append(s.order, name)
	}
	s.m[name] = data
}

// Get returns a section's content.
func (s *SectionMap) Get(name string) ([]byte, bool) {
	b, ok := s.m[name]
	return b, ok
}

// Names returns section names in insertion order.
func (s *SectionMap) Names() []string { return append([]string(nil), s.order...) }

// Plugin is a DMTCP plugin: CRAC registers one to drain the GPU and save
// CUDA state before the image is written, and to rebuild the lower half
// at restart.
type Plugin interface {
	// Name identifies the plugin.
	Name() string
	// PreCheckpoint runs before the image is written: quiesce, then
	// contribute payload sections.
	PreCheckpoint(sections *SectionMap) error
	// Resume runs after a successful checkpoint, when the original
	// process continues.
	Resume() error
	// Restart runs in the restarted process after the upper-half regions
	// have been restored.
	Restart(sections *SectionMap) error
}

// RegionData is one serialized upper-half region.
type RegionData struct {
	Start uint64
	Len   uint64
	Prot  addrspace.Prot
	Label string
	Data  []byte
}

// Image is a parsed checkpoint image.
type Image struct {
	Gzip     bool
	Regions  []RegionData
	Sections *SectionMap
}

// TotalRegionBytes sums the serialized region payloads.
func (img *Image) TotalRegionBytes() uint64 {
	var n uint64
	for _, r := range img.Regions {
		n += r.Len
	}
	return n
}

// Stats describes one checkpoint operation.
type Stats struct {
	Regions      int
	RegionBytes  uint64
	SectionBytes uint64
	Duration     time.Duration
}

// Engine writes and restores checkpoint images for one process.
type Engine struct {
	// Gzip enables image compression. The paper's experiments disable
	// DMTCP's default gzip compression (Section 4.4.1), so false is the
	// default here too.
	Gzip bool

	plugins []Plugin
}

// NewEngine returns an engine with no plugins.
func NewEngine() *Engine { return &Engine{} }

// Register appends a plugin. Hooks run in registration order for
// PreCheckpoint/Restart and reverse order for Resume.
func (e *Engine) Register(p Plugin) { e.plugins = append(e.plugins, p) }

var imageMagic = [8]byte{'C', 'R', 'A', 'C', 'I', 'M', 'G', '1'}

// ErrBadImage reports a malformed checkpoint image.
var ErrBadImage = errors.New("dmtcp: bad checkpoint image")

// Checkpoint runs the plugin PreCheckpoint hooks, writes the upper half
// of space plus all plugin sections to w, then runs the Resume hooks.
func (e *Engine) Checkpoint(w io.Writer, space *addrspace.Space) (Stats, error) {
	start := time.Now()
	sections := NewSectionMap()
	for _, p := range e.plugins {
		if err := p.PreCheckpoint(sections); err != nil {
			return Stats{}, fmt.Errorf("dmtcp: plugin %s precheckpoint: %w", p.Name(), err)
		}
	}
	// Only upper-half regions enter the image. This relies on CRAC's own
	// region attribution, not the merged maps view (Section 3.2.2).
	regions := space.RegionsIn(addrspace.HalfUpper)
	st := Stats{Regions: len(regions)}

	if _, err := w.Write(imageMagic[:]); err != nil {
		return st, err
	}
	var flags [4]byte
	if e.Gzip {
		flags[0] = 1
	}
	if _, err := w.Write(flags[:]); err != nil {
		return st, err
	}
	body := w
	var gz *gzip.Writer
	if e.Gzip {
		gz = gzip.NewWriter(w)
		body = gz
	}
	if err := writeBody(body, space, regions, sections, &st); err != nil {
		return st, err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return st, err
		}
	}
	for i := len(e.plugins) - 1; i >= 0; i-- {
		if err := e.plugins[i].Resume(); err != nil {
			return st, fmt.Errorf("dmtcp: plugin %s resume: %w", e.plugins[i].Name(), err)
		}
	}
	st.Duration = time.Since(start)
	return st, nil
}

func writeBody(w io.Writer, space *addrspace.Space, regions []addrspace.RegionInfo, sections *SectionMap, st *Stats) error {
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(regions)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	buf := make([]byte, 0)
	for _, ri := range regions {
		binary.LittleEndian.PutUint64(u64[:], ri.Start)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], ri.Len)
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(ri.Prot)}); err != nil {
			return err
		}
		if err := writeString(w, ri.Label); err != nil {
			return err
		}
		if uint64(cap(buf)) < ri.Len {
			buf = make([]byte, ri.Len)
		}
		buf = buf[:ri.Len]
		if err := space.ReadAt(ri.Start, buf); err != nil {
			return fmt.Errorf("dmtcp: reading region %v: %w", ri, err)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		st.RegionBytes += ri.Len
	}
	names := sections.Names()
	binary.LittleEndian.PutUint32(u32[:], uint32(len(names)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		if err := writeString(w, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(len(data)))
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		st.SectionBytes += uint64(len(data))
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xffff {
		return fmt.Errorf("dmtcp: string too long (%d)", len(s))
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(n[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadImage parses a checkpoint image.
func ReadImage(r io.Reader) (*Image, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadImage, err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
	var flags [4]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	img := &Image{Gzip: flags[0]&1 != 0, Sections: NewSectionMap()}
	body := r
	if img.Gzip {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("%w: gzip: %v", ErrBadImage, err)
		}
		defer gz.Close()
		body = gz
	}
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(body, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	nRegions := binary.LittleEndian.Uint32(u32[:])
	for i := uint32(0); i < nRegions; i++ {
		var rd RegionData
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Start = binary.LittleEndian.Uint64(u64[:])
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Len = binary.LittleEndian.Uint64(u64[:])
		var prot [1]byte
		if _, err := io.ReadFull(body, prot[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot[0])
		label, err := readString(body)
		if err != nil {
			return nil, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		rd.Label = label
		rd.Data = make([]byte, rd.Len)
		if _, err := io.ReadFull(body, rd.Data); err != nil {
			return nil, fmt.Errorf("%w: region %d data: %v", ErrBadImage, i, err)
		}
		img.Regions = append(img.Regions, rd)
	}
	if _, err := io.ReadFull(body, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	nSections := binary.LittleEndian.Uint32(u32[:])
	for i := uint32(0); i < nSections; i++ {
		name, err := readString(body)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		if _, err := io.ReadFull(body, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		data := make([]byte, binary.LittleEndian.Uint64(u64[:]))
		if _, err := io.ReadFull(body, data); err != nil {
			return nil, fmt.Errorf("%w: section %d data: %v", ErrBadImage, i, err)
		}
		img.Sections.Add(name, data)
	}
	return img, nil
}

// RestoreRegions recreates every image region in space (attributed to the
// upper half, at the original addresses) and fills in the saved bytes.
func RestoreRegions(img *Image, space *addrspace.Space) error {
	for _, rd := range img.Regions {
		if _, err := space.MMap(rd.Start, rd.Len, rd.Prot|addrspace.ProtWrite, addrspace.MapFixedNoReplace,
			addrspace.HalfUpper, rd.Label); err != nil {
			return fmt.Errorf("dmtcp: restoring region %#x+%d (%s): %w", rd.Start, rd.Len, rd.Label, err)
		}
		if err := space.WriteAt(rd.Start, rd.Data); err != nil {
			return fmt.Errorf("dmtcp: filling region %#x+%d: %w", rd.Start, rd.Len, err)
		}
		if rd.Prot&addrspace.ProtWrite == 0 {
			if err := space.MProtect(rd.Start, rd.Len, rd.Prot); err != nil {
				return fmt.Errorf("dmtcp: protecting region %#x+%d: %w", rd.Start, rd.Len, err)
			}
		}
	}
	return nil
}

// RunRestartHooks invokes every plugin's Restart hook with the image's
// sections, in registration order.
func (e *Engine) RunRestartHooks(img *Image) error {
	for _, p := range e.plugins {
		if err := p.Restart(img.Sections); err != nil {
			return fmt.Errorf("dmtcp: plugin %s restart: %w", p.Name(), err)
		}
	}
	return nil
}
