package dmtcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorruptImage reports an image that was structurally valid when
// written but whose bytes no longer match their recorded checksums —
// damage in flight or at rest (bit rot, a torn write, a tampered
// store), as opposed to ErrBadImage's "not a valid image stream".
// Integrity failures are worth distinguishing: a corrupt image usually
// has intact siblings (an older generation, a chain ancestor) worth
// falling back to, while a bad image usually means the caller opened
// the wrong bytes altogether.
var ErrCorruptImage = errors.New("dmtcp: corrupt checkpoint image")

// The integrity trailer: appended after the image body by every writer
// except the v1+gzip combination (whose body is read through a buffered
// inflater that may overshoot the member's end; the gzip CRC covers
// that body instead). The trailer is magic + body length + CRC-32C of
// every body byte, magic included, so any single-bit flip anywhere in
// the stream — headers, payload, or the trailer itself — is detected.
// CRC-32C rather than a 64-bit hash because the checksum sits on the
// checkpoint and restart critical paths: the stdlib implementation is
// hardware-accelerated on amd64/arm64, so hashing costs well under a
// millisecond per image instead of tens. Readers accept trailer-less
// images for compatibility with pre-trailer writers; Image.Verified
// reports which case was hit.
var trailerMagic = [8]byte{'C', 'R', 'A', 'C', 'S', 'U', 'M', '1'}

var trailerCRCTable = crc32.MakeTable(crc32.Castagnoli)

const trailerSize = 24

// bodyHash accumulates the trailer checksum (CRC-32C widened into the
// trailer's u64 slot).
type bodyHash struct{ crc uint32 }

func (b *bodyHash) Write(p []byte) {
	b.crc = crc32.Update(b.crc, trailerCRCTable, p)
}

func (b *bodyHash) Sum64() uint64 { return uint64(b.crc) }

// trailerWriter hashes and counts the image body flowing through it;
// Finish appends the trailer to the underlying writer.
type trailerWriter struct {
	w io.Writer
	h bodyHash
	n uint64
}

func newTrailerWriter(w io.Writer) *trailerWriter {
	return &trailerWriter{w: w}
}

func (tw *trailerWriter) Write(p []byte) (int, error) {
	n, err := tw.w.Write(p)
	tw.h.Write(p[:n])
	tw.n += uint64(n)
	return n, err
}

func (tw *trailerWriter) Finish() error {
	var tr [trailerSize]byte
	copy(tr[:8], trailerMagic[:])
	binary.LittleEndian.PutUint64(tr[8:16], tw.n)
	binary.LittleEndian.PutUint64(tr[16:24], tw.h.Sum64())
	_, err := tw.w.Write(tr[:])
	return err
}

// hashingReader hashes and counts the image body as the parser consumes
// it, so the trailer can be verified without a second pass.
type hashingReader struct {
	r io.Reader
	h bodyHash
	n uint64
}

func newHashingReader(r io.Reader) *hashingReader {
	return &hashingReader{r: r}
}

func (hr *hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	hr.h.Write(p[:n])
	hr.n += uint64(n)
	return n, err
}

// verifyTrailer classifies whatever follows a fully-parsed image body:
// nothing (a legacy, pre-trailer image: accepted, not verified), a
// matching trailer followed by EOF (verified), or anything else — a
// partial trailer, a checksum or length mismatch, bytes beyond the
// trailer — which all report ErrCorruptImage. Strictness is safe
// because every image occupies its own stream (a Store entry or file);
// there is no valid reason for bytes past the trailer.
func verifyTrailer(hr *hashingReader) (bool, error) {
	bodyLen, bodySum := hr.n, hr.h.Sum64()
	var tr [trailerSize + 1]byte
	n, err := io.ReadFull(hr.r, tr[:])
	switch {
	case n == 0:
		if err == io.EOF {
			return false, nil // legacy image: body ends the stream
		}
		return false, err
	case n == trailerSize && (err == io.EOF || err == io.ErrUnexpectedEOF):
		if !bytes.Equal(tr[:8], trailerMagic[:]) {
			return false, fmt.Errorf("%w: bad trailer magic %q", ErrCorruptImage, tr[:8])
		}
		if got := binary.LittleEndian.Uint64(tr[8:16]); got != bodyLen {
			return false, fmt.Errorf("%w: trailer claims %d body bytes, read %d", ErrCorruptImage, got, bodyLen)
		}
		if got := binary.LittleEndian.Uint64(tr[16:24]); got != bodySum {
			return false, fmt.Errorf("%w: image checksum mismatch", ErrCorruptImage)
		}
		return true, nil
	case n < trailerSize:
		return false, fmt.Errorf("%w: truncated trailer (%d of %d bytes)", ErrCorruptImage, n, trailerSize)
	default:
		return false, fmt.Errorf("%w: trailing bytes after image trailer", ErrCorruptImage)
	}
}

// VerifyContent re-checks a parsed image's internal consistency: every
// recorded per-shard content hash still matches the decoded bytes (for
// an unmaterialized v3 delta) and every materialized region carries
// exactly the payload its header claims. ReadImage already enforces
// both while parsing; VerifyContent exists for images held in memory —
// a Verify pass over a long-lived Image, or one assembled by
// ApplyDelta.
func (img *Image) VerifyContent() error {
	if img.Delta != nil && !img.Delta.Materialized {
		for i := range img.Delta.shards {
			sh := &img.Delta.shards[i]
			if fnvSum64(sh.data) != sh.hash {
				return fmt.Errorf("%w: shard %d content hash mismatch", ErrCorruptImage, i)
			}
		}
		return nil
	}
	for i, rd := range img.Regions {
		if uint64(len(rd.Data)) != rd.Len {
			return fmt.Errorf("%w: region %d carries %d of %d bytes", ErrBadImage, i, len(rd.Data), rd.Len)
		}
	}
	return nil
}
