// Snapshot-and-release checkpoints: the engine side of CRAC's
// concurrent checkpoint path.
//
// A blocking checkpoint stops the application for drain + image write +
// store commit. The frozen path splits that into two phases:
//
//   - FreezeCheckpoint runs inside the stop-the-world window: plugin
//     drains, epoch cuts, and the copy-on-write arming of the address
//     space — O(metadata), no payload copying;
//   - WriteFrozen runs afterwards, concurrently with the application:
//     plugins emit their sections and the shard pipeline serializes the
//     image, all reading memory through the armed snapshot.
//
// The image WriteFrozen produces is byte-identical to the image a
// blocking checkpoint at the freeze point would have written, no matter
// how hard the application mutates memory during the overlap (DESIGN.md
// invariant 10).
package dmtcp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/addrspace"
)

// EmitFunc contributes one frozen plugin's sections to a checkpoint
// image. It runs outside the stop-the-world window, possibly
// concurrently with the application, and must read memory only through
// view — never through the live address space.
type EmitFunc func(ctx context.Context, view addrspace.View, sections *SectionMap) error

// SnapshotPlugin is the optional extension of Plugin for concurrent
// checkpoints. FreezeCheckpoint replaces PreCheckpoint /
// PreCheckpointDelta in the frozen lifecycle: it runs inside the
// stop-the-world window and must capture every non-memory input of the
// checkpoint (call-log prefix, active sets, epoch cuts) — quickly. The
// returned EmitFunc produces the plugin's sections later, from the
// capture plus the memory view. since is the parent checkpoint's epoch
// cut (0 for a base); incremental selects the v3 section encoding.
//
// Plugins that do not implement SnapshotPlugin still work under
// FreezeCheckpoint: their full PreCheckpoint hook runs inside the pause
// window against the live space, which is correct but pays the drain
// cost in the pause.
type SnapshotPlugin interface {
	Plugin
	FreezeCheckpoint(since uint64, incremental bool) (EmitFunc, error)
}

// frozenEmit is one plugin's contribution to a frozen checkpoint:
// either a deferred emit function, or sections already captured in the
// pause window (non-SnapshotPlugin fallback).
type frozenEmit struct {
	plugin Plugin
	emit   EmitFunc
	pre    *SectionMap
}

// Frozen is a checkpoint captured in the stop-the-world window, ready
// to be written while the application keeps executing. The caller must
// Release it exactly once, after WriteFrozen (or instead of it, when
// abandoning the checkpoint) — releasing drops every copy-on-write page
// the snapshot retained.
type Frozen struct {
	snap     *addrspace.Snapshot
	cut      uint64
	since    uint64
	prev     *DeltaState
	selfName string
	version  int
	emits    []frozenEmit
	start    time.Time
}

// FreezeCheckpoint captures a checkpoint of space inside the
// stop-the-world window: it takes the epoch cut (v3), runs the plugin
// freeze hooks (draining the device), and arms the copy-on-write
// snapshot. incremental forces the v3 format (a chain base when prev is
// nil); prev and selfName carry the lineage exactly as in
// CheckpointDelta. On return the application may resume: everything the
// image needs is pinned.
func (e *Engine) FreezeCheckpoint(ctx context.Context, space *addrspace.Space, incremental bool, prev *DeltaState, selfName string) (*Frozen, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	version := e.ImageVersion
	if version == 0 {
		version = 2
	}
	if incremental || prev != nil {
		version = 3
	}
	switch version {
	case 1, 2, 3:
	default:
		return nil, fmt.Errorf("%w: cannot write version %d", ErrUnsupportedVersion, version)
	}
	// Same rotation guards as CheckpointDelta: a shard-size change or a
	// chain at the depth cap rotates to a fresh base.
	if prev != nil && (prev.ShardSize != e.shardSize() || prev.Depth+1 >= maxChainDepth) {
		prev = nil
	}
	fz := &Frozen{prev: prev, selfName: selfName, version: version, start: time.Now()}
	if version == 3 {
		// The cut precedes the drain hooks, exactly as in CheckpointDelta:
		// writes racing the drain are stamped above the cut and re-emitted
		// by the next delta.
		fz.cut = space.CutEpoch()
		if prev != nil {
			fz.since = prev.Cut
		}
	}
	for _, p := range e.plugins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sp, ok := p.(SnapshotPlugin); ok {
			emit, err := sp.FreezeCheckpoint(fz.since, version == 3)
			if err != nil {
				return nil, fmt.Errorf("dmtcp: plugin %s freeze: %w", p.Name(), err)
			}
			fz.emits = append(fz.emits, frozenEmit{plugin: p, emit: emit})
			continue
		}
		// Fallback: the plugin cannot defer its work, so its whole
		// precheckpoint hook runs here, in the pause, against the live
		// space — its sections are frozen by construction.
		pre := NewSectionMap()
		var err error
		if dp, ok := p.(DeltaPlugin); ok && version == 3 {
			err = dp.PreCheckpointDelta(ctx, pre, fz.since)
		} else {
			err = p.PreCheckpoint(ctx, pre)
		}
		if err != nil {
			return nil, fmt.Errorf("dmtcp: plugin %s precheckpoint: %w", p.Name(), err)
		}
		fz.emits = append(fz.emits, frozenEmit{plugin: p, pre: pre})
	}
	// Arm the snapshot after the drain hooks, so the image includes the
	// memory effects the drain flushed — the same ordering a blocking
	// checkpoint observes.
	fz.snap = space.Snapshot()
	return fz, nil
}

// Cut returns the address-space epoch cut the checkpoint was frozen at
// (0 for v1/v2 images, which take no cut).
func (fz *Frozen) Cut() uint64 { return fz.cut }

// StartedAt backdates the checkpoint's wall clock to t (ignored unless
// earlier than the freeze entry). Callers that spent time reaching the
// freeze — waiting out gates, draining the device — charge it here so
// Stats.Duration always contains Stats.PauseDuration.
func (fz *Frozen) StartedAt(t time.Time) {
	if t.Before(fz.start) {
		fz.start = t
	}
}

// Release drops every copy-on-write page the frozen checkpoint pinned.
// Idempotent; must be called once the image write finished or was
// abandoned.
func (fz *Frozen) Release() { fz.snap.Release() }

// WriteFrozen serializes a frozen checkpoint to w, reading all memory
// through the snapshot armed at freeze time, then runs the Resume
// hooks. It may run concurrently with the application. The returned
// DeltaState (v3 only) follows the CheckpointDelta contract: commit it
// only once the image durably landed. Stats.PauseDuration is left zero —
// the caller measured the pause and owns that split.
func (e *Engine) WriteFrozen(ctx context.Context, w io.Writer, fz *Frozen) (Stats, *DeltaState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hookStart := time.Now()
	sections := NewSectionMap()
	for _, fe := range fz.emits {
		if err := ctx.Err(); err != nil {
			return Stats{}, nil, err
		}
		if fe.emit != nil {
			if err := fe.emit(ctx, fz.snap, sections); err != nil {
				return Stats{}, nil, fmt.Errorf("dmtcp: plugin %s emit: %w", fe.plugin.Name(), err)
			}
			continue
		}
		for _, name := range fe.pre.Names() {
			data, _ := fe.pre.Get(name)
			sections.Add(name, data)
			if fe.pre.Opaque(name) {
				sections.MarkOpaque(name)
			}
		}
	}
	hookDur := time.Since(hookStart)

	regions := fz.snap.RegionsIn(addrspace.HalfUpper)
	st := Stats{Regions: len(regions), Delta: fz.prev != nil}
	if fz.prev != nil {
		st.DeltaDepth = fz.prev.Depth + 1
	}

	writeStart := time.Now()
	// Same trailer rule as the blocking writer: every format except the
	// whole-body-gzip v1 layout carries the integrity trailer.
	var tw *trailerWriter
	sink := w
	if fz.version != 1 || !e.Gzip {
		tw = newTrailerWriter(w)
		sink = tw
	}
	bw := bufio.NewWriterSize(sink, 256<<10)
	var state *DeltaState
	var err error
	switch fz.version {
	case 1:
		err = e.writeImageV1(ctx, bw, fz.snap, regions, sections, &st)
	case 2:
		err = e.writeImageV2(ctx, bw, fz.snap, regions, sections, &st)
	case 3:
		state, err = e.writeImageV3(ctx, bw, fz.snap, regions, sections, fz.prev, fz.selfName, fz.cut, fz.since, &st)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil && tw != nil {
		err = tw.Finish()
	}
	st.WriteDuration = time.Since(writeStart)
	if err != nil {
		return st, nil, err
	}

	resumeStart := time.Now()
	for i := len(e.plugins) - 1; i >= 0; i-- {
		if err := e.plugins[i].Resume(); err != nil {
			return st, nil, fmt.Errorf("dmtcp: plugin %s resume: %w", e.plugins[i].Name(), err)
		}
	}
	st.HookDuration = hookDur + time.Since(resumeStart)
	st.Duration = time.Since(fz.start)
	return st, state, nil
}
