package dmtcp

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// restartMember is a coordMember that can also restart from an image.
type restartMember struct {
	coordMember
	mu       sync.Mutex
	restored string
	failR    bool
}

func (m *restartMember) RestartCheckpoint(r io.Reader) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failR {
		return errors.New("restart failed")
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	m.restored = string(b)
	return nil
}

func rankSource(fail int) func(rank int) (io.ReadCloser, error) {
	return func(rank int) (io.ReadCloser, error) {
		if rank == fail {
			return nil, errors.New("image gone")
		}
		return io.NopCloser(strings.NewReader(fmt.Sprintf("img-%d", rank))), nil
	}
}

func TestCoordinatorRestartAll(t *testing.T) {
	c := NewCoordinator()
	members := []*restartMember{{}, {}, {}}
	for i, m := range members {
		c.Add(i, m)
	}
	if err := c.RestartAll(rankSource(-1)); err != nil {
		t.Fatalf("RestartAll: %v", err)
	}
	for i, m := range members {
		if m.restored != fmt.Sprintf("img-%d", i) {
			t.Fatalf("rank %d restored %q", i, m.restored)
		}
	}
}

func TestCoordinatorRestartAllAttemptsEveryRank(t *testing.T) {
	c := NewCoordinator()
	ok := &restartMember{}
	bad := &restartMember{failR: true}
	c.Add(0, ok)
	c.Add(1, bad)
	err := c.RestartAll(rankSource(-1))
	if err == nil {
		t.Fatal("RestartAll succeeded despite a failing rank")
	}
	if ok.restored != "img-0" {
		t.Fatalf("healthy rank not restarted (restored %q): one failure must not starve the others", ok.restored)
	}
}

func TestCoordinatorRestartAllSourceError(t *testing.T) {
	c := NewCoordinator()
	members := []*restartMember{{}, {}}
	for i, m := range members {
		c.Add(i, m)
	}
	if err := c.RestartAll(rankSource(1)); err == nil {
		t.Fatal("RestartAll succeeded with a missing image")
	}
	if members[0].restored != "img-0" {
		t.Fatal("rank 0 not restarted after rank 1's source failed")
	}
}

func TestCoordinatorRestartAllRejectsNonRestarter(t *testing.T) {
	c := NewCoordinator()
	c.Add(0, &coordMember{}) // Member but not Restarter
	c.Add(1, &restartMember{})
	err := c.RestartAll(rankSource(-1))
	if err == nil {
		t.Fatal("RestartAll accepted a member that cannot restart")
	}
}
