package dmtcp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/addrspace"
)

// testPlugin records hook invocations and contributes one section.
type testPlugin struct {
	name    string
	pre     int
	resume  int
	restart int
	failPre bool
	got     []byte
}

func (p *testPlugin) Name() string { return p.name }
func (p *testPlugin) PreCheckpoint(_ context.Context, s *SectionMap) error {
	p.pre++
	if p.failPre {
		return errors.New("boom")
	}
	s.Add(p.name+".data", []byte("payload-"+p.name))
	return nil
}
func (p *testPlugin) Resume() error { p.resume++; return nil }
func (p *testPlugin) Restart(_ context.Context, s *SectionMap) error {
	p.restart++
	p.got, _ = s.Get(p.name + ".data")
	return nil
}

func buildSpace(t *testing.T) (*addrspace.Space, uint64) {
	t.Helper()
	s := addrspace.New()
	// Lower-half region that must NOT be checkpointed.
	if _, err := s.MMap(0, addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfLower, "lower-secret"); err != nil {
		t.Fatal(err)
	}
	up, err := s.MMap(0, 2*addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfUpper, "upper-data")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(up, bytes.Repeat([]byte{0xCD}, 2*addrspace.PageSize)); err != nil {
		t.Fatal(err)
	}
	return s, up
}

func TestCheckpointImageRoundTrip(t *testing.T) {
	space, up := buildSpace(t)
	e := NewEngine()
	p := &testPlugin{name: "crac"}
	e.Register(p)

	var img bytes.Buffer
	st, err := e.Checkpoint(context.Background(), &img, space)
	if err != nil {
		t.Fatal(err)
	}
	if p.pre != 1 || p.resume != 1 {
		t.Fatalf("hook counts: pre=%d resume=%d", p.pre, p.resume)
	}
	if st.Regions != 1 || st.RegionBytes != 2*addrspace.PageSize {
		t.Fatalf("stats = %+v", st)
	}

	parsed, err := ReadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Regions) != 1 || parsed.Regions[0].Start != up {
		t.Fatalf("regions = %+v", parsed.Regions)
	}
	if parsed.Regions[0].Label != "upper-data" {
		t.Fatalf("label = %q", parsed.Regions[0].Label)
	}
	// Lower-half bytes are absent from the image (invariant 4).
	if bytes.Contains(img.Bytes(), []byte("lower-secret")) {
		t.Fatal("image contains a lower-half region label")
	}
	if got, _ := parsed.Sections.Get("crac.data"); string(got) != "payload-crac" {
		t.Fatalf("section = %q", got)
	}

	// Restore into a fresh space.
	fresh := addrspace.New()
	if err := RestoreRegions(parsed, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*addrspace.PageSize)
	if err := fresh.ReadAt(up, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 2*addrspace.PageSize)) {
		t.Fatal("restored bytes differ")
	}
	if err := e.RunRestartHooks(context.Background(), parsed); err != nil {
		t.Fatal(err)
	}
	if p.restart != 1 || string(p.got) != "payload-crac" {
		t.Fatalf("restart hook: %d %q", p.restart, p.got)
	}
}

func TestCheckpointGzip(t *testing.T) {
	space, _ := buildSpace(t)
	e := NewEngine()
	e.Gzip = true
	var img bytes.Buffer
	if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
		t.Fatal(err)
	}
	// Highly compressible content: the gzip image is much smaller than
	// the raw region bytes.
	if img.Len() >= addrspace.PageSize {
		t.Fatalf("gzip image %d bytes, expected well under one page", img.Len())
	}
	parsed, err := ReadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Gzip || len(parsed.Regions) != 1 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.TotalRegionBytes() != 2*addrspace.PageSize {
		t.Fatalf("region bytes = %d", parsed.TotalRegionBytes())
	}
}

func TestPluginPreCheckpointFailureAborts(t *testing.T) {
	space, _ := buildSpace(t)
	e := NewEngine()
	e.Register(&testPlugin{name: "bad", failPre: true})
	var img bytes.Buffer
	if _, err := e.Checkpoint(context.Background(), &img, space); err == nil {
		t.Fatal("checkpoint succeeded despite plugin failure")
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("NOTANIMG0123456789"))); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ReadImage(bytes.NewReader(nil)); !errors.Is(err, ErrBadImage) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestReadImageTruncated(t *testing.T) {
	space, _ := buildSpace(t)
	e := NewEngine()
	var img bytes.Buffer
	if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
		t.Fatal(err)
	}
	b := img.Bytes()
	if _, err := ReadImage(bytes.NewReader(b[:len(b)/2])); !errors.Is(err, ErrBadImage) {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestRestoreCollisionFails(t *testing.T) {
	space, _ := buildSpace(t)
	e := NewEngine()
	var img bytes.Buffer
	if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
		t.Fatal(err)
	}
	parsed, _ := ReadImage(bytes.NewReader(img.Bytes()))
	// Restoring over a space that already has the address mapped fails
	// (MAP_FIXED_NOREPLACE semantics protect against corruption).
	if err := RestoreRegions(parsed, space); err == nil {
		t.Fatal("restore over occupied space succeeded")
	}
}

func TestSectionMapOrder(t *testing.T) {
	s := NewSectionMap()
	s.Add("b", []byte{1})
	s.Add("a", []byte{2})
	s.Add("b", []byte{3}) // replace keeps position
	if names := s.Names(); names[0] != "b" || names[1] != "a" || len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	if v, ok := s.Get("b"); !ok || v[0] != 3 {
		t.Fatalf("get b = %v %v", v, ok)
	}
	if _, ok := s.Get("zzz"); ok {
		t.Fatal("missing section found")
	}
}

// coordMember implements Member for coordinator tests.
type coordMember struct {
	mu       sync.Mutex
	quiesced bool
	wrote    bool
	resumed  bool
	failQ    bool
}

func (m *coordMember) Quiesce() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failQ {
		return errors.New("quiesce failed")
	}
	m.quiesced = true
	return nil
}
func (m *coordMember) WriteCheckpoint(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.quiesced {
		return errors.New("write before quiesce barrier")
	}
	m.wrote = true
	_, err := w.Write([]byte("img"))
	return err
}
func (m *coordMember) Resume() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.wrote {
		return errors.New("resume before write")
	}
	m.resumed = true
	return nil
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestCoordinatorPhases(t *testing.T) {
	c := NewCoordinator()
	members := []*coordMember{{}, {}, {}}
	for i, m := range members {
		c.Add(i, m)
	}
	if got := c.Ranks(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("ranks = %v", got)
	}
	var bufs [3]bytes.Buffer
	err := c.CheckpointAll(func(rank int) (io.WriteCloser, error) {
		return nopCloser{&bufs[rank]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if !m.quiesced || !m.wrote || !m.resumed {
			t.Fatalf("member %d: %+v", i, m)
		}
		if bufs[i].String() != "img" {
			t.Fatalf("rank %d image = %q", i, bufs[i].String())
		}
	}
}

func TestCoordinatorQuiesceFailureAborts(t *testing.T) {
	c := NewCoordinator()
	c.Add(0, &coordMember{})
	c.Add(1, &coordMember{failQ: true})
	err := c.CheckpointAll(func(int) (io.WriteCloser, error) {
		return nopCloser{io.Discard}, nil
	})
	if err == nil {
		t.Fatal("coordinated checkpoint succeeded despite quiesce failure")
	}
}

func TestCoordinatorRemove(t *testing.T) {
	c := NewCoordinator()
	c.Add(7, &coordMember{})
	c.Remove(7)
	if len(c.Ranks()) != 0 {
		t.Fatal("remove failed")
	}
}

func TestWriteStringTooLong(t *testing.T) {
	var buf bytes.Buffer
	if err := writeString(&buf, string(make([]byte, 70000))); err == nil {
		t.Fatal("overlong string accepted")
	}
	_ = fmt.Sprintf // keep fmt used
}
