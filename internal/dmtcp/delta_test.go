package dmtcp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/addrspace"
)

// chainStore is a minimal in-memory name→image map for chain tests.
type chainStore map[string][]byte

func (cs chainStore) open(name string) (io.ReadCloser, error) {
	b, ok := cs[name]
	if !ok {
		return nil, fmt.Errorf("no image %q", name)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// buildDeltaSpace maps a multi-page upper region plus a small one.
func buildDeltaSpace(t *testing.T) (*addrspace.Space, uint64, uint64) {
	t.Helper()
	s := addrspace.New()
	big, err := s.MMap(0, 16*addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfUpper, "big")
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.MMap(0, 2*addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfUpper, "small")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(big, bytes.Repeat([]byte{0xAA}, 16*addrspace.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(small, bytes.Repeat([]byte{0xBB}, 2*addrspace.PageSize)); err != nil {
		t.Fatal(err)
	}
	return s, big, small
}

// ckptDelta runs one CheckpointDelta into a chainStore under name.
func ckptDelta(t *testing.T, e *Engine, cs chainStore, space *addrspace.Space, prev *DeltaState, name string) (Stats, *DeltaState) {
	t.Helper()
	var buf bytes.Buffer
	st, state, err := e.CheckpointDelta(context.Background(), &buf, space, prev, name)
	if err != nil {
		t.Fatalf("CheckpointDelta(%s): %v", name, err)
	}
	cs[name] = buf.Bytes()
	return st, state
}

func regionBytes(t *testing.T, img *Image, label string) []byte {
	t.Helper()
	for _, rd := range img.Regions {
		if rd.Label == label {
			return rd.Data
		}
	}
	t.Fatalf("image has no region %q", label)
	return nil
}

func TestV3BaseRoundTrip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			space, _, _ := buildDeltaSpace(t)
			e := NewEngine()
			e.Gzip = gz
			e.ShardSize = 3 * addrspace.PageSize // force intra-region sharding
			e.Register(&testPlugin{name: "p"})
			cs := chainStore{}
			st, state := ckptDelta(t, e, cs, space, nil, "base")
			if st.Delta || st.DeltaDepth != 0 {
				t.Fatalf("base reported as delta: %+v", st)
			}
			if st.ShardsWritten != st.ShardsTotal || st.PayloadWritten != st.PayloadTotal {
				t.Fatalf("base must emit everything: %+v", st)
			}
			if state.Name != "base" || state.Depth != 0 {
				t.Fatalf("bad state: %+v", state)
			}
			img, err := ReadImage(bytes.NewReader(cs["base"]))
			if err != nil {
				t.Fatal(err)
			}
			if img.Version != 3 || !img.Complete() || img.Delta == nil || !img.Delta.Materialized {
				t.Fatalf("base image not materialized: %+v", img.Delta)
			}
			if got := regionBytes(t, img, "big"); !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 16*addrspace.PageSize)) {
				t.Fatal("big region bytes wrong")
			}
			if sec, ok := img.Sections.Get("p.data"); !ok || !bytes.Equal(sec, []byte("payload-p")) {
				t.Fatalf("section missing or wrong: %q", sec)
			}
		})
	}
}

func TestV3DeltaChainMaterializesIdentically(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			space, big, small := buildDeltaSpace(t)
			e := NewEngine()
			e.Gzip = gz
			e.ShardSize = addrspace.PageSize
			cs := chainStore{}
			_, st0 := ckptDelta(t, e, cs, space, nil, "g0")

			// Dirty one page of big, all of small.
			if err := space.WriteAt(big+5*addrspace.PageSize, bytes.Repeat([]byte{0x11}, addrspace.PageSize)); err != nil {
				t.Fatal(err)
			}
			if err := space.WriteAt(small, bytes.Repeat([]byte{0x22}, 2*addrspace.PageSize)); err != nil {
				t.Fatal(err)
			}
			st1s, st1 := ckptDelta(t, e, cs, space, st0, "g1")
			if !st1s.Delta || st1s.DeltaDepth != 1 {
				t.Fatalf("expected delta depth 1: %+v", st1s)
			}
			if st1s.PayloadWritten != 3*addrspace.PageSize {
				t.Fatalf("delta payload = %d, want 3 pages", st1s.PayloadWritten)
			}

			// Another round: a different page.
			if err := space.WriteAt(big+9*addrspace.PageSize, bytes.Repeat([]byte{0x33}, 2*addrspace.PageSize)); err != nil {
				t.Fatal(err)
			}
			_, _ = st1, ckptDelta2(t, e, cs, space, st1, "g2")

			// Reference: a full base at the same point.
			var ref bytes.Buffer
			if _, _, err := e.CheckpointDelta(context.Background(), &ref, space, nil, ""); err != nil {
				t.Fatal(err)
			}
			refImg, err := ReadImage(bytes.NewReader(ref.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			tip, err := ReadImage(bytes.NewReader(cs["g2"]))
			if err != nil {
				t.Fatal(err)
			}
			if tip.Complete() {
				t.Fatal("unresolved delta must not be complete")
			}
			mat, err := ResolveChain(tip, cs.open, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !mat.Complete() {
				t.Fatal("materialized chain must be complete")
			}
			if len(mat.Regions) != len(refImg.Regions) {
				t.Fatalf("region count %d != %d", len(mat.Regions), len(refImg.Regions))
			}
			for i := range mat.Regions {
				if mat.Regions[i].Start != refImg.Regions[i].Start || !bytes.Equal(mat.Regions[i].Data, refImg.Regions[i].Data) {
					t.Fatalf("region %d differs after chain materialization", i)
				}
			}
		})
	}
}

// ckptDelta2 mirrors ckptDelta but discards the stats (loop helper).
func ckptDelta2(t *testing.T, e *Engine, cs chainStore, space *addrspace.Space, prev *DeltaState, name string) *DeltaState {
	t.Helper()
	_, state := ckptDelta(t, e, cs, space, prev, name)
	return state
}

func TestV3DeltaSkipsCleanSectionShards(t *testing.T) {
	space, _, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	grow := bytes.Repeat([]byte{0x55}, 3*addrspace.PageSize)
	p := &growingSectionPlugin{data: grow}
	e.Register(p)
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "b")
	// Append one page to the section; nothing else changes.
	p.data = append(p.data, bytes.Repeat([]byte{0x66}, addrspace.PageSize)...)
	st, st1 := ckptDelta(t, e, cs, space, st0, "d")
	// Only the appended section page is dirty (region payload clean).
	if st.PayloadWritten != addrspace.PageSize {
		t.Fatalf("append-only section re-emitted %d bytes, want one page", st.PayloadWritten)
	}
	tip, err := ReadImage(bytes.NewReader(cs["d"]))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ResolveChain(tip, cs.open, nil)
	if err != nil {
		t.Fatal(err)
	}
	sec, _ := mat.Sections.Get("grow.data")
	if !bytes.Equal(sec, p.data) {
		t.Fatal("materialized grown section differs")
	}
	_ = st1
}

type growingSectionPlugin struct {
	data []byte
}

func (p *growingSectionPlugin) Name() string { return "grow" }
func (p *growingSectionPlugin) PreCheckpoint(_ context.Context, s *SectionMap) error {
	s.Add("grow.data", append([]byte(nil), p.data...))
	return nil
}
func (p *growingSectionPlugin) Resume() error                                  { return nil }
func (p *growingSectionPlugin) Restart(_ context.Context, _ *SectionMap) error { return nil }

func TestV3WorkerCountDeterminism(t *testing.T) {
	for _, gz := range []bool{false, true} {
		images := map[int][]byte{}
		for _, workers := range []int{1, 4} {
			space, big, _ := buildDeltaSpace(t)
			e := NewEngine()
			e.Gzip = gz
			e.Workers = workers
			e.ShardSize = addrspace.PageSize
			cs := chainStore{}
			_, st0 := ckptDelta(t, e, cs, space, nil, "b")
			if err := space.WriteAt(big+3*addrspace.PageSize, bytes.Repeat([]byte{0x42}, addrspace.PageSize)); err != nil {
				t.Fatal(err)
			}
			ckptDelta(t, e, cs, space, st0, "d")
			images[workers] = append(cs["b"], cs["d"]...)
		}
		if !bytes.Equal(images[1], images[4]) {
			t.Fatalf("gzip=%v: v3 images differ between worker counts", gz)
		}
	}
}

func TestV3HashCorruptionDetected(t *testing.T) {
	space, _, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	cs := chainStore{}
	ckptDelta(t, e, cs, space, nil, "b")
	img := cs["b"]
	// Flip a byte in the last shard's payload (well past the header,
	// before the integrity trailer). Integrity failures now classify
	// as ErrCorruptImage, distinct from structural ErrBadImage.
	bad := append([]byte(nil), img...)
	bad[len(bad)-1-trailerSize] ^= 0xFF
	if _, err := ReadImage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("corrupted payload not detected: %v", err)
	}
	// The trailer itself is covered too.
	bad = append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadImage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptImage) {
		t.Fatalf("corrupted trailer not detected: %v", err)
	}
}

func TestV3DeltaRestoreWithoutChainFails(t *testing.T) {
	space, big, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "b")
	if err := space.WriteAt(big, []byte{1}); err != nil {
		t.Fatal(err)
	}
	ckptDelta(t, e, cs, space, st0, "d")
	tip, err := ReadImage(bytes.NewReader(cs["d"]))
	if err != nil {
		t.Fatal(err)
	}
	fresh := addrspace.New()
	if err := RestoreRegions(tip, fresh); !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("restoring an unmaterialized delta must fail with ErrDeltaChain, got %v", err)
	}
	// A broken lineage (missing parent) also classifies as ErrDeltaChain.
	if _, err := ResolveChain(tip, chainStore{}.open, nil); !errors.Is(err, ErrDeltaChain) {
		t.Fatalf("missing parent must fail with ErrDeltaChain, got %v", err)
	}
}

func TestV3RegionRemapEmitsFully(t *testing.T) {
	space, big, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "b")
	// Unmap the middle of big: the region splits; the delta's table must
	// reflect the split and the materialized chain must still match a
	// fresh base.
	if err := space.MUnmap(big+4*addrspace.PageSize, 2*addrspace.PageSize); err != nil {
		t.Fatal(err)
	}
	// Map a brand-new region: stamped dirty from birth.
	nr, err := space.MMap(0, addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfUpper, "new")
	if err != nil {
		t.Fatal(err)
	}
	if err := space.WriteAt(nr, bytes.Repeat([]byte{0x77}, addrspace.PageSize)); err != nil {
		t.Fatal(err)
	}
	ckptDelta(t, e, cs, space, st0, "d")

	var ref bytes.Buffer
	if _, _, err := e.CheckpointDelta(context.Background(), &ref, space, nil, ""); err != nil {
		t.Fatal(err)
	}
	refImg, err := ReadImage(bytes.NewReader(ref.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tip, err := ReadImage(bytes.NewReader(cs["d"]))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ResolveChain(tip, cs.open, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.Regions) != len(refImg.Regions) {
		t.Fatalf("region count %d != %d", len(mat.Regions), len(refImg.Regions))
	}
	for i := range mat.Regions {
		if mat.Regions[i].Start != refImg.Regions[i].Start ||
			mat.Regions[i].Len != refImg.Regions[i].Len ||
			!bytes.Equal(mat.Regions[i].Data, refImg.Regions[i].Data) {
			t.Fatalf("region %d differs after remap", i)
		}
	}
}

func TestReadImageMeta(t *testing.T) {
	space, big, _ := buildDeltaSpace(t)
	e := NewEngine()
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "base")
	if err := space.WriteAt(big, []byte{9}); err != nil {
		t.Fatal(err)
	}
	ckptDelta(t, e, cs, space, st0, "d1")

	m, err := ReadImageMeta(bytes.NewReader(cs["base"]))
	if err != nil || m.Version != 3 || m.Delta || m.Parent != "" || m.Depth != 0 {
		t.Fatalf("base meta: %+v, %v", m, err)
	}
	m, err = ReadImageMeta(bytes.NewReader(cs["d1"]))
	if err != nil || !m.Delta || m.Parent != "base" || m.Depth != 1 {
		t.Fatalf("delta meta: %+v, %v", m, err)
	}

	// v2 images report no lineage.
	var v2 bytes.Buffer
	if _, err := NewEngine().Checkpoint(context.Background(), &v2, space); err != nil {
		t.Fatal(err)
	}
	m, err = ReadImageMeta(bytes.NewReader(v2.Bytes()))
	if err != nil || m.Version != 2 || m.Delta || m.Parent != "" {
		t.Fatalf("v2 meta: %+v, %v", m, err)
	}
}

func TestV3ShardSizeChangeRotatesToBase(t *testing.T) {
	space, _, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "b")
	e.ShardSize = 2 * addrspace.PageSize
	st, state := ckptDelta(t, e, cs, space, st0, "next")
	if st.Delta || state.Depth != 0 {
		t.Fatalf("shard-size change must force a base, got %+v", st)
	}
}

// hookWriter is a DeltaPlugin whose pre-checkpoint hook itself writes
// to the space — the drain-time mutation window that must never lose
// bytes across a chain.
type hookWriter struct {
	space *addrspace.Space
	addr  uint64
	val   byte
	write bool
}

func (p *hookWriter) Name() string { return "hookwriter" }
func (p *hookWriter) PreCheckpoint(_ context.Context, _ *SectionMap) error {
	return p.PreCheckpointDelta(context.Background(), nil, 0)
}
func (p *hookWriter) PreCheckpointDelta(_ context.Context, _ *SectionMap, _ uint64) error {
	if p.write {
		if err := p.space.WriteAt(p.addr, []byte{p.val}); err != nil {
			return err
		}
	}
	return nil
}
func (p *hookWriter) Resume() error                                  { return nil }
func (p *hookWriter) Restart(_ context.Context, _ *SectionMap) error { return nil }

// TestV3HookTimeWritesStampAboveCut pins the cut ordering: a write
// performed during the checkpoint's own hooks (after the cut is taken)
// must be stamped above the cut and re-emitted by the NEXT delta, even
// though this checkpoint's payload may also have captured it. With the
// cut taken after the hooks, such writes would be stamped at the cut
// value, reported clean forever, and lost from the chain.
func TestV3HookTimeWritesStampAboveCut(t *testing.T) {
	space, big, _ := buildDeltaSpace(t)
	e := NewEngine()
	e.ShardSize = addrspace.PageSize
	hw := &hookWriter{space: space, addr: big + 7*addrspace.PageSize, val: 0x5A, write: true}
	e.Register(hw)
	cs := chainStore{}
	_, st0 := ckptDelta(t, e, cs, space, nil, "base")

	// The delta's own hook stays quiet: anything it emits for page 7 can
	// only come from the base's hook-time write.
	hw.write = false
	st, _ := ckptDelta(t, e, cs, space, st0, "d1")
	if st.PayloadWritten == 0 {
		t.Fatal("hook-time write of the base checkpoint was reported clean and lost")
	}
	tip, err := ReadImage(bytes.NewReader(cs["d1"]))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ResolveChain(tip, cs.open, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := regionBytes(t, mat, "big")
	if got[7*addrspace.PageSize] != 0x5A {
		t.Fatalf("chain lost the hook-time write: byte = %#x", got[7*addrspace.PageSize])
	}
}

// TestV3DepthCapRotatesToBase pins the writer-side cap: the chain
// rotates to a base before reaching the reader's maxChainDepth, so
// every written image stays restorable no matter the caller's policy.
func TestV3DepthCapRotatesToBase(t *testing.T) {
	space, _, _ := buildDeltaSpace(t)
	e := NewEngine()
	var st *DeltaState
	cs := chainStore{}
	maxSeen := 0
	for i := 0; i < maxChainDepth+3; i++ {
		var buf bytes.Buffer
		stats, next, err := e.CheckpointDelta(context.Background(), &buf, space, st, fmt.Sprintf("g%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cs[fmt.Sprintf("g%d", i)] = buf.Bytes()
		if stats.DeltaDepth > maxSeen {
			maxSeen = stats.DeltaDepth
		}
		if stats.DeltaDepth >= maxChainDepth {
			t.Fatalf("checkpoint %d written at unrestorable depth %d", i, stats.DeltaDepth)
		}
		st = next
	}
	if maxSeen != maxChainDepth-1 {
		t.Fatalf("max depth seen %d, want rotation at %d", maxSeen, maxChainDepth-1)
	}
	// The deepest tip still materializes.
	tip, err := ReadImage(bytes.NewReader(cs[fmt.Sprintf("g%d", maxChainDepth-1)]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveChain(tip, cs.open, nil); err != nil {
		t.Fatal(err)
	}
}
