// Lazy on-demand restart: a random-access shard index over checkpoint
// image bodies, and the restorer that faults shards in on first access
// while a background prefetcher drains the rest.
//
// # ShardIndex
//
// OpenShardIndex scans only an image's headers (magic, flags, region
// and section tables, shard framing) out of an io.ReaderAt, recording
// each payload shard's file offset instead of decoding it. The three
// formats index differently:
//
//   - v2: the frame stream is walked header-by-header; each frame is
//     mapped back to its (span, offset) through the deterministic
//     layout (the writer never emits a frame spanning two spans);
//   - v3: shards are self-addressed by (span, offset) and carry a
//     content hash, verified on every lazy decode;
//   - v1 uncompressed: the interleaved region/section payloads are
//     located by seeking over them, and a synthetic DefaultShardSize
//     grid is laid over each payload (stored bytes are random-access
//     at byte granularity);
//   - v1 whole-body gzip: a single gzip stream has no random access,
//     so the body is decoded once up front and the index serves shards
//     from memory — restore-side laziness (cold pages, prefetch) still
//     applies, only the decode is eager.
//
// Indexes chain like delta images: SetParent links a delta's index to
// its parent's, and range resolution walks the chain to the nearest
// ancestor that owns each shard (regions inherit by absolute address,
// sections by name and offset — the same rules as ApplyDelta).
//
// # LazyRestorer
//
// The restorer owns the fill plans (which target address ranges are
// backed by which image bytes), the single-flight shard decode state,
// and the prefetcher. Its MaterializeRange is the addrspace
// Materializer: it resolves the page range to source shards, decodes
// each at most once (concurrent faults and the prefetcher wait on the
// same in-flight call), scatters the decoded bytes through
// Space.FillCold, and marks the range warm. Invariant 11 (DESIGN.md):
// once the prefetcher drains, memory is byte-identical to an eager
// restart of the same image.
package dmtcp

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/addrspace"
)

// ErrLazyUnsupported reports an image whose body cannot be served
// lazily (e.g. a frame straddling span boundaries, which the writer
// never produces).
var ErrLazyUnsupported = errors.New("dmtcp: image layout not servable lazily")

// ixShard is one indexed payload shard.
type ixShard struct {
	span    int
	off     uint64 // offset within the span
	rawLen  uint32
	encLen  uint32
	fileOff int64  // payload offset in src (ignored when mem != nil)
	hash    uint64 // v3 content hash
	hashed  bool   // verify hash on decode
	gz      bool   // payload is one gzip member
	mem     []byte // in-memory payload (v1 gzip fallback)
}

// ixSpan is one destination span of the image layout: regions in table
// order, then sections.
type ixSpan struct {
	size   uint64
	shards []int // indices into ShardIndex.shards, ascending by off
}

// ShardIndex is the random-access map of one image body.
type ShardIndex struct {
	Version int
	Gzip    bool
	Delta   bool // v3 delta (carries only dirty shards)
	Parent  string
	Depth   int

	// Regions holds the region headers (Data always nil); Secs the
	// section table.
	Regions []RegionData
	Secs    []SectionHdr

	ShardSize int

	id, parentID uint64

	shards []ixShard
	spans  []ixSpan
	src    io.ReaderAt

	parent *ShardIndex
}

// SetParent links a delta's index to its parent's, after verifying the
// recorded parent identity (the same check ApplyDelta performs: a
// parent name rebound to different content must fail, not silently mix
// states).
func (ix *ShardIndex) SetParent(p *ShardIndex) error {
	if !ix.Delta {
		return fmt.Errorf("%w: SetParent on a non-delta image", ErrBadImage)
	}
	if ix.parentID != 0 && p.id != ix.parentID {
		return fmt.Errorf("%w: image %q is not the parent this delta was written against", ErrDeltaChain, ix.Parent)
	}
	if ix.ShardSize != p.ShardSize {
		return fmt.Errorf("%w: shard size changed across chain (%d vs %d)", ErrDeltaChain, ix.ShardSize, p.ShardSize)
	}
	ix.parent = p
	return nil
}

// Complete reports whether the index alone can serve every byte (v1,
// v2, v3 base — or a delta whose chain is linked through SetParent).
func (ix *ShardIndex) Complete() bool { return !ix.Delta || ix.parent != nil }

// scanner is a buffered sequential reader over an io.ReaderAt whose
// skip is a true seek: skipping a payload costs nothing, which is what
// keeps the index scan O(headers) instead of O(image bytes) — a
// bufio.Discard would stream every skipped byte through the buffer.
type scanner struct {
	src      io.ReaderAt
	size     int64
	pos      int64 // logical read position
	buf      []byte
	bufStart int64
	bufLen   int
}

// newScanner's buffer is small: between payload skips the scan reads
// only frame/entry headers, and every skip invalidates the buffer — a
// large buffer would re-read shard-sized payload prefixes for nothing.
func newScanner(src io.ReaderAt, size int64) *scanner {
	return &scanner{src: src, size: size, buf: make([]byte, 8<<10), bufStart: -1}
}

func (sc *scanner) Read(p []byte) (int, error) {
	if sc.pos >= sc.size {
		return 0, io.EOF
	}
	if sc.pos < sc.bufStart || sc.pos >= sc.bufStart+int64(sc.bufLen) {
		n := int64(len(sc.buf))
		if rem := sc.size - sc.pos; rem < n {
			n = rem
		}
		m, err := sc.src.ReadAt(sc.buf[:n], sc.pos)
		if m == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		sc.bufStart, sc.bufLen = sc.pos, m
	}
	o := int(sc.pos - sc.bufStart)
	k := copy(p, sc.buf[o:sc.bufLen])
	sc.pos += int64(k)
	return k, nil
}

// skip seeks past n payload bytes without reading them.
func (sc *scanner) skip(n int64) error {
	if sc.pos+n > sc.size {
		return io.ErrUnexpectedEOF
	}
	sc.pos += n
	return nil
}

// off is the current logical position (the next payload's file offset).
func (sc *scanner) offset() int64 { return sc.pos }

func (sc *scanner) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(sc, b[:]); err != nil {
		return 0, err
	}
	return le32(b[:]), nil
}

func (sc *scanner) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(sc, b[:]); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

func (sc *scanner) byte1() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(sc, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

// OpenShardIndex scans the image headers in src and builds the
// random-access shard index without decoding any payload (except the
// v1 whole-body-gzip fallback, which has no random access).
func OpenShardIndex(src io.ReaderAt, size int64) (*ShardIndex, error) {
	sc := newScanner(src, size)
	var magic [8]byte
	if _, err := io.ReadFull(sc, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadImage, err)
	}
	switch magic {
	case imageMagicV1:
		return scanIndexV1(src, size, sc)
	case imageMagicV2:
		return scanIndexV2(src, sc)
	case imageMagicV3:
		return scanIndexV3(src, sc)
	default:
		if string(magic[:7]) == string(imageMagicV1[:7]) {
			return nil, fmt.Errorf("%w: %q", ErrUnsupportedVersion, magic[:])
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
}

// scanRegionTable parses the shared region header table.
func scanRegionTable(sc *scanner) ([]RegionData, uint64, error) {
	n, err := sc.u32()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	if n > maxItemCount {
		return nil, 0, fmt.Errorf("%w: region count %d", ErrBadImage, n)
	}
	var total uint64
	regions := make([]RegionData, 0, n)
	for i := uint32(0); i < n; i++ {
		var rd RegionData
		if rd.Start, err = sc.u64(); err != nil {
			return nil, 0, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		if rd.Len, err = sc.u64(); err != nil {
			return nil, 0, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		if rd.Len > maxItemBytes {
			return nil, 0, fmt.Errorf("%w: region %d len %d", ErrBadImage, i, rd.Len)
		}
		prot, err := sc.byte1()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot)
		if rd.Label, err = readString(sc); err != nil {
			return nil, 0, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		total += rd.Len
		regions = append(regions, rd)
	}
	return regions, total, nil
}

func scanIndexV2(src io.ReaderAt, sc *scanner) (*ShardIndex, error) {
	var flags [4]byte
	if _, err := io.ReadFull(sc, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	ix := &ShardIndex{Version: 2, Gzip: flags[0]&1 != 0, src: src}
	regions, totalRaw, err := scanRegionTable(sc)
	if err != nil {
		return nil, err
	}
	ix.Regions = regions
	nSec, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	if nSec > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSec)
	}
	for i := uint32(0); i < nSec; i++ {
		name, err := readString(sc)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		n, err := sc.u64()
		if err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		if n > maxItemBytes {
			return nil, fmt.Errorf("%w: section %d len %d", ErrBadImage, i, n)
		}
		ix.Secs = append(ix.Secs, SectionHdr{Name: name, Size: n})
		totalRaw += n
	}
	if totalRaw > maxTotalBytes {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadImage, totalRaw)
	}
	shard, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: shard size: %v", ErrBadImage, err)
	}
	if shard == 0 || shard > maxFrameBytes {
		// v2 calls the field informational; lazy indexing only keeps it
		// for diagnostics, so a missing value falls back to the default.
		shard = DefaultShardSize
	}
	ix.ShardSize = int(shard)
	ix.buildSpans()

	// Frame walk: map each frame back to its span through the layout.
	var consumed uint64
	for consumed < totalRaw {
		var hdr [8]byte
		if _, err := io.ReadFull(sc, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: frame header at %d: %v", ErrBadImage, consumed, err)
		}
		rawLen := le32(hdr[0:])
		encLen := le32(hdr[4:])
		if rawLen == 0 || uint64(rawLen) > maxFrameBytes || encLen == 0 || uint64(encLen) > maxFrameBytes {
			return nil, fmt.Errorf("%w: frame %d/%d bytes at %d", ErrBadImage, rawLen, encLen, consumed)
		}
		if consumed+uint64(rawLen) > totalRaw {
			return nil, fmt.Errorf("%w: frame overruns payload at %d", ErrBadImage, consumed)
		}
		if !ix.Gzip && encLen != rawLen {
			return nil, fmt.Errorf("%w: stored frame %d != %d at %d", ErrBadImage, encLen, rawLen, consumed)
		}
		span, spanOff, ok := ix.spanAt(consumed)
		if !ok || spanOff+uint64(rawLen) > ix.spans[span].size {
			// The format permits span-straddling frames but the writer
			// never emits them; random access needs the writer layout.
			return nil, fmt.Errorf("%w: frame at %d straddles spans", ErrLazyUnsupported, consumed)
		}
		ix.addShard(ixShard{span: span, off: spanOff, rawLen: rawLen, encLen: encLen,
			fileOff: sc.offset(), gz: ix.Gzip})
		if err := sc.skip(int64(encLen)); err != nil {
			return nil, fmt.Errorf("%w: frame data at %d: %v", ErrBadImage, consumed, err)
		}
		consumed += uint64(rawLen)
	}
	return ix, nil
}

func scanIndexV3(src io.ReaderAt, sc *scanner) (*ShardIndex, error) {
	var flags [4]byte
	if _, err := io.ReadFull(sc, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	ix := &ShardIndex{Version: 3, Gzip: flags[0]&1 != 0, Delta: flags[0]&2 != 0, src: src}
	var err error
	if ix.Parent, err = readString(sc); err != nil {
		return nil, fmt.Errorf("%w: parent: %v", ErrBadImage, err)
	}
	depth, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: depth: %v", ErrBadImage, err)
	}
	if depth > maxChainDepth {
		return nil, fmt.Errorf("%w: delta depth %d", ErrBadImage, depth)
	}
	if ix.Delta && ix.Parent == "" {
		return nil, fmt.Errorf("%w: delta image names no parent", ErrBadImage)
	}
	ix.Depth = int(depth)
	if ix.id, err = sc.u64(); err != nil {
		return nil, fmt.Errorf("%w: image id: %v", ErrBadImage, err)
	}
	if ix.parentID, err = sc.u64(); err != nil {
		return nil, fmt.Errorf("%w: parent id: %v", ErrBadImage, err)
	}
	regions, totalRaw, err := scanRegionTable(sc)
	if err != nil {
		return nil, err
	}
	ix.Regions = regions
	nSec, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	if nSec > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSec)
	}
	for i := uint32(0); i < nSec; i++ {
		name, err := readString(sc)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		n, err := sc.u64()
		if err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		if n > maxItemBytes {
			return nil, fmt.Errorf("%w: section %d len %d", ErrBadImage, i, n)
		}
		sf, err := sc.byte1()
		if err != nil {
			return nil, fmt.Errorf("%w: section %d flags: %v", ErrBadImage, i, err)
		}
		ix.Secs = append(ix.Secs, SectionHdr{Name: name, Size: n, Opaque: sf&1 != 0})
		totalRaw += n
	}
	if totalRaw > maxTotalBytes {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadImage, totalRaw)
	}
	shard, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: shard size: %v", ErrBadImage, err)
	}
	if shard == 0 || shard > maxFrameBytes {
		return nil, fmt.Errorf("%w: shard size %d", ErrBadImage, shard)
	}
	ix.ShardSize = int(shard)
	shardCount, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: shard count: %v", ErrBadImage, err)
	}
	if shardCount > maxItemCount {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadImage, shardCount)
	}
	ix.buildSpans()

	var expected uint64 // base: next global offset (exact tiling)
	var prevEnd uint64  // delta: strictly ascending
	for i := uint32(0); i < shardCount; i++ {
		var hdr [shardHdrV3]byte
		if _, err := io.ReadFull(sc, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: shard %d header: %v", ErrBadImage, i, err)
		}
		sp := le32(hdr[0:])
		so := le64(hdr[4:])
		rawLen := le32(hdr[12:])
		encLen := le32(hdr[16:])
		hash := le64(hdr[20:])
		if int(sp) >= len(ix.spans) || rawLen == 0 || uint64(rawLen) > uint64(ix.ShardSize) ||
			encLen == 0 || encLen > maxFrameBytes ||
			so+uint64(rawLen) < so || so+uint64(rawLen) > ix.spans[sp].size {
			return nil, fmt.Errorf("%w: shard %d (span %d, off %d, %d/%d bytes)", ErrBadImage, i, sp, so, rawLen, encLen)
		}
		if !ix.Gzip && encLen != rawLen {
			return nil, fmt.Errorf("%w: stored shard %d != %d", ErrBadImage, encLen, rawLen)
		}
		global := ix.spanBase(int(sp)) + so
		if !ix.Delta {
			if global != expected {
				return nil, fmt.Errorf("%w: shard %d at raw offset %d, want %d", ErrBadImage, i, global, expected)
			}
			expected += uint64(rawLen)
		} else {
			if i > 0 && global < prevEnd {
				return nil, fmt.Errorf("%w: shard %d overlaps or regresses at raw offset %d", ErrBadImage, i, global)
			}
			prevEnd = global + uint64(rawLen)
		}
		ix.addShard(ixShard{span: int(sp), off: so, rawLen: rawLen, encLen: encLen,
			fileOff: sc.offset(), hash: hash, hashed: true, gz: ix.Gzip})
		if err := sc.skip(int64(encLen)); err != nil {
			return nil, fmt.Errorf("%w: shard %d data: %v", ErrBadImage, i, err)
		}
	}
	if !ix.Delta && expected != totalRaw {
		return nil, fmt.Errorf("%w: base image covers %d of %d payload bytes", ErrBadImage, expected, totalRaw)
	}
	return ix, nil
}

// scanIndexV1 indexes the legacy serial format. Stored (uncompressed)
// payloads are random-access at byte granularity, so a synthetic
// DefaultShardSize grid is laid over each region/section payload. The
// whole-body-gzip variant decodes once up front and serves shards from
// memory.
func scanIndexV1(src io.ReaderAt, size int64, sc *scanner) (*ShardIndex, error) {
	var flags [4]byte
	if _, err := io.ReadFull(sc, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	if flags[0]&1 != 0 {
		// One gzip stream over the whole body: no random access. Decode
		// eagerly through the existing reader and index the in-memory
		// payloads.
		img, err := ReadImage(io.NewSectionReader(src, 0, size))
		if err != nil {
			return nil, err
		}
		ix := &ShardIndex{Version: 1, Gzip: true}
		for _, rd := range img.Regions {
			hdr := rd
			hdr.Data = nil
			ix.Regions = append(ix.Regions, hdr)
		}
		for _, name := range img.Sections.Names() {
			data, _ := img.Sections.Get(name)
			ix.Secs = append(ix.Secs, SectionHdr{Name: name, Size: uint64(len(data)), Opaque: img.Sections.Opaque(name)})
		}
		ix.ShardSize = DefaultShardSize
		ix.buildSpans()
		addMem := func(span int, data []byte) {
			for off := 0; off < len(data); off += DefaultShardSize {
				n := len(data) - off
				if n > DefaultShardSize {
					n = DefaultShardSize
				}
				ix.addShard(ixShard{span: span, off: uint64(off), rawLen: uint32(n), encLen: uint32(n),
					mem: data[off : off+n]})
			}
		}
		for i, rd := range img.Regions {
			addMem(i, rd.Data)
		}
		for j, name := range img.Sections.Names() {
			data, _ := img.Sections.Get(name)
			addMem(len(img.Regions)+j, data)
		}
		return ix, nil
	}

	ix := &ShardIndex{Version: 1, src: src}
	nReg, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	if nReg > maxItemCount {
		return nil, fmt.Errorf("%w: region count %d", ErrBadImage, nReg)
	}
	type payload struct {
		off int64
		n   uint64
	}
	var pays []payload
	for i := uint32(0); i < nReg; i++ {
		var rd RegionData
		if rd.Start, err = sc.u64(); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		if rd.Len, err = sc.u64(); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		if rd.Len > maxItemBytes {
			return nil, fmt.Errorf("%w: region %d len %d", ErrBadImage, i, rd.Len)
		}
		prot, err := sc.byte1()
		if err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot)
		if rd.Label, err = readString(sc); err != nil {
			return nil, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		pays = append(pays, payload{off: sc.offset(), n: rd.Len})
		if err := sc.skip(int64(rd.Len)); err != nil {
			return nil, fmt.Errorf("%w: region %d data: %v", ErrBadImage, i, err)
		}
		ix.Regions = append(ix.Regions, rd)
	}
	nSec, err := sc.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	if nSec > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSec)
	}
	for i := uint32(0); i < nSec; i++ {
		name, err := readString(sc)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		n, err := sc.u64()
		if err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		if n > maxItemBytes {
			return nil, fmt.Errorf("%w: section %d len %d", ErrBadImage, i, n)
		}
		pays = append(pays, payload{off: sc.offset(), n: n})
		if err := sc.skip(int64(n)); err != nil {
			return nil, fmt.Errorf("%w: section %d data: %v", ErrBadImage, i, err)
		}
		ix.Secs = append(ix.Secs, SectionHdr{Name: name, Size: n})
	}
	ix.ShardSize = DefaultShardSize
	ix.buildSpans()
	for span, p := range pays {
		for off := uint64(0); off < p.n; off += DefaultShardSize {
			n := p.n - off
			if n > DefaultShardSize {
				n = DefaultShardSize
			}
			ix.addShard(ixShard{span: span, off: off, rawLen: uint32(n), encLen: uint32(n),
				fileOff: p.off + int64(off)})
		}
	}
	return ix, nil
}

// buildSpans lays out the span table from the parsed region/section
// headers.
func (ix *ShardIndex) buildSpans() {
	ix.spans = make([]ixSpan, 0, len(ix.Regions)+len(ix.Secs))
	for _, rd := range ix.Regions {
		ix.spans = append(ix.spans, ixSpan{size: rd.Len})
	}
	for _, sec := range ix.Secs {
		ix.spans = append(ix.spans, ixSpan{size: sec.Size})
	}
}

// spanBase returns the global raw offset of span i.
func (ix *ShardIndex) spanBase(i int) uint64 {
	var off uint64
	for k := 0; k < i; k++ {
		off += ix.spans[k].size
	}
	return off
}

// spanAt maps a global raw offset to (span, offset-within-span).
func (ix *ShardIndex) spanAt(global uint64) (int, uint64, bool) {
	var off uint64
	for i := range ix.spans {
		if global < off+ix.spans[i].size {
			return i, global - off, true
		}
		off += ix.spans[i].size
	}
	return 0, 0, false
}

func (ix *ShardIndex) addShard(sh ixShard) {
	idx := len(ix.shards)
	ix.shards = append(ix.shards, sh)
	ix.spans[sh.span].shards = append(ix.spans[sh.span].shards, idx)
}

// NumShards returns how many payload shards the image carries.
func (ix *ShardIndex) NumShards() int { return len(ix.shards) }

// sectionIndex returns the table index of the named section, or -1.
func (ix *ShardIndex) sectionIndex(name string) int {
	for i, sec := range ix.Secs {
		if sec.Name == name {
			return i
		}
	}
	return -1
}

// HasSection reports whether the image's section table names name.
func (ix *ShardIndex) HasSection(name string) bool { return ix.sectionIndex(name) >= 0 }

// readShard decodes shard i into dst (len(dst) == rawLen), reading the
// encoded bytes straight out of the backing source and verifying the
// content hash when the format carries one.
func (ix *ShardIndex) readShard(i int, dst []byte) error {
	sh := &ix.shards[i]
	if len(dst) != int(sh.rawLen) {
		return fmt.Errorf("dmtcp: readShard: dst %d != rawLen %d", len(dst), sh.rawLen)
	}
	switch {
	case sh.mem != nil:
		copy(dst, sh.mem)
	case !sh.gz:
		if _, err := ix.src.ReadAt(dst, sh.fileOff); err != nil {
			return fmt.Errorf("%w: truncated shard at %d: %v", ErrBadImage, sh.fileOff, err)
		}
	default:
		bp := defaultBudget.getShardBuf(int(sh.encLen))
		enc := (*bp)[:sh.encLen]
		if _, err := ix.src.ReadAt(enc, sh.fileOff); err != nil {
			defaultBudget.putShardBuf(bp)
			return fmt.Errorf("%w: truncated shard at %d: %v", ErrBadImage, sh.fileOff, err)
		}
		err := gunzipInto(dst, enc)
		defaultBudget.putShardBuf(bp)
		if err != nil {
			return fmt.Errorf("%w: shard at %d: %v", ErrBadImage, sh.fileOff, err)
		}
	}
	if sh.hashed && fnvSum64(dst) != sh.hash {
		return fmt.Errorf("%w: shard at %d: content hash mismatch", ErrCorruptImage, sh.fileOff)
	}
	return nil
}

// shardsCovering returns the indices of the span's shards overlapping
// [off, off+length) (ascending), plus the uncovered gaps.
func (ix *ShardIndex) shardsCovering(span int, off, length uint64) (idxs []int, gaps []addrspace.Span) {
	end := off + length
	list := ix.spans[span].shards
	// First shard whose end is beyond off.
	lo := sort.Search(len(list), func(i int) bool {
		sh := &ix.shards[list[i]]
		return sh.off+uint64(sh.rawLen) > off
	})
	at := off
	for _, k := range list[lo:] {
		sh := &ix.shards[k]
		if sh.off >= end {
			break
		}
		if sh.off > at {
			gaps = append(gaps, addrspace.Span{Off: at, Len: sh.off - at})
		}
		idxs = append(idxs, k)
		if e := sh.off + uint64(sh.rawLen); e > at {
			at = e
		}
	}
	if at < end {
		gaps = append(gaps, addrspace.Span{Off: at, Len: end - at})
	}
	return idxs, gaps
}

// SectionBytes materializes the named section completely, resolving
// gaps (clean shards of a delta) through the parent chain by name and
// offset — the lazy counterpart of ApplyDelta's section inheritance.
// Opaque sections are returned as carried by this image (they are
// always emitted in full); merging across a chain is the owner
// plugin's business.
func (ix *ShardIndex) SectionBytes(name string) ([]byte, error) {
	si := ix.sectionIndex(name)
	if si < 0 {
		return nil, fmt.Errorf("%w: image has no section %q", ErrBadImage, name)
	}
	out := make([]byte, ix.Secs[si].Size)
	if err := ix.readSectionRange(name, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// readSectionRange fills dst with section bytes [off, off+len(dst)),
// walking the parent chain for ranges this image does not carry.
func (ix *ShardIndex) readSectionRange(name string, off uint64, dst []byte) error {
	if len(dst) == 0 {
		return nil
	}
	si := ix.sectionIndex(name)
	if si < 0 {
		return fmt.Errorf("%w: image has no section %q", ErrBadImage, name)
	}
	sec := ix.Secs[si]
	if off+uint64(len(dst)) > sec.Size {
		return fmt.Errorf("%w: section %q range %d+%d beyond %d", ErrBadImage, name, off, len(dst), sec.Size)
	}
	span := len(ix.Regions) + si
	idxs, gaps := ix.shardsCovering(span, off, uint64(len(dst)))
	for _, k := range idxs {
		sh := &ix.shards[k]
		lo, hi := sh.off, sh.off+uint64(sh.rawLen)
		if lo < off {
			lo = off
		}
		if e := off + uint64(len(dst)); hi > e {
			hi = e
		}
		if lo >= hi {
			continue
		}
		if lo == sh.off && hi == sh.off+uint64(sh.rawLen) {
			// Whole shard wanted: decode straight into place.
			if err := ix.readShard(k, dst[lo-off:hi-off]); err != nil {
				return err
			}
			continue
		}
		bp := defaultBudget.getShardBuf(int(sh.rawLen))
		tmp := (*bp)[:sh.rawLen]
		err := ix.readShard(k, tmp)
		if err == nil {
			copy(dst[lo-off:hi-off], tmp[lo-sh.off:hi-sh.off])
		}
		defaultBudget.putShardBuf(bp)
		if err != nil {
			return err
		}
	}
	for _, g := range gaps {
		if ix.parent == nil {
			if ix.Delta {
				return fmt.Errorf("%w: section %q range %d+%d not in image and no parent linked", ErrDeltaChain, name, g.Off, g.Len)
			}
			// A self-contained image with a payload gap can only be a
			// zero-size tail; leave dst zeroed.
			continue
		}
		if err := ix.parent.readSectionRange(name, g.Off, dst[g.Off-off:g.Off-off+g.Len]); err != nil {
			return err
		}
	}
	return nil
}
