package dmtcp

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/addrspace"
)

// TestFreezeWriteFrozenMatchesBlocking: the frozen lifecycle with a
// plain (non-SnapshotPlugin) plugin — whose hooks then run in the pause
// window — produces byte-identical images to the blocking Checkpoint,
// for v1, v2, and a standalone v3 base, raw and gzip'd.
func TestFreezeWriteFrozenMatchesBlocking(t *testing.T) {
	for _, tc := range []struct {
		name    string
		version int
		gz      bool
	}{
		{"v1", 1, false},
		{"v2", 2, false},
		{"v2-gzip", 2, true},
		{"v3-base", 3, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() (*Engine, *addrspace.Space) {
				space, _ := buildSpace(t)
				e := NewEngine()
				e.ImageVersion = tc.version
				e.Gzip = tc.gz
				e.Register(&testPlugin{name: "p"})
				return e, space
			}
			eb, sb := mk()
			var blocking bytes.Buffer
			stB, err := eb.Checkpoint(context.Background(), &blocking, sb)
			if err != nil {
				t.Fatal(err)
			}
			if stB.PauseDuration != stB.Duration {
				t.Fatalf("blocking pause %v != duration %v", stB.PauseDuration, stB.Duration)
			}

			ef, sf := mk()
			fz, err := ef.FreezeCheckpoint(context.Background(), sf, tc.version == 3, nil, "")
			if err != nil {
				t.Fatal(err)
			}
			// Mutate after the freeze: the frozen image must not notice.
			regs := sf.RegionsIn(addrspace.HalfUpper)
			if err := sf.WriteAt(regs[0].Start, bytes.Repeat([]byte{0xEE}, int(regs[0].Len))); err != nil {
				t.Fatal(err)
			}
			var frozen bytes.Buffer
			stF, _, err := ef.WriteFrozen(context.Background(), &frozen, fz)
			fz.Release()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blocking.Bytes(), frozen.Bytes()) {
				t.Fatalf("frozen image differs from blocking (%d vs %d bytes)", blocking.Len(), frozen.Len())
			}
			if stF.Regions != stB.Regions || stF.RegionBytes != stB.RegionBytes {
				t.Fatalf("stats diverge: frozen %+v blocking %+v", stF, stB)
			}
			if sf.RetainedPages() != 0 {
				t.Fatal("CoW pages leaked after Release")
			}
		})
	}
}

// TestFreezeDeltaChainMatchesBlocking: a frozen delta against a frozen
// base equals the blocking CheckpointDelta chain byte for byte, and the
// returned DeltaState carries the same lineage.
func TestFreezeDeltaChainMatchesBlocking(t *testing.T) {
	mk := func() (*Engine, *addrspace.Space, uint64) {
		space, up := buildSpace(t)
		e := NewEngine()
		e.Register(&testPlugin{name: "p"})
		return e, space, up
	}
	eb, sb, upB := mk()
	var baseB, deltaB bytes.Buffer
	_, stateB, err := eb.CheckpointDelta(context.Background(), &baseB, sb, nil, "base")
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.WriteAt(upB, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	_, _, err = eb.CheckpointDelta(context.Background(), &deltaB, sb, stateB, "delta")
	if err != nil {
		t.Fatal(err)
	}

	ef, sf, upF := mk()
	var baseF, deltaF bytes.Buffer
	fz, err := ef.FreezeCheckpoint(context.Background(), sf, true, nil, "base")
	if err != nil {
		t.Fatal(err)
	}
	_, stateF, err := ef.WriteFrozen(context.Background(), &baseF, fz)
	fz.Release()
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.WriteAt(upF, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	fz, err = ef.FreezeCheckpoint(context.Background(), sf, true, stateF, "delta")
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := ef.WriteFrozen(context.Background(), &deltaF, fz)
	fz.Release()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Delta {
		t.Fatal("frozen second checkpoint should be a delta")
	}
	if !bytes.Equal(baseB.Bytes(), baseF.Bytes()) {
		t.Fatal("frozen base differs from blocking base")
	}
	if !bytes.Equal(deltaB.Bytes(), deltaF.Bytes()) {
		t.Fatal("frozen delta differs from blocking delta")
	}
	if stateF.Cut != stateB.Cut || stateF.Depth != stateB.Depth || stateF.ID != stateB.ID {
		t.Fatalf("lineage diverges: frozen %+v blocking %+v", stateF, stateB)
	}
}
