// Incremental checkpointing: the v3 ("CRACIMG3") image format.
//
// A v3 image is either a full *base* or a *delta* against a named
// parent image. Both carry the complete region and section header
// tables of the checkpointed state, followed by a set of payload
// shards, each addressed by (span, offset) — spans are the regions in
// address order, then the sections in insertion order — and stamped
// with an FNV-1a content hash. A base carries every shard; a delta
// carries only the dirty ones:
//
//   - region shards are dirty when the address space's page-granular
//     write-generation tracking (addrspace.Space.DirtySince) reports a
//     write after the previous checkpoint's epoch cut — clean shards
//     are never even read out of memory;
//   - section shards are dirty when their content hash differs from
//     the same shard of the previous checkpoint (the writer threads the
//     per-shard hash table forward through DeltaState), so append-only
//     sections like the replay log re-emit only their tail;
//   - sections marked opaque (SectionMap.MarkOpaque) are always
//     emitted in full: their owning plugin already delta-encodes the
//     bytes itself, and a registered SectionMerger resolves them at
//     materialization time.
//
// The shards still flow through the same worker pipeline as v2 — they
// compress and write in parallel, in deterministic order, so a v3 image
// is byte-identical for any worker count. Reading a delta back yields
// an unmaterialized Image; ApplyDelta / ResolveChain fold a base plus
// its deltas into the same complete Image that RestoreRegions consumes.
package dmtcp

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"repro/internal/addrspace"
	"repro/internal/par"
)

// shardHdrV3 is the fixed size of a v3 shard header:
// u32 span, u64 offset, u32 rawLen, u32 encLen, u64 hash.
const shardHdrV3 = 28

// maxChainDepth bounds how many parent links ResolveChain follows — far
// above any sane WithIncremental setting, it only exists to stop a
// corrupt or hostile lineage from walking forever.
const maxChainDepth = 512

// ErrDeltaChain reports an operation that needs a delta image's parent
// chain: restoring an unmaterialized delta, or resolving a chain whose
// parent is missing, cyclic, or deeper than maxChainDepth.
var ErrDeltaChain = errors.New("dmtcp: delta image requires its parent chain")

// DeltaState is the writer-side lineage state of an incremental
// checkpoint chain. The caller (a crac.Session) holds the state of the
// chain tip and threads it through CheckpointDelta; passing nil writes
// a fresh full base. The state must only be committed after the image
// has durably landed — an abandoned write must not advance the chain.
type DeltaState struct {
	// Name is the store name of the image this state describes; the next
	// delta records it as its parent.
	Name string
	// ID is the image's content-derived identity (see imageID); the
	// next delta records it so materialization can detect a parent
	// name rebound to different content.
	ID uint64
	// Depth is the image's distance from the chain's base (0 = base).
	Depth int
	// Cut is the address-space write epoch taken at this checkpoint;
	// the next delta emits region pages written after it.
	Cut uint64
	// ShardSize is the shard grid the chain was written with. A
	// different engine shard size breaks hash comparability, so
	// CheckpointDelta rotates to a new base when it changes.
	ShardSize int
	// Hashes holds the per-shard FNV-1a table of every section at this
	// checkpoint, keyed by section name.
	Hashes map[string][]uint64
	// Ancestry lists every image name in the chain, base first and
	// ending with Name. Callers use it to refuse (or rotate away from)
	// writing a new image under a name the chain still depends on —
	// overwriting an ancestor would silently destroy the lineage.
	Ancestry []string
}

// InChain reports whether name is one of the chain's image names.
func (s *DeltaState) InChain(name string) bool {
	for _, n := range s.Ancestry {
		if n == name {
			return true
		}
	}
	return false
}

// DeltaPlugin is the optional extension of Plugin for incremental
// checkpoints. When the engine writes a v3 image it calls
// PreCheckpointDelta instead of PreCheckpoint; since is the address
// space epoch cut of the parent checkpoint (0 for a base — everything
// is dirty), letting the plugin skip or delta-encode state it can prove
// unchanged.
type DeltaPlugin interface {
	Plugin
	PreCheckpointDelta(ctx context.Context, sections *SectionMap, since uint64) error
}

// SectionMerger materializes one opaque section of a delta image:
// parent is the section's bytes in the materialized parent chain (nil
// if absent), delta the bytes carried by the delta image; the result is
// the section's complete content.
type SectionMerger func(parent, delta []byte) ([]byte, error)

// deltaSection is one section-table entry of a v3 image.
type deltaSection struct {
	name   string
	size   uint64
	opaque bool
}

// deltaShard is one decoded, not-yet-applied shard of a v3 delta.
type deltaShard struct {
	span int
	off  uint64
	hash uint64
	data []byte
}

// DeltaInfo describes the v3 lineage of an Image.
type DeltaInfo struct {
	// Parent names the image this delta applies on top of ("" for a
	// base).
	Parent string
	// Depth is the image's distance from the chain's base.
	Depth int
	// ShardsTotal / RawTotal cover the full span layout; ShardsEmitted /
	// RawEmitted the shards the image actually carries.
	ShardsTotal   int
	ShardsEmitted int
	RawTotal      uint64
	RawEmitted    uint64
	// Materialized reports that the image carries its complete payload:
	// true for a base, and for a delta after ApplyDelta/ResolveChain.
	Materialized bool

	id        uint64 // content-derived image identity (0: unknown)
	parentID  uint64 // recorded identity of the parent (0: none)
	shardSize int
	secs      []deltaSection
	shards    []deltaShard // nil once materialized
}

// ID returns the image's content-derived identity (0 when unknown —
// e.g. a materialized image assembled in memory).
func (d *DeltaInfo) ID() uint64 { return d.id }

// ParentID returns the recorded identity of the parent image (0 for a
// base). Chain verification matches it against the parent's ID to
// catch a swapped or regenerated parent whose name still matches.
func (d *DeltaInfo) ParentID() uint64 { return d.parentID }

// DirtyRatio is RawEmitted over RawTotal (1 for an empty layout).
func (d *DeltaInfo) DirtyRatio() float64 {
	if d.RawTotal == 0 {
		return 1
	}
	return float64(d.RawEmitted) / float64(d.RawTotal)
}

// SectionHdr is one entry of a v3 image's section table.
type SectionHdr struct {
	Name   string
	Size   uint64
	Opaque bool
}

// SectionLayout returns the image's section table — available even for
// an unmaterialized delta, whose Sections map is still empty.
func (d *DeltaInfo) SectionLayout() []SectionHdr {
	out := make([]SectionHdr, len(d.secs))
	for i, s := range d.secs {
		out[i] = SectionHdr{Name: s.name, Size: s.size, Opaque: s.opaque}
	}
	return out
}

// fnvSum64 is the shard content hash (FNV-1a 64).
func fnvSum64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// hashSections computes the per-shard FNV-1a table of every section,
// fanning the shard hashing out across workers.
func hashSections(sections *SectionMap, names []string, shard, workers int) map[string][]uint64 {
	out := make(map[string][]uint64, len(names))
	type hashJob struct {
		data []byte
		dst  *uint64
	}
	var jobs []hashJob
	for _, name := range names {
		data, _ := sections.Get(name)
		hs := make([]uint64, (len(data)+shard-1)/shard)
		for i := range hs {
			lo := i * shard
			hi := lo + shard
			if hi > len(data) {
				hi = len(data)
			}
			jobs = append(jobs, hashJob{data: data[lo:hi], dst: &hs[i]})
		}
		out[name] = hs
	}
	par.ForErrN(workers, len(jobs), func(i int) error {
		*jobs[i].dst = fnvSum64(jobs[i].data)
		return nil
	})
	return out
}

// imageID derives a deterministic identity for a v3 image from its
// lineage and section content hashes. With the CRAC plugin registered
// the replay log section grows on every checkpoint, so two distinct
// checkpoints of one session never share an ID; equal IDs imply equal
// lineage and section state, where confusion is harmless.
func imageID(parentID uint64, depth int, cut uint64, names []string, secHashes map[string][]uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range []uint64{parentID, uint64(depth), cut} {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, name := range names {
		io.WriteString(h, name)
		for _, sh := range secHashes[name] {
			binary.LittleEndian.PutUint64(b[:], sh)
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// CheckpointDelta writes a v3 image: a full base when prev is nil, else
// a delta against the checkpoint prev describes. selfName is the store
// name the image is being written under (recorded as the parent of the
// next delta; "" for standalone images). The returned DeltaState
// describes the new image; the caller must commit it only if the write
// durably succeeded.
//
// The hook lifecycle matches Checkpoint, except plugins implementing
// DeltaPlugin receive PreCheckpointDelta with the parent's epoch cut.
func (e *Engine) CheckpointDelta(ctx context.Context, w io.Writer, space *addrspace.Space, prev *DeltaState, selfName string) (Stats, *DeltaState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// A shard-size change breaks the chain's shard grid (hashes would
	// compare different byte ranges), and a chain at the reader's depth
	// cap could never be restored: both rotate to a fresh base.
	if prev != nil && (prev.ShardSize != e.shardSize() || prev.Depth+1 >= maxChainDepth) {
		prev = nil
	}
	start := time.Now()
	// The cut is taken before the drain hooks, mirroring the plugin's
	// UVM cut: any write that races the drain or the image write — even
	// one the payload happens to capture — is stamped above the cut and
	// re-emitted by the next delta. Taking it later would open a window
	// (between a plugin's memory reads and the cut) whose writes are
	// stamped at the cut value, reported clean next time, and lost.
	cut := space.CutEpoch()
	sections := NewSectionMap()
	since := uint64(0)
	if prev != nil {
		since = prev.Cut
	}
	for _, p := range e.plugins {
		if err := ctx.Err(); err != nil {
			return Stats{}, nil, err
		}
		var err error
		if dp, ok := p.(DeltaPlugin); ok {
			err = dp.PreCheckpointDelta(ctx, sections, since)
		} else {
			err = p.PreCheckpoint(ctx, sections)
		}
		if err != nil {
			return Stats{}, nil, fmt.Errorf("dmtcp: plugin %s precheckpoint: %w", p.Name(), err)
		}
	}
	hookDur := time.Since(start)

	regions := space.RegionsIn(addrspace.HalfUpper)
	st := Stats{Regions: len(regions), Delta: prev != nil}
	if prev != nil {
		st.DeltaDepth = prev.Depth + 1
	}

	writeStart := time.Now()
	// v3 compresses per shard, never whole-body, so the integrity
	// trailer applies unconditionally.
	tw := newTrailerWriter(w)
	bw := bufio.NewWriterSize(tw, 256<<10)
	state, err := e.writeImageV3(ctx, bw, space, regions, sections, prev, selfName, cut, since, &st)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tw.Finish()
	}
	st.WriteDuration = time.Since(writeStart)
	if err != nil {
		return st, nil, err
	}

	resumeStart := time.Now()
	for i := len(e.plugins) - 1; i >= 0; i-- {
		if err := e.plugins[i].Resume(); err != nil {
			return st, nil, fmt.Errorf("dmtcp: plugin %s resume: %w", e.plugins[i].Name(), err)
		}
	}
	st.HookDuration = hookDur + time.Since(resumeStart)
	st.Duration = time.Since(start)
	// A blocking checkpoint stops the world for its whole duration.
	st.PauseDuration = st.Duration
	return st, state, nil
}

// writeImageV3 emits the v3 header tables and the emitted shard set
// through the shared worker pipeline.
func (e *Engine) writeImageV3(ctx context.Context, w io.Writer, view addrspace.View, regions []addrspace.RegionInfo, sections *SectionMap, prev *DeltaState, selfName string, cut, since uint64, st *Stats) (*DeltaState, error) {
	delta := prev != nil
	parent := ""
	depth := 0
	var parentID uint64
	if delta {
		parent = prev.Name
		depth = prev.Depth + 1
		parentID = prev.ID
	}
	shard := e.shardSize()
	names := sections.Names()
	// Hash every section shard (in parallel) before the header goes
	// out: the hashes decide which section shards a delta emits, stamp
	// the emitted frames, feed the image's identity, and become the
	// table the next delta compares against.
	secHashes := hashSections(sections, names, shard, e.Workers)
	// The image identity is derived from lineage and content, not
	// randomness, so images stay byte-deterministic: two images collide
	// only when their lineage and section state (including the
	// ever-growing call log) are identical — in which case confusing
	// them is harmless. ApplyDelta verifies a delta's recorded parent
	// identity against the image it is applied to, so a parent name
	// overwritten with different content fails the restore instead of
	// silently mixing states.
	selfID := imageID(parentID, depth, cut, names, secHashes)

	if _, err := w.Write(imageMagicV3[:]); err != nil {
		return nil, err
	}
	var flags [4]byte
	if e.Gzip {
		flags[0] |= 1
	}
	if delta {
		flags[0] |= 2
	}
	if _, err := w.Write(flags[:]); err != nil {
		return nil, err
	}
	if err := writeString(w, parent); err != nil {
		return nil, err
	}
	var u32 [4]byte
	var u64b [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(depth))
	if _, err := w.Write(u32[:]); err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(u64b[:], selfID)
	if _, err := w.Write(u64b[:]); err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(u64b[:], parentID)
	if _, err := w.Write(u64b[:]); err != nil {
		return nil, err
	}

	// Header tables, exactly as in v2 (sections additionally carry an
	// opaque flag), so the reader can lay out every destination before
	// the first shard arrives.
	binary.LittleEndian.PutUint32(u32[:], uint32(len(regions)))
	if _, err := w.Write(u32[:]); err != nil {
		return nil, err
	}
	for _, ri := range regions {
		binary.LittleEndian.PutUint64(u64b[:], ri.Start)
		if _, err := w.Write(u64b[:]); err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(u64b[:], ri.Len)
		if _, err := w.Write(u64b[:]); err != nil {
			return nil, err
		}
		if _, err := w.Write([]byte{byte(ri.Prot)}); err != nil {
			return nil, err
		}
		if err := writeString(w, ri.Label); err != nil {
			return nil, err
		}
		st.RegionBytes += ri.Len
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(names)))
	if _, err := w.Write(u32[:]); err != nil {
		return nil, err
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		if err := writeString(w, name); err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(u64b[:], uint64(len(data)))
		if _, err := w.Write(u64b[:]); err != nil {
			return nil, err
		}
		var sf byte
		if sections.Opaque(name) {
			sf |= 1
		}
		if _, err := w.Write([]byte{sf}); err != nil {
			return nil, err
		}
		st.SectionBytes += uint64(len(data))
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(shard))
	if _, err := w.Write(u32[:]); err != nil {
		return nil, err
	}

	// Region dirty spans since the parent's cut (page-granular, merged).
	var dirtyByStart map[uint64][]addrspace.Span
	if delta {
		dirtyByStart = make(map[uint64][]addrspace.Span)
		for _, rd := range view.DirtySince(addrspace.HalfUpper, since) {
			dirtyByStart[rd.Start] = rd.Spans
		}
	}
	overlaps := func(spans []addrspace.Span, off, n uint64) bool {
		idx := sort.Search(len(spans), func(i int) bool {
			return spans[i].Off+spans[i].Len > off
		})
		return idx < len(spans) && spans[idx].Off < off+n
	}

	// Shard plan: all spans in layout order, emitting a deterministic
	// dirty subset (the whole grid for a base).
	var jobs []shardJob
	spanIdx := uint32(0)
	for _, ri := range regions {
		spans := dirtyByStart[ri.Start] // nil for a base: emit all
		for off := uint64(0); off < ri.Len; off += uint64(shard) {
			n := ri.Len - off
			if n > uint64(shard) {
				n = uint64(shard)
			}
			st.ShardsTotal++
			st.PayloadTotal += n
			if delta && !overlaps(spans, off, n) {
				continue
			}
			jobs = append(jobs, shardJob{addr: ri.Start + off, rawLen: int(n),
				v3: true, spanIdx: spanIdx, spanOff: off, done: make(chan struct{})})
			st.PayloadWritten += n
		}
		spanIdx++
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		hs := secHashes[name]
		var prevHs []uint64
		if delta {
			prevHs = prev.Hashes[name]
		}
		opaque := sections.Opaque(name)
		for si, off := 0, 0; off < len(data); si, off = si+1, off+shard {
			n := len(data) - off
			if n > shard {
				n = shard
			}
			st.ShardsTotal++
			st.PayloadTotal += uint64(n)
			if delta && !opaque && si < len(prevHs) && prevHs[si] == hs[si] {
				continue
			}
			jobs = append(jobs, shardJob{src: data[off : off+n], rawLen: n,
				v3: true, spanIdx: spanIdx, spanOff: uint64(off),
				hash: hs[si], hashed: true, done: make(chan struct{})})
			st.PayloadWritten += uint64(n)
		}
		spanIdx++
	}
	st.ShardsWritten = len(jobs)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(jobs)))
	if _, err := w.Write(u32[:]); err != nil {
		return nil, err
	}
	if err := e.runWritePipeline(ctx, w, view, jobs); err != nil {
		return nil, err
	}
	ancestry := []string{selfName}
	if prev != nil {
		ancestry = append(append([]string(nil), prev.Ancestry...), selfName)
	}
	return &DeltaState{
		Name:      selfName,
		ID:        selfID,
		Depth:     depth,
		Cut:       cut,
		ShardSize: shard,
		Hashes:    secHashes,
		Ancestry:  ancestry,
	}, nil
}

// readImageV3 parses a v3 image. A base materializes immediately; a
// delta parses its shards and waits for ApplyDelta/ResolveChain.
func readImageV3(r io.Reader) (*Image, error) {
	var flags [4]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return nil, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
	}
	img := &Image{Version: 3, Gzip: flags[0]&1 != 0, Sections: NewSectionMap()}
	delta := flags[0]&2 != 0
	parent, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("%w: parent: %v", ErrBadImage, err)
	}
	var u32 [4]byte
	var u64b [8]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: depth: %v", ErrBadImage, err)
	}
	depth := binary.LittleEndian.Uint32(u32[:])
	if depth > maxChainDepth {
		return nil, fmt.Errorf("%w: delta depth %d", ErrBadImage, depth)
	}
	if delta && parent == "" {
		return nil, fmt.Errorf("%w: delta image names no parent", ErrBadImage)
	}
	if _, err := io.ReadFull(r, u64b[:]); err != nil {
		return nil, fmt.Errorf("%w: image id: %v", ErrBadImage, err)
	}
	selfID := binary.LittleEndian.Uint64(u64b[:])
	if _, err := io.ReadFull(r, u64b[:]); err != nil {
		return nil, fmt.Errorf("%w: parent id: %v", ErrBadImage, err)
	}
	parentID := binary.LittleEndian.Uint64(u64b[:])

	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: region count: %v", ErrBadImage, err)
	}
	nRegions := binary.LittleEndian.Uint32(u32[:])
	if nRegions > maxItemCount {
		return nil, fmt.Errorf("%w: region count %d", ErrBadImage, nRegions)
	}
	var totalRaw uint64
	for i := uint32(0); i < nRegions; i++ {
		var rd RegionData
		if _, err := io.ReadFull(r, u64b[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Start = binary.LittleEndian.Uint64(u64b[:])
		if _, err := io.ReadFull(r, u64b[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Len = binary.LittleEndian.Uint64(u64b[:])
		if rd.Len > maxItemBytes {
			return nil, fmt.Errorf("%w: region %d len %d", ErrBadImage, i, rd.Len)
		}
		var prot [1]byte
		if _, err := io.ReadFull(r, prot[:]); err != nil {
			return nil, fmt.Errorf("%w: region %d: %v", ErrBadImage, i, err)
		}
		rd.Prot = addrspace.Prot(prot[0])
		label, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: region %d label: %v", ErrBadImage, i, err)
		}
		rd.Label = label
		totalRaw += rd.Len
		img.Regions = append(img.Regions, rd)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: section count: %v", ErrBadImage, err)
	}
	nSections := binary.LittleEndian.Uint32(u32[:])
	if nSections > maxItemCount {
		return nil, fmt.Errorf("%w: section count %d", ErrBadImage, nSections)
	}
	secs := make([]deltaSection, 0, nSections)
	for i := uint32(0); i < nSections; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrBadImage, i, err)
		}
		if _, err := io.ReadFull(r, u64b[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d size: %v", ErrBadImage, i, err)
		}
		n := binary.LittleEndian.Uint64(u64b[:])
		if n > maxItemBytes {
			return nil, fmt.Errorf("%w: section %d len %d", ErrBadImage, i, n)
		}
		var sf [1]byte
		if _, err := io.ReadFull(r, sf[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d flags: %v", ErrBadImage, i, err)
		}
		secs = append(secs, deltaSection{name: name, size: n, opaque: sf[0]&1 != 0})
		totalRaw += n
	}
	if totalRaw > maxTotalBytes {
		return nil, fmt.Errorf("%w: payload too large (%d bytes)", ErrBadImage, totalRaw)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: shard size: %v", ErrBadImage, err)
	}
	shardSize := binary.LittleEndian.Uint32(u32[:])
	if shardSize == 0 || shardSize > maxFrameBytes {
		return nil, fmt.Errorf("%w: shard size %d", ErrBadImage, shardSize)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: shard count: %v", ErrBadImage, err)
	}
	shardCount := binary.LittleEndian.Uint32(u32[:])
	if shardCount > maxItemCount {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadImage, shardCount)
	}

	// Span layout: regions in table order, then sections.
	type span struct {
		size uint64
		base uint64 // global raw offset
		dst  *[]byte
	}
	secData := make([][]byte, len(secs))
	spans := make([]span, 0, len(img.Regions)+len(secs))
	var off uint64
	shardsTotal := 0
	for i := range img.Regions {
		spans = append(spans, span{size: img.Regions[i].Len, base: off, dst: &img.Regions[i].Data})
		off += img.Regions[i].Len
		shardsTotal += int((img.Regions[i].Len + uint64(shardSize) - 1) / uint64(shardSize))
	}
	for i := range secs {
		spans = append(spans, span{size: secs[i].size, base: off, dst: &secData[i]})
		off += secs[i].size
		shardsTotal += int((secs[i].size + uint64(shardSize) - 1) / uint64(shardSize))
	}

	di := &DeltaInfo{
		Parent: parent, Depth: int(depth),
		ShardsTotal: shardsTotal, ShardsEmitted: int(shardCount),
		RawTotal: totalRaw,
		id:       selfID, parentID: parentID,
		shardSize: int(shardSize), secs: secs,
	}
	img.Delta = di

	// Shard records. A base must tile the whole layout exactly (the
	// writer emits every shard, in span order); a delta's shards must be
	// strictly ascending and non-overlapping.
	type pending struct {
		span   int
		off    uint64
		rawLen int
		hash   uint64
		enc    []byte // compressed payload, or nil when already in dst
		dst    []byte // destination slice (base: span memory; delta: own buffer)
	}
	frames := make([]pending, 0, shardCount)
	var expected uint64 // base: next global offset
	var prevEnd uint64  // delta: end of the previous shard's global range
	for i := uint32(0); i < shardCount; i++ {
		var hdr [shardHdrV3]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("%w: shard %d header: %v", ErrBadImage, i, err)
		}
		sp := binary.LittleEndian.Uint32(hdr[0:])
		so := binary.LittleEndian.Uint64(hdr[4:])
		rawLen := binary.LittleEndian.Uint32(hdr[12:])
		encLen := binary.LittleEndian.Uint32(hdr[16:])
		hash := binary.LittleEndian.Uint64(hdr[20:])
		if int(sp) >= len(spans) || rawLen == 0 || uint64(rawLen) > uint64(shardSize) ||
			encLen == 0 || encLen > maxFrameBytes ||
			so+uint64(rawLen) < so || so+uint64(rawLen) > spans[sp].size {
			return nil, fmt.Errorf("%w: shard %d (span %d, off %d, %d/%d bytes)", ErrBadImage, i, sp, so, rawLen, encLen)
		}
		global := spans[sp].base + so
		if !delta {
			if global != expected {
				return nil, fmt.Errorf("%w: shard %d at raw offset %d, want %d", ErrBadImage, i, global, expected)
			}
			expected += uint64(rawLen)
		} else {
			if i > 0 && global < prevEnd {
				return nil, fmt.Errorf("%w: shard %d overlaps or regresses at raw offset %d", ErrBadImage, i, global)
			}
			prevEnd = global + uint64(rawLen)
		}
		f := pending{span: int(sp), off: so, rawLen: int(rawLen), hash: hash}
		if !delta {
			if *spans[sp].dst == nil {
				*spans[sp].dst = make([]byte, spans[sp].size)
			}
			f.dst = (*spans[sp].dst)[so : so+uint64(rawLen)]
		} else {
			f.dst = make([]byte, rawLen)
		}
		if !img.Gzip {
			if encLen != rawLen {
				return nil, fmt.Errorf("%w: stored shard %d != %d", ErrBadImage, encLen, rawLen)
			}
			if _, err := io.ReadFull(r, f.dst); err != nil {
				return nil, fmt.Errorf("%w: shard %d data: %v", ErrBadImage, i, err)
			}
		} else {
			enc, err := readExact(r, uint64(encLen))
			if err != nil {
				return nil, fmt.Errorf("%w: shard %d data: %v", ErrBadImage, i, err)
			}
			f.enc = enc
		}
		di.RawEmitted += uint64(rawLen)
		frames = append(frames, f)
	}
	if !delta && expected != totalRaw {
		return nil, fmt.Errorf("%w: base image covers %d of %d payload bytes", ErrBadImage, expected, totalRaw)
	}

	// Inflate (each shard is an independent gzip member) and verify the
	// content hashes, in parallel across shards.
	if err := par.ForErr(len(frames), func(i int) error {
		f := &frames[i]
		if f.enc != nil {
			if err := gunzipInto(f.dst, f.enc); err != nil {
				return fmt.Errorf("%w: shard %d: %v", ErrBadImage, i, err)
			}
			f.enc = nil
		}
		if fnvSum64(f.dst) != f.hash {
			return fmt.Errorf("%w: shard %d content hash mismatch", ErrCorruptImage, i)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if !delta {
		// A base is complete: publish the sections (zero-size ones too)
		// and drop the shard bookkeeping.
		for i, sec := range secs {
			if secData[i] == nil {
				secData[i] = make([]byte, sec.size)
			}
			img.Sections.Add(sec.name, secData[i])
			if sec.opaque {
				img.Sections.MarkOpaque(sec.name)
			}
		}
		di.Materialized = true
		return img, nil
	}
	di.shards = make([]deltaShard, len(frames))
	for i, f := range frames {
		di.shards[i] = deltaShard{span: f.span, off: f.off, hash: f.hash, data: f.dst}
	}
	return img, nil
}

// gunzipInto inflates one gzip member into exactly dst.
func gunzipInto(dst, enc []byte) error {
	gz, err := gzip.NewReader(bytes.NewReader(enc))
	if err != nil {
		return fmt.Errorf("gzip: %v", err)
	}
	defer gz.Close()
	gz.Multistream(false)
	if _, err := io.ReadFull(gz, dst); err != nil {
		return err
	}
	var tail [1]byte
	if n, _ := gz.Read(tail[:]); n != 0 {
		return errors.New("trailing bytes in shard")
	}
	return nil
}

// ApplyDelta materializes delta on top of its (already materialized)
// parent image: the delta's region and section tables are authoritative
// for the result's layout; clean region bytes inherit from the parent
// by absolute address, clean section bytes by name and offset, and the
// delta's shards overwrite the dirty ranges. Opaque sections resolve
// through the registered merger instead (absent a merger, the delta's
// own bytes are used verbatim).
func ApplyDelta(parent, delta *Image, mergers map[string]SectionMerger) (*Image, error) {
	d := delta.Delta
	if d == nil {
		return nil, fmt.Errorf("%w: ApplyDelta on a non-delta image", ErrBadImage)
	}
	if d.Materialized {
		return delta, nil
	}
	if parent == nil || !parent.Complete() {
		return nil, fmt.Errorf("%w: parent %q is not materialized", ErrDeltaChain, d.Parent)
	}
	// Verify the parent's identity: the delta recorded the content-derived
	// ID of the image it was written against. A parent name later rebound
	// to different content (overwritten, replaced by a new chain's base)
	// must fail the restore instead of silently mixing states.
	if d.parentID != 0 {
		if parent.Delta == nil || parent.Delta.id != d.parentID {
			return nil, fmt.Errorf("%w: image %q is not the parent this delta was written against", ErrDeltaChain, d.Parent)
		}
	}
	out := &Image{Version: 3, Gzip: delta.Gzip, Sections: NewSectionMap()}
	out.Delta = &DeltaInfo{
		Parent: d.Parent, Depth: d.Depth,
		ShardsTotal: d.ShardsTotal, ShardsEmitted: d.ShardsEmitted,
		RawTotal: d.RawTotal, RawEmitted: d.RawEmitted,
		Materialized: true,
		id:           d.id, parentID: d.parentID,
		shardSize: d.shardSize, secs: d.secs,
	}

	// Regions: allocate at the delta's layout, inherit parent bytes by
	// absolute address overlap. Every byte the parent cannot supply is
	// covered by a delta shard: pages of mappings created after the
	// parent checkpoint are stamped dirty from birth.
	out.Regions = make([]RegionData, len(delta.Regions))
	for i, rd := range delta.Regions {
		nr := rd
		nr.Data = make([]byte, rd.Len)
		for _, pr := range parent.Regions {
			lo, hi := rd.Start, rd.Start+rd.Len
			if pr.Start > lo {
				lo = pr.Start
			}
			if pe := pr.Start + uint64(len(pr.Data)); pe < hi {
				hi = pe
			}
			if lo < hi {
				copy(nr.Data[lo-rd.Start:hi-rd.Start], pr.Data[lo-pr.Start:hi-pr.Start])
			}
		}
		out.Regions[i] = nr
	}
	// Sections: inherit by name (resized to the delta's length); opaque
	// sections start empty and are resolved below.
	secData := make([][]byte, len(d.secs))
	for i, sec := range d.secs {
		secData[i] = make([]byte, sec.size)
		if !sec.opaque {
			if pb, ok := parent.Sections.Get(sec.name); ok {
				copy(secData[i], pb)
			}
		}
	}
	// Overlay the dirty shards.
	nReg := len(delta.Regions)
	for _, sh := range d.shards {
		if sh.span < nReg {
			copy(out.Regions[sh.span].Data[sh.off:], sh.data)
		} else {
			copy(secData[sh.span-nReg][sh.off:], sh.data)
		}
	}
	for i, sec := range d.secs {
		if sec.opaque {
			if merger := mergers[sec.name]; merger != nil {
				pb, _ := parent.Sections.Get(sec.name)
				nb, err := merger(pb, secData[i])
				if err != nil {
					return nil, fmt.Errorf("dmtcp: merging section %s: %w", sec.name, err)
				}
				secData[i] = nb
			}
			out.Sections.MarkOpaque(sec.name)
		}
		out.Sections.Add(sec.name, secData[i])
	}
	return out, nil
}

// ResolveChain materializes img if it is an unresolved delta, following
// parent names through open (typically a Store lookup) back to the
// chain's base and folding the deltas forward. Already-complete images
// (v1, v2, v3 bases, materialized deltas) pass through unchanged.
func ResolveChain(img *Image, open func(name string) (io.ReadCloser, error), mergers map[string]SectionMerger) (*Image, error) {
	if img == nil || img.Complete() {
		return img, nil
	}
	if open == nil {
		return nil, fmt.Errorf("%w: no way to open parent %q", ErrDeltaChain, img.Delta.Parent)
	}
	chain := []*Image{img}
	seen := make(map[string]bool)
	cur := img
	for !cur.Complete() {
		pname := cur.Delta.Parent
		if pname == "" || seen[pname] || len(chain) > maxChainDepth {
			return nil, fmt.Errorf("%w: broken lineage at %q", ErrDeltaChain, pname)
		}
		seen[pname] = true
		rc, err := open(pname)
		if err != nil {
			return nil, fmt.Errorf("%w: opening parent %q: %w", ErrDeltaChain, pname, err)
		}
		pimg, err := ReadImage(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("parent %q: %w", pname, err)
		}
		chain = append(chain, pimg)
		cur = pimg
	}
	out := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		var err error
		out, err = ApplyDelta(out, chain[i], mergers)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ImageMeta is the cheap header-only view of a checkpoint image: enough
// to classify the format and follow lineage without parsing tables or
// payload. Store retention uses it to keep delta chains unbroken.
type ImageMeta struct {
	Version int
	Gzip    bool
	Delta   bool
	Parent  string
	Depth   int
}

// ReadImageMeta parses just the image prologue (magic, flags and — for
// v3 — the lineage fields).
func ReadImageMeta(r io.Reader) (ImageMeta, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return ImageMeta{}, fmt.Errorf("%w: magic: %v", ErrBadImage, err)
	}
	var flags [4]byte
	switch magic {
	case imageMagicV1, imageMagicV2:
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return ImageMeta{}, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
		}
		v := 1
		if magic == imageMagicV2 {
			v = 2
		}
		return ImageMeta{Version: v, Gzip: flags[0]&1 != 0}, nil
	case imageMagicV3:
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return ImageMeta{}, fmt.Errorf("%w: flags: %v", ErrBadImage, err)
		}
		parent, err := readString(r)
		if err != nil {
			return ImageMeta{}, fmt.Errorf("%w: parent: %v", ErrBadImage, err)
		}
		var u32 [4]byte
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return ImageMeta{}, fmt.Errorf("%w: depth: %v", ErrBadImage, err)
		}
		return ImageMeta{Version: 3, Gzip: flags[0]&1 != 0, Delta: flags[0]&2 != 0,
			Parent: parent, Depth: int(binary.LittleEndian.Uint32(u32[:]))}, nil
	default:
		if bytes.Equal(magic[:7], imageMagicV1[:7]) {
			return ImageMeta{}, fmt.Errorf("%w: %q", ErrUnsupportedVersion, magic[:])
		}
		return ImageMeta{}, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic[:])
	}
}
