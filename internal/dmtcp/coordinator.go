package dmtcp

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Member is one rank participating in a coordinated checkpoint — in the
// paper's MPI+CUDA proof of principle (Section 6), one MPI rank running
// a CUDA application under CRAC.
type Member interface {
	// Quiesce brings the rank to a checkpointable state (drained GPU,
	// no in-flight communication).
	Quiesce() error
	// WriteCheckpoint writes the rank's image.
	WriteCheckpoint(w io.Writer) error
	// Resume lets the rank continue after the checkpoint.
	Resume() error
}

// Coordinator drives coordinated checkpoints across ranks, like the
// DMTCP coordinator process: all ranks quiesce (a barrier), then all
// images are written, then all ranks resume.
type Coordinator struct {
	mu      sync.Mutex
	members map[int]Member
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{members: make(map[int]Member)}
}

// Add registers a rank.
func (c *Coordinator) Add(rank int, m Member) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[rank] = m
}

// Remove unregisters a rank.
func (c *Coordinator) Remove(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.members, rank)
}

// Ranks returns the registered rank IDs in ascending order.
func (c *Coordinator) Ranks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.members))
	for r := range c.members {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// CheckpointAll performs a coordinated checkpoint: phase 1 quiesces every
// rank in parallel and waits for all (the barrier), phase 2 writes every
// image in parallel to the writer sink(rank) provides, phase 3 resumes
// all ranks. The first error from any phase aborts with that error after
// the phase completes on all ranks.
func (c *Coordinator) CheckpointAll(sink func(rank int) (io.WriteCloser, error)) error {
	c.mu.Lock()
	members := make(map[int]Member, len(c.members))
	for r, m := range c.members {
		members[r] = m
	}
	c.mu.Unlock()

	phase := func(f func(rank int, m Member) error) error {
		var wg sync.WaitGroup
		errs := make(chan error, len(members))
		for r, m := range members {
			wg.Add(1)
			go func(r int, m Member) {
				defer wg.Done()
				if err := f(r, m); err != nil {
					errs <- fmt.Errorf("rank %d: %w", r, err)
				}
			}(r, m)
		}
		wg.Wait()
		close(errs)
		return <-errs // nil if channel empty
	}

	// Whatever happens after the quiesce barrier starts, every rank that
	// quiesced must be resumed: a Member's Quiesce really holds gates
	// (launches and memory writes block until Resume), so skipping the
	// resume phase on error would leave the whole job frozen. Ranks that
	// never quiesced reject the unmatched Resume; that error is noise
	// here, not a failure.
	resumeAll := func() {
		phase(func(_ int, m Member) error { m.Resume(); return nil })
	}
	if err := phase(func(_ int, m Member) error { return m.Quiesce() }); err != nil {
		resumeAll()
		return fmt.Errorf("dmtcp: quiesce barrier: %w", err)
	}
	if err := phase(func(r int, m Member) error {
		w, err := sink(r)
		if err != nil {
			return err
		}
		if err := m.WriteCheckpoint(w); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}); err != nil {
		resumeAll()
		return fmt.Errorf("dmtcp: image write: %w", err)
	}
	if err := phase(func(_ int, m Member) error { return m.Resume() }); err != nil {
		return fmt.Errorf("dmtcp: resume: %w", err)
	}
	return nil
}

// Restarter is a Member that can also be restarted from an image —
// what turns the coordinator's resume-on-failure into full restart
// supervision: when a job dies, every rank is rolled back to the same
// coordinated checkpoint instead of merely resuming.
type Restarter interface {
	Member
	// RestartCheckpoint rebuilds the rank's state from the image in r.
	RestartCheckpoint(r io.Reader) error
}

// RestartAll restarts every registered rank from the image source(rank)
// provides, in parallel. Every rank is attempted even after a failure —
// a partial restart is reported (first error wins), never silently
// abandoned, so the caller can retry or tear the job down knowing every
// rank was driven to a definite state. Ranks that do not implement
// Restarter fail their slot.
func (c *Coordinator) RestartAll(source func(rank int) (io.ReadCloser, error)) error {
	c.mu.Lock()
	members := make(map[int]Member, len(c.members))
	for r, m := range c.members {
		members[r] = m
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	errs := make(chan error, len(members))
	for r, m := range members {
		wg.Add(1)
		go func(r int, m Member) {
			defer wg.Done()
			rs, ok := m.(Restarter)
			if !ok {
				errs <- fmt.Errorf("rank %d: member cannot restart", r)
				return
			}
			src, err := source(r)
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
				return
			}
			err = rs.RestartCheckpoint(src)
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", r, err)
			}
		}(r, m)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return fmt.Errorf("dmtcp: restart: %w", err)
	}
	return nil
}
