package dmtcp

// Edge-case coverage for the v2 span/frame machinery (ensureSpans,
// readIntoSpans): zero-length spans, frames straddling a span boundary
// (legal in the format, never emitted by the writer), and truncated
// final frames. The images are hand-crafted byte streams so the tests
// pin the *reader's* tolerance, not the writer's habits.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/addrspace"
)

// v2Builder assembles a v2 image byte stream field by field.
type v2Builder struct {
	buf bytes.Buffer
}

func (b *v2Builder) u8(v byte) { b.buf.WriteByte(v) }
func (b *v2Builder) u32(v uint32) {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	b.buf.Write(x[:])
}
func (b *v2Builder) u64(v uint64) {
	var x [8]byte
	binary.LittleEndian.PutUint64(x[:], v)
	b.buf.Write(x[:])
}
func (b *v2Builder) str(s string) {
	var x [2]byte
	binary.LittleEndian.PutUint16(x[:], uint16(len(s)))
	b.buf.Write(x[:])
	b.buf.WriteString(s)
}
func (b *v2Builder) raw(p []byte)  { b.buf.Write(p) }
func (b *v2Builder) bytes() []byte { return b.buf.Bytes() }

type v2Region struct {
	start, length uint64
	label         string
}

type v2Section struct {
	name string
	size uint64
}

// header emits magic..shardSize for the given layout (gzip off).
func v2Header(regions []v2Region, sections []v2Section, shard uint32) *v2Builder {
	b := &v2Builder{}
	b.raw(imageMagicV2[:])
	b.u32(0) // flags: no gzip
	b.u32(uint32(len(regions)))
	for _, r := range regions {
		b.u64(r.start)
		b.u64(r.length)
		b.u8(byte(addrspace.ProtRW))
		b.str(r.label)
	}
	b.u32(uint32(len(sections)))
	for _, s := range sections {
		b.str(s.name)
		b.u64(s.size)
	}
	b.u32(shard)
	return b
}

// frame appends one stored (uncompressed) frame.
func (b *v2Builder) frame(p []byte) {
	b.u32(uint32(len(p)))
	b.u32(uint32(len(p)))
	b.raw(p)
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i%31)
	}
	return p
}

func TestReadImageV2ZeroLengthSpans(t *testing.T) {
	// Layout: a zero-length region between two live ones, and a
	// zero-length section between two live ones. Zero-size spans own no
	// payload bytes, so the frame stream skips straight over them.
	const page = addrspace.PageSize
	r1 := pattern(page, 1)
	r2 := pattern(page, 7)
	secA := pattern(5, 3)
	secB := pattern(3, 9)
	b := v2Header(
		[]v2Region{
			{start: addrspace.DefaultUpperStart, length: page, label: "r1"},
			{start: addrspace.DefaultUpperStart + page, length: 0, label: "empty"},
			{start: addrspace.DefaultUpperStart + 2*page, length: page, label: "r2"},
		},
		[]v2Section{{"a", 5}, {"z", 0}, {"b", 3}},
		DefaultShardSize,
	)
	b.frame(r1)
	b.frame(r2)
	b.frame(secA)
	b.frame(secB)
	img, err := ReadImage(bytes.NewReader(b.bytes()))
	if err != nil {
		t.Fatalf("zero-length spans: %v", err)
	}
	if !bytes.Equal(img.Regions[0].Data, r1) || !bytes.Equal(img.Regions[2].Data, r2) {
		t.Fatal("live region payloads wrong around a zero-length region")
	}
	if img.Regions[1].Len != 0 || len(img.Regions[1].Data) != 0 {
		t.Fatal("zero-length region must stay empty")
	}
	if got, ok := img.Sections.Get("z"); !ok || len(got) != 0 {
		t.Fatalf("zero-length section must be present and empty, got %v %v", got, ok)
	}
	if got, _ := img.Sections.Get("a"); !bytes.Equal(got, secA) {
		t.Fatal("section a wrong")
	}
	if got, _ := img.Sections.Get("b"); !bytes.Equal(got, secB) {
		t.Fatal("section b wrong")
	}
}

func TestReadImageV2FrameStraddlesSpanBoundary(t *testing.T) {
	// One frame covering the tail of region 1 and the head of region 2,
	// and another straddling region 2 into the first section. The writer
	// never emits such frames, but the format permits them and
	// readIntoSpans must split them across destinations.
	const page = addrspace.PageSize
	r1 := pattern(page, 11)
	r2 := pattern(page, 23)
	sec := pattern(64, 41)
	b := v2Header(
		[]v2Region{
			{start: addrspace.DefaultUpperStart, length: page, label: "r1"},
			{start: addrspace.DefaultUpperStart + page, length: page, label: "r2"},
		},
		[]v2Section{{"s", 64}},
		DefaultShardSize,
	)
	payload := append(append(append([]byte(nil), r1...), r2...), sec...)
	b.frame(payload[:page/2])          // first half of r1
	b.frame(payload[page/2 : page+10]) // rest of r1 + 10 bytes of r2
	b.frame(payload[page+10:])         // rest of r2 + all of s
	img, err := ReadImage(bytes.NewReader(b.bytes()))
	if err != nil {
		t.Fatalf("straddling frames: %v", err)
	}
	if !bytes.Equal(img.Regions[0].Data, r1) || !bytes.Equal(img.Regions[1].Data, r2) {
		t.Fatal("straddled region payloads reassembled wrong")
	}
	if got, _ := img.Sections.Get("s"); !bytes.Equal(got, sec) {
		t.Fatal("straddled section payload wrong")
	}
}

func TestReadImageV2TruncatedFinalShard(t *testing.T) {
	const page = addrspace.PageSize
	b := v2Header(
		[]v2Region{{start: addrspace.DefaultUpperStart, length: 2 * page, label: "r"}},
		nil,
		page,
	)
	b.frame(pattern(page, 1))
	b.frame(pattern(page, 2))
	whole := b.bytes()
	for _, tc := range []struct {
		name string
		cut  int
	}{
		{"mid final payload", len(whole) - page/2},
		{"after final header", len(whole) - page},
		{"mid final header", len(whole) - page - 4},
		{"missing final frame", len(whole) - page - 8},
	} {
		if _, err := ReadImage(bytes.NewReader(whole[:tc.cut])); !errors.Is(err, ErrBadImage) {
			t.Fatalf("%s: want ErrBadImage, got %v", tc.name, err)
		}
	}
	// Unharmed, the image still reads.
	if _, err := ReadImage(bytes.NewReader(whole)); err != nil {
		t.Fatalf("control read failed: %v", err)
	}
}

func TestReadImageV2RejectsZeroLengthFrame(t *testing.T) {
	const page = addrspace.PageSize
	b := v2Header(
		[]v2Region{{start: addrspace.DefaultUpperStart, length: page, label: "r"}},
		nil,
		page,
	)
	b.u32(0) // rawLen 0
	b.u32(0) // encLen 0
	b.raw(pattern(page, 1))
	if _, err := ReadImage(bytes.NewReader(b.bytes())); !errors.Is(err, ErrBadImage) {
		t.Fatalf("zero-length frame must be rejected, got %v", err)
	}
}
