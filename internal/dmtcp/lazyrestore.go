// The LazyRestorer: fill plans, single-flight shard decode, and the
// background prefetcher of the lazy restart path (see lazy.go).
package dmtcp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
)

// PrefetchClass orders the background drain: device memory first (a
// restarted application's kernels touch it immediately), then pinned,
// then the upper-half regions, and managed (UVM) memory last — its
// CPU-resident pages are the coldest state and stay cold the longest,
// materializing on first touch if the application gets there before
// the prefetcher.
type PrefetchClass int

// Prefetch classes in drain order.
const (
	ClassDevice PrefetchClass = iota
	ClassPinned
	ClassRegion
	ClassManaged
)

// planSource says where a fill plan's bytes come from.
type planSource interface{ isPlanSource() }

// regionSource resolves through the chain's region tables by absolute
// address (the ApplyDelta inheritance rule).
type regionSource struct{}

// sectionSource reads [off, off+len) of one image's section payload.
type sectionSource struct {
	img  int
	name string
	off  uint64
}

// memSource pushes bytes already decoded during planning (a delta's
// own devmem payload). The whole plan fills exactly once (two faults
// overlapping one plan must not race same-byte writes), so the fill is
// gated by a sync.Once — Do blocks concurrent callers until the first
// fill completes, which is what makes the subsequent MarkWarm sound.
type memSource struct {
	data []byte
	once *sync.Once
}

func (regionSource) isPlanSource()  {}
func (sectionSource) isPlanSource() {}
func (memSource) isPlanSource()     {}

// fillPlan binds one target address range to its image bytes.
type fillPlan struct {
	addr, length uint64
	class        PrefetchClass
	src          planSource
}

// shardRef identifies one shard within one chain image.
type shardRef struct{ img, idx int }

// shardCall is one single-flight shard decode.
type shardCall struct {
	done chan struct{}
	err  error
}

// LazyRestorer materializes a checkpoint image into an address space
// on demand. Build it with NewLazyRestorer, register the fill plans
// (PlanRegions + the plugin's section plans), Seal it, install
// MaterializeRange as the space's Materializer, and start Prefetch on
// a background goroutine. Safe for concurrent use after Seal.
type LazyRestorer struct {
	space *addrspace.Space
	chain []*ShardIndex // [0] = tip; chain[i].parent == chain[i+1]

	// Mergers resolves opaque sections for the eager-fallback path of
	// RunLazyRestartHooks (plugins that do not implement
	// LazyRestartPlugin).
	Mergers map[string]SectionMerger

	plans    []fillPlan // sorted by addr once sealed
	secPlans map[secKey][]int
	sealed   bool

	mu    sync.Mutex
	calls map[shardRef]*shardCall

	decoded     atomic.Int64 // shards actually decoded (single-flight observability)
	filledBytes atomic.Uint64

	// fg counts foreground materializations in flight (faults and
	// DrainLazy barriers). The prefetcher defers to them: on a machine
	// where the drain competes with the application for cores, a
	// restarted request must never queue behind background prefetching.
	fg atomic.Int64
}

type secKey struct {
	img  int
	name string
}

// NewLazyRestorer builds a restorer over the linked index chain
// (tip first; parents must already be linked with SetParent).
func NewLazyRestorer(space *addrspace.Space, chain []*ShardIndex) (*LazyRestorer, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: empty index chain", ErrBadImage)
	}
	for i, ix := range chain[:len(chain)-1] {
		if ix.parent != chain[i+1] {
			return nil, fmt.Errorf("%w: index chain not linked at depth %d", ErrDeltaChain, i)
		}
	}
	last := chain[len(chain)-1]
	if last.Delta {
		return nil, fmt.Errorf("%w: chain ends in a delta (%q unresolved)", ErrDeltaChain, last.Parent)
	}
	return &LazyRestorer{
		space:    space,
		chain:    chain,
		secPlans: make(map[secKey][]int),
		calls:    make(map[shardRef]*shardCall),
	}, nil
}

// Tip returns the chain tip's index (the image being restored).
func (r *LazyRestorer) Tip() *ShardIndex { return r.chain[0] }

// Chain returns the linked index chain, tip first.
func (r *LazyRestorer) Chain() []*ShardIndex { return r.chain }

// ShardsDecoded counts the shards actually decoded so far — with the
// single-flight cache, at most one decode per (image, shard) no matter
// how faults and the prefetcher race.
func (r *LazyRestorer) ShardsDecoded() int64 { return r.decoded.Load() }

// FilledBytes counts the payload bytes pushed into the space so far.
func (r *LazyRestorer) FilledBytes() uint64 { return r.filledBytes.Load() }

// SectionBytes materializes a tip section completely (chain-resolved).
func (r *LazyRestorer) SectionBytes(name string) ([]byte, error) {
	return r.chain[0].SectionBytes(name)
}

// ImageSectionBytes materializes the named section as carried by chain
// image img (the plugin uses it to read a delta's own devmem2 listing,
// or an ancestor base's call log).
func (r *LazyRestorer) ImageSectionBytes(img int, name string) ([]byte, error) {
	if img < 0 || img >= len(r.chain) {
		return nil, fmt.Errorf("%w: no chain image %d", ErrDeltaChain, img)
	}
	return r.chain[img].SectionBytes(name)
}

// PlanRegions registers one fill plan per tip region: the whole
// upper-half memory restores on demand.
func (r *LazyRestorer) PlanRegions() {
	for _, rd := range r.chain[0].Regions {
		r.addPlan(fillPlan{addr: rd.Start, length: rd.Len, class: ClassRegion, src: regionSource{}})
	}
}

// PlanSection binds [addr, addr+length) to bytes [off, off+length) of
// the named section of chain image img.
func (r *LazyRestorer) PlanSection(addr, length uint64, img int, name string, off uint64, class PrefetchClass) error {
	if img < 0 || img >= len(r.chain) {
		return fmt.Errorf("%w: no chain image %d", ErrDeltaChain, img)
	}
	ix := r.chain[img]
	si := ix.sectionIndex(name)
	if si < 0 {
		return fmt.Errorf("%w: image %d has no section %q", ErrBadImage, img, name)
	}
	if off+length > ix.Secs[si].Size {
		return fmt.Errorf("%w: section %q plan %d+%d beyond %d", ErrBadImage, name, off, length, ix.Secs[si].Size)
	}
	idx := len(r.plans)
	r.addPlan(fillPlan{addr: addr, length: length, class: class, src: sectionSource{img: img, name: name, off: off}})
	key := secKey{img: img, name: name}
	r.secPlans[key] = append(r.secPlans[key], idx)
	return nil
}

// PlanMem binds [addr, addr+len(data)) to bytes already in memory.
func (r *LazyRestorer) PlanMem(addr uint64, data []byte, class PrefetchClass) {
	r.addPlan(fillPlan{addr: addr, length: uint64(len(data)), class: class,
		src: memSource{data: data, once: new(sync.Once)}})
}

func (r *LazyRestorer) addPlan(p fillPlan) {
	if r.sealed {
		panic("dmtcp: LazyRestorer plan added after Seal")
	}
	if p.length == 0 {
		return
	}
	r.plans = append(r.plans, p)
}

// Seal freezes the plan set (sorting it for lookup) and marks every
// planned range cold in the space. Call after all plans are
// registered, before installing the materializer and resuming the
// application.
func (r *LazyRestorer) Seal() {
	sort.Slice(r.plans, func(i, j int) bool { return r.plans[i].addr < r.plans[j].addr })
	// secPlans holds indices into the pre-sort slice; rebuild.
	r.secPlans = make(map[secKey][]int)
	for i, p := range r.plans {
		if ss, ok := p.src.(sectionSource); ok {
			key := secKey{img: ss.img, name: ss.name}
			r.secPlans[key] = append(r.secPlans[key], i)
		}
	}
	r.sealed = true
	for _, p := range r.plans {
		r.space.MarkCold(p.addr, p.length)
	}
}

// plansOverlapping iterates the plans overlapping [addr, addr+length).
func (r *LazyRestorer) plansOverlapping(addr, length uint64, fn func(p *fillPlan, lo, hi uint64) error) error {
	end := addr + length
	i := sort.Search(len(r.plans), func(i int) bool {
		return r.plans[i].addr+r.plans[i].length > addr
	})
	for ; i < len(r.plans); i++ {
		p := &r.plans[i]
		if p.addr >= end {
			break
		}
		lo, hi := p.addr, p.addr+p.length
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			if err := fn(p, lo, hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolveRegion collects, for the absolute range [addr, addr+length),
// the shards of the nearest chain image owning each sub-range —
// starting at chain image img. Clean ranges of a delta descend to the
// parent; a base owns everything its regions cover.
func (r *LazyRestorer) resolveRegion(img int, addr, length uint64, refs map[shardRef]struct{}) error {
	ix := r.chain[img]
	end := addr + length
	at := addr
	for _, spanIdx := range r.regionSpansOverlapping(ix, addr, end) {
		rd := ix.Regions[spanIdx]
		lo, hi := rd.Start, rd.Start+rd.Len
		if lo < at {
			lo = at
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		if lo > at {
			// [at, lo) lies outside this image's regions.
			if err := r.regionGap(img, at, lo-at, refs); err != nil {
				return err
			}
		}
		idxs, gaps := ix.shardsCovering(spanIdx, lo-rd.Start, hi-lo)
		for _, k := range idxs {
			refs[shardRef{img: img, idx: k}] = struct{}{}
		}
		for _, g := range gaps {
			if img+1 >= len(r.chain) {
				return fmt.Errorf("%w: region bytes %#x+%#x missing from base image", ErrDeltaChain, rd.Start+g.Off, g.Len)
			}
			if err := r.resolveRegion(img+1, rd.Start+g.Off, g.Len, refs); err != nil {
				return err
			}
		}
		at = hi
	}
	if at < end {
		if err := r.regionGap(img, at, end-at, refs); err != nil {
			return err
		}
	}
	return nil
}

// regionGap handles a range outside image img's region table. At the
// tip that means the range was never planned (plans come from tip
// regions) and there is nothing to fill; deeper in the chain it is a
// lineage hole — a clean tip range whose ancestor does not map it,
// which conservative dirty tracking (new mappings dirty from birth)
// makes impossible for well-formed chains.
func (r *LazyRestorer) regionGap(img int, addr, length uint64, refs map[shardRef]struct{}) error {
	if img == 0 {
		return nil
	}
	return fmt.Errorf("%w: region bytes %#x+%#x not mapped by ancestor image", ErrDeltaChain, addr, length)
}

// regionSpansOverlapping returns the indices of ix's regions
// overlapping [addr, end), in address order.
func (r *LazyRestorer) regionSpansOverlapping(ix *ShardIndex, addr, end uint64) []int {
	var out []int
	for i, rd := range ix.Regions {
		if rd.Start+rd.Len <= addr {
			continue
		}
		if rd.Start >= end {
			break
		}
		out = append(out, i)
	}
	return out
}

// MaterializeRange is the addrspace Materializer: it materializes (at
// least) the cold content of [addr, addr+length) and marks the range
// warm. addr/length are page-aligned (the fault gate's contract).
// Calls through this entry are foreground: the prefetcher yields to
// them.
func (r *LazyRestorer) MaterializeRange(addr, length uint64) error {
	r.fg.Add(1)
	defer r.fg.Add(-1)
	return r.materialize(addr, length)
}

func (r *LazyRestorer) materialize(addr, length uint64) error {
	refs := make(map[shardRef]struct{})
	var mems []*fillPlan
	err := r.plansOverlapping(addr, length, func(p *fillPlan, lo, hi uint64) error {
		switch src := p.src.(type) {
		case regionSource:
			return r.resolveRegion(0, lo, hi-lo, refs)
		case sectionSource:
			ix := r.chain[src.img]
			si := ix.sectionIndex(src.name)
			span := len(ix.Regions) + si
			secLo := src.off + (lo - p.addr)
			idxs, gaps := ix.shardsCovering(span, secLo, hi-lo)
			if len(gaps) > 0 {
				// Section plans always name the image that owns the
				// payload (a base's computed layout, or a delta's own
				// opaque section, which is emitted in full).
				return fmt.Errorf("%w: section %q bytes %d+%d missing from image %d", ErrDeltaChain, src.name, gaps[0].Off, gaps[0].Len, src.img)
			}
			for _, k := range idxs {
				refs[shardRef{img: src.img, idx: k}] = struct{}{}
			}
			return nil
		case memSource:
			mems = append(mems, p)
			return nil
		default:
			return fmt.Errorf("dmtcp: unknown plan source %T", src)
		}
	})
	if err != nil {
		return err
	}
	// Deterministic decode order (ascending file position within each
	// image) keeps a prefetcher chunk streaming forward.
	ordered := make([]shardRef, 0, len(refs))
	for ref := range refs {
		ordered = append(ordered, ref)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].img != ordered[j].img {
			return ordered[i].img < ordered[j].img
		}
		return ordered[i].idx < ordered[j].idx
	})
	for _, ref := range ordered {
		if err := r.ensureShard(ref); err != nil {
			return err
		}
	}
	for _, m := range mems {
		src := m.src.(memSource)
		addr := m.addr
		// Whole-plan fill, exactly once: Do blocks concurrent callers
		// until the bytes are in place.
		src.once.Do(func() {
			r.space.FillCold(addr, src.data)
			r.filledBytes.Add(uint64(len(src.data)))
		})
	}
	r.space.MarkWarm(addr, length)
	return nil
}

// ensureShard decodes and scatters one shard exactly once; concurrent
// callers (faults, the prefetcher) wait on the same in-flight call.
// Successful decodes stay cached (their pages are filled; nothing may
// decode-and-scatter them again), but a failed one is forgotten so the
// next access retries — a transient store error must not permanently
// poison the range, per the contract that cold memory keeps
// materializing on demand after a failed or cancelled drain.
func (r *LazyRestorer) ensureShard(ref shardRef) error {
	r.mu.Lock()
	c, ok := r.calls[ref]
	if ok {
		r.mu.Unlock()
		<-c.done
		return c.err
	}
	c = &shardCall{done: make(chan struct{})}
	r.calls[ref] = c
	r.mu.Unlock()
	c.err = r.decodeAndScatter(ref)
	if c.err != nil {
		r.mu.Lock()
		delete(r.calls, ref)
		r.mu.Unlock()
	}
	close(c.done)
	return c.err
}

// decodeAndScatter decodes shard ref and pushes its bytes to every
// target range that resolves to it.
func (r *LazyRestorer) decodeAndScatter(ref shardRef) error {
	ix := r.chain[ref.img]
	sh := &ix.shards[ref.idx]
	bp := defaultBudget.getShardBuf(int(sh.rawLen))
	defer defaultBudget.putShardBuf(bp)
	buf := (*bp)[:sh.rawLen]
	if err := ix.readShard(ref.idx, buf); err != nil {
		return err
	}
	r.decoded.Add(1)

	if sh.span < len(ix.Regions) {
		// Region shard: its absolute range, minus every sub-range a
		// younger chain image overrides (their shards carry the newer
		// bytes and are decoded by their own resolution), scatters by
		// address. FillCold writes only still-cold pages, so ranges the
		// application already faulted (or that were unmapped since) are
		// untouched.
		base := ix.Regions[sh.span].Start + sh.off
		selected := []addrspace.Span{{Off: base, Len: uint64(sh.rawLen)}}
		for younger := ref.img - 1; younger >= 0; younger-- {
			selected = subtractRegionShards(r.chain[younger], selected)
			if len(selected) == 0 {
				break
			}
		}
		for _, sel := range selected {
			r.space.FillCold(sel.Off, buf[sel.Off-base:sel.Off-base+sel.Len])
			r.filledBytes.Add(sel.Len)
		}
		return nil
	}

	// Section shard: scatter to the plans bound to this image+section.
	sec := ix.Secs[sh.span-len(ix.Regions)]
	for _, pi := range r.secPlans[secKey{img: ref.img, name: sec.Name}] {
		p := &r.plans[pi]
		ss := p.src.(sectionSource)
		lo, hi := sh.off, sh.off+uint64(sh.rawLen)
		if lo < ss.off {
			lo = ss.off
		}
		if e := ss.off + p.length; hi > e {
			hi = e
		}
		if lo >= hi {
			continue
		}
		r.space.FillCold(p.addr+(lo-ss.off), buf[lo-sh.off:hi-sh.off])
		r.filledBytes.Add(hi - lo)
	}
	return nil
}

// subtractRegionShards removes from spans (absolute address ranges)
// every range covered by a shard of ix's regions.
func subtractRegionShards(ix *ShardIndex, spans []addrspace.Span) []addrspace.Span {
	var out []addrspace.Span
	for _, sp := range spans {
		parts := []addrspace.Span{sp}
		for spanIdx, rd := range ix.Regions {
			if rd.Start+rd.Len <= sp.Off || rd.Start >= sp.Off+sp.Len {
				continue
			}
			var next []addrspace.Span
			for _, part := range parts {
				lo, hi := part.Off, part.Off+part.Len
				clo, chi := rd.Start, rd.Start+rd.Len
				if clo < lo {
					clo = lo
				}
				if chi > hi {
					chi = hi
				}
				if clo >= chi {
					next = append(next, part)
					continue
				}
				idxs, _ := ix.shardsCovering(spanIdx, clo-rd.Start, chi-clo)
				covered := make([]addrspace.Span, 0, len(idxs))
				for _, k := range idxs {
					sh := &ix.shards[k]
					covered = append(covered, addrspace.Span{Off: rd.Start + sh.off, Len: uint64(sh.rawLen)})
				}
				next = append(next, subtractSpans(part, covered)...)
			}
			parts = next
			if len(parts) == 0 {
				break
			}
		}
		out = append(out, parts...)
	}
	return out
}

// subtractSpans removes the (ascending, possibly overlapping-with-part
// boundaries) cover ranges from part.
func subtractSpans(part addrspace.Span, cover []addrspace.Span) []addrspace.Span {
	var out []addrspace.Span
	at := part.Off
	end := part.Off + part.Len
	for _, c := range cover {
		clo, chi := c.Off, c.Off+c.Len
		if chi <= at || clo >= end {
			continue
		}
		if clo > at {
			out = append(out, addrspace.Span{Off: at, Len: clo - at})
		}
		if chi > at {
			at = chi
		}
		if at >= end {
			return out
		}
	}
	if at < end {
		out = append(out, addrspace.Span{Off: at, Len: end - at})
	}
	return out
}

// prefetchChunk is the page-aligned granularity of the background
// drain: roughly one shard, so the prefetcher reaches a yield point —
// where it defers to foreground faults and lets the scheduler run the
// application — at sub-millisecond intervals even on a single core.
const prefetchChunk = 1 << 20

// Prefetch drains every plan, class by class in PrefetchClass order,
// until the whole image is materialized or ctx is cancelled. Faults
// racing the prefetcher deduplicate on the single-flight shard calls,
// and foreground materializations (faults, DrainLazy barriers) take
// strict priority: the drain pauses while any is in flight, so a
// restarted request never queues behind background prefetching. A
// cancelled prefetch leaves the remaining cold pages materializable on
// demand — the session stays fully usable.
func (r *LazyRestorer) Prefetch(ctx context.Context) error {
	for _, class := range []PrefetchClass{ClassDevice, ClassPinned, ClassRegion, ClassManaged} {
		for i := range r.plans {
			p := &r.plans[i]
			if p.class != class {
				continue
			}
			start := p.addr &^ (addrspace.PageSize - 1)
			end := (p.addr + p.length + addrspace.PageSize - 1) &^ (addrspace.PageSize - 1)
			for at := start; at < end; at += prefetchChunk {
				for r.fg.Load() != 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
					time.Sleep(50 * time.Microsecond)
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				hi := at + prefetchChunk
				if hi > end {
					hi = end
				}
				if err := r.materialize(at, hi-at); err != nil {
					return err
				}
				// A scheduling point per chunk: on saturated cores the
				// application (and its faults) get the processor between
				// every decoded shard.
				runtime.Gosched()
			}
		}
	}
	return nil
}

// Span overlap note: plans never overlap each other (regions are
// disjoint mappings; devmem entries are disjoint allocations in the
// lower half), so a page belongs to at most one plan per byte and
// MaterializeRange's per-plan fills are disjoint.

// LazyRestartPlugin is the optional extension of Plugin for lazy
// restarts: instead of refilling its state eagerly from materialized
// sections, the plugin registers fill plans on the restorer (and may
// read small sections eagerly through it). Plugins that do not
// implement it fall back to their Restart hook over eagerly
// materialized sections — regions still restore lazily.
type LazyRestartPlugin interface {
	Plugin
	LazyRestart(ctx context.Context, r *LazyRestorer) error
}

// RunLazyRestartHooks invokes every plugin's lazy restart hook, in
// registration order. Plugins without LazyRestart get their eager
// Restart hook with a fully materialized SectionMap (opaque sections
// resolved through r.Mergers), built at most once.
func (e *Engine) RunLazyRestartHooks(ctx context.Context, r *LazyRestorer) error {
	var eager *SectionMap
	for _, p := range e.plugins {
		if err := ctx.Err(); err != nil {
			return err
		}
		if lp, ok := p.(LazyRestartPlugin); ok {
			if err := lp.LazyRestart(ctx, r); err != nil {
				return fmt.Errorf("dmtcp: plugin %s lazy restart: %w", p.Name(), err)
			}
			continue
		}
		if eager == nil {
			var err error
			if eager, err = r.materializeSections(); err != nil {
				return err
			}
		}
		if err := p.Restart(ctx, eager); err != nil {
			return fmt.Errorf("dmtcp: plugin %s restart: %w", p.Name(), err)
		}
	}
	return nil
}

// materializeSections builds the tip's complete SectionMap: non-opaque
// sections chain-resolve by name+offset, opaque ones merge through the
// registered mergers (each chain image's opaque bytes are complete, so
// the fold mirrors ApplyDelta's).
func (r *LazyRestorer) materializeSections() (*SectionMap, error) {
	out := NewSectionMap()
	for _, sec := range r.chain[0].Secs {
		var data []byte
		var err error
		if sec.Opaque {
			data, err = r.opaqueSectionBytes(0, sec.Name)
		} else {
			data, err = r.chain[0].SectionBytes(sec.Name)
		}
		if err != nil {
			return nil, err
		}
		out.Add(sec.Name, data)
		if sec.Opaque {
			out.MarkOpaque(sec.Name)
		}
	}
	return out, nil
}

// opaqueSectionBytes folds an opaque section across the chain from the
// base up to image img, through the registered merger.
func (r *LazyRestorer) opaqueSectionBytes(img int, name string) ([]byte, error) {
	ix := r.chain[img]
	self, err := ix.SectionBytes(name)
	if err != nil {
		return nil, err
	}
	if !ix.Delta {
		return self, nil
	}
	merger := r.Mergers[name]
	if merger == nil {
		return nil, fmt.Errorf("%w: opaque section %q has no merger", ErrDeltaChain, name)
	}
	var parent []byte
	if img+1 < len(r.chain) && r.chain[img+1].HasSection(name) {
		if parent, err = r.opaqueSectionBytes(img+1, name); err != nil {
			return nil, err
		}
	}
	return merger(parent, self)
}
