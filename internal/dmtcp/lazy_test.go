package dmtcp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/addrspace"
)

// lazySpace builds a space with a few upper-half regions of patterned
// content.
func lazySpace(t *testing.T) *addrspace.Space {
	t.Helper()
	space := addrspace.New()
	upper := space.UpperWindow().Start
	for i, n := range []uint64{3 * addrspace.PageSize, 1 << 20, 5 * addrspace.PageSize} {
		addr := upper + uint64(i)*(4<<20)
		if _, err := space.MMap(addr, n, addrspace.ProtRW, addrspace.MapFixedNoReplace,
			addrspace.HalfUpper, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(uint64(i+1)*31 + uint64(j)*7)
		}
		if err := space.WriteAt(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	return space
}

// writeTestImage checkpoints space through a fresh engine.
func writeTestImage(t *testing.T, space *addrspace.Space, mut func(e *Engine)) []byte {
	t.Helper()
	e := NewEngine()
	e.Register(&lazyTestPlugin{})
	if mut != nil {
		mut(e)
	}
	var buf bytes.Buffer
	if _, err := e.Checkpoint(nil, &buf, space); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lazyTestPlugin contributes a deterministic payload section.
type lazyTestPlugin struct{}

func (p *lazyTestPlugin) Name() string { return "lazytest" }
func (p *lazyTestPlugin) PreCheckpoint(_ context.Context, sections *SectionMap) error {
	data := make([]byte, 3*DefaultShardSize/2)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	sections.Add("test.payload", data)
	sections.Add("test.small", []byte("hello"))
	return nil
}
func (p *lazyTestPlugin) Resume() error { return nil }
func (p *lazyTestPlugin) Restart(_ context.Context, sections *SectionMap) error {
	return nil
}

// TestShardIndexSectionBytes checks the index returns the same section
// bytes as the eager reader, across formats.
func TestShardIndexSectionBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(e *Engine)
	}{
		{"v2", nil},
		{"v2-gzip", func(e *Engine) { e.Gzip = true }},
		{"v2-small-shards", func(e *Engine) { e.ShardSize = 64 << 10 }},
		{"v1", func(e *Engine) { e.ImageVersion = 1 }},
		{"v1-gzip", func(e *Engine) { e.ImageVersion = 1; e.Gzip = true }},
		{"v3-base", func(e *Engine) { e.ImageVersion = 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			space := lazySpace(t)
			img := writeTestImage(t, space, tc.mut)
			want, err := ReadImage(bytes.NewReader(img))
			if err != nil {
				t.Fatal(err)
			}
			ix, err := OpenShardIndex(bytes.NewReader(img), int64(len(img)))
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range want.Sections.Names() {
				wantB, _ := want.Sections.Get(name)
				gotB, err := ix.SectionBytes(name)
				if err != nil {
					t.Fatalf("SectionBytes(%s): %v", name, err)
				}
				if !bytes.Equal(wantB, gotB) {
					t.Fatalf("section %s differs (%d vs %d bytes)", name, len(wantB), len(gotB))
				}
			}
			if len(ix.Regions) != len(want.Regions) {
				t.Fatalf("regions %d != %d", len(ix.Regions), len(want.Regions))
			}
			for i, rd := range want.Regions {
				h := ix.Regions[i]
				if h.Start != rd.Start || h.Len != rd.Len || h.Prot != rd.Prot || h.Label != rd.Label {
					t.Fatalf("region %d header mismatch", i)
				}
			}
		})
	}
}

// TestShardIndexTruncated checks a shard truncated mid-body surfaces a
// decode error, not a hang or silent zeros.
func TestShardIndexTruncated(t *testing.T) {
	space := lazySpace(t)
	img := writeTestImage(t, space, nil)
	// The index scan reads only headers, so it may succeed on an image
	// whose final shard body is cut short; the decode must then fail.
	cut := img[:len(img)-512]
	ix, err := OpenShardIndex(bytes.NewReader(cut), int64(len(cut)))
	if err != nil {
		// The scan itself noticed the truncation: also acceptable.
		if !errors.Is(err, ErrBadImage) {
			t.Fatalf("scan error not ErrBadImage: %v", err)
		}
		return
	}
	var firstErr error
	for i := 0; i < ix.NumShards(); i++ {
		dst := make([]byte, ix.shards[i].rawLen)
		if err := ix.readShard(i, dst); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("no shard decode failed on a truncated image")
	}
	if !errors.Is(firstErr, ErrBadImage) {
		t.Fatalf("decode error not ErrBadImage: %v", firstErr)
	}
}

// chainImages writes a v3 base and one delta over a mutated space,
// returning both serialized images and the final space content probe.
func chainImages(t *testing.T, shard int) (base, delta []byte, space *addrspace.Space) {
	t.Helper()
	space = lazySpace(t)
	e := NewEngine()
	e.ShardSize = shard
	e.ImageVersion = 3
	var baseBuf bytes.Buffer
	_, st, err := e.CheckpointDelta(context.Background(), &baseBuf, space, nil, "base")
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a slice in the middle of region 1 (the 1 MiB one) and the
	// whole of region 2.
	regions := space.RegionsIn(addrspace.HalfUpper)
	mut := make([]byte, 3*addrspace.PageSize)
	for i := range mut {
		mut[i] = byte(0xA0 + i%7)
	}
	if err := space.WriteAt(regions[1].Start+200*1024, mut); err != nil {
		t.Fatal(err)
	}
	all2 := make([]byte, regions[2].Len)
	for i := range all2 {
		all2[i] = byte(0xC3 ^ i)
	}
	if err := space.WriteAt(regions[2].Start, all2); err != nil {
		t.Fatal(err)
	}
	var deltaBuf bytes.Buffer
	if _, _, err := e.CheckpointDelta(context.Background(), &deltaBuf, space, st, "delta"); err != nil {
		t.Fatal(err)
	}
	return baseBuf.Bytes(), deltaBuf.Bytes(), space
}

// lazyRestoreChain maps the tip's regions into a fresh space and
// installs a sealed restorer over the linked chain.
func lazyRestoreChain(t *testing.T, chain []*ShardIndex) (*addrspace.Space, *LazyRestorer) {
	t.Helper()
	space := addrspace.New()
	for _, rd := range chain[0].Regions {
		if _, err := space.MMap(rd.Start, rd.Len, rd.Prot, addrspace.MapFixedNoReplace,
			addrspace.HalfUpper, rd.Label); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewLazyRestorer(space, chain)
	if err != nil {
		t.Fatal(err)
	}
	r.PlanRegions()
	space.BeginLazy(r.MaterializeRange)
	r.Seal()
	return space, r
}

// TestLazyChainBaseOwnedShards checks per-shard chain resolution: a
// delta's clean shards materialize from the base, dirty ones from the
// delta, and the restored bytes equal the live space.
func TestLazyChainBaseOwnedShards(t *testing.T) {
	const shard = 64 << 10
	base, delta, live := chainImages(t, shard)
	baseIx, err := OpenShardIndex(bytes.NewReader(base), int64(len(base)))
	if err != nil {
		t.Fatal(err)
	}
	tip, err := OpenShardIndex(bytes.NewReader(delta), int64(len(delta)))
	if err != nil {
		t.Fatal(err)
	}
	if !tip.Delta || tip.Parent != "base" {
		t.Fatalf("tip lineage: delta=%v parent=%q", tip.Delta, tip.Parent)
	}
	if err := tip.SetParent(baseIx); err != nil {
		t.Fatal(err)
	}
	space, r := lazyRestoreChain(t, []*ShardIndex{tip, baseIx})
	for _, rd := range tip.Regions {
		want := make([]byte, rd.Len)
		if err := live.ReadAt(rd.Start, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, rd.Len)
		if err := space.ReadAt(rd.Start, got); err != nil {
			t.Fatalf("lazy read %#x: %v", rd.Start, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("region %#x differs after chain materialization", rd.Start)
		}
	}
	if space.ColdBytes() != 0 {
		t.Fatalf("%d bytes cold after full read", space.ColdBytes())
	}
	// Both images must have contributed: the delta carries fewer shards
	// than the read needed.
	if dec := r.ShardsDecoded(); dec <= int64(tip.NumShards()) {
		t.Fatalf("decoded %d shards, expected base shards beyond the delta's %d", dec, tip.NumShards())
	}
}

// TestLazyRestorerSingleFlight hammers one sealed restorer with
// concurrent faulting readers and a racing prefetcher: every shard
// must decode exactly once, and a second full read must decode
// nothing further.
func TestLazyRestorerSingleFlight(t *testing.T) {
	const shard = 64 << 10
	base, delta, live := chainImages(t, shard)
	baseIx, err := OpenShardIndex(bytes.NewReader(base), int64(len(base)))
	if err != nil {
		t.Fatal(err)
	}
	tip, err := OpenShardIndex(bytes.NewReader(delta), int64(len(delta)))
	if err != nil {
		t.Fatal(err)
	}
	if err := tip.SetParent(baseIx); err != nil {
		t.Fatal(err)
	}
	space, r := lazyRestoreChain(t, []*ShardIndex{tip, baseIx})

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := r.Prefetch(context.Background()); err != nil {
			errCh <- err
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 8192)
			for _, rd := range tip.Regions {
				for off := uint64(g * 512); off+8192 <= rd.Len; off += 8192 {
					if err := space.ReadAt(rd.Start+off, buf); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	decoded := r.ShardsDecoded()
	maxShards := int64(tip.NumShards() + baseIx.NumShards())
	if decoded > maxShards {
		t.Fatalf("decoded %d shards with only %d in the chain: single-flight broken", decoded, maxShards)
	}
	// A second full read hits only warm pages: no further decodes.
	for _, rd := range tip.Regions {
		buf := make([]byte, rd.Len)
		if err := space.ReadAt(rd.Start, buf); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, rd.Len)
		if err := live.ReadAt(rd.Start, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, buf) {
			t.Fatalf("region %#x differs under concurrent fault+prefetch", rd.Start)
		}
	}
	if r.ShardsDecoded() != decoded {
		t.Fatalf("re-read decoded %d more shards", r.ShardsDecoded()-decoded)
	}
}
