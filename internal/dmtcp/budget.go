package dmtcp

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"sync"
)

// A WorkerBudget is a shared resourcing domain for checkpoint write
// pipelines: a bound on how many shard workers may run concurrently
// across every Engine attached to it, plus the staging buffers,
// compression buffers, and per-level gzip writers those workers
// recycle. A single session needs none of this — the package default
// is one unbounded budget per process — but N sessions multiplexed
// over one machine (crac.Pool) attach a shared budget so the fleet
// runs one bounded set of pipeline workers and one buffer economy
// instead of N×workers goroutines and N separate pools.
//
// A nil *WorkerBudget and NewWorkerBudget(0) both mean "unbounded":
// concurrency is then limited only by each engine's own Workers
// setting, exactly the pre-budget behavior.
type WorkerBudget struct {
	slots chan struct{} // nil: unbounded

	shardRaw sync.Pool // *[]byte staging buffers
	shardEnc sync.Pool // *bytes.Buffer gzip output
	gzPools  sync.Map  // gzip level → *sync.Pool of *gzip.Writer
}

// NewWorkerBudget returns a budget admitting at most maxWorkers
// concurrently running pipeline workers across every attached engine
// (maxWorkers <= 0: unbounded).
func NewWorkerBudget(maxWorkers int) *WorkerBudget {
	b := &WorkerBudget{}
	if maxWorkers > 0 {
		b.slots = make(chan struct{}, maxWorkers)
	}
	return b
}

// MaxWorkers reports the concurrent-worker bound (0 = unbounded).
func (b *WorkerBudget) MaxWorkers() int {
	if b == nil || b.slots == nil {
		return 0
	}
	return cap(b.slots)
}

// acquire takes one worker slot, honoring ctx so a cancelled
// checkpoint never parks on a saturated budget. Slots are held only
// across one shard's read+compress and every holder releases
// unconditionally, so waits are bounded and cycle-free.
func (b *WorkerBudget) acquire(ctx context.Context) error {
	if b == nil || b.slots == nil {
		return ctx.Err()
	}
	select {
	case b.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case b.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *WorkerBudget) release() {
	if b != nil && b.slots != nil {
		<-b.slots
	}
}

// defaultBudget is the process-wide domain engines without an explicit
// Budget share: unbounded workers, one buffer economy per process —
// the behavior single-session code has always had. The lazy-restore
// read paths draw their staging buffers from here regardless of the
// writing engine's budget (restores are reads; the budget bounds
// checkpoint CPU).
var defaultBudget = NewWorkerBudget(0)

// budget resolves the engine's resourcing domain.
func (e *Engine) budget() *WorkerBudget {
	if e.Budget != nil {
		return e.Budget
	}
	return defaultBudget
}

// getShardBuf returns a staging buffer with capacity >= shard. Buffers
// whose capacity does not fit the requested shard size are dropped
// rather than grown.
func (b *WorkerBudget) getShardBuf(shard int) *[]byte {
	if bp, _ := b.shardRaw.Get().(*[]byte); bp != nil && cap(*bp) >= shard {
		return bp
	}
	buf := make([]byte, shard)
	return &buf
}

func (b *WorkerBudget) putShardBuf(bp *[]byte) { b.shardRaw.Put(bp) }

func (b *WorkerBudget) getEncBuf() *bytes.Buffer {
	if buf, _ := b.shardEnc.Get().(*bytes.Buffer); buf != nil {
		return buf
	}
	return new(bytes.Buffer)
}

func (b *WorkerBudget) putEncBuf(buf *bytes.Buffer) { b.shardEnc.Put(buf) }

func (b *WorkerBudget) getGz(level int) (*gzip.Writer, error) {
	pi, ok := b.gzPools.Load(level)
	if !ok {
		pi, _ = b.gzPools.LoadOrStore(level, new(sync.Pool))
	}
	if gz, _ := pi.(*sync.Pool).Get().(*gzip.Writer); gz != nil {
		return gz, nil
	}
	return gzip.NewWriterLevel(io.Discard, level)
}

func (b *WorkerBudget) putGz(level int, gz *gzip.Writer) {
	if gz == nil {
		return
	}
	if pi, ok := b.gzPools.Load(level); ok {
		pi.(*sync.Pool).Put(gz)
	}
}
