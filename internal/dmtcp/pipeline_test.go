package dmtcp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/addrspace"
)

// fillPattern writes deterministic, position-dependent bytes so shard
// reordering or misplacement shows up as a content mismatch.
func fillPattern(b []byte, seed uint64) {
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x >> 32)
	}
}

// buildBigSpace maps several upper-half regions of varying sizes (some
// much larger than the shard size used in the tests) plus lower-half
// noise that must never enter an image.
func buildBigSpace(t testing.TB, nRegions int) (*addrspace.Space, []addrspace.RegionInfo) {
	t.Helper()
	s := addrspace.New()
	if _, err := s.MMap(0, 4*addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfLower, "lower-noise"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRegions; i++ {
		pages := uint64(1 + (i*7)%13)
		length := pages * addrspace.PageSize
		start, err := s.MMap(0, length, addrspace.ProtRW, 0, addrspace.HalfUpper, fmt.Sprintf("r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, length)
		fillPattern(data, uint64(i))
		if err := s.WriteAt(start, data); err != nil {
			t.Fatal(err)
		}
	}
	return s, s.RegionsIn(addrspace.HalfUpper)
}

// snapshotRegions reads every region's bytes out of a space.
func snapshotRegions(t testing.TB, s *addrspace.Space, regions []addrspace.RegionInfo) [][]byte {
	t.Helper()
	out := make([][]byte, len(regions))
	for i, ri := range regions {
		out[i] = make([]byte, ri.Len)
		if err := s.ReadAt(ri.Start, out[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// sectionPlugin contributes sections sized to cross shard boundaries.
type sectionPlugin struct{ sizes []int }

func (p *sectionPlugin) Name() string { return "sections" }
func (p *sectionPlugin) PreCheckpoint(_ context.Context, s *SectionMap) error {
	for i, n := range p.sizes {
		b := s.AddZero(fmt.Sprintf("sec.%d", i), n)
		fillPattern(b, uint64(100+i))
	}
	return nil
}
func (p *sectionPlugin) Resume() error                              { return nil }
func (p *sectionPlugin) Restart(context.Context, *SectionMap) error { return nil }

// TestParallelSerialImagesIdentical: the v2 image is byte-identical for
// any worker count (shard plan depends only on shard size), and the
// restored memory is byte-identical to the original for both paths.
func TestParallelSerialImagesIdentical(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			space, regions := buildBigSpace(t, 9)
			want := snapshotRegions(t, space, regions)

			checkpoint := func(workers int) []byte {
				e := NewEngine()
				e.Gzip = gz
				e.Workers = workers
				e.ShardSize = 3 * addrspace.PageSize // force multi-shard regions
				e.Register(&sectionPlugin{sizes: []int{0, 17, 5 * addrspace.PageSize}})
				var img bytes.Buffer
				if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
					t.Fatal(err)
				}
				return img.Bytes()
			}
			serial := checkpoint(1)
			parallel := checkpoint(8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("serial and parallel images differ: %d vs %d bytes", len(serial), len(parallel))
			}

			for _, workers := range []int{1, 8} {
				img, err := ReadImage(bytes.NewReader(parallel))
				if err != nil {
					t.Fatal(err)
				}
				if img.Version != 2 {
					t.Fatalf("version = %d", img.Version)
				}
				fresh := addrspace.New()
				if err := RestoreRegionsN(context.Background(), img, fresh, workers); err != nil {
					t.Fatal(err)
				}
				got := snapshotRegions(t, fresh, regions)
				for i := range want {
					if !bytes.Equal(want[i], got[i]) {
						t.Fatalf("workers=%d: region %d differs after restore", workers, i)
					}
				}
				for i, n := range []int{0, 17, 5 * addrspace.PageSize} {
					sec, ok := img.Sections.Get(fmt.Sprintf("sec.%d", i))
					if !ok || len(sec) != n {
						t.Fatalf("section %d: ok=%v len=%d want %d", i, ok, len(sec), n)
					}
					ref := make([]byte, n)
					fillPattern(ref, uint64(100+i))
					if !bytes.Equal(sec, ref) {
						t.Fatalf("section %d content differs", i)
					}
				}
			}
		})
	}
}

// TestV1BackwardCompat: images written in the legacy serial format are
// still read correctly, with and without whole-body gzip.
func TestV1BackwardCompat(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			space, regions := buildBigSpace(t, 5)
			want := snapshotRegions(t, space, regions)
			e := NewEngine()
			e.ImageVersion = 1
			e.Gzip = gz
			e.Register(&sectionPlugin{sizes: []int{33}})
			var img bytes.Buffer
			if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
				t.Fatal(err)
			}
			parsed, err := ReadImage(bytes.NewReader(img.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if parsed.Version != 1 || parsed.Gzip != gz {
				t.Fatalf("version=%d gzip=%v", parsed.Version, parsed.Gzip)
			}
			fresh := addrspace.New()
			if err := RestoreRegions(parsed, fresh); err != nil {
				t.Fatal(err)
			}
			got := snapshotRegions(t, fresh, regions)
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("region %d differs after v1 restore", i)
				}
			}
			if sec, ok := parsed.Sections.Get("sec.0"); !ok || len(sec) != 33 {
				t.Fatalf("v1 section: ok=%v len=%d", ok, len(sec))
			}
		})
	}
}

// TestV1V2SameRestoredState: both formats restore the same memory.
func TestV1V2SameRestoredState(t *testing.T) {
	space, regions := buildBigSpace(t, 6)
	restored := func(version int) [][]byte {
		e := NewEngine()
		e.ImageVersion = version
		var img bytes.Buffer
		if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
			t.Fatal(err)
		}
		parsed, err := ReadImage(bytes.NewReader(img.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fresh := addrspace.New()
		if err := RestoreRegions(parsed, fresh); err != nil {
			t.Fatal(err)
		}
		return snapshotRegions(t, fresh, regions)
	}
	v1, v2 := restored(1), restored(2)
	for i := range v1 {
		if !bytes.Equal(v1[i], v2[i]) {
			t.Fatalf("region %d: v1 and v2 restores differ", i)
		}
	}
}

// TestConcurrentCheckpoint exercises the pipeline under the race
// detector: several checkpoints of one space run concurrently with
// lower-half mutation (writes and mmap/munmap churn). Lower-half regions
// are not checkpointed, so all concurrent accesses are disjoint.
func TestConcurrentCheckpoint(t *testing.T) {
	space, _ := buildBigSpace(t, 8)
	scratch, err := space.MMap(0, 8*addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfLower, "scratch")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8*addrspace.PageSize)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fillPattern(buf, uint64(i))
			if err := space.WriteAt(scratch, buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a, err := space.MMap(0, addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfLower, "churn")
			if err != nil {
				t.Error(err)
				return
			}
			if err := space.MUnmap(a, addrspace.PageSize); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var images [4][]byte
	var ckpt sync.WaitGroup
	for i := range images {
		ckpt.Add(1)
		go func(i int) {
			defer ckpt.Done()
			e := NewEngine()
			e.ShardSize = 2 * addrspace.PageSize
			var img bytes.Buffer
			if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
				t.Error(err)
				return
			}
			images[i] = img.Bytes()
		}(i)
	}
	ckpt.Wait()
	close(stop)
	wg.Wait()

	// The upper half never changed, so every concurrent image is
	// identical and restores correctly.
	for i := 1; i < len(images); i++ {
		if !bytes.Equal(images[0], images[i]) {
			t.Fatalf("concurrent image %d differs", i)
		}
	}
	img, err := ReadImage(bytes.NewReader(images[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreRegions(img, addrspace.New()); err != nil {
		t.Fatal(err)
	}
}

// TestStatsDurations: write and hook time are attributed separately.
func TestStatsDurations(t *testing.T) {
	space, _ := buildBigSpace(t, 4)
	e := NewEngine()
	e.Register(&sectionPlugin{sizes: []int{1024}})
	st, err := e.Checkpoint(context.Background(), io.Discard, space)
	if err != nil {
		t.Fatal(err)
	}
	if st.WriteDuration <= 0 {
		t.Fatalf("WriteDuration = %v", st.WriteDuration)
	}
	if st.Duration < st.WriteDuration {
		t.Fatalf("Duration %v < WriteDuration %v", st.Duration, st.WriteDuration)
	}
	if st.Duration < st.WriteDuration+st.HookDuration {
		t.Fatalf("Duration %v < write %v + hooks %v", st.Duration, st.WriteDuration, st.HookDuration)
	}
}

// TestSectionWriterStreams: the streaming section API accumulates writes
// and publishes on Close.
func TestSectionWriterStreams(t *testing.T) {
	s := NewSectionMap()
	w := s.Writer("log", 4)
	if _, ok := s.Get("log"); ok {
		t.Fatal("section visible before Close")
	}
	w.Write([]byte("abc"))
	w.Write([]byte("defgh"))
	w.Close()
	if got, ok := s.Get("log"); !ok || string(got) != "abcdefgh" {
		t.Fatalf("section = %q ok=%v", got, ok)
	}
	b := s.AddZero("zeros", 5)
	copy(b, "xy")
	if got, _ := s.Get("zeros"); string(got[:2]) != "xy" || len(got) != 5 {
		t.Fatalf("AddZero section = %q", got)
	}
}

// FuzzReadImage: the chunked decoder must reject arbitrary mutations
// without panicking or over-allocating. Seeds cover both formats, both
// compression modes, and truncations.
func FuzzReadImage(f *testing.F) {
	space, _ := buildBigSpace(f, 3)
	for _, cfg := range []struct {
		version int
		gz      bool
	}{{1, false}, {1, true}, {2, false}, {2, true}} {
		e := NewEngine()
		e.ImageVersion = cfg.version
		e.Gzip = cfg.gz
		e.ShardSize = 2 * addrspace.PageSize
		e.Register(&sectionPlugin{sizes: []int{100, 3000}})
		var img bytes.Buffer
		if _, err := e.Checkpoint(context.Background(), &img, space); err != nil {
			f.Fatal(err)
		}
		f.Add(img.Bytes())
		f.Add(img.Bytes()[:img.Len()/2])
	}
	f.Add([]byte("CRACIMG2garbage"))
	f.Add([]byte("CRACIMG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := ReadImage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed image must be internally consistent.
		for i, rd := range img.Regions {
			if uint64(len(rd.Data)) != rd.Len {
				t.Fatalf("region %d: len %d != header %d", i, len(rd.Data), rd.Len)
			}
		}
	})
}
