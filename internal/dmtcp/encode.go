package dmtcp

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
)

// ShardSize returns the shard grid the image was written with (0 when
// unknown, e.g. an image assembled in memory).
func (d *DeltaInfo) ShardSize() int { return d.shardSize }

// EncodeBase serializes a fully materialized image as a standalone v3
// base image under the caller-chosen identity id. It is the write half
// of chain compaction: ResolveChain materializes `base + k deltas`
// from stored bytes alone, and EncodeBase re-emits the result as a new
// base that keeps the old tip's identity — so deltas already recorded
// against the tip (parentID == id) still verify and apply against the
// compacted base, and the running session never pauses.
//
// The image must be complete (a base, or a delta after
// ApplyDelta/ResolveChain); shards flow through the same worker
// pipeline as live checkpoints, so output is byte-deterministic for
// any worker count. The engine's Gzip/ShardSize settings choose the
// output encoding; callers compacting an existing chain should mirror
// the chain's shard size so later deltas keep addressing the same
// grid.
func (e *Engine) EncodeBase(ctx context.Context, w io.Writer, img *Image, id uint64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if img == nil {
		return fmt.Errorf("%w: EncodeBase on a nil image", ErrBadImage)
	}
	if img.Delta != nil && !img.Delta.Materialized {
		return fmt.Errorf("%w: EncodeBase needs a materialized image", ErrDeltaChain)
	}
	if err := img.VerifyContent(); err != nil {
		return err
	}
	tw := newTrailerWriter(w)
	bw := bufio.NewWriterSize(tw, 256<<10)
	if err := e.encodeBaseBody(ctx, bw, img, id); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return tw.Finish()
}

// encodeBaseBody writes the v3 header tables and every shard of the
// materialized image, mirroring writeImageV3's base layout exactly.
func (e *Engine) encodeBaseBody(ctx context.Context, w io.Writer, img *Image, id uint64) error {
	shard := e.shardSize()
	sections := img.Sections
	if sections == nil {
		sections = NewSectionMap()
	}
	names := sections.Names()

	if _, err := w.Write(imageMagicV3[:]); err != nil {
		return err
	}
	var flags [4]byte
	if e.Gzip {
		flags[0] |= 1
	}
	if _, err := w.Write(flags[:]); err != nil {
		return err
	}
	if err := writeString(w, ""); err != nil { // a base names no parent
		return err
	}
	var u32 [4]byte
	var u64b [8]byte
	binary32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := w.Write(u32[:])
		return err
	}
	binary64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64b[:], v)
		_, err := w.Write(u64b[:])
		return err
	}
	if err := binary32(0); err != nil { // depth 0
		return err
	}
	if err := binary64(id); err != nil { // preserved identity
		return err
	}
	if err := binary64(0); err != nil { // no parent id
		return err
	}

	if err := binary32(uint32(len(img.Regions))); err != nil {
		return err
	}
	for i := range img.Regions {
		rd := &img.Regions[i]
		if err := binary64(rd.Start); err != nil {
			return err
		}
		if err := binary64(rd.Len); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(rd.Prot)}); err != nil {
			return err
		}
		if err := writeString(w, rd.Label); err != nil {
			return err
		}
	}
	if err := binary32(uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := binary64(uint64(len(data))); err != nil {
			return err
		}
		var sf byte
		if sections.Opaque(name) {
			sf |= 1
		}
		if _, err := w.Write([]byte{sf}); err != nil {
			return err
		}
	}
	if err := binary32(uint32(shard)); err != nil {
		return err
	}

	// Shard plan: every shard of every span, in layout order, all
	// sourced from the materialized payload (no address-space view).
	var jobs []shardJob
	spanIdx := uint32(0)
	for i := range img.Regions {
		rd := &img.Regions[i]
		data := rd.Data
		for off := 0; off < len(data); off += shard {
			n := len(data) - off
			if n > shard {
				n = shard
			}
			jobs = append(jobs, shardJob{src: data[off : off+n], rawLen: n,
				v3: true, spanIdx: spanIdx, spanOff: uint64(off), done: make(chan struct{})})
		}
		spanIdx++
	}
	for _, name := range names {
		data, _ := sections.Get(name)
		for off := 0; off < len(data); off += shard {
			n := len(data) - off
			if n > shard {
				n = shard
			}
			jobs = append(jobs, shardJob{src: data[off : off+n], rawLen: n,
				v3: true, spanIdx: spanIdx, spanOff: uint64(off), done: make(chan struct{})})
		}
		spanIdx++
	}
	if err := binary32(uint32(len(jobs))); err != nil {
		return err
	}
	// Every job carries src, so the nil view is never dereferenced.
	return e.runWritePipeline(ctx, w, nil, jobs)
}
