// Package cas implements chunk-level content-addressed storage for
// checkpoint images: an image stream is split into chunks keyed by the
// SHA-256 of their content, and the image itself shrinks to a small
// *manifest* — the interleaving of inline header bytes and chunk
// references that reproduces the original stream byte for byte.
//
// The chunker understands the v3 ("CRACIMG3") image format and cuts
// the stream on shard-frame boundaries: every shard's encoded payload
// becomes one chunk, while the image header tables and the 28-byte
// frame headers stay inline in the manifest. Because v3 shards are the
// unit of dirty tracking, two images that share shard content — a base
// and the 97%-clean state of a sibling session, consecutive
// generations of one chain, a thousand tenants loading the same model
// weights — share chunks, and a store that keys chunks by content
// stores each payload exactly once. Anything that is not a v3 image
// (v1/v2 images, arbitrary bytes) degrades to fixed-size chunking;
// reconstruction is always exact.
//
// The chunk key is SHA-256, not the FNV-1a hash the v3 body carries:
// FNV is fine for dirty detection (a collision re-emits or skips one
// shard of one chain, caught by the image trailer) but a storage key
// must not let two different payloads alias. The v3 body keeps its
// FNV-1a hashes untouched — the wire format does not change.
//
// This package speaks io.Writer and byte slices only; crac.NewCASStore
// adapts it to the Store surface.
package cas

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ChunkPrefix namespaces chunk entries inside a backing store; chunk
// names are ChunkPrefix + 64 hex digits of the SHA-256 key. Store
// listings shown to users filter the prefix out, and image names may
// not collide with it.
const ChunkPrefix = "cas-"

// manifestMagic heads every serialized manifest. It shares the "CRAC"
// family prefix but no image reader accepts it, so a manifest
// accidentally fed to dmtcp.ReadImage fails fast as ErrBadImage.
var manifestMagic = [8]byte{'C', 'R', 'A', 'C', 'C', 'A', 'S', '1'}

// imageMagicV3 mirrors the v3 image magic so the chunker can recognize
// shard-framed streams without importing the image package.
var imageMagicV3 = [8]byte{'C', 'R', 'A', 'C', 'I', 'M', 'G', '3'}

const (
	// rawChunkSize is the fixed chunk size for streams that are not v3
	// images — large enough to amortize per-chunk overhead, small
	// enough that partial overlap still dedups.
	rawChunkSize = 256 << 10
	// tailInlineMax bounds how much post-shard data (normally just the
	// 24-byte integrity trailer) stays inline before the chunker
	// switches to raw chunks.
	tailInlineMax = 4 << 10
	// Decoder caps, mirroring the v3 reader's: a header field beyond
	// them cannot come from our writer, so the chunker stops trusting
	// the structure and falls back to raw chunking.
	maxItemCount  = 1 << 20
	maxFrameBytes = 1 << 30
	// maxSegments bounds manifest decode against a hostile segment
	// count claim.
	maxSegments = 1 << 22
	// maxInlineSeg bounds one inline segment's length claim on decode.
	maxInlineSeg = 1 << 30
)

// ErrBadManifest reports bytes that are not a valid serialized
// manifest.
var ErrBadManifest = errors.New("cas: bad manifest")

// ChunkName returns the store name of the chunk keyed by sum.
func ChunkName(sum [32]byte) string {
	b := make([]byte, len(ChunkPrefix)+2*len(sum))
	copy(b, ChunkPrefix)
	hex.Encode(b[len(ChunkPrefix):], sum[:])
	return string(b)
}

// IsChunkName reports whether a store name is a chunk entry (as
// opposed to an image or manifest). Stores layered over a chunk
// namespace use it to hide chunks from listings and retention.
func IsChunkName(name string) bool {
	if len(name) != len(ChunkPrefix)+64 || name[:len(ChunkPrefix)] != ChunkPrefix {
		return false
	}
	for i := len(ChunkPrefix); i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// IsManifestHeader reports whether prefix begins with the manifest
// magic (prefix may be longer than the magic).
func IsManifestHeader(prefix []byte) bool {
	return len(prefix) >= len(manifestMagic) && bytes.Equal(prefix[:len(manifestMagic)], manifestMagic[:])
}

// Segment is one piece of a manifest: either literal inline bytes or a
// reference to a content-addressed chunk. The original stream is the
// concatenation of all segments in order.
type Segment struct {
	// Inline carries the segment's bytes directly; nil for a chunk
	// reference.
	Inline []byte
	// Sum is the SHA-256 key of the referenced chunk (chunk segments
	// only).
	Sum [32]byte
	// Length is the segment's size in the reconstructed stream. For a
	// chunk segment it equals the stored chunk's size.
	Length uint64
}

// IsChunk reports whether the segment references a chunk.
func (s *Segment) IsChunk() bool { return s.Inline == nil }

// ChunkName returns the store name of the referenced chunk.
func (s *Segment) ChunkName() string { return ChunkName(s.Sum) }

// Manifest is the content-addressed form of one stored image: the
// lineage metadata a retention or verification pass needs without
// touching any chunk, plus the segment list that reproduces the
// original stream.
type Manifest struct {
	// Version is the image format version the chunker recognized (3),
	// or 0 for an opaque stream chunked at fixed size.
	Version int
	// Gzip / Delta / Parent / Depth mirror the v3 image prologue, so
	// lineage walks (retention closures, chain verification planning)
	// read the manifest alone. Zero values for opaque streams.
	Gzip   bool
	Delta  bool
	Parent string
	Depth  int
	// Length is the total reconstructed stream size.
	Length uint64
	// Segments reproduce the stream in order.
	Segments []Segment
}

// ChunkRefs returns the names of every chunk the manifest references,
// in stream order (duplicates preserved).
func (m *Manifest) ChunkRefs() []string {
	var out []string
	for i := range m.Segments {
		if m.Segments[i].IsChunk() {
			out = append(out, m.Segments[i].ChunkName())
		}
	}
	return out
}

// Encode serializes the manifest.
func (m *Manifest) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(manifestMagic[:])
	var flags byte
	if m.Gzip {
		flags |= 1
	}
	if m.Delta {
		flags |= 2
	}
	bw.WriteByte(byte(m.Version))
	bw.WriteByte(flags)
	if len(m.Parent) > 0xffff {
		return fmt.Errorf("cas: parent name too long (%d)", len(m.Parent))
	}
	var u [8]byte
	binary.LittleEndian.PutUint16(u[:2], uint16(len(m.Parent)))
	bw.Write(u[:2])
	bw.WriteString(m.Parent)
	binary.LittleEndian.PutUint32(u[:4], uint32(m.Depth))
	bw.Write(u[:4])
	binary.LittleEndian.PutUint64(u[:], m.Length)
	bw.Write(u[:])
	binary.LittleEndian.PutUint32(u[:4], uint32(len(m.Segments)))
	bw.Write(u[:4])
	for i := range m.Segments {
		seg := &m.Segments[i]
		if seg.IsChunk() {
			bw.WriteByte(1)
			bw.Write(seg.Sum[:])
			binary.LittleEndian.PutUint32(u[:4], uint32(seg.Length))
			bw.Write(u[:4])
			continue
		}
		bw.WriteByte(0)
		binary.LittleEndian.PutUint32(u[:4], uint32(len(seg.Inline)))
		bw.Write(u[:4])
		bw.Write(seg.Inline)
	}
	return bw.Flush()
}

// readPrologue parses everything before the segment list.
func readPrologue(r io.Reader) (*Manifest, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadManifest, err)
	}
	if !bytes.Equal(hdr[:], manifestMagic[:]) {
		return nil, fmt.Errorf("%w: magic %q", ErrBadManifest, hdr[:])
	}
	var vf [2]byte
	if _, err := io.ReadFull(r, vf[:]); err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrBadManifest, err)
	}
	m := &Manifest{Version: int(vf[0]), Gzip: vf[1]&1 != 0, Delta: vf[1]&2 != 0}
	var u [8]byte
	if _, err := io.ReadFull(r, u[:2]); err != nil {
		return nil, fmt.Errorf("%w: parent: %v", ErrBadManifest, err)
	}
	if n := binary.LittleEndian.Uint16(u[:2]); n > 0 {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: parent: %v", ErrBadManifest, err)
		}
		m.Parent = string(b)
	}
	if _, err := io.ReadFull(r, u[:4]); err != nil {
		return nil, fmt.Errorf("%w: depth: %v", ErrBadManifest, err)
	}
	m.Depth = int(binary.LittleEndian.Uint32(u[:4]))
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return nil, fmt.Errorf("%w: length: %v", ErrBadManifest, err)
	}
	m.Length = binary.LittleEndian.Uint64(u[:])
	return m, nil
}

// ReadManifestMeta parses only a manifest's prologue — format version,
// lineage, total length — without decoding the segment list. Lineage
// walks over stores holding manifests use it the way
// dmtcp.ReadImageMeta serves plain images.
func ReadManifestMeta(r io.Reader) (*Manifest, error) {
	return readPrologue(r)
}

// DecodeManifest parses a full manifest, segments included, and
// verifies that the segment lengths add up to the recorded stream
// length.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	m, err := readPrologue(r)
	if err != nil {
		return nil, err
	}
	var u [4]byte
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return nil, fmt.Errorf("%w: segment count: %v", ErrBadManifest, err)
	}
	nSegs := binary.LittleEndian.Uint32(u[:])
	if nSegs > maxSegments {
		return nil, fmt.Errorf("%w: segment count %d", ErrBadManifest, nSegs)
	}
	var total uint64
	m.Segments = make([]Segment, 0, nSegs)
	for i := uint32(0); i < nSegs; i++ {
		var kind [1]byte
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return nil, fmt.Errorf("%w: segment %d: %v", ErrBadManifest, i, err)
		}
		switch kind[0] {
		case 0:
			if _, err := io.ReadFull(r, u[:]); err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrBadManifest, i, err)
			}
			n := binary.LittleEndian.Uint32(u[:])
			if n == 0 || n > maxInlineSeg {
				return nil, fmt.Errorf("%w: segment %d inline length %d", ErrBadManifest, i, n)
			}
			b := make([]byte, n)
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrBadManifest, i, err)
			}
			m.Segments = append(m.Segments, Segment{Inline: b, Length: uint64(n)})
			total += uint64(n)
		case 1:
			var seg Segment
			if _, err := io.ReadFull(r, seg.Sum[:]); err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrBadManifest, i, err)
			}
			if _, err := io.ReadFull(r, u[:]); err != nil {
				return nil, fmt.Errorf("%w: segment %d: %v", ErrBadManifest, i, err)
			}
			n := binary.LittleEndian.Uint32(u[:])
			if n == 0 || n > maxFrameBytes {
				return nil, fmt.Errorf("%w: segment %d chunk length %d", ErrBadManifest, i, n)
			}
			seg.Length = uint64(n)
			// A chunk reference must carry a non-nil (if empty-capacity)
			// Inline==nil marker; Sum/Length suffice.
			m.Segments = append(m.Segments, seg)
			total += uint64(n)
		default:
			return nil, fmt.Errorf("%w: segment %d kind %d", ErrBadManifest, i, kind[0])
		}
	}
	if total != m.Length {
		return nil, fmt.Errorf("%w: segments cover %d bytes, manifest claims %d", ErrBadManifest, total, m.Length)
	}
	return m, nil
}

// chunkBufPool recycles chunk staging buffers across images, so a
// steady checkpoint cadence hashes and stages without allocating.
var chunkBufPool sync.Pool

// getBuf returns a pooled buffer with at least n usable bytes.
func getBuf(n int) *[]byte {
	if bp, _ := chunkBufPool.Get().(*[]byte); bp != nil && cap(*bp) >= n {
		*bp = (*bp)[:cap(*bp)]
		return bp
	}
	b := make([]byte, n)
	return &b
}

// ReleaseBuf returns a staging buffer handed to a Sink back to the
// pool. Safe on nil.
func ReleaseBuf(bp *[]byte) {
	if bp != nil {
		chunkBufPool.Put(bp)
	}
}

// Sink receives one completed chunk: name is the chunk's store name
// (ChunkName of the content key), and the chunk's bytes are
// (*buf)[:n]. Ownership of buf transfers to the sink, which must pass
// it to ReleaseBuf once the bytes are no longer needed — immediately
// for a dedup hit, after upload otherwise.
type Sink func(name string, buf *[]byte, n int) error

// parser states of the v3-aware chunker.
type parseState int

const (
	stMagic        parseState = iota // 8 bytes: image magic
	stFlags                          // 4 bytes
	stParentLen                      // 2 bytes
	stParentStr                      // parent name
	stIDs                            // depth u32 + selfID u64 + parentID u64
	stRegionCount                    // u32
	stRegionFixed                    // start u64 + len u64 + prot byte
	stRegionLblLen                   // u16
	stRegionLblStr                   // label
	stSectionCount                   // u32
	stSecNameLen                     // u16
	stSecNameStr                     // name
	stSecFixed                       // size u64 + flags byte
	stShardMeta                      // shardSize u32 + shardCount u32
	stShardHdr                       // 28-byte v3 frame header
	stShardPayload                   // encLen chunk bytes
	stTail                           // post-shard bytes (trailer), inline
	stRaw                            // fixed-size fallback chunking
)

// Chunker splits a stream written into it into content-addressed
// chunks, emitting each through the sink and accumulating the
// manifest. It is an io.Writer; call Finish after the last Write.
//
// The hot path — staging a shard payload and hashing it — runs on
// pooled buffers and the allocation-free sha256.Sum256, so chunking
// adds no per-byte allocations to the checkpoint write path.
type Chunker struct {
	sink Sink
	man  Manifest

	st   parseState
	need int    // token bytes outstanding in a structured state
	tok  []byte // token accumulator
	err  error

	inline  []byte // pending inline bytes (flushed at chunk boundaries)
	tailLen int

	stage    *[]byte // staging buffer of the chunk being accumulated
	staged   int
	chunkLen int

	remRegions  uint32
	remSections uint32
	remShards   uint32

	total    uint64
	finished bool
}

// NewChunker returns a chunker emitting chunks into sink (which may be
// nil: chunks are then dropped after keying, useful for dry-run
// dedup analysis).
func NewChunker(sink Sink) *Chunker {
	c := &Chunker{sink: sink}
	c.setTok(stMagic, len(imageMagicV3))
	return c
}

func (c *Chunker) setTok(st parseState, need int) {
	c.st = st
	c.need = need
	c.tok = c.tok[:0]
}

// flushInline closes the pending inline run into a segment.
func (c *Chunker) flushInline() {
	if len(c.inline) > 0 {
		c.man.Segments = append(c.man.Segments, Segment{Inline: c.inline, Length: uint64(len(c.inline))})
		c.inline = nil
	}
}

// enterRaw abandons structured parsing: all further input is chunked
// at fixed size. Bytes already inlined stay inline. The token that led
// here was consumed by step (and inlined there), so it must not linger
// for Finish to inline again.
func (c *Chunker) enterRaw() {
	c.st = stRaw
	c.tok = c.tok[:0]
	c.chunkLen = rawChunkSize
	c.staged = 0
	c.stage = getBuf(rawChunkSize)
}

// beginChunk starts staging one shard payload of n bytes (same token
// hygiene as enterRaw).
func (c *Chunker) beginChunk(n int) {
	c.st = stShardPayload
	c.tok = c.tok[:0]
	c.chunkLen = n
	c.staged = 0
	c.stage = getBuf(n)
}

// emitChunk keys and hands off the staged chunk, then advances.
func (c *Chunker) emitChunk() error {
	data := (*c.stage)[:c.staged]
	sum := sha256.Sum256(data)
	c.flushInline()
	c.man.Segments = append(c.man.Segments, Segment{Sum: sum, Length: uint64(c.staged)})
	buf, n := c.stage, c.staged
	c.stage, c.staged = nil, 0
	if c.sink != nil {
		if err := c.sink(ChunkName(sum), buf, n); err != nil {
			return err
		}
	} else {
		ReleaseBuf(buf)
	}
	switch c.st {
	case stShardPayload:
		c.remShards--
		c.nextShardOrTail()
	case stRaw:
		c.chunkLen = rawChunkSize
		c.stage = getBuf(rawChunkSize)
	}
	return nil
}

func (c *Chunker) nextRegionOrSections() {
	if c.remRegions > 0 {
		c.setTok(stRegionFixed, 17)
	} else {
		c.setTok(stSectionCount, 4)
	}
}

func (c *Chunker) nextSectionOrShards() {
	if c.remSections > 0 {
		c.setTok(stSecNameLen, 2)
	} else {
		c.setTok(stShardMeta, 8)
	}
}

func (c *Chunker) nextShardOrTail() {
	if c.remShards > 0 {
		c.setTok(stShardHdr, 28)
	} else {
		c.st = stTail
		c.tok = c.tok[:0]
		c.tailLen = 0
	}
}

// step consumes one completed token. The token's bytes are part of the
// reconstructed stream, so they always land inline; only shard
// payloads become chunks.
func (c *Chunker) step() error {
	tok := c.tok
	c.inline = append(c.inline, tok...)
	switch c.st {
	case stMagic:
		if !bytes.Equal(tok, imageMagicV3[:]) {
			c.enterRaw()
			return nil
		}
		c.man.Version = 3
		c.setTok(stFlags, 4)
	case stFlags:
		c.man.Gzip = tok[0]&1 != 0
		c.man.Delta = tok[0]&2 != 0
		c.setTok(stParentLen, 2)
	case stParentLen:
		if n := int(binary.LittleEndian.Uint16(tok)); n > 0 {
			c.setTok(stParentStr, n)
		} else {
			c.setTok(stIDs, 20)
		}
	case stParentStr:
		c.man.Parent = string(tok)
		c.setTok(stIDs, 20)
	case stIDs:
		c.man.Depth = int(binary.LittleEndian.Uint32(tok[0:4]))
		c.setTok(stRegionCount, 4)
	case stRegionCount:
		n := binary.LittleEndian.Uint32(tok)
		if n > maxItemCount {
			c.enterRaw()
			return nil
		}
		c.remRegions = n
		c.nextRegionOrSections()
	case stRegionFixed:
		c.setTok(stRegionLblLen, 2)
	case stRegionLblLen:
		if n := int(binary.LittleEndian.Uint16(tok)); n > 0 {
			c.setTok(stRegionLblStr, n)
		} else {
			c.remRegions--
			c.nextRegionOrSections()
		}
	case stRegionLblStr:
		c.remRegions--
		c.nextRegionOrSections()
	case stSectionCount:
		n := binary.LittleEndian.Uint32(tok)
		if n > maxItemCount {
			c.enterRaw()
			return nil
		}
		c.remSections = n
		c.nextSectionOrShards()
	case stSecNameLen:
		if n := int(binary.LittleEndian.Uint16(tok)); n > 0 {
			c.setTok(stSecNameStr, n)
		} else {
			c.setTok(stSecFixed, 9)
		}
	case stSecNameStr:
		c.setTok(stSecFixed, 9)
	case stSecFixed:
		c.remSections--
		c.nextSectionOrShards()
	case stShardMeta:
		shardSize := binary.LittleEndian.Uint32(tok[0:4])
		shardCount := binary.LittleEndian.Uint32(tok[4:8])
		if shardSize == 0 || shardSize > maxFrameBytes || shardCount > maxItemCount {
			c.enterRaw()
			return nil
		}
		c.remShards = shardCount
		c.nextShardOrTail()
	case stShardHdr:
		encLen := binary.LittleEndian.Uint32(tok[16:20])
		if encLen == 0 || encLen > maxFrameBytes {
			c.enterRaw()
			return nil
		}
		c.beginChunk(int(encLen))
	default:
		return fmt.Errorf("cas: internal: step in state %d", c.st)
	}
	return nil
}

// Write implements io.Writer.
func (c *Chunker) Write(p []byte) (int, error) {
	if c.finished {
		return 0, errors.New("cas: Write after Finish")
	}
	if c.err != nil {
		return 0, c.err
	}
	total := len(p)
	for len(p) > 0 {
		switch c.st {
		case stShardPayload, stRaw:
			n := c.chunkLen - c.staged
			if n > len(p) {
				n = len(p)
			}
			copy((*c.stage)[c.staged:], p[:n])
			c.staged += n
			c.total += uint64(n)
			p = p[n:]
			if c.staged == c.chunkLen {
				if err := c.emitChunk(); err != nil {
					c.err = err
					return total - len(p), err
				}
			}
		case stTail:
			if c.tailLen+len(p) > tailInlineMax {
				// More tail than any trailer: stop inlining, chunk it.
				c.enterRaw()
				continue
			}
			c.inline = append(c.inline, p...)
			c.tailLen += len(p)
			c.total += uint64(len(p))
			p = nil
		default:
			n := c.need - len(c.tok)
			if n > len(p) {
				n = len(p)
			}
			c.tok = append(c.tok, p[:n]...)
			c.total += uint64(n)
			p = p[n:]
			if len(c.tok) == c.need {
				if err := c.step(); err != nil {
					c.err = err
					return total - len(p), err
				}
			}
		}
	}
	return total, nil
}

// Finish closes the stream and returns the manifest. A stream that
// ended mid-token or mid-shard (a truncated or foreign input) still
// reconstructs exactly: the partial bytes land inline.
func (c *Chunker) Finish() (*Manifest, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.finished {
		return nil, errors.New("cas: Finish twice")
	}
	c.finished = true
	if len(c.tok) > 0 {
		c.inline = append(c.inline, c.tok...)
		c.tok = nil
	}
	if c.staged > 0 {
		switch c.st {
		case stRaw:
			// A short final raw chunk is a complete chunk.
			if err := c.emitChunk(); err != nil {
				c.err = err
				return nil, err
			}
		case stShardPayload:
			// Truncated shard payload: keep it inline so the manifest
			// reproduces the (broken) stream exactly.
			c.inline = append(c.inline, (*c.stage)[:c.staged]...)
			ReleaseBuf(c.stage)
			c.stage = nil
			c.staged = 0
		}
	} else if c.stage != nil {
		ReleaseBuf(c.stage)
		c.stage = nil
	}
	c.flushInline()
	c.man.Length = c.total
	return &c.man, nil
}
