package cas

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dmtcp"
)

// chunkMap is a test sink collecting chunks by name.
type chunkMap map[string][]byte

func (m chunkMap) sink(name string, buf *[]byte, n int) error {
	if _, ok := m[name]; !ok {
		m[name] = append([]byte(nil), (*buf)[:n]...)
	}
	ReleaseBuf(buf)
	return nil
}

// reconstruct reassembles the original stream from a manifest and its
// chunks.
func reconstruct(t *testing.T, man *Manifest, chunks chunkMap) []byte {
	t.Helper()
	var out bytes.Buffer
	for i := range man.Segments {
		seg := &man.Segments[i]
		if !seg.IsChunk() {
			out.Write(seg.Inline)
			continue
		}
		data, ok := chunks[seg.ChunkName()]
		if !ok {
			t.Fatalf("segment %d references missing chunk %s", i, seg.ChunkName())
		}
		if uint64(len(data)) != seg.Length {
			t.Fatalf("segment %d: chunk is %d bytes, manifest says %d", i, len(data), seg.Length)
		}
		out.Write(data)
	}
	return out.Bytes()
}

// feed writes data into w in irregular slice sizes, exercising token
// reassembly across Write boundaries.
func feed(t *testing.T, w *Chunker, data []byte) {
	t.Helper()
	sizes := []int{1, 7, 13, 64, 1000, 4096, 1 << 17}
	for i, off := 0, 0; off < len(data); i++ {
		n := sizes[i%len(sizes)]
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := w.Write(data[off : off+n]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		off += n
	}
}

// testV3Image encodes a synthetic-but-genuine v3 base image (regions,
// sections, shard frames, integrity trailer) and returns its bytes.
func testV3Image(t *testing.T, seed int64, size int, shard int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	rng.Read(data)
	secs := dmtcp.NewSectionMap()
	sec := make([]byte, size/4+17)
	rng.Read(sec)
	secs.Add("test-section", sec)
	img := &dmtcp.Image{
		Version: 3,
		Regions: []dmtcp.RegionData{
			{Start: 0x7f0000000000, Len: uint64(len(data)), Label: "heap", Data: data},
		},
		Sections: secs,
	}
	eng := &dmtcp.Engine{ShardSize: shard}
	var buf bytes.Buffer
	if err := eng.EncodeBase(context.Background(), &buf, img, 42); err != nil {
		t.Fatalf("EncodeBase: %v", err)
	}
	return buf.Bytes()
}

func TestChunkerV3Roundtrip(t *testing.T) {
	stream := testV3Image(t, 1, 1<<20, 64<<10)
	chunks := make(chunkMap)
	c := NewChunker(chunks.sink)
	feed(t, c, stream)
	man, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if man.Version != 3 {
		t.Fatalf("manifest version = %d, want 3 (structured parse fell back to raw)", man.Version)
	}
	if len(chunks) == 0 {
		t.Fatal("no chunks emitted for a shard-framed image")
	}
	if man.Length != uint64(len(stream)) {
		t.Fatalf("manifest length %d, stream length %d", man.Length, len(stream))
	}
	got := reconstruct(t, man, chunks)
	if !bytes.Equal(got, stream) {
		t.Fatal("reconstructed stream differs from original")
	}
	// The payload went into chunks, not the manifest: inline bytes are
	// bounded metadata (headers, frame headers, trailer).
	var inline uint64
	for i := range man.Segments {
		if !man.Segments[i].IsChunk() {
			inline += man.Segments[i].Length
		}
	}
	if inline > uint64(len(stream))/10 {
		t.Fatalf("inline bytes %d exceed 10%% of the %d-byte stream", inline, len(stream))
	}
	// The stream parses back as the image it was.
	if _, err := dmtcp.ReadImage(bytes.NewReader(got)); err != nil {
		t.Fatalf("reconstructed stream does not parse as an image: %v", err)
	}
}

func TestChunkerDedupsIdenticalShards(t *testing.T) {
	// Two images with identical region content must share every payload
	// chunk.
	stream := testV3Image(t, 7, 1<<20, 64<<10)
	chunks := make(chunkMap)
	for i := 0; i < 2; i++ {
		c := NewChunker(chunks.sink)
		if _, err := c.Write(stream); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if _, err := c.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	var chunkBytes int
	for _, b := range chunks {
		chunkBytes += len(b)
	}
	if chunkBytes > len(stream) {
		t.Fatalf("two identical images stored %d chunk bytes, more than one image (%d)", chunkBytes, len(stream))
	}
}

func TestChunkerRawFallback(t *testing.T) {
	// Not a v3 image: exact reconstruction through fixed-size chunks.
	rng := rand.New(rand.NewSource(3))
	stream := make([]byte, rawChunkSize*2+12345)
	rng.Read(stream)
	chunks := make(chunkMap)
	c := NewChunker(chunks.sink)
	feed(t, c, stream)
	man, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if man.Version != 0 {
		t.Fatalf("manifest version = %d, want 0 for a foreign stream", man.Version)
	}
	if got := reconstruct(t, man, chunks); !bytes.Equal(got, stream) {
		t.Fatal("reconstructed stream differs from original")
	}
}

func TestChunkerTruncatedV3StaysExact(t *testing.T) {
	stream := testV3Image(t, 11, 1<<19, 64<<10)
	cut := len(stream) - len(stream)/3 // mid-shard somewhere
	chunks := make(chunkMap)
	c := NewChunker(chunks.sink)
	if _, err := c.Write(stream[:cut]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	man, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := reconstruct(t, man, chunks); !bytes.Equal(got, stream[:cut]) {
		t.Fatal("truncated stream did not reconstruct exactly")
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	stream := testV3Image(t, 5, 1<<19, 32<<10)
	c := NewChunker(nil) // dry run: chunks dropped, manifest kept
	feed(t, c, stream)
	man, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	var buf bytes.Buffer
	if err := man.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !IsManifestHeader(buf.Bytes()) {
		t.Fatal("encoded manifest does not carry the manifest magic")
	}
	meta, err := ReadManifestMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadManifestMeta: %v", err)
	}
	if meta.Version != man.Version || meta.Length != man.Length || meta.Parent != man.Parent {
		t.Fatalf("meta prologue %+v does not match manifest", meta)
	}
	dec, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if len(dec.Segments) != len(man.Segments) {
		t.Fatalf("decoded %d segments, want %d", len(dec.Segments), len(man.Segments))
	}
	for i := range man.Segments {
		a, b := &man.Segments[i], &dec.Segments[i]
		if a.IsChunk() != b.IsChunk() || a.Length != b.Length || a.Sum != b.Sum ||
			!bytes.Equal(a.Inline, b.Inline) {
			t.Fatalf("segment %d mismatch after decode", i)
		}
	}
	// Corrupting the length claim must be caught.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[12+2+4] ^= 0x01 // a byte of the u64 length field (after magic+ver+flags+parentLen(0)+depth)
	if _, err := DecodeManifest(bytes.NewReader(bad)); err == nil {
		t.Fatal("DecodeManifest accepted a manifest whose segment sum mismatches its length")
	}
}

func TestChunkName(t *testing.T) {
	sum := sha256.Sum256([]byte("x"))
	name := ChunkName(sum)
	if !IsChunkName(name) {
		t.Fatalf("IsChunkName(%q) = false", name)
	}
	for _, bad := range []string{"", "cas-", "cas-XYZ", name[:len(name)-1], name + "0",
		"CAS-" + name[4:], "ckpt-000001", name[:len(name)-1] + "G"} {
		if IsChunkName(bad) {
			t.Fatalf("IsChunkName(%q) = true", bad)
		}
	}
}

// TestChunkerStagingPooled is the alloc regression for the staging
// path: chunking a large stream must reuse pooled staging buffers, not
// allocate per chunk. Measured in bytes (TotalAlloc), since an
// unpooled regression shows up as ~stream-size allocation while the
// pooled path stays near one chunk buffer.
func TestChunkerStagingPooled(t *testing.T) {
	stream := make([]byte, 8<<20)
	rand.New(rand.NewSource(9)).Read(stream) // raw mode: maximal chunk traffic
	run := func() {
		c := NewChunker(func(name string, buf *[]byte, n int) error {
			ReleaseBuf(buf)
			return nil
		})
		if _, err := c.Write(stream); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if _, err := c.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	run() // warm the pool
	var best uint64
	for i := 0; i < 5; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run()
		runtime.ReadMemStats(&after)
		d := after.TotalAlloc - before.TotalAlloc
		if i == 0 || d < best {
			best = d
		}
	}
	// 8 MB of stream through 256 KiB chunks: pooled staging should stay
	// around one or two chunk buffers plus manifest bookkeeping. A
	// per-chunk allocation regression lands at ≥ 8 MB.
	if best > 4<<20 {
		t.Fatalf("chunking 8 MB allocated %d bytes (best of 5); staging buffers are not pooled", best)
	}
}

func TestChunkerWriteAfterFinish(t *testing.T) {
	c := NewChunker(nil)
	if _, err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("Write after Finish succeeded")
	}
	if _, err := c.Finish(); err == nil {
		t.Fatal("second Finish succeeded")
	}
}

func TestChunkerSinkError(t *testing.T) {
	boom := fmt.Errorf("boom")
	c := NewChunker(func(string, *[]byte, int) error { return boom })
	big := make([]byte, rawChunkSize*2)
	if _, err := c.Write(big); err != boom {
		t.Fatalf("Write error = %v, want sink's", err)
	}
	if _, err := c.Finish(); err != boom {
		t.Fatalf("Finish error = %v, want sink's", err)
	}
}
