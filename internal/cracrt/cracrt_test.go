package cracrt

import (
	"errors"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/fsgs"
	"repro/internal/gpusim"
	"repro/internal/loader"
	"repro/internal/replaylog"
)

// buildRT constructs a CRAC runtime over a fresh space+library, like the
// session does.
func buildRT(t *testing.T) (*Runtime, *cuda.Library, *addrspace.Space) {
	t.Helper()
	space := addrspace.New()
	helper, err := loader.NewLower(space).Load(loader.HelperSpec(Symbols))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := cuda.NewLibrary(cuda.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Destroy)
	entries := make(EntryTable)
	for _, s := range Symbols {
		a, ok := helper.Entry(s)
		if !ok {
			t.Fatalf("missing entry %s", s)
		}
		entries[s] = a
	}
	return New(lib, entries, fsgs.None{}), lib, space
}

func TestLoggingOfResourceCalls(t *testing.T) {
	rt, _, _ := buildRT(t)
	a, err := rt.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Free(a); err != nil {
		t.Fatal(err)
	}
	s, _ := rt.StreamCreate()
	_ = rt.StreamDestroy(s)
	fat, _ := rt.RegisterFatBinary("m")
	_ = rt.RegisterFunction(fat, "k", func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {})
	entries := rt.Log().Entries()
	wantKinds := []replaylog.Kind{
		replaylog.KindMalloc, replaylog.KindFree,
		replaylog.KindStreamCreate, replaylog.KindStreamDestroy,
		replaylog.KindRegisterFatBinary, replaylog.KindRegisterFunction,
	}
	if len(entries) != len(wantKinds) {
		t.Fatalf("log = %v", entries)
	}
	for i, k := range wantKinds {
		if entries[i].Kind != k {
			t.Fatalf("entry %d kind = %v, want %v", i, entries[i].Kind, k)
		}
	}
}

func TestNonResourceCallsNotLogged(t *testing.T) {
	rt, _, _ := buildRT(t)
	d, _ := rt.Malloc(64)
	before := rt.Log().Len()
	_ = rt.Memset(d, 1, 64)
	_ = rt.DeviceSynchronize()
	if rt.Log().Len() != before {
		t.Fatal("non-resource calls were logged")
	}
}

func TestCountersFormula(t *testing.T) {
	rt, _, _ := buildRT(t)
	fat, _ := rt.RegisterFatBinary("m")
	_ = rt.RegisterFunction(fat, "k", func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {})
	d, _ := rt.Malloc(64)
	_ = rt.Memset(d, 0, 64)
	for i := 0; i < 5; i++ {
		if err := rt.LaunchKernel(fat, "k", gpusim.LaunchConfig{}, crt.DefaultStream); err != nil {
			t.Fatal(err)
		}
	}
	_ = rt.DeviceSynchronize()
	c := rt.Counters()
	if c.LaunchKernel != 5 {
		t.Fatalf("launches = %d", c.LaunchKernel)
	}
	// 3 crossings per launch per the paper's formula.
	if got := c.TotalCUDACalls(); got != 3*5+c.OtherCalls {
		t.Fatalf("total = %d", got)
	}
}

func TestSwitcherCrossings(t *testing.T) {
	space := addrspace.New()
	helper, _ := loader.NewLower(space).Load(loader.HelperSpec(Symbols))
	lib, _ := cuda.NewLibrary(cuda.Config{Space: space})
	defer lib.Destroy()
	entries := make(EntryTable)
	for _, s := range Symbols {
		a, _ := helper.Entry(s)
		entries[s] = a
	}
	sw := fsgs.NewFSGSBase()
	rt := New(lib, entries, sw)
	d, _ := rt.Malloc(64)
	_ = rt.Memset(d, 0, 64)
	// Each call is one Enter+Exit pair.
	if got := sw.Switches(); got != 4 {
		t.Fatalf("switches = %d, want 4", got)
	}
	fat, _ := rt.RegisterFatBinary("m")
	_ = rt.RegisterFunction(fat, "k", func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {})
	base := sw.Switches()
	_ = rt.LaunchKernel(fat, "k", gpusim.LaunchConfig{}, crt.DefaultStream)
	// A launch crosses three times: push, pop, launch (×2 for enter+exit).
	if got := sw.Switches() - base; got != 6 {
		t.Fatalf("launch switches = %d, want 6", got)
	}
}

func TestRebindReplaysToSameAddresses(t *testing.T) {
	rt, _, _ := buildRT(t)
	kern := func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {}
	fat, _ := rt.RegisterFatBinary("mod")
	_ = rt.RegisterFunction(fat, "k", kern)
	a, _ := rt.Malloc(1024)
	b, _ := rt.Malloc(2048)
	_ = rt.Free(a)
	c, _ := rt.Malloc(512)
	s1, _ := rt.StreamCreate()
	s2, _ := rt.StreamCreate()
	_ = rt.StreamDestroy(s1)
	ev, _ := rt.EventCreate()

	// Fresh lower half (new space, like a new process).
	space2 := addrspace.New()
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(Symbols))
	lib2, err := cuda.NewLibrary(cuda.Config{Space: space2})
	if err != nil {
		t.Fatal(err)
	}
	defer lib2.Destroy()
	entries2 := make(EntryTable)
	for _, s := range Symbols {
		addr, _ := helper2.Entry(s)
		entries2[s] = addr
	}
	if err := rt.Rebind(lib2, entries2, nil); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	// Active allocations reappear at the original addresses.
	act := lib2.ActiveDeviceMallocs()
	if len(act) != 2 || act[0].Addr != b || act[1].Addr != c {
		t.Fatalf("active after replay = %+v (want %#x, %#x)", act, b, c)
	}
	// The surviving stream and event work; the destroyed stream does not.
	if err := rt.StreamSynchronize(s2); err != nil {
		t.Fatalf("restored stream: %v", err)
	}
	if err := rt.StreamSynchronize(s1); err == nil {
		t.Fatal("destroyed stream resurrected")
	}
	if err := rt.EventRecord(ev, s2); err != nil {
		t.Fatalf("restored event: %v", err)
	}
	// The fat binary was re-registered with a patched handle.
	if err := rt.LaunchKernel(fat, "k", gpusim.LaunchConfig{}, s2); err != nil {
		t.Fatalf("launch after rebind: %v", err)
	}
	// New handles after rebind do not collide with pre-rebind ones.
	s3, _ := rt.StreamCreate()
	if s3 == s1 || s3 == s2 {
		t.Fatalf("handle collision: %d", s3)
	}
}

func TestRebindDetectsAddressMismatch(t *testing.T) {
	rt, _, _ := buildRT(t)
	if _, err := rt.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	// Sabotage: a fresh library whose arena placement differs (an extra
	// region shifts the deterministic layout, as ASLR would).
	space2 := addrspace.New()
	if _, err := space2.MMap(0, addrspace.PageSize, addrspace.ProtRW, 0, addrspace.HalfLower, "intruder"); err != nil {
		t.Fatal(err)
	}
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(Symbols))
	lib2, _ := cuda.NewLibrary(cuda.Config{Space: space2})
	defer lib2.Destroy()
	entries2 := make(EntryTable)
	for _, s := range Symbols {
		addr, _ := helper2.Entry(s)
		entries2[s] = addr
	}
	err := rt.Rebind(lib2, entries2, nil)
	if !errors.Is(err, ErrReplayMismatch) {
		t.Fatalf("err = %v, want ErrReplayMismatch", err)
	}
}

func TestRebindWithExternalLogAndKernelTable(t *testing.T) {
	// Cross-process restore: the log comes from the image and kernels
	// resolve from a registered table.
	rt, _, _ := buildRT(t)
	log := replaylog.New()
	log.Append(replaylog.Entry{Kind: replaylog.KindRegisterFatBinary, Handle: 1, Module: "app"})
	log.Append(replaylog.Entry{Kind: replaylog.KindRegisterFunction, Handle: 1, Name: "k"})
	log.Append(replaylog.Entry{Kind: replaylog.KindStreamCreate, Handle: 1})

	space2 := addrspace.New()
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(Symbols))
	lib2, _ := cuda.NewLibrary(cuda.Config{Space: space2})
	defer lib2.Destroy()
	entries2 := make(EntryTable)
	for _, s := range Symbols {
		addr, _ := helper2.Entry(s)
		entries2[s] = addr
	}
	// Without the kernel table, replay cannot resolve "k".
	err := rt.Rebind(lib2, entries2, log)
	if err == nil {
		t.Fatal("rebind resolved an unknown kernel")
	}
	rt2, _, _ := buildRT(t)
	rt2.RegisterKernelTable("app", map[string]cuda.Kernel{
		"k": func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {},
	})
	space3 := addrspace.New()
	helper3, _ := loader.NewLower(space3).Load(loader.HelperSpec(Symbols))
	lib3, _ := cuda.NewLibrary(cuda.Config{Space: space3})
	defer lib3.Destroy()
	entries3 := make(EntryTable)
	for _, s := range Symbols {
		addr, _ := helper3.Entry(s)
		entries3[s] = addr
	}
	if err := rt2.Rebind(lib3, entries3, log); err != nil {
		t.Fatalf("rebind with kernel table: %v", err)
	}
	if err := rt2.LaunchKernel(crt.FatBinHandle(1), "k", gpusim.LaunchConfig{}, crt.StreamHandle(1)); err != nil {
		t.Fatalf("launch on restored handles: %v", err)
	}
	_ = helper2
	_ = helper3
}

func TestMissingEntryPointFails(t *testing.T) {
	space := addrspace.New()
	lib, _ := cuda.NewLibrary(cuda.Config{Space: space})
	defer lib.Destroy()
	rt := New(lib, EntryTable{}, fsgs.None{}) // empty trampoline table
	if _, err := rt.Malloc(64); err == nil {
		t.Fatal("call without entry point succeeded")
	}
}

func TestHostAllocReplayOnlyActive(t *testing.T) {
	rt, lib, _ := buildRT(t)
	h1, err := rt.HostAlloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.HostAlloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.FreeHost(h1); err != nil {
		t.Fatal(err)
	}
	_ = lib

	// New process: restore upper half then rebind. Here we emulate the
	// restore by pre-mapping h2's region in the fresh space.
	space2 := addrspace.New()
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(Symbols))
	_ = helper2
	if _, err := space2.MMap(h2, 4096, addrspace.ProtRW, addrspace.MapFixedNoReplace, addrspace.HalfUpper, "restored"); err != nil {
		t.Fatal(err)
	}
	lib2, _ := cuda.NewLibrary(cuda.Config{Space: space2})
	defer lib2.Destroy()
	entries2 := make(EntryTable)
	for _, s := range Symbols {
		addr, _ := helper2.Entry(s)
		entries2[s] = addr
	}
	if err := rt.Rebind(lib2, entries2, nil); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	// Only h2 was re-registered.
	act := lib2.ActiveHostAllocs()
	if len(act) != 1 || act[0].Addr != h2 {
		t.Fatalf("host allocs after replay = %+v", act)
	}
}
