// Package cracrt implements CRAC's upper-half runtime: the "dummy
// libcuda" of Figure 1 in the paper. Every CUDA call an application makes
// is dispatched through a trampoline — an fs-register switch plus an
// indirect jump through the entry-point table published by the lower-half
// helper program — into the active CUDA library in the lower half.
//
// The runtime additionally:
//
//   - logs every resource-creating/destroying call for restart replay
//     (Section 3.1 "Log-and-replay", Section 3.2.4);
//   - virtualizes stream, event, and fat-binary handles so that the
//     application's handles survive a restart onto a fresh lower half
//     (the "patching of fat-binary-handle" of Section 3.2.5);
//   - retains the application's kernel function table (the upper-half
//     fat binary contents) so kernels can be re-registered at restart.
package cracrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/fsgs"
	"repro/internal/gpusim"
	"repro/internal/replaylog"
)

// EntryTable maps CUDA API symbols to their lower-half entry addresses,
// as published by the helper program at launch (and re-published by the
// fresh helper after restart).
type EntryTable map[string]uint64

// Symbols is the list of CUDA entry points the upper half needs; the
// lower-half helper exports exactly these.
var Symbols = []string{
	"cudaMalloc", "cudaFree", "cudaMallocHost", "cudaHostAlloc", "cudaFreeHost",
	"cudaMallocManaged", "cudaMemcpy", "cudaMemcpyAsync", "cudaMemset",
	"cudaStreamCreate", "cudaStreamDestroy", "cudaStreamSynchronize",
	"cudaEventCreate", "cudaEventDestroy", "cudaEventRecord",
	"cudaEventSynchronize", "cudaEventElapsedTime", "cudaStreamWaitEvent",
	"cudaMemGetInfo",
	"__cudaRegisterFatBinary", "__cudaRegisterFunction", "__cudaUnregisterFatBinary",
	"cudaPushCallConfiguration", "cudaPopCallConfiguration", "cudaLaunchKernel",
	"cudaDeviceSynchronize", "cudaGetDeviceProperties",
}

// fatDef retains the application-side definition of a fat binary: the
// module name and the Go kernel functions (standing in for the device
// code in the application's text segment, which survives checkpoint).
type fatDef struct {
	module string
	funcs  map[string]cuda.Kernel
}

// Runtime is the CRAC binding of crt.Runtime.
type Runtime struct {
	sw  fsgs.Switcher
	log *replaylog.Log

	mu      sync.RWMutex // guards lib/entries/handle maps; held for read on the hot path
	lib     *cuda.Library
	entries EntryTable
	heap    *crt.AppHeap

	vs    map[crt.StreamHandle]cuda.Stream
	ve    map[crt.EventHandle]cuda.Event
	vf    map[crt.FatBinHandle]cuda.FatBinaryHandle
	fdefs map[crt.FatBinHandle]*fatDef
	// kernelsByModule lets a restarted process resolve kernels by name
	// when the in-memory fdefs are gone (cross-process restore).
	kernelsByModule map[string]map[string]cuda.Kernel
	nextS           crt.StreamHandle
	nextE           crt.EventHandle
	nextF           crt.FatBinHandle

	launches atomic.Uint64
	others   atomic.Uint64

	// launchGate is the device-mutation half of Session.Quiesce: kernel
	// launches and the memory-writing CUDA calls (Memset, Memcpy,
	// MemcpyAsync) hold the read side for the duration of the call, and
	// quiescing takes the write side — so once QuiesceLaunches returns,
	// none of them is mid-flight and none can touch memory until
	// ResumeLaunches.
	launchGate sync.RWMutex
}

// New creates the CRAC runtime over an initial lower half.
func New(lib *cuda.Library, entries EntryTable, sw fsgs.Switcher) *Runtime {
	if sw == nil {
		sw = fsgs.NewSyscall()
	}
	return &Runtime{
		sw:              sw,
		log:             replaylog.New(),
		lib:             lib,
		entries:         entries,
		heap:            crt.NewAppHeap(lib.Space()),
		vs:              make(map[crt.StreamHandle]cuda.Stream),
		ve:              make(map[crt.EventHandle]cuda.Event),
		vf:              make(map[crt.FatBinHandle]cuda.FatBinaryHandle),
		fdefs:           make(map[crt.FatBinHandle]*fatDef),
		kernelsByModule: make(map[string]map[string]cuda.Kernel),
	}
}

// Log returns the replay log.
func (r *Runtime) Log() *replaylog.Log { return r.log }

// Library returns the current lower-half library.
func (r *Runtime) Library() *cuda.Library {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lib
}

// Switcher returns the fs-register switcher in use.
func (r *Runtime) Switcher() fsgs.Switcher { return r.sw }

// enter performs the upper→lower trampoline crossing: the symbol is
// resolved through the entry-point table (the indirection of Figure 1)
// and the fs base is switched. The caller must defer r.sw.Exit().
func (r *Runtime) enter(sym string) (*cuda.Library, error) {
	r.mu.RLock()
	lib := r.lib
	_, ok := r.entries[sym]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cracrt: no lower-half entry point for %q", sym)
	}
	r.sw.Enter()
	return lib, nil
}

// Malloc implements crt.Runtime (logged for replay).
func (r *Runtime) Malloc(size uint64) (uint64, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaMalloc")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	addr, err := lib.Malloc(size)
	if err != nil {
		return 0, err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindMalloc, Size: size, Addr: addr})
	return addr, nil
}

// Free implements crt.Runtime (logged for replay).
func (r *Runtime) Free(addr uint64) error {
	r.others.Add(1)
	lib, err := r.enter("cudaFree")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	kind := replaylog.KindFree
	if lib.Classify(addr) == cuda.PtrManaged {
		kind = replaylog.KindFreeManaged
	}
	if err := lib.Free(addr); err != nil {
		return err
	}
	r.log.Append(replaylog.Entry{Kind: kind, Addr: addr})
	return nil
}

// MallocHost implements crt.Runtime (logged for replay).
func (r *Runtime) MallocHost(size uint64) (uint64, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaMallocHost")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	addr, err := lib.MallocHost(size)
	if err != nil {
		return 0, err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindMallocHost, Size: size, Addr: addr})
	return addr, nil
}

// HostAlloc implements crt.Runtime (logged; only active buffers are
// re-registered at restart, per Section 3.2.4).
func (r *Runtime) HostAlloc(size uint64) (uint64, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaHostAlloc")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	addr, err := lib.HostAlloc(size)
	if err != nil {
		return 0, err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindHostAlloc, Size: size, Addr: addr})
	return addr, nil
}

// FreeHost implements crt.Runtime (logged for replay).
func (r *Runtime) FreeHost(addr uint64) error {
	r.others.Add(1)
	lib, err := r.enter("cudaFreeHost")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	kind := replaylog.KindFreeHost
	if lib.Classify(addr) == cuda.PtrHost {
		kind = replaylog.KindFreeHostAlloc
	}
	if err := lib.FreeHost(addr); err != nil {
		return err
	}
	r.log.Append(replaylog.Entry{Kind: kind, Addr: addr})
	return nil
}

// MallocManaged implements crt.Runtime (logged for replay).
func (r *Runtime) MallocManaged(size uint64) (uint64, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaMallocManaged")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	addr, err := lib.MallocManaged(size)
	if err != nil {
		return 0, err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindMallocManaged, Size: size, Addr: addr})
	return addr, nil
}

// Memcpy implements crt.Runtime. Pointers pass straight through to the
// lower half — no buffer copying, the core of CRAC's low overhead.
func (r *Runtime) Memcpy(dst, src, n uint64, kind crt.MemcpyKind) error {
	r.launchGate.RLock()
	defer r.launchGate.RUnlock()
	r.others.Add(1)
	lib, err := r.enter("cudaMemcpy")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	return lib.Memcpy(dst, src, n, kind)
}

// MemcpyAsync implements crt.Runtime.
func (r *Runtime) MemcpyAsync(dst, src, n uint64, kind crt.MemcpyKind, s crt.StreamHandle) error {
	r.launchGate.RLock()
	defer r.launchGate.RUnlock()
	r.others.Add(1)
	lib, err := r.enter("cudaMemcpyAsync")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	return lib.MemcpyAsync(dst, src, n, kind, ps)
}

// Memset implements crt.Runtime.
func (r *Runtime) Memset(addr uint64, value byte, n uint64) error {
	r.launchGate.RLock()
	defer r.launchGate.RUnlock()
	r.others.Add(1)
	lib, err := r.enter("cudaMemset")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	return lib.Memset(addr, value, n)
}

func (r *Runtime) stream(s crt.StreamHandle) (cuda.Stream, error) {
	if s == crt.DefaultStream {
		return cuda.DefaultStream, nil
	}
	r.mu.RLock()
	ps, ok := r.vs[s]
	r.mu.RUnlock()
	if !ok {
		return 0, &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "stream", Msg: "unknown virtual stream"}
	}
	return ps, nil
}

// StreamCreate implements crt.Runtime (logged; active streams are
// recreated at restart).
func (r *Runtime) StreamCreate() (crt.StreamHandle, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaStreamCreate")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	ps, err := lib.StreamCreate()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.nextS++
	h := r.nextS
	r.vs[h] = ps
	r.mu.Unlock()
	r.log.Append(replaylog.Entry{Kind: replaylog.KindStreamCreate, Handle: uint64(h)})
	return h, nil
}

// StreamDestroy implements crt.Runtime (logged).
func (r *Runtime) StreamDestroy(s crt.StreamHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaStreamDestroy")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.vs, s)
	r.mu.Unlock()
	if err := lib.StreamDestroy(ps); err != nil {
		return err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindStreamDestroy, Handle: uint64(s)})
	return nil
}

// StreamSynchronize implements crt.Runtime.
func (r *Runtime) StreamSynchronize(s crt.StreamHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaStreamSynchronize")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	return lib.StreamSynchronize(ps)
}

func (r *Runtime) event(e crt.EventHandle) (cuda.Event, error) {
	r.mu.RLock()
	pe, ok := r.ve[e]
	r.mu.RUnlock()
	if !ok {
		return 0, &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "event", Msg: "unknown virtual event"}
	}
	return pe, nil
}

// EventCreate implements crt.Runtime (logged).
func (r *Runtime) EventCreate() (crt.EventHandle, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaEventCreate")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	pe, err := lib.EventCreate()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.nextE++
	h := r.nextE
	r.ve[h] = pe
	r.mu.Unlock()
	r.log.Append(replaylog.Entry{Kind: replaylog.KindEventCreate, Handle: uint64(h)})
	return h, nil
}

// EventDestroy implements crt.Runtime (logged).
func (r *Runtime) EventDestroy(e crt.EventHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaEventDestroy")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	pe, err := r.event(e)
	if err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.ve, e)
	r.mu.Unlock()
	if err := lib.EventDestroy(pe); err != nil {
		return err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindEventDestroy, Handle: uint64(e)})
	return nil
}

// EventRecord implements crt.Runtime.
func (r *Runtime) EventRecord(e crt.EventHandle, s crt.StreamHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaEventRecord")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	pe, err := r.event(e)
	if err != nil {
		return err
	}
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	return lib.EventRecord(pe, ps)
}

// EventSynchronize implements crt.Runtime.
func (r *Runtime) EventSynchronize(e crt.EventHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaEventSynchronize")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	pe, err := r.event(e)
	if err != nil {
		return err
	}
	return lib.EventSynchronize(pe)
}

// EventElapsed implements crt.Runtime.
func (r *Runtime) EventElapsed(start, end crt.EventHandle) (time.Duration, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaEventElapsedTime")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	ps, err := r.event(start)
	if err != nil {
		return 0, err
	}
	pe, err := r.event(end)
	if err != nil {
		return 0, err
	}
	return lib.EventElapsed(ps, pe)
}

// StreamWaitEvent implements crt.Runtime. Pure synchronization: not
// logged (the dependency is drained away before any checkpoint).
func (r *Runtime) StreamWaitEvent(s crt.StreamHandle, e crt.EventHandle) error {
	r.others.Add(1)
	lib, err := r.enter("cudaStreamWaitEvent")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	pe, err := r.event(e)
	if err != nil {
		return err
	}
	return lib.StreamWaitEvent(ps, pe)
}

// MemGetInfo implements crt.Runtime.
func (r *Runtime) MemGetInfo() (uint64, uint64, error) {
	r.others.Add(1)
	lib, err := r.enter("cudaMemGetInfo")
	if err != nil {
		return 0, 0, err
	}
	defer r.sw.Exit()
	return lib.MemGetInfo()
}

// RegisterFatBinary implements crt.Runtime (logged; re-registered on
// restart with handle patching).
func (r *Runtime) RegisterFatBinary(module string) (crt.FatBinHandle, error) {
	r.others.Add(1)
	lib, err := r.enter("__cudaRegisterFatBinary")
	if err != nil {
		return 0, err
	}
	defer r.sw.Exit()
	ph, err := lib.RegisterFatBinary(module)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.nextF++
	h := r.nextF
	r.vf[h] = ph
	r.fdefs[h] = &fatDef{module: module, funcs: make(map[string]cuda.Kernel)}
	r.mu.Unlock()
	r.log.Append(replaylog.Entry{Kind: replaylog.KindRegisterFatBinary, Handle: uint64(h), Module: module})
	return h, nil
}

// RegisterFunction implements crt.Runtime (logged; the Go kernel func is
// retained as the stand-in for device code in the application image).
func (r *Runtime) RegisterFunction(h crt.FatBinHandle, name string, k cuda.Kernel) error {
	r.others.Add(1)
	lib, err := r.enter("__cudaRegisterFunction")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	r.mu.Lock()
	ph, ok := r.vf[h]
	def := r.fdefs[h]
	r.mu.Unlock()
	if !ok || def == nil {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "registerFunction", Msg: "unknown virtual fat binary"}
	}
	if err := lib.RegisterFunction(ph, name, k); err != nil {
		return err
	}
	r.mu.Lock()
	def.funcs[name] = k
	mod, ok := r.kernelsByModule[def.module]
	if !ok {
		mod = make(map[string]cuda.Kernel)
		r.kernelsByModule[def.module] = mod
	}
	mod[name] = k
	r.mu.Unlock()
	r.log.Append(replaylog.Entry{Kind: replaylog.KindRegisterFunction, Handle: uint64(h), Name: name})
	return nil
}

// UnregisterFatBinary implements crt.Runtime (logged).
func (r *Runtime) UnregisterFatBinary(h crt.FatBinHandle) error {
	r.others.Add(1)
	lib, err := r.enter("__cudaUnregisterFatBinary")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	r.mu.Lock()
	ph, ok := r.vf[h]
	delete(r.vf, h)
	delete(r.fdefs, h)
	r.mu.Unlock()
	if !ok {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "unregisterFatBinary", Msg: "unknown virtual fat binary"}
	}
	if err := lib.UnregisterFatBinary(ph); err != nil {
		return err
	}
	r.log.Append(replaylog.Entry{Kind: replaylog.KindUnregisterFatBinary, Handle: uint64(h)})
	return nil
}

// LaunchKernel implements crt.Runtime. Per the paper's call-counting
// methodology, one application-level launch crosses the trampoline three
// times (push/pop call configuration plus the launch itself); Counters
// accounts for this via the 3× formula.
func (r *Runtime) LaunchKernel(h crt.FatBinHandle, name string, cfg crt.LaunchConfig, s crt.StreamHandle, args ...uint64) error {
	// A quiesced session blocks new launches here, before any trampoline
	// crossing, so a subsequent device drain cannot race a straggler.
	r.launchGate.RLock()
	defer r.launchGate.RUnlock()
	r.launches.Add(1)
	// cudaPushCallConfiguration / cudaPopCallConfiguration crossings.
	for _, sym := range [...]string{"cudaPushCallConfiguration", "cudaPopCallConfiguration"} {
		if _, err := r.enter(sym); err != nil {
			return err
		}
		r.sw.Exit()
	}
	lib, err := r.enter("cudaLaunchKernel")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	r.mu.RLock()
	ph, ok := r.vf[h]
	r.mu.RUnlock()
	if !ok {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "launchKernel", Msg: "unknown virtual fat binary"}
	}
	ps, err := r.stream(s)
	if err != nil {
		return err
	}
	return lib.LaunchKernel(ph, name, cfg, ps, args...)
}

// QuiesceLaunches bars new kernel launches and waits for in-flight ones
// to finish enqueueing. The gate stays closed until ResumeLaunches;
// blocked launches wait (they do not fail). Part of Session.Quiesce.
func (r *Runtime) QuiesceLaunches() { r.launchGate.Lock() }

// ResumeLaunches reopens the launch gate closed by QuiesceLaunches.
func (r *Runtime) ResumeLaunches() { r.launchGate.Unlock() }

// DeviceSynchronize implements crt.Runtime.
func (r *Runtime) DeviceSynchronize() error {
	r.others.Add(1)
	lib, err := r.enter("cudaDeviceSynchronize")
	if err != nil {
		return err
	}
	defer r.sw.Exit()
	return lib.DeviceSynchronize()
}

// DeviceProperties implements crt.Runtime.
func (r *Runtime) DeviceProperties() gpusim.Properties {
	r.others.Add(1)
	lib, err := r.enter("cudaGetDeviceProperties")
	if err != nil {
		return gpusim.Properties{}
	}
	defer r.sw.Exit()
	return lib.DeviceProperties()
}

// HostAccess implements crt.Runtime. Host access to UVM pages faults
// through the pager but does not cross the trampoline (it is a hardware
// page fault, not a CUDA call) — the reason CRAC's UVM support costs
// nothing at runtime, unlike CRUM's mprotect-based shadow pages.
//
// The call itself is gated by Quiesce (the page migration and the dirty
// stamp land inside it), but the returned view is raw memory: writing
// through a view retained across a Quiesce or a concurrent-checkpoint
// arming bypasses the gates and the copy-on-write preservation, exactly
// as a raw pointer would on real hardware. Re-acquire views instead of
// retaining them, or perform writes through gated calls (Memset/Memcpy
// handle managed addresses).
func (r *Runtime) HostAccess(addr, n uint64, write bool) ([]byte, error) {
	if write {
		r.launchGate.RLock()
		defer r.launchGate.RUnlock()
	}
	r.mu.RLock()
	lib := r.lib
	r.mu.RUnlock()
	return lib.HostAccess(addr, n, write)
}

// AppAlloc implements crt.Runtime (plain upper-half memory; not a CUDA
// call, so neither counted nor logged).
func (r *Runtime) AppAlloc(size uint64) (uint64, error) { return r.heap.Alloc(size) }

// AppFree implements crt.Runtime.
func (r *Runtime) AppFree(addr uint64) error { return r.heap.Free(addr) }

// Counters implements crt.Runtime.
func (r *Runtime) Counters() crt.Counters {
	return crt.Counters{LaunchKernel: r.launches.Load(), OtherCalls: r.others.Load()}
}

var _ crt.Runtime = (*Runtime)(nil)
