package cracrt

import (
	"errors"
	"fmt"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/replaylog"
)

// ErrReplayMismatch is returned when replaying the log on a fresh lower
// half does not reproduce the original addresses — the failure mode that
// appears if ASLR is left enabled or the platform changes, which is why
// CRAC disables address randomization and requires the same CUDA/GPU
// platform on restart (Section 3.2.4).
var ErrReplayMismatch = errors.New("cracrt: replay produced a different address (determinism violated)")

// RegisterKernelTable makes module's kernels resolvable during replay in
// a process that has not executed the original RegisterFunction calls
// (cross-process restore). Workloads export their kernel tables so both
// the original and the restarted process can resolve them — the
// simulation's analogue of the fat-binary device code sitting in the
// restored application text segment.
func (r *Runtime) RegisterKernelTable(module string, funcs map[string]cuda.Kernel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mod, ok := r.kernelsByModule[module]
	if !ok {
		mod = make(map[string]cuda.Kernel)
		r.kernelsByModule[module] = mod
	}
	for name, k := range funcs {
		mod[name] = k
	}
}

// KernelTables returns a deep copy of every kernel table the runtime
// can resolve, both tables installed via RegisterKernelTable and
// kernels registered directly through RegisterFunction. Live migration
// uses it to seed the destination session's runtime, so log replay
// there resolves the same kernels without the application re-executing
// its registrations.
func (r *Runtime) KernelTables() map[string]map[string]cuda.Kernel {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string]cuda.Kernel, len(r.kernelsByModule))
	for module, funcs := range r.kernelsByModule {
		t := make(map[string]cuda.Kernel, len(funcs))
		for name, k := range funcs {
			t[name] = k
		}
		out[module] = t
	}
	return out
}

// Rebind installs a fresh lower half (library plus entry table) and
// replays the call log against it, rebuilding the virtual→physical handle
// maps. If log is non-nil it replaces the runtime's log first
// (cross-process restore); otherwise the in-memory log is replayed.
//
// Per Section 3.2.4, the *entire* malloc/free history of the device,
// pinned and managed arenas is replayed so the deterministic allocator
// reproduces every active address, while for cudaHostAlloc buffers (whose
// bytes were restored with the upper half) only active registrations are
// redone. Streams, events, and fat binaries are recreated for the active
// set only, with fat-binary handles re-mapped ("patched", Section 3.2.5).
func (r *Runtime) Rebind(lib *cuda.Library, entries EntryTable, log *replaylog.Log) error {
	r.mu.Lock()
	if log != nil {
		r.log = log
	}
	r.lib = lib
	r.entries = entries
	r.vs = make(map[crt.StreamHandle]cuda.Stream)
	r.ve = make(map[crt.EventHandle]cuda.Event)
	r.vf = make(map[crt.FatBinHandle]cuda.FatBinaryHandle)
	r.fdefs = make(map[crt.FatBinHandle]*fatDef)
	r.heap.SetSpace(lib.Space())
	r.mu.Unlock()

	active := r.log.Active()
	activeHost := make(map[uint64]bool, len(active.Host))
	for _, a := range active.Host {
		activeHost[a.Addr] = true
	}
	activeStreams := make(map[uint64]bool, len(active.Streams))
	for _, h := range active.Streams {
		activeStreams[h] = true
	}
	activeEvents := make(map[uint64]bool, len(active.Events))
	for _, h := range active.Events {
		activeEvents[h] = true
	}
	activeFats := make(map[uint64]bool, len(active.FatBins))
	for _, fb := range active.FatBins {
		activeFats[fb.Handle] = true
	}

	var maxS, maxE, maxF uint64
	for _, e := range r.log.Entries() {
		switch e.Kind {
		case replaylog.KindMalloc:
			addr, err := lib.Malloc(e.Size)
			if err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
			if addr != e.Addr {
				return fmt.Errorf("%w: %v got %#x", ErrReplayMismatch, e, addr)
			}
		case replaylog.KindFree, replaylog.KindFreeManaged:
			if err := lib.Free(e.Addr); err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
		case replaylog.KindMallocHost:
			addr, err := lib.MallocHost(e.Size)
			if err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
			if addr != e.Addr {
				return fmt.Errorf("%w: %v got %#x", ErrReplayMismatch, e, addr)
			}
		case replaylog.KindFreeHost:
			if err := lib.FreeHost(e.Addr); err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
		case replaylog.KindMallocManaged:
			addr, err := lib.MallocManaged(e.Size)
			if err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
			if addr != e.Addr {
				return fmt.Errorf("%w: %v got %#x", ErrReplayMismatch, e, addr)
			}
		case replaylog.KindHostAlloc:
			// The buffer bytes are already in the restored upper half;
			// only active registrations are redone (Section 3.2.4).
			if activeHost[e.Addr] {
				if err := lib.HostRegister(e.Addr, e.Size); err != nil {
					return fmt.Errorf("cracrt: replay %v: %w", e, err)
				}
			}
		case replaylog.KindFreeHostAlloc:
			// Inactive cudaHostAlloc buffers were never re-registered.
		case replaylog.KindStreamCreate:
			if maxS < e.Handle {
				maxS = e.Handle
			}
			if activeStreams[e.Handle] {
				ps, err := lib.StreamCreate()
				if err != nil {
					return fmt.Errorf("cracrt: replay %v: %w", e, err)
				}
				r.mu.Lock()
				r.vs[crt.StreamHandle(e.Handle)] = ps
				r.mu.Unlock()
			}
		case replaylog.KindStreamDestroy:
			// Destroyed streams were not recreated.
		case replaylog.KindEventCreate:
			if maxE < e.Handle {
				maxE = e.Handle
			}
			if activeEvents[e.Handle] {
				pe, err := lib.EventCreate()
				if err != nil {
					return fmt.Errorf("cracrt: replay %v: %w", e, err)
				}
				r.mu.Lock()
				r.ve[crt.EventHandle(e.Handle)] = pe
				r.mu.Unlock()
			}
		case replaylog.KindEventDestroy:
			// Destroyed events were not recreated.
		case replaylog.KindRegisterFatBinary:
			if maxF < e.Handle {
				maxF = e.Handle
			}
			if activeFats[e.Handle] {
				ph, err := lib.RegisterFatBinary(e.Module)
				if err != nil {
					return fmt.Errorf("cracrt: replay %v: %w", e, err)
				}
				r.mu.Lock()
				r.vf[crt.FatBinHandle(e.Handle)] = ph
				r.fdefs[crt.FatBinHandle(e.Handle)] = &fatDef{module: e.Module, funcs: make(map[string]cuda.Kernel)}
				r.mu.Unlock()
			}
		case replaylog.KindRegisterFunction:
			h := crt.FatBinHandle(e.Handle)
			r.mu.RLock()
			ph, ok := r.vf[h]
			def := r.fdefs[h]
			r.mu.RUnlock()
			if !ok {
				continue // fat binary no longer active
			}
			k := r.resolveKernel(def.module, e.Name)
			if k == nil {
				return fmt.Errorf("cracrt: replay %v: kernel %s/%s not resolvable; call RegisterKernelTable first",
					e, def.module, e.Name)
			}
			if err := lib.RegisterFunction(ph, e.Name, k); err != nil {
				return fmt.Errorf("cracrt: replay %v: %w", e, err)
			}
			r.mu.Lock()
			def.funcs[e.Name] = k
			r.mu.Unlock()
		case replaylog.KindUnregisterFatBinary:
			// Unregistered fat binaries were not recreated.
		}
	}

	r.mu.Lock()
	if uint64(r.nextS) < maxS {
		r.nextS = crt.StreamHandle(maxS)
	}
	if uint64(r.nextE) < maxE {
		r.nextE = crt.EventHandle(maxE)
	}
	if uint64(r.nextF) < maxF {
		r.nextF = crt.FatBinHandle(maxF)
	}
	r.mu.Unlock()
	return nil
}

func (r *Runtime) resolveKernel(module, name string) cuda.Kernel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if mod, ok := r.kernelsByModule[module]; ok {
		return mod[name]
	}
	return nil
}
