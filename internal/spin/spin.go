// Package spin provides a calibrated busy-wait used to model fixed
// hardware/kernel latencies (system-call entry, CUDA driver calls) that
// cannot be reproduced literally in a sandboxed environment, where real
// system calls cost two orders of magnitude more than on bare metal.
//
// The calibration measures the host's spin throughput once and converts
// nanosecond budgets into iteration counts, so modelled latencies hold
// their intended *ratios* (e.g. arch_prctl vs WRFSBASE, cudaMalloc vs a
// kernel launch) regardless of the machine.
package spin

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	once      sync.Once
	perIterNs float64
)

// sink defeats dead-code elimination.
var sink atomic.Uint64

//go:noinline
func spin(iters int) uint64 {
	var acc uint64 = 0x9e3779b9
	for i := 0; i < iters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

func calibrate() {
	const probe = 1 << 16
	start := time.Now()
	sink.Store(spin(probe))
	elapsed := time.Since(start)
	perIterNs = float64(elapsed.Nanoseconds()) / probe
	if perIterNs <= 0 {
		perIterNs = 1
	}
}

// Iters returns the spin iteration count approximating ns nanoseconds.
func Iters(ns int) int {
	once.Do(calibrate)
	n := int(float64(ns) / perIterNs)
	if n < 1 {
		n = 1
	}
	return n
}

// For busy-waits for approximately ns nanoseconds.
func For(ns int) {
	sink.Store(spin(Iters(ns)))
}

// ForIters busy-waits for a precomputed iteration count (use Iters once,
// then ForIters on hot paths to avoid the conversion).
func ForIters(iters int) {
	sink.Store(spin(iters))
}
