package spin

import (
	"testing"
	"time"
)

func TestItersPositive(t *testing.T) {
	if Iters(1) < 1 || Iters(1000) < Iters(1) {
		t.Fatal("Iters not monotone or non-positive")
	}
}

func TestForApproximatesBudget(t *testing.T) {
	// A 100µs spin should take between 20µs and 5ms even on a noisy
	// shared machine (the calibration only has to hold ratios).
	start := time.Now()
	For(100_000)
	el := time.Since(start)
	if el < 20*time.Microsecond || el > 5*time.Millisecond {
		t.Fatalf("100us spin took %v", el)
	}
}
