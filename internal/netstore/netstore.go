// Package netstore is the HTTP transport behind crac's remote Store:
// a deliberately small REST protocol exposing a named-image store over
// HTTP(S), so checkpoints can be written to — and lazily restored from
// — another node. The package speaks in plain transport terms
// (io.Reader, names, ranges) and knows nothing about image formats;
// crac.NewHTTPStore and crac.ServeStore adapt it to the Store surface.
//
// Protocol (rooted at the server's base URL):
//
//	GET    /v1/images            list image names (JSON array)
//	GET    /v1/images/{name}     read an image; Range requests honoured
//	HEAD   /v1/images/{name}     image size (Content-Length)
//	PUT    /v1/images/{name}     store an image (streamed request body)
//	DELETE /v1/images/{name}     remove an image
//	POST   /v1/exists            batch existence check (JSON array in,
//	                             JSON array of the present subset out)
//
// Range support on GET is what lets a lazy restart's shard index fault
// individual shards across the wire instead of downloading whole
// images. The batch-exists endpoint is what makes replication
// delta-aware: a content-addressed sender asks once which chunk keys
// the destination already holds and ships only the rest, so migration
// pre-copy rounds and supervisor uploads skip bytes the far side has.
//
// Error classification matters more than the protocol here: every
// client failure is either a *StatusError (the server answered, with
// that status) or a *TransportError (the network ate the request), and
// both expose the Transient() convention crac's retry layer keys on —
// 5xx, 408, 429, timeouts, and connection resets retry; 4xx and a
// caller-cancelled context do not.
package netstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// routePrefix roots every image route; bump it if the wire protocol
// ever changes incompatibly.
const routePrefix = "/v1/images"

// existsRoute is the batch existence-check endpoint.
const existsRoute = "/v1/exists"

// maxExistsBatch bounds one batch-exists request, matching the image
// decoder's item-count philosophy: generous for real use, small enough
// that a hostile request cannot balloon server memory.
const maxExistsBatch = 1 << 16

// ErrNotFound reports a name with no image on the server. It is never
// transient: retrying a lookup for an image that is not there will not
// make it appear.
var ErrNotFound = errors.New("netstore: image not found")

// ReaderAtCloser mirrors crac.ReaderAtCloser so the two packages can
// interoperate without an import cycle (the root package adapts).
type ReaderAtCloser interface {
	io.ReaderAt
	io.Closer
}

// Backend is the store a Handler serves, expressed as plain functions
// so any image store can plug in without this package importing it.
// Get, Put, List, and Delete are required; GetAt is optional (without
// it, Range requests fall back to a full read server-side), as is
// IsNotFound (without it, every backend error maps to a 500).
type Backend struct {
	Get        func(ctx context.Context, name string) (io.ReadCloser, error)
	GetAt      func(ctx context.Context, name string) (ReaderAtCloser, int64, error)
	Put        func(ctx context.Context, name string, write func(io.Writer) error) error
	List       func(ctx context.Context) ([]string, error)
	Delete     func(ctx context.Context, name string) error
	IsNotFound func(err error) bool
	// Exists is optional; without it, batch-exists requests fall back
	// to one List and a set intersection.
	Exists func(ctx context.Context, name string) (bool, error)
}

// NewHandler serves b over the netstore protocol.
func NewHandler(b Backend) http.Handler {
	h := &handler{b: b}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+routePrefix, h.list)
	mux.HandleFunc("GET "+routePrefix+"/{name}", h.get)
	mux.HandleFunc("HEAD "+routePrefix+"/{name}", h.get)
	mux.HandleFunc("PUT "+routePrefix+"/{name}", h.put)
	mux.HandleFunc("DELETE "+routePrefix+"/{name}", h.delete)
	mux.HandleFunc("POST "+existsRoute, h.exists)
	return mux
}

type handler struct{ b Backend }

// writeErr maps a backend error onto the wire: 404 for a missing
// image, 500 for everything else, with the error text as the body so
// the client can surface it.
func (h *handler) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if h.b.IsNotFound != nil && h.b.IsNotFound(err) {
		code = http.StatusNotFound
	}
	http.Error(w, err.Error(), code)
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	names, err := h.b.List(r.Context())
	if err != nil {
		h.writeErr(w, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if h.b.GetAt != nil {
		src, size, err := h.b.GetAt(r.Context(), name)
		if err != nil {
			h.writeErr(w, err)
			return
		}
		defer src.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		// ServeContent handles HEAD, Range (single and invalid ranges,
		// 206/416), and Content-Length from the seeker's size.
		http.ServeContent(w, r, "", time.Time{}, io.NewSectionReader(src, 0, size))
		return
	}
	rc, err := h.b.Get(r.Context(), name)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method == http.MethodHead {
		return
	}
	io.Copy(w, rc)
}

// putCopyPool recycles the body-staging buffer of PUT requests. A
// supervisor uploading every few seconds — or a CAS sender streaming
// hundreds of chunk PUTs per checkpoint — would otherwise allocate a
// fresh copy buffer per image on the server's hot path.
var putCopyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 256<<10)
		return &b
	},
}

func (h *handler) put(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	err := h.b.Put(r.Context(), name, func(dst io.Writer) error {
		bp := putCopyPool.Get().(*[]byte)
		_, cerr := io.CopyBuffer(struct{ io.Writer }{dst}, struct{ io.Reader }{r.Body}, *bp)
		putCopyPool.Put(bp)
		return cerr
	})
	if err != nil {
		h.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// exists answers a batch existence check: a JSON array of names in,
// the present subset (in request order) out.
func (h *handler) exists(w http.ResponseWriter, r *http.Request) {
	var names []string
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<26)).Decode(&names); err != nil {
		http.Error(w, "netstore: malformed exists request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(names) > maxExistsBatch {
		http.Error(w, fmt.Sprintf("netstore: exists batch of %d exceeds limit %d",
			len(names), maxExistsBatch), http.StatusBadRequest)
		return
	}
	present := []string{}
	if h.b.Exists != nil {
		for _, n := range names {
			ok, err := h.b.Exists(r.Context(), n)
			if err != nil {
				h.writeErr(w, err)
				return
			}
			if ok {
				present = append(present, n)
			}
		}
	} else {
		all, err := h.b.List(r.Context())
		if err != nil {
			h.writeErr(w, err)
			return
		}
		have := make(map[string]bool, len(all))
		for _, n := range all {
			have[n] = true
		}
		for _, n := range names {
			if have[n] {
				present = append(present, n)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(present)
}

func (h *handler) delete(w http.ResponseWriter, r *http.Request) {
	if err := h.b.Delete(r.Context(), r.PathValue("name")); err != nil {
		h.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// A StatusError is a request the server answered with a non-success
// status. Transient follows HTTP semantics: server-side failures and
// throttling retry, client errors do not.
type StatusError struct {
	Op   string // "get", "put", ...
	Name string // image name ("" for list)
	Code int
	Body string // first bytes of the response body, for diagnostics
}

func (e *StatusError) Error() string {
	msg := fmt.Sprintf("netstore: %s %q: server returned %d %s",
		e.Op, e.Name, e.Code, http.StatusText(e.Code))
	if b := strings.TrimSpace(e.Body); b != "" {
		msg += ": " + b
	}
	return msg
}

// Transient reports whether the status is worth retrying.
func (e *StatusError) Transient() bool {
	return e.Code >= 500 || e.Code == http.StatusTooManyRequests ||
		e.Code == http.StatusRequestTimeout
}

// A TransportError is a request that never got an HTTP answer: dial
// failures, connection resets, client-side timeouts. All of them are
// transient — the server may well be reachable on the next attempt.
//
// TransportError deliberately does not implement Unwrap: Go's HTTP
// client wraps per-request timeouts in context.DeadlineExceeded, which
// the crac retry predicate reads as "the caller asked to stop". A
// per-request timeout with a live caller context is exactly the case
// retries exist for, so the cause stays reachable only through Error
// text. When the caller's own context is done, the client returns that
// context error directly (not a TransportError) and no retry happens.
type TransportError struct {
	Op   string
	Name string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("netstore: %s %q: %v", e.Op, e.Name, e.Err)
}

// Transient reports true: transport failures are always worth a retry.
func (e *TransportError) Transient() bool { return true }

// errPutAborted closes the PUT body pipe when the request dies before
// the writer finishes, so the writer unblocks with a recognizable
// cause.
var errPutAborted = errors.New("netstore: put request aborted")

// Client speaks the netstore protocol against one base URL.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at baseURL (scheme and
// host, e.g. "http://ckpt-host:9120"; any path prefix is kept). A nil
// httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("netstore: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("netstore: base URL %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("netstore: base URL %q: missing host", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: httpClient}, nil
}

// BaseURL returns the server base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) imageURL(name string) string {
	return c.base + routePrefix + "/" + url.PathEscape(name)
}

// fail classifies a request that produced no HTTP response: the
// caller's own cancellation surfaces as the context error (never
// retried), anything else as a retryable TransportError.
func (c *Client) fail(ctx context.Context, op, name string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("netstore: %s %q: %w", op, name, cerr)
	}
	return &TransportError{Op: op, Name: name, Err: err}
}

// statusErr drains and closes a non-success response into a
// StatusError (or ErrNotFound for a 404).
func statusErr(op, name string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &StatusError{Op: op, Name: name, Code: resp.StatusCode, Body: string(body)}
}

// Get opens the named image as a stream.
func (c *Client) Get(ctx context.Context, name string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.imageURL(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.fail(ctx, "get", name, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr("get", name, resp)
	}
	return resp.Body, nil
}

// Put streams the image produced by write to the server under name.
// The atomicity contract is the server-side store's: the body streams
// as write produces it, and the server publishes all-or-nothing. If
// write itself fails, its error is returned verbatim (so the caller
// can classify pipeline errors, not wrapped transport ones).
func (c *Client) Put(ctx context.Context, name string, write func(io.Writer) error) error {
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := write(pw)
		pw.CloseWithError(err)
		done <- err
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.imageURL(name), pr)
	if err != nil {
		pr.CloseWithError(errPutAborted)
		<-done
		return err
	}
	resp, derr := c.hc.Do(req)
	// If the request died before consuming the body (connection refused,
	// reset mid-stream), unblock the writer; harmless when the pipe is
	// already closed.
	pr.CloseWithError(errPutAborted)
	werr := <-done
	// The write func's own failures take priority over the transport
	// fallout they cause — but errors *we* caused by tearing the pipe
	// down (our abort marker, or the transport closing the request body
	// after a failed Do) are fallout, not pipeline errors.
	if werr != nil && !errors.Is(werr, errPutAborted) && !errors.Is(werr, io.ErrClosedPipe) {
		// The image pipeline itself failed; that error — not the
		// transport fallout it caused — is the one to report.
		if derr == nil {
			resp.Body.Close()
		}
		return werr
	}
	if derr != nil {
		return c.fail(ctx, "put", name, derr)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK &&
		resp.StatusCode != http.StatusNoContent {
		return statusErr("put", name, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// List returns the server's image names in lexical order.
func (c *Client) List(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+routePrefix, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.fail(ctx, "list", "", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr("list", "", resp)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, &TransportError{Op: "list", Err: fmt.Errorf("decoding response: %w", err)}
	}
	sort.Strings(names)
	return names, nil
}

// ExistsBatch reports which of the named images the server already
// holds, in one round trip. Names absent from the returned map do not
// exist server-side. Against a server predating the exists endpoint
// (404/405/501), it degrades to one List — correct, just not
// constant-cost in the store size.
func (c *Client) ExistsBatch(ctx context.Context, names []string) (map[string]bool, error) {
	have := make(map[string]bool, len(names))
	if len(names) == 0 {
		return have, nil
	}
	body, err := json.Marshal(names)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+existsRoute, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.fail(ctx, "exists", "", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		all, lerr := c.List(ctx)
		if lerr != nil {
			return nil, lerr
		}
		onServer := make(map[string]bool, len(all))
		for _, n := range all {
			onServer[n] = true
		}
		for _, n := range names {
			if onServer[n] {
				have[n] = true
			}
		}
		return have, nil
	default:
		return nil, statusErr("exists", "", resp)
	}
	defer resp.Body.Close()
	var present []string
	if err := json.NewDecoder(resp.Body).Decode(&present); err != nil {
		return nil, &TransportError{Op: "exists", Err: fmt.Errorf("decoding response: %w", err)}
	}
	for _, n := range present {
		have[n] = true
	}
	return have, nil
}

// Delete removes the named image on the server.
func (c *Client) Delete(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.imageURL(name), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.fail(ctx, "delete", name, err)
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return statusErr("delete", name, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// GetAt opens the named image for random access: one HEAD resolves the
// size, then every ReadAt issues an independent Range request, so
// concurrent shard faults across a lazy restart each fetch exactly the
// bytes they need.
func (c *Client) GetAt(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.imageURL(name), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, c.fail(ctx, "stat", name, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	default:
		return nil, 0, &StatusError{Op: "stat", Name: name, Code: resp.StatusCode}
	}
	if resp.ContentLength < 0 {
		return nil, 0, &TransportError{Op: "stat", Name: name,
			Err: errors.New("server reported no Content-Length")}
	}
	return &rangeReader{c: c, ctx: ctx, name: name, size: resp.ContentLength}, resp.ContentLength, nil
}

// rangeReader is the ReaderAtCloser behind Client.GetAt. The context
// captured at GetAt time governs every ReadAt — matching the store
// contract, where the handle lives within the operation (a restart)
// that opened it. Safe for concurrent ReadAt.
type rangeReader struct {
	c    *Client
	ctx  context.Context
	name string
	size int64
}

func (r *rangeReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("netstore: %q: negative read offset %d", r.name, off)
	}
	if off >= r.size {
		return 0, io.EOF
	}
	short := false
	if max := r.size - off; int64(len(p)) > max {
		p, short = p[:max], true
	}
	if len(p) == 0 {
		return 0, nil
	}
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, r.c.imageURL(r.name), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(len(p))-1))
	resp, err := r.c.hc.Do(req)
	if err != nil {
		return 0, r.c.fail(r.ctx, "read", r.name, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusPartialContent:
	case http.StatusOK:
		// A server without Range support replays the whole image; take
		// the slice we asked for.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			return 0, r.c.fail(r.ctx, "read", r.name, err)
		}
	default:
		return 0, statusErr("read", r.name, resp)
	}
	n, err := io.ReadFull(resp.Body, p)
	if err != nil {
		return n, r.c.fail(r.ctx, "read", r.name, err)
	}
	if short {
		return n, io.EOF
	}
	return n, nil
}

func (r *rangeReader) Close() error { return nil }
