package netstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// memBackend is a minimal in-memory Backend for handler tests.
type memBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemBackend() *memBackend { return &memBackend{m: make(map[string][]byte)} }

var errMissing = errors.New("missing")

func (b *memBackend) backend() Backend {
	return Backend{
		Get: func(ctx context.Context, name string) (io.ReadCloser, error) {
			b.mu.Lock()
			defer b.mu.Unlock()
			data, ok := b.m[name]
			if !ok {
				return nil, errMissing
			}
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		GetAt: func(ctx context.Context, name string) (ReaderAtCloser, int64, error) {
			b.mu.Lock()
			defer b.mu.Unlock()
			data, ok := b.m[name]
			if !ok {
				return nil, 0, errMissing
			}
			return nopReaderAt{bytes.NewReader(data)}, int64(len(data)), nil
		},
		Put: func(ctx context.Context, name string, write func(io.Writer) error) error {
			var buf bytes.Buffer
			if err := write(&buf); err != nil {
				return err
			}
			b.mu.Lock()
			defer b.mu.Unlock()
			b.m[name] = buf.Bytes()
			return nil
		},
		List: func(ctx context.Context) ([]string, error) {
			b.mu.Lock()
			defer b.mu.Unlock()
			var names []string
			for n := range b.m {
				names = append(names, n)
			}
			sort.Strings(names)
			return names, nil
		},
		Delete: func(ctx context.Context, name string) error {
			b.mu.Lock()
			defer b.mu.Unlock()
			if _, ok := b.m[name]; !ok {
				return errMissing
			}
			delete(b.m, name)
			return nil
		},
		IsNotFound: func(err error) bool { return errors.Is(err, errMissing) },
	}
}

type nopReaderAt struct{ *bytes.Reader }

func (nopReaderAt) Close() error { return nil }

func newPair(t *testing.T) (*memBackend, *Client, *httptest.Server) {
	t.Helper()
	b := newMemBackend()
	srv := httptest.NewServer(NewHandler(b.backend()))
	t.Cleanup(srv.Close)
	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b, c, srv
}

func clientPut(t *testing.T, c *Client, name string, data []byte) {
	t.Helper()
	if err := c.Put(context.Background(), name, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		t.Fatalf("Put(%q): %v", name, err)
	}
}

func TestClientHandlerRoundTrip(t *testing.T) {
	_, c, _ := newPair(t)
	ctx := context.Background()
	want := bytes.Repeat([]byte("payload"), 1<<12)
	clientPut(t, c, "img a", want) // space: exercises path escaping
	clientPut(t, c, "zeta", []byte("z"))

	rc, err := c.Get(ctx, "img a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get round trip: %d bytes, err %v", len(got), err)
	}

	names, err := c.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 2 || names[0] != "img a" || names[1] != "zeta" {
		t.Fatalf("List = %v", names)
	}

	if err := c.Delete(ctx, "zeta"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get(ctx, "zeta"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := c.Delete(ctx, "zeta"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
}

func TestClientGetAtRanges(t *testing.T) {
	_, c, _ := newPair(t)
	ctx := context.Background()
	data := make([]byte, 70_001)
	for i := range data {
		data[i] = byte(i * 13)
	}
	clientPut(t, c, "img", data)

	src, size, err := c.GetAt(ctx, "img")
	if err != nil {
		t.Fatalf("GetAt: %v", err)
	}
	defer src.Close()
	if size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", size, len(data))
	}
	for _, r := range []struct{ off, n int }{{0, 1}, {1, 4096}, {65_536, 4465}, {70_000, 1}} {
		buf := make([]byte, r.n)
		if n, err := src.ReadAt(buf, int64(r.off)); n != r.n || (err != nil && err != io.EOF) {
			t.Fatalf("ReadAt(%d+%d) = (%d, %v)", r.off, r.n, n, err)
		} else if !bytes.Equal(buf, data[r.off:r.off+r.n]) {
			t.Fatalf("ReadAt(%d+%d): wrong bytes", r.off, r.n)
		}
	}
	if _, err := src.ReadAt(make([]byte, 1), size); err != io.EOF {
		t.Fatalf("ReadAt past EOF = %v, want io.EOF", err)
	}
	if n, err := src.ReadAt(make([]byte, 64), size-5); n != 5 || err != io.EOF {
		t.Fatalf("ReadAt straddling EOF = (%d, %v), want (5, io.EOF)", n, err)
	}

	if _, _, err := c.GetAt(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetAt(absent) = %v, want ErrNotFound", err)
	}
}

// TestClientGetAtFullBodyFallback pins that rangeReader copes with a
// server that ignores Range and answers 200 with the whole body.
func TestClientGetAtFullBodyFallback(t *testing.T) {
	data := []byte("0123456789abcdef")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		if r.Method == http.MethodHead {
			return
		}
		w.Write(data) // no Range handling at all
	}))
	defer srv.Close()
	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	src, size, err := c.GetAt(context.Background(), "img")
	if err != nil {
		t.Fatalf("GetAt: %v", err)
	}
	defer src.Close()
	if size != int64(len(data)) {
		t.Fatalf("size = %d", size)
	}
	buf := make([]byte, 6)
	if n, err := src.ReadAt(buf, 10); n != 6 || (err != nil && err != io.EOF) {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if string(buf) != "abcdef" {
		t.Fatalf("ReadAt via 200 fallback = %q", buf)
	}
}

// TestPutWriterErrorPriority pins that a failing image pipeline beats
// the transport fallout it causes: the caller sees its own error, not
// a broken-pipe artifact, and the server stores nothing.
func TestPutWriterErrorPriority(t *testing.T) {
	b, c, _ := newPair(t)
	boom := errors.New("pipeline exploded")
	err := c.Put(context.Background(), "img", func(w io.Writer) error {
		w.Write(bytes.Repeat([]byte("x"), 1<<16))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want the writer's own error", err)
	}
	b.mu.Lock()
	_, stored := b.m["img"]
	b.mu.Unlock()
	if stored {
		t.Fatal("failed Put left an image on the server")
	}
}

type transientErr interface{ Transient() bool }

// isTransient mirrors the crac retry predicate for this package's
// errors (context errors first, then the Transient method).
func isTransient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te transientErr
	return errors.As(err, &te) && te.Transient()
}

func TestStatusErrorTransient(t *testing.T) {
	for code, want := range map[int]bool{
		500: true, 502: true, 503: true, 504: true, 429: true, 408: true,
		400: false, 403: false, 404: false, 409: false, 416: false,
	} {
		e := &StatusError{Op: "get", Name: "x", Code: code}
		if e.Transient() != want {
			t.Errorf("StatusError{%d}.Transient() = %v, want %v", code, !want, want)
		}
	}
}

// TestServerErrorClassification drives real 5xx/4xx responses through
// the client and checks what the retry layer would see.
func TestServerErrorClassification(t *testing.T) {
	status := http.StatusServiceUnavailable
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic failure", status)
	}))
	defer srv.Close()
	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, err = c.Get(ctx, "img")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("Get against 503 = %v, want StatusError{503}", err)
	}
	if !isTransient(err) {
		t.Fatalf("503 not classified transient: %v", err)
	}
	if se.Body == "" {
		t.Fatal("StatusError lost the diagnostic body")
	}

	status = http.StatusBadRequest
	if _, err = c.Get(ctx, "img"); isTransient(err) {
		t.Fatalf("400 classified transient: %v", err)
	}
}

// TestConnectionRefusedTransient: a dial failure (server already down)
// must classify transient so retries compose — the ECONNRESET/refused
// family of failures.
func TestConnectionRefusedTransient(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens there anymore
	c, err := NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for op, call := range map[string]func() error{
		"get":  func() error { _, err := c.Get(ctx, "img"); return err },
		"put":  func() error { return c.Put(ctx, "img", func(io.Writer) error { return nil }) },
		"list": func() error { _, err := c.List(ctx); return err },
	} {
		err := call()
		var te *TransportError
		if !errors.As(err, &te) {
			t.Fatalf("%s against dead server = %v, want TransportError", op, err)
		}
		if !isTransient(err) {
			t.Fatalf("%s dial failure not transient: %v", op, err)
		}
	}
}

// TestClientTimeoutTransient: a per-request client timeout must stay
// retryable — the HTTP client's context.DeadlineExceeded wrapping must
// not leak through TransportError and read as caller cancellation.
func TestClientTimeoutTransient(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the client gives up
	}))
	defer srv.Close()
	// LIFO: unblock the stalled handler before srv.Close waits on it.
	defer close(release)
	c, err := NewClient(srv.URL, &http.Client{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "img")
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("timed-out Get = %v, want TransportError", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TransportError unwraps to DeadlineExceeded — retries would stop: %v", err)
	}
	if !isTransient(err) {
		t.Fatalf("client timeout not transient: %v", err)
	}
}

// TestCallerCancellationNotTransient: when the caller's own context is
// done, the client reports that context error — never a retryable one.
func TestCallerCancellationNotTransient(t *testing.T) {
	_, c, _ := newPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for op, call := range map[string]func() error{
		"get":    func() error { _, err := c.Get(ctx, "img"); return err },
		"put":    func() error { return c.Put(ctx, "img", func(io.Writer) error { return nil }) },
		"list":   func() error { _, err := c.List(ctx); return err },
		"delete": func() error { return c.Delete(ctx, "img") },
	} {
		err := call()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with cancelled ctx = %v, want context.Canceled", op, err)
		}
		if isTransient(err) {
			t.Fatalf("%s cancellation classified transient: %v", op, err)
		}
	}
}

func TestNewClientValidation(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "http://", "not a url\x00"} {
		if _, err := NewClient(bad, nil); err == nil {
			t.Errorf("NewClient(%q) accepted an invalid base URL", bad)
		}
	}
	c, err := NewClient("http://host:9120/prefix/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://host:9120/prefix" {
		t.Fatalf("BaseURL = %q, want trailing slash trimmed", c.BaseURL())
	}
}

// TestExistsBatch covers the batch existence endpoint end to end: the
// present subset comes back (and nothing else), an armed Backend.Exists
// probe is preferred over List, and empty batches cost no request.
func TestExistsBatch(t *testing.T) {
	b, c, _ := newPair(t)
	ctx := context.Background()
	clientPut(t, c, "held-a", []byte("a"))
	clientPut(t, c, "held-b", []byte("b"))

	have, err := c.ExistsBatch(ctx, []string{"held-a", "absent", "held-b", "also-absent"})
	if err != nil {
		t.Fatalf("ExistsBatch: %v", err)
	}
	if len(have) != 2 || !have["held-a"] || !have["held-b"] {
		t.Fatalf("ExistsBatch = %v, want exactly the two held names", have)
	}
	if have["absent"] || have["also-absent"] {
		t.Fatalf("ExistsBatch reported absent names present: %v", have)
	}

	// Empty batch: answered locally, no round trip to fail on.
	cDead, err := NewClient("http://127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	have, err = cDead.ExistsBatch(ctx, nil)
	if err != nil || len(have) != 0 {
		t.Fatalf("empty ExistsBatch = (%v, %v), want empty map, nil", have, err)
	}

	// With a dedicated probe the handler must use it, not List.
	var probed, listed int
	be := b.backend()
	innerList := be.List
	be.List = func(ctx context.Context) ([]string, error) { listed++; return innerList(ctx) }
	be.Exists = func(ctx context.Context, name string) (bool, error) {
		probed++
		b.mu.Lock()
		defer b.mu.Unlock()
		_, ok := b.m[name]
		return ok, nil
	}
	srv := httptest.NewServer(NewHandler(be))
	defer srv.Close()
	c2, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	have, err = c2.ExistsBatch(ctx, []string{"held-a", "absent"})
	if err != nil {
		t.Fatalf("ExistsBatch with probe: %v", err)
	}
	if len(have) != 1 || !have["held-a"] {
		t.Fatalf("ExistsBatch with probe = %v", have)
	}
	if probed != 2 || listed != 0 {
		t.Fatalf("probe calls = %d, List calls = %d; want the probe used, List untouched", probed, listed)
	}
}

// TestExistsBatchLegacyFallback: against a server predating the exists
// endpoint the client degrades to one List and still answers correctly.
func TestExistsBatchLegacyFallback(t *testing.T) {
	b := newMemBackend()
	inner := NewHandler(b.backend())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == existsRoute {
			http.NotFound(w, r) // old server: route absent
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientPut(t, c, "kept", []byte("x"))
	have, err := c.ExistsBatch(context.Background(), []string{"kept", "gone"})
	if err != nil {
		t.Fatalf("ExistsBatch against legacy server: %v", err)
	}
	if len(have) != 1 || !have["kept"] {
		t.Fatalf("legacy fallback = %v, want {kept:true}", have)
	}
}

// TestExistsBatchOversized: a batch beyond the server limit is a hard
// 400, not a partial answer.
func TestExistsBatchOversized(t *testing.T) {
	_, c, _ := newPair(t)
	names := make([]string, maxExistsBatch+1)
	for i := range names {
		names[i] = fmt.Sprintf("n%06d", i)
	}
	_, err := c.ExistsBatch(context.Background(), names)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("oversized ExistsBatch = %v, want StatusError 400", err)
	}
}

// TestPutCopyPooled is the alloc regression for the server's PUT hot
// path: the body-staging buffer must come from putCopyPool, not be
// allocated per request. 32 uploads through an unpooled path allocate
// ≥ 32 × 256 KiB = 8 MB; pooled stays far under that.
func TestPutCopyPooled(t *testing.T) {
	h := NewHandler(Backend{
		Put: func(ctx context.Context, name string, write func(io.Writer) error) error {
			return write(io.Discard)
		},
	})
	body := bytes.Repeat([]byte("x"), 1<<20)
	upload := func() {
		req := httptest.NewRequest(http.MethodPut, "/v1/images/img", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			t.Fatalf("put status = %d", rec.Code)
		}
	}
	upload() // warm the pool
	var best uint64
	for round := 0; round < 5; round++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < 32; i++ {
			upload()
		}
		runtime.ReadMemStats(&after)
		d := after.TotalAlloc - before.TotalAlloc
		if round == 0 || d < best {
			best = d
		}
	}
	if best > 4<<20 {
		t.Fatalf("32 uploads allocated %d bytes (best of 5); the PUT copy buffer is not pooled", best)
	}
}
