// Package addrspace simulates a single Linux process virtual address space
// shared by a "host" (CPU) and a "device" (GPU), as required by CUDA's
// Unified Virtual Addressing (UVA).
//
// The space is divided into two windows, mirroring CRAC's split-process
// design (Jain & Cooperman, SC'20, Section 3.1):
//
//   - the lower half holds the helper program and the active CUDA library,
//     including the device, pinned and managed allocation arenas;
//   - the upper half holds the checkpointed application.
//
// Regions are page-granular mappings with protection bits, created with
// MMap and destroyed with MUnmap, like the kernel primitives CRAC
// interposes on. MapsView reproduces the /proc/PID/maps behaviour that
// complicates checkpointing (Section 3.2.2): adjacent regions with equal
// protection are presented merged, losing the upper/lower attribution,
// which is why CRAC keeps its own per-region bookkeeping.
package addrspace

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// Prot is a bitmask of page protection flags.
type Prot uint8

// Protection bits, mirroring PROT_READ/PROT_WRITE/PROT_EXEC.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec

	ProtNone Prot = 0
	ProtRW        = ProtRead | ProtWrite
)

// String renders the protection like a /proc/PID/maps permission column.
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Half identifies which half of the split process owns a mapping.
type Half uint8

// Halves of the split process.
const (
	HalfUnknown Half = iota
	HalfLower
	HalfUpper
	// HalfMixed marks a merged maps-view entry that spans both halves;
	// it is the attribution hazard described in the paper (Section 3.2.2).
	HalfMixed
)

// String names the half.
func (h Half) String() string {
	switch h {
	case HalfLower:
		return "lower"
	case HalfUpper:
		return "upper"
	case HalfMixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// MapFlags alter MMap behaviour.
type MapFlags uint8

// Mapping flags.
const (
	// MapFixed places the mapping exactly at the hint address, silently
	// replacing any existing mapping in the range — the Linux MAP_FIXED
	// semantics whose corruption hazard Section 3.2.2 describes.
	MapFixed MapFlags = 1 << iota
	// MapFixedNoReplace places the mapping exactly at the hint address but
	// fails if any byte of the range is already mapped.
	MapFixedNoReplace
)

// Window is a half-open address range [Start, End).
type Window struct {
	Start, End uint64
}

// Contains reports whether [addr, addr+length) lies inside the window.
func (w Window) Contains(addr, length uint64) bool {
	return addr >= w.Start && addr+length <= w.End && addr+length >= addr
}

// Size returns the window length in bytes.
func (w Window) Size() uint64 { return w.End - w.Start }

// Default window layout. The absolute values are arbitrary; what matters
// is that the two windows are disjoint and the lower half is below the
// upper half, as in CRAC.
const (
	DefaultLowerStart = 0x0000_1000_0000
	DefaultLowerEnd   = 0x0000_9000_0000 // 2 GiB lower window
	DefaultUpperStart = 0x0000_a000_0000
	DefaultUpperEnd   = 0x0001_2000_0000 // 2 GiB upper window
)

// Errors returned by Space operations.
var (
	ErrUnaligned   = errors.New("addrspace: address or length not page-aligned")
	ErrZeroLength  = errors.New("addrspace: zero length")
	ErrNoSpace     = errors.New("addrspace: no free range in window")
	ErrOutOfWindow = errors.New("addrspace: address outside the half's window")
	ErrOverlap     = errors.New("addrspace: range overlaps an existing mapping")
	ErrNotMapped   = errors.New("addrspace: address range not fully mapped")
	ErrPerm        = errors.New("addrspace: protection does not permit access")
	ErrSplitRange  = errors.New("addrspace: range spans multiple regions")
)

// region is a live mapping. data always has length Len. gens holds one
// write-generation stamp per page (len(data)/PageSize entries): the
// value of the space's write epoch when the page was last written. A
// freshly inserted region is stamped with the current epoch — its bytes
// did not exist at any earlier epoch, so every incremental consumer must
// treat them as dirty. Stamps are written with atomic stores (writers
// hold only the read lock, and two writers to disjoint byte ranges may
// share a page) and read with atomic loads.
type region struct {
	start uint64
	prot  Prot
	half  Half
	label string
	data  []byte
	gens  []uint64
}

func (r *region) end() uint64 { return r.start + uint64(len(r.data)) }

// RegionInfo is a read-only snapshot of a mapping.
type RegionInfo struct {
	Start uint64
	Len   uint64
	Prot  Prot
	Half  Half
	Label string
}

// End returns the exclusive end address.
func (ri RegionInfo) End() uint64 { return ri.Start + ri.Len }

// String renders the region in a /proc/PID/maps-like format.
func (ri RegionInfo) String() string {
	return fmt.Sprintf("%012x-%012x %s %-6s %s", ri.Start, ri.End(), ri.Prot, ri.Half, ri.Label)
}

// Space is a simulated process address space. All methods are safe for
// concurrent use.
//
// Concurrency contract: structural operations (MMap, MUnmap, MProtect)
// take the write lock and are fully serialized. Data-plane operations
// (ReadAt, WriteAt, Slice) take only the read lock: they never mutate the
// region list, so any number of them may run concurrently — this is what
// lets the checkpoint/restart pipeline drain and refill many regions in
// parallel. Concurrent ReadAt/WriteAt calls over *non-overlapping* byte
// ranges are race-free. Overlapping concurrent accesses race on the
// payload bytes exactly as racing loads/stores on real memory would; the
// region bookkeeping itself stays consistent either way.
type Space struct {
	mu      sync.RWMutex
	regions []*region // sorted by start, non-overlapping
	lower   Window
	upper   Window
	aslr    bool
	rng     *rand.Rand

	// epoch is the current write epoch, starting at 1. Writes stamp the
	// pages they touch with the current epoch; CutEpoch advances it.
	// epoch only changes under the write lock, so data-plane operations
	// (which hold the read lock) see a stable value.
	epoch uint64

	// snaps are the active copy-on-write snapshots. Mutated only under
	// the write lock; data-plane writers (read lock) iterate it to
	// preserve pristine pages before mutating (see snapshot.go).
	snaps         []*Snapshot
	retainedPages atomic.Int64 // CoW pages pinned across all snapshots

	// Freeze/Thaw write gate (Session.Quiesce): every mutation path
	// holds the read side for its whole critical section, and Freeze
	// takes the write side — so Freeze both bars new mutations and waits
	// out in-flight ones. Independent of mu, and acquired before it, so
	// blocked mutators hold no lock a reader or checkpointer needs.
	gate sync.RWMutex

	// Lazy-restart fault gate (lazy.go): coldBytes is the data-plane
	// fast-path check (zero = no lazy restart in flight), lazyG the
	// cold-page set and materializer under lazyMu. Lock order: mu (any
	// mode) may be taken before lazyMu, never the reverse.
	coldBytes atomic.Int64
	lazyMu    sync.Mutex
	lazyG     lazyGate

	// mmapBacked selects anonymous-mmap backing for large regions (see
	// allocBacking): zero pages on demand instead of a heap memclr.
	// Lazily-restored spaces set it — their content arrives through
	// FillCold, so eagerly wiped backing would be paid for nothing —
	// while ordinary spaces keep heap backing (eager restores touch
	// every byte once anyway, and sequential memclr beats page faults).
	// backings pins every mapping the space ever allocated: a Slice
	// view handed to a caller does not keep non-heap memory reachable
	// on its own, so the mappings live exactly as long as the Space —
	// unmapping a region (or freeing the allocation over it) can never
	// invalidate an outstanding view while the space is alive, matching
	// the memory-safety of heap backing. The finalizer reclaims them
	// only when the whole Space is collected.
	mmapBacked bool
	backings   []*backing

	mmapCount   uint64 // statistics: total MMap calls
	munmapCount uint64
}

// Option configures a Space.
type Option func(*Space)

// WithWindows overrides the default lower/upper windows.
func WithWindows(lower, upper Window) Option {
	return func(s *Space) { s.lower, s.upper = lower, upper }
}

// WithASLR enables address randomization with the given seed. CRAC
// disables ASLR (via personality(ADDR_NO_RANDOMIZE)) because replay-based
// address restoration requires deterministic placement (Section 3.2.4).
func WithASLR(seed int64) Option {
	return func(s *Space) {
		s.aslr = true
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// New creates an empty Space with the default windows and ASLR disabled.
func New(opts ...Option) *Space {
	s := &Space{
		lower: Window{DefaultLowerStart, DefaultLowerEnd},
		upper: Window{DefaultUpperStart, DefaultUpperEnd},
		epoch: 1,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetASLR toggles address randomization at runtime, simulating the
// personality(ADDR_NO_RANDOMIZE) call CRAC issues.
func (s *Space) SetASLR(on bool, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aslr = on
	if on {
		s.rng = rand.New(rand.NewSource(seed))
	} else {
		s.rng = nil
	}
}

// ASLR reports whether address randomization is enabled.
func (s *Space) ASLR() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.aslr
}

// LowerWindow returns the lower-half window.
func (s *Space) LowerWindow() Window { return s.lower }

// UpperWindow returns the upper-half window.
func (s *Space) UpperWindow() Window { return s.upper }

func (s *Space) window(h Half) (Window, error) {
	switch h {
	case HalfLower:
		return s.lower, nil
	case HalfUpper:
		return s.upper, nil
	default:
		return Window{}, fmt.Errorf("addrspace: cannot map into half %v", h)
	}
}

// roundUp rounds n up to a multiple of PageSize.
func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// aligned reports whether a is page-aligned.
func aligned(a uint64) bool { return a%PageSize == 0 }

// MMap creates a new mapping of length bytes (rounded up to a page
// multiple) in the window belonging to half. hint is the placement hint;
// with MapFixed or MapFixedNoReplace it is mandatory. The chosen start
// address is returned.
func (s *Space) MMap(hint, length uint64, prot Prot, flags MapFlags, half Half, label string) (uint64, error) {
	if length == 0 {
		return 0, ErrZeroLength
	}
	length = roundUp(length)
	w, err := s.window(half)
	if err != nil {
		return 0, err
	}

	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mmapCount++

	switch {
	case flags&MapFixed != 0:
		if !aligned(hint) {
			return 0, ErrUnaligned
		}
		if !w.Contains(hint, length) {
			return 0, fmt.Errorf("%w: %#x+%#x not in %v window", ErrOutOfWindow, hint, length, half)
		}
		// MAP_FIXED replaces whatever is there.
		s.unmapLocked(hint, length)
		return s.insertLocked(hint, length, prot, half, label), nil

	case flags&MapFixedNoReplace != 0:
		if !aligned(hint) {
			return 0, ErrUnaligned
		}
		if !w.Contains(hint, length) {
			return 0, fmt.Errorf("%w: %#x+%#x not in %v window", ErrOutOfWindow, hint, length, half)
		}
		if s.overlapsLocked(hint, length) {
			return 0, ErrOverlap
		}
		return s.insertLocked(hint, length, prot, half, label), nil

	default:
		start, ok := s.findFreeLocked(w, length)
		if !ok {
			return 0, ErrNoSpace
		}
		return s.insertLocked(start, length, prot, half, label), nil
	}
}

// findFreeLocked locates a free range of the given length inside w. With
// ASLR off it returns the lowest fit, which is what makes replay-based
// address restoration deterministic. With ASLR on it perturbs the base.
func (s *Space) findFreeLocked(w Window, length uint64) (uint64, bool) {
	if s.aslr {
		// Try a handful of random page-aligned bases, then fall back to
		// the deterministic lowest fit.
		for try := 0; try < 16; try++ {
			span := w.Size() - length
			if span > w.Size() { // underflow: window too small
				return 0, false
			}
			base := w.Start + uint64(s.rng.Int63n(int64(span/PageSize+1)))*PageSize
			if !s.overlapsLocked(base, length) {
				return base, true
			}
		}
	}
	// Deterministic lowest-fit scan across gaps.
	prev := w.Start
	for _, r := range s.regions {
		if r.end() <= w.Start || r.start >= w.End {
			if r.start >= w.End {
				break
			}
			continue
		}
		if r.start > prev && r.start-prev >= length {
			return prev, true
		}
		if r.end() > prev {
			prev = r.end()
		}
	}
	if w.End > prev && w.End-prev >= length {
		return prev, true
	}
	return 0, false
}

func (s *Space) overlapsLocked(start, length uint64) bool {
	end := start + length
	for _, r := range s.regions {
		if r.start < end && start < r.end() {
			return true
		}
	}
	return false
}

func (s *Space) insertLocked(start, length uint64, prot Prot, half Half, label string) uint64 {
	var data []byte
	if s.mmapBacked {
		var back *backing
		data, back = allocBacking(length)
		if back != nil {
			s.backings = append(s.backings, back)
		}
	} else {
		data = make([]byte, length)
	}
	r := &region{start: start, prot: prot, half: half, label: label, data: data,
		gens: make([]uint64, length/PageSize)}
	for i := range r.gens {
		r.gens[i] = s.epoch
	}
	idx := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].start >= start })
	s.regions = append(s.regions, nil)
	copy(s.regions[idx+1:], s.regions[idx:])
	s.regions[idx] = r
	return start
}

// MUnmap removes any mappings in [addr, addr+length), splitting regions
// that straddle the range, like munmap(2).
func (s *Space) MUnmap(addr, length uint64) error {
	if !aligned(addr) {
		return ErrUnaligned
	}
	if length == 0 {
		return ErrZeroLength
	}
	length = roundUp(length)
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.munmapCount++
	s.unmapLocked(addr, length)
	return nil
}

// unmapLocked punches a hole [addr, addr+length) through the region list.
func (s *Space) unmapLocked(addr, length uint64) {
	// An active snapshot must keep the bytes the hole destroys (and
	// survive a MAP_FIXED replacement, which routes through here).
	s.preserveRangeLocked(addr, length)
	// Cold pages in the hole lose their logical content with the
	// mapping: a later mapping at the same address starts warm (zeros),
	// and the materializer must not fill stale image bytes into it.
	s.clearColdLocked(addr, length)
	end := addr + length
	var out []*region
	for _, r := range s.regions {
		switch {
		case r.end() <= addr || r.start >= end:
			out = append(out, r) // untouched
		case r.start >= addr && r.end() <= end:
			// fully covered: drop
		case r.start < addr && r.end() > end:
			// hole in the middle: split into two
			left := &region{start: r.start, prot: r.prot, half: r.half, label: r.label,
				data: r.data[:addr-r.start], gens: r.gens[:(addr-r.start)/PageSize]}
			right := &region{start: end, prot: r.prot, half: r.half, label: r.label,
				data: r.data[end-r.start:], gens: r.gens[(end-r.start)/PageSize:]}
			out = append(out, left, right)
		case r.start < addr:
			// trim tail
			r.data = r.data[:addr-r.start]
			r.gens = r.gens[:(addr-r.start)/PageSize]
			out = append(out, r)
		default:
			// trim head
			off := end - r.start
			r.data = r.data[off:]
			r.gens = r.gens[off/PageSize:]
			r.start = end
			out = append(out, r)
		}
	}
	s.regions = out
}

// MProtect changes the protection of every whole region inside
// [addr, addr+length). Regions straddling the boundary are split first.
func (s *Space) MProtect(addr, length uint64, prot Prot) error {
	if !aligned(addr) {
		return ErrUnaligned
	}
	if length == 0 {
		return ErrZeroLength
	}
	length = roundUp(length)
	end := addr + length
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Verify full coverage first.
	if !s.coveredLocked(addr, length) {
		return ErrNotMapped
	}
	s.splitAtLocked(addr)
	s.splitAtLocked(end)
	for _, r := range s.regions {
		if r.start >= addr && r.end() <= end {
			r.prot = prot
		}
	}
	return nil
}

// splitAtLocked splits any region containing addr so that addr becomes a
// region boundary.
func (s *Space) splitAtLocked(addr uint64) {
	for i, r := range s.regions {
		if r.start < addr && addr < r.end() {
			right := &region{start: addr, prot: r.prot, half: r.half, label: r.label,
				data: r.data[addr-r.start:], gens: r.gens[(addr-r.start)/PageSize:]}
			r.data = r.data[:addr-r.start]
			r.gens = r.gens[:(addr-r.start)/PageSize]
			rest := make([]*region, 0, len(s.regions)+1)
			rest = append(rest, s.regions[:i+1]...)
			rest = append(rest, right)
			rest = append(rest, s.regions[i+1:]...)
			s.regions = rest
			return
		}
	}
}

func (s *Space) coveredLocked(addr, length uint64) bool {
	end := addr + length
	at := addr
	for _, r := range s.regions {
		if r.end() <= at {
			continue
		}
		if r.start > at {
			return false
		}
		at = r.end()
		if at >= end {
			return true
		}
	}
	return at >= end
}

// findLocked returns the region containing addr, or nil.
func (s *Space) findLocked(addr uint64) *region {
	idx := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].end() > addr })
	if idx < len(s.regions) && s.regions[idx].start <= addr {
		return s.regions[idx]
	}
	return nil
}

// ReadAt copies len(p) bytes starting at addr into p. The range may span
// multiple contiguous regions; unmapped gaps are an error. Protection is
// checked (ProtRead required). ReadAt holds only the read lock: see the
// Space concurrency contract.
func (s *Space) ReadAt(addr uint64, p []byte) error {
	if s.coldBytes.Load() != 0 {
		if err := s.faultRange(addr, uint64(len(p))); err != nil {
			return err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.accessLocked(addr, ProtRead, p, true)
}

// WriteAt copies p into the space starting at addr (ProtWrite required).
// WriteAt holds only the read lock: concurrent writes to non-overlapping
// ranges are race-free (see the Space concurrency contract).
func (s *Space) WriteAt(addr uint64, p []byte) error {
	// A write to a cold page needs the underlying content first: the
	// write may cover only part of the page, and the rest must read
	// back as image bytes, not zeros.
	if s.coldBytes.Load() != 0 {
		if err := s.faultRange(addr, uint64(len(p))); err != nil {
			return err
		}
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.accessLocked(addr, ProtWrite, p, false)
}

// accessLocked walks regions covering [addr, addr+len(buf)) and copies
// between the region data and buf. read selects direction (true:
// region→buf). Writes run preserve → stamp → copy: active snapshots
// keep the pristine bytes, and a page's stamp is already above the cut
// by the time its content changes.
func (s *Space) accessLocked(addr uint64, need Prot, buf []byte, read bool) error {
	if len(buf) == 0 {
		return nil
	}
	at := addr
	remaining := buf
	for len(remaining) > 0 {
		r := s.findLocked(at)
		if r == nil {
			return fmt.Errorf("%w: %#x", ErrNotMapped, at)
		}
		if r.prot&need == 0 {
			return fmt.Errorf("%w: %#x needs %v has %v", ErrPerm, at, need, r.prot)
		}
		off := at - r.start
		chunk := uint64(len(r.data)) - off
		if chunk > uint64(len(remaining)) {
			chunk = uint64(len(remaining))
		}
		if read {
			copy(remaining[:chunk], r.data[off:off+chunk])
		} else {
			s.preserveForSnapshots(r, off, chunk)
			r.stamp(off, chunk, s.epoch)
			copy(r.data[off:off+chunk], remaining[:chunk])
		}
		remaining = remaining[chunk:]
		at += chunk
	}
	return nil
}

// stamp marks the pages covering [off, off+length) as written at epoch.
// Called with at least the read lock held; stores are atomic because
// concurrent writers to disjoint byte ranges may share a page.
func (r *region) stamp(off, length, epoch uint64) {
	if length == 0 {
		return
	}
	first := off / PageSize
	last := (off + length - 1) / PageSize
	for pi := first; pi <= last; pi++ {
		atomic.StoreUint64(&r.gens[pi], epoch)
	}
}

// Slice returns a direct, mutable view of [addr, addr+length). The range
// must lie within a single region; this is the fast path used by kernel
// execution (a real GPU would access this memory through UVA directly).
//
// Because the caller may write through the returned view, Slice
// conservatively stamps the whole range dirty when the region is
// writable. Callers that only read should use ReadSlice, which keeps
// the dirty tracking precise.
func (s *Space) Slice(addr, length uint64) ([]byte, error) {
	return s.slice(addr, length, true)
}

// ReadSlice is Slice for read-only use: it returns the same view but
// never marks the range dirty. The caller must not write through it.
func (s *Space) ReadSlice(addr, length uint64) ([]byte, error) {
	return s.slice(addr, length, false)
}

func (s *Space) slice(addr, length uint64, write bool) ([]byte, error) {
	// The caller gets a direct view and may access it at any later
	// point, bypassing the fault gate — so the whole range materializes
	// before the view is handed out.
	if s.coldBytes.Load() != 0 {
		if err := s.faultRange(addr, length); err != nil {
			return nil, err
		}
	}
	if write {
		// Held only for the stamp/preserve window, not for later writes
		// through the returned view: Quiesce additionally gates kernel
		// launches, which is what bounds writers that keep slices.
		s.gate.RLock()
		defer s.gate.RUnlock()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.findLocked(addr)
	if r == nil {
		return nil, fmt.Errorf("%w: %#x", ErrNotMapped, addr)
	}
	off := addr - r.start
	if off+length > uint64(len(r.data)) {
		// The logical range continues into a neighbouring region: callers
		// must fall back to ReadAt/WriteAt.
		if s.coveredLocked(addr, length) {
			return nil, ErrSplitRange
		}
		return nil, fmt.Errorf("%w: %#x+%#x", ErrNotMapped, addr, length)
	}
	if write && r.prot&ProtWrite != 0 {
		// The caller may mutate through the view after we return, so an
		// active snapshot must take its copy now — same conservative
		// granularity as the dirty stamp. A view must not be held across
		// a later snapshot arming (the same contract dirty tracking
		// already imposes across CutEpoch).
		s.preserveForSnapshots(r, off, length)
		r.stamp(off, length, s.epoch)
	}
	return r.data[off : off+length : off+length], nil
}

// Regions returns a snapshot of all raw (unmerged) mappings in address
// order. This is CRAC's own bookkeeping view, which preserves the
// upper/lower attribution that the maps view loses.
func (s *Space) Regions() []RegionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionInfo, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, RegionInfo{Start: r.start, Len: uint64(len(r.data)), Prot: r.prot, Half: r.half, Label: r.label})
	}
	return out
}

// RegionsIn returns the raw mappings attributed to the given half.
func (s *Space) RegionsIn(h Half) []RegionInfo {
	var out []RegionInfo
	for _, ri := range s.Regions() {
		if ri.Half == h {
			out = append(out, ri)
		}
	}
	return out
}

// MapsView returns the /proc/PID/maps presentation: adjacent regions with
// identical protection are merged into one entry. When a merge combines
// regions from different halves the result is attributed HalfMixed —
// reproducing the hazard of Section 3.2.2 that forces CRAC to track its
// own allocations.
func (s *Space) MapsView() []RegionInfo {
	raw := s.Regions()
	var out []RegionInfo
	for _, ri := range raw {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.End() == ri.Start && last.Prot == ri.Prot {
				last.Len += ri.Len
				if last.Half != ri.Half {
					last.Half = HalfMixed
				}
				if last.Label != ri.Label {
					last.Label = last.Label + "+" + ri.Label
				}
				continue
			}
		}
		out = append(out, ri)
	}
	return out
}

// MappedBytes returns the total bytes mapped in the given half.
func (s *Space) MappedBytes(h Half) uint64 {
	var n uint64
	for _, ri := range s.Regions() {
		if ri.Half == h {
			n += ri.Len
		}
	}
	return n
}

// Stats reports cumulative mmap/munmap call counts.
func (s *Space) Stats() (mmaps, munmaps uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mmapCount, s.munmapCount
}

// Span is a byte range [Off, Off+Len) relative to a region's start.
type Span struct {
	Off, Len uint64
}

// RegionDirty lists the page-granular dirty spans of one region.
type RegionDirty struct {
	Start uint64 // region start address
	Spans []Span // merged, ascending, page-granular
	Bytes uint64 // total dirty bytes (Σ Spans[i].Len)
}

// WriteEpoch returns the current write epoch. Pages written from now on
// (until the next CutEpoch) are stamped with this value.
func (s *Space) WriteEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// CutEpoch takes a dirty-tracking cut: it returns the current epoch and
// advances to the next one. Every write that happened before the call
// is stamped ≤ the returned cut; every write after it is stamped > the
// cut. An incremental checkpointer records the cut at each checkpoint
// and asks DirtySince(prevCut) at the next one.
func (s *Space) CutEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cut := s.epoch
	s.epoch++
	return cut
}

// DirtySince returns, for every region of the half with at least one
// page written after the since cut, the merged dirty spans. since == 0
// reports everything as dirty (pages carry the stamp of the epoch that
// created them, and epochs start at 1).
func (s *Space) DirtySince(h Half, since uint64) []RegionDirty {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []RegionDirty
	for _, r := range s.regions {
		if r.half != h {
			continue
		}
		rd := RegionDirty{Start: r.start}
		rd.Spans = genSpans(func(pi int) uint64 { return atomic.LoadUint64(&r.gens[pi]) },
			len(r.gens), uint64(len(r.data)), since)
		for _, sp := range rd.Spans {
			rd.Bytes += sp.Len
		}
		if len(rd.Spans) > 0 {
			out = append(out, rd)
		}
	}
	return out
}

// RangeDirtySince reports whether any page overlapping
// [addr, addr+length) was written after the since cut. Unmapped bytes
// in the range count as dirty — the caller cannot prove them unchanged.
func (s *Space) RangeDirtySince(addr, length, since uint64) bool {
	if length == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	end := addr + length
	at := addr
	for at < end {
		r := s.findLocked(at)
		if r == nil {
			return true
		}
		first := (at - r.start) / PageSize
		stop := end
		if re := r.end(); re < stop {
			stop = re
		}
		last := (stop - 1 - r.start) / PageSize
		for pi := first; pi <= last; pi++ {
			if atomic.LoadUint64(&r.gens[pi]) > since {
				return true
			}
		}
		at = r.end()
	}
	return false
}

// SetMmapBacked toggles anonymous-mmap backing for regions created
// from now on (see WithMmapBacking). Call before the space is
// populated.
func (s *Space) SetMmapBacked(on bool) {
	s.mu.Lock()
	s.mmapBacked = on
	s.mu.Unlock()
}
