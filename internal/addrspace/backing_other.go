//go:build !linux && !darwin

package addrspace

// backing is unused on platforms without anonymous-mmap support: all
// region memory comes from the Go heap.
type backing struct{}

// allocBacking returns a zeroed byte slice of length n.
func allocBacking(n uint64) ([]byte, *backing) {
	return make([]byte, n), nil
}
