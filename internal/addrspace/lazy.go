// Lazy materialization: the fault gate behind CRAC's lazy on-demand
// restart.
//
// An eager restart fills every restored byte before the application
// runs. The lazy path instead maps regions (and replayed allocations)
// with their content *cold*: the pages are tracked in a cold interval
// set, and the first access through any data-plane operation — ReadAt,
// WriteAt, Slice/ReadSlice — faults the page range in by calling a
// registered Materializer, which decodes the backing image shards and
// pushes the bytes back through FillCold. A background prefetcher
// drains the rest of the cold set concurrently with execution, through
// the same materializer, so faults and prefetch deduplicate on the
// shard level (the materializer's single-flight).
//
// The gate is content-only: materializing a page neither advances its
// write-generation stamp (the bytes logically existed since the
// restart that created the mapping) nor takes the Freeze/Thaw write
// gate (a quiesced session may still be checkpointed, and the
// checkpoint's reads must be able to fault cold pages in without
// deadlocking against the held gate).
package addrspace

import (
	"errors"
	"fmt"
	"sort"
)

// Materializer materializes checkpointed content: on a nil return,
// every cold page of [addr, addr+length) must hold its image bytes
// (pushed through FillCold) and be marked warm (MarkWarm). length is
// page-aligned. Implementations may materialize more than asked — a
// whole image shard, typically — but must mark warm at least the
// requested range. Called without any space lock held.
type Materializer func(addr, length uint64) error

// ErrNoMaterializer reports an access to a cold page on a space whose
// materializer was never installed (or already uninstalled) — a lazy
// restart bookkeeping bug, not an application error.
var ErrNoMaterializer = errors.New("addrspace: cold page with no materializer installed")

// lazyGate is the cold-range bookkeeping of one lazy restart: a
// sorted, disjoint, page-aligned interval set of absolute addresses
// still unmaterialized. Guarded by lazyMu; the fast path (no lazy
// restart in flight) is a single atomic counter load in the data-plane
// operations. Intervals, not a page map: marking a 64 MiB image cold
// is a handful of merges instead of tens of thousands of map inserts,
// which keeps the restart's visible phase O(plans).
type lazyGate struct {
	active bool
	mat    Materializer
	cold   []Span // sorted by Off, disjoint, page-aligned
}

func pageDown(a uint64) uint64 { return a &^ (PageSize - 1) }
func pageUp(a uint64) uint64   { return (a + PageSize - 1) &^ (PageSize - 1) }

// insertSpan merges [lo, hi) into the sorted disjoint set, returning
// the new set and how many bytes were actually added.
func insertSpan(spans []Span, lo, hi uint64) ([]Span, uint64) {
	if lo >= hi {
		return spans, 0
	}
	// First span whose end is beyond lo.
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Off+spans[i].Len > lo })
	newLo, newHi := lo, hi
	j := i
	var already uint64
	for ; j < len(spans) && spans[j].Off <= hi; j++ {
		if spans[j].Off < newLo {
			newLo = spans[j].Off
		}
		if e := spans[j].Off + spans[j].Len; e > newHi {
			newHi = e
		}
		already += spans[j].Len
	}
	// Bytes added = merged extent minus what was already there.
	added := (newHi - newLo) - already
	out := make([]Span, 0, len(spans)-(j-i)+1)
	out = append(out, spans[:i]...)
	out = append(out, Span{Off: newLo, Len: newHi - newLo})
	out = append(out, spans[j:]...)
	return out, added
}

// subtractSpan removes [lo, hi) from the set, returning the new set
// and how many bytes were actually removed.
func subtractSpan(spans []Span, lo, hi uint64) ([]Span, uint64) {
	if lo >= hi {
		return spans, 0
	}
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Off+spans[i].Len > lo })
	if i == len(spans) || spans[i].Off >= hi {
		return spans, 0
	}
	out := append([]Span(nil), spans[:i]...)
	var removed uint64
	j := i
	for ; j < len(spans) && spans[j].Off < hi; j++ {
		sp := spans[j]
		clo, chi := sp.Off, sp.Off+sp.Len
		if clo < lo {
			out = append(out, Span{Off: clo, Len: lo - clo})
			clo = lo
		}
		if chi > hi {
			out = append(out, Span{Off: hi, Len: chi - hi})
			chi = hi
		}
		if clo < chi {
			removed += chi - clo
		}
	}
	out = append(out, spans[j:]...)
	return out, removed
}

// overlapsOf returns the intersections of [lo, hi) with the set.
func overlapsOf(spans []Span, lo, hi uint64) []Span {
	var out []Span
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Off+spans[i].Len > lo })
	for ; i < len(spans) && spans[i].Off < hi; i++ {
		clo, chi := spans[i].Off, spans[i].Off+spans[i].Len
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		if clo < chi {
			out = append(out, Span{Off: clo, Len: chi - clo})
		}
	}
	return out
}

// BeginLazy installs the materializer for a lazy restart. Any previous
// gate state is replaced (cold marks of an abandoned restart are
// dropped; the session guarantees the old space is unreachable first).
func (s *Space) BeginLazy(mat Materializer) {
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	s.coldBytes.Store(0)
	s.lazyG = lazyGate{active: true, mat: mat}
}

// EndLazy uninstalls the fault gate, dropping any remaining cold marks
// (their content is no longer materializable). Idempotent.
func (s *Space) EndLazy() {
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	s.coldBytes.Store(0)
	s.lazyG = lazyGate{}
}

// MarkCold marks every page overlapping [addr, addr+length) as
// unmaterialized. The caller must have installed a materializer with
// BeginLazy that can supply the range's content.
func (s *Space) MarkCold(addr, length uint64) {
	if length == 0 {
		return
	}
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	if !s.lazyG.active {
		return
	}
	var added uint64
	s.lazyG.cold, added = insertSpan(s.lazyG.cold, pageDown(addr), pageUp(addr+length))
	s.coldBytes.Add(int64(added))
}

// MarkWarm clears the cold mark of every page fully or partially
// overlapping [addr, addr+length): their content is materialized and
// accesses may proceed. Idempotent.
func (s *Space) MarkWarm(addr, length uint64) {
	if length == 0 {
		return
	}
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	if !s.lazyG.active {
		return
	}
	var removed uint64
	s.lazyG.cold, removed = subtractSpan(s.lazyG.cold, pageDown(addr), pageUp(addr+length))
	s.coldBytes.Add(-int64(removed))
}

// clearColdLocked drops the cold marks of an unmapped range: the
// mapping (and with it the logical content) is gone, and a later
// mapping at the same address starts fresh (zero-filled, warm).
// Called with s.mu held for writing by the structural ops.
func (s *Space) clearColdLocked(addr, length uint64) {
	if s.coldBytes.Load() == 0 || length == 0 {
		return
	}
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	var removed uint64
	s.lazyG.cold, removed = subtractSpan(s.lazyG.cold, pageDown(addr), pageUp(addr+length))
	s.coldBytes.Add(-int64(removed))
}

// ColdBytes counts the bytes still awaiting materialization. Zero once
// a lazy restart has fully drained (or none is in flight).
func (s *Space) ColdBytes() uint64 { return uint64(s.coldBytes.Load()) }

// ColdPages is ColdBytes in pages.
func (s *Space) ColdPages() int64 { return s.coldBytes.Load() / PageSize }

// Covers reports whether [addr, addr+length) is fully mapped, without
// touching content — unlike Slice/ReadAt it never faults cold pages
// in, so registration-style validations (cudaHostRegister at replay)
// stay O(metadata) during a lazy restart.
func (s *Space) Covers(addr, length uint64) bool {
	if length == 0 {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coveredLocked(addr, length)
}

// Readable is Covers plus the protection check a real read would make:
// every byte of [addr, addr+length) is mapped with ProtRead. Like
// Covers it never faults cold pages in.
func (s *Space) Readable(addr, length uint64) bool {
	if length == 0 {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	end := addr + length
	at := addr
	for at < end {
		r := s.findLocked(at)
		if r == nil || r.prot&ProtRead == 0 {
			return false
		}
		at = r.end()
	}
	return true
}

// coldRuns returns the cold intervals overlapping [addr, addr+length)
// (page-aligned, merged, ascending) plus the installed materializer.
func (s *Space) coldRuns(addr, length uint64) ([]Span, Materializer) {
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	return overlapsOf(s.lazyG.cold, pageDown(addr), pageUp(addr+length)), s.lazyG.mat
}

// faultRange materializes whatever part of [addr, addr+length) is
// still cold, blocking until the content is in place. The fast path
// (no cold pages anywhere) is a single atomic load, checked by the
// callers before descending here. Called without space locks held.
func (s *Space) faultRange(addr, length uint64) error {
	if length == 0 {
		return nil
	}
	runs, mat := s.coldRuns(addr, length)
	if len(runs) == 0 {
		return nil
	}
	if mat == nil {
		return fmt.Errorf("%w: %#x+%#x", ErrNoMaterializer, addr, length)
	}
	for _, run := range runs {
		if err := mat(run.Off, run.Len); err != nil {
			return fmt.Errorf("addrspace: materializing %#x+%#x: %w", run.Off, run.Len, err)
		}
	}
	return nil
}

// DrainLazy materializes every remaining cold page — the whole-image
// drain a prefetcher performs, and the barrier a copy-on-write
// snapshot arming needs (Snapshot.ReadAt reads frozen backing arrays
// directly, bypassing the fault gate, so nothing may be cold once a
// snapshot arms). No-op when nothing is cold.
func (s *Space) DrainLazy() error {
	for {
		before := s.coldBytes.Load()
		if before == 0 {
			return nil
		}
		s.lazyMu.Lock()
		runs := append([]Span(nil), s.lazyG.cold...)
		mat := s.lazyG.mat
		s.lazyMu.Unlock()
		if len(runs) == 0 {
			return nil // raced with a concurrent drain: nothing left
		}
		if mat == nil {
			return fmt.Errorf("%w: %d cold bytes", ErrNoMaterializer, before)
		}
		for _, run := range runs {
			if err := mat(run.Off, run.Len); err != nil {
				return fmt.Errorf("addrspace: materializing %#x+%#x: %w", run.Off, run.Len, err)
			}
		}
		if s.coldBytes.Load() >= before {
			// The materializer made no progress: a contract violation
			// (it must mark materialized ranges warm), not a data error.
			return fmt.Errorf("%w: materializer left %d bytes cold", ErrNoMaterializer, s.coldBytes.Load())
		}
	}
}

// FillCold writes p at addr, but only onto pages still marked cold —
// the privileged push side of the materializer. It bypasses page
// protection (like the checkpointer's reads) and the Freeze/Thaw write
// gate (the content logically predates the freeze: it is the restored
// image's, not a new application write), and does not advance dirty
// stamps (the pages keep their restart-time stamps, exactly as an
// eager restore's bytes would be attributed). Writing only cold pages
// makes the push idempotent and protects ranges that were unmapped (or
// unmapped-and-remapped) since the plan was laid: their cold marks are
// gone, so stale image bytes can never overwrite fresh mappings or
// application writes.
//
// Two FillCold calls must never target the same byte concurrently
// (the restorer's single-flight guarantees it); calls over disjoint
// bytes may run in parallel.
func (s *Space) FillCold(addr uint64, p []byte) {
	if len(p) == 0 {
		return
	}
	end := addr + uint64(len(p))
	s.lazyMu.Lock()
	targets := overlapsOf(s.lazyG.cold, addr, end)
	s.lazyMu.Unlock()
	if len(targets) == 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, tg := range targets {
		at := tg.Off
		for at < tg.Off+tg.Len {
			r := s.findLocked(at)
			if r == nil {
				at += PageSize // unmapped since the plan was laid
				continue
			}
			hi := tg.Off + tg.Len
			if re := r.end(); re < hi {
				hi = re
			}
			copy(r.data[at-r.start:hi-r.start], p[at-addr:hi-addr])
			at = hi
		}
	}
}
