// Copy-on-write snapshots: the read-consistent overlay behind CRAC's
// concurrent (snapshot-and-release) checkpoints.
//
// Snapshot() captures, under the write lock, the region table and the
// per-page write-generation stamps — O(metadata), no payload copying.
// From then on the first write to any page (WriteAt, writable Slice, or
// a structural unmap/replace) copies the page's pristine bytes into the
// snapshot before the mutation lands, so Snapshot.ReadAt always returns
// the bytes as of the arming instant while the application keeps
// executing. Release drops the retained pages; ReleaseRange lets a
// consumer (the checkpoint shard pipeline) drop pages incrementally as
// it finishes with them, bounding peak retention.
package addrspace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// View is the read surface of an address space that the checkpoint data
// path consumes. The live *Space implements it (blocking checkpoints),
// as does *Snapshot (concurrent checkpoints): engine and plugins written
// against View produce byte-identical images either way.
type View interface {
	// ReadAt copies len(p) bytes starting at addr into p.
	ReadAt(addr uint64, p []byte) error
	// Regions returns all mappings in address order.
	Regions() []RegionInfo
	// RegionsIn returns the mappings attributed to the given half.
	RegionsIn(h Half) []RegionInfo
	// DirtySince reports the merged dirty spans per region of the half.
	DirtySince(h Half, since uint64) []RegionDirty
	// RangeDirtySince reports whether any page overlapping the range was
	// written after the since cut.
	RangeDirtySince(addr, length, since uint64) bool
}

// RangeReleaser is implemented by views that retain copy-on-write state:
// a consumer that is finished reading [addr, addr+length) calls
// ReleaseRange so the view can drop (and stop re-copying) the pages
// fully inside the range. Reading a released range again is invalid.
type RangeReleaser interface {
	ReleaseRange(addr, length uint64)
}

var (
	_ View = (*Space)(nil)
	_ View = (*Snapshot)(nil)

	_ RangeReleaser = (*Snapshot)(nil)
)

// snapStripes is the lock striping of the preserved-page store. CoW
// traffic is at most one preservation per page per snapshot, so a small
// fixed stripe count is plenty.
const snapStripes = 64

// pagePool recycles preserved-page buffers across snapshots.
var pagePool = sync.Pool{New: func() any { return new([PageSize]byte) }}

type snapStripe struct {
	mu sync.Mutex
	// pages maps page-aligned addresses to preserved pristine bytes. A
	// nil value is a released tombstone: the page is no longer needed and
	// must not be re-preserved. A nil map means the snapshot is released.
	pages map[uint64]*[PageSize]byte
}

// snapRegion is one frozen region: the arming-time metadata, a copy of
// the per-page write-generation stamps, and a reference to the region's
// backing array as of arming. The reference stays valid whatever the
// live space does: structural trims and splits re-slice the region but
// share the array, a MAP_FIXED replacement orphans it (immutable from
// then on), and every in-place write preserves the page into the
// snapshot before mutating. (Mmap-backed arrays are pinned by the
// Space itself — Snapshot.space keeps it, and so them, reachable.)
type snapRegion struct {
	RegionInfo
	gens []uint64
	data []byte
}

// Snapshot is a read-consistent copy-on-write view of a Space, armed by
// Space.Snapshot. Reads are safe for concurrent use with each other and
// with any Space operation. The snapshot pins arming-time bytes only
// for pages that are subsequently written; unwritten pages read through
// to the live space, so an idle snapshot costs only metadata.
//
// Reads ignore page protection: the snapshot is the checkpointer's
// privileged view (like /proc/PID/mem), so a concurrent MProtect cannot
// fail an in-flight image write.
type Snapshot struct {
	space    *Space
	regions  []snapRegion // sorted by Start
	stripes  [snapStripes]snapStripe
	released atomic.Bool
}

// Snapshot arms a copy-on-write snapshot of the whole space (both
// halves). It takes the write lock, so every in-flight data-plane
// operation completes before the capture: the snapshot is consistent at
// a single linearization point. The caller must Release it.
func (s *Space) Snapshot() *Snapshot {
	// Snapshot reads bypass the lazy fault gate (they copy out of the
	// frozen backing arrays directly), so a snapshot may only arm over
	// fully materialized memory. Callers that can surface the error
	// (Session.armFrozen) drain first; this drain is the best-effort
	// backstop for direct users.
	if s.coldBytes.Load() != 0 {
		_ = s.DrainLazy()
	}
	sn := &Snapshot{space: s}
	for i := range sn.stripes {
		sn.stripes[i].pages = make(map[uint64]*[PageSize]byte)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn.regions = make([]snapRegion, len(s.regions))
	for i, r := range s.regions {
		sn.regions[i] = snapRegion{
			RegionInfo: RegionInfo{Start: r.start, Len: uint64(len(r.data)), Prot: r.prot, Half: r.half, Label: r.label},
			// No writer holds the read lock while we hold the write lock,
			// so the stamps are quiescent and a plain copy is race-free.
			gens: append([]uint64(nil), r.gens...),
			data: r.data,
		}
	}
	s.snaps = append(s.snaps, sn)
	return sn
}

// findRegion resolves addr against the frozen region table (sorted by
// Start), the single lookup behind covers, ReadAt, and RangeDirtySince.
func (sn *Snapshot) findRegion(addr uint64) (*snapRegion, bool) {
	idx := sort.Search(len(sn.regions), func(i int) bool {
		return sn.regions[i].Start+sn.regions[i].Len > addr
	})
	if idx >= len(sn.regions) || sn.regions[idx].Start > addr {
		return nil, false
	}
	return &sn.regions[idx], true
}

// covers reports whether addr lay inside a region at arming time.
// Pages outside the frozen table can never be read back through the
// snapshot, so preserving them would only waste copies and retention.
func (sn *Snapshot) covers(addr uint64) bool {
	_, ok := sn.findRegion(addr)
	return ok
}

// preserve copies the pristine bytes of every page covering
// [off, off+length) of r into the snapshot, unless already preserved
// (or released, or unmapped at arming time). Callers hold at least the
// space's read lock and must call preserve *before* mutating the range
// — the ordering that makes Snapshot.ReadAt sound.
func (sn *Snapshot) preserve(r *region, off, length uint64) {
	if length == 0 || sn.released.Load() {
		return
	}
	first := off / PageSize
	last := (off + length - 1) / PageSize
	for pi := first; pi <= last; pi++ {
		pageOff := pi * PageSize
		if pageOff >= uint64(len(r.data)) {
			break
		}
		addr := r.start + pageOff
		if !sn.covers(addr) {
			continue
		}
		st := &sn.stripes[(addr/PageSize)%snapStripes]
		st.mu.Lock()
		if st.pages != nil {
			if _, ok := st.pages[addr]; !ok {
				end := pageOff + PageSize
				if end > uint64(len(r.data)) {
					end = uint64(len(r.data))
				}
				pg := pagePool.Get().(*[PageSize]byte)
				copy(pg[:end-pageOff], r.data[pageOff:end])
				st.pages[addr] = pg
				sn.space.retainedPages.Add(1)
			}
		}
		st.mu.Unlock()
	}
}

// ReadAt implements View: it returns the bytes of [addr, addr+len(p))
// as of the arming instant, regardless of writes since. The range must
// have been mapped at arming time. Reads ignore page protection (the
// checkpointer's privileged view) and touch no space lock: each page is
// resolved against the frozen region table, then copied under its
// stripe lock — which serializes exactly with the preserve-then-mutate
// protocol of the write paths, so a page either still carries its
// pristine bytes in the frozen backing array or its preserved copy is
// already in the stripe map.
func (sn *Snapshot) ReadAt(addr uint64, p []byte) error {
	at := addr
	remaining := p
	for len(remaining) > 0 {
		sr, ok := sn.findRegion(at)
		if !ok {
			return fmt.Errorf("%w: %#x (at snapshot time)", ErrNotMapped, at)
		}
		for len(remaining) > 0 && at < sr.Start+sr.Len {
			pageAddr := at &^ (PageSize - 1)
			po := at - pageAddr
			chunk := uint64(PageSize) - po
			if end := sr.Start + sr.Len - at; chunk > end {
				chunk = end
			}
			if chunk > uint64(len(remaining)) {
				chunk = uint64(len(remaining))
			}
			dst := remaining[:chunk]
			off := at - sr.Start
			st := &sn.stripes[(pageAddr/PageSize)%snapStripes]
			st.mu.Lock()
			if pg := st.pages[pageAddr]; pg != nil {
				copy(dst, pg[po:po+chunk])
			} else {
				copy(dst, sr.data[off:off+chunk])
			}
			st.mu.Unlock()
			remaining = remaining[chunk:]
			at += chunk
		}
	}
	return nil
}

// Regions implements View: the region table as of arming.
func (sn *Snapshot) Regions() []RegionInfo {
	out := make([]RegionInfo, len(sn.regions))
	for i := range sn.regions {
		out[i] = sn.regions[i].RegionInfo
	}
	return out
}

// RegionsIn implements View.
func (sn *Snapshot) RegionsIn(h Half) []RegionInfo {
	var out []RegionInfo
	for i := range sn.regions {
		if sn.regions[i].Half == h {
			out = append(out, sn.regions[i].RegionInfo)
		}
	}
	return out
}

// DirtySince implements View against the frozen generation stamps:
// writes after arming do not appear, so a delta written from the
// snapshot emits exactly the shards a blocking checkpoint at the arming
// point would have.
func (sn *Snapshot) DirtySince(h Half, since uint64) []RegionDirty {
	var out []RegionDirty
	for i := range sn.regions {
		sr := &sn.regions[i]
		if sr.Half != h {
			continue
		}
		rd := RegionDirty{Start: sr.Start}
		rd.Spans = genSpans(func(pi int) uint64 { return sr.gens[pi] }, len(sr.gens), sr.Len, since)
		for _, sp := range rd.Spans {
			rd.Bytes += sp.Len
		}
		if len(rd.Spans) > 0 {
			out = append(out, rd)
		}
	}
	return out
}

// RangeDirtySince implements View against the frozen stamps. Bytes not
// mapped at arming count as dirty.
func (sn *Snapshot) RangeDirtySince(addr, length, since uint64) bool {
	if length == 0 {
		return false
	}
	end := addr + length
	at := addr
	for at < end {
		sr, ok := sn.findRegion(at)
		if !ok {
			return true
		}
		stop := end
		if re := sr.Start + sr.Len; re < stop {
			stop = re
		}
		first := (at - sr.Start) / PageSize
		last := (stop - 1 - sr.Start) / PageSize
		for pi := first; pi <= last; pi++ {
			if sr.gens[pi] > since {
				return true
			}
		}
		at = sr.Start + sr.Len
	}
	return false
}

// ReleaseRange drops the preserved pages lying fully inside
// [addr, addr+length) and tombstones them so later writes stop copying.
// Pages straddling the range boundaries are kept: a neighbouring
// consumer may still need them. Reading a released range again returns
// live (possibly mutated) bytes — callers release only what they are
// done with.
func (sn *Snapshot) ReleaseRange(addr, length uint64) {
	if length == 0 || sn.released.Load() {
		return
	}
	end := addr + length
	var dropped int64
	for pa := (addr + PageSize - 1) &^ (PageSize - 1); pa+PageSize <= end; pa += PageSize {
		st := &sn.stripes[(pa/PageSize)%snapStripes]
		st.mu.Lock()
		if st.pages != nil {
			if pg, ok := st.pages[pa]; !ok || pg != nil {
				if pg != nil {
					pagePool.Put(pg)
					dropped++
				}
				st.pages[pa] = nil
			}
		}
		st.mu.Unlock()
	}
	if dropped != 0 {
		sn.space.retainedPages.Add(-dropped)
	}
}

// Release detaches the snapshot from the space (writes stop preserving
// pages for it) and drops every retained page. Idempotent.
func (sn *Snapshot) Release() {
	if sn.released.Swap(true) {
		return
	}
	s := sn.space
	s.mu.Lock()
	for i, x := range s.snaps {
		if x == sn {
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	var dropped int64
	for i := range sn.stripes {
		st := &sn.stripes[i]
		st.mu.Lock()
		for _, pg := range st.pages {
			if pg != nil {
				pagePool.Put(pg)
				dropped++
			}
		}
		st.pages = nil
		st.mu.Unlock()
	}
	if dropped != 0 {
		s.retainedPages.Add(-dropped)
	}
}

// RetainedPages counts the CoW pages currently pinned across all active
// snapshots of the space. After every snapshot is released it is zero —
// the leak check concurrent-checkpoint tests assert.
func (s *Space) RetainedPages() int64 { return s.retainedPages.Load() }

// preserveForSnapshots copies the pristine bytes of [off, off+length)
// of r into every active snapshot. Called from every mutation path with
// at least the read lock held, before the mutation.
func (s *Space) preserveForSnapshots(r *region, off, length uint64) {
	for _, sn := range s.snaps {
		sn.preserve(r, off, length)
	}
}

// preserveRangeLocked preserves whatever part of [addr, addr+length) is
// currently mapped, into every active snapshot. Called with the write
// lock held by structural ops (munmap, MAP_FIXED replace) before they
// destroy the mappings.
func (s *Space) preserveRangeLocked(addr, length uint64) {
	if len(s.snaps) == 0 {
		return
	}
	end := addr + length
	for _, r := range s.regions {
		lo, hi := r.start, r.end()
		if lo < addr {
			lo = addr
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			s.preserveForSnapshots(r, lo-r.start, hi-lo)
		}
	}
}

// Freeze gates every mutation of the space — WriteAt, writable Slice,
// MMap, MUnmap, MProtect — until Thaw: new callers block (they do not
// fail), and Freeze itself waits out mutations already in flight, so
// when it returns the space is quiescent. Reads are unaffected, so a
// checkpoint can run over a frozen space. This is the memory half of
// Session.Quiesce. Freeze does not nest — a second Freeze before Thaw
// deadlocks; callers (the Session) track their own nesting depth.
func (s *Space) Freeze() {
	s.gate.Lock()
}

// Thaw releases a Freeze, waking every blocked mutator.
func (s *Space) Thaw() {
	s.gate.Unlock()
}

// genSpans merges the pages whose stamp exceeds since into ascending
// page-granular spans, clamping the final span to dataLen. Shared by
// the live and the frozen DirtySince.
func genSpans(load func(pi int) uint64, n int, dataLen, since uint64) []Span {
	var spans []Span
	spanStart := int64(-1)
	for pi := 0; pi < n; pi++ {
		dirty := load(pi) > since
		switch {
		case dirty && spanStart < 0:
			spanStart = int64(pi)
		case !dirty && spanStart >= 0:
			spans = append(spans, Span{Off: uint64(spanStart) * PageSize,
				Len: uint64(int64(pi)-spanStart) * PageSize})
			spanStart = -1
		}
	}
	if spanStart >= 0 {
		spans = append(spans, Span{Off: uint64(spanStart) * PageSize,
			Len: uint64(int64(n)-spanStart) * PageSize})
	}
	// The final span may overhang the region end if the length is not a
	// page multiple (split regions always are; be safe anyway).
	if n := len(spans); n > 0 {
		last := &spans[n-1]
		if last.Off+last.Len > dataLen {
			last.Len = dataLen - last.Off
		}
	}
	return spans
}

// String renders a short diagnostic description.
func (sn *Snapshot) String() string {
	return fmt.Sprintf("addrspace.Snapshot{regions: %d, released: %v}", len(sn.regions), sn.released.Load())
}
