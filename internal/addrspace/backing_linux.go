//go:build linux || darwin

package addrspace

import (
	"runtime"
	"syscall"
)

// backingThreshold is the region size from which backing memory comes
// from an anonymous mmap instead of the Go heap. Large regions (arena
// chunks, big host buffers) dominate restart latency when allocated
// with make: the runtime memclrs reused spans, so every restart pays a
// sequential wipe of the whole arena footprint before a single byte is
// restored. Anonymous mappings are zero on demand — the kernel hands
// out zero pages faulted in on first touch — which is exactly the
// behaviour the real mmap(2)-backed arenas have, and it shrinks a lazy
// restart's visible phase to O(metadata).
const backingThreshold = 1 << 20

// backing owns one anonymous mapping. Regions (and frozen snapshot
// regions) that slice into it keep a pointer, so the finalizer cannot
// unmap memory that any live view can still reach.
type backing struct{ b []byte }

// allocBacking returns a zeroed byte slice of length n and its owner
// (nil when the slice came from the Go heap). n is page-aligned.
func allocBacking(n uint64) ([]byte, *backing) {
	if n < backingThreshold {
		return make([]byte, n), nil
	}
	b, err := syscall.Mmap(-1, 0, int(n), syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return make([]byte, n), nil
	}
	bk := &backing{b: b}
	runtime.SetFinalizer(bk, func(bk *backing) { _ = syscall.Munmap(bk.b) })
	return b, bk
}
