package addrspace

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMMapBasic(t *testing.T) {
	s := New()
	addr, err := s.MMap(0, 3*PageSize, ProtRW, 0, HalfUpper, "test")
	if err != nil {
		t.Fatalf("MMap: %v", err)
	}
	if addr < s.UpperWindow().Start || addr >= s.UpperWindow().End {
		t.Fatalf("address %#x outside upper window", addr)
	}
	data := []byte("hello, address space")
	if err := s.WriteAt(addr, data); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(addr, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q want %q", got, data)
	}
}

func TestMMapRoundsUpToPage(t *testing.T) {
	s := New()
	addr, err := s.MMap(0, 100, ProtRW, 0, HalfLower, "small")
	if err != nil {
		t.Fatalf("MMap: %v", err)
	}
	ri := s.Regions()
	if len(ri) != 1 || ri[0].Len != PageSize {
		t.Fatalf("regions = %v, want one page-sized region", ri)
	}
	if _, err := s.Slice(addr, PageSize); err != nil {
		t.Fatalf("Slice over rounded region: %v", err)
	}
}

func TestMMapZeroLength(t *testing.T) {
	s := New()
	if _, err := s.MMap(0, 0, ProtRW, 0, HalfUpper, "zero"); !errors.Is(err, ErrZeroLength) {
		t.Fatalf("err = %v, want ErrZeroLength", err)
	}
}

func TestMMapLowestFitDeterministic(t *testing.T) {
	a := New()
	b := New()
	for i := 0; i < 20; i++ {
		ra, err := a.MMap(0, PageSize*uint64(1+i%3), ProtRW, 0, HalfLower, "a")
		if err != nil {
			t.Fatalf("MMap a: %v", err)
		}
		rb, err := b.MMap(0, PageSize*uint64(1+i%3), ProtRW, 0, HalfLower, "b")
		if err != nil {
			t.Fatalf("MMap b: %v", err)
		}
		if ra != rb {
			t.Fatalf("determinism violated at %d: %#x vs %#x", i, ra, rb)
		}
	}
}

func TestMapFixedReplaces(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 4*PageSize, ProtRW, 0, HalfUpper, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(base, bytes.Repeat([]byte{0xAA}, 4*PageSize)); err != nil {
		t.Fatal(err)
	}
	// MAP_FIXED in the middle silently replaces — the corruption hazard
	// of paper Section 3.2.2 (a library mapping landing on existing
	// pages unmaps them without any error).
	mid := base + PageSize
	if _, err := s.MMap(mid, PageSize, ProtRW, MapFixed, HalfUpper, "overwriter"); err != nil {
		t.Fatalf("MapFixed: %v", err)
	}
	b := make([]byte, PageSize)
	if err := s.ReadAt(mid, b); err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatalf("fixed mapping should be zeroed, got %#x", v)
		}
	}
	// The victim's outer pages survive.
	if err := s.ReadAt(base, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAA {
		t.Fatalf("head of victim corrupted")
	}
	// And the region list shows three pieces, the middle one replaced.
	regions := s.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %d, want 3: %v", len(regions), regions)
	}
	if regions[1].Label != "overwriter" {
		t.Fatalf("middle region label = %q, want overwriter", regions[1].Label)
	}
}

func TestMapFixedNoReplace(t *testing.T) {
	s := New()
	base, err := s.MMap(0, PageSize, ProtRW, 0, HalfUpper, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MMap(base, PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "b"); !errors.Is(err, ErrOverlap) {
		t.Fatalf("err = %v, want ErrOverlap", err)
	}
	free := base + 16*PageSize
	if _, err := s.MMap(free, PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "c"); err != nil {
		t.Fatalf("free placement failed: %v", err)
	}
}

func TestMapFixedOutsideWindow(t *testing.T) {
	s := New()
	if _, err := s.MMap(s.LowerWindow().Start, PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "x"); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("err = %v, want ErrOutOfWindow", err)
	}
}

func TestMUnmapSplits(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 5*PageSize, ProtRW, 0, HalfUpper, "r")
	if err != nil {
		t.Fatal(err)
	}
	fill := bytes.Repeat([]byte{7}, 5*PageSize)
	if err := s.WriteAt(base, fill); err != nil {
		t.Fatal(err)
	}
	if err := s.MUnmap(base+2*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	regions := s.Regions()
	if len(regions) != 2 {
		t.Fatalf("regions = %v, want 2", regions)
	}
	// The hole is unmapped.
	b := make([]byte, 1)
	if err := s.ReadAt(base+2*PageSize, b); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("hole read err = %v, want ErrNotMapped", err)
	}
	// Data in both remaining pieces intact.
	if err := s.ReadAt(base+PageSize, b); err != nil || b[0] != 7 {
		t.Fatalf("left piece: %v %v", err, b)
	}
	if err := s.ReadAt(base+3*PageSize, b); err != nil || b[0] != 7 {
		t.Fatalf("right piece: %v %v", err, b)
	}
}

func TestMProtectAndPermissions(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 2*PageSize, ProtRW, 0, HalfUpper, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MProtect(base, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(base, []byte{1}); !errors.Is(err, ErrPerm) {
		t.Fatalf("write to read-only: err = %v, want ErrPerm", err)
	}
	if err := s.WriteAt(base+PageSize, []byte{1}); err != nil {
		t.Fatalf("write to rw half: %v", err)
	}
	if err := s.MProtect(base+8*PageSize, PageSize, ProtRead); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("mprotect unmapped: err = %v, want ErrNotMapped", err)
	}
}

func TestSliceSpanningRegionsFails(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 2*PageSize, ProtRW, 0, HalfUpper, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Split into two adjacent regions with the same prot.
	if err := s.MProtect(base+PageSize, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if len(s.Regions()) != 2 {
		t.Fatalf("expected split, got %v", s.Regions())
	}
	if _, err := s.Slice(base, 2*PageSize); !errors.Is(err, ErrSplitRange) {
		t.Fatalf("Slice across regions: err = %v, want ErrSplitRange", err)
	}
	// ReadAt handles the span.
	if err := s.ReadAt(base, make([]byte, 2*PageSize)); err != nil {
		t.Fatalf("ReadAt across regions: %v", err)
	}
}

func TestMapsViewMergesAndLosesAttribution(t *testing.T) {
	s := New()
	// Two adjacent same-prot regions in different halves (forced with
	// fixed placement at the window boundary is impossible; emulate
	// within the lower window: region A lower, region B upper cannot be
	// adjacent across windows — instead verify merge within a window and
	// the Mixed attribution via adjacent MapFixed of different halves
	// inside the overlap-free lower window).
	a, err := s.MMap(0, PageSize, ProtRW, 0, HalfLower, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Place the next region immediately after, attributed upper — the
	// kernel doesn't care which "half" a VMA belongs to.
	if _, err := s.MMap(a+PageSize, PageSize, ProtRW, MapFixedNoReplace, HalfLower, "b"); err != nil {
		t.Fatal(err)
	}
	raw := s.Regions()
	if len(raw) != 2 {
		t.Fatalf("raw regions = %v", raw)
	}
	merged := s.MapsView()
	if len(merged) != 1 {
		t.Fatalf("maps view = %v, want 1 merged entry", merged)
	}
	if merged[0].Len != 2*PageSize {
		t.Fatalf("merged length = %d", merged[0].Len)
	}
	// Different prot does not merge.
	s2 := New()
	c, _ := s2.MMap(0, PageSize, ProtRW, 0, HalfLower, "c")
	if _, err := s2.MMap(c+PageSize, PageSize, ProtRead, MapFixedNoReplace, HalfLower, "d"); err != nil {
		t.Fatal(err)
	}
	if mv := s2.MapsView(); len(mv) != 2 {
		t.Fatalf("different prot merged: %v", mv)
	}
}

func TestMapsViewMixedHalves(t *testing.T) {
	s := New()
	a, err := s.MMap(0, PageSize, ProtRW, 0, HalfLower, "lower")
	if err != nil {
		t.Fatal(err)
	}
	// An upper-half attributed region placed adjacently (the simulation
	// allows it; CRAC's own tracking is what must disambiguate).
	if _, err := s.MMap(a+PageSize, PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "upper"); err != nil {
		// Upper window constraint may reject; place lower-tagged then.
		t.Skip("windows preclude adjacency in this configuration")
	}
	mv := s.MapsView()
	if len(mv) != 1 || mv[0].Half != HalfMixed {
		t.Fatalf("maps view = %v, want one Mixed entry", mv)
	}
	// Raw regions keep the attribution.
	raw := s.Regions()
	if raw[0].Half != HalfLower || raw[1].Half != HalfUpper {
		t.Fatalf("raw attribution lost: %v", raw)
	}
}

func TestRegionsInAndMappedBytes(t *testing.T) {
	s := New()
	if _, err := s.MMap(0, PageSize, ProtRW, 0, HalfLower, "l1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MMap(0, 2*PageSize, ProtRW, 0, HalfUpper, "u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MMap(0, 4*PageSize, ProtRW, 0, HalfUpper, "u2"); err != nil {
		t.Fatal(err)
	}
	if n := len(s.RegionsIn(HalfUpper)); n != 2 {
		t.Fatalf("upper regions = %d, want 2", n)
	}
	if got := s.MappedBytes(HalfUpper); got != 6*PageSize {
		t.Fatalf("upper bytes = %d, want %d", got, 6*PageSize)
	}
	if got := s.MappedBytes(HalfLower); got != PageSize {
		t.Fatalf("lower bytes = %d, want %d", got, PageSize)
	}
}

func TestASLRChangesLayout(t *testing.T) {
	a := New(WithASLR(1))
	b := New(WithASLR(2))
	ra, err := a.MMap(0, PageSize, ProtRW, 0, HalfLower, "x")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.MMap(0, PageSize, ProtRW, 0, HalfLower, "x")
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Fatalf("different seeds produced identical layout %#x (possible but vanishingly unlikely)", ra)
	}
	// Same seed reproduces (the property personality() disabling relies on).
	c := New(WithASLR(1))
	rc, err := c.MMap(0, PageSize, ProtRW, 0, HalfLower, "x")
	if err != nil {
		t.Fatal(err)
	}
	if ra != rc {
		t.Fatalf("same seed diverged: %#x vs %#x", ra, rc)
	}
}

func TestStatsCountCalls(t *testing.T) {
	s := New()
	a, _ := s.MMap(0, PageSize, ProtRW, 0, HalfLower, "x")
	_, _ = s.MMap(0, PageSize, ProtRW, 0, HalfLower, "y")
	_ = s.MUnmap(a, PageSize)
	mm, um := s.Stats()
	if mm != 2 || um != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", mm, um)
	}
}

// TestQuickMapsViewCoverage property: the merged maps view covers
// exactly the same byte set as the raw regions, for arbitrary
// mmap/munmap sequences (DESIGN.md invariant 7).
func TestQuickMapsViewCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var mapped []RegionInfo
		for op := 0; op < 30; op++ {
			if rng.Intn(3) < 2 || len(mapped) == 0 {
				half := HalfLower
				if rng.Intn(2) == 0 {
					half = HalfUpper
				}
				n := uint64(1+rng.Intn(8)) * PageSize
				if a, err := s.MMap(0, n, ProtRW, 0, half, "q"); err == nil {
					mapped = append(mapped, RegionInfo{Start: a, Len: n})
				}
			} else {
				i := rng.Intn(len(mapped))
				r := mapped[i]
				off := uint64(rng.Intn(int(r.Len/PageSize))) * PageSize
				ln := uint64(1+rng.Intn(int((r.Len-off)/PageSize))) * PageSize
				_ = s.MUnmap(r.Start+off, ln)
				mapped = append(mapped[:i], mapped[i+1:]...)
			}
		}
		var rawBytes, mergedBytes uint64
		for _, r := range s.Regions() {
			rawBytes += r.Len
		}
		for _, r := range s.MapsView() {
			mergedBytes += r.Len
		}
		return rawBytes == mergedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadWriteRoundTrip property: WriteAt then ReadAt returns the
// same bytes for arbitrary offsets within a mapped region.
func TestQuickReadWriteRoundTrip(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 16*PageSize, ProtRW, 0, HalfUpper, "rt")
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4*PageSize {
			data = data[:4*PageSize]
		}
		addr := base + uint64(off)
		if uint64(off)+uint64(len(data)) > 16*PageSize {
			// The write overruns the mapping: the property here is that
			// it fails (a fuzzed offset near the top of the uint16 range
			// lands within len(data) bytes of the region end).
			return s.WriteAt(addr, data) != nil
		}
		if err := s.WriteAt(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadAt(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- dirty tracking (write epochs) ---

func TestDirtyTrackingWriteAt(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 8*PageSize, ProtRW, 0, HalfUpper, "d")
	if err != nil {
		t.Fatal(err)
	}
	cut := s.CutEpoch()
	// Nothing written since the cut.
	if rd := s.DirtySince(HalfUpper, cut); len(rd) != 0 {
		t.Fatalf("clean space reports dirty regions: %+v", rd)
	}
	// A write spanning pages 2..3 (partial pages on both ends).
	if err := s.WriteAt(base+2*PageSize+100, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	rd := s.DirtySince(HalfUpper, cut)
	if len(rd) != 1 || rd[0].Start != base {
		t.Fatalf("dirty regions: %+v", rd)
	}
	want := []Span{{Off: 2 * PageSize, Len: 2 * PageSize}}
	if len(rd[0].Spans) != 1 || rd[0].Spans[0] != want[0] {
		t.Fatalf("dirty spans = %+v, want %+v", rd[0].Spans, want)
	}
	if rd[0].Bytes != 2*PageSize {
		t.Fatalf("dirty bytes = %d", rd[0].Bytes)
	}
	// Before the cut everything is dirty (stamped at creation).
	if rd := s.DirtySince(HalfUpper, 0); len(rd) != 1 || rd[0].Bytes != 8*PageSize {
		t.Fatalf("since-0 must report the whole region: %+v", rd)
	}
}

func TestDirtyTrackingSliceAndReadSlice(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 4*PageSize, ProtRW, 0, HalfUpper, "d")
	if err != nil {
		t.Fatal(err)
	}
	cut := s.CutEpoch()
	// ReadSlice never dirties.
	if _, err := s.ReadSlice(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RangeDirtySince(base, 4*PageSize, cut) {
		t.Fatal("ReadSlice dirtied the range")
	}
	// Slice conservatively dirties the requested range of a writable region.
	if _, err := s.Slice(base+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if !s.RangeDirtySince(base+PageSize, PageSize, cut) {
		t.Fatal("Slice did not dirty the range")
	}
	if s.RangeDirtySince(base, PageSize, cut) {
		t.Fatal("Slice dirtied pages outside the requested range")
	}
	// A read-only region's Slice does not dirty.
	ro, err := s.MMap(0, PageSize, ProtRead, 0, HalfUpper, "ro")
	if err != nil {
		t.Fatal(err)
	}
	cut2 := s.CutEpoch()
	if _, err := s.Slice(ro, PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RangeDirtySince(ro, PageSize, cut2) {
		t.Fatal("Slice of a read-only region dirtied it")
	}
}

func TestDirtyTrackingNewAndSplitMappings(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 8*PageSize, ProtRW, 0, HalfUpper, "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(base+6*PageSize, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	cut := s.CutEpoch()
	// New mappings are dirty from birth.
	nb, err := s.MMap(0, 2*PageSize, ProtRW, 0, HalfUpper, "new")
	if err != nil {
		t.Fatal(err)
	}
	if !s.RangeDirtySince(nb, 2*PageSize, cut) {
		t.Fatal("fresh mapping must be dirty")
	}
	// Splitting preserves per-page stamps: unmap a hole over clean pages;
	// the pre-cut write on page 6 stays clean relative to cut, the rest
	// too.
	if err := s.MUnmap(base+2*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RangeDirtySince(base+6*PageSize, PageSize, cut) {
		t.Fatal("split must not dirty surviving pages")
	}
	// Unmapped bytes count as dirty (cannot be proven unchanged).
	if !s.RangeDirtySince(base, 8*PageSize, cut) {
		t.Fatal("range with a hole must report dirty")
	}
}

func TestDirtyTrackingConcurrentWriters(t *testing.T) {
	s := New()
	base, err := s.MMap(0, 64*PageSize, ProtRW, 0, HalfUpper, "c")
	if err != nil {
		t.Fatal(err)
	}
	cut := s.CutEpoch()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				off := uint64(g*8+i) * PageSize
				if err := s.WriteAt(base+off, make([]byte, PageSize)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	rd := s.DirtySince(HalfUpper, cut)
	if len(rd) != 1 || rd[0].Bytes != 64*PageSize {
		t.Fatalf("concurrent writers lost dirty pages: %+v", rd)
	}
}

func TestCutEpochMonotonic(t *testing.T) {
	s := New()
	c1 := s.CutEpoch()
	c2 := s.CutEpoch()
	if c2 != c1+1 {
		t.Fatalf("cuts not monotonic: %d then %d", c1, c2)
	}
	if got := s.WriteEpoch(); got != c2+1 {
		t.Fatalf("WriteEpoch = %d, want %d", got, c2+1)
	}
}
