package addrspace

import (
	"bytes"
	"sync"
	"testing"
)

// mapFilled maps a region in the upper window and fills it with b.
func mapFilled(t *testing.T, s *Space, size uint64, b byte) uint64 {
	t.Helper()
	addr, err := s.MMap(0, size, ProtRW, 0, HalfUpper, "snap-test")
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{b}, int(size))
	if err := s.WriteAt(addr, buf); err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestSnapshotReadConsistency: a snapshot returns arming-time bytes for
// pages written after arming, and live bytes track the writes.
func TestSnapshotReadConsistency(t *testing.T) {
	s := New()
	addr := mapFilled(t, s, 8*PageSize, 0x11)
	sn := s.Snapshot()
	defer sn.Release()

	// Overwrite some pages, twice (the second write must not re-preserve
	// mutated bytes).
	if err := s.WriteAt(addr+PageSize, bytes.Repeat([]byte{0x22}, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(addr+PageSize, bytes.Repeat([]byte{0x33}, PageSize)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8*PageSize)
	if err := sn.ReadAt(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, 8*PageSize)) {
		t.Fatal("snapshot does not show arming-time bytes")
	}
	live := make([]byte, PageSize)
	if err := s.ReadAt(addr+PageSize, live); err != nil {
		t.Fatal(err)
	}
	if live[0] != 0x33 {
		t.Fatal("live space does not show the latest write")
	}
	if n := s.RetainedPages(); n != 2 {
		t.Fatalf("retained %d pages, want 2", n)
	}
	sn.Release()
	if n := s.RetainedPages(); n != 0 {
		t.Fatalf("retained %d pages after release, want 0", n)
	}
}

// TestSnapshotWritableSliceAndUnmap: a writable Slice preserves at
// acquisition, and unmapping (or MAP_FIXED-replacing) a region keeps
// its snapshot bytes readable.
func TestSnapshotWritableSliceAndUnmap(t *testing.T) {
	s := New()
	a := mapFilled(t, s, 4*PageSize, 0x41)
	b := mapFilled(t, s, 4*PageSize, 0x42)
	sn := s.Snapshot()
	defer sn.Release()

	sl, err := s.Slice(a, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sl {
		sl[i] = 0xEE
	}
	if err := s.MUnmap(b, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	// Remap the freed range with different content.
	if _, err := s.MMap(b, 4*PageSize, ProtRW, MapFixed, HalfUpper, "replacement"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(b, bytes.Repeat([]byte{0xDD}, 4*PageSize)); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, PageSize)
	if err := sn.ReadAt(a, got); err != nil {
		t.Fatal(err)
	}
	if got[7] != 0x41 {
		t.Fatal("slice write leaked into the snapshot")
	}
	if err := sn.ReadAt(b, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Fatalf("unmapped region's snapshot bytes lost: got %#x", got[0])
	}
}

// TestSnapshotFrozenDirtyTracking: DirtySince and RangeDirtySince on a
// snapshot reflect the stamps at arming — post-arming writes are
// invisible, which is what makes an overlapped delta byte-identical to
// a blocking one.
func TestSnapshotFrozenDirtyTracking(t *testing.T) {
	s := New()
	addr := mapFilled(t, s, 8*PageSize, 0x01)
	cut := s.CutEpoch()
	if err := s.WriteAt(addr, []byte{0x02}); err != nil { // dirty page 0 after the cut
		t.Fatal(err)
	}
	sn := s.Snapshot()
	defer sn.Release()
	// Post-arming write: must not show up in the frozen dirty set.
	if err := s.WriteAt(addr+4*PageSize, []byte{0x03}); err != nil {
		t.Fatal(err)
	}

	rds := sn.DirtySince(HalfUpper, cut)
	if len(rds) != 1 || rds[0].Bytes != PageSize {
		t.Fatalf("frozen dirty set: %+v, want exactly page 0", rds)
	}
	if !sn.RangeDirtySince(addr, PageSize, cut) {
		t.Fatal("page 0 should be dirty in the frozen view")
	}
	if sn.RangeDirtySince(addr+4*PageSize, PageSize, cut) {
		t.Fatal("post-arming write leaked into the frozen dirty view")
	}
	if !s.RangeDirtySince(addr+4*PageSize, PageSize, cut) {
		t.Fatal("live view must see the post-arming write")
	}
}

// TestSnapshotReleaseRange: interior pages drop and tombstone (no
// re-preservation); boundary pages survive for neighbours.
func TestSnapshotReleaseRange(t *testing.T) {
	s := New()
	addr := mapFilled(t, s, 8*PageSize, 0x10)
	sn := s.Snapshot()
	defer sn.Release()
	if err := s.WriteAt(addr, bytes.Repeat([]byte{0x99}, 8*PageSize)); err != nil {
		t.Fatal(err)
	}
	if n := s.RetainedPages(); n != 8 {
		t.Fatalf("retained %d, want 8", n)
	}
	// Release an unaligned range: [addr+100, addr+3.5 pages). Only pages
	// 1 and 2 are fully inside.
	sn.ReleaseRange(addr+100, 3*PageSize+PageSize/2-100)
	if n := s.RetainedPages(); n != 6 {
		t.Fatalf("retained %d after interior release, want 6", n)
	}
	// Boundary pages still serve snapshot bytes.
	got := make([]byte, 1)
	if err := sn.ReadAt(addr, got); err != nil || got[0] != 0x10 {
		t.Fatalf("boundary page lost: %v %#x", err, got[0])
	}
	// A tombstoned page is not re-preserved by further writes.
	if err := s.WriteAt(addr+PageSize, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	if n := s.RetainedPages(); n != 6 {
		t.Fatalf("tombstoned page was re-preserved: retained %d", n)
	}
}

// TestSnapshotTorture hammers the space with concurrent writers while a
// reader repeatedly verifies the snapshot still reads the arming-time
// pattern. Meant to run under -race.
func TestSnapshotTorture(t *testing.T) {
	s := New()
	const pages = 64
	addr := mapFilled(t, s, pages*PageSize, 0x5A)
	sn := s.Snapshot()
	defer sn.Release()

	quit := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(g + 1)}, PageSize/2)
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				// Each writer owns a disjoint half-page slot within its
				// stripe of pages; pages are shared between iterations.
				page := uint64((i*4 + g) % pages)
				if err := s.WriteAt(addr+page*PageSize+uint64(g%2)*PageSize/2, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	want := bytes.Repeat([]byte{0x5A}, pages*PageSize)
	got := make([]byte, pages*PageSize)
	for i := 0; i < 50; i++ {
		if err := sn.ReadAt(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("snapshot read saw post-arming bytes")
		}
	}
	close(quit)
	wg.Wait()
	sn.Release()
	if n := s.RetainedPages(); n != 0 {
		t.Fatalf("retained %d pages after release", n)
	}
}

// TestSnapshotSkipsPostArmingRegions: writes into regions mapped after
// arming must not be preserved — the snapshot can never read them, so
// retaining copies would double the memory cost of allocate-and-fill
// workloads during the overlap.
func TestSnapshotSkipsPostArmingRegions(t *testing.T) {
	s := New()
	old := mapFilled(t, s, 2*PageSize, 0x12)
	sn := s.Snapshot()
	defer sn.Release()
	fresh, err := s.MMap(0, 64*PageSize, ProtRW, 0, HalfUpper, "post-arming")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(fresh, bytes.Repeat([]byte{0xFF}, 64*PageSize)); err != nil {
		t.Fatal(err)
	}
	if n := s.RetainedPages(); n != 0 {
		t.Fatalf("post-arming region writes retained %d pages, want 0", n)
	}
	// Arming-time regions still preserve normally.
	if err := s.WriteAt(old, []byte{0x99}); err != nil {
		t.Fatal(err)
	}
	if n := s.RetainedPages(); n != 1 {
		t.Fatalf("retained %d, want 1", n)
	}
	got := make([]byte, 1)
	if err := sn.ReadAt(old, got); err != nil || got[0] != 0x12 {
		t.Fatalf("arming-time bytes lost: %v %#x", err, got[0])
	}
}

// TestFreezeThawGate: Freeze blocks writers and structural ops (but not
// reads) until Thaw.
func TestFreezeThawGate(t *testing.T) {
	s := New()
	addr := mapFilled(t, s, 2*PageSize, 0x21)
	s.Freeze()
	done := make(chan error, 2)
	go func() { done <- s.WriteAt(addr, []byte{1}) }()
	go func() { _, err := s.MMap(0, PageSize, ProtRW, 0, HalfUpper, "late"); done <- err }()
	select {
	case <-done:
		t.Fatal("mutation proceeded while frozen")
	default:
	}
	// Reads pass through a frozen space.
	b := make([]byte, 8)
	if err := s.ReadAt(addr, b); err != nil {
		t.Fatal(err)
	}
	s.Thaw()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWritersRaceSamePagePreserve: two goroutines write disjoint halves
// of the same page concurrently; the snapshot must keep the whole
// page's pristine bytes whichever writer preserves first.
func TestWritersRaceSamePagePreserve(t *testing.T) {
	s := New()
	addr := mapFilled(t, s, PageSize, 0x33)
	for round := 0; round < 100; round++ {
		sn := s.Snapshot()
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := bytes.Repeat([]byte{byte(0xB0 + g)}, PageSize/2)
				if err := s.WriteAt(addr+uint64(g)*PageSize/2, buf); err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()
		got := make([]byte, PageSize)
		if err := sn.ReadAt(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{0x33}, PageSize)) {
			t.Fatalf("round %d: snapshot lost pristine page", round)
		}
		sn.Release()
		// Restore the pristine pattern for the next round.
		if err := s.WriteAt(addr, bytes.Repeat([]byte{0x33}, PageSize)); err != nil {
			t.Fatal(err)
		}
	}
}
