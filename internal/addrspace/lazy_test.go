package addrspace

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

// lazyTestSpace maps one 8-page upper-half region.
func lazyTestSpace(t *testing.T) (*Space, uint64) {
	t.Helper()
	s := New()
	addr := s.UpperWindow().Start
	if _, err := s.MMap(addr, 8*PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "lazy"); err != nil {
		t.Fatal(err)
	}
	return s, addr
}

// TestLazyFaultGate checks the fault path end to end: cold reads call
// the materializer, FillCold writes only cold pages, and warm pages
// never fault again.
func TestLazyFaultGate(t *testing.T) {
	s, addr := lazyTestSpace(t)
	content := make([]byte, 8*PageSize)
	for i := range content {
		content[i] = byte(i*3 + 1)
	}
	var faults atomic.Int64
	s.BeginLazy(func(a, l uint64) error {
		faults.Add(1)
		s.FillCold(a, content[a-addr:a-addr+l])
		s.MarkWarm(a, l)
		return nil
	})
	s.MarkCold(addr, 8*PageSize)
	if s.ColdBytes() != 8*PageSize {
		t.Fatalf("cold bytes %d", s.ColdBytes())
	}

	got := make([]byte, 100)
	if err := s.ReadAt(addr+PageSize+11, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[PageSize+11:PageSize+111]) {
		t.Fatal("faulted read returned wrong bytes")
	}
	if faults.Load() != 1 {
		t.Fatalf("%d materializer calls, want 1", faults.Load())
	}
	// Same page again: no fault.
	if err := s.ReadAt(addr+PageSize, got); err != nil {
		t.Fatal(err)
	}
	if faults.Load() != 1 {
		t.Fatalf("warm page re-faulted (%d calls)", faults.Load())
	}
	// A write to a cold page materializes first, then lands.
	if err := s.WriteAt(addr+4*PageSize+8, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	if err := s.ReadAt(addr+4*PageSize, page); err != nil {
		t.Fatal(err)
	}
	if page[8] != 0xEE || page[9] != content[4*PageSize+9] {
		t.Fatal("partial write onto cold page lost surrounding image bytes")
	}
	if err := s.DrainLazy(); err != nil {
		t.Fatal(err)
	}
	if s.ColdBytes() != 0 {
		t.Fatalf("%d cold bytes after drain", s.ColdBytes())
	}
}

// TestLazyFillColdSkipsWarm checks FillCold never overwrites a page
// that is already warm (e.g. one the application wrote first).
func TestLazyFillColdSkipsWarm(t *testing.T) {
	s, addr := lazyTestSpace(t)
	s.BeginLazy(func(a, l uint64) error {
		s.MarkWarm(a, l) // materialize "nothing": content arrives via FillCold below
		return nil
	})
	s.MarkCold(addr, 2*PageSize)
	// Page 0 warms through a fault (application write wins).
	if err := s.WriteAt(addr, []byte{0x55}); err != nil {
		t.Fatal(err)
	}
	stale := bytes.Repeat([]byte{0xFF}, 2*PageSize)
	s.FillCold(addr, stale)
	var b [2]byte
	if err := s.ReadAt(addr, b[:1]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x55 {
		t.Fatalf("FillCold overwrote a warm page: %#x", b[0])
	}
	// Page 1 is still cold: the fill landed there.
	if err := s.ReadAt(addr+PageSize, b[:1]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xFF {
		t.Fatalf("FillCold skipped a cold page: %#x", b[0])
	}
}

// TestLazyUnmapClearsCold checks an unmapped range loses its cold
// marks: a fresh mapping at the same address starts warm and zeroed,
// and the materializer never runs for it.
func TestLazyUnmapClearsCold(t *testing.T) {
	s, addr := lazyTestSpace(t)
	var faults atomic.Int64
	s.BeginLazy(func(a, l uint64) error {
		faults.Add(1)
		s.MarkWarm(a, l)
		return nil
	})
	s.MarkCold(addr, 8*PageSize)
	if err := s.MUnmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if s.ColdBytes() != 4*PageSize {
		t.Fatalf("cold bytes %d after unmap, want %d", s.ColdBytes(), 4*PageSize)
	}
	if _, err := s.MMap(addr, 4*PageSize, ProtRW, MapFixedNoReplace, HalfUpper, "fresh"); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if err := s.ReadAt(addr, b[:]); err != nil {
		t.Fatal(err)
	}
	if faults.Load() != 0 {
		t.Fatal("remapped range faulted")
	}
	if b[0] != 0 {
		t.Fatalf("fresh mapping not zero: %#x", b[0])
	}
}

// TestLazyCoversNoFault checks the registration-style coverage probe
// never materializes.
func TestLazyCoversNoFault(t *testing.T) {
	s, addr := lazyTestSpace(t)
	var faults atomic.Int64
	s.BeginLazy(func(a, l uint64) error {
		faults.Add(1)
		s.MarkWarm(a, l)
		return nil
	})
	s.MarkCold(addr, 8*PageSize)
	if !s.Covers(addr, 8*PageSize) {
		t.Fatal("Covers false on a mapped range")
	}
	if s.Covers(addr, 9*PageSize) {
		t.Fatal("Covers true beyond the mapping")
	}
	if !s.Readable(addr, 8*PageSize) {
		t.Fatal("Readable false on an rw mapping")
	}
	if err := s.MProtect(addr, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if s.Readable(addr, 8*PageSize) {
		t.Fatal("Readable true across a PROT_NONE page")
	}
	if !s.Covers(addr, 8*PageSize) {
		t.Fatal("Covers must ignore protection")
	}
	if faults.Load() != 0 {
		t.Fatal("Covers/Readable faulted")
	}
}

// TestLazyMaterializerError checks a failing materializer surfaces on
// the access (and the range stays cold for a retry).
func TestLazyMaterializerError(t *testing.T) {
	s, addr := lazyTestSpace(t)
	boom := errors.New("shard truncated")
	fail := true
	s.BeginLazy(func(a, l uint64) error {
		if fail {
			return boom
		}
		s.MarkWarm(a, l)
		return nil
	})
	s.MarkCold(addr, PageSize)
	var b [1]byte
	if err := s.ReadAt(addr, b[:]); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	if s.ColdBytes() == 0 {
		t.Fatal("failed materialization warmed the page")
	}
	fail = false
	if err := s.ReadAt(addr, b[:]); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

// TestLazySnapshotDrains checks arming a CoW snapshot drains the lazy
// state first (snapshot reads bypass the fault gate).
func TestLazySnapshotDrains(t *testing.T) {
	s, addr := lazyTestSpace(t)
	content := bytes.Repeat([]byte{0xAB}, 8*PageSize)
	s.BeginLazy(func(a, l uint64) error {
		s.FillCold(a, content[a-addr:a-addr+l])
		s.MarkWarm(a, l)
		return nil
	})
	s.MarkCold(addr, 8*PageSize)
	sn := s.Snapshot()
	defer sn.Release()
	if s.ColdBytes() != 0 {
		t.Fatalf("%d cold bytes under an armed snapshot", s.ColdBytes())
	}
	got := make([]byte, PageSize)
	if err := sn.ReadAt(addr+2*PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[2*PageSize:3*PageSize]) {
		t.Fatal("snapshot read missed materialized content")
	}
}
