// Package trace is the simulation's nvprof: a transparent crt.Runtime
// wrapper that counts every CUDA API call by name and accumulates time
// spent inside the runtime. The paper's methodology (Section 4.3) derives
// its call counts and CPS figures from nvprof output exactly this way —
// counting calls from the upper half, with each kernel launch expanded to
// three calls (cudaPushCallConfiguration, cudaPopCallConfiguration,
// cudaLaunchKernel).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/crt"
	"repro/internal/gpusim"
)

// Profiler wraps a crt.Runtime and records per-API statistics.
type Profiler struct {
	inner crt.Runtime

	mu    sync.Mutex
	calls map[string]*APIStat
	start time.Time
}

// APIStat aggregates one API's activity.
type APIStat struct {
	Name  string
	Count uint64
	Time  time.Duration
}

// New wraps rt.
func New(rt crt.Runtime) *Profiler {
	return &Profiler{inner: rt, calls: make(map[string]*APIStat), start: time.Now()}
}

// record accounts one call.
func (p *Profiler) record(name string, start time.Time) {
	d := time.Since(start)
	p.mu.Lock()
	st, ok := p.calls[name]
	if !ok {
		st = &APIStat{Name: name}
		p.calls[name] = st
	}
	st.Count++
	st.Time += d
	p.mu.Unlock()
}

// Stats returns per-API statistics sorted by cumulative time (like the
// default nvprof summary).
func (p *Profiler) Stats() []APIStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]APIStat, 0, len(p.calls))
	for _, st := range p.calls {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalCalls sums all recorded API calls, with kernel launches counted
// threefold per the paper's formula.
func (p *Profiler) TotalCalls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for name, st := range p.calls {
		if name == "cudaLaunchKernel" {
			n += 3 * st.Count
		} else {
			n += st.Count
		}
	}
	return n
}

// Fprint renders an nvprof-style profile summary.
func (p *Profiler) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%-28s %10s %14s %12s\n", "API", "calls", "total", "avg")
	for _, st := range p.Stats() {
		avg := time.Duration(0)
		if st.Count > 0 {
			avg = st.Time / time.Duration(st.Count)
		}
		fmt.Fprintf(w, "%-28s %10d %14v %12v\n", st.Name, st.Count, st.Time, avg)
	}
	fmt.Fprintf(w, "total CUDA calls (3x launches): %d\n", p.TotalCalls())
}

// --- crt.Runtime implementation: every method delegates and records ---

// Malloc implements crt.Runtime.
func (p *Profiler) Malloc(size uint64) (uint64, error) {
	defer p.record("cudaMalloc", time.Now())
	return p.inner.Malloc(size)
}

// Free implements crt.Runtime.
func (p *Profiler) Free(addr uint64) error {
	defer p.record("cudaFree", time.Now())
	return p.inner.Free(addr)
}

// MallocHost implements crt.Runtime.
func (p *Profiler) MallocHost(size uint64) (uint64, error) {
	defer p.record("cudaMallocHost", time.Now())
	return p.inner.MallocHost(size)
}

// HostAlloc implements crt.Runtime.
func (p *Profiler) HostAlloc(size uint64) (uint64, error) {
	defer p.record("cudaHostAlloc", time.Now())
	return p.inner.HostAlloc(size)
}

// FreeHost implements crt.Runtime.
func (p *Profiler) FreeHost(addr uint64) error {
	defer p.record("cudaFreeHost", time.Now())
	return p.inner.FreeHost(addr)
}

// MallocManaged implements crt.Runtime.
func (p *Profiler) MallocManaged(size uint64) (uint64, error) {
	defer p.record("cudaMallocManaged", time.Now())
	return p.inner.MallocManaged(size)
}

// Memcpy implements crt.Runtime.
func (p *Profiler) Memcpy(dst, src, n uint64, kind crt.MemcpyKind) error {
	defer p.record("cudaMemcpy", time.Now())
	return p.inner.Memcpy(dst, src, n, kind)
}

// MemcpyAsync implements crt.Runtime.
func (p *Profiler) MemcpyAsync(dst, src, n uint64, kind crt.MemcpyKind, s crt.StreamHandle) error {
	defer p.record("cudaMemcpyAsync", time.Now())
	return p.inner.MemcpyAsync(dst, src, n, kind, s)
}

// Memset implements crt.Runtime.
func (p *Profiler) Memset(addr uint64, value byte, n uint64) error {
	defer p.record("cudaMemset", time.Now())
	return p.inner.Memset(addr, value, n)
}

// StreamCreate implements crt.Runtime.
func (p *Profiler) StreamCreate() (crt.StreamHandle, error) {
	defer p.record("cudaStreamCreate", time.Now())
	return p.inner.StreamCreate()
}

// StreamDestroy implements crt.Runtime.
func (p *Profiler) StreamDestroy(s crt.StreamHandle) error {
	defer p.record("cudaStreamDestroy", time.Now())
	return p.inner.StreamDestroy(s)
}

// StreamSynchronize implements crt.Runtime.
func (p *Profiler) StreamSynchronize(s crt.StreamHandle) error {
	defer p.record("cudaStreamSynchronize", time.Now())
	return p.inner.StreamSynchronize(s)
}

// EventCreate implements crt.Runtime.
func (p *Profiler) EventCreate() (crt.EventHandle, error) {
	defer p.record("cudaEventCreate", time.Now())
	return p.inner.EventCreate()
}

// EventDestroy implements crt.Runtime.
func (p *Profiler) EventDestroy(e crt.EventHandle) error {
	defer p.record("cudaEventDestroy", time.Now())
	return p.inner.EventDestroy(e)
}

// EventRecord implements crt.Runtime.
func (p *Profiler) EventRecord(e crt.EventHandle, s crt.StreamHandle) error {
	defer p.record("cudaEventRecord", time.Now())
	return p.inner.EventRecord(e, s)
}

// EventSynchronize implements crt.Runtime.
func (p *Profiler) EventSynchronize(e crt.EventHandle) error {
	defer p.record("cudaEventSynchronize", time.Now())
	return p.inner.EventSynchronize(e)
}

// EventElapsed implements crt.Runtime.
func (p *Profiler) EventElapsed(start, end crt.EventHandle) (time.Duration, error) {
	defer p.record("cudaEventElapsedTime", time.Now())
	return p.inner.EventElapsed(start, end)
}

// StreamWaitEvent implements crt.Runtime.
func (p *Profiler) StreamWaitEvent(s crt.StreamHandle, e crt.EventHandle) error {
	defer p.record("cudaStreamWaitEvent", time.Now())
	return p.inner.StreamWaitEvent(s, e)
}

// MemGetInfo implements crt.Runtime.
func (p *Profiler) MemGetInfo() (uint64, uint64, error) {
	defer p.record("cudaMemGetInfo", time.Now())
	return p.inner.MemGetInfo()
}

// RegisterFatBinary implements crt.Runtime.
func (p *Profiler) RegisterFatBinary(module string) (crt.FatBinHandle, error) {
	defer p.record("__cudaRegisterFatBinary", time.Now())
	return p.inner.RegisterFatBinary(module)
}

// RegisterFunction implements crt.Runtime.
func (p *Profiler) RegisterFunction(h crt.FatBinHandle, name string, k crt.Kernel) error {
	defer p.record("__cudaRegisterFunction", time.Now())
	return p.inner.RegisterFunction(h, name, k)
}

// UnregisterFatBinary implements crt.Runtime.
func (p *Profiler) UnregisterFatBinary(h crt.FatBinHandle) error {
	defer p.record("__cudaUnregisterFatBinary", time.Now())
	return p.inner.UnregisterFatBinary(h)
}

// LaunchKernel implements crt.Runtime.
func (p *Profiler) LaunchKernel(h crt.FatBinHandle, name string, cfg crt.LaunchConfig, s crt.StreamHandle, args ...uint64) error {
	defer p.record("cudaLaunchKernel", time.Now())
	return p.inner.LaunchKernel(h, name, cfg, s, args...)
}

// DeviceSynchronize implements crt.Runtime.
func (p *Profiler) DeviceSynchronize() error {
	defer p.record("cudaDeviceSynchronize", time.Now())
	return p.inner.DeviceSynchronize()
}

// DeviceProperties implements crt.Runtime.
func (p *Profiler) DeviceProperties() gpusim.Properties {
	defer p.record("cudaGetDeviceProperties", time.Now())
	return p.inner.DeviceProperties()
}

// HostAccess implements crt.Runtime (not a CUDA call; not recorded, as
// nvprof does not see host memory accesses).
func (p *Profiler) HostAccess(addr, n uint64, write bool) ([]byte, error) {
	return p.inner.HostAccess(addr, n, write)
}

// AppAlloc implements crt.Runtime (not a CUDA call; not recorded).
func (p *Profiler) AppAlloc(size uint64) (uint64, error) { return p.inner.AppAlloc(size) }

// AppFree implements crt.Runtime (not a CUDA call; not recorded).
func (p *Profiler) AppFree(addr uint64) error { return p.inner.AppFree(addr) }

// Counters implements crt.Runtime (delegates to the wrapped runtime's
// own counters).
func (p *Profiler) Counters() crt.Counters { return p.inner.Counters() }

var _ crt.Runtime = (*Profiler)(nil)
