package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
)

func newProfiled(t *testing.T) *Profiler {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := crt.NewNative(lib)
	t.Cleanup(n.Close)
	return New(n)
}

func TestCountsByAPI(t *testing.T) {
	p := newProfiled(t)
	fat, err := p.RegisterFatBinary("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterFunction(fat, "k", func(*cuda.DevCtx, gpusim.LaunchConfig, []uint64) {}); err != nil {
		t.Fatal(err)
	}
	d, err := p.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.LaunchKernel(fat, "k", gpusim.LaunchConfig{}, crt.DefaultStream); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Memset(d, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := p.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	got := map[string]uint64{}
	for _, st := range p.Stats() {
		got[st.Name] = st.Count
	}
	for name, want := range map[string]uint64{
		"cudaMalloc": 1, "cudaLaunchKernel": 4, "cudaMemset": 1,
		"cudaDeviceSynchronize": 1, "__cudaRegisterFatBinary": 1,
	} {
		if got[name] != want {
			t.Fatalf("%s count = %d, want %d (all: %v)", name, got[name], want, got)
		}
	}
	// 3x per launch per the paper's formula: 4 launches -> 12, plus the
	// 5 other calls above and RegisterFunction.
	if total := p.TotalCalls(); total != 12+5 {
		t.Fatalf("total = %d, want 17", total)
	}
}

func TestFprintSummary(t *testing.T) {
	p := newProfiled(t)
	if _, err := p.Malloc(64); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "cudaMalloc") || !strings.Contains(out, "total CUDA calls") {
		t.Fatalf("summary output:\n%s", out)
	}
}

func TestTransparency(t *testing.T) {
	// Wrapping must not change results: run a tiny compute both ways.
	p := newProfiled(t)
	fat, _ := p.RegisterFatBinary("m")
	_ = p.RegisterFunction(fat, "fill", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		b := ctx.Bytes(args[0], args[1])
		for i := range b {
			b[i] = 9
		}
	})
	d, _ := p.Malloc(256)
	if err := p.LaunchKernel(fat, "fill", gpusim.LaunchConfig{}, crt.DefaultStream, d, 256); err != nil {
		t.Fatal(err)
	}
	if err := p.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	h, _ := p.AppAlloc(256)
	if err := p.Memcpy(h, d, 256, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	b, err := p.HostAccess(h, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 9 {
			t.Fatalf("byte = %d", v)
		}
	}
	// Streams and events through the profiler.
	s, err := p.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	if err := p.EventSynchronize(e); err != nil {
		t.Fatal(err)
	}
	if err := p.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if err := p.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
	if p.DeviceProperties().Name == "" {
		t.Fatal("properties not forwarded")
	}
}
