package gpusim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestDim3Count(t *testing.T) {
	if (Dim3{}).Count() != 1 {
		t.Fatal("zero Dim3 should count 1")
	}
	if (Dim3{X: 4, Y: 2}).Count() != 8 {
		t.Fatal("4x2 should count 8")
	}
	cfg := LaunchConfig{Grid: Dim3{X: 2}, Block: Dim3{X: 128}}
	if cfg.Threads() != 256 {
		t.Fatalf("threads = %d", cfg.Threads())
	}
}

func TestProperties(t *testing.T) {
	v100 := TeslaV100()
	if v100.MaxConcurrentKernels != 128 || v100.ComputeCapability() != "7.0" {
		t.Fatalf("V100 = %+v", v100)
	}
	k600 := QuadroK600()
	if k600.GlobalMemBytes != 1<<30 {
		t.Fatalf("K600 = %+v", k600)
	}
}

func TestStreamFIFOOrder(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s, err := d.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.Callback(func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Synchronize()
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestCrossStreamConcurrency(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s1, _ := d.NewStream()
	s2, _ := d.NewStream()
	gate := make(chan struct{})
	// A kernel on s1 blocks until a kernel on s2 runs: only possible if
	// the two streams execute concurrently.
	if err := s1.Launch(LaunchConfig{}, func(LaunchConfig) { <-gate }); err != nil {
		t.Fatal(err)
	}
	if err := s2.Launch(LaunchConfig{}, func(LaunchConfig) { close(gate) }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { d.Synchronize(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("streams did not run concurrently")
	}
	if mc := d.Metrics().MaxConcurrent; mc < 1 {
		t.Fatalf("max concurrent = %d", mc)
	}
}

func TestConcurrentKernelLimit(t *testing.T) {
	prop := TeslaV100()
	prop.MaxConcurrentKernels = 2
	d := New(prop)
	defer d.Destroy()
	var running, peak atomic.Int64
	var streams []*Stream
	for i := 0; i < 6; i++ {
		s, err := d.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	for _, s := range streams {
		if err := s.Launch(LaunchConfig{}, func(LaunchConfig) {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Synchronize()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrent kernels = %d, exceeds device limit 2", p)
	}
	if mc := d.Metrics().MaxConcurrent; mc > 2 {
		t.Fatalf("device metric max concurrent = %d", mc)
	}
}

func TestDrainSemantics(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s, _ := d.NewStream()
	release := make(chan struct{})
	var finished atomic.Bool
	_ = s.Launch(LaunchConfig{}, func(LaunchConfig) {
		<-release
		finished.Store(true)
	})
	if d.Drained() {
		t.Fatal("device claims drained with a kernel in flight")
	}
	close(release)
	d.Synchronize()
	if !finished.Load() {
		t.Fatal("Synchronize returned before the kernel finished")
	}
	if !d.Drained() {
		t.Fatal("device not drained after Synchronize")
	}
}

func TestStreamDestroyDrainsFirst(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s, _ := d.NewStream()
	var ran atomic.Bool
	_ = s.Callback(func() { time.Sleep(time.Millisecond); ran.Store(true) })
	s.Destroy()
	if !ran.Load() {
		t.Fatal("Destroy did not drain pending work")
	}
	if err := s.Callback(func() {}); err == nil {
		t.Fatal("submit to destroyed stream succeeded")
	}
	if d.StreamCount() != 0 {
		t.Fatalf("stream count = %d after destroy", d.StreamCount())
	}
}

func TestDeviceDestroyedRejectsStreams(t *testing.T) {
	d := New(TeslaV100())
	d.Destroy()
	if _, err := d.NewStream(); err != ErrDeviceDestroyed {
		t.Fatalf("err = %v, want ErrDeviceDestroyed", err)
	}
}

func TestEvents(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s, _ := d.NewStream()
	start := d.NewEvent()
	end := d.NewEvent()
	if err := start.Synchronize(); err == nil {
		t.Fatal("synchronize on unrecorded event succeeded")
	}
	if err := start.Record(s); err != nil {
		t.Fatal(err)
	}
	_ = s.Callback(func() { time.Sleep(5 * time.Millisecond) })
	if err := end.Record(s); err != nil {
		t.Fatal(err)
	}
	el, err := Elapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if el < 4*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= ~5ms", el)
	}
	if !end.Completed() {
		t.Fatal("event not completed after Elapsed")
	}
}

func TestMetricsAccounting(t *testing.T) {
	d := New(TeslaV100())
	defer d.Destroy()
	s, _ := d.NewStream()
	_ = s.Launch(LaunchConfig{}, func(LaunchConfig) {})
	_ = s.Copy(1024, func() {})
	_ = d.NewEvent()
	d.Synchronize()
	m := d.Metrics()
	if m.KernelsLaunched != 1 || m.CopiesIssued != 1 || m.BytesCopied != 1024 ||
		m.StreamsCreated != 1 || m.EventsCreated != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}
