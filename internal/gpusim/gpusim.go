// Package gpusim simulates an NVIDIA GPU at the level of detail the CRAC
// paper's evaluation depends on: a device with a fixed number of SMs and a
// maximum number of concurrently resident kernels (128 on the Tesla V100
// used in the paper), FIFO streams executing kernels and copies
// asynchronously, and events for timing and synchronization.
//
// Kernels are Go closures executed by per-stream workers; cross-stream
// parallelism is real (goroutines), bounded by the device's
// concurrent-kernel limit exactly as CUDA bounds resident kernels. The
// "drain the queue" step of checkpointing (paper Sections 2.2 and 3) maps
// to Device.Synchronize, which waits until every stream is empty.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Dim3 is a CUDA dim3: kernel grid and block dimensions.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total number of elements covered by the dimensions.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// LaunchConfig carries a kernel's execution configuration.
type LaunchConfig struct {
	Grid      Dim3
	Block     Dim3
	SharedMem int
}

// Threads returns the total thread count of the launch.
func (c LaunchConfig) Threads() int { return c.Grid.Count() * c.Block.Count() }

// KernelFunc is the body of a device kernel. It receives its launch
// configuration and is responsible for covering the whole index space
// (the simulator runs the kernel as one unit of work on the device).
type KernelFunc func(cfg LaunchConfig)

// Properties describes a simulated device, mirroring cudaDeviceProp.
type Properties struct {
	Name                 string
	ComputeMajor         int
	ComputeMinor         int
	SMCount              int
	MaxConcurrentKernels int
	GlobalMemBytes       uint64
}

// ComputeCapability renders e.g. "7.0".
func (p Properties) ComputeCapability() string {
	return fmt.Sprintf("%d.%d", p.ComputeMajor, p.ComputeMinor)
}

// TeslaV100 returns the properties of the NVIDIA Tesla V100 (32 GB) used
// on the PSG cluster in the paper's main experiments: compute capability
// 7.0 with a maximum of 128 concurrent kernels.
func TeslaV100() Properties {
	return Properties{
		Name:                 "Tesla V100-SXM2-32GB",
		ComputeMajor:         7,
		ComputeMinor:         0,
		SMCount:              80,
		MaxConcurrentKernels: 128,
		GlobalMemBytes:       32 << 30,
	}
}

// QuadroK600 returns the properties of the NVIDIA Quadro K600 (1 GB) used
// for the FSGSBASE experiments in Section 4.4.5.
func QuadroK600() Properties {
	return Properties{
		Name:                 "Quadro K600",
		ComputeMajor:         3,
		ComputeMinor:         0,
		SMCount:              1,
		MaxConcurrentKernels: 16,
		GlobalMemBytes:       1 << 30,
	}
}

// Metrics are cumulative device counters.
type Metrics struct {
	KernelsLaunched uint64
	CopiesIssued    uint64
	BytesCopied     uint64
	StreamsCreated  uint64
	EventsCreated   uint64
	MaxConcurrent   uint64 // high-water mark of concurrently running kernels
}

// Device is a simulated GPU.
type Device struct {
	prop Properties

	kernSlots chan struct{} // bounds concurrently resident kernels

	mu      sync.Mutex
	streams map[int]*Stream
	nextID  int
	dead    bool

	running         atomic.Int64 // currently executing kernels
	kernelsLaunched atomic.Uint64
	copiesIssued    atomic.Uint64
	bytesCopied     atomic.Uint64
	streamsCreated  atomic.Uint64
	eventsCreated   atomic.Uint64
	maxConcurrent   atomic.Uint64
}

// ErrDeviceDestroyed is returned by operations on a destroyed device.
var ErrDeviceDestroyed = errors.New("gpusim: device destroyed")

// New creates a device with the given properties.
func New(prop Properties) *Device {
	d := &Device{
		prop:      prop,
		kernSlots: make(chan struct{}, prop.MaxConcurrentKernels),
		streams:   make(map[int]*Stream),
	}
	return d
}

// Properties returns the device description.
func (d *Device) Properties() Properties { return d.prop }

// Metrics returns a snapshot of the device counters.
func (d *Device) Metrics() Metrics {
	return Metrics{
		KernelsLaunched: d.kernelsLaunched.Load(),
		CopiesIssued:    d.copiesIssued.Load(),
		BytesCopied:     d.bytesCopied.Load(),
		StreamsCreated:  d.streamsCreated.Load(),
		EventsCreated:   d.eventsCreated.Load(),
		MaxConcurrent:   d.maxConcurrent.Load(),
	}
}

// Stream is a FIFO queue of device operations, executed in order by a
// dedicated worker. Distinct streams execute concurrently, subject to the
// device's concurrent-kernel limit.
type Stream struct {
	ID  int
	dev *Device

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []func()
	submitted uint64
	completed uint64
	closed    bool
}

// NewStream creates a stream (cudaStreamCreate). The device itself does
// not bound the number of streams — the CUDA library layer enforces the
// concurrent-kernel limit on user streams, so that the default stream
// does not consume an application-visible slot.
func (d *Device) NewStream() (*Stream, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return nil, ErrDeviceDestroyed
	}
	d.nextID++
	s := &Stream{ID: d.nextID, dev: d}
	s.cond = sync.NewCond(&s.mu)
	d.streams[s.ID] = s
	d.streamsCreated.Add(1)
	go s.run()
	return s, nil
}

// StreamCount returns the number of live streams.
func (d *Device) StreamCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.streams)
}

func (s *Stream) run() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		f()

		s.mu.Lock()
		s.completed++
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// submit enqueues an operation; returns the submission ticket.
func (s *Stream) submit(f func()) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("gpusim: stream %d destroyed", s.ID)
	}
	s.queue = append(s.queue, f)
	s.submitted++
	t := s.submitted
	s.cond.Broadcast()
	return t, nil
}

// Synchronize blocks until all work submitted so far has completed
// (cudaStreamSynchronize).
func (s *Stream) Synchronize() {
	s.mu.Lock()
	t := s.submitted
	for s.completed < t {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Pending returns the number of operations submitted but not completed.
func (s *Stream) Pending() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted - s.completed
}

// Launch enqueues a kernel on the stream (cudaLaunchKernel). The kernel
// body runs on the stream worker once a device kernel slot is available.
func (s *Stream) Launch(cfg LaunchConfig, kernel KernelFunc) error {
	d := s.dev
	_, err := s.submit(func() {
		d.kernSlots <- struct{}{} // acquire a resident-kernel slot
		cur := uint64(d.running.Add(1))
		for {
			old := d.maxConcurrent.Load()
			if cur <= old || d.maxConcurrent.CompareAndSwap(old, cur) {
				break
			}
		}
		kernel(cfg)
		d.running.Add(-1)
		<-d.kernSlots
	})
	if err == nil {
		d.kernelsLaunched.Add(1)
	}
	return err
}

// Copy enqueues an asynchronous copy of n bytes executed by fn
// (cudaMemcpyAsync). The actual data movement is performed by fn; the
// device only accounts for it.
func (s *Stream) Copy(n uint64, fn func()) error {
	d := s.dev
	_, err := s.submit(fn)
	if err == nil {
		d.copiesIssued.Add(1)
		d.bytesCopied.Add(n)
	}
	return err
}

// Callback enqueues a host callback (cudaLaunchHostFunc).
func (s *Stream) Callback(fn func()) error {
	_, err := s.submit(fn)
	return err
}

// WaitEvent enqueues a wait: subsequent work on this stream does not run
// until the event completes (cudaStreamWaitEvent) — the cross-stream
// dependency primitive of the CUDA stream model.
func (s *Stream) WaitEvent(e *Event) error {
	_, err := s.submit(func() {
		e.mu.Lock()
		for e.recorded && !e.complete {
			e.cond.Wait()
		}
		e.mu.Unlock()
	})
	return err
}

// Destroy drains the stream and removes it from the device
// (cudaStreamDestroy semantics: pending work completes first).
func (s *Stream) Destroy() {
	s.Synchronize()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	s.dev.mu.Lock()
	delete(s.dev.streams, s.ID)
	s.dev.mu.Unlock()
}

// Synchronize blocks until every stream on the device is idle
// (cudaDeviceSynchronize). This is the "drain the queue" step that must
// precede a checkpoint.
func (d *Device) Synchronize() {
	d.mu.Lock()
	streams := make([]*Stream, 0, len(d.streams))
	for _, s := range d.streams {
		streams = append(streams, s)
	}
	d.mu.Unlock()
	for _, s := range streams {
		s.Synchronize()
	}
}

// Drained reports whether no stream has pending work.
func (d *Device) Drained() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.streams {
		if s.Pending() != 0 {
			return false
		}
	}
	return true
}

// Destroy synchronizes and tears down all streams, then marks the device
// dead. Used when the lower half is discarded at restart.
func (d *Device) Destroy() {
	d.Synchronize()
	d.mu.Lock()
	streams := make([]*Stream, 0, len(d.streams))
	for _, s := range d.streams {
		streams = append(streams, s)
	}
	d.dead = true
	d.mu.Unlock()
	for _, s := range streams {
		s.Destroy()
	}
}

// Event is a CUDA event: a marker recorded into a stream, carrying the
// completion time of all prior work in that stream.
type Event struct {
	dev *Device

	mu       sync.Mutex
	cond     *sync.Cond
	recorded bool
	complete bool
	when     time.Time
}

// NewEvent creates an event (cudaEventCreate).
func (d *Device) NewEvent() *Event {
	e := &Event{dev: d}
	e.cond = sync.NewCond(&e.mu)
	d.eventsCreated.Add(1)
	return e
}

// Record enqueues the event on the stream (cudaEventRecord). The event
// completes when the stream reaches it.
func (e *Event) Record(s *Stream) error {
	e.mu.Lock()
	e.recorded = true
	e.complete = false
	e.mu.Unlock()
	_, err := s.submit(func() {
		e.mu.Lock()
		e.complete = true
		e.when = time.Now()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	return err
}

// Synchronize blocks until the event has completed (cudaEventSynchronize).
func (e *Event) Synchronize() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.recorded {
		return errors.New("gpusim: event not recorded")
	}
	for !e.complete {
		e.cond.Wait()
	}
	return nil
}

// Completed reports whether the event has fired (cudaEventQuery).
func (e *Event) Completed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.complete
}

// Elapsed returns the time between two completed events
// (cudaEventElapsedTime).
func Elapsed(start, end *Event) (time.Duration, error) {
	if err := start.Synchronize(); err != nil {
		return 0, err
	}
	if err := end.Synchronize(); err != nil {
		return 0, err
	}
	return end.when.Sub(start.when), nil
}
