package crt

import (
	"testing"
	"time"

	"repro/internal/addrspace"
	"repro/internal/cuda"
	"repro/internal/gpusim"
)

func newNative(t *testing.T) *Native {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNative(lib)
	t.Cleanup(n.Close)
	return n
}

func TestCountersFormula(t *testing.T) {
	c := Counters{LaunchKernel: 10, OtherCalls: 5}
	if c.TotalCUDACalls() != 35 {
		t.Fatalf("total = %d, want 35 (3x launches + others)", c.TotalCUDACalls())
	}
	if cps := c.CPS(time.Second); cps != 35 {
		t.Fatalf("cps = %v", cps)
	}
	if c.CPS(0) != 0 {
		t.Fatal("cps with zero elapsed")
	}
}

func TestNativeEndToEnd(t *testing.T) {
	n := newNative(t)
	fat, err := n.RegisterFatBinary("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterFunction(fat, "bump", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		b := ctx.Bytes(args[0], 4)
		b[0]++
	}); err != nil {
		t.Fatal(err)
	}
	d, err := n.Malloc(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := n.LaunchKernel(fat, "bump", gpusim.LaunchConfig{}, s, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	host, _ := n.AppAlloc(4)
	if err := n.Memcpy(host, d, 4, MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	b, err := n.HostAccess(host, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 3 {
		t.Fatalf("kernel ran %d times, want 3", b[0])
	}
}

func TestNativeHandleValidation(t *testing.T) {
	n := newNative(t)
	if err := n.StreamSynchronize(StreamHandle(42)); err == nil {
		t.Fatal("unknown stream accepted")
	}
	if err := n.EventSynchronize(EventHandle(42)); err == nil {
		t.Fatal("unknown event accepted")
	}
	if err := n.LaunchKernel(FatBinHandle(42), "x", gpusim.LaunchConfig{}, DefaultStream); err == nil {
		t.Fatal("unknown fat binary accepted")
	}
	if err := n.UnregisterFatBinary(FatBinHandle(42)); err == nil {
		t.Fatal("unknown fat binary unregistered")
	}
}

func TestNativeEventsElapsed(t *testing.T) {
	n := newNative(t)
	s, _ := n.StreamCreate()
	e1, _ := n.EventCreate()
	e2, _ := n.EventCreate()
	if err := n.EventRecord(e1, s); err != nil {
		t.Fatal(err)
	}
	if err := n.EventRecord(e2, s); err != nil {
		t.Fatal(err)
	}
	if err := n.EventSynchronize(e2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.EventElapsed(e1, e2); err != nil {
		t.Fatal(err)
	}
	if err := n.EventDestroy(e2); err != nil {
		t.Fatal(err)
	}
}

func TestAppHeapBumpAndFree(t *testing.T) {
	space := addrspace.New()
	h := NewAppHeap(space)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("allocations collide")
	}
	if h.LiveBytes() == 0 {
		t.Fatal("live bytes zero")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	// Zero-size allocations are legal.
	if _, err := h.Alloc(0); err != nil {
		t.Fatal(err)
	}
}

func TestAppHeapDeterministic(t *testing.T) {
	alloc := func() []uint64 {
		h := NewAppHeap(addrspace.New())
		var out []uint64
		for i := 0; i < 50; i++ {
			a, err := h.Alloc(uint64(100 + i*13))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, a)
		}
		return out
	}
	a, b := alloc(), alloc()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("app heap nondeterministic at %d", i)
		}
	}
}

func TestAppHeapGrowth(t *testing.T) {
	h := NewAppHeap(addrspace.New())
	// Force chunk growth with a large allocation.
	big, err := h.Alloc(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	small, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if big == small {
		t.Fatal("collision after growth")
	}
}

func TestHostViews(t *testing.T) {
	n := newNative(t)
	a, err := n.AppAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	f, err := HostF32(n, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	f[0] = 1.5
	g, err := HostF64(n, a, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	i32, err := HostI32(n, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	u32, err := HostU32(n, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(i32[0]) != u32[0] {
		t.Fatal("views disagree")
	}
}
