// Package crt defines the CUDA runtime interface that applications in
// this repository program against — the role of the "dummy libcuda" in
// CRAC's upper half (paper Figure 1).
//
// The same application code runs unchanged over three bindings:
//
//   - the native binding in this package (direct calls into the CUDA
//     library, no checkpoint support) — the paper's "native" baseline;
//   - the CRAC binding (package cracrt): trampoline dispatch into the
//     lower half with fs-register switching and call logging;
//   - the proxy binding (package proxy): the CRCUDA/CRUM-style baseline
//     that marshals every call to a separate proxy process.
//
// Handles returned to applications are *virtual*: the CRAC binding
// re-maps them to fresh lower-half resources after restart, so
// application code keeps working across a checkpoint/restart boundary.
package crt

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/memview"
)

// Re-exported aliases so applications depend only on crt.
type (
	// MemcpyKind mirrors cudaMemcpyKind.
	MemcpyKind = cuda.MemcpyKind
	// LaunchConfig mirrors the kernel execution configuration.
	LaunchConfig = gpusim.LaunchConfig
	// Dim3 mirrors CUDA dim3.
	Dim3 = gpusim.Dim3
	// Kernel is a device kernel body.
	Kernel = cuda.Kernel
	// DevCtx is the kernel-side memory view.
	DevCtx = cuda.DevCtx
)

// Copy directions, re-exported from the cuda package.
const (
	MemcpyHostToHost     = cuda.MemcpyHostToHost
	MemcpyHostToDevice   = cuda.MemcpyHostToDevice
	MemcpyDeviceToHost   = cuda.MemcpyDeviceToHost
	MemcpyDeviceToDevice = cuda.MemcpyDeviceToDevice
	MemcpyDefault        = cuda.MemcpyDefault
)

// StreamHandle is a virtual stream handle; 0 is the default stream.
type StreamHandle uint64

// DefaultStream is the implicit stream.
const DefaultStream StreamHandle = 0

// EventHandle is a virtual event handle.
type EventHandle uint64

// FatBinHandle is a virtual fat-binary handle. Virtualization is what
// lets CRAC "patch" fat-binary handles after restart (Section 3.2.5)
// without the application noticing.
type FatBinHandle uint64

// Counters tallies CUDA API calls made from the upper half, the data
// nvprof provides in the paper's methodology (Section 4.3).
type Counters struct {
	LaunchKernel uint64 // cudaLaunchKernel count
	OtherCalls   uint64 // all other CUDA runtime API calls
}

// TotalCUDACalls applies the paper's formula: each kernel launch costs
// three upper→lower calls (cudaPushCallConfiguration,
// cudaPopCallConfiguration, cudaLaunchKernel), plus the rest of the
// runtime API calls.
func (c Counters) TotalCUDACalls() uint64 {
	return 3*c.LaunchKernel + c.OtherCalls
}

// CPS computes CUDA calls per second per the paper's Equation 2.
func (c Counters) CPS(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.TotalCUDACalls()) / elapsed.Seconds()
}

// Runtime is the CUDA runtime API surface used by the workloads, plus
// the host-side memory operations an application performs on its own
// (upper-half) memory.
type Runtime interface {
	// Memory management (the cudaMalloc family of Section 3.2.4).
	Malloc(size uint64) (uint64, error)
	Free(addr uint64) error
	MallocHost(size uint64) (uint64, error)
	HostAlloc(size uint64) (uint64, error)
	FreeHost(addr uint64) error
	MallocManaged(size uint64) (uint64, error)

	// Data movement.
	Memcpy(dst, src, n uint64, kind MemcpyKind) error
	MemcpyAsync(dst, src, n uint64, kind MemcpyKind, s StreamHandle) error
	Memset(addr uint64, value byte, n uint64) error

	// Streams and events.
	StreamCreate() (StreamHandle, error)
	StreamDestroy(s StreamHandle) error
	StreamSynchronize(s StreamHandle) error
	EventCreate() (EventHandle, error)
	EventDestroy(e EventHandle) error
	EventRecord(e EventHandle, s StreamHandle) error
	EventSynchronize(e EventHandle) error
	EventElapsed(start, end EventHandle) (time.Duration, error)
	// StreamWaitEvent makes subsequent work on s wait for e
	// (cudaStreamWaitEvent), the cross-stream dependency primitive.
	StreamWaitEvent(s StreamHandle, e EventHandle) error

	// Kernel registration and launch.
	RegisterFatBinary(module string) (FatBinHandle, error)
	RegisterFunction(h FatBinHandle, name string, k Kernel) error
	UnregisterFatBinary(h FatBinHandle) error
	LaunchKernel(h FatBinHandle, name string, cfg LaunchConfig, s StreamHandle, args ...uint64) error

	// Device-wide operations.
	DeviceSynchronize() error
	DeviceProperties() gpusim.Properties
	// MemGetInfo mirrors cudaMemGetInfo: free and total device memory.
	MemGetInfo() (free, total uint64, err error)

	// HostAccess returns a direct host view of [addr, addr+n), faulting
	// managed pages to the host. This is how application host code
	// dereferences its pointers in the simulation.
	HostAccess(addr, n uint64, write bool) ([]byte, error)

	// AppAlloc and AppFree manage plain application host memory in the
	// upper half (the application heap DMTCP checkpoints implicitly).
	// They are not CUDA calls and are not counted or logged.
	AppAlloc(size uint64) (uint64, error)
	AppFree(addr uint64) error

	// Counters returns the cumulative CUDA call counters.
	Counters() Counters
}

// HostF32 is a convenience wrapper: a host float32 view of rt memory.
func HostF32(rt Runtime, addr uint64, count int) ([]float32, error) {
	b, err := rt.HostAccess(addr, uint64(count)*4, true)
	if err != nil {
		return nil, err
	}
	return memview.Float32s(b, count), nil
}

// HostF64 is a host float64 view of rt memory.
func HostF64(rt Runtime, addr uint64, count int) ([]float64, error) {
	b, err := rt.HostAccess(addr, uint64(count)*8, true)
	if err != nil {
		return nil, err
	}
	return memview.Float64s(b, count), nil
}

// HostI32 is a host int32 view of rt memory.
func HostI32(rt Runtime, addr uint64, count int) ([]int32, error) {
	b, err := rt.HostAccess(addr, uint64(count)*4, true)
	if err != nil {
		return nil, err
	}
	return memview.Int32s(b, count), nil
}

// HostU32 is a host uint32 view of rt memory.
func HostU32(rt Runtime, addr uint64, count int) ([]uint32, error) {
	b, err := rt.HostAccess(addr, uint64(count)*4, true)
	if err != nil {
		return nil, err
	}
	return memview.Uint32s(b, count), nil
}

// AppHeap is a simple deterministic allocator for plain application
// memory in the upper half of an address space. Addresses are never
// reused, keeping allocation deterministic regardless of free order —
// adequate for the workloads, whose heavy malloc/free churn goes through
// the CUDA allocators, not the app heap.
type AppHeap struct {
	space *addrspace.Space

	mu     sync.Mutex
	chunk  uint64 // current chunk base
	off    uint64 // bump offset within chunk
	size   uint64 // current chunk size
	live   map[uint64]uint64
	growBy uint64
}

// NewAppHeap creates an application heap over the upper half of space.
func NewAppHeap(space *addrspace.Space) *AppHeap {
	return &AppHeap{space: space, live: make(map[uint64]uint64), growBy: 8 << 20}
}

// Alloc returns a new upper-half allocation of the given size.
func (h *AppHeap) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	size = (size + 255) &^ 255
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.chunk == 0 || h.off+size > h.size {
		grow := h.growBy
		if size > grow {
			grow = size
		}
		base, err := h.space.MMap(0, grow, addrspace.ProtRW, 0, addrspace.HalfUpper, "app-heap")
		if err != nil {
			return 0, err
		}
		h.chunk, h.off = base, 0
		h.size = (grow + addrspace.PageSize - 1) &^ (addrspace.PageSize - 1)
	}
	addr := h.chunk + h.off
	h.off += size
	h.live[addr] = size
	return addr, nil
}

// Free releases an allocation (bookkeeping only; addresses are not
// reused).
func (h *AppHeap) Free(addr uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.live[addr]; !ok {
		return addrspace.ErrNotMapped
	}
	delete(h.live, addr)
	return nil
}

// SetSpace re-points the heap at a different address space. Used after a
// restart-in-place, when the restored upper-half regions (including the
// heap's chunks, at their original addresses) live in a fresh space.
func (h *AppHeap) SetSpace(space *addrspace.Space) {
	h.mu.Lock()
	h.space = space
	h.mu.Unlock()
}

// LiveBytes returns the total live application-heap bytes.
func (h *AppHeap) LiveBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, s := range h.live {
		n += s
	}
	return n
}

// Native is the direct binding of Runtime onto a CUDA library: the
// configuration used for the paper's "native" baseline runs. No
// trampoline, no logging, no checkpoint support.
type Native struct {
	lib  *cuda.Library
	heap *AppHeap

	launches atomic.Uint64
	others   atomic.Uint64

	mu      sync.Mutex
	streams map[StreamHandle]cuda.Stream
	events  map[EventHandle]cuda.Event
	fats    map[FatBinHandle]cuda.FatBinaryHandle
	nextS   StreamHandle
	nextE   EventHandle
	nextF   FatBinHandle
}

// NewNative binds a Runtime directly to lib.
func NewNative(lib *cuda.Library) *Native {
	return &Native{
		lib:     lib,
		heap:    NewAppHeap(lib.Space()),
		streams: make(map[StreamHandle]cuda.Stream),
		events:  make(map[EventHandle]cuda.Event),
		fats:    make(map[FatBinHandle]cuda.FatBinaryHandle),
	}
}

// Library exposes the bound CUDA library (for tests and the harness).
func (n *Native) Library() *cuda.Library { return n.lib }

// Close destroys the bound library (drains the device and stops its
// stream workers).
func (n *Native) Close() { n.lib.Destroy() }

func (n *Native) call() { n.others.Add(1) }

// Malloc implements Runtime.
func (n *Native) Malloc(size uint64) (uint64, error) { n.call(); return n.lib.Malloc(size) }

// Free implements Runtime.
func (n *Native) Free(addr uint64) error { n.call(); return n.lib.Free(addr) }

// MallocHost implements Runtime.
func (n *Native) MallocHost(size uint64) (uint64, error) { n.call(); return n.lib.MallocHost(size) }

// HostAlloc implements Runtime.
func (n *Native) HostAlloc(size uint64) (uint64, error) { n.call(); return n.lib.HostAlloc(size) }

// FreeHost implements Runtime.
func (n *Native) FreeHost(addr uint64) error { n.call(); return n.lib.FreeHost(addr) }

// MallocManaged implements Runtime.
func (n *Native) MallocManaged(size uint64) (uint64, error) {
	n.call()
	return n.lib.MallocManaged(size)
}

// Memcpy implements Runtime.
func (n *Native) Memcpy(dst, src, nbytes uint64, kind MemcpyKind) error {
	n.call()
	return n.lib.Memcpy(dst, src, nbytes, kind)
}

// MemcpyAsync implements Runtime.
func (n *Native) MemcpyAsync(dst, src, nbytes uint64, kind MemcpyKind, s StreamHandle) error {
	n.call()
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	return n.lib.MemcpyAsync(dst, src, nbytes, kind, ps)
}

// Memset implements Runtime.
func (n *Native) Memset(addr uint64, value byte, nbytes uint64) error {
	n.call()
	return n.lib.Memset(addr, value, nbytes)
}

func (n *Native) stream(s StreamHandle) (cuda.Stream, error) {
	if s == DefaultStream {
		return cuda.DefaultStream, nil
	}
	n.mu.Lock()
	ps, ok := n.streams[s]
	n.mu.Unlock()
	if !ok {
		return 0, &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "stream", Msg: "unknown virtual stream"}
	}
	return ps, nil
}

// StreamCreate implements Runtime.
func (n *Native) StreamCreate() (StreamHandle, error) {
	n.call()
	ps, err := n.lib.StreamCreate()
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextS++
	h := n.nextS
	n.streams[h] = ps
	return h, nil
}

// StreamDestroy implements Runtime.
func (n *Native) StreamDestroy(s StreamHandle) error {
	n.call()
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.streams, s)
	n.mu.Unlock()
	return n.lib.StreamDestroy(ps)
}

// StreamSynchronize implements Runtime.
func (n *Native) StreamSynchronize(s StreamHandle) error {
	n.call()
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	return n.lib.StreamSynchronize(ps)
}

func (n *Native) event(e EventHandle) (cuda.Event, error) {
	n.mu.Lock()
	pe, ok := n.events[e]
	n.mu.Unlock()
	if !ok {
		return 0, &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "event", Msg: "unknown virtual event"}
	}
	return pe, nil
}

// EventCreate implements Runtime.
func (n *Native) EventCreate() (EventHandle, error) {
	n.call()
	pe, err := n.lib.EventCreate()
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextE++
	h := n.nextE
	n.events[h] = pe
	return h, nil
}

// EventDestroy implements Runtime.
func (n *Native) EventDestroy(e EventHandle) error {
	n.call()
	pe, err := n.event(e)
	if err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.events, e)
	n.mu.Unlock()
	return n.lib.EventDestroy(pe)
}

// EventRecord implements Runtime.
func (n *Native) EventRecord(e EventHandle, s StreamHandle) error {
	n.call()
	pe, err := n.event(e)
	if err != nil {
		return err
	}
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	return n.lib.EventRecord(pe, ps)
}

// EventSynchronize implements Runtime.
func (n *Native) EventSynchronize(e EventHandle) error {
	n.call()
	pe, err := n.event(e)
	if err != nil {
		return err
	}
	return n.lib.EventSynchronize(pe)
}

// EventElapsed implements Runtime.
func (n *Native) EventElapsed(start, end EventHandle) (time.Duration, error) {
	n.call()
	ps, err := n.event(start)
	if err != nil {
		return 0, err
	}
	pe, err := n.event(end)
	if err != nil {
		return 0, err
	}
	return n.lib.EventElapsed(ps, pe)
}

// RegisterFatBinary implements Runtime.
func (n *Native) RegisterFatBinary(module string) (FatBinHandle, error) {
	n.call()
	ph, err := n.lib.RegisterFatBinary(module)
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextF++
	h := n.nextF
	n.fats[h] = ph
	return h, nil
}

// RegisterFunction implements Runtime.
func (n *Native) RegisterFunction(h FatBinHandle, name string, k Kernel) error {
	n.call()
	n.mu.Lock()
	ph, ok := n.fats[h]
	n.mu.Unlock()
	if !ok {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "registerFunction", Msg: "unknown virtual fat binary"}
	}
	return n.lib.RegisterFunction(ph, name, k)
}

// UnregisterFatBinary implements Runtime.
func (n *Native) UnregisterFatBinary(h FatBinHandle) error {
	n.call()
	n.mu.Lock()
	ph, ok := n.fats[h]
	delete(n.fats, h)
	n.mu.Unlock()
	if !ok {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "unregisterFatBinary", Msg: "unknown virtual fat binary"}
	}
	return n.lib.UnregisterFatBinary(ph)
}

// LaunchKernel implements Runtime.
func (n *Native) LaunchKernel(h FatBinHandle, name string, cfg LaunchConfig, s StreamHandle, args ...uint64) error {
	n.launches.Add(1)
	n.mu.Lock()
	ph, ok := n.fats[h]
	n.mu.Unlock()
	if !ok {
		return &cuda.Error{Code: cuda.ErrorInvalidResourceHandle, Op: "launchKernel", Msg: "unknown virtual fat binary"}
	}
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	return n.lib.LaunchKernel(ph, name, cfg, ps, args...)
}

// StreamWaitEvent implements Runtime.
func (n *Native) StreamWaitEvent(s StreamHandle, e EventHandle) error {
	n.call()
	ps, err := n.stream(s)
	if err != nil {
		return err
	}
	pe, err := n.event(e)
	if err != nil {
		return err
	}
	return n.lib.StreamWaitEvent(ps, pe)
}

// MemGetInfo implements Runtime.
func (n *Native) MemGetInfo() (uint64, uint64, error) { n.call(); return n.lib.MemGetInfo() }

// DeviceSynchronize implements Runtime.
func (n *Native) DeviceSynchronize() error { n.call(); return n.lib.DeviceSynchronize() }

// DeviceProperties implements Runtime.
func (n *Native) DeviceProperties() gpusim.Properties { return n.lib.DeviceProperties() }

// HostAccess implements Runtime.
func (n *Native) HostAccess(addr, nbytes uint64, write bool) ([]byte, error) {
	return n.lib.HostAccess(addr, nbytes, write)
}

// AppAlloc implements Runtime.
func (n *Native) AppAlloc(size uint64) (uint64, error) { return n.heap.Alloc(size) }

// AppFree implements Runtime.
func (n *Native) AppFree(addr uint64) error { return n.heap.Free(addr) }

// Counters implements Runtime.
func (n *Native) Counters() Counters {
	return Counters{LaunchKernel: n.launches.Load(), OtherCalls: n.others.Load()}
}

var _ Runtime = (*Native)(nil)
