package loader

import (
	"testing"

	"repro/internal/addrspace"
)

func testSpec() ProgramSpec {
	return HelperSpec([]string{"cudaMalloc", "cudaFree", "cudaLaunchKernel"})
}

func TestLoadHelper(t *testing.T) {
	s := addrspace.New()
	p, err := NewLower(s).Load(testSpec())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Every mapping is in the lower half.
	for _, ri := range s.Regions() {
		if ri.Half != addrspace.HalfLower {
			t.Fatalf("region %v not in lower half", ri)
		}
	}
	// The interposed mmap record matches the space.
	if got, want := p.MappedBytes(), s.MappedBytes(addrspace.HalfLower); got != want {
		t.Fatalf("mapped bytes: recorded %d, space %d", got, want)
	}
	// Interpreter first, then program, then libraries (the kernel
	// loading order the paper's Section 3.1 describes).
	if p.Mappings[0].Owner != "ld.so" {
		t.Fatalf("first mapping owner = %q, want ld.so", p.Mappings[0].Owner)
	}
}

func TestEntryTable(t *testing.T) {
	s := addrspace.New()
	p, err := NewLower(s).Load(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"cudaMalloc", "cudaFree", "cudaLaunchKernel"} {
		addr, ok := p.Entry(sym)
		if !ok || addr == 0 {
			t.Fatalf("entry %q missing", sym)
		}
	}
	if _, ok := p.Entry("cudaBogus"); ok {
		t.Fatal("unknown symbol resolved")
	}
	if got := p.Entries(); len(got) != 3 {
		t.Fatalf("entries = %v", got)
	}
	// Entry addresses land inside the libcudart text segment.
	a, _ := p.Entry("cudaMalloc")
	var found bool
	for _, m := range p.Mappings {
		if m.Owner == "libcudart.lower" && m.Segment == "text" &&
			a >= m.Start && a < m.Start+m.Len {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry %#x outside libcudart text", a)
	}
}

func TestDeterministicReload(t *testing.T) {
	// A fresh lower half in a fresh space loads at identical addresses —
	// the property restart depends on (Section 3.2.4, ASLR off).
	load := func() []Mapping {
		s := addrspace.New()
		p, err := NewLower(s).Load(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		return p.Mappings
	}
	a, b := load(), load()
	if len(a) != len(b) {
		t.Fatalf("mapping counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mapping %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnload(t *testing.T) {
	s := addrspace.New()
	p, err := NewLower(s).Load(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	p.Unload()
	if n := s.MappedBytes(addrspace.HalfLower); n != 0 {
		t.Fatalf("lower half still has %d bytes after unload", n)
	}
	p.Unload() // idempotent
}

func TestEntriesRequireTextSegment(t *testing.T) {
	spec := ProgramSpec{
		Name: "bad",
		Libs: []LibSpec{{
			Name:     "datalib",
			Segments: []Segment{{Name: "data", Size: addrspace.PageSize, Prot: addrspace.ProtRW}},
			Entries:  []string{"fn"},
		}},
	}
	s := addrspace.New()
	if _, err := NewLower(s).Load(spec); err == nil {
		t.Fatal("library without text exporting entries should fail")
	}
	// Failed load cleans up.
	if n := s.MappedBytes(addrspace.HalfLower); n != 0 {
		t.Fatalf("failed load leaked %d bytes", n)
	}
}
