// Package loader simulates the user-space program loading mechanism that
// CRAC uses to place the lower-half helper program (and its CUDA
// libraries) into a restricted portion of the address space (paper
// Section 3.1, "Single address-space design: split processes").
//
// The real CRAC imitates the kernel: it first loads an ELF interpreter,
// which then loads the dynamically linked target, while interposing on
// every mmap so each resulting memory region can be attributed to the
// lower half and excluded from checkpoints. This package reproduces that
// flow over the simulated address space: a ProgramSpec describes the
// segments of an executable and its dynamic libraries; Load maps each
// segment into the lower-half window (recording every interposed mmap),
// and exposes the table of entry-point addresses that the helper program
// publishes for the upper-half trampolines.
package loader

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/addrspace"
)

// Segment describes one loadable segment of a program or library.
type Segment struct {
	Name string // e.g. "text", "data", "bss"
	Size uint64 // bytes; rounded up to a page multiple when mapped
	Prot addrspace.Prot
}

// LibSpec describes a dynamically linked library to be loaded alongside
// the main program (e.g. libcudart, libc of the lower half).
type LibSpec struct {
	Name     string
	Segments []Segment
	// Entries lists API symbols exported by this library. Each is
	// assigned an address inside the library's first executable segment.
	Entries []string
}

// ProgramSpec describes the helper program to load.
type ProgramSpec struct {
	Name     string
	Segments []Segment
	Libs     []LibSpec
}

// Mapping records one interposed mmap performed during loading.
type Mapping struct {
	Owner   string // program or library name
	Segment string
	Start   uint64
	Len     uint64
	Prot    addrspace.Prot
}

// Program is a loaded lower-half program.
type Program struct {
	Name     string
	Mappings []Mapping
	entries  map[string]uint64

	space *addrspace.Space
	mu    sync.Mutex
	dead  bool
}

// Loader loads programs into one half of an address space, interposing on
// all mmap calls it issues.
type Loader struct {
	Space *addrspace.Space
	Half  addrspace.Half
}

// NewLower returns a loader that places programs in the lower half, the
// configuration CRAC uses for the helper program.
func NewLower(s *addrspace.Space) *Loader {
	return &Loader{Space: s, Half: addrspace.HalfLower}
}

// interpreterSegments is the simulated statically linked ELF interpreter
// (ld.so) that the kernel-imitating loader maps first.
var interpreterSegments = []Segment{
	{Name: "interp-text", Size: 2 * addrspace.PageSize, Prot: addrspace.ProtRead | addrspace.ProtExec},
	{Name: "interp-data", Size: addrspace.PageSize, Prot: addrspace.ProtRW},
}

// Load maps the interpreter, the program segments, and every library's
// segments into the loader's half, assigning entry-point addresses for
// all exported symbols. The mapping order is deterministic, which is what
// lets a fresh lower half land at the same addresses on restart when ASLR
// is disabled.
func (l *Loader) Load(spec ProgramSpec) (*Program, error) {
	p := &Program{
		Name:    spec.Name,
		entries: make(map[string]uint64),
		space:   l.Space,
	}
	mapSeg := func(owner string, seg Segment) (uint64, error) {
		start, err := l.Space.MMap(0, seg.Size, seg.Prot, 0, l.Half, owner+"/"+seg.Name)
		if err != nil {
			return 0, fmt.Errorf("loader: mapping %s/%s: %w", owner, seg.Name, err)
		}
		p.Mappings = append(p.Mappings, Mapping{Owner: owner, Segment: seg.Name, Start: start, Len: roundUp(seg.Size), Prot: seg.Prot})
		return start, nil
	}

	// 1. The ELF interpreter, as the kernel would map it.
	for _, seg := range interpreterSegments {
		if _, err := mapSeg("ld.so", seg); err != nil {
			return nil, err
		}
	}
	// 2. The target executable's segments.
	for _, seg := range spec.Segments {
		if _, err := mapSeg(spec.Name, seg); err != nil {
			p.Unload()
			return nil, err
		}
	}
	// 3. Each dynamic library, with entry symbols laid out in its first
	// executable segment at deterministic offsets.
	for _, lib := range spec.Libs {
		var textBase uint64
		var haveText bool
		for _, seg := range lib.Segments {
			start, err := mapSeg(lib.Name, seg)
			if err != nil {
				p.Unload()
				return nil, err
			}
			if !haveText && seg.Prot&addrspace.ProtExec != 0 {
				textBase, haveText = start, true
			}
		}
		if !haveText && len(lib.Entries) > 0 {
			p.Unload()
			return nil, fmt.Errorf("loader: library %s exports entries but has no executable segment", lib.Name)
		}
		for i, sym := range lib.Entries {
			// 16-byte aligned slots, like a PLT.
			p.entries[sym] = textBase + uint64(16*(i+1))
		}
	}
	return p, nil
}

// Entry returns the address of an exported symbol. This is the array of
// libcuda entry addresses from Figure 1 of the paper: the lower-half
// helper copies the CUDA entry points here and the upper-half trampoline
// jumps through them.
func (p *Program) Entry(sym string) (uint64, bool) {
	a, ok := p.entries[sym]
	return a, ok
}

// Entries returns all exported symbols in deterministic order.
func (p *Program) Entries() []string {
	syms := make([]string, 0, len(p.entries))
	for s := range p.entries {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// MappedBytes returns the total bytes this program mapped.
func (p *Program) MappedBytes() uint64 {
	var n uint64
	for _, m := range p.Mappings {
		n += m.Len
	}
	return n
}

// Unload unmaps every region the program mapped. A fresh lower half is
// loaded on restart, so the old one must be fully discarded.
func (p *Program) Unload() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return
	}
	p.dead = true
	for _, m := range p.Mappings {
		// Best effort: regions may already have been replaced.
		_ = p.space.MUnmap(m.Start, m.Len)
	}
}

func roundUp(n uint64) uint64 {
	return (n + addrspace.PageSize - 1) &^ (addrspace.PageSize - 1)
}

// HelperSpec returns the canonical lower-half helper ProgramSpec used by
// CRAC: a tiny CUDA program linked against its own libc and the real
// CUDA runtime, exporting the entry points the upper half needs.
func HelperSpec(entries []string) ProgramSpec {
	return ProgramSpec{
		Name: "crac-helper",
		Segments: []Segment{
			{Name: "text", Size: 4 * addrspace.PageSize, Prot: addrspace.ProtRead | addrspace.ProtExec},
			{Name: "data", Size: 2 * addrspace.PageSize, Prot: addrspace.ProtRW},
			{Name: "bss", Size: 2 * addrspace.PageSize, Prot: addrspace.ProtRW},
		},
		Libs: []LibSpec{
			{
				Name: "libc.lower",
				Segments: []Segment{
					{Name: "text", Size: 16 * addrspace.PageSize, Prot: addrspace.ProtRead | addrspace.ProtExec},
					{Name: "data", Size: 4 * addrspace.PageSize, Prot: addrspace.ProtRW},
				},
			},
			{
				Name: "libcudart.lower",
				Segments: []Segment{
					{Name: "text", Size: 64 * addrspace.PageSize, Prot: addrspace.ProtRead | addrspace.ProtExec},
					{Name: "data", Size: 16 * addrspace.PageSize, Prot: addrspace.ProtRW},
				},
				Entries: entries,
			},
		},
	}
}
