package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 1 << 16} {
		var sum atomic.Int64
		For(n, 64, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, sum.Load(), want)
		}
	}
}

func TestForSmallRunsInline(t *testing.T) {
	// Below minPar the body must run exactly once covering [0, n).
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline range = [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestQuickForPartition property: chunks are disjoint, ordered and cover
// [0, n) exactly once.
func TestQuickForPartition(t *testing.T) {
	f := func(n uint16) bool {
		covered := make([]atomic.Bool, int(n))
		ok := atomic.Bool{}
		ok.Store(true)
		For(int(n), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i].Swap(true) {
					ok.Store(false) // double cover
				}
			}
		})
		if !ok.Load() {
			return false
		}
		for i := range covered {
			if !covered[i].Load() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
