package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 1 << 16} {
		var sum atomic.Int64
		For(n, 64, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, sum.Load(), want)
		}
	}
}

func TestForSmallRunsInline(t *testing.T) {
	// Below minPar the body must run exactly once covering [0, n).
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline range = [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestQuickForPartition property: chunks are disjoint, ordered and cover
// [0, n) exactly once.
func TestQuickForPartition(t *testing.T) {
	f := func(n uint16) bool {
		covered := make([]atomic.Bool, int(n))
		ok := atomic.Bool{}
		ok.Store(true)
		For(int(n), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i].Swap(true) {
					ok.Store(false) // double cover
				}
			}
		})
		if !ok.Load() {
			return false
		}
		for i := range covered {
			if !covered[i].Load() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestForErrCtxCancellation: a context cancelled partway stops further
// dispatch and surfaces ctx.Err(), on both the serial and parallel
// paths.
func TestForErrCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForErrCtx(ctx, workers, 10_000, func(i int) error {
			if ran.Add(1) == 8 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (ran %d)", workers, n)
		}
	}
}

// TestForErrCtxNilAndBodyError: nil ctx degrades to ForErrN, and a body
// error still wins over a later cancellation check.
func TestForErrCtxNilAndBodyError(t *testing.T) {
	boom := errors.New("boom")
	if err := ForErrCtx(nil, 2, 100, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("nil ctx: err = %v, want boom", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForErrCtx(ctx, 2, 100, func(i int) error { return nil }); err != nil {
		t.Fatalf("live ctx: err = %v", err)
	}
}
