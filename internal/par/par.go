// Package par provides the intra-kernel parallelism of the simulated
// device: a real GPU executes a kernel across thousands of cores, which
// the simulator models by fanning the kernel's index space out over the
// host's CPUs. Kernels use For to cover their grid, the way CUDA kernels
// cover it with blockIdx/threadIdx.
package par

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the fan-out of one kernel; the device's stream
// engine provides cross-kernel concurrency on top.
var maxWorkers = runtime.GOMAXPROCS(0)

// For splits [0, n) into contiguous chunks and runs body(lo, hi) on up to
// GOMAXPROCS goroutines. If n is small (below minPar) the body runs
// inline — tiny kernels don't benefit from fan-out, and the simulator
// must not pay goroutine overhead on the paper's many-small-kernels
// workloads (HPGMG's 35K calls/second).
func For(n, minPar int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if n < minPar || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
