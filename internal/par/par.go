// Package par provides the intra-kernel parallelism of the simulated
// device: a real GPU executes a kernel across thousands of cores, which
// the simulator models by fanning the kernel's index space out over the
// host's CPUs. Kernels use For to cover their grid, the way CUDA kernels
// cover it with blockIdx/threadIdx.
//
// The checkpoint/restart data path reuses the same fan-out idiom through
// ForErr/ForErrN, which add error propagation and an explicit worker
// count (workers=1 is the serial reference path used for apples-to-apples
// benchmarking).
package par

import (
	"context"
	"runtime"
	"sync"
)

// maxWorkers bounds the fan-out of one kernel; the device's stream
// engine provides cross-kernel concurrency on top.
var maxWorkers = runtime.GOMAXPROCS(0)

// For splits [0, n) into contiguous chunks and runs body(lo, hi) on up to
// GOMAXPROCS goroutines. If n is small (below minPar) the body runs
// inline — tiny kernels don't benefit from fan-out, and the simulator
// must not pay goroutine overhead on the paper's many-small-kernels
// workloads (HPGMG's 35K calls/second).
func For(n, minPar int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if n < minPar || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Workers resolves a worker-count knob: n<=0 means "use all CPUs".
func Workers(n int) int {
	if n <= 0 {
		return maxWorkers
	}
	return n
}

// ForErr runs body(i) for every i in [0, n) on up to GOMAXPROCS
// goroutines and returns the first error. Unlike For it is
// per-item (not chunked): the checkpoint data path's items (regions,
// allocations, shards) are coarse enough that per-item dispatch cost is
// noise next to the memory traffic each item moves.
func ForErr(n int, body func(i int) error) error {
	return ForErrN(0, n, body)
}

// ForErrCtx is ForErrN with cancellation: once ctx is done, no further
// items are dispatched and ctx.Err() is returned (in-flight items finish
// first). A nil ctx behaves like context.Background(). Unlike the body
// errors — which never stop the remaining items — cancellation aborts
// the fan-out early, which is what lets a deadline cut a checkpoint off
// mid-pipeline instead of draining every remaining shard.
func ForErrCtx(ctx context.Context, workers, n int, body func(i int) error) error {
	if ctx == nil {
		return ForErrN(workers, n, body)
	}
	return forErr(ctx, workers, n, body)
}

// ForErrN is ForErr with an explicit worker count: workers<=0 uses all
// CPUs, workers==1 runs body serially in-line (the reference path for
// serial-vs-parallel comparisons). All items run even after an error;
// the first error (in goroutine-observation order) is returned.
func ForErrN(workers, n int, body func(i int) error) error {
	return forErr(nil, workers, n, body)
}

func forErr(ctx context.Context, workers, n int, body func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w == 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					// Like the parallel path: an already-recorded body
					// error outranks the cancellation it may have caused.
					if first != nil {
						return first
					}
					return err
				}
			}
			if err := body(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if w > n {
		w = n
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		first     error
		next      int
		cancelled error
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						mu.Lock()
						cancelled = err
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := body(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if cancelled != nil && first == nil {
		return cancelled
	}
	return first
}
