// Package kernels is the shared device-kernel library of the simulated
// workloads: the __global__ functions that applications register as a fat
// binary and launch through the runtime. Each kernel covers its whole
// index space, fanning out over CPUs (package par) the way a real kernel
// fans out over GPU cores.
//
// Argument convention: kernel arguments are raw 64-bit words, exactly
// like the CUDA launch ABI. Pointers are passed as addresses; float32
// scalars are passed with F32Arg and recovered with ArgF32.
package kernels

import (
	"math"

	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
)

// Module is the fat-binary module name of this kernel library.
const Module = "crac.kernels"

// F32Arg packs a float32 scalar into a kernel argument word.
func F32Arg(f float32) uint64 { return uint64(math.Float32bits(f)) }

// ArgF32 unpacks a float32 scalar from a kernel argument word.
func ArgF32(a uint64) float32 { return math.Float32frombits(uint32(a)) }

// minPar is the element count below which a kernel runs single-threaded;
// small kernels model the many-tiny-launch workloads (HPGMG) where
// per-launch overhead dominates.
const minPar = 1 << 14

// Table returns the kernel table. Callers register it as a fat binary;
// restarted processes resolve the same names from it.
func Table() map[string]cuda.Kernel {
	return map[string]cuda.Kernel{
		"fill":        Fill,
		"iota":        Iota,
		"vecAdd":      VecAdd,
		"axpy":        Axpy,
		"scale":       Scale,
		"mulElem":     MulElem,
		"reduceSum":   ReduceSum,
		"dotPartial":  DotPartial,
		"stencil2d":   Stencil2D,
		"stencil3d":   Stencil3D,
		"initArray":   InitArray,
		"spinCollect": SpinCollect,
	}
}

// Fill sets n float32 elements at args[0] to the value in args[1].
// args: ptr, F32Arg(value), n.
func Fill(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[2])
	v := ArgF32(args[1])
	x := ctx.Float32s(args[0], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = v
		}
	})
}

// Iota writes x[i] = scale*i. args: ptr, F32Arg(scale), n.
func Iota(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[2])
	s := ArgF32(args[1])
	x := ctx.Float32s(args[0], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = s * float32(i)
		}
	})
}

// VecAdd computes c = a + b. args: a, b, c, n.
func VecAdd(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[3])
	a := ctx.Float32s(args[0], n)
	b := ctx.Float32s(args[1], n)
	c := ctx.Float32s(args[2], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] + b[i]
		}
	})
}

// Axpy computes y += alpha*x. args: x, y, F32Arg(alpha), n.
func Axpy(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[3])
	alpha := ArgF32(args[2])
	x := ctx.Float32s(args[0], n)
	y := ctx.Float32s(args[1], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Scale computes x *= alpha. args: x, F32Arg(alpha), n.
func Scale(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[2])
	alpha := ArgF32(args[1])
	x := ctx.Float32s(args[0], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= alpha
		}
	})
}

// MulElem computes c = a .* b. args: a, b, c, n.
func MulElem(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[3])
	a := ctx.Float32s(args[0], n)
	b := ctx.Float32s(args[1], n)
	c := ctx.Float32s(args[2], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] * b[i]
		}
	})
}

// ReduceSum writes sum(x[0:n]) to out[0]. args: x, out, n.
func ReduceSum(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[2])
	x := ctx.Float32s(args[0], n)
	out := ctx.Float32s(args[1], 1)
	var total float64
	for i := 0; i < n; i++ {
		total += float64(x[i])
	}
	out[0] = float32(total)
}

// DotPartial writes dot(a[0:n], b[0:n]) to out[0]. args: a, b, out, n.
func DotPartial(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[3])
	a := ctx.Float32s(args[0], n)
	b := ctx.Float32s(args[1], n)
	out := ctx.Float32s(args[2], 1)
	var total float64
	for i := 0; i < n; i++ {
		total += float64(a[i]) * float64(b[i])
	}
	out[0] = float32(total)
}

// Stencil2D applies one 5-point Jacobi relaxation step on a w×h grid:
// dst = 0.2*(c + n + s + e + w). Boundary cells copy through.
// args: src, dst, w, h.
func Stencil2D(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	w, h := int(args[2]), int(args[3])
	src := ctx.Float32s(args[0], w*h)
	dst := ctx.Float32s(args[1], w*h)
	par.For(h, 64, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := y * w
			if y == 0 || y == h-1 {
				copy(dst[row:row+w], src[row:row+w])
				continue
			}
			dst[row] = src[row]
			for x := 1; x < w-1; x++ {
				i := row + x
				dst[i] = 0.2 * (src[i] + src[i-1] + src[i+1] + src[i-w] + src[i+w])
			}
			dst[row+w-1] = src[row+w-1]
		}
	})
}

// Stencil3D applies one 7-point relaxation step on a w×h×d grid.
// args: src, dst, w, h, d.
func Stencil3D(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	w, h, d := int(args[2]), int(args[3]), int(args[4])
	src := ctx.Float32s(args[0], w*h*d)
	dst := ctx.Float32s(args[1], w*h*d)
	plane := w * h
	par.For(d, 8, func(lo, hi int) {
		for z := lo; z < hi; z++ {
			zOff := z * plane
			if z == 0 || z == d-1 {
				copy(dst[zOff:zOff+plane], src[zOff:zOff+plane])
				continue
			}
			for y := 0; y < h; y++ {
				row := zOff + y*w
				if y == 0 || y == h-1 {
					copy(dst[row:row+w], src[row:row+w])
					continue
				}
				dst[row] = src[row]
				for x := 1; x < w-1; x++ {
					i := row + x
					dst[i] = (src[i] + src[i-1] + src[i+1] +
						src[i-w] + src[i+w] + src[i-plane] + src[i+plane]) * (1.0 / 7.0)
				}
				dst[row+w-1] = src[row+w-1]
			}
		}
	})
}

// InitArray is the simpleStreams kernel: it initializes n int32 elements
// to a value, spending `iters` inner iterations of arithmetic per element
// ("More iterations imply a longer-running kernel", paper Figure 4b).
// args: ptr, n, value, iters.
func InitArray(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[1])
	value := int32(args[2])
	iters := int(args[3])
	x := ctx.Int32s(args[0], n)
	par.For(n, minPar, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := int32(i)
			for k := 0; k < iters; k++ {
				acc = acc*1664525 + 1013904223 // LCG step: real work per iteration
			}
			// The result depends on the spin only through a zero term, so
			// the stored value is deterministic but the work not elided.
			x[i] = value + (acc^acc)&1
		}
	})
}

// SpinCollect is a task kernel (UnifiedMemoryStreams): it reduces n
// float32 elements with `iters` passes, writing the result to out[0].
// args: data, out, n, iters.
func SpinCollect(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[2])
	iters := int(args[3])
	x := ctx.Float32s(args[0], n)
	out := ctx.Float32s(args[1], 1)
	var total float64
	for k := 0; k < iters; k++ {
		total = 0
		for i := 0; i < n; i++ {
			total += float64(x[i])
		}
	}
	out[0] = float32(total)
}
