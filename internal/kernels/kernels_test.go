package kernels

import (
	"math"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
)

// rig builds a native runtime with the kernel module registered and a
// helper to run one kernel synchronously on a device buffer.
type rig struct {
	rt  crt.Runtime
	fat crt.FatBinHandle
	t   *testing.T
}

func newRig(t *testing.T) *rig {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := crt.NewNative(lib)
	t.Cleanup(n.Close)
	fat, err := n.RegisterFatBinary(Module)
	if err != nil {
		t.Fatal(err)
	}
	for name, k := range Table() {
		if err := n.RegisterFunction(fat, name, k); err != nil {
			t.Fatal(err)
		}
	}
	return &rig{rt: n, fat: fat, t: t}
}

func (r *rig) devAlloc(bytes int) uint64 {
	a, err := r.rt.Malloc(uint64(bytes))
	if err != nil {
		r.t.Fatal(err)
	}
	return a
}

func (r *rig) run(name string, n int, args ...uint64) {
	blocks := (n + 255) / 256
	if blocks == 0 {
		blocks = 1
	}
	cfg := crt.LaunchConfig{Grid: crt.Dim3{X: blocks}, Block: crt.Dim3{X: 256}}
	if err := r.rt.LaunchKernel(r.fat, name, cfg, crt.DefaultStream, args...); err != nil {
		r.t.Fatal(err)
	}
	if err := r.rt.DeviceSynchronize(); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) readF32(addr uint64, n int) []float32 {
	host, err := r.rt.AppAlloc(uint64(4 * n))
	if err != nil {
		r.t.Fatal(err)
	}
	if err := r.rt.Memcpy(host, addr, uint64(4*n), crt.MemcpyDeviceToHost); err != nil {
		r.t.Fatal(err)
	}
	v, err := crt.HostF32(r.rt, host, n)
	if err != nil {
		r.t.Fatal(err)
	}
	return v
}

func TestF32ArgRoundTrip(t *testing.T) {
	for _, f := range []float32{0, 1, -2.5, math.Pi, 1e-20} {
		if ArgF32(F32Arg(f)) != f {
			t.Fatalf("round trip %v", f)
		}
	}
}

func TestFillIotaScaleAxpy(t *testing.T) {
	r := newRig(t)
	const n = 5000
	x := r.devAlloc(4 * n)
	y := r.devAlloc(4 * n)
	r.run("fill", n, y, F32Arg(2), uint64(n))
	r.run("iota", n, x, F32Arg(0.5), uint64(n))
	r.run("axpy", n, x, y, F32Arg(3), uint64(n)) // y = 2 + 3*(0.5*i)
	r.run("scale", n, y, F32Arg(2), uint64(n))   // y = 4 + 3*i
	got := r.readF32(y, n)
	for i := 0; i < n; i++ {
		want := 4 + 3*float32(i)
		if math.Abs(float64(got[i]-want)) > 1e-3*float64(want+1) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestVecAddMulElem(t *testing.T) {
	r := newRig(t)
	const n = 1000
	a := r.devAlloc(4 * n)
	b := r.devAlloc(4 * n)
	c := r.devAlloc(4 * n)
	r.run("iota", n, a, F32Arg(1), uint64(n))
	r.run("fill", n, b, F32Arg(2), uint64(n))
	r.run("vecAdd", n, a, b, c, uint64(n))
	got := r.readF32(c, n)
	if got[10] != 12 {
		t.Fatalf("vecAdd[10] = %v", got[10])
	}
	r.run("mulElem", n, a, b, c, uint64(n))
	got = r.readF32(c, n)
	if got[10] != 20 {
		t.Fatalf("mulElem[10] = %v", got[10])
	}
}

func TestReduceAndDot(t *testing.T) {
	r := newRig(t)
	const n = 4096
	x := r.devAlloc(4 * n)
	y := r.devAlloc(4 * n)
	out := r.devAlloc(4)
	r.run("fill", n, x, F32Arg(0.5), uint64(n))
	r.run("fill", n, y, F32Arg(4), uint64(n))
	r.run("reduceSum", 1, x, out, uint64(n))
	if got := r.readF32(out, 1)[0]; got != 0.5*n {
		t.Fatalf("reduceSum = %v", got)
	}
	r.run("dotPartial", 1, x, y, out, uint64(n))
	if got := r.readF32(out, 1)[0]; got != 2*n {
		t.Fatalf("dot = %v", got)
	}
}

func TestStencil2DBoundary(t *testing.T) {
	r := newRig(t)
	const w, h = 16, 16
	src := r.devAlloc(4 * w * h)
	dst := r.devAlloc(4 * w * h)
	r.run("fill", w*h, src, F32Arg(10), uint64(w*h))
	r.run("stencil2d", h, src, dst, uint64(w), uint64(h))
	got := r.readF32(dst, w*h)
	// Uniform field stays uniform in the interior.
	if got[5*w+5] != 10 {
		t.Fatalf("interior = %v", got[5*w+5])
	}
	// Boundary copies through.
	if got[0] != 10 || got[w*h-1] != 10 {
		t.Fatalf("boundary = %v %v", got[0], got[w*h-1])
	}
}

func TestStencil3DUniform(t *testing.T) {
	r := newRig(t)
	const w = 8
	src := r.devAlloc(4 * w * w * w)
	dst := r.devAlloc(4 * w * w * w)
	r.run("fill", w*w*w, src, F32Arg(7), uint64(w*w*w))
	r.run("stencil3d", w, src, dst, uint64(w), uint64(w), uint64(w))
	got := r.readF32(dst, w*w*w)
	center := (w/2)*(w*w) + (w/2)*w + w/2
	if math.Abs(float64(got[center]-7)) > 1e-5 {
		t.Fatalf("center = %v", got[center])
	}
}

func TestInitArrayDeterministicValue(t *testing.T) {
	r := newRig(t)
	const n = 2048
	arr := r.devAlloc(4 * n)
	r.run("initArray", n, arr, uint64(n), uint64(42), uint64(50))
	host, _ := r.rt.AppAlloc(4 * n)
	if err := r.rt.Memcpy(host, arr, 4*n, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	iv, err := crt.HostI32(r.rt, host, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range iv {
		if v != 42 {
			t.Fatalf("arr[%d] = %d, want 42", i, v)
		}
	}
}

func TestSpinCollect(t *testing.T) {
	r := newRig(t)
	const n = 512
	x := r.devAlloc(4 * n)
	out := r.devAlloc(4)
	r.run("fill", n, x, F32Arg(2), uint64(n))
	r.run("spinCollect", 1, x, out, uint64(n), 3)
	if got := r.readF32(out, 1)[0]; got != 2*n {
		t.Fatalf("spinCollect = %v", got)
	}
}

func TestTableComplete(t *testing.T) {
	want := []string{"fill", "iota", "vecAdd", "axpy", "scale", "mulElem",
		"reduceSum", "dotPartial", "stencil2d", "stencil3d", "initArray", "spinCollect"}
	tb := Table()
	for _, name := range want {
		if tb[name] == nil {
			t.Fatalf("kernel %q missing from table", name)
		}
	}
	if len(tb) != len(want) {
		t.Fatalf("table has %d kernels, want %d", len(tb), len(want))
	}
}
