// Lazy restart: instead of refilling every active allocation eagerly,
// the plugin binds each allocation's address range to its payload
// bytes inside the image (a fill plan on the dmtcp.LazyRestorer) and
// lets the address-space fault gate materialize allocations on first
// access, with the background prefetcher draining the rest — device
// memory first, managed (UVM) memory last.
//
// The devmem section layouts are deterministic functions of the call
// log (the same walk the emit performs), so for a v1/v2 image — and
// for a v3 base, whose devmem2 entries are all present — every entry's
// payload offset is computed without reading a single payload byte.
// Only a delta's devmem2 must be decoded during planning: its flags
// decide which entries carry payload (those bytes are the dirty set,
// registered as in-memory plans), and entries it skips resolve to the
// nearest ancestor that owns them, terminating at the base's computed
// layout.
//
// Materialization writes through Space.FillCold, never through
// uvm.Manager.Access: restoring a managed allocation's bytes is not an
// application touch, so the pages stay host-resident with untouched
// epochs ("CPU-resident managed pages left cold") and migrate only
// when the restarted application actually reaches them.
package cracplugin

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/dmtcp"
	"repro/internal/replaylog"
)

// allocClassOf maps the active-set group order of the devmem layouts
// to prefetch classes.
var allocClasses = []dmtcp.PrefetchClass{dmtcp.ClassDevice, dmtcp.ClassPinned, dmtcp.ClassManaged}

// LazyRestart implements dmtcp.LazyRestartPlugin: restore the root
// blob eagerly (it is tiny) and register fill plans for every active
// allocation instead of refilling them.
func (p *Plugin) LazyRestart(ctx context.Context, r *dmtcp.LazyRestorer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tip := r.Tip()
	if tip.HasSection(SectionRoot) {
		root, err := r.SectionBytes(SectionRoot)
		if err != nil {
			return fmt.Errorf("cracplugin: %w", err)
		}
		p.mu.Lock()
		p.root = root
		p.mu.Unlock()
	}
	// The session rebinds the runtime before the restart hooks run, so
	// the runtime's log is the image's log and its active set is
	// exactly the entry list the checkpoint-side emit walked.
	active := p.rt.Log().Active()
	switch {
	case tip.HasSection(SectionDevMem2):
		return p.planDevMem2(r, active)
	case tip.HasSection(SectionDevMem):
		return p.planDevMem(r, active)
	default:
		return fmt.Errorf("cracplugin: image has no %s or %s section", SectionDevMem, SectionDevMem2)
	}
}

// planDevMem registers lazy plans over the legacy (v1/v2) devmem
// section, whose layout is recomputed from the active set.
func (p *Plugin) planDevMem(r *dmtcp.LazyRestorer, active replaylog.ActiveSet) error {
	secSize, ok := sectionSize(r.Tip().Secs, SectionDevMem)
	if !ok {
		return fmt.Errorf("cracplugin: %s vanished from section table", SectionDevMem)
	}
	off := uint64(4)
	for gi, g := range [][]replaylog.Allocation{active.Device, active.Pinned, active.Managed} {
		for _, a := range g {
			off += devMemEntryHdr
			if err := r.PlanSection(a.Addr, a.Size, 0, SectionDevMem, off, allocClasses[gi]); err != nil {
				return fmt.Errorf("cracplugin: planning %#x+%d: %w", a.Addr, a.Size, err)
			}
			off += a.Size
		}
	}
	if off != secSize {
		return fmt.Errorf("%w: devmem layout %d bytes, section holds %d", dmtcp.ErrBadImage, off, secSize)
	}
	return nil
}

// planDevMem2 registers lazy plans over a v3 devmem2 chain. The tip's
// active set names every allocation to restore; each resolves to the
// nearest chain image whose devmem2 entry carries its payload.
func (p *Plugin) planDevMem2(r *dmtcp.LazyRestorer, active replaylog.ActiveSet) error {
	type target struct {
		size  uint64
		class dmtcp.PrefetchClass
	}
	pending := make(map[uint64]target)
	for gi, g := range [][]replaylog.Allocation{active.Device, active.Pinned, active.Managed} {
		for _, a := range g {
			pending[a.Addr] = target{size: a.Size, class: allocClasses[gi]}
		}
	}
	for img, ix := range r.Chain() {
		if len(pending) == 0 {
			break
		}
		if !ix.HasSection(SectionDevMem2) {
			return fmt.Errorf("%w: chain image %d has no %s section", dmtcp.ErrDeltaChain, img, SectionDevMem2)
		}
		if !ix.Delta {
			// A base's entries are all present, so the layout is a pure
			// function of its own call log: compute every payload offset
			// without touching the payload shards.
			logBytes, err := r.ImageSectionBytes(img, SectionLog)
			if err != nil {
				return fmt.Errorf("cracplugin: base log: %w", err)
			}
			baseLog, err := replaylog.Decode(bytes.NewReader(logBytes))
			if err != nil {
				return fmt.Errorf("%w: base log: %v", dmtcp.ErrBadImage, err)
			}
			baseActive := baseLog.Active()
			secSize, ok := sectionSize(ix.Secs, SectionDevMem2)
			if !ok {
				return fmt.Errorf("cracplugin: %s vanished from section table", SectionDevMem2)
			}
			off := uint64(4)
			for _, g := range [][]replaylog.Allocation{baseActive.Device, baseActive.Pinned, baseActive.Managed} {
				for _, a := range g {
					off += devMem2EntryHdr
					if tgt, ok := pending[a.Addr]; ok && tgt.size == a.Size {
						if err := r.PlanSection(a.Addr, a.Size, img, SectionDevMem2, off, tgt.class); err != nil {
							return fmt.Errorf("cracplugin: planning %#x+%d: %w", a.Addr, a.Size, err)
						}
						delete(pending, a.Addr)
					}
					off += a.Size
				}
			}
			if off != secSize {
				return fmt.Errorf("%w: base devmem2 layout %d bytes, section holds %d", dmtcp.ErrBadImage, off, secSize)
			}
			break // the base ends every lineage
		}
		// A delta's devmem2 is opaque — emitted in full — so the flags
		// (which entries carry payload) are local to this image. The
		// decoded dirty payloads become in-memory plans; skipped entries
		// stay pending for an older image.
		secBytes, err := r.ImageSectionBytes(img, SectionDevMem2)
		if err != nil {
			return fmt.Errorf("cracplugin: delta devmem2: %w", err)
		}
		entries, err := parseDevMem2(secBytes)
		if err != nil {
			return fmt.Errorf("cracplugin: delta devmem2: %w", err)
		}
		for _, e := range entries {
			if e.payload == nil {
				continue
			}
			if tgt, ok := pending[e.addr]; ok && tgt.size == e.size {
				r.PlanMem(e.addr, e.payload, tgt.class)
				delete(pending, e.addr)
			}
		}
	}
	for addr, tgt := range pending {
		return fmt.Errorf("%w: allocation %#x+%d has no payload in the chain", dmtcp.ErrDeltaChain, addr, tgt.size)
	}
	return nil
}

func sectionSize(secs []dmtcp.SectionHdr, name string) (uint64, bool) {
	for _, s := range secs {
		if s.Name == name {
			return s.Size, true
		}
	}
	return 0, false
}

var _ dmtcp.LazyRestartPlugin = (*Plugin)(nil)
