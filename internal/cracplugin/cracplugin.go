// Package cracplugin is the CRAC DMTCP plugin: the glue between the
// checkpoint engine and the CUDA state managed by the cracrt runtime.
//
// At checkpoint time it implements the paper's sequence (Sections 2.2 and
// 3.2.3): drain the device queues, then copy the memory of *active*
// mallocs — and only active mallocs, not whole arenas — into image
// sections alongside the serialized call log. At restart time (after the
// session has replayed the log into the fresh lower half, recreating
// every allocation at its original address) it refills those allocations
// with the saved bytes.
//
// The drain and the refill both fan out across CPUs: every allocation's
// offset inside the devmem section is known up front, so workers copy
// disjoint ranges with no intermediate buffers (see the addrspace
// concurrency contract).
package cracplugin

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/cracrt"
	"repro/internal/dmtcp"
	"repro/internal/par"
	"repro/internal/replaylog"
)

// Section names inside the checkpoint image.
const (
	SectionLog    = "crac.log"    // serialized replay log
	SectionDevMem = "crac.devmem" // active-malloc memory payload
	SectionRoot   = "crac.root"   // application root blob (pointer table)
)

// devMemEntryHdr is the per-allocation header inside the devmem section:
// u64 addr, u64 size, then size payload bytes.
const devMemEntryHdr = 16

// Plugin implements dmtcp.Plugin for CUDA state.
type Plugin struct {
	rt *cracrt.Runtime

	// Workers bounds the drain/refill fan-out: <=0 uses all CPUs, 1 is
	// the serial reference path.
	Workers int

	mu   sync.Mutex
	root []byte
}

// New creates the plugin over the CRAC runtime.
func New(rt *cracrt.Runtime) *Plugin { return &Plugin{rt: rt} }

// Name implements dmtcp.Plugin.
func (p *Plugin) Name() string { return "crac" }

// SetRootBlob stores an application-provided blob (typically a pointer
// table) that travels in the image, letting a restarted process find its
// data structures.
func (p *Plugin) SetRootBlob(b []byte) {
	p.mu.Lock()
	p.root = append([]byte(nil), b...)
	p.mu.Unlock()
}

// RootBlob returns the stored blob.
func (p *Plugin) RootBlob() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.root...)
}

// PreCheckpoint implements dmtcp.Plugin: drain the queue of pending CUDA
// kernels, then save the log and the memory of active mallocs. The
// allocation drain honors ctx: a cancelled checkpoint stops copying
// device memory at the next allocation boundary.
func (p *Plugin) PreCheckpoint(ctx context.Context, sections *dmtcp.SectionMap) error {
	lib := p.rt.Library()

	// Step (a) of the classic sequence: drain the queue
	// (cudaDeviceSynchronize) so no kernel is in flight.
	if err := lib.DeviceSynchronize(); err != nil {
		return fmt.Errorf("cracplugin: drain: %w", err)
	}

	// Serialize the call log straight into its section.
	logw := sections.Writer(SectionLog, 64+25*p.rt.Log().Len())
	if err := p.rt.Log().Encode(logw); err != nil {
		return fmt.Errorf("cracplugin: encoding log: %w", err)
	}
	logw.Close()

	// Save the memory of active mallocs in the lower-half arenas
	// (device, pinned, managed). cudaHostAlloc buffers are upper-half
	// regions and travel with the DMTCP image itself.
	//
	// The section layout is computed first, so the payload lands in the
	// section buffer exactly once: headers serially (they're tiny),
	// allocation bytes in parallel at precomputed offsets.
	active := p.rt.Log().Active()
	groups := [][]replaylog.Allocation{active.Device, active.Pinned, active.Managed}
	var count uint32
	total := 4 // leading u32 count
	for _, g := range groups {
		count += uint32(len(g))
		for _, a := range g {
			total += devMemEntryHdr + int(a.Size)
		}
	}
	mem := sections.AddZero(SectionDevMem, total)
	binary.LittleEndian.PutUint32(mem[0:], count)
	type job struct {
		alloc replaylog.Allocation
		off   int // payload offset inside mem
	}
	jobs := make([]job, 0, count)
	off := 4
	for _, g := range groups {
		for _, a := range g {
			binary.LittleEndian.PutUint64(mem[off:], a.Addr)
			binary.LittleEndian.PutUint64(mem[off+8:], a.Size)
			off += devMemEntryHdr
			jobs = append(jobs, job{alloc: a, off: off})
			off += int(a.Size)
		}
	}
	space := lib.Space()
	if err := par.ForErrCtx(ctx, p.Workers, len(jobs), func(i int) error {
		j := jobs[i]
		if err := space.ReadAt(j.alloc.Addr, mem[j.off:j.off+int(j.alloc.Size)]); err != nil {
			return fmt.Errorf("cracplugin: draining allocation %#x+%d: %w", j.alloc.Addr, j.alloc.Size, err)
		}
		return nil
	}); err != nil {
		return err
	}

	p.mu.Lock()
	root := append([]byte(nil), p.root...)
	p.mu.Unlock()
	sections.Add(SectionRoot, root)
	return nil
}

// Resume implements dmtcp.Plugin: nothing to undo — the device was only
// drained, not torn down, so execution simply continues.
func (p *Plugin) Resume() error { return nil }

// Restart implements dmtcp.Plugin: refill the replayed allocations with
// the saved bytes. The session must have rebound the runtime to the fresh
// lower half (replaying the log) before the restart hooks run, so every
// address written here is live again at its original value.
//
// The entry headers are walked serially; the refill writes fan out, one
// WriteAt per allocation over disjoint target ranges, stopping early if
// ctx is cancelled.
func (p *Plugin) Restart(ctx context.Context, sections *dmtcp.SectionMap) error {
	memBytes, ok := sections.Get(SectionDevMem)
	if !ok {
		return fmt.Errorf("cracplugin: image has no %s section", SectionDevMem)
	}
	space := p.rt.Library().Space()
	r := bytes.NewReader(memBytes)
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("cracplugin: devmem count: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	type job struct {
		addr uint64
		data []byte
	}
	jobs := make([]job, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+devMemEntryHdr > len(memBytes) {
			return fmt.Errorf("cracplugin: devmem entry %d: %w", i, io.ErrUnexpectedEOF)
		}
		addr := binary.LittleEndian.Uint64(memBytes[off:])
		size := binary.LittleEndian.Uint64(memBytes[off+8:])
		off += devMemEntryHdr
		if uint64(len(memBytes)-off) < size {
			return fmt.Errorf("cracplugin: devmem entry %d data: %w", i, io.ErrUnexpectedEOF)
		}
		jobs = append(jobs, job{addr: addr, data: memBytes[off : off+int(size)]})
		off += int(size)
	}
	if err := par.ForErrCtx(ctx, p.Workers, len(jobs), func(i int) error {
		if err := space.WriteAt(jobs[i].addr, jobs[i].data); err != nil {
			return fmt.Errorf("cracplugin: refilling %#x+%d: %w", jobs[i].addr, len(jobs[i].data), err)
		}
		return nil
	}); err != nil {
		return err
	}
	if root, ok := sections.Get(SectionRoot); ok {
		p.mu.Lock()
		p.root = append([]byte(nil), root...)
		p.mu.Unlock()
	}
	return nil
}

var _ dmtcp.Plugin = (*Plugin)(nil)
