// Package cracplugin is the CRAC DMTCP plugin: the glue between the
// checkpoint engine and the CUDA state managed by the cracrt runtime.
//
// At checkpoint time it implements the paper's sequence (Sections 2.2 and
// 3.2.3): drain the device queues, then copy the memory of *active*
// mallocs — and only active mallocs, not whole arenas — into image
// sections alongside the serialized call log. At restart time (after the
// session has replayed the log into the fresh lower half, recreating
// every allocation at its original address) it refills those allocations
// with the saved bytes.
//
// The drain and the refill both fan out across CPUs: every allocation's
// offset inside the devmem section is known up front, so workers copy
// disjoint ranges with no intermediate buffers (see the addrspace
// concurrency contract).
package cracplugin

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/addrspace"
	"repro/internal/cracrt"
	"repro/internal/dmtcp"
	"repro/internal/par"
	"repro/internal/replaylog"
)

// Section names inside the checkpoint image.
const (
	SectionLog    = "crac.log"    // serialized replay log
	SectionDevMem = "crac.devmem" // active-malloc memory payload (legacy v1/v2 images)
	SectionRoot   = "crac.root"   // application root blob (pointer table)

	// SectionDevMem2 is the incremental-capable active-malloc payload of
	// v3 images: each entry carries a presence flag, so a delta image
	// lists every active allocation but bodies only the dirty ones. The
	// section is opaque to the engine's generic shard delta; MergeDevMem
	// materializes it across a chain.
	SectionDevMem2 = "crac.devmem2"
)

// devMemEntryHdr is the per-allocation header inside the legacy devmem
// section: u64 addr, u64 size, then size payload bytes.
const devMemEntryHdr = 16

// devMem2EntryHdr is the devmem2 per-allocation header: u64 addr,
// u64 size, u8 flags (bit0: payload follows).
const devMem2EntryHdr = 17

// Plugin implements dmtcp.Plugin (and dmtcp.DeltaPlugin) for CUDA state.
type Plugin struct {
	rt *cracrt.Runtime

	// Workers bounds the drain/refill fan-out: <=0 uses all CPUs, 1 is
	// the serial reference path.
	Workers int

	mu   sync.Mutex
	root []byte

	// Incremental drain state. prevEntries holds the (addr → size) set
	// of allocations whose payload the committed chain tip can supply;
	// prevUVMCut is the UVM touch cut taken at that checkpoint. The
	// staged pair is written by PreCheckpointDelta and promoted by
	// CommitIncremental only once the image durably landed — a failed
	// or abandoned checkpoint must not advance the skip baseline, or
	// the next delta would skip allocations whose payload no chain
	// image carries.
	prevEntries   map[uint64]uint64
	prevUVMCut    uint64
	stagedEntries map[uint64]uint64
	stagedUVMCut  uint64
}

// New creates the plugin over the CRAC runtime.
func New(rt *cracrt.Runtime) *Plugin { return &Plugin{rt: rt} }

// Name implements dmtcp.Plugin.
func (p *Plugin) Name() string { return "crac" }

// SetRootBlob stores an application-provided blob (typically a pointer
// table) that travels in the image, letting a restarted process find its
// data structures.
func (p *Plugin) SetRootBlob(b []byte) {
	p.mu.Lock()
	p.root = append([]byte(nil), b...)
	p.mu.Unlock()
}

// RootBlob returns the stored blob.
func (p *Plugin) RootBlob() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.root...)
}

// uvmCleanChecker answers the managed-allocation skip question. The
// live *uvm.Manager serves the blocking path (the emit runs inside the
// pause, and a page's dirtiness is monotone past a cut, so live answers
// are never less conservative); the frozen *uvm.Snapshot serves the
// concurrent path, where overlapped faulting must not change what this
// image skips.
type uvmCleanChecker interface {
	CleanSince(addr, length, cut uint64) bool
}

// freezeCap is the non-memory state FreezeCheckpoint captures inside
// the stop-the-world window: everything the later emit needs except the
// payload bytes themselves, which it reads through the snapshot view.
type freezeCap struct {
	entries     []replaylog.Entry // immutable call-log prefix at the cut
	root        []byte
	incremental bool
	since       uint64
	prevEntries map[uint64]uint64
	prevUVMCut  uint64
	uvmCut      uint64
	uvm         uvmCleanChecker
}

// FreezeCheckpoint implements dmtcp.SnapshotPlugin: drain the queue of
// pending CUDA kernels, then capture the call-log prefix, the UVM cut
// and page-state view, and the incremental skip baseline — all
// O(metadata). The returned emit runs later (possibly concurrently with
// the application) and builds the sections from the capture, reading
// allocation payloads only through the engine's view.
func (p *Plugin) FreezeCheckpoint(since uint64, incremental bool) (dmtcp.EmitFunc, error) {
	return p.freeze(since, incremental, true)
}

// freeze is the shared capture. frozenUVM selects the frozen UVM view
// (needed only when the emit overlaps execution — the blocking hooks
// skip the page-table copy).
func (p *Plugin) freeze(since uint64, incremental, frozenUVM bool) (dmtcp.EmitFunc, error) {
	lib := p.rt.Library()

	// Step (a) of the classic sequence: drain the queue
	// (cudaDeviceSynchronize) so no kernel is in flight.
	if err := lib.DeviceSynchronize(); err != nil {
		return nil, fmt.Errorf("cracplugin: drain: %w", err)
	}
	fc := &freezeCap{
		entries:     p.rt.Log().View(),
		incremental: incremental,
		since:       since,
	}
	if incremental {
		// The UVM cut is taken after the queue drain: migrations flushed
		// by pending kernels are stamped at or below it and their content
		// is captured by the emit; accesses racing the drain re-emit next
		// time.
		fc.uvmCut = lib.UVM().CutEpoch()
		if frozenUVM {
			fc.uvm = lib.UVM().Snapshot()
		} else {
			fc.uvm = lib.UVM()
		}
	}
	p.mu.Lock()
	fc.prevEntries = p.prevEntries
	fc.prevUVMCut = p.prevUVMCut
	fc.root = append([]byte(nil), p.root...)
	p.mu.Unlock()
	return func(ctx context.Context, view addrspace.View, sections *dmtcp.SectionMap) error {
		return p.emit(ctx, view, sections, fc)
	}, nil
}

// PreCheckpoint implements dmtcp.Plugin: the blocking lifecycle is
// freeze + emit back to back, reading through the live space — the same
// code path as a concurrent checkpoint, hence byte-identical images.
func (p *Plugin) PreCheckpoint(ctx context.Context, sections *dmtcp.SectionMap) error {
	emit, err := p.freeze(0, false, false)
	if err != nil {
		return err
	}
	return emit(ctx, p.rt.Library().Space(), sections)
}

// Resume implements dmtcp.Plugin: nothing to undo — the device was only
// drained, not torn down, so execution simply continues.
func (p *Plugin) Resume() error { return nil }

// PreCheckpointDelta implements dmtcp.DeltaPlugin: freeze + emit with
// the incremental (devmem2) encoding, reading through the live space.
func (p *Plugin) PreCheckpointDelta(ctx context.Context, sections *dmtcp.SectionMap, since uint64) error {
	emit, err := p.freeze(since, true, false)
	if err != nil {
		return err
	}
	return emit(ctx, p.rt.Library().Space(), sections)
}

// emit builds the log, devmem, and root sections from a freeze capture.
// The allocation drain honors ctx: a cancelled checkpoint stops copying
// device memory at the next allocation boundary.
//
// In incremental mode the payload goes into the devmem2 section, which
// lists every active allocation and bodies only the dirty ones. An
// allocation may be skipped only when all of the following hold — each
// guard alone is insufficient:
//
//   - since > 0: this is a delta (a base carries everything);
//   - the committed chain tip has its payload at the same (addr, size)
//     (prevEntries): an allocation freed and re-issued at the same spot
//     keeps its bytes in the simulated arenas, so the address-space
//     dirty check below remains the content authority;
//   - no page of it was written since the parent's epoch cut (the
//     view's write-generation tracking — frozen stamps for a snapshot);
//   - for managed (UVM) allocations, every page is additionally
//     CPU-resident and untouched since the parent's UVM cut at freeze
//     time: a device-resident page belongs to the device and must be
//     drained, exactly as real CRAC cannot trust the host copy of a
//     page the GPU holds (paper Section 2.3).
func (p *Plugin) emit(ctx context.Context, view addrspace.View, sections *dmtcp.SectionMap, fc *freezeCap) error {
	// Serialize the frozen call-log prefix straight into its section.
	logw := sections.Writer(SectionLog, 64+25*len(fc.entries))
	if err := replaylog.EncodeEntries(logw, fc.entries); err != nil {
		return fmt.Errorf("cracplugin: encoding log: %w", err)
	}
	logw.Close()

	// Save the memory of active mallocs in the lower-half arenas
	// (device, pinned, managed) as of the capture. cudaHostAlloc buffers
	// are upper-half regions and travel with the DMTCP image itself.
	//
	// The section layout is computed first, so the payload lands in the
	// section buffer exactly once: headers serially (they're tiny),
	// allocation bytes in parallel at precomputed offsets. Reading
	// through a CoW snapshot, each drained range's retained pages are
	// released as soon as its copy lands in the section buffer.
	active := replaylog.ActiveOf(fc.entries)
	groups := [][]replaylog.Allocation{active.Device, active.Pinned, active.Managed}
	releaser, _ := view.(addrspace.RangeReleaser)

	if !fc.incremental {
		var count uint32
		total := 4 // leading u32 count
		for _, g := range groups {
			count += uint32(len(g))
			for _, a := range g {
				total += devMemEntryHdr + int(a.Size)
			}
		}
		mem := sections.AddZero(SectionDevMem, total)
		binary.LittleEndian.PutUint32(mem[0:], count)
		type job struct {
			alloc replaylog.Allocation
			off   int // payload offset inside mem
		}
		jobs := make([]job, 0, count)
		off := 4
		for _, g := range groups {
			for _, a := range g {
				binary.LittleEndian.PutUint64(mem[off:], a.Addr)
				binary.LittleEndian.PutUint64(mem[off+8:], a.Size)
				off += devMemEntryHdr
				jobs = append(jobs, job{alloc: a, off: off})
				off += int(a.Size)
			}
		}
		if err := par.ForErrCtx(ctx, p.Workers, len(jobs), func(i int) error {
			j := jobs[i]
			if err := view.ReadAt(j.alloc.Addr, mem[j.off:j.off+int(j.alloc.Size)]); err != nil {
				return fmt.Errorf("cracplugin: draining allocation %#x+%d: %w", j.alloc.Addr, j.alloc.Size, err)
			}
			if releaser != nil {
				releaser.ReleaseRange(j.alloc.Addr, j.alloc.Size)
			}
			return nil
		}); err != nil {
			return err
		}
		sections.Add(SectionRoot, fc.root)
		return nil
	}

	type entry struct {
		alloc replaylog.Allocation
		skip  bool
		off   int // payload offset inside mem (emitted entries only)
	}
	var entries []entry
	var count uint32
	total := 4 // leading u32 count
	for gi, g := range groups {
		managed := gi == 2
		for _, a := range g {
			skip := fc.since > 0 &&
				fc.prevEntries[a.Addr] == a.Size &&
				!view.RangeDirtySince(a.Addr, a.Size, fc.since) &&
				(!managed || fc.uvm.CleanSince(a.Addr, a.Size, fc.prevUVMCut))
			count++
			total += devMem2EntryHdr
			if !skip {
				total += int(a.Size)
			}
			entries = append(entries, entry{alloc: a, skip: skip})
		}
	}
	mem := sections.AddZero(SectionDevMem2, total)
	binary.LittleEndian.PutUint32(mem[0:], count)
	staged := make(map[uint64]uint64, count)
	var jobs []int
	off := 4
	for i := range entries {
		e := &entries[i]
		binary.LittleEndian.PutUint64(mem[off:], e.alloc.Addr)
		binary.LittleEndian.PutUint64(mem[off+8:], e.alloc.Size)
		if !e.skip {
			mem[off+16] = 1
		}
		off += devMem2EntryHdr
		if !e.skip {
			e.off = off
			off += int(e.alloc.Size)
			jobs = append(jobs, i)
		}
		staged[e.alloc.Addr] = e.alloc.Size
	}
	if err := par.ForErrCtx(ctx, p.Workers, len(jobs), func(i int) error {
		e := entries[jobs[i]]
		if err := view.ReadAt(e.alloc.Addr, mem[e.off:e.off+int(e.alloc.Size)]); err != nil {
			return fmt.Errorf("cracplugin: draining allocation %#x+%d: %w", e.alloc.Addr, e.alloc.Size, err)
		}
		if releaser != nil {
			releaser.ReleaseRange(e.alloc.Addr, e.alloc.Size)
		}
		return nil
	}); err != nil {
		return err
	}
	sections.MarkOpaque(SectionDevMem2)
	sections.Add(SectionRoot, fc.root)

	p.mu.Lock()
	p.stagedEntries = staged
	p.stagedUVMCut = fc.uvmCut
	p.mu.Unlock()
	return nil
}

// CommitIncremental promotes the drain state staged by the last
// PreCheckpointDelta to the skip baseline. The caller invokes it once
// the image has durably landed (e.g. the Store.Put committed); without
// the call the baseline stays at the previous successful checkpoint.
func (p *Plugin) CommitIncremental() {
	p.mu.Lock()
	if p.stagedEntries != nil {
		p.prevEntries = p.stagedEntries
		p.prevUVMCut = p.stagedUVMCut
		p.stagedEntries = nil
	}
	p.mu.Unlock()
}

// ResetIncremental drops the skip baseline: the next delta drain emits
// every allocation. Sessions call it when the chain breaks (restart).
func (p *Plugin) ResetIncremental() {
	p.mu.Lock()
	p.prevEntries = nil
	p.stagedEntries = nil
	p.prevUVMCut = 0
	p.stagedUVMCut = 0
	p.mu.Unlock()
}

// dm2Entry is one parsed devmem2 entry.
type dm2Entry struct {
	addr    uint64
	size    uint64
	payload []byte // nil when the entry was skipped
}

// maxDevMemEntryBytes caps a single allocation's claimed size and
// maxDevMemTotalBytes the merged section, so a corrupt or hostile
// image fails with an error instead of demanding an absurd allocation
// (mirroring the dmtcp decoder's sanity caps).
const (
	maxDevMemEntryBytes = 1 << 31
	maxDevMemTotalBytes = 1 << 33
)

func parseDevMem2(b []byte) ([]dm2Entry, error) {
	r := bytes.NewReader(b)
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("devmem2 count: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	// The count is unverified input: cap the pre-allocation at what the
	// section could physically hold.
	capHint := uint64(n)
	if maxEntries := uint64(len(b)) / devMem2EntryHdr; capHint > maxEntries {
		capHint = maxEntries
	}
	entries := make([]dm2Entry, 0, capHint)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+devMem2EntryHdr > len(b) {
			return nil, fmt.Errorf("devmem2 entry %d: %w", i, io.ErrUnexpectedEOF)
		}
		e := dm2Entry{
			addr: binary.LittleEndian.Uint64(b[off:]),
			size: binary.LittleEndian.Uint64(b[off+8:]),
		}
		if e.size > maxDevMemEntryBytes {
			return nil, fmt.Errorf("devmem2 entry %d: oversized allocation (%d bytes)", i, e.size)
		}
		present := b[off+16]&1 != 0
		off += devMem2EntryHdr
		if present {
			if uint64(len(b)-off) < e.size {
				return nil, fmt.Errorf("devmem2 entry %d data: %w", i, io.ErrUnexpectedEOF)
			}
			e.payload = b[off : off+int(e.size)]
			off += int(e.size)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// MergeDevMem is the dmtcp.SectionMerger for SectionDevMem2: it
// materializes a delta's devmem2 against the parent chain's, producing
// the full section a single non-incremental drain would have written —
// the delta's entry order and layout with every payload present.
func MergeDevMem(parent, delta []byte) ([]byte, error) {
	de, err := parseDevMem2(delta)
	if err != nil {
		return nil, err
	}
	var parentPayload map[uint64][]byte
	if parent != nil {
		pe, err := parseDevMem2(parent)
		if err != nil {
			return nil, fmt.Errorf("parent: %w", err)
		}
		parentPayload = make(map[uint64][]byte, len(pe))
		for _, e := range pe {
			if e.payload != nil {
				parentPayload[e.addr] = e.payload
			}
		}
	}
	total := uint64(4)
	for _, e := range de {
		total += devMem2EntryHdr + e.size
	}
	if total > maxDevMemTotalBytes {
		return nil, fmt.Errorf("devmem2 section too large (%d bytes)", total)
	}
	out := make([]byte, total)
	binary.LittleEndian.PutUint32(out[0:], uint32(len(de)))
	off := 4
	for _, e := range de {
		payload := e.payload
		if payload == nil {
			pp, ok := parentPayload[e.addr]
			if !ok || uint64(len(pp)) != e.size {
				return nil, fmt.Errorf("allocation %#x+%d has no payload in the parent chain", e.addr, e.size)
			}
			payload = pp
		}
		binary.LittleEndian.PutUint64(out[off:], e.addr)
		binary.LittleEndian.PutUint64(out[off+8:], e.size)
		out[off+16] = 1
		off += devMem2EntryHdr
		copy(out[off:], payload)
		off += int(e.size)
	}
	return out, nil
}

// Restart implements dmtcp.Plugin: refill the replayed allocations with
// the saved bytes. The session must have rebound the runtime to the fresh
// lower half (replaying the log) before the restart hooks run, so every
// address written here is live again at its original value.
//
// The entry headers are walked serially; the refill writes fan out, one
// WriteAt per allocation over disjoint target ranges, stopping early if
// ctx is cancelled.
func (p *Plugin) Restart(ctx context.Context, sections *dmtcp.SectionMap) error {
	var jobs []refillJob
	space := p.rt.Library().Space()
	if memBytes, ok := sections.Get(SectionDevMem2); ok {
		// v3 images: the incremental-capable layout. Every payload must
		// be present — a bare delta's section reaches a Restart hook only
		// if the chain was never materialized.
		entries, err := parseDevMem2(memBytes)
		if err != nil {
			return fmt.Errorf("cracplugin: %w", err)
		}
		jobs = make([]refillJob, 0, len(entries))
		for _, e := range entries {
			if e.payload == nil {
				return fmt.Errorf("cracplugin: devmem2 entry %#x+%d has no payload (unmaterialized delta chain)", e.addr, e.size)
			}
			jobs = append(jobs, refillJob{addr: e.addr, data: e.payload})
		}
		return p.refill(ctx, space, jobs, sections)
	}
	memBytes, ok := sections.Get(SectionDevMem)
	if !ok {
		return fmt.Errorf("cracplugin: image has no %s or %s section", SectionDevMem, SectionDevMem2)
	}
	r := bytes.NewReader(memBytes)
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("cracplugin: devmem count: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	jobs = make([]refillJob, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+devMemEntryHdr > len(memBytes) {
			return fmt.Errorf("cracplugin: devmem entry %d: %w", i, io.ErrUnexpectedEOF)
		}
		addr := binary.LittleEndian.Uint64(memBytes[off:])
		size := binary.LittleEndian.Uint64(memBytes[off+8:])
		off += devMemEntryHdr
		if uint64(len(memBytes)-off) < size {
			return fmt.Errorf("cracplugin: devmem entry %d data: %w", i, io.ErrUnexpectedEOF)
		}
		jobs = append(jobs, refillJob{addr: addr, data: memBytes[off : off+int(size)]})
		off += int(size)
	}
	return p.refill(ctx, space, jobs, sections)
}

// refillJob is one saved allocation to write back at restart.
type refillJob struct {
	addr uint64
	data []byte
}

// refill writes the saved allocation bytes back and restores the root
// blob, fanning the writes out over disjoint target ranges.
func (p *Plugin) refill(ctx context.Context, space *addrspace.Space, jobs []refillJob, sections *dmtcp.SectionMap) error {
	if err := par.ForErrCtx(ctx, p.Workers, len(jobs), func(i int) error {
		if err := space.WriteAt(jobs[i].addr, jobs[i].data); err != nil {
			return fmt.Errorf("cracplugin: refilling %#x+%d: %w", jobs[i].addr, len(jobs[i].data), err)
		}
		return nil
	}); err != nil {
		return err
	}
	if root, ok := sections.Get(SectionRoot); ok {
		p.mu.Lock()
		p.root = append([]byte(nil), root...)
		p.mu.Unlock()
	}
	return nil
}

var (
	_ dmtcp.Plugin         = (*Plugin)(nil)
	_ dmtcp.DeltaPlugin    = (*Plugin)(nil)
	_ dmtcp.SnapshotPlugin = (*Plugin)(nil)
)
