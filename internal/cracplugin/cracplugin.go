// Package cracplugin is the CRAC DMTCP plugin: the glue between the
// checkpoint engine and the CUDA state managed by the cracrt runtime.
//
// At checkpoint time it implements the paper's sequence (Sections 2.2 and
// 3.2.3): drain the device queues, then copy the memory of *active*
// mallocs — and only active mallocs, not whole arenas — into image
// sections alongside the serialized call log. At restart time (after the
// session has replayed the log into the fresh lower half, recreating
// every allocation at its original address) it refills those allocations
// with the saved bytes.
package cracplugin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/cracrt"
	"repro/internal/dmtcp"
	"repro/internal/replaylog"
)

// Section names inside the checkpoint image.
const (
	SectionLog    = "crac.log"    // serialized replay log
	SectionDevMem = "crac.devmem" // active-malloc memory payload
	SectionRoot   = "crac.root"   // application root blob (pointer table)
)

// Plugin implements dmtcp.Plugin for CUDA state.
type Plugin struct {
	rt *cracrt.Runtime

	mu   sync.Mutex
	root []byte
}

// New creates the plugin over the CRAC runtime.
func New(rt *cracrt.Runtime) *Plugin { return &Plugin{rt: rt} }

// Name implements dmtcp.Plugin.
func (p *Plugin) Name() string { return "crac" }

// SetRootBlob stores an application-provided blob (typically a pointer
// table) that travels in the image, letting a restarted process find its
// data structures.
func (p *Plugin) SetRootBlob(b []byte) {
	p.mu.Lock()
	p.root = append([]byte(nil), b...)
	p.mu.Unlock()
}

// RootBlob returns the stored blob.
func (p *Plugin) RootBlob() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.root...)
}

// PreCheckpoint implements dmtcp.Plugin: drain the queue of pending CUDA
// kernels, then save the log and the memory of active mallocs.
func (p *Plugin) PreCheckpoint(sections *dmtcp.SectionMap) error {
	lib := p.rt.Library()

	// Step (a) of the classic sequence: drain the queue
	// (cudaDeviceSynchronize) so no kernel is in flight.
	if err := lib.DeviceSynchronize(); err != nil {
		return fmt.Errorf("cracplugin: drain: %w", err)
	}

	// Serialize the call log.
	var logBuf bytes.Buffer
	if err := p.rt.Log().Encode(&logBuf); err != nil {
		return fmt.Errorf("cracplugin: encoding log: %w", err)
	}
	sections.Add(SectionLog, logBuf.Bytes())

	// Save the memory of active mallocs in the lower-half arenas
	// (device, pinned, managed). cudaHostAlloc buffers are upper-half
	// regions and travel with the DMTCP image itself.
	active := p.rt.Log().Active()
	var mem bytes.Buffer
	var groups = [][]replaylog.Allocation{active.Device, active.Pinned, active.Managed}
	var count uint32
	for _, g := range groups {
		count += uint32(len(g))
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], count)
	mem.Write(u32[:])
	space := lib.Space()
	var u64 [8]byte
	for _, g := range groups {
		for _, a := range g {
			binary.LittleEndian.PutUint64(u64[:], a.Addr)
			mem.Write(u64[:])
			binary.LittleEndian.PutUint64(u64[:], a.Size)
			mem.Write(u64[:])
			buf := make([]byte, a.Size)
			if err := space.ReadAt(a.Addr, buf); err != nil {
				return fmt.Errorf("cracplugin: draining allocation %#x+%d: %w", a.Addr, a.Size, err)
			}
			mem.Write(buf)
		}
	}
	sections.Add(SectionDevMem, mem.Bytes())

	p.mu.Lock()
	root := append([]byte(nil), p.root...)
	p.mu.Unlock()
	sections.Add(SectionRoot, root)
	return nil
}

// Resume implements dmtcp.Plugin: nothing to undo — the device was only
// drained, not torn down, so execution simply continues.
func (p *Plugin) Resume() error { return nil }

// Restart implements dmtcp.Plugin: refill the replayed allocations with
// the saved bytes. The session must have rebound the runtime to the fresh
// lower half (replaying the log) before the restart hooks run, so every
// address written here is live again at its original value.
func (p *Plugin) Restart(sections *dmtcp.SectionMap) error {
	memBytes, ok := sections.Get(SectionDevMem)
	if !ok {
		return fmt.Errorf("cracplugin: image has no %s section", SectionDevMem)
	}
	space := p.rt.Library().Space()
	r := bytes.NewReader(memBytes)
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return fmt.Errorf("cracplugin: devmem count: %w", err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	var u64 [8]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return fmt.Errorf("cracplugin: devmem entry %d: %w", i, err)
		}
		addr := binary.LittleEndian.Uint64(u64[:])
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return fmt.Errorf("cracplugin: devmem entry %d: %w", i, err)
		}
		size := binary.LittleEndian.Uint64(u64[:])
		buf := make([]byte, size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("cracplugin: devmem entry %d data: %w", i, err)
		}
		if err := space.WriteAt(addr, buf); err != nil {
			return fmt.Errorf("cracplugin: refilling %#x+%d: %w", addr, size, err)
		}
	}
	if root, ok := sections.Get(SectionRoot); ok {
		p.mu.Lock()
		p.root = append([]byte(nil), root...)
		p.mu.Unlock()
	}
	return nil
}

var _ dmtcp.Plugin = (*Plugin)(nil)
