package cracplugin

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cracrt"
	"repro/internal/cuda"
	"repro/internal/dmtcp"
	"repro/internal/fsgs"
	"repro/internal/loader"
	"repro/internal/replaylog"
)

func buildRT(t *testing.T) (*cracrt.Runtime, *cuda.Library) {
	t.Helper()
	space := addrspace.New()
	helper, err := loader.NewLower(space).Load(loader.HelperSpec(cracrt.Symbols))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := cuda.NewLibrary(cuda.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Destroy)
	entries := make(cracrt.EntryTable)
	for _, s := range cracrt.Symbols {
		a, _ := helper.Entry(s)
		entries[s] = a
	}
	return cracrt.New(lib, entries, fsgs.None{}), lib
}

func TestPreCheckpointSectionsAndDrain(t *testing.T) {
	rt, lib := buildRT(t)
	d, err := rt.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(d, 0x42, 8192); err != nil {
		t.Fatal(err)
	}
	m, err := rt.MallocManaged(4096)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	p := New(rt)
	p.SetRootBlob([]byte("root!"))

	sections := dmtcp.NewSectionMap()
	if err := p.PreCheckpoint(context.Background(), sections); err != nil {
		t.Fatal(err)
	}
	if !lib.Device().Drained() {
		t.Fatal("device not drained by PreCheckpoint")
	}
	for _, name := range []string{SectionLog, SectionDevMem, SectionRoot} {
		if _, ok := sections.Get(name); !ok {
			t.Fatalf("section %s missing", name)
		}
	}
	logBytes, _ := sections.Get(SectionLog)
	log, err := replaylog.DecodeBytes(logBytes)
	if err != nil {
		t.Fatal(err)
	}
	as := log.Active()
	if len(as.Device) != 1 || len(as.Managed) != 1 {
		t.Fatalf("active from image log = %+v", as)
	}
	if root, _ := sections.Get(SectionRoot); string(root) != "root!" {
		t.Fatalf("root section = %q", root)
	}
	// The devmem payload contains the memset pattern.
	mem, _ := sections.Get(SectionDevMem)
	if !bytes.Contains(mem, bytes.Repeat([]byte{0x42}, 64)) {
		t.Fatal("device payload missing drained bytes")
	}
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRefills(t *testing.T) {
	rt, _ := buildRT(t)
	d, _ := rt.Malloc(4096)
	if err := rt.Memset(d, 0x99, 4096); err != nil {
		t.Fatal(err)
	}
	p := New(rt)
	sections := dmtcp.NewSectionMap()
	if err := p.PreCheckpoint(context.Background(), sections); err != nil {
		t.Fatal(err)
	}

	// Fresh process: new space/library, replay the log, then refill.
	space2 := addrspace.New()
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(cracrt.Symbols))
	lib2, _ := cuda.NewLibrary(cuda.Config{Space: space2})
	t.Cleanup(lib2.Destroy)
	entries2 := make(cracrt.EntryTable)
	for _, s := range cracrt.Symbols {
		a, _ := helper2.Entry(s)
		entries2[s] = a
	}
	logBytes, _ := sections.Get(SectionLog)
	log, _ := replaylog.DecodeBytes(logBytes)
	if err := rt.Rebind(lib2, entries2, log); err != nil {
		t.Fatal(err)
	}
	if err := p.Restart(context.Background(), sections); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := space2.ReadAt(d, buf); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0x99 {
			t.Fatalf("refilled byte = %#x, want 0x99", v)
		}
	}
}

func TestRestartWithoutDevMemSectionFails(t *testing.T) {
	rt, _ := buildRT(t)
	p := New(rt)
	if err := p.Restart(context.Background(), dmtcp.NewSectionMap()); err == nil {
		t.Fatal("restart without devmem section succeeded")
	}
}

func TestRootBlobCopySemantics(t *testing.T) {
	rt, _ := buildRT(t)
	p := New(rt)
	b := []byte{1, 2, 3}
	p.SetRootBlob(b)
	b[0] = 99 // caller mutation must not leak in
	got := p.RootBlob()
	if got[0] != 1 {
		t.Fatal("root blob aliases caller memory")
	}
	got[1] = 99 // returned copy must not leak back
	if p.RootBlob()[1] != 2 {
		t.Fatal("root blob getter aliases internal memory")
	}
}
