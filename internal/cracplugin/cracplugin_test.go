package cracplugin

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cracrt"
	"repro/internal/cuda"
	"repro/internal/dmtcp"
	"repro/internal/fsgs"
	"repro/internal/loader"
	"repro/internal/replaylog"
	"repro/internal/uvm"
)

func buildRT(t *testing.T) (*cracrt.Runtime, *cuda.Library) {
	t.Helper()
	space := addrspace.New()
	helper, err := loader.NewLower(space).Load(loader.HelperSpec(cracrt.Symbols))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := cuda.NewLibrary(cuda.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lib.Destroy)
	entries := make(cracrt.EntryTable)
	for _, s := range cracrt.Symbols {
		a, _ := helper.Entry(s)
		entries[s] = a
	}
	return cracrt.New(lib, entries, fsgs.None{}), lib
}

func TestPreCheckpointSectionsAndDrain(t *testing.T) {
	rt, lib := buildRT(t)
	d, err := rt.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memset(d, 0x42, 8192); err != nil {
		t.Fatal(err)
	}
	m, err := rt.MallocManaged(4096)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	p := New(rt)
	p.SetRootBlob([]byte("root!"))

	sections := dmtcp.NewSectionMap()
	if err := p.PreCheckpoint(context.Background(), sections); err != nil {
		t.Fatal(err)
	}
	if !lib.Device().Drained() {
		t.Fatal("device not drained by PreCheckpoint")
	}
	for _, name := range []string{SectionLog, SectionDevMem, SectionRoot} {
		if _, ok := sections.Get(name); !ok {
			t.Fatalf("section %s missing", name)
		}
	}
	logBytes, _ := sections.Get(SectionLog)
	log, err := replaylog.DecodeBytes(logBytes)
	if err != nil {
		t.Fatal(err)
	}
	as := log.Active()
	if len(as.Device) != 1 || len(as.Managed) != 1 {
		t.Fatalf("active from image log = %+v", as)
	}
	if root, _ := sections.Get(SectionRoot); string(root) != "root!" {
		t.Fatalf("root section = %q", root)
	}
	// The devmem payload contains the memset pattern.
	mem, _ := sections.Get(SectionDevMem)
	if !bytes.Contains(mem, bytes.Repeat([]byte{0x42}, 64)) {
		t.Fatal("device payload missing drained bytes")
	}
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRefills(t *testing.T) {
	rt, _ := buildRT(t)
	d, _ := rt.Malloc(4096)
	if err := rt.Memset(d, 0x99, 4096); err != nil {
		t.Fatal(err)
	}
	p := New(rt)
	sections := dmtcp.NewSectionMap()
	if err := p.PreCheckpoint(context.Background(), sections); err != nil {
		t.Fatal(err)
	}

	// Fresh process: new space/library, replay the log, then refill.
	space2 := addrspace.New()
	helper2, _ := loader.NewLower(space2).Load(loader.HelperSpec(cracrt.Symbols))
	lib2, _ := cuda.NewLibrary(cuda.Config{Space: space2})
	t.Cleanup(lib2.Destroy)
	entries2 := make(cracrt.EntryTable)
	for _, s := range cracrt.Symbols {
		a, _ := helper2.Entry(s)
		entries2[s] = a
	}
	logBytes, _ := sections.Get(SectionLog)
	log, _ := replaylog.DecodeBytes(logBytes)
	if err := rt.Rebind(lib2, entries2, log); err != nil {
		t.Fatal(err)
	}
	if err := p.Restart(context.Background(), sections); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := space2.ReadAt(d, buf); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0x99 {
			t.Fatalf("refilled byte = %#x, want 0x99", v)
		}
	}
}

func TestRestartWithoutDevMemSectionFails(t *testing.T) {
	rt, _ := buildRT(t)
	p := New(rt)
	if err := p.Restart(context.Background(), dmtcp.NewSectionMap()); err == nil {
		t.Fatal("restart without devmem section succeeded")
	}
}

func TestRootBlobCopySemantics(t *testing.T) {
	rt, _ := buildRT(t)
	p := New(rt)
	b := []byte{1, 2, 3}
	p.SetRootBlob(b)
	b[0] = 99 // caller mutation must not leak in
	got := p.RootBlob()
	if got[0] != 1 {
		t.Fatal("root blob aliases caller memory")
	}
	got[1] = 99 // returned copy must not leak back
	if p.RootBlob()[1] != 2 {
		t.Fatal("root blob getter aliases internal memory")
	}
}

// drainDelta runs one incremental drain and returns the parsed devmem2
// entries keyed by address (payload nil when skipped).
func drainDelta(t *testing.T, p *Plugin, space *addrspace.Space, since uint64) map[uint64][]byte {
	t.Helper()
	sections := dmtcp.NewSectionMap()
	if err := p.PreCheckpointDelta(context.Background(), sections, since); err != nil {
		t.Fatal(err)
	}
	if !sections.Opaque(SectionDevMem2) {
		t.Fatal("devmem2 must be marked opaque")
	}
	mem, ok := sections.Get(SectionDevMem2)
	if !ok {
		t.Fatal("no devmem2 section")
	}
	entries, err := parseDevMem2(mem)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte, len(entries))
	for _, e := range entries {
		out[e.addr] = e.payload
	}
	return out
}

// TestIncrementalDrainSkipsCleanAllocations pins the skip rules: clean
// committed allocations are listed without payload; dirty, uncommitted,
// or device-touched managed allocations are drained.
func TestIncrementalDrainSkipsCleanAllocations(t *testing.T) {
	rt, lib := buildRT(t)
	space := lib.Space()
	d1, err := rt.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := rt.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.MallocManaged(8192)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []uint64{d1, d2, m} {
		if err := rt.Memset(a, 0x11, 8192); err != nil {
			t.Fatal(err)
		}
	}
	p := New(rt)

	// Base drain (since 0): everything carries payload.
	base := drainDelta(t, p, space, 0)
	for addr, payload := range base {
		if payload == nil {
			t.Fatalf("base drain skipped %#x", addr)
		}
	}
	p.CommitIncremental()
	cut := space.CutEpoch()

	// Dirty d2 only.
	if err := rt.Memset(d2, 0x22, 100); err != nil {
		t.Fatal(err)
	}
	delta := drainDelta(t, p, space, cut)
	if delta[d1] != nil {
		t.Fatalf("clean allocation %#x re-drained", d1)
	}
	if delta[d2] == nil {
		t.Fatalf("dirty allocation %#x skipped", d2)
	}
	if delta[m] != nil {
		t.Fatalf("clean host-resident managed allocation %#x re-drained", m)
	}

	// A device touch of the managed buffer (no byte change visible to
	// the space epoch? prefetch migrates residency) forces a drain.
	p.CommitIncremental()
	cut = space.CutEpoch()
	if err := lib.MemPrefetch(m, 8192, uvm.Device); err != nil {
		t.Fatal(err)
	}
	delta = drainDelta(t, p, space, cut)
	if delta[m] == nil {
		t.Fatalf("device-resident managed allocation %#x must be drained", m)
	}

	// An uncommitted drain must not advance the baseline: repeat the
	// drain WITHOUT CommitIncremental after allocating a fresh buffer in
	// the pre-written arena; the new allocation is not in the committed
	// entry set, so it must carry payload even if its pages are stale.
	d3, err := rt.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	delta = drainDelta(t, p, space, cut)
	if delta[d3] == nil {
		t.Fatalf("never-committed allocation %#x skipped", d3)
	}
}

// TestMergeDevMem pins chain materialization of the devmem2 section.
func TestMergeDevMem(t *testing.T) {
	mk := func(entries ...dm2Entry) []byte {
		total := 4
		for _, e := range entries {
			total += devMem2EntryHdr + len(e.payload)
		}
		b := make([]byte, total)
		binary.LittleEndian.PutUint32(b, uint32(len(entries)))
		off := 4
		for _, e := range entries {
			binary.LittleEndian.PutUint64(b[off:], e.addr)
			binary.LittleEndian.PutUint64(b[off+8:], e.size)
			if e.payload != nil {
				b[off+16] = 1
			}
			off += devMem2EntryHdr
			copy(b[off:], e.payload)
			off += len(e.payload)
		}
		return b
	}
	parent := mk(
		dm2Entry{addr: 0x1000, size: 4, payload: []byte("aaaa")},
		dm2Entry{addr: 0x2000, size: 4, payload: []byte("bbbb")},
	)
	// Delta: 0x1000 skipped (inherit), 0x2000 freed, 0x3000 new.
	delta := mk(
		dm2Entry{addr: 0x1000, size: 4},
		dm2Entry{addr: 0x3000, size: 4, payload: []byte("cccc")},
	)
	merged, err := MergeDevMem(parent, delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseDevMem2(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0].payload, []byte("aaaa")) || !bytes.Equal(got[1].payload, []byte("cccc")) {
		t.Fatalf("merge result wrong: %+v", got)
	}
	// A skipped entry with no parent payload is a broken chain.
	bad := mk(dm2Entry{addr: 0x9000, size: 4})
	if _, err := MergeDevMem(parent, bad); err == nil {
		t.Fatal("missing parent payload must fail the merge")
	}
	// Size mismatch against the parent payload also fails.
	badSize := mk(dm2Entry{addr: 0x1000, size: 8})
	if _, err := MergeDevMem(parent, badSize); err == nil {
		t.Fatal("size mismatch must fail the merge")
	}
}

// TestParseDevMem2HostileInput pins that corrupt devmem2 sections fail
// with errors instead of panicking or over-allocating: a huge entry
// count, a huge size claim on a skipped entry, and a merge whose total
// exceeds the sanity cap.
func TestParseDevMem2HostileInput(t *testing.T) {
	// Count claims 2^32-1 entries in a 21-byte section.
	hugeCount := make([]byte, 4+devMem2EntryHdr)
	binary.LittleEndian.PutUint32(hugeCount, 0xFFFF_FFFF)
	if _, err := parseDevMem2(hugeCount); err == nil {
		t.Fatal("hostile count must fail")
	}
	// A skipped entry claiming a 2^63-byte allocation.
	hugeSize := make([]byte, 4+devMem2EntryHdr)
	binary.LittleEndian.PutUint32(hugeSize, 1)
	binary.LittleEndian.PutUint64(hugeSize[4:], 0x1000)
	binary.LittleEndian.PutUint64(hugeSize[12:], 1<<63)
	if _, err := parseDevMem2(hugeSize); err == nil {
		t.Fatal("hostile size must fail")
	}
	if _, err := MergeDevMem(nil, hugeSize); err == nil {
		t.Fatal("merge of hostile size must fail")
	}
	// Many skipped entries whose sizes sum past the section cap.
	const n = 16
	big := make([]byte, 4+n*devMem2EntryHdr)
	binary.LittleEndian.PutUint32(big, n)
	off := 4
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(big[off:], uint64(0x1000*(i+1)))
		binary.LittleEndian.PutUint64(big[off+8:], maxDevMemEntryBytes)
		off += devMem2EntryHdr
	}
	if _, err := MergeDevMem(nil, big); err == nil {
		t.Fatal("merge exceeding the total cap must fail")
	}
}
