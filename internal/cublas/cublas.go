// Package cublas simulates the subset of NVIDIA cuBLAS used by the
// paper's Table 3 comparison: cublasSdot (inner product), cublasSgemv
// (matrix–vector product), and cublasSgemm (matrix–matrix product).
//
// As in CRAC, the cuBLAS library "resides in the lower half and is
// directly called from the upper half": the routines are device kernels
// registered as a fat binary and launched through whatever runtime
// binding is in use. Under the native and CRAC bindings the data buffers
// are passed by pointer; under the proxy binding every buffer crosses the
// IPC boundary, which is exactly the overhead Table 3 measures.
package cublas

import (
	"sync"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
)

// Module is the cuBLAS fat-binary module name.
const Module = "cublas"

// Table returns the cuBLAS kernel table.
func Table() map[string]cuda.Kernel {
	return map[string]cuda.Kernel{
		"sdot":  sdotKernel,
		"sgemv": sgemvKernel,
		"sgemm": sgemmKernel,
	}
}

// sdotKernel computes out[0] = dot(x, y). args: x, y, out, n.
func sdotKernel(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	n := int(args[3])
	x := ctx.Float32s(args[0], n)
	y := ctx.Float32s(args[1], n)
	out := ctx.Float32s(args[2], 1)

	const chunk = 1 << 16
	parts := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for c := range parts {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(x[i]) * float64(y[i])
			}
			parts[c] = s
		}(c, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, p := range parts {
		total += p
	}
	out[0] = float32(total)
}

// sgemvKernel computes y = A·x for row-major A (m×n). args: A, x, y, m, n.
func sgemvKernel(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	m, n := int(args[3]), int(args[4])
	a := ctx.Float32s(args[0], m*n)
	x := ctx.Float32s(args[1], n)
	y := ctx.Float32s(args[2], m)
	par.For(m, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a[i*n : (i+1)*n]
			var s float64
			for j := 0; j < n; j++ {
				s += float64(row[j]) * float64(x[j])
			}
			y[i] = float32(s)
		}
	})
}

// sgemmKernel computes C = A·B for row-major A (m×k) and B (k×n).
// args: A, B, C, m, n, k.
func sgemmKernel(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
	m, n, k := int(args[3]), int(args[4]), int(args[5])
	a := ctx.Float32s(args[0], m*k)
	b := ctx.Float32s(args[1], k*n)
	c := ctx.Float32s(args[2], m*n)
	par.For(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			for l := 0; l < k; l++ {
				ail := a[i*k+l]
				if ail == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j := 0; j < n; j++ {
					ci[j] += ail * bl[j]
				}
			}
		}
	})
}

// Handle is a cuBLAS context bound to one runtime (cublasCreate).
type Handle struct {
	rt  crt.Runtime
	fat crt.FatBinHandle
}

// New registers the cuBLAS fat binary with rt and returns a handle.
func New(rt crt.Runtime) (*Handle, error) {
	fat, err := rt.RegisterFatBinary(Module)
	if err != nil {
		return nil, err
	}
	for name, k := range Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			return nil, err
		}
	}
	return &Handle{rt: rt, fat: fat}, nil
}

// launch1D builds a launch configuration covering n elements.
func launch1D(n int) crt.LaunchConfig {
	blocks := (n + 255) / 256
	if blocks == 0 {
		blocks = 1
	}
	return crt.LaunchConfig{Grid: crt.Dim3{X: blocks}, Block: crt.Dim3{X: 256}}
}

// Sdot launches cublasSdot: result[0] = dot(x[0:n], y[0:n]).
func (h *Handle) Sdot(n int, x, y, result uint64, stream crt.StreamHandle) error {
	return h.rt.LaunchKernel(h.fat, "sdot", launch1D(n), stream, x, y, result, uint64(n))
}

// Sgemv launches cublasSgemv: y = A·x, A row-major m×n.
func (h *Handle) Sgemv(m, n int, a, x, y uint64, stream crt.StreamHandle) error {
	return h.rt.LaunchKernel(h.fat, "sgemv", launch1D(m), stream, a, x, y, uint64(m), uint64(n))
}

// Sgemm launches cublasSgemm: C = A·B, A m×k, B k×n, all row-major.
func (h *Handle) Sgemm(m, n, k int, a, b, c uint64, stream crt.StreamHandle) error {
	return h.rt.LaunchKernel(h.fat, "sgemm", launch1D(m), stream, a, b, c, uint64(m), uint64(n), uint64(k))
}
