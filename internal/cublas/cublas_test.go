package cublas

import (
	"math"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
)

func newRT(t *testing.T) crt.Runtime {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := crt.NewNative(lib)
	t.Cleanup(n.Close)
	return n
}

// devF32 allocates device memory holding the given values.
func devF32(t *testing.T, rt crt.Runtime, vals []float32) uint64 {
	t.Helper()
	host, err := rt.AppAlloc(uint64(4 * len(vals)))
	if err != nil {
		t.Fatal(err)
	}
	hv, err := crt.HostF32(rt, host, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	copy(hv, vals)
	dev, err := rt.Malloc(uint64(4 * len(vals)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(dev, host, uint64(4*len(vals)), crt.MemcpyHostToDevice); err != nil {
		t.Fatal(err)
	}
	return dev
}

// readF32 copies device memory back to host.
func readF32(t *testing.T, rt crt.Runtime, dev uint64, n int) []float32 {
	t.Helper()
	host, err := rt.AppAlloc(uint64(4 * n))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(host, dev, uint64(4*n), crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	hv, err := crt.HostF32(rt, host, n)
	if err != nil {
		t.Fatal(err)
	}
	return hv
}

func TestSdot(t *testing.T) {
	rt := newRT(t)
	h, err := New(rt)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	xs := make([]float32, n)
	ys := make([]float32, n)
	var want float64
	for i := range xs {
		xs[i] = float32(i%7) * 0.25
		ys[i] = float32(i%5) * 0.5
		want += float64(xs[i]) * float64(ys[i])
	}
	x := devF32(t, rt, xs)
	y := devF32(t, rt, ys)
	out, _ := rt.Malloc(4)
	if err := h.Sdot(n, x, y, out, crt.DefaultStream); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	got := float64(readF32(t, rt, out, 1)[0])
	if math.Abs(got-want)/want > 1e-5 {
		t.Fatalf("sdot = %v, want %v", got, want)
	}
}

func TestSgemv(t *testing.T) {
	rt := newRT(t)
	h, _ := New(rt)
	const m, n = 17, 23
	av := make([]float32, m*n)
	xv := make([]float32, n)
	for i := range av {
		av[i] = float32(i % 9)
	}
	for i := range xv {
		xv[i] = float32(i % 4)
	}
	a := devF32(t, rt, av)
	x := devF32(t, rt, xv)
	y, _ := rt.Malloc(4 * m)
	if err := h.Sgemv(m, n, a, x, y, crt.DefaultStream); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	got := readF32(t, rt, y, m)
	for i := 0; i < m; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += float64(av[i*n+j]) * float64(xv[j])
		}
		if math.Abs(float64(got[i])-want) > 1e-3 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestSgemm(t *testing.T) {
	rt := newRT(t)
	h, _ := New(rt)
	const m, n, k = 9, 11, 13
	av := make([]float32, m*k)
	bv := make([]float32, k*n)
	for i := range av {
		av[i] = float32((i % 5)) * 0.5
	}
	for i := range bv {
		bv[i] = float32((i % 3)) * 0.25
	}
	a := devF32(t, rt, av)
	b := devF32(t, rt, bv)
	c, _ := rt.Malloc(4 * m * n)
	if err := h.Sgemm(m, n, k, a, b, c, crt.DefaultStream); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	got := readF32(t, rt, c, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for l := 0; l < k; l++ {
				want += float64(av[i*k+l]) * float64(bv[l*n+j])
			}
			if math.Abs(float64(got[i*n+j])-want) > 1e-3 {
				t.Fatalf("c[%d,%d] = %v, want %v", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestSgemmZeroSkip(t *testing.T) {
	// The zero-row skip in the kernel must not change results.
	rt := newRT(t)
	h, _ := New(rt)
	const m, n, k = 4, 4, 4
	av := make([]float32, m*k) // all zeros
	bv := make([]float32, k*n)
	for i := range bv {
		bv[i] = 1
	}
	a := devF32(t, rt, av)
	b := devF32(t, rt, bv)
	c, _ := rt.Malloc(4 * m * n)
	if err := h.Sgemm(m, n, k, a, b, c, crt.DefaultStream); err != nil {
		t.Fatal(err)
	}
	_ = rt.DeviceSynchronize()
	for i, v := range readF32(t, rt, c, m*n) {
		if v != 0 {
			t.Fatalf("c[%d] = %v, want 0", i, v)
		}
	}
}

func TestLaunchOnStream(t *testing.T) {
	rt := newRT(t)
	h, _ := New(rt)
	s, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	x := devF32(t, rt, []float32{1, 2, 3})
	y := devF32(t, rt, []float32{4, 5, 6})
	out, _ := rt.Malloc(4)
	if err := h.Sdot(3, x, y, out, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if got := readF32(t, rt, out, 1)[0]; got != 32 {
		t.Fatalf("sdot = %v, want 32", got)
	}
}
