// Package faults is a deterministic, seedable fault injector for the
// checkpoint store layer. An Injector decides, per store operation,
// whether (and how) to fail: transient errors, permanent errors, torn
// writes that commit a prefix, silent bit flips, and added latency.
// crac.NewFaultStore interprets the decisions against a real Store;
// the torture tests and the harness "faults" experiment drive both.
//
// Determinism is the point: given the same seed and the same operation
// sequence, an Injector makes the same decisions, so any torture-test
// failure reproduces from the seed echoed by the test.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Op identifies which store operation a decision applies to.
type Op int

const (
	OpPut Op = iota
	OpGet
	OpList
	OpDelete
	OpGetAt
	numOps
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpList:
		return "list"
	case OpDelete:
		return "delete"
	case OpGetAt:
		return "getat"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Kind is one injected failure class.
type Kind int

const (
	// KindNone: the operation proceeds untouched.
	KindNone Kind = iota
	// KindTransient: the operation fails with a retryable error and no
	// effect on the store.
	KindTransient
	// KindPermanent: the operation fails with a non-retryable error and
	// no effect on the store.
	KindPermanent
	// KindTorn: a write commits only a prefix of its bytes, then fails
	// with a transient error — the crash-mid-write a non-atomic store
	// would exhibit. Reads serve only a prefix, then fail.
	KindTorn
	// KindBitFlip: the operation "succeeds" but its bytes are silently
	// corrupted — one flipped bit. Only integrity checks can catch it.
	KindBitFlip
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindTorn:
		return "torn"
	case KindBitFlip:
		return "bitflip"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is an injected store failure.
type Error struct {
	Op   Op
	Kind Kind
	Seq  uint64 // the injector's decision sequence number
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure on %s (seq %d)", e.Kind, e.Op, e.Seq)
}

// Transient reports whether the failure is worth retrying, which is
// what crac.Transient keys on. A torn write is transient at the store
// level: the atomic Put contract discarded the partial image, so a
// retry starts clean.
func (e *Error) Transient() bool {
	return e.Kind == KindTransient || e.Kind == KindTorn
}

// Rates are per-operation fault probabilities in [0, 1]. They are
// drawn in a fixed order (transient, permanent, torn, bitflip), first
// hit wins, so a schedule is reproducible from the seed alone.
type Rates struct {
	Transient float64
	Permanent float64
	Torn      float64
	BitFlip   float64
}

func (r Rates) zero() bool {
	return r.Transient == 0 && r.Permanent == 0 && r.Torn == 0 && r.BitFlip == 0
}

// Config configures an Injector.
type Config struct {
	// Seed feeds the deterministic PRNG. Equal seeds and operation
	// sequences produce equal decisions.
	Seed int64
	// Per-operation fault rates.
	Put    Rates
	Get    Rates
	List   Rates
	Delete Rates
	GetAt  Rates
	// Latency, when positive, is added to every operation (before any
	// injected failure), modeling a slow store.
	Latency time.Duration
}

func (c *Config) rates(op Op) Rates {
	switch op {
	case OpPut:
		return c.Put
	case OpGet:
		return c.Get
	case OpList:
		return c.List
	case OpDelete:
		return c.Delete
	case OpGetAt:
		return c.GetAt
	default:
		return Rates{}
	}
}

// Decision is one resolved injection: what to do to the current
// operation.
type Decision struct {
	Kind Kind
	// Err is the injected error for failing kinds (nil for KindNone and
	// KindBitFlip).
	Err error
	// Frac in (0, 1) positions a torn write's cut or a bit flip's
	// target, as a fraction of the payload.
	Frac float64
	// Delay is the configured latency to add.
	Delay time.Duration
}

// Injector makes deterministic fault decisions. Safe for concurrent
// use; concurrency does make the interleaving of decisions racy, so
// tests that need an exact schedule either serialize their operations
// or use FailNext.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	seq   uint64
	queue map[Op][]Kind
	stats map[Op]map[Kind]uint64
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: make(map[Op][]Kind),
		stats: make(map[Op]map[Kind]uint64),
	}
}

// FailNext queues an exact failure for the next Decide(op) — ahead of
// any probabilistic draw — letting a test force "the next Put tears" or
// "the next Get flips a bit" without touching the rates.
func (inj *Injector) FailNext(op Op, kind Kind) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.queue[op] = append(inj.queue[op], kind)
}

// Decide resolves what happens to the next operation of kind op.
func (inj *Injector) Decide(op Op) Decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.seq++
	kind := KindNone
	if q := inj.queue[op]; len(q) > 0 {
		kind = q[0]
		inj.queue[op] = q[1:]
	} else if r := inj.cfg.rates(op); !r.zero() {
		// One draw per probability, in a fixed order, every time — so
		// the PRNG stream advances identically whatever the outcome and
		// the schedule replays from the seed.
		draws := [4]float64{inj.rng.Float64(), inj.rng.Float64(), inj.rng.Float64(), inj.rng.Float64()}
		switch {
		case draws[0] < r.Transient:
			kind = KindTransient
		case draws[1] < r.Permanent:
			kind = KindPermanent
		case draws[2] < r.Torn:
			kind = KindTorn
		case draws[3] < r.BitFlip:
			kind = KindBitFlip
		}
	}
	d := Decision{Kind: kind, Delay: inj.cfg.Latency}
	if kind == KindTorn || kind == KindBitFlip {
		// 1%..99% of the payload: never a no-op cut at either end.
		d.Frac = 0.01 + 0.98*inj.rng.Float64()
	}
	switch kind {
	case KindTransient, KindPermanent, KindTorn:
		d.Err = &Error{Op: op, Kind: kind, Seq: inj.seq}
	}
	if inj.stats[op] == nil {
		inj.stats[op] = make(map[Kind]uint64)
	}
	inj.stats[op][kind]++
	return d
}

// Stats returns a copy of the per-operation decision counts (KindNone
// included), for assertions and reporting.
func (inj *Injector) Stats() map[Op]map[Kind]uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Op]map[Kind]uint64, len(inj.stats))
	for op, m := range inj.stats {
		c := make(map[Kind]uint64, len(m))
		for k, n := range m {
			c[k] = n
		}
		out[op] = c
	}
	return out
}

// Injected sums every non-KindNone decision.
func (inj *Injector) Injected() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n uint64
	for _, m := range inj.stats {
		for k, c := range m {
			if k != KindNone {
				n += c
			}
		}
	}
	return n
}

// FlipBit flips one bit of b, positioned by frac in [0, 1), and
// returns the byte index it hit (-1 for an empty slice).
func FlipBit(b []byte, frac float64) int {
	if len(b) == 0 {
		return -1
	}
	i := int(frac * float64(len(b)))
	if i >= len(b) {
		i = len(b) - 1
	}
	b[i] ^= 1 << (i % 8)
	return i
}
