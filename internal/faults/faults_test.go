package faults

import (
	"errors"
	"testing"
	"time"
)

// drain pulls n decisions for op and returns the sequence of kinds.
func drain(inj *Injector, op Op, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = inj.Decide(op).Kind
	}
	return out
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Seed: 42,
		Put:  Rates{Transient: 0.3, Torn: 0.1, BitFlip: 0.1},
		Get:  Rates{Transient: 0.2},
	}
	a := drain(New(cfg), OpPut, 200)
	b := drain(New(cfg), OpPut, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	var injected int
	for _, k := range a {
		if k != KindNone {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected at 50% combined rate over 200 draws")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cfg := Config{Seed: 1, Put: Rates{Transient: 0.5}}
	a := drain(New(cfg), OpPut, 100)
	cfg.Seed = 2
	b := drain(New(cfg), OpPut, 100)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 100-draw schedules")
	}
}

func TestRatesIsolatedPerOp(t *testing.T) {
	inj := New(Config{Seed: 7, Put: Rates{Permanent: 1}})
	if d := inj.Decide(OpGet); d.Kind != KindNone {
		t.Fatalf("Get drew %v with only Put rates configured", d.Kind)
	}
	if d := inj.Decide(OpPut); d.Kind != KindPermanent {
		t.Fatalf("Put drew %v, want permanent at rate 1", d.Kind)
	}
}

func TestFailNextQueue(t *testing.T) {
	inj := New(Config{Seed: 3}) // zero rates: only the queue can fire
	inj.FailNext(OpPut, KindBitFlip)
	inj.FailNext(OpPut, KindTransient)

	d := inj.Decide(OpGet)
	if d.Kind != KindNone {
		t.Fatalf("queued Put fault fired on Get: %v", d.Kind)
	}
	d = inj.Decide(OpPut)
	if d.Kind != KindBitFlip {
		t.Fatalf("first queued = %v, want bit flip", d.Kind)
	}
	d = inj.Decide(OpPut)
	if d.Kind != KindTransient {
		t.Fatalf("second queued = %v, want transient", d.Kind)
	}
	if d.Err == nil {
		t.Fatal("transient decision carries no error")
	}
	if d = inj.Decide(OpPut); d.Kind != KindNone {
		t.Fatalf("queue not drained: %v", d.Kind)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		kind      Kind
		transient bool
	}{
		{KindTransient, true},
		{KindTorn, true},
		{KindPermanent, false},
		{KindBitFlip, false},
	}
	for _, c := range cases {
		e := &Error{Op: OpPut, Kind: c.kind, Seq: 1}
		if e.Transient() != c.transient {
			t.Errorf("%v.Transient() = %v, want %v", c.kind, e.Transient(), c.transient)
		}
		var fe *Error
		if !errors.As(error(e), &fe) {
			t.Errorf("%v not errors.As-able to *Error", c.kind)
		}
		if e.Error() == "" {
			t.Errorf("%v has empty message", c.kind)
		}
	}
}

func TestStatsAndInjected(t *testing.T) {
	inj := New(Config{Seed: 9, Put: Rates{Transient: 1}})
	const n = 5
	for i := 0; i < n; i++ {
		inj.Decide(OpPut)
	}
	inj.Decide(OpGet) // clean: no rates for Get
	if got := inj.Injected(); got != n {
		t.Fatalf("Injected() = %d, want %d", got, n)
	}
	st := inj.Stats()
	if st[OpPut][KindTransient] != n {
		t.Fatalf("Stats()[Put][Transient] = %d, want %d", st[OpPut][KindTransient], n)
	}
}

func TestLatency(t *testing.T) {
	inj := New(Config{Seed: 5, Latency: 3 * time.Millisecond})
	d := inj.Decide(OpGet)
	if d.Delay != 3*time.Millisecond {
		t.Fatalf("Delay = %v, want 3ms", d.Delay)
	}
}

func TestFlipBit(t *testing.T) {
	b := make([]byte, 64)
	i := FlipBit(b, 0.5)
	if i < 0 || i >= len(b) {
		t.Fatalf("flip index %d out of range", i)
	}
	if b[i] == 0 {
		t.Fatalf("byte %d not flipped", i)
	}
	var nonzero int
	for _, v := range b {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", nonzero)
	}
	if got := FlipBit(nil, 0.5); got != -1 {
		t.Fatalf("FlipBit(nil) = %d, want -1", got)
	}
}
