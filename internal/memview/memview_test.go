package memview

import (
	"math"
	"testing"
)

func TestFloat32sAliases(t *testing.T) {
	b := make([]byte, 16)
	f := Float32s(b, 4)
	f[2] = 3.5
	got := math.Float32frombits(uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24)
	if got != 3.5 {
		t.Fatalf("aliasing broken: %v", got)
	}
}

func TestViewsLengths(t *testing.T) {
	b := make([]byte, 64)
	if len(Float32s(b, 16)) != 16 ||
		len(Float64s(b, 8)) != 8 ||
		len(Int32s(b, 16)) != 16 ||
		len(Uint32s(b, 16)) != 16 ||
		len(Uint64s(b, 8)) != 8 {
		t.Fatal("view lengths")
	}
}

func TestZeroCount(t *testing.T) {
	if Float32s(nil, 0) != nil || Uint64s([]byte{}, 0) != nil {
		t.Fatal("zero-count views should be nil")
	}
}

func TestShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short buffer")
		}
	}()
	Float64s(make([]byte, 15), 2)
}

func TestInt32Roundtrip(t *testing.T) {
	b := make([]byte, 8)
	v := Int32s(b, 2)
	v[0], v[1] = -5, 1<<30
	v2 := Int32s(b, 2)
	if v2[0] != -5 || v2[1] != 1<<30 {
		t.Fatalf("roundtrip: %v", v2)
	}
}
