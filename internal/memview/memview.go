// Package memview reinterprets byte slices of simulated memory as typed
// element slices, the way CUDA kernels and host code view raw allocations
// through typed pointers.
//
// All views alias the underlying bytes (no copies). Buffers originate
// from page-aligned region allocations, so the alignment requirements of
// the element types are always met; Float32s and friends panic if handed
// a misaligned or short buffer, mirroring the undefined behaviour a
// misaligned device pointer would produce.
package memview

import (
	"fmt"
	"unsafe"
)

func check(b []byte, elem, count int, what string) {
	if len(b) < elem*count {
		panic(fmt.Sprintf("memview: %s view of %d elements needs %d bytes, have %d", what, count, elem*count, len(b)))
	}
	if count > 0 && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%uintptr(elem) != 0 {
		panic(fmt.Sprintf("memview: %s view: buffer misaligned", what))
	}
}

// Float32s views count float32 elements over b.
func Float32s(b []byte, count int) []float32 {
	check(b, 4, count, "float32")
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(b))), count)
}

// Float64s views count float64 elements over b.
func Float64s(b []byte, count int) []float64 {
	check(b, 8, count, "float64")
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), count)
}

// Int32s views count int32 elements over b.
func Int32s(b []byte, count int) []int32 {
	check(b, 4, count, "int32")
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), count)
}

// Uint32s views count uint32 elements over b.
func Uint32s(b []byte, count int) []uint32 {
	check(b, 4, count, "uint32")
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), count)
}

// Uint64s views count uint64 elements over b.
func Uint64s(b []byte, count int) []uint64 {
	check(b, 8, count, "uint64")
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), count)
}
