// Package replaylog records the CUDA calls that create or destroy
// lower-half resources, so that CRAC can replay them in the original
// order on restart (paper Sections 3.1 "Log-and-replay" and 3.2.3/3.2.4).
//
// Two facts from the paper shape the design:
//
//   - Only the memory of *active* mallocs is saved at checkpoint time,
//     but the *entire* allocation/free sequence is replayed at restart,
//     because the CUDA library's deterministic internal bookkeeping only
//     reproduces the original addresses if it sees the same call history
//     ("we still need to replay the entire original sequence to get the
//     same host and device addresses as prior to checkpoint").
//   - The log also covers streams, events, and fat-binary registrations,
//     all of which must be recreated in a fresh lower half.
package replaylog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Kind identifies a logged CUDA call.
type Kind uint8

// Logged call kinds.
const (
	KindInvalid Kind = iota
	KindMalloc
	KindFree
	KindMallocHost
	KindFreeHost // frees a cudaMallocHost allocation
	KindHostAlloc
	KindFreeHostAlloc // frees a cudaHostAlloc registration
	KindMallocManaged
	KindFreeManaged
	KindStreamCreate
	KindStreamDestroy
	KindEventCreate
	KindEventDestroy
	KindRegisterFatBinary
	KindRegisterFunction
	KindUnregisterFatBinary
)

var kindNames = [...]string{
	KindInvalid:             "invalid",
	KindMalloc:              "cudaMalloc",
	KindFree:                "cudaFree",
	KindMallocHost:          "cudaMallocHost",
	KindFreeHost:            "cudaFreeHost",
	KindHostAlloc:           "cudaHostAlloc",
	KindFreeHostAlloc:       "cudaFreeHost(hostAlloc)",
	KindMallocManaged:       "cudaMallocManaged",
	KindFreeManaged:         "cudaFree(managed)",
	KindStreamCreate:        "cudaStreamCreate",
	KindStreamDestroy:       "cudaStreamDestroy",
	KindEventCreate:         "cudaEventCreate",
	KindEventDestroy:        "cudaEventDestroy",
	KindRegisterFatBinary:   "__cudaRegisterFatBinary",
	KindRegisterFunction:    "__cudaRegisterFunction",
	KindUnregisterFatBinary: "__cudaUnregisterFatBinary",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Entry is one logged call. Field use depends on Kind:
//
//	mallocs:      Size = requested size, Addr = returned address
//	frees:        Addr = freed address
//	streams/events: Handle = virtual handle
//	fat binaries: Handle = virtual handle, Module = module name,
//	              Name = function name (KindRegisterFunction only)
type Entry struct {
	Kind   Kind
	Size   uint64
	Addr   uint64
	Handle uint64
	Module string
	Name   string
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	switch e.Kind {
	case KindMalloc, KindMallocHost, KindHostAlloc, KindMallocManaged:
		return fmt.Sprintf("%v(size=%d) -> %#x", e.Kind, e.Size, e.Addr)
	case KindFree, KindFreeHost, KindFreeHostAlloc, KindFreeManaged:
		return fmt.Sprintf("%v(%#x)", e.Kind, e.Addr)
	case KindRegisterFatBinary:
		return fmt.Sprintf("%v(%q) -> vh%d", e.Kind, e.Module, e.Handle)
	case KindRegisterFunction:
		return fmt.Sprintf("%v(vh%d, %q)", e.Kind, e.Handle, e.Name)
	case KindUnregisterFatBinary:
		return fmt.Sprintf("%v(vh%d)", e.Kind, e.Handle)
	default:
		return fmt.Sprintf("%v(vh%d)", e.Kind, e.Handle)
	}
}

// Log is an append-only, concurrency-safe call log.
type Log struct {
	mu      sync.Mutex
	entries []Entry
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append records one call.
func (l *Log) Append(e Entry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Len returns the number of logged calls.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a snapshot of the log in call order.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// View returns the current log contents as an immutable prefix view,
// without copying: the log is append-only, and the returned slice is
// capacity-clamped, so later Appends (which either write beyond the
// clamp or reallocate) never mutate it. This is the O(1) capture a
// concurrent checkpoint takes inside its stop-the-world window.
func (l *Log) View() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries[:len(l.entries):len(l.entries)]
}

// Reset clears the log (used only by tests).
func (l *Log) Reset() {
	l.mu.Lock()
	l.entries = nil
	l.mu.Unlock()
}

// Allocation is a live allocation derived from the log.
type Allocation struct {
	Addr uint64
	Size uint64
}

// ActiveSet holds the live resources implied by the log: the "active
// mallocs" of Section 3.2.3 plus live streams, events and fat binaries.
type ActiveSet struct {
	Device  []Allocation // cudaMalloc, in allocation order
	Pinned  []Allocation // cudaMallocHost
	Host    []Allocation // cudaHostAlloc
	Managed []Allocation // cudaMallocManaged
	Streams []uint64     // virtual stream handles in creation order
	Events  []uint64     // virtual event handles in creation order
	FatBins []FatBin     // registered fat binaries in registration order
}

// FatBin is a live fat binary and its registered function names.
type FatBin struct {
	Handle    uint64
	Module    string
	Functions []string
}

// Active derives the live set from the log.
//
// Deletions use tombstones plus an address→position index instead of
// scanning the creation-order slice, so a malloc/free-heavy log
// (HPGMG-style, tens of thousands of calls) derives in O(n) rather than
// the quadratic slice-deletion cost of the naive approach. Dead entries
// are skipped during the final collection; the same address may recur in
// the order slice after arena reuse, so liveness is per-entry, not
// per-address.
func (l *Log) Active() ActiveSet {
	return ActiveOf(l.View())
}

// ActiveOf derives the live set from an explicit entry sequence —
// typically a frozen View() prefix, so a checkpoint running
// concurrently with the application computes the active set of the cut
// point, not of the still-growing log.
func ActiveOf(entries []Entry) ActiveSet {
	var as ActiveSet
	type allocList struct {
		order []Allocation
		alive []bool
		idx   map[uint64]int // addr → live entry position in order
	}
	newAL := func() *allocList { return &allocList{idx: make(map[uint64]int)} }
	dev, pin, host, mgd := newAL(), newAL(), newAL(), newAL()
	add := func(al *allocList, e Entry) {
		al.idx[e.Addr] = len(al.order)
		al.order = append(al.order, Allocation{Addr: e.Addr, Size: e.Size})
		al.alive = append(al.alive, true)
	}
	drop := func(al *allocList, addr uint64) {
		if i, ok := al.idx[addr]; ok {
			al.alive[i] = false
			delete(al.idx, addr)
		}
	}
	type handleList struct {
		order []uint64
		alive []bool
		idx   map[uint64]int
	}
	newHL := func() *handleList { return &handleList{idx: make(map[uint64]int)} }
	streams, events := newHL(), newHL()
	addH := func(hl *handleList, h uint64) {
		hl.idx[h] = len(hl.order)
		hl.order = append(hl.order, h)
		hl.alive = append(hl.alive, true)
	}
	dropH := func(hl *handleList, h uint64) {
		if i, ok := hl.idx[h]; ok {
			hl.alive[i] = false
			delete(hl.idx, h)
		}
	}
	fatIdx := make(map[uint64]int)
	var fats []FatBin
	var fatAlive []bool
	for _, e := range entries {
		switch e.Kind {
		case KindMalloc:
			add(dev, e)
		case KindFree:
			drop(dev, e.Addr)
		case KindMallocHost:
			add(pin, e)
		case KindFreeHost:
			drop(pin, e.Addr)
		case KindHostAlloc:
			add(host, e)
		case KindFreeHostAlloc:
			drop(host, e.Addr)
		case KindMallocManaged:
			add(mgd, e)
		case KindFreeManaged:
			drop(mgd, e.Addr)
		case KindStreamCreate:
			addH(streams, e.Handle)
		case KindStreamDestroy:
			dropH(streams, e.Handle)
		case KindEventCreate:
			addH(events, e.Handle)
		case KindEventDestroy:
			dropH(events, e.Handle)
		case KindRegisterFatBinary:
			fatIdx[e.Handle] = len(fats)
			fats = append(fats, FatBin{Handle: e.Handle, Module: e.Module})
			fatAlive = append(fatAlive, true)
		case KindRegisterFunction:
			if i, ok := fatIdx[e.Handle]; ok {
				fats[i].Functions = append(fats[i].Functions, e.Name)
			}
		case KindUnregisterFatBinary:
			if i, ok := fatIdx[e.Handle]; ok {
				fatAlive[i] = false
				delete(fatIdx, e.Handle)
			}
		}
	}
	collect := func(al *allocList) []Allocation {
		out := make([]Allocation, 0, len(al.idx))
		for i, a := range al.order {
			if al.alive[i] {
				out = append(out, a)
			}
		}
		return out
	}
	collectH := func(hl *handleList) []uint64 {
		out := make([]uint64, 0, len(hl.idx))
		for i, h := range hl.order {
			if hl.alive[i] {
				out = append(out, h)
			}
		}
		return out
	}
	as.Device = collect(dev)
	as.Pinned = collect(pin)
	as.Host = collect(host)
	as.Managed = collect(mgd)
	as.Streams = collectH(streams)
	as.Events = collectH(events)
	as.FatBins = make([]FatBin, 0, len(fatIdx))
	for i, f := range fats {
		if fatAlive[i] {
			as.FatBins = append(as.FatBins, f)
		}
	}
	return as
}

// Binary serialization: the log travels inside the checkpoint image.

const logMagic = uint32(0x43524c47) // "CRLG"

// Encode writes the log to w in a self-describing binary format.
func (l *Log) Encode(w io.Writer) error {
	return EncodeEntries(w, l.View())
}

// EncodeEntries writes an explicit entry sequence (typically a frozen
// View() prefix) in the same format as Encode.
func EncodeEntries(w io.Writer, entries []Entry) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(entries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, e := range entries {
		if err := encodeEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func encodeEntry(w io.Writer, e Entry) error {
	var fixed [25]byte
	fixed[0] = byte(e.Kind)
	binary.LittleEndian.PutUint64(fixed[1:], e.Size)
	binary.LittleEndian.PutUint64(fixed[9:], e.Addr)
	binary.LittleEndian.PutUint64(fixed[17:], e.Handle)
	if _, err := w.Write(fixed[:]); err != nil {
		return err
	}
	for _, s := range []string{e.Module, e.Name} {
		var n [2]byte
		if len(s) > 0xffff {
			return fmt.Errorf("replaylog: string too long (%d)", len(s))
		}
		binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}

// ErrBadFormat reports a malformed serialized log.
var ErrBadFormat = errors.New("replaylog: bad format")

// DecodeBytes decodes a log from an in-memory buffer.
func DecodeBytes(b []byte) (*Log, error) {
	return Decode(bytes.NewReader(b))
}

// Decode reads a log previously written by Encode.
func Decode(r io.Reader) (*Log, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	l := New()
	for i := uint32(0); i < n; i++ {
		e, err := decodeEntry(r)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadFormat, i, err)
		}
		l.entries = append(l.entries, e)
	}
	return l, nil
}

func decodeEntry(r io.Reader) (Entry, error) {
	var fixed [25]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return Entry{}, err
	}
	e := Entry{
		Kind:   Kind(fixed[0]),
		Size:   binary.LittleEndian.Uint64(fixed[1:]),
		Addr:   binary.LittleEndian.Uint64(fixed[9:]),
		Handle: binary.LittleEndian.Uint64(fixed[17:]),
	}
	for i := 0; i < 2; i++ {
		var nb [2]byte
		if _, err := io.ReadFull(r, nb[:]); err != nil {
			return Entry{}, err
		}
		n := binary.LittleEndian.Uint16(nb[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Entry{}, err
		}
		if i == 0 {
			e.Module = string(buf)
		} else {
			e.Name = string(buf)
		}
	}
	return e, nil
}
