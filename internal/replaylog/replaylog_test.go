package replaylog

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleEntries() []Entry {
	return []Entry{
		{Kind: KindRegisterFatBinary, Handle: 1, Module: "app"},
		{Kind: KindRegisterFunction, Handle: 1, Name: "vecAdd"},
		{Kind: KindMalloc, Size: 1024, Addr: 0x1000},
		{Kind: KindMalloc, Size: 2048, Addr: 0x2000},
		{Kind: KindFree, Addr: 0x1000},
		{Kind: KindMallocHost, Size: 64, Addr: 0x3000},
		{Kind: KindHostAlloc, Size: 128, Addr: 0xa0000000},
		{Kind: KindMallocManaged, Size: 4096, Addr: 0x4000},
		{Kind: KindStreamCreate, Handle: 1},
		{Kind: KindStreamCreate, Handle: 2},
		{Kind: KindStreamDestroy, Handle: 1},
		{Kind: KindEventCreate, Handle: 1},
	}
}

func TestAppendAndEntries(t *testing.T) {
	l := New()
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	if l.Len() != len(sampleEntries()) {
		t.Fatalf("len = %d", l.Len())
	}
	if !reflect.DeepEqual(l.Entries(), sampleEntries()) {
		t.Fatal("entries mismatch")
	}
}

func TestActiveSet(t *testing.T) {
	l := New()
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	as := l.Active()
	if len(as.Device) != 1 || as.Device[0].Addr != 0x2000 || as.Device[0].Size != 2048 {
		t.Fatalf("device = %+v", as.Device)
	}
	if len(as.Pinned) != 1 || as.Pinned[0].Addr != 0x3000 {
		t.Fatalf("pinned = %+v", as.Pinned)
	}
	if len(as.Host) != 1 || as.Host[0].Addr != 0xa0000000 {
		t.Fatalf("host = %+v", as.Host)
	}
	if len(as.Managed) != 1 || as.Managed[0].Addr != 0x4000 {
		t.Fatalf("managed = %+v", as.Managed)
	}
	if !reflect.DeepEqual(as.Streams, []uint64{2}) {
		t.Fatalf("streams = %v", as.Streams)
	}
	if !reflect.DeepEqual(as.Events, []uint64{1}) {
		t.Fatalf("events = %v", as.Events)
	}
	if len(as.FatBins) != 1 || as.FatBins[0].Module != "app" ||
		!reflect.DeepEqual(as.FatBins[0].Functions, []string{"vecAdd"}) {
		t.Fatalf("fatbins = %+v", as.FatBins)
	}
}

func TestActiveSetUnregisterFatBinary(t *testing.T) {
	l := New()
	l.Append(Entry{Kind: KindRegisterFatBinary, Handle: 1, Module: "a"})
	l.Append(Entry{Kind: KindRegisterFatBinary, Handle: 2, Module: "b"})
	l.Append(Entry{Kind: KindUnregisterFatBinary, Handle: 1})
	as := l.Active()
	if len(as.FatBins) != 1 || as.FatBins[0].Module != "b" {
		t.Fatalf("fatbins = %+v", as.FatBins)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := New()
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Entries(), l.Entries()) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("garbagegarbage"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	l := New()
	l.Append(Entry{Kind: KindMalloc, Size: 8, Addr: 0x100})
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Decode(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated err = %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindMalloc; k <= KindUnregisterFatBinary; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("unknown kind string")
	}
	for _, e := range sampleEntries() {
		if e.String() == "" {
			t.Fatalf("entry %v has no string", e.Kind)
		}
	}
}

// TestQuickEncodeDecode property: Encode∘Decode is identity for
// arbitrary entries.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(kinds []uint8, sizes []uint64, mods []string) bool {
		l := New()
		for i, k := range kinds {
			e := Entry{Kind: Kind(k%15 + 1)}
			if i < len(sizes) {
				e.Size = sizes[i]
				e.Addr = sizes[i] ^ 0xdead
				e.Handle = sizes[i] >> 3
			}
			if i < len(mods) && len(mods[i]) < 1000 {
				e.Module = mods[i]
				e.Name = mods[i]
			}
			l.Append(e)
		}
		var buf bytes.Buffer
		if err := l.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Entries(), l.Entries())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickActiveMallocInvariant property (DESIGN.md invariant 2): for a
// random but well-formed malloc/free sequence, the active set equals the
// allocations never freed, in allocation order.
func TestQuickActiveMallocInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		l := New()
		type alloc struct{ addr, size uint64 }
		var live []alloc
		next := uint64(0x1000)
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				l.Append(Entry{Kind: KindFree, Addr: live[i].addr})
				live = append(live[:i], live[i+1:]...)
			} else {
				a := alloc{addr: next, size: uint64(op) + 1}
				next += 0x1000
				l.Append(Entry{Kind: KindMalloc, Size: a.size, Addr: a.addr})
				live = append(live, a)
			}
		}
		as := l.Active()
		if len(as.Device) != len(live) {
			return false
		}
		// Active order is allocation order of surviving allocations.
		want := make(map[uint64]uint64, len(live))
		for _, a := range live {
			want[a.addr] = a.size
		}
		for _, a := range as.Device {
			if want[a.Addr] != a.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	l := New()
	l.Append(Entry{Kind: KindMalloc, Size: 1, Addr: 2})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestViewIsImmutablePrefix: View is the O(1) stop-the-world capture a
// concurrent checkpoint takes — later appends must not leak into it,
// and ActiveOf/EncodeEntries over the view must equal what the live log
// would have produced at capture time.
func TestViewIsImmutablePrefix(t *testing.T) {
	l := New()
	l.Append(Entry{Kind: KindMalloc, Size: 64, Addr: 0x100})
	l.Append(Entry{Kind: KindMalloc, Size: 64, Addr: 0x200})
	v := l.View()
	var atCut bytes.Buffer
	if err := l.Encode(&atCut); err != nil {
		t.Fatal(err)
	}
	// Mutate after the capture: enough appends to force a reallocation
	// and exercise the in-place-append path first.
	l.Append(Entry{Kind: KindFree, Addr: 0x100})
	for i := 0; i < 64; i++ {
		l.Append(Entry{Kind: KindMalloc, Size: 8, Addr: 0x1000 + uint64(i)*64})
	}
	if len(v) != 2 {
		t.Fatalf("view grew to %d entries", len(v))
	}
	as := ActiveOf(v)
	if len(as.Device) != 2 {
		t.Fatalf("ActiveOf(view) sees %d device allocs, want 2 (free is post-capture)", len(as.Device))
	}
	var fromView bytes.Buffer
	if err := EncodeEntries(&fromView, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromView.Bytes(), atCut.Bytes()) {
		t.Fatal("EncodeEntries(view) differs from the capture-time encoding")
	}
	if len(l.Entries()) != 67 {
		t.Fatalf("live log has %d entries, want 67", len(l.Entries()))
	}
}
