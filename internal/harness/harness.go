// Package harness regenerates every table and figure of the paper's
// evaluation (Section 4). Each Experiment produces one or more text
// tables mirroring the paper's artifacts; cmd/cracbench drives the
// registry, and bench_test.go at the repository root exposes one
// testing.B benchmark per experiment.
package harness

import (
	"fmt"
	"io"
	"strings"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/gpusim"
	"repro/internal/proxy"
)

// Mode selects the runtime binding an application runs under.
type Mode int

// Execution modes.
const (
	// ModeNative is the uninstrumented baseline.
	ModeNative Mode = iota
	// ModeCRAC is CRAC with the syscall-based fs switch (unpatched
	// kernel, the paper's main configuration).
	ModeCRAC
	// ModeCRACFSGSBase is CRAC with the FSGSBASE-patched fs switch
	// (Section 4.4.5).
	ModeCRACFSGSBase
	// ModeProxyPipe is the CRCUDA/CRUM-style proxy over OS pipes.
	ModeProxyPipe
	// ModeProxyCMA is the proxy over Cross-Memory Attach (Table 3's
	// "CMA/IPC").
	ModeProxyCMA
)

// String names the mode as the paper's figures label it.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeCRAC:
		return "CRAC"
	case ModeCRACFSGSBase:
		return "CRAC (FSGSBASE)"
	case ModeProxyPipe:
		return "proxy (pipe IPC)"
	case ModeProxyCMA:
		return "CMA/IPC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Runner couples a runtime binding with its checkpointable session (for
// the CRAC modes) and its teardown.
type Runner struct {
	Mode    Mode
	RT      crt.Runtime
	Session *crac.Session  // non-nil in CRAC modes
	Proxy   *proxy.Runtime // non-nil in proxy modes
}

// NewRunner builds a runner for the mode over the given device. Extra
// options apply to the CRAC session modes (e.g. crac.WithIncremental);
// the native and proxy bindings have no session to configure and
// ignore them.
func NewRunner(mode Mode, prop gpusim.Properties, opts ...crac.Option) (*Runner, error) {
	switch mode {
	case ModeNative:
		rt, err := crac.NewNative(crac.WithDevice(prop))
		if err != nil {
			return nil, err
		}
		return &Runner{Mode: mode, RT: rt}, nil
	case ModeCRAC, ModeCRACFSGSBase:
		sw := crac.SwitchSyscall
		if mode == ModeCRACFSGSBase {
			sw = crac.SwitchFSGSBase
		}
		s, err := crac.New(append([]crac.Option{crac.WithDevice(prop), crac.WithSwitcher(sw)}, opts...)...)
		if err != nil {
			return nil, err
		}
		return &Runner{Mode: mode, RT: s.Runtime(), Session: s}, nil
	case ModeProxyPipe, ModeProxyCMA:
		kind := "pipe"
		if mode == ModeProxyCMA {
			kind = "cma"
		}
		p, err := proxy.New(proxy.Config{Prop: prop, TransportKind: kind})
		if err != nil {
			return nil, err
		}
		return &Runner{Mode: mode, RT: p, Proxy: p}, nil
	default:
		return nil, fmt.Errorf("harness: unknown mode %v", mode)
	}
}

// Close releases the runner's resources.
func (r *Runner) Close() {
	if r.Session != nil {
		r.Session.Close()
	}
	if r.Proxy != nil {
		r.Proxy.Close()
	}
	if n, ok := r.RT.(*crt.Native); ok {
		n.Close()
	}
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string // experiment id, e.g. "fig2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as CSV.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies all workload sizes (1.0 = repository default).
	Scale float64
	// Iterations is the number of timed repetitions per data point
	// (the paper uses 10; default here is 3).
	Iterations int
	// Quick further shrinks expensive experiments (used by tests).
	Quick bool
	// Full enables the most expensive data points (Table 3's 100 MB
	// cublasSgemm row).
	Full bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// EffScale returns the scale with default 1, halved in Quick mode.
func (o Options) EffScale() float64 {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	if o.Quick {
		s *= 0.15
	}
	return s
}

// EffIters returns the iteration count (default 3, 1 in Quick mode).
func (o Options) EffIters() int {
	if o.Quick {
		return 1
	}
	if o.Iterations <= 0 {
		return 3
	}
	return o.Iterations
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper's version of the artifact shows,
	// for side-by-side comparison in EXPERIMENTS.md.
	Paper string
	Run   func(opt Options) ([]*Table, error)
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []*Experiment { return registry }

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range registry {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// overheadPct computes the paper's Equation 1.
func overheadPct(instrumented, native float64) float64 {
	if native == 0 {
		return 0
	}
	return (instrumented - native) / native * 100
}

// fmtF renders a float with sensible precision for tables.
func fmtF(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// FmtBytes renders a byte count like the paper's figure annotations
// (exported for the cmds, which print the same units).
func FmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtCalls renders a call count like the paper's "800K"/"6M" labels.
func fmtCalls(n uint64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
