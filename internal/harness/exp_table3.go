package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/crt"
	"repro/internal/cublas"
	"repro/internal/gpusim"
	"repro/internal/memview"
	"repro/internal/proxy"
)

func init() {
	register(&Experiment{
		ID:    "table3",
		Title: "CRAC vs CMA/IPC on cuBLAS calls (Table 3)",
		Paper: "CRAC ≈1% overhead (up to 3.9% on 1MB sdot); CMA/IPC 142%–17,812% — per-call buffer copies dominate",
		Run:   runTable3,
	})
}

// blasCase is one Table 3 row: a cuBLAS routine at a data size.
type blasCase struct {
	op    string
	bytes uint64
	reps  int
}

func table3Cases(opt Options) []blasCase {
	mb := uint64(1 << 20)
	if opt.Quick {
		return []blasCase{
			{"cublasSdot", mb, 10},
			{"cublasSgemv", mb, 5},
			{"cublasSgemm", mb, 2},
		}
	}
	cases := []blasCase{
		{"cublasSdot", 1 * mb, 40},
		{"cublasSdot", 10 * mb, 10},
		{"cublasSdot", 100 * mb, 3},
		{"cublasSgemv", 1 * mb, 40},
		{"cublasSgemv", 10 * mb, 10},
		{"cublasSgemv", 100 * mb, 3},
		{"cublasSgemm", 1 * mb, 5},
		{"cublasSgemm", 10 * mb, 2},
	}
	if opt.Full {
		// 2·5120³ ≈ 2.7e11 flops on the simulated device: opt-in only.
		cases = append(cases, blasCase{"cublasSgemm", 100 * mb, 1})
	}
	return cases
}

// dims derives the problem dimensions from the paper's rule: "the matrix
// (or vector, for cublasSdot) had data size 1 MB, 10 MB, or 100 MB".
func (c blasCase) dims() (m, n, k int) {
	switch c.op {
	case "cublasSdot":
		return 0, int(c.bytes / 4), 0
	case "cublasSgemv":
		side := int(math.Sqrt(float64(c.bytes / 4)))
		return side, side, 0
	default: // cublasSgemm
		side := int(math.Sqrt(float64(c.bytes / 4)))
		return side, side, side
	}
}

// runBlasDirect times the routine through a crt.Runtime (native or CRAC):
// operands already live in device memory and are passed by pointer.
func runBlasDirect(mode Mode, c blasCase) (msPerCall float64, checksum float64, err error) {
	r, err := NewRunner(mode, gpusim.TeslaV100())
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	rt := r.RT
	h, err := cublas.New(rt)
	if err != nil {
		return 0, 0, err
	}
	m, n, k := c.dims()

	fill := func(addr uint64, count int, seedMul float32) error {
		v, err := crt.HostF32(rt, addr, count)
		if err != nil {
			return err
		}
		for i := range v {
			v[i] = seedMul / float32(1+i%31)
		}
		return nil
	}
	// Stage operands in device memory once (direct pointer passing).
	var a, x, out uint64
	switch c.op {
	case "cublasSdot":
		if a, err = rt.Malloc(uint64(4 * n)); err != nil {
			return 0, 0, err
		}
		if x, err = rt.Malloc(uint64(4 * n)); err != nil {
			return 0, 0, err
		}
		if out, err = rt.Malloc(4); err != nil {
			return 0, 0, err
		}
		host, err := rt.AppAlloc(uint64(4 * n))
		if err != nil {
			return 0, 0, err
		}
		if err := fill(host, n, 1); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(a, host, uint64(4*n), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
		if err := fill(host, n, 2); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(x, host, uint64(4*n), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
	case "cublasSgemv":
		if a, err = rt.Malloc(uint64(4 * m * n)); err != nil {
			return 0, 0, err
		}
		if x, err = rt.Malloc(uint64(4 * n)); err != nil {
			return 0, 0, err
		}
		if out, err = rt.Malloc(uint64(4 * m)); err != nil {
			return 0, 0, err
		}
		host, err := rt.AppAlloc(uint64(4 * m * n))
		if err != nil {
			return 0, 0, err
		}
		if err := fill(host, m*n, 1); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(a, host, uint64(4*m*n), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
		if err := fill(host, n, 2); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(x, host, uint64(4*n), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
	default:
		if a, err = rt.Malloc(uint64(4 * m * k)); err != nil {
			return 0, 0, err
		}
		if x, err = rt.Malloc(uint64(4 * k * n)); err != nil {
			return 0, 0, err
		}
		if out, err = rt.Malloc(uint64(4 * m * n)); err != nil {
			return 0, 0, err
		}
		host, err := rt.AppAlloc(uint64(4 * m * k))
		if err != nil {
			return 0, 0, err
		}
		if err := fill(host, m*k, 1); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(a, host, uint64(4*m*k), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
		if err := fill(host, k*n, 2); err != nil {
			return 0, 0, err
		}
		if err := rt.Memcpy(x, host, uint64(4*k*n), crt.MemcpyHostToDevice); err != nil {
			return 0, 0, err
		}
	}

	start := time.Now()
	for i := 0; i < c.reps; i++ {
		switch c.op {
		case "cublasSdot":
			err = h.Sdot(n, a, x, out, crt.DefaultStream)
		case "cublasSgemv":
			err = h.Sgemv(m, n, a, x, out, crt.DefaultStream)
		default:
			err = h.Sgemm(m, n, k, a, x, out, crt.DefaultStream)
		}
		if err != nil {
			return 0, 0, err
		}
		if err = rt.DeviceSynchronize(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)

	// Result checksum (first element suffices for cross-mode validation).
	resHost, err := rt.AppAlloc(4)
	if err != nil {
		return 0, 0, err
	}
	if err := rt.Memcpy(resHost, out, 4, crt.MemcpyDeviceToHost); err != nil {
		return 0, 0, err
	}
	rv, err := crt.HostF32(rt, resHost, 1)
	if err != nil {
		return 0, 0, err
	}
	checksum = float64(rv[0])
	return elapsed.Seconds() * 1e3 / float64(c.reps), checksum, nil
}

// runBlasCMA times the routine through the CMA/IPC proxy: operands are
// copied to the proxy on every call and the result copied back, the
// paper's synthetic CMA benchmark.
func runBlasCMA(c blasCase) (msPerCall float64, checksum float64, err error) {
	rt, err := proxy.New(proxy.Config{TransportKind: "cma"})
	if err != nil {
		return 0, 0, err
	}
	defer rt.Close()
	blas := proxy.NewBLAS(rt)
	m, n, k := c.dims()

	mkBuf := func(count int, seedMul float32) []byte {
		b := make([]byte, 4*count)
		v := memview.Float32s(b, count)
		for i := range v {
			v[i] = seedMul / float32(1+i%31)
		}
		return b
	}
	var bufA, bufX []byte
	switch c.op {
	case "cublasSdot":
		bufA, bufX = mkBuf(n, 1), mkBuf(n, 2)
	case "cublasSgemv":
		bufA, bufX = mkBuf(m*n, 1), mkBuf(n, 2)
	default:
		bufA, bufX = mkBuf(m*k, 1), mkBuf(k*n, 2)
	}

	start := time.Now()
	var result []byte
	for i := 0; i < c.reps; i++ {
		switch c.op {
		case "cublasSdot":
			var f float32
			f, err = blas.Sdot(n, bufA, bufX)
			if err == nil {
				checksum = float64(f)
			}
		case "cublasSgemv":
			result, err = blas.Sgemv(m, n, bufA, bufX)
		default:
			result, err = blas.Sgemm(m, n, k, bufA, bufX)
		}
		if err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	if len(result) >= 4 {
		checksum = float64(memview.Float32s(result[:4], 1)[0])
	}
	return elapsed.Seconds() * 1e3 / float64(c.reps), checksum, nil
}

func runTable3(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "table3",
		Title: "Comparison of CRAC to an IPC-based approach (as in CRCUDA and CRUM)",
		Columns: []string{"CUDA Call", "Data size", "Native (ms)", "CRAC (ms)", "CRAC ovh %",
			"CMA/IPC (ms)", "CMA/IPC ovh %"},
	}
	rounds := opt.EffIters()
	for _, c := range table3Cases(opt) {
		opt.logf("table3: %s %s", c.op, FmtBytes(c.bytes))
		// Interleave the three modes across rounds and take medians, so
		// machine noise hits all columns alike.
		var natTs, crTs, cmaTs []float64
		var natSum, crSum, cmaSum float64
		for r := 0; r < rounds; r++ {
			v, sum, err := runBlasDirect(ModeNative, c)
			if err != nil {
				return nil, fmt.Errorf("%s native: %w", c.op, err)
			}
			natTs, natSum = append(natTs, v), sum
			v, sum, err = runBlasDirect(ModeCRAC, c)
			if err != nil {
				return nil, fmt.Errorf("%s CRAC: %w", c.op, err)
			}
			crTs, crSum = append(crTs, v), sum
			v, sum, err = runBlasCMA(c)
			if err != nil {
				return nil, fmt.Errorf("%s CMA: %w", c.op, err)
			}
			cmaTs, cmaSum = append(cmaTs, v), sum
		}
		nat, cr, cma := medianOf(natTs), medianOf(crTs), medianOf(cmaTs)
		// Cross-mode result validation.
		if rel := relDiff(natSum, crSum); rel > 1e-4 {
			return nil, fmt.Errorf("%s %s: native/CRAC results differ: %v vs %v", c.op, FmtBytes(c.bytes), natSum, crSum)
		}
		if rel := relDiff(natSum, cmaSum); rel > 1e-4 {
			return nil, fmt.Errorf("%s %s: native/CMA results differ: %v vs %v", c.op, FmtBytes(c.bytes), natSum, cmaSum)
		}
		t.AddRow(c.op, FmtBytes(c.bytes), fmtF(nat, 3), fmtF(cr, 3),
			fmtF(overheadPct(cr, nat), 1), fmtF(cma, 3), fmtF(overheadPct(cma, nat), 0))
	}
	if !opt.Full && !opt.Quick {
		t.Note("cublasSgemm at 100MB (2.7e11 flops on the simulated device) requires -full")
	}
	t.Note("paper: CRAC -0.8%% to 3.9%%; CMA/IPC 142%% to 17,812%% — the per-call operand copies dominate")
	return []*Table{t}, nil
}

func medianOf(ts []float64) float64 {
	sort.Float64s(ts)
	n := len(ts)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return ts[n/2]
	}
	return (ts[n/2-1] + ts[n/2]) / 2
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}
