package harness

import (
	"context"
	"fmt"
	"time"

	crac "repro"
	"repro/internal/faults"
	"repro/internal/kernels"
)

func init() {
	register(&Experiment{
		ID:    "faults",
		Title: "Fault-tolerant checkpointing: MTTR and overhead under injected faults",
		Paper: "beyond the paper: CRAFT-style restart supervision — periodic checkpoints, fault detection, automatic restart from the newest verified image",
		Run:   runFaults,
	})
}

// faultSchedule is one deterministic fault scenario: store-level fault
// rates, process kills after given rounds, and silent bit flips
// injected into given rounds' checkpoints.
type faultSchedule struct {
	name  string
	put   faults.Rates
	kills map[int]bool
	flips map[int]bool
}

// runFaults drives a Supervisor over a mutating workload through three
// fault schedules — clean, transient store errors (recovered by
// retry), and process kills plus silent image corruption (recovered by
// verified restart with chain fallback) — reporting checkpoint
// overhead and mean time to repair.
func runFaults(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "faults",
		Title: "Supervised checkpointing under injected faults",
		Columns: []string{"Schedule", "Ckpts", "Ckpt fail", "Injected", "Kills",
			"Recoveries", "Skipped tips", "Mean ckpt (ms)", "Mean MTTR (ms)"},
	}
	scale := opt.EffScale()
	bufSize := uint64(float64(1<<20) * scale)
	if bufSize < 64<<10 {
		bufSize = 64 << 10
	}
	const bufs = 4
	const rounds = 8
	const seed = 1337

	reg := crac.NewKernelRegistry().AddTable(kernels.Module, kernels.Table())

	schedules := []faultSchedule{
		{name: "clean"},
		{name: "transient I/O", put: faults.Rates{Transient: 0.3}},
		{name: "kills + corruption", kills: map[int]bool{2: true, 6: true}, flips: map[int]bool{6: true}},
	}

	ctx := context.Background()
	for _, sched := range schedules {
		opt.logf("faults: schedule %q", sched.name)
		inj := faults.New(faults.Config{Seed: seed, Put: sched.put})
		store := crac.NewFaultStore(crac.NewMemStore(), inj)

		// The supervised "process": a session holding a few mutating
		// device buffers. Each recovery builds a fresh one and restarts
		// it from the newest verified image.
		var probe uint64
		factory := func() (*crac.Session, error) {
			s, err := crac.New(crac.WithWorkers(0), crac.WithKernels(reg))
			if err != nil {
				return nil, err
			}
			rt := s.Runtime()
			fat, err := rt.RegisterFatBinary(kernels.Module)
			if err != nil {
				s.Close()
				return nil, err
			}
			for name, k := range kernels.Table() {
				if err := rt.RegisterFunction(fat, name, k); err != nil {
					s.Close()
					return nil, err
				}
			}
			for i := 0; i < bufs; i++ {
				d, err := rt.Malloc(bufSize)
				if err != nil {
					s.Close()
					return nil, err
				}
				if err := rt.Memset(d, byte(0x11*i+1), bufSize); err != nil {
					s.Close()
					return nil, err
				}
				probe = d
			}
			return s, nil
		}

		verifySkips := 0
		sv, err := crac.NewSupervisor(crac.SupervisorConfig{
			Factory: factory,
			Store:   store,
			Prefix:  "g",
			Retry: crac.RetryPolicy{
				MaxAttempts: 5,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
				Multiplier:  2,
				Jitter:      0.2,
			},
			OnEvent: func(ev crac.SupervisorEvent) {
				if ev.Kind == "verify-skip" {
					verifySkips++
				}
				opt.logf("faults: %s event %s %s %v", sched.name, ev.Kind, ev.Name, ev.Err)
			},
		})
		if err != nil {
			return nil, err
		}

		kills := 0
		mutate := func(r int) error {
			// The workload mutates between checkpoints (ASLR is off, so
			// the probe address survives recoveries byte-identically).
			return sv.Session().Runtime().Memset(probe, byte(r+1), bufSize)
		}
		for r := 0; r < rounds; r++ {
			if err := mutate(r); err != nil {
				// The workload found a dead session: recover and retry,
				// exactly what the supervised loop exists for.
				if rerr := sv.Recover(ctx); rerr != nil {
					sv.Close()
					return nil, fmt.Errorf("faults: %s round %d recover: %w", sched.name, r, rerr)
				}
				if err = mutate(r); err != nil {
					sv.Close()
					return nil, fmt.Errorf("faults: %s round %d mutate: %w", sched.name, r, err)
				}
			}
			if sched.flips[r] {
				// This round's image commits with one silently flipped
				// bit: only the verified-restart path can catch it.
				inj.FailNext(faults.OpPut, faults.KindBitFlip)
			}
			if err := sv.Checkpoint(ctx); err != nil {
				opt.logf("faults: %s round %d checkpoint: %v", sched.name, r, err)
			}
			if sched.kills[r] {
				// Simulated process crash: the session dies, the
				// supervisor is told, and the next checkpoint recovers.
				kills++
				sv.Session().Close()
				sv.ReportFailure(fmt.Errorf("injected crash after round %d", r))
			}
		}
		st := sv.Stats()
		sv.Close()

		meanCkpt := time.Duration(0)
		if st.Checkpoints > 0 {
			meanCkpt = st.CheckpointTime / time.Duration(st.Checkpoints)
		}
		recoveries := st.Recoveries + st.ColdStarts
		meanMTTR := time.Duration(0)
		if recoveries > 0 {
			meanMTTR = st.TotalMTTR / time.Duration(recoveries)
		}
		ms := func(d time.Duration) string {
			return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
		}
		t.AddRow(sched.name,
			fmt.Sprint(st.Checkpoints),
			fmt.Sprint(st.CheckpointFailures),
			fmt.Sprint(inj.Injected()),
			fmt.Sprint(kills),
			fmt.Sprint(recoveries),
			fmt.Sprint(verifySkips),
			ms(meanCkpt),
			ms(meanMTTR))
	}
	t.Note("MTTR = failure detection until a verified session is executing again (restart from newest intact image, chain fallback on corruption)")
	t.Note("transient store faults recover via bounded-backoff retry; silent bit flips are caught by image verification and skipped during recovery")
	return []*Table{t}, nil
}
