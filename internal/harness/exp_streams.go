package harness

import (
	"fmt"
	"time"

	"repro/internal/gpusim"
	"repro/internal/workloads"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/hypre"
	"repro/internal/workloads/lulesh"
	"repro/internal/workloads/rodinia"
	"repro/internal/workloads/streamapps"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Application benchmark characterization (Table 1)",
		Paper: "Rodinia 38–132K CPS no UVM/streams; LULESH 2.5K CPS streams 2–32; simpleStreams 10K CPS streams 4–128; UMS 4.4K CPS UVM+streams; HPGMG-FV 35K CPS UVM; HYPRE 600 CPS UVM+streams 1–10",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "fig4a",
		Title: "simpleStreams total runtime vs kernel iterations (Figure 4a)",
		Paper: "total runtime grows with niterations; CRAC tracks native within ~1%",
		Run:   runFig4a,
	})
	register(&Experiment{
		ID:    "fig4b",
		Title: "single-kernel execution time, streamed (128) vs non-streamed (Figure 4b)",
		Paper: "streamed per-kernel time far below non-streamed, gap growing with niterations; CRAC adds no kernel-time overhead",
		Run:   runFig4b,
	})
	register(&Experiment{
		ID:    "fig5a",
		Title: "stream-oriented benchmark runtimes: simpleStreams, UMS, LULESH (Figure 5a)",
		Paper: "CRAC within ~2% of native (SS <1%, UMS 1.5%, LULESH <2%); 128 streams for SS/UMS",
		Run:   runFig5a,
	})
	register(&Experiment{
		ID:    "fig5b",
		Title: "real-world benchmark runtimes: HPGMG-FV and HYPRE (Figure 5b)",
		Paper: "CRAC <2% overhead on HPGMG-FV (35K CPS), ~3% on HYPRE (600 CPS, large UVM)",
		Run:   runFig5b,
	})
	register(&Experiment{
		ID:    "fig5c",
		Title: "checkpoint/restart times and image sizes for the five stream/real-world apps (Figure 5c)",
		Paper: "ckpt and restart ≤ ~1.75s; HPGMG restart dominated by API replay; HYPRE image largest (2.3GB)",
		Run:   runFig5c,
	})
}

// streamFamilies returns the five stream-oriented and real-world apps of
// Figures 5a–5c in paper order, with their default run configs.
func streamFamilies(opt Options) []struct {
	app *workloads.App
	cfg workloads.RunConfig
} {
	scale := opt.EffScale()
	return []struct {
		app *workloads.App
		cfg workloads.RunConfig
	}{
		{streamapps.SimpleStreams(), workloads.RunConfig{Scale: scale, Streams: 128, Iters: 50, Reps: 15, Seed: 7}},
		{streamapps.UnifiedMemoryStreams(), workloads.RunConfig{Scale: scale, Streams: 128, Seed: 12701}},
		{lulesh.App(), workloads.RunConfig{Scale: scale, Streams: 8, Seed: 7}},
		{hpgmg.App(), workloads.RunConfig{Scale: scale, Seed: 7}},
		{hypre.App(), workloads.RunConfig{Scale: scale, Streams: 4, Seed: 7}},
	}
}

func runTable1(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	scale := opt.EffScale()
	t := &Table{
		ID:      "table1",
		Title:   "Application benchmarks characterization",
		Columns: []string{"Application", "UVM", "Streams", "CPS (measured)", "# streams"},
	}
	check := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}

	// Rodinia is characterized as a family with a CPS range.
	minCPS, maxCPS := 0.0, 0.0
	for _, app := range rodinia.Apps() {
		opt.logf("table1: %s", app.Name)
		res, err := runOnce(ModeCRAC, prop, app, workloads.RunConfig{Scale: scale, Seed: 7})
		if err != nil {
			return nil, err
		}
		cps := res.CPS()
		if minCPS == 0 || cps < minCPS {
			minCPS = cps
		}
		if cps > maxCPS {
			maxCPS = cps
		}
	}
	t.AddRow("Rodinia", "no", "no",
		fmt.Sprintf("%s-%s", fmtCalls(uint64(minCPS)), fmtCalls(uint64(maxCPS))), "-")

	for _, f := range streamFamilies(opt) {
		opt.logf("table1: %s", f.app.Name)
		res, err := runOnce(ModeCRAC, prop, f.app, f.cfg)
		if err != nil {
			return nil, err
		}
		streams := "-"
		if f.app.Char.Streams {
			streams = fmt.Sprintf("%d-%d", f.app.Char.MinStreams, f.app.Char.MaxStreams)
		}
		t.AddRow(f.app.Name, check(f.app.Char.UVM), check(f.app.Char.Streams),
			fmtCalls(uint64(res.CPS())), streams)
	}
	t.Note("paper's Table 1: Rodinia 38-132K, LULESH 2.5K, simpleStreams 10K, UMS 4.4K, HPGMG-FV 35K, HYPRE 600 CPS")
	return []*Table{t}, nil
}

// simpleStreamsSweep runs simpleStreams across the paper's niterations
// values under native and CRAC (interleaved, medians), returning results
// keyed by niter with the median runtime installed in Elapsed.
func simpleStreamsSweep(opt Options) (niters []int, native, cracRes map[int]workloads.Result, err error) {
	prop := gpusim.TeslaV100()
	app := streamapps.SimpleStreams()
	niters = []int{5, 10, 100, 500}
	if opt.Quick {
		niters = []int{5, 10}
	}
	iters := opt.EffIters()
	native = make(map[int]workloads.Result)
	cracRes = make(map[int]workloads.Result)
	for _, ni := range niters {
		reps := 8
		if ni < 100 {
			reps = 32 // short kernels need more repetitions to rise above noise
		}
		cfg := workloads.RunConfig{Scale: opt.EffScale() * 0.25, Streams: 128, Iters: ni, Reps: reps, Seed: 7}
		opt.logf("simpleStreams sweep: niterations=%d", ni)
		med, last, e := measureModes([]Mode{ModeNative, ModeCRAC}, prop, app, cfg, iters)
		if e != nil {
			return nil, nil, nil, e
		}
		rn, rc := last[ModeNative], last[ModeCRAC]
		rn.Elapsed = time.Duration(med[ModeNative] * float64(time.Second))
		rc.Elapsed = time.Duration(med[ModeCRAC] * float64(time.Second))
		native[ni] = rn
		cracRes[ni] = rc
	}
	return niters, native, cracRes, nil
}

func runFig4a(opt Options) ([]*Table, error) {
	niters, native, cracRes, err := simpleStreamsSweep(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4a",
		Title:   "simpleStreams total runtime vs iterations within the CUDA kernel",
		Columns: []string{"niterations", "native (s)", "CRAC (s)", "overhead %"},
	}
	for _, ni := range niters {
		n, c := native[ni].Elapsed.Seconds(), cracRes[ni].Elapsed.Seconds()
		t.AddRow(fmt.Sprintf("%d", ni), fmtF(n, 3), fmtF(c, 3), fmtF(overheadPct(c, n), 1))
	}
	t.Note("1000 streamed + 1000 non-streamed kernels in the paper; scaled repetitions here")
	return []*Table{t}, nil
}

func runFig4b(opt Options) ([]*Table, error) {
	niters, native, cracRes, err := simpleStreamsSweep(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig4b",
		Title: "time to execute one CUDA kernel, non-streamed vs 128 streams",
		Columns: []string{"niterations", "native non-streamed (ms)", "CRAC non-streamed (ms)",
			"native 128 streams (ms)", "CRAC 128 streams (ms)"},
	}
	for _, ni := range niters {
		nd, cd := native[ni].Detail, cracRes[ni].Detail
		t.AddRow(fmt.Sprintf("%d", ni),
			fmtF(nd["kernel_ms_nonstreamed"], 3), fmtF(cd["kernel_ms_nonstreamed"], 3),
			fmtF(nd["kernel_ms_streamed"], 3), fmtF(cd["kernel_ms_streamed"], 3))
	}
	t.Note("streamed kernels cover 1/128th of the data each, so per-kernel time drops sharply (paper Figure 4b)")
	return []*Table{t}, nil
}

func runFig5a(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	iters := opt.EffIters()
	t := &Table{
		ID:      "fig5a",
		Title:   "Runtimes of stream-oriented benchmarks (SS=simpleStreams, UMS=UnifiedMemoryStreams)",
		Columns: []string{"Benchmark", "native (s)", "CRAC (s)", "overhead %", "CUDA calls"},
	}
	for _, f := range streamFamilies(opt)[:3] { // SS, UMS, LULESH
		opt.logf("fig5a: %s", f.app.Name)
		med, res, err := measureModes([]Mode{ModeNative, ModeCRAC}, prop, f.app, f.cfg, iters)
		if err != nil {
			return nil, err
		}
		nat, cr := med[ModeNative], med[ModeCRAC]
		t.AddRow(f.app.Name, fmtF(nat, 3), fmtF(cr, 3), fmtF(overheadPct(cr, nat), 1),
			fmtCalls(res[ModeCRAC].Calls.TotalCUDACalls()))
	}
	t.Note("SS and UMS at 128 streams (the V100 concurrent-kernel maximum)")
	return []*Table{t}, nil
}

func runFig5b(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	iters := opt.EffIters()
	t := &Table{
		ID:      "fig5b",
		Title:   "Runtimes of real-world benchmarks",
		Columns: []string{"Benchmark", "native (s)", "CRAC (s)", "overhead %", "CUDA calls", "CPS"},
	}
	for _, f := range streamFamilies(opt)[3:] { // HPGMG, HYPRE
		opt.logf("fig5b: %s", f.app.Name)
		med, res, err := measureModes([]Mode{ModeNative, ModeCRAC}, prop, f.app, f.cfg, iters)
		if err != nil {
			return nil, err
		}
		nat, cr := med[ModeNative], med[ModeCRAC]
		t.AddRow(f.app.Name, fmtF(nat, 3), fmtF(cr, 3), fmtF(overheadPct(cr, nat), 1),
			fmtCalls(res[ModeCRAC].Calls.TotalCUDACalls()), fmtCalls(uint64(res[ModeCRAC].CPS())))
	}
	return []*Table{t}, nil
}

func runFig5c(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	t := &Table{
		ID:      "fig5c",
		Title:   "Checkpoint and restart times with image sizes (stream + real-world apps)",
		Columns: []string{"Benchmark", "checkpoint (s)", "restart (s)", "image size", "restart/ckpt"},
	}
	for _, f := range streamFamilies(opt) {
		opt.logf("fig5c: %s", f.app.Name)
		ck, rs, size, _, err := checkpointMidRun(prop, f.app, f.cfg)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ck > 0 {
			ratio = rs.Seconds() / ck.Seconds()
		}
		t.AddRow(f.app.Name, fmtF(ck.Seconds(), 3), fmtF(rs.Seconds(), 3),
			FmtBytes(uint64(size)), fmtF(ratio, 2))
	}
	t.Note("paper: HPGMG restart ≈1.75s dominated by CUDA API replay; HYPRE image largest (2.3GB at 250³)")
	return []*Table{t}, nil
}
