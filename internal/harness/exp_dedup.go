package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	crac "repro"
)

func init() {
	register(&Experiment{
		ID:    "dedup",
		Title: "Content-addressed storage: bytes stored and checkpoint cost, plain vs CAS",
		Paper: "beyond the paper: chunk-level dedup across sessions and generations — many mostly-identical images collapse to one set of shard chunks plus small manifests",
		Run:   runDedup,
	})
}

// dedupSession builds one session with a deterministic spread of host
// buffers; fill selects the byte pattern so sessions can be made
// mostly identical with a small per-session twist.
func dedupSession(bufSize uint64, bufs int, fill byte) (*crac.Session, []uint64, error) {
	s, err := crac.New(crac.WithWorkers(0), crac.WithIncremental(64),
		crac.WithShardSize(256<<10))
	if err != nil {
		return nil, nil, err
	}
	rt := s.Runtime()
	var host []uint64
	for i := 0; i < bufs; i++ {
		h, err := rt.HostAlloc(bufSize)
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		// All but the last buffer share content across sessions; the
		// last one carries the per-session fill — the ~3% that differs.
		pat := byte(i + 1)
		if i == bufs-1 {
			pat = fill
		}
		if err := rt.Memset(h, pat, bufSize); err != nil {
			s.Close()
			return nil, nil, err
		}
		host = append(host, h)
	}
	return s, host, nil
}

// storedBytes sums the size of every entry a store lists.
func storedBytes(ctx context.Context, s crac.Store) (int64, error) {
	names, err := s.List(ctx)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range names {
		rc, err := s.Get(ctx, n)
		if err != nil {
			return 0, err
		}
		n, err := io.Copy(io.Discard, rc)
		rc.Close()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// runDedup checkpoints a fleet of mostly-identical sessions — several
// generations each, every image a self-contained base (the worst case
// for stored bytes) — through a plain store and through a CASStore,
// and compares bytes on disk and time per checkpoint.
func runDedup(opt Options) ([]*Table, error) {
	scale := opt.EffScale()
	bufSize := uint64(float64(1<<20) * scale)
	if bufSize < 64<<10 {
		bufSize = 64 << 10
	}
	const (
		bufs     = 8
		sessions = 2
		gens     = 3
	)
	ctx := context.Background()

	plain := crac.NewMemStore()
	cstore := crac.NewCASStore(crac.NewMemStore())

	var plainTime, casTime time.Duration
	checkpoints := 0
	for si := 0; si < sessions; si++ {
		s, host, err := dedupSession(bufSize, bufs, byte(0x50+si))
		if err != nil {
			return nil, err
		}
		for g := 0; g < gens; g++ {
			// Dirty one buffer per generation, same pattern in every
			// session, so generations differ but the fleet stays aligned.
			if err := s.Runtime().Memset(host[g%bufs], byte(0xA0+g), bufSize); err != nil {
				s.Close()
				return nil, err
			}
			name := fmt.Sprintf("s%d-gen%d", si, g)
			for _, target := range []struct {
				store crac.Store
				cost  *time.Duration
			}{{plain, &plainTime}, {cstore, &casTime}} {
				s.Rebase()
				t0 := time.Now()
				if _, err := s.CheckpointTo(ctx, target.store, name); err != nil {
					s.Close()
					return nil, err
				}
				*target.cost += time.Since(t0)
			}
			checkpoints++
		}
		s.Close()
		opt.logf("dedup: session %d done (%d generations)", si, gens)
	}

	plainBytes, err := storedBytes(ctx, plain)
	if err != nil {
		return nil, err
	}
	casBytes, err := storedBytes(ctx, cstore.Backing())
	if err != nil {
		return nil, err
	}
	rep, err := crac.DedupReport(ctx, cstore)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		ID:    "dedup",
		Title: "Stored bytes and checkpoint cost: plain store vs content-addressed store",
		Columns: []string{"Config", "Images", "Stored (MB)", "Dedup ratio",
			"Checkpoint (ms)"},
	}
	mb := func(n int64) string { return fmt.Sprintf("%.2f", float64(n)/(1<<20)) }
	perCkpt := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000/float64(checkpoints))
	}
	tab.AddRow("plain", fmt.Sprint(sessions*gens), mb(plainBytes), "1.00", perCkpt(plainTime))
	tab.AddRow("cas", fmt.Sprint(sessions*gens), mb(casBytes),
		fmt.Sprintf("%.2f", rep.Ratio()), perCkpt(casTime))
	tab.Note("%d sessions x %d generations, every image a full base; %d unique chunks carry %d references (%.1fx), %.2f MB reduced to %.2f MB",
		sessions, gens, rep.Chunks, rep.ChunkRefs, rep.Ratio(),
		float64(plainBytes)/(1<<20), float64(casBytes)/(1<<20))
	return []*Table{tab}, nil
}
