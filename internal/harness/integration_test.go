package harness

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/workloads"
	"repro/internal/workloads/hpgmg"
	"repro/internal/workloads/hypre"
	"repro/internal/workloads/lulesh"
	"repro/internal/workloads/rodinia"
	"repro/internal/workloads/streamapps"
)

// allApps returns every benchmark application with a CI-sized config.
func allApps() []struct {
	app *workloads.App
	cfg workloads.RunConfig
} {
	tiny := workloads.RunConfig{Scale: 0.12, Seed: 7}
	out := []struct {
		app *workloads.App
		cfg workloads.RunConfig
	}{}
	for _, a := range rodinia.AllApps() {
		out = append(out, struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{a, tiny})
	}
	out = append(out,
		struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{streamapps.SimpleStreams(), workloads.RunConfig{Scale: 0.12, Streams: 16, Reps: 2, Iters: 3, Seed: 7}},
		struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{streamapps.UnifiedMemoryStreams(), workloads.RunConfig{Scale: 0.12, Streams: 16, Seed: 12701}},
		struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{lulesh.App(), workloads.RunConfig{Scale: 0.3, Streams: 4, Seed: 7}},
		struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{hpgmg.App(), workloads.RunConfig{Scale: 0.3, Seed: 7}},
		struct {
			app *workloads.App
			cfg workloads.RunConfig
		}{hypre.App(), workloads.RunConfig{Scale: 0.3, Streams: 2, Seed: 7}},
	)
	return out
}

// TestAppsNativeVsCRACChecksums verifies that every application computes
// bit-identical results natively and under CRAC — CRAC's transparency at
// runtime.
func TestAppsNativeVsCRACChecksums(t *testing.T) {
	prop := gpusim.TeslaV100()
	for _, tc := range allApps() {
		tc := tc
		t.Run(tc.app.Name, func(t *testing.T) {
			rn, err := runOnce(ModeNative, prop, tc.app, tc.cfg)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			rc, err := runOnce(ModeCRAC, prop, tc.app, tc.cfg)
			if err != nil {
				t.Fatalf("CRAC: %v", err)
			}
			if rn.Checksum != rc.Checksum {
				t.Fatalf("checksum mismatch: native %v vs CRAC %v", rn.Checksum, rc.Checksum)
			}
			if rc.Calls.TotalCUDACalls() == 0 {
				t.Fatal("no CUDA calls counted")
			}
		})
	}
}

// TestAppsCheckpointRestartTransparency is DESIGN.md invariant 3: for
// every application, run-to-completion output equals the output of
// run→checkpoint→kill→restart→completion, with the checkpoint taken
// mid-run.
func TestAppsCheckpointRestartTransparency(t *testing.T) {
	prop := gpusim.TeslaV100()
	for _, tc := range allApps() {
		tc := tc
		t.Run(tc.app.Name, func(t *testing.T) {
			plain, err := runOnce(ModeCRAC, prop, tc.app, tc.cfg)
			if err != nil {
				t.Fatalf("uninterrupted: %v", err)
			}
			_, _, _, res, err := checkpointMidRun(prop, tc.app, tc.cfg)
			if err != nil {
				t.Fatalf("checkpointMidRun: %v", err)
			}
			if res.Checksum != plain.Checksum {
				t.Fatalf("transparency violated: %v (with ckpt+restart) vs %v (plain)",
					res.Checksum, plain.Checksum)
			}
		})
	}
}

// TestUVMFreeAppsUnderProxy runs the non-UVM applications under the
// proxy baseline and checks result equality — establishing that the
// Table 3 comparison is apples-to-apples.
func TestUVMFreeAppsUnderProxy(t *testing.T) {
	prop := gpusim.TeslaV100()
	tiny := workloads.RunConfig{Scale: 0.1, Seed: 7}
	for _, name := range []string{"BFS", "Hotspot", "Kmeans", "NW"} {
		app := rodinia.ByName(name)
		t.Run(name, func(t *testing.T) {
			rn, err := runOnce(ModeNative, prop, app, tiny)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			rp, err := runOnce(ModeProxyCMA, prop, app, tiny)
			if err != nil {
				t.Fatalf("proxy: %v", err)
			}
			if rn.Checksum != rp.Checksum {
				t.Fatalf("checksum mismatch: native %v vs proxy %v", rn.Checksum, rp.Checksum)
			}
		})
	}
}

// TestFSGSBaseModeRuns exercises the FSGSBASE switcher end to end.
func TestFSGSBaseModeRuns(t *testing.T) {
	prop := gpusim.QuadroK600()
	app := rodinia.ByName("Hotspot")
	cfg := workloads.RunConfig{Scale: 0.1, Seed: 7}
	rn, err := runOnce(ModeNative, prop, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := runOnce(ModeCRACFSGSBase, prop, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Checksum != rf.Checksum {
		t.Fatalf("checksum mismatch under FSGSBASE: %v vs %v", rn.Checksum, rf.Checksum)
	}
}

// TestModeStrings pins the mode labels used in tables.
func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNative:       "native",
		ModeCRAC:         "CRAC",
		ModeCRACFSGSBase: "CRAC (FSGSBASE)",
		ModeProxyPipe:    "proxy (pipe IPC)",
		ModeProxyCMA:     "CMA/IPC",
	} {
		if m.String() != want {
			t.Fatalf("mode %d = %q", int(m), m.String())
		}
	}
}
