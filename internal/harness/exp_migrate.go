package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	crac "repro"
	"repro/internal/kernels"
)

func init() {
	register(&Experiment{
		ID:    "migrate",
		Title: "Live migration: pre-copy convergence and downtime vs stop-copy-restart",
		Paper: "beyond the paper: CRAC's incremental chain as the pre-copy stream — iterative v3 deltas while the source runs, one CoW cut for the tail, lazy activation at the destination",
		Run:   runMigrate,
	})
}

// migSession builds one source session with the experiment's workload:
// registered kernels, a spread of host and device buffers, and a
// deterministic fill.
func migSession(bufSize uint64, bufs int) (*crac.Session, *crac.KernelRegistry, []uint64, []uint64, error) {
	reg := crac.NewKernelRegistry().AddTable(kernels.Module, kernels.Table())
	s, err := crac.New(crac.WithWorkers(0), crac.WithIncremental(64),
		crac.WithShardSize(256<<10), crac.WithKernels(reg))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		s.Close()
		return nil, nil, nil, nil, err
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			s.Close()
			return nil, nil, nil, nil, err
		}
	}
	var host, dev []uint64
	for i := 0; i < bufs; i++ {
		h, err := rt.HostAlloc(bufSize)
		if err != nil {
			s.Close()
			return nil, nil, nil, nil, err
		}
		if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
			s.Close()
			return nil, nil, nil, nil, err
		}
		host = append(host, h)
		d, err := rt.Malloc(bufSize)
		if err != nil {
			s.Close()
			return nil, nil, nil, nil, err
		}
		if err := rt.Memset(d, byte(0x31*i+7), bufSize); err != nil {
			s.Close()
			return nil, nil, nil, nil, err
		}
		dev = append(dev, d)
	}
	return s, reg, host, dev, nil
}

// runMigrate compares moving a running session to a second one via
// stop-copy-restart (quiesce, full checkpoint, eager restore — the
// whole image inside the outage) against Migrate's iterative pre-copy
// (deltas stream while the source executes; only the final CoW cut and
// the lazy activation sit in the outage). Mutators dirty memory
// throughout, so the pre-copy rounds must actually converge.
func runMigrate(opt Options) ([]*Table, error) {
	scale := opt.EffScale()
	bufSize := uint64(float64(1<<20) * scale)
	if bufSize < 64<<10 {
		bufSize = 64 << 10
	}
	const bufs = 12
	iters := opt.EffIters()
	ctx := context.Background()

	roundsTab := &Table{
		ID:    "migrate-rounds",
		Title: "Pre-copy rounds (bytes per round, last migration)",
		Columns: []string{"Round", "Image", "Kind", "Payload", "Dirty shards",
			"Pause (ms)", "Write (ms)"},
	}
	sum := &Table{
		ID:    "migrate",
		Title: "Session handoff downtime: stop-copy-restart vs live migration",
		Columns: []string{"Path", "Downtime (ms)", "In-outage bytes", "Pre-copied",
			"Rounds", "Speedup"},
	}

	// Baseline: stop-copy-restart. Everything — the full checkpoint and
	// the eager restore — happens while the session is stopped.
	var baseDown time.Duration
	var baseBytes uint64
	for i := 0; i < iters; i++ {
		opt.logf("migrate: stop-copy baseline iteration %d", i)
		s, reg, _, _, err := migSession(bufSize, bufs)
		if err != nil {
			return nil, err
		}
		dst := crac.NewMemStore()
		t0 := time.Now()
		if err := s.Quiesce(); err != nil {
			s.Close()
			return nil, err
		}
		st, err := s.CheckpointTo(ctx, dst, "stopcopy")
		if err != nil {
			s.Close()
			return nil, err
		}
		s2, err := crac.RestoreFrom(ctx, dst, "stopcopy", crac.WithKernels(reg))
		if err != nil {
			s.Close()
			return nil, err
		}
		down := time.Since(t0)
		if i == 0 || down < baseDown {
			baseDown = down
			baseBytes = st.PayloadWritten
		}
		s2.Close()
		s.Resume()
		s.Close()
	}

	// Live migration: mutators keep dirtying a window of buffers while
	// the pre-copy rounds stream, so convergence is earned, not given.
	var migDown time.Duration
	var best crac.MigrateReport
	for i := 0; i < iters; i++ {
		opt.logf("migrate: live migration iteration %d", i)
		s, _, host, dev, err := migSession(bufSize, bufs)
		if err != nil {
			return nil, err
		}
		rt := s.Runtime()
		src, dst := crac.NewMemStore(), crac.NewMemStore()
		stopMut := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The mutator hammers a bounded hot set (two host + two
			// device buffers) — the usual working-set shape pre-copy
			// converges on. Dirtying the whole footprint every round
			// would make pre-copy pointless by construction.
			hot := 2
			window := bufSize / 8
			for i := 0; ; i++ {
				select {
				case <-stopMut:
					return
				default:
				}
				if err := rt.Memset(host[i%hot], byte(i), window); err != nil {
					return
				}
				if err := rt.Memset(dev[i%hot], byte(i+3), window); err != nil {
					return
				}
			}
		}()
		m, err := crac.Migrate(ctx, s, src, dst,
			crac.WithMigrateRounds(6), crac.WithMigrateRoundDelay(time.Millisecond))
		if err != nil {
			close(stopMut)
			s.Close()
			return nil, err
		}
		if err := m.Wait(); err != nil {
			close(stopMut)
			s.Close()
			return nil, err
		}
		if i == 0 || m.Report.Downtime < migDown {
			migDown = m.Report.Downtime
			best = *m.Report
		}
		m.Dest.Close()
		close(stopMut)
		s.Resume()
		wg.Wait()
		s.Close()
	}

	for i, r := range best.Rounds {
		kind := "base"
		if r.Delta {
			kind = "delta"
		}
		if r.Final {
			kind += " (final cut)"
		}
		roundsTab.AddRow(fmt.Sprint(i), r.Name, kind, FmtBytes(r.PayloadBytes),
			fmt.Sprintf("%d/%d", r.DirtyShards, r.TotalShards),
			fmt.Sprintf("%.3f", float64(r.Pause.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(r.Duration.Microseconds())/1000))
	}
	roundsTab.Note("pre-copy rounds run with the source executing (mutators live); only the final cut pauses it")
	roundsTab.Note("converged=%v: true when the delta fell under the convergence threshold; a plateaued dirty rate (steady mutators) also ends pre-copy", best.Converged)

	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
	}
	speedup := 0.0
	if migDown > 0 {
		speedup = float64(baseDown) / float64(migDown)
	}
	sum.AddRow("stop-copy-restart", ms(baseDown), FmtBytes(baseBytes), "0B", "1",
		"1.0x")
	sum.AddRow("live migration", ms(migDown), FmtBytes(best.FinalBytes),
		FmtBytes(best.PreCopyBytes), fmt.Sprint(len(best.Rounds)),
		fmt.Sprintf("%.1fx", speedup))
	sum.Note("downtime: source stopped until the destination executes (migration activates lazily via RestartAsync)")
	sum.Note("in-outage bytes: payload written while the session was stopped — the final CoW cut for migration, the whole image for stop-copy")
	return []*Table{sum, roundsTab}, nil
}
