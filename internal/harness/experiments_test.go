package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryComplete pins the experiment inventory against DESIGN.md's
// per-experiment index.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "fig2", "fig3", "fig6", "table1", "fig4a", "fig4b",
		"fig5a", "fig5b", "fig5c", "table3", "intro", "ablations", "pause", "restart",
		"faults", "migrate", "dedup"}
	have := make(map[string]bool)
	for _, e := range All() {
		have[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if ByID("nonexistent") != nil {
		t.Fatal("ByID returned something for a bogus id")
	}
}

// TestAllExperimentsQuick regenerates every paper artifact in Quick mode
// — the end-to-end proof that the whole evaluation harness works.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tab.Title)
				}
				if len(tab.Columns) == 0 {
					t.Fatalf("%s table %q has no columns", e.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("1", "hello, world")
	tab.AddRow("22", "y")
	tab.Note("footnote %d", 7)

	var txt bytes.Buffer
	tab.Fprint(&txt)
	out := txt.String()
	for _, want := range []string{"demo", "hello, world", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	tab.CSV(&csv)
	if !strings.Contains(csv.String(), `"hello, world"`) {
		t.Fatalf("csv did not quote comma cell:\n%s", csv.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.EffScale() != 1 || o.EffIters() != 3 {
		t.Fatalf("defaults: scale=%v iters=%d", o.EffScale(), o.EffIters())
	}
	q := Options{Quick: true}
	if q.EffScale() >= 1 || q.EffIters() != 1 {
		t.Fatalf("quick: scale=%v iters=%d", q.EffScale(), q.EffIters())
	}
}

func TestFormatHelpers(t *testing.T) {
	if FmtBytes(2<<30) != "2.0GB" || FmtBytes(5<<20) != "5MB" || FmtBytes(3<<10) != "3KB" || FmtBytes(12) != "12B" {
		t.Fatal("fmtBytes")
	}
	if fmtCalls(2_500_000) != "2.5M" || fmtCalls(35_000) != "35K" || fmtCalls(120) != "120" {
		t.Fatal("fmtCalls")
	}
	if overheadPct(1.02, 1.0) < 1.9 || overheadPct(1.02, 1.0) > 2.1 {
		t.Fatal("overheadPct")
	}
	if overheadPct(1, 0) != 0 {
		t.Fatal("overheadPct zero base")
	}
}
