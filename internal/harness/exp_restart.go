package harness

import (
	"context"
	"fmt"
	"os"
	"time"

	crac "repro"
	"repro/internal/crt"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:    "restart",
		Title: "Time-to-first-kernel: eager vs lazy on-demand restart",
		Paper: "beyond the paper: restore latency dominates GPU C/R in serving (PhoenixOS/CRIUgpu); lazy restart shrinks it to metadata + replay",
		Run:   runRestart,
	})
}

// runRestart measures, on the standard sparse-update workload, how
// long a restarted session takes to complete its first kernel: the
// eager path decodes and refills the whole image first, while the lazy
// path (RestartAsync) replays only the log, faults the kernel's pages
// in, and drains the rest in the background.
func runRestart(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "restart",
		Title: "Restart time-to-first-kernel (eager vs lazy)",
		Columns: []string{"Path", "Visible (ms)", "TTFK (ms)", "Drain (ms)",
			"Image", "Speedup"},
	}
	scale := opt.EffScale()
	bufSize := uint64(float64(2<<20) * scale)
	if bufSize < 64<<10 {
		bufSize = 64 << 10
	}
	const bufs = 16
	iters := opt.EffIters()

	dir, err := os.MkdirTemp("", "crac-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := crac.NewDirStore(dir, 0, crac.WithNoSync())
	if err != nil {
		return nil, err
	}

	s, err := crac.New(crac.WithWorkers(0))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	rt := s.Runtime()
	fat, err := rt.RegisterFatBinary(kernels.Module)
	if err != nil {
		return nil, err
	}
	for name, k := range kernels.Table() {
		if err := rt.RegisterFunction(fat, name, k); err != nil {
			return nil, err
		}
	}
	var probe uint64
	for i := 0; i < bufs; i++ {
		h, err := rt.HostAlloc(bufSize)
		if err != nil {
			return nil, err
		}
		if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
			return nil, err
		}
		d, err := rt.Malloc(bufSize)
		if err != nil {
			return nil, err
		}
		if err := rt.Memset(d, byte(0x21*i+3), bufSize); err != nil {
			return nil, err
		}
		probe = d
	}
	ctx := context.Background()
	if _, err := s.CheckpointTo(ctx, store, "img"); err != nil {
		return nil, err
	}
	imgSize := uint64(0)
	if fi, err := os.Stat(dir + "/img.img"); err == nil {
		imgSize = uint64(fi.Size())
	}

	firstKernel := func() error {
		if err := rt.LaunchKernel(fat, "fill", workloads.Launch1D(int(bufSize/4)), crt.DefaultStream,
			probe, kernels.F32Arg(2), bufSize/4); err != nil {
			return err
		}
		return rt.DeviceSynchronize()
	}

	var eagerTTFK, lazyTTFK, lazyVisible, lazyDrain time.Duration
	for i := 0; i < iters; i++ {
		opt.logf("restart: eager iteration %d", i)
		t0 := time.Now()
		if err := s.RestartFrom(ctx, store, "img"); err != nil {
			return nil, err
		}
		if err := firstKernel(); err != nil {
			return nil, err
		}
		eagerTTFK += time.Since(t0)
	}
	for i := 0; i < iters; i++ {
		opt.logf("restart: lazy iteration %d", i)
		t0 := time.Now()
		p, err := s.RestartAsync(ctx, store, "img")
		if err != nil {
			return nil, err
		}
		visible := time.Since(t0)
		if err := firstKernel(); err != nil {
			return nil, err
		}
		lazyTTFK += time.Since(t0)
		st, err := p.Wait()
		if err != nil {
			return nil, err
		}
		lazyVisible += visible
		lazyDrain += st.RestoreBackgroundDuration
	}
	n := time.Duration(iters)
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64((d/n).Microseconds())/1000)
	}
	speedup := 0.0
	if lazyTTFK > 0 {
		speedup = float64(eagerTTFK) / float64(lazyTTFK)
	}
	t.AddRow("eager", ms(eagerTTFK), ms(eagerTTFK), "0.00", FmtBytes(imgSize), "1.0x")
	t.AddRow("lazy", ms(lazyVisible), ms(lazyTTFK), ms(lazyDrain), FmtBytes(imgSize),
		fmt.Sprintf("%.1fx", speedup))
	t.Note("TTFK = restart start until one kernel launch + sync completes on the restored session")
	t.Note("lazy: metadata + log replay eagerly, shards fault in on access, prefetcher drains in the background (device first, managed last)")
	return []*Table{t}, nil
}
