package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	crac "repro"
	"repro/internal/addrspace"
)

func init() {
	register(&Experiment{
		ID:    "load",
		Title: "Multi-tenant pool under load: checkpoint latency percentiles at N concurrent sessions",
		Paper: "beyond the paper: fleet-level serving — hundreds of sessions share one store, one pipeline worker budget, and one global retained-page budget, with staggered epoch cuts",
		Run:   runLoad,
	})
}

// loadSeed keeps the generated op mix identical across runs, so the
// bench gate compares like with like.
const loadSeed = 1

// loadSessionOpts keeps each pooled session small enough that hundreds
// of them fit one machine: serial per-session pipeline (the pool's
// shared budget provides the parallelism), shrunken lower-half arenas,
// and the snapshot-and-release checkpoint path so cuts genuinely
// retain pages — which is what the pool's page budget governs.
func loadSessionOpts() []crac.Option {
	return []crac.Option{
		crac.WithWorkers(1),
		crac.WithArenaChunks(256<<10, 128<<10, 256<<10),
		crac.WithConcurrentCheckpoint(),
	}
}

const (
	loadHostBuf    = 32 << 10
	loadDevBuf     = 16 << 10
	loadOpsPerSess = 4 // one base checkpoint + three mutate/checkpoint-or-restart ops
)

// loadFill gives one session its working set.
func loadFill(s *crac.Session, pat byte) (host, dev uint64, err error) {
	rt := s.Runtime()
	if host, err = rt.HostAlloc(loadHostBuf); err != nil {
		return 0, 0, err
	}
	if err = rt.Memset(host, pat, loadHostBuf); err != nil {
		return 0, 0, err
	}
	if dev, err = rt.Malloc(loadDevBuf); err != nil {
		return 0, 0, err
	}
	if err = rt.Memset(dev, pat^0xFF, loadDevBuf); err != nil {
		return 0, 0, err
	}
	return host, dev, nil
}

// durSample collects restart latencies (checkpoint latencies come from
// the pool's own sketch).
type durSample struct {
	mu sync.Mutex
	ds []time.Duration
}

func (s *durSample) add(d time.Duration) {
	s.mu.Lock()
	s.ds = append(s.ds, d)
	s.mu.Unlock()
}

func (s *durSample) quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ds) == 0 {
		return 0
	}
	sort.Slice(s.ds, func(i, j int) bool { return s.ds[i] < s.ds[j] })
	idx := int(q*float64(len(s.ds)-1) + 0.5)
	return s.ds[idx]
}

// runLoad drives N concurrent sessions (500 at full scale) through a
// seeded checkpoint/restart/mutate mix against one Pool and reports
// the latency distribution and aggregate throughput. The run fails —
// turning the bench trajectory and tier-1's experiment sweep into an
// enforcement point — if live retained pages or the scheduler's
// reservation ever exceed the configured global budget, or if any
// pages remain retained at drain.
func runLoad(opt Options) ([]*Table, error) {
	sessions := int(500*opt.EffScale() + 0.5)
	if sessions < 48 {
		sessions = 48
	}
	tenants := 16
	if sessions < tenants {
		tenants = sessions
	}
	ctx := context.Background()

	// Probe one session's mapped footprint: the budget is expressed in
	// multiples of it, so the stagger scheduler admits ~8 cuts at once.
	probe, err := crac.New(loadSessionOpts()...)
	if err != nil {
		return nil, err
	}
	if _, _, err := loadFill(probe, 0x11); err != nil {
		probe.Close()
		return nil, err
	}
	sp := probe.Space()
	mapped := sp.MappedBytes(addrspace.HalfUpper) + sp.MappedBytes(addrspace.HalfLower)
	probe.Close()
	perSession := int64((mapped + addrspace.PageSize - 1) / addrspace.PageSize)
	budget := 8 * perSession

	pool, err := crac.NewPool(crac.NewMemStore(),
		crac.WithPoolSessionOptions(loadSessionOpts()...),
		crac.WithPoolPageBudget(budget))
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	type client struct {
		ps        *crac.PoolSession
		host, dev uint64
		rng       *rand.Rand
	}
	clients := make([]*client, sessions)
	for i := range clients {
		ps, err := pool.Open(fmt.Sprintf("tenant%02d", i%tenants))
		if err != nil {
			return nil, fmt.Errorf("load: opening session %d: %w", i, err)
		}
		host, dev, err := loadFill(ps.Session(), byte(i))
		if err != nil {
			return nil, fmt.Errorf("load: filling session %d: %w", i, err)
		}
		clients[i] = &client{ps: ps, host: host, dev: dev,
			rng: rand.New(rand.NewSource(loadSeed + int64(i)))}
	}
	opt.logf("load: %d sessions across %d tenants, page budget %d (%d/session)",
		sessions, tenants, budget, perSession)

	// Sample live retained pages while the fleet churns: the stagger
	// scheduler must keep them under the global budget.
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	var peakRetained atomic.Int64
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := pool.RetainedPages(); n > peakRetained.Load() {
				peakRetained.Store(n)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var (
		ckptBytes    atomic.Int64 // payload through the checkpoint pipeline
		restartBytes atomic.Int64 // payload restored by restarts
		restarts     durSample
		payloadMu    sync.Mutex
		payload      = map[string]int64{} // per-image payload, for restart accounting
	)
	errCh := make(chan error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *client) {
			defer wg.Done()
			rt := c.ps.Session().Runtime()
			gens := 0
			checkpoint := func() error {
				name := fmt.Sprintf("s%03d-g%d", ci, gens)
				st, err := c.ps.Checkpoint(ctx, name)
				if err != nil {
					return fmt.Errorf("session %d checkpoint %q: %w", ci, name, err)
				}
				bytes := int64(st.RegionBytes + st.SectionBytes)
				ckptBytes.Add(bytes)
				payloadMu.Lock()
				payload[name] = bytes
				payloadMu.Unlock()
				gens++
				return nil
			}
			if err := checkpoint(); err != nil {
				errCh <- err
				return
			}
			for op := 1; op < loadOpsPerSess; op++ {
				if err := rt.Memset(c.host, byte(op), loadHostBuf); err != nil {
					errCh <- err
					return
				}
				if err := rt.Memset(c.dev, byte(op+1), loadDevBuf); err != nil {
					errCh <- err
					return
				}
				if c.rng.Intn(4) == 0 {
					name := fmt.Sprintf("s%03d-g%d", ci, gens-1)
					t0 := time.Now()
					if err := c.ps.Restart(ctx, name); err != nil {
						errCh <- fmt.Errorf("session %d restart %q: %w", ci, name, err)
						return
					}
					restarts.add(time.Since(t0))
					payloadMu.Lock()
					restartBytes.Add(payload[name])
					payloadMu.Unlock()
				} else if err := checkpoint(); err != nil {
					errCh <- err
					return
				}
			}
		}(ci, c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	sampler.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	st := pool.Stats()
	if st.ReservedPagePeak > budget {
		return nil, fmt.Errorf("load: reserved pages peaked at %d, over the %d budget", st.ReservedPagePeak, budget)
	}
	if peak := peakRetained.Load(); peak > budget {
		return nil, fmt.Errorf("load: live retained pages peaked at %d, over the %d budget", peak, budget)
	}
	if n := pool.RetainedPages(); n != 0 {
		return nil, fmt.Errorf("load: %d pages still retained at drain", n)
	}
	if st.RejectedQuota != 0 || st.RejectedSaturated != 0 || st.Failures != 0 {
		return nil, fmt.Errorf("load: unexpected rejections/failures: %+v", st)
	}

	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
	}
	mbps := func(n int64) string {
		return fmt.Sprintf("%.1f", float64(n)/(1<<20)/wall.Seconds())
	}
	tab := &Table{
		ID:    "load",
		Title: fmt.Sprintf("Pool load: %d concurrent sessions, checkpoint/restart/mutate mix", sessions),
		Columns: []string{"Op", "p50 (ms)", "p95 (ms)", "p99 (ms)",
			"Ops", "MB/s"},
	}
	tab.AddRow("checkpoint", ms(st.CheckpointP50), ms(st.CheckpointP95), ms(st.CheckpointP99),
		fmt.Sprint(st.Checkpoints), mbps(ckptBytes.Load()))
	tab.AddRow("restart", ms(restarts.quantile(0.50)), ms(restarts.quantile(0.95)), ms(restarts.quantile(0.99)),
		fmt.Sprint(st.Restarts), mbps(restartBytes.Load()))
	tab.Note("%d sessions x %d ops over %d tenants in %.2fs; retained-page budget %d (8x%d/session), reserved peak %d, live peak %d; aggregate %.1f MB/s through the pipeline; 0 rejections",
		sessions, loadOpsPerSess, tenants, wall.Seconds(), budget, perSession,
		st.ReservedPagePeak, peakRetained.Load(),
		float64(ckptBytes.Load()+restartBytes.Load())/(1<<20)/wall.Seconds())
	return []*Table{tab}, nil
}
