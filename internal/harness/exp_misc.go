package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	crac "repro"
	"repro/internal/cracrt"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/proxy"
	"repro/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:    "intro",
		Title: "TOP500 systems with NVIDIA GPUs (introduction chart)",
		Paper: "growth from 0 in 2010 to 136 of 500 in Nov 2019",
		Run:   runIntro,
	})
	register(&Experiment{
		ID:    "ablations",
		Title: "Design-choice ablations (Section 3 motivations, reproduced)",
		Paper: "naive library restore fails post-UVM; ASLR breaks replay; active-malloc images beat whole-arena; CRUM shadow UVM fails on cross-stream writes; dispatch-cost ladder",
		Run:   runAblations,
	})
	register(&Experiment{
		ID:    "pause",
		Title: "Application-visible checkpoint pause: blocking vs concurrent (CoW) × full vs delta",
		Paper: "beyond the paper: the stop-the-world pause shrinks to the epoch cut when the image write overlaps execution (PhoenixOS/CRIUgpu direction)",
		Run:   runPause,
	})
}

// runPause measures the stop-the-world window of every checkpoint
// policy on the standard sparse-update workload: blocking full images,
// blocking incremental deltas, and both again under the concurrent
// snapshot-and-release path, where only the drain + epoch cut + CoW
// arming pauses the application.
func runPause(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "pause",
		Title: "Checkpoint pause vs total latency (sparse-update workload)",
		Columns: []string{"Policy", "Image", "Total (ms)", "Pause (ms)", "Pause share",
			"Payload (MiB)"},
	}
	scale := opt.EffScale()
	bufSize := uint64(float64(2<<20) * scale)
	if bufSize < 64<<10 {
		bufSize = 64 << 10
	}
	const bufs = 16
	iters := opt.EffIters()

	type policy struct {
		name string
		kind string
		opts []crac.Option
	}
	policies := []policy{
		{"blocking", "full", nil},
		{"blocking", "delta", []crac.Option{crac.WithIncremental(64)}},
		{"concurrent", "full", []crac.Option{crac.WithConcurrentCheckpoint()}},
		{"concurrent", "delta", []crac.Option{crac.WithConcurrentCheckpoint(), crac.WithIncremental(64)}},
	}
	for _, p := range policies {
		opt.logf("pause: measuring %s/%s", p.name, p.kind)
		var total, pause time.Duration
		var payload uint64
		err := func() error {
			s, err := crac.New(append([]crac.Option{crac.WithWorkers(0)}, p.opts...)...)
			if err != nil {
				return err
			}
			defer s.Close()
			rt := s.Runtime()
			var host, dev []uint64
			for i := 0; i < bufs; i++ {
				h, err := rt.HostAlloc(bufSize)
				if err != nil {
					return err
				}
				if err := rt.Memset(h, byte(i+1), bufSize); err != nil {
					return err
				}
				host = append(host, h)
				d, err := rt.Malloc(bufSize)
				if err != nil {
					return err
				}
				if err := rt.Memset(d, byte(0x21*i+3), bufSize); err != nil {
					return err
				}
				dev = append(dev, d)
			}
			store := crac.NewMemStore()
			ctx := context.Background()
			if _, err := s.CheckpointTo(ctx, store, "base"); err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := rt.Memset(host[i%bufs]+4096, byte(i), bufSize/8); err != nil {
					return err
				}
				if err := rt.Memset(dev[i%bufs], byte(i+1), bufSize); err != nil {
					return err
				}
				st, err := s.CheckpointTo(ctx, store, fmt.Sprintf("gen%d", i))
				if err != nil {
					return err
				}
				total += st.Duration
				pause += st.PauseDuration
				payload += st.PayloadWritten
				if st.PayloadWritten == 0 { // v2 images carry no shard accounting
					payload += st.RegionBytes + st.SectionBytes
				}
			}
			return nil
		}()
		if err != nil {
			return nil, err
		}
		n := time.Duration(iters)
		t.AddRow(p.name, p.kind,
			fmt.Sprintf("%.2f", float64((total/n).Microseconds())/1000),
			fmt.Sprintf("%.3f", float64((pause/n).Microseconds())/1000),
			fmt.Sprintf("%.1f%%", 100*float64(pause)/float64(total)),
			fmt.Sprintf("%.1f", float64(payload)/float64(iters)/(1<<20)))
	}
	t.Note("concurrent rows pause only for drain + epoch cut + copy-on-write arming; the image write and store commit overlap execution")
	t.Note("images are byte-identical to blocking checkpoints at the same cut (DESIGN.md invariant 10)")
	return []*Table{t}, nil
}

func runIntro(opt Options) ([]*Table, error) {
	t := &Table{
		ID:      "intro",
		Title:   "NVIDIA GPUs among TOP500 supercomputers (November lists)",
		Columns: []string{"Year", "# systems with NVIDIA GPUs"},
	}
	// Values read from the paper's introduction chart; the Nov 2019
	// count (136 of 500) is stated in the text.
	series := []struct {
		year  int
		count int
	}{
		{2010, 8}, {2011, 15}, {2012, 31}, {2013, 38}, {2014, 45},
		{2015, 52}, {2016, 60}, {2017, 87}, {2018, 122}, {2019, 136},
	}
	for _, p := range series {
		t.AddRow(fmt.Sprintf("%d", p.year), fmt.Sprintf("%d", p.count))
	}
	t.Note("static series transcribed from the paper's introduction; 136/500 for Nov 2019 is stated in Section 1")
	return []*Table{t}, nil
}

func runAblations(opt Options) ([]*Table, error) {
	t := &Table{
		ID:      "ablations",
		Title:   "Design-choice ablations",
		Columns: []string{"Ablation", "Outcome", "Detail"},
	}

	// 1. Naive save/restore of the CUDA library's in-memory state (the
	// pre-CUDA-4.0 approach) fails once UVM has been touched.
	if err := ablNaiveRestore(t); err != nil {
		return nil, err
	}
	// 2. Log-and-replay with ASLR enabled detects an address mismatch.
	if err := ablASLR(t); err != nil {
		return nil, err
	}
	// 3. Active-malloc checkpointing vs whole-arena checkpointing.
	if err := ablActiveMalloc(t); err != nil {
		return nil, err
	}
	// 4. CRUM's shadow-page UVM fails when two streams write the same
	// managed region; CRAC runs the identical program.
	if err := ablShadowConflict(t, opt); err != nil {
		return nil, err
	}
	// 5. Dispatch-cost ladder: per-call latency of each binding.
	if err := ablDispatchLadder(t, opt); err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

func ablNaiveRestore(t *Table) error {
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		return err
	}
	defer lib.Destroy()
	if _, err := lib.MallocManaged(1 << 20); err != nil { // touch UVM
		return err
	}
	snapshot := lib.OpaqueStateSnapshot()

	fresh, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		return err
	}
	defer fresh.Destroy()
	if err := fresh.RestoreOpaqueState(snapshot); err != nil {
		return err
	}
	_, err = fresh.Malloc(4096)
	if cuda.CodeOf(err) != cuda.ErrorStateCorrupt {
		return fmt.Errorf("ablation 1: expected corrupted library, got %v", err)
	}
	t.AddRow("naive library save/restore (pre-CUDA-4.0 style)", "FAILS as expected",
		"restored state inconsistent after UVM use (Section 3.1)")
	return nil
}

func ablASLR(t *Table) error {
	s, err := crac.New(crac.WithASLR(99))
	if err != nil {
		return err
	}
	defer s.Close()
	if _, err := s.Runtime().Malloc(1 << 20); err != nil {
		return err
	}
	var img bytes.Buffer
	if _, err := s.Checkpoint(context.Background(), &img); err != nil {
		return err
	}
	err = s.Restart(context.Background(), bytes.NewReader(img.Bytes()))
	if err == nil {
		t.AddRow("log-and-replay with ASLR enabled", "layout happened to match", "rerun with another seed")
		return nil
	}
	if !errors.Is(err, cracrt.ErrReplayMismatch) {
		return fmt.Errorf("ablation 2: expected replay mismatch, got %v", err)
	}
	t.AddRow("log-and-replay with ASLR enabled", "FAILS as expected",
		"replay address mismatch detected; CRAC disables ASLR via personality() (Section 3.2.4)")
	return nil
}

func ablActiveMalloc(t *Table) error {
	s, err := crac.New()
	if err != nil {
		return err
	}
	defer s.Close()
	rt := s.Runtime()
	// A fragmented allocation history: many allocations, most freed.
	var keep []uint64
	for i := 0; i < 200; i++ {
		a, err := rt.Malloc(256 << 10)
		if err != nil {
			return err
		}
		if i%10 == 0 {
			keep = append(keep, a)
		} else if err := rt.Free(a); err != nil {
			return err
		}
	}
	devMapped, devLive, _, _, _, _ := s.Library().ArenaFootprint()
	var img bytes.Buffer
	st, err := s.Checkpoint(context.Background(), &img)
	if err != nil {
		return err
	}
	t.AddRow("active-malloc vs whole-arena checkpointing",
		fmt.Sprintf("image saves %s of %s mapped arena", FmtBytes(devLive), FmtBytes(devMapped)),
		fmt.Sprintf("%dx smaller device payload; %d active of 200 allocations (Section 3.2.3)",
			int(float64(devMapped)/float64(maxU64(devLive, 1))), len(keep)))
	_ = st
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ablShadowConflict launches two kernels on different streams writing
// the same managed region: CRAC handles it (hardware page faults), the
// CRUM-style proxy rejects it.
func ablShadowConflict(t *Table, opt Options) error {
	run := func(rt crt.Runtime) error {
		fat, err := rt.RegisterFatBinary(kernels.Module)
		if err != nil {
			return err
		}
		for name, k := range kernels.Table() {
			if err := rt.RegisterFunction(fat, name, k); err != nil {
				return err
			}
		}
		mgd, err := rt.MallocManaged(1 << 16)
		if err != nil {
			return err
		}
		s1, err := rt.StreamCreate()
		if err != nil {
			return err
		}
		s2, err := rt.StreamCreate()
		if err != nil {
			return err
		}
		n := uint64(1 << 14)
		// Both streams write into the same managed buffer (disjoint
		// elements, same pages).
		if err := rt.LaunchKernel(fat, "fill", workloads.Launch1D(int(n)), s1,
			mgd, kernels.F32Arg(1), n/2); err != nil {
			return err
		}
		if err := rt.LaunchKernel(fat, "fill", workloads.Launch1D(int(n)), s2,
			mgd, kernels.F32Arg(2), n/2); err != nil {
			return err
		}
		return rt.DeviceSynchronize()
	}

	// CRAC: must succeed.
	s, err := crac.New()
	if err != nil {
		return err
	}
	cracErr := run(s.Runtime())
	s.Close()
	if cracErr != nil {
		return fmt.Errorf("ablation 4: CRAC failed the cross-stream UVM write: %v", cracErr)
	}
	// CRUM-style proxy: must reject.
	p, err := proxy.New(proxy.Config{})
	if err != nil {
		return err
	}
	proxyErr := run(p)
	p.Close()
	if !errors.Is(proxyErr, proxy.ErrShadowConflict) {
		return fmt.Errorf("ablation 4: expected shadow conflict from proxy, got %v", proxyErr)
	}
	t.AddRow("two streams writing one managed region",
		"CRAC: ok; CRUM shadow UVM: REJECTED",
		"the UVM limitation of proxy designs (Section 1 item 2)")
	return nil
}

// ablDispatchLadder measures the per-call cost of a small CUDA call
// (cudaMemset of one page) under every binding.
func ablDispatchLadder(t *Table, opt Options) error {
	reps := 2000
	if opt.Quick {
		reps = 200
	}
	modes := []Mode{ModeNative, ModeCRACFSGSBase, ModeCRAC, ModeProxyCMA, ModeProxyPipe}
	var cells []string
	for _, mode := range modes {
		r, err := NewRunner(mode, gpusim.TeslaV100())
		if err != nil {
			return err
		}
		addr, err := r.RT.Malloc(4096)
		if err != nil {
			r.Close()
			return err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := r.RT.Memset(addr, byte(i), 4096); err != nil {
				r.Close()
				return err
			}
		}
		perCall := time.Since(start) / time.Duration(reps)
		r.Close()
		cells = append(cells, fmt.Sprintf("%v %.2fus", mode, float64(perCall.Nanoseconds())/1e3))
	}
	t.AddRow("per-call dispatch cost (cudaMemset 4KB)",
		cells[0]+"; "+cells[1]+"; "+cells[2],
		cells[3]+"; "+cells[4])
	return nil
}
