package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	crac "repro"
	"repro/internal/gpusim"
	"repro/internal/workloads"
	"repro/internal/workloads/rodinia"
)

// runOnce executes app once on a fresh runner of the given mode.
func runOnce(mode Mode, prop gpusim.Properties, app *workloads.App, cfg workloads.RunConfig) (workloads.Result, error) {
	r, err := NewRunner(mode, prop)
	if err != nil {
		return workloads.Result{}, err
	}
	defer r.Close()
	return app.Run(r.RT, cfg)
}

// measureModes times app under each mode with interleaved repetitions:
// one discarded warmup per mode, then iters rounds running every mode
// back to back (so environment noise hits all modes alike), with a GC
// settling the heap before each timed run. The per-mode MEDIAN is
// returned — medians resist the multi-millisecond scheduler flukes of
// shared CI machines better than the paper's mean-of-10 on dedicated
// nodes.
func measureModes(modes []Mode, prop gpusim.Properties, app *workloads.App, cfg workloads.RunConfig, iters int) (median map[Mode]float64, last map[Mode]workloads.Result, err error) {
	median = make(map[Mode]float64, len(modes))
	last = make(map[Mode]workloads.Result, len(modes))
	times := make(map[Mode][]float64, len(modes))
	for _, mode := range modes {
		if _, e := runOnce(mode, prop, app, cfg); e != nil { // warmup
			return nil, nil, fmt.Errorf("%s under %v: %w", app.Name, mode, e)
		}
	}
	for i := 0; i < iters; i++ {
		for _, mode := range modes {
			runtime.GC()
			res, e := runOnce(mode, prop, app, cfg)
			if e != nil {
				return nil, nil, fmt.Errorf("%s under %v: %w", app.Name, mode, e)
			}
			times[mode] = append(times[mode], res.Elapsed.Seconds())
			last[mode] = res
		}
	}
	for _, mode := range modes {
		ts := times[mode]
		sort.Float64s(ts)
		if n := len(ts); n%2 == 1 {
			median[mode] = ts[n/2]
		} else {
			median[mode] = (ts[n/2-1] + ts[n/2]) / 2
		}
	}
	return median, last, nil
}

func init() {
	register(&Experiment{
		ID:    "table2",
		Title: "Command-line arguments for Rodinia benchmarks (Table 2)",
		Paper: "the paper's exact command lines; this repository scales the same workloads to laptop size via -scale",
		Run: func(opt Options) ([]*Table, error) {
			t := &Table{
				ID:      "table2",
				Title:   "Rodinia command-line arguments (paper) and repository workloads",
				Columns: []string{"Application", "Paper command-line argument(s)", "Repository workload"},
			}
			for _, app := range rodinia.AllApps() {
				t.AddRow(app.Name, app.PaperArgs, app.Char.Description)
			}
			t.AddRow("LULESH", "-s 150", "structured-grid shock hydro, streams")
			t.Note("problem sizes scale with the -scale flag; defaults are the paper's configurations shrunk for CI")
			return []*Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "fig2",
		Title: "Rodinia runtimes, native vs CRAC, with total CUDA calls (Figure 2)",
		Paper: "0–2% overhead for apps running >10s; 1–14% for short-running apps; call counts 100–800K",
		Run:   runFig2,
	})

	register(&Experiment{
		ID:    "fig3",
		Title: "Rodinia checkpoint and restart times with image sizes (Figure 3)",
		Paper: "ckpt & restart <1s for all; Heartwall and Streamcluster restart slower than checkpoint (cudaMalloc/cudaFree replay)",
		Run:   runFig3,
	})

	register(&Experiment{
		ID:    "fig6",
		Title: "CRAC overhead with and without the FSGSBASE kernel patch (Figure 6)",
		Paper: "FSGSBASE gives a small, often near-zero improvement over syscall-based fs switching (Quadro K600)",
		Run:   runFig6,
	})
}

func runFig2(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	iters := opt.EffIters()
	cfg := workloads.RunConfig{Scale: opt.EffScale(), Seed: 7}
	t := &Table{
		ID:    "fig2",
		Title: "Rodinia runtimes without and with CRAC (Nvidia V100 simulated)",
		Columns: []string{"Benchmark", "native (s)", "CRAC (s)", "overhead %",
			"CUDA calls", "CPS"},
	}
	for _, app := range rodinia.Apps() {
		opt.logf("fig2: %s", app.Name)
		med, res, err := measureModes([]Mode{ModeNative, ModeCRAC}, prop, app, cfg, iters)
		if err != nil {
			return nil, err
		}
		nat, cr := med[ModeNative], med[ModeCRAC]
		t.AddRow(app.Name, fmtF(nat, 3), fmtF(cr, 3),
			fmtF(overheadPct(cr, nat), 1),
			fmtCalls(res[ModeCRAC].Calls.TotalCUDACalls()), fmtCalls(uint64(res[ModeCRAC].CPS())))
	}
	t.Note("median of %d interleaved iterations (paper: mean of 10 on a dedicated node)", iters)
	t.Note("overhead%% per Equation 1; total CUDA calls per the 3x-launch formula of Section 4.3")
	return []*Table{t}, nil
}

// checkpointMidRun runs app under a fresh CRAC session, checkpoints at
// roughly the middle hook step, restarts from the image immediately
// (simulating a failure), and lets the app run to completion. It returns
// the measured checkpoint/restart durations, the image size, and the
// completed result.
func checkpointMidRun(prop gpusim.Properties, app *workloads.App, cfg workloads.RunConfig) (ckpt, restart time.Duration, imgSize int64, res workloads.Result, err error) {
	// Pass 1: count hook steps.
	steps := 0
	countCfg := cfg
	countCfg.Hook = func(int) error { steps++; return nil }
	r, err := NewRunner(ModeCRAC, prop)
	if err != nil {
		return 0, 0, 0, workloads.Result{}, err
	}
	if _, err = app.Run(r.RT, countCfg); err != nil {
		r.Close()
		return 0, 0, 0, workloads.Result{}, err
	}
	r.Close()
	target := steps / 2

	// Pass 2: checkpoint at the target step, restart, continue.
	r, err = NewRunner(ModeCRAC, prop)
	if err != nil {
		return 0, 0, 0, workloads.Result{}, err
	}
	defer r.Close()
	dir, err := os.MkdirTemp("", "crac-fig3-")
	if err != nil {
		return 0, 0, 0, workloads.Result{}, err
	}
	defer os.RemoveAll(dir)
	imgPath := filepath.Join(dir, "ckpt.img")
	store := crac.NewFileStore(imgPath, crac.WithNoSync())
	ctx := context.Background()

	step := 0
	runCfg := cfg
	runCfg.Hook = func(int) error {
		step++
		if step != target+1 {
			return nil
		}
		// Minimum of three timed repetitions per operation: single-shot
		// checkpoint/restart timings jitter by whole milliseconds under
		// GC and scheduler noise, and the CI bench-gate diffs these
		// numbers — the minimum is the stable signal. Every repetition
		// restores the identical state, so the application's checksum is
		// unaffected.
		for k := 0; k < 3; k++ {
			t0 := time.Now()
			if _, cerr := r.Session.CheckpointTo(ctx, store, "ckpt"); cerr != nil {
				return cerr
			}
			if d := time.Since(t0); k == 0 || d < ckpt {
				ckpt = d
			}
		}
		fi, serr := os.Stat(imgPath)
		if serr != nil {
			return serr
		}
		imgSize = fi.Size()
		// Restarts repeat five times (they churn the most allocation and
		// so jitter hardest under GC).
		for k := 0; k < 5; k++ {
			t0 := time.Now()
			if rerr := r.Session.RestartFrom(ctx, store, "ckpt"); rerr != nil {
				return rerr
			}
			if d := time.Since(t0); k == 0 || d < restart {
				restart = d
			}
		}
		return nil
	}
	res, err = app.Run(r.RT, runCfg)
	if err != nil {
		return 0, 0, 0, workloads.Result{}, fmt.Errorf("%s: %w", app.Name, err)
	}
	if ckpt == 0 && target > 0 {
		return 0, 0, 0, workloads.Result{}, fmt.Errorf("%s: checkpoint hook never fired (steps=%d)", app.Name, steps)
	}
	return ckpt, restart, imgSize, res, nil
}

func runFig3(opt Options) ([]*Table, error) {
	prop := gpusim.TeslaV100()
	cfg := workloads.RunConfig{Scale: opt.EffScale(), Seed: 7}
	t := &Table{
		ID:    "fig3",
		Title: "Checkpoint and restart times of Rodinia benchmarks with image sizes",
		Columns: []string{"Benchmark", "checkpoint (s)", "restart (s)", "image size",
			"restart/ckpt"},
	}
	for _, app := range rodinia.Apps() {
		opt.logf("fig3: %s", app.Name)
		ck, rs, size, _, err := checkpointMidRun(prop, app, cfg)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ck > 0 {
			ratio = rs.Seconds() / ck.Seconds()
		}
		t.AddRow(app.Name, fmtF(ck.Seconds(), 3), fmtF(rs.Seconds(), 3),
			FmtBytes(uint64(size)), fmtF(ratio, 2))
	}
	t.Note("checkpoint at mid-run; gzip disabled as in the paper (Section 4.4.1)")
	t.Note("Heartwall and Streamcluster replay long cudaMalloc/cudaFree histories at restart — the paper's two outliers")
	return []*Table{t}, nil
}

func runFig6(opt Options) ([]*Table, error) {
	// The FSGSBASE experiments ran on a local Quadro K600 node
	// (Section 4.4.5).
	prop := gpusim.QuadroK600()
	iters := opt.EffIters()
	cfg := workloads.RunConfig{Scale: opt.EffScale(), Seed: 7}
	t := &Table{
		ID:    "fig6",
		Title: "Rodinia under CRAC on unpatched vs FSGSBASE-patched kernels (Quadro K600 simulated)",
		Columns: []string{"Benchmark", "native (s)", "CRAC syscall (s)", "CRAC FSGSBASE (s)",
			"ovh syscall %", "ovh FSGSBASE %", "delta pp"},
	}
	for _, app := range rodinia.Apps() {
		opt.logf("fig6: %s", app.Name)
		med, _, err := measureModes([]Mode{ModeNative, ModeCRAC, ModeCRACFSGSBase}, prop, app, cfg, iters)
		if err != nil {
			return nil, err
		}
		nat, sys, fsg := med[ModeNative], med[ModeCRAC], med[ModeCRACFSGSBase]
		ovhS := overheadPct(sys, nat)
		ovhF := overheadPct(fsg, nat)
		t.AddRow(app.Name, fmtF(nat, 3), fmtF(sys, 3), fmtF(fsg, 3),
			fmtF(ovhS, 1), fmtF(ovhF, 1), fmtF(ovhF-ovhS, 1))
	}
	t.Note("delta pp = FSGSBASE overhead minus syscall overhead, in percentage points (lower is better)")
	return []*Table{t}, nil
}
