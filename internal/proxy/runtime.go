package proxy

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addrspace"
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
)

// ErrShadowConflict reproduces CRUM's UVM limitation: its shadow-page
// synchronization cannot cope with two concurrent CUDA streams writing
// the same managed memory (paper Section 1, item 2: "CRUM's strategy
// fails when two concurrent CUDA streams write to the same memory
// page"). The proxy runtime detects the situation and fails the launch.
var ErrShadowConflict = errors.New("proxy: concurrent streams write the same managed region (unsupported by shadow-page UVM)")

// shadowRegion is the application-side shadow of a proxy-side managed
// allocation, synchronized around CUDA calls (CRUM's Algorithm 1).
type shadowRegion struct {
	shadowBase uint64 // app-space address handed to the application
	realBase   uint64 // proxy-space managed address
	size       uint64
	hostDirty  bool // host wrote the shadow since the last push
	devDirty   bool // a kernel may have written the real copy since the last pull
}

// Config configures a proxy runtime.
type Config struct {
	Prop gpusim.Properties
	// TransportKind selects "pipe" (default) or "cma".
	TransportKind string
}

// Runtime is the application-side binding of crt.Runtime that forwards
// every CUDA call to a proxy process over IPC. It is the baseline
// CRCUDA/CRUM architecture of Section 4.4.4.
type Runtime struct {
	appSpace *addrspace.Space
	heap     *crt.AppHeap
	tr       Transport
	srv      *Server
	reg      *kernelRegistry

	mu          sync.Mutex
	shadows     map[uint64]*shadowRegion // keyed by shadowBase
	outstanding map[crt.StreamHandle][]*shadowRegion
	props       gpusim.Properties
	propsOnce   sync.Once

	launches atomic.Uint64
	others   atomic.Uint64
}

// New builds the application process plus the proxy process connected by
// the configured transport.
func New(cfg Config) (*Runtime, error) {
	if cfg.Prop.Name == "" {
		cfg.Prop = gpusim.TeslaV100()
	}
	reg := newKernelRegistry()
	srv, err := NewServer(cfg.Prop, reg)
	if err != nil {
		return nil, err
	}
	var tr Transport
	switch cfg.TransportKind {
	case "", "pipe":
		tr, err = NewPipeTransport(srv.Handle)
		if err != nil {
			srv.Close()
			return nil, err
		}
	case "cma":
		tr = NewCMATransport(srv.Handle)
	default:
		srv.Close()
		return nil, fmt.Errorf("proxy: unknown transport %q", cfg.TransportKind)
	}
	appSpace := addrspace.New()
	return &Runtime{
		appSpace:    appSpace,
		heap:        crt.NewAppHeap(appSpace),
		tr:          tr,
		srv:         srv,
		reg:         reg,
		shadows:     make(map[uint64]*shadowRegion),
		outstanding: make(map[crt.StreamHandle][]*shadowRegion),
	}, nil
}

// Transport exposes the transport (for Stats).
func (r *Runtime) Transport() Transport { return r.tr }

// Server exposes the proxy process (tests only).
func (r *Runtime) Server() *Server { return r.srv }

// Close tears down the transport and the proxy process.
func (r *Runtime) Close() {
	r.tr.Close()
	r.srv.Close()
}

// call performs one marshalled round trip.
func (r *Runtime) call(m *message) (*message, error) {
	respBytes, err := r.tr.RoundTrip(m.encode())
	if err != nil {
		return nil, err
	}
	resp, err := decodeMessage(respBytes)
	if err != nil {
		return nil, err
	}
	if err := resp.respError(); err != nil {
		return nil, err
	}
	return resp, nil
}

func (r *Runtime) simpleCall(op uint8, vals ...uint64) (*message, error) {
	return r.call(&message{op: op, vals: vals})
}

// Malloc implements crt.Runtime.
func (r *Runtime) Malloc(size uint64) (uint64, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opMalloc, size)
	if err != nil {
		return 0, err
	}
	return resp.vals[0], nil
}

// Free implements crt.Runtime.
func (r *Runtime) Free(addr uint64) error {
	r.others.Add(1)
	r.mu.Lock()
	if sr, ok := r.shadows[addr]; ok {
		delete(r.shadows, addr)
		r.mu.Unlock()
		if _, err := r.simpleCall(opFree, sr.realBase); err != nil {
			return err
		}
		return r.heap.Free(addr)
	}
	r.mu.Unlock()
	_, err := r.simpleCall(opFree, addr)
	return err
}

// MallocHost implements crt.Runtime. Under the proxy architecture pinned
// host memory lives in the application process.
func (r *Runtime) MallocHost(size uint64) (uint64, error) {
	r.others.Add(1)
	return r.heap.Alloc(size)
}

// HostAlloc implements crt.Runtime.
func (r *Runtime) HostAlloc(size uint64) (uint64, error) {
	r.others.Add(1)
	return r.heap.Alloc(size)
}

// FreeHost implements crt.Runtime.
func (r *Runtime) FreeHost(addr uint64) error {
	r.others.Add(1)
	return r.heap.Free(addr)
}

// MallocManaged implements crt.Runtime: the real managed allocation lives
// in the proxy; the application receives a shadow copy, synchronized
// around CUDA calls (CRUM's scheme).
func (r *Runtime) MallocManaged(size uint64) (uint64, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opMallocManaged, size)
	if err != nil {
		return 0, err
	}
	real := resp.vals[0]
	shadow, err := r.heap.Alloc(size)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.shadows[shadow] = &shadowRegion{shadowBase: shadow, realBase: real, size: size}
	r.mu.Unlock()
	return shadow, nil
}

// shadowOf returns the shadow region containing addr, if any.
func (r *Runtime) shadowOf(addr uint64) *shadowRegion {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sr := range r.shadows {
		if addr >= sr.shadowBase && addr < sr.shadowBase+sr.size {
			return sr
		}
	}
	return nil
}

// pushShadow copies a host-dirty shadow to the proxy.
func (r *Runtime) pushShadow(sr *shadowRegion) error {
	buf, err := r.appSpace.Slice(sr.shadowBase, sr.size)
	if err != nil {
		return err
	}
	if _, err := r.call(&message{op: opMemWrite, vals: []uint64{sr.realBase}, payload: buf}); err != nil {
		return err
	}
	sr.hostDirty = false
	return nil
}

// pullShadow copies the proxy's managed bytes back into the shadow.
func (r *Runtime) pullShadow(sr *shadowRegion) error {
	resp, err := r.simpleCall(opMemRead, sr.realBase, sr.size)
	if err != nil {
		return err
	}
	if err := r.appSpace.WriteAt(sr.shadowBase, resp.payload); err != nil {
		return err
	}
	sr.devDirty = false
	return nil
}

// classify reports whether addr belongs to the application space (host)
// or the proxy space (device/managed), using the disjoint windows.
func (r *Runtime) isHostAddr(addr uint64) bool {
	w := r.appSpace.UpperWindow()
	return addr >= w.Start && addr < w.End
}

// Memcpy implements crt.Runtime. Host↔device copies cross the transport
// with the full payload — the fundamental proxy overhead.
func (r *Runtime) Memcpy(dst, src, n uint64, kind crt.MemcpyKind) error {
	r.others.Add(1)
	if sr := r.shadowOf(dst); sr != nil {
		// Copy into managed memory: update the shadow, mark dirty.
		if err := r.memcpyIntoHost(sr, dst, src, n); err != nil {
			return err
		}
		sr.hostDirty = true
		return nil
	}
	if sr := r.shadowOf(src); sr != nil {
		if sr.devDirty {
			if err := r.pullShadow(sr); err != nil {
				return err
			}
		}
		return r.memcpyFromHost(dst, src, n)
	}
	dstHost, srcHost := r.isHostAddr(dst), r.isHostAddr(src)
	switch {
	case dstHost && srcHost:
		buf, err := r.appSpace.Slice(src, n)
		if err != nil {
			return err
		}
		return r.appSpace.WriteAt(dst, buf)
	case dstHost && !srcHost: // D2H
		resp, err := r.simpleCall(opMemRead, src, n)
		if err != nil {
			return err
		}
		return r.appSpace.WriteAt(dst, resp.payload)
	case !dstHost && srcHost: // H2D
		buf, err := r.appSpace.Slice(src, n)
		if err != nil {
			return err
		}
		_, err = r.call(&message{op: opMemWrite, vals: []uint64{dst}, payload: buf})
		return err
	default: // D2D stays inside the proxy
		_, err := r.simpleCall(opMemCopy, dst, src, n)
		return err
	}
}

// memcpyIntoHost copies into an app-side (shadow) destination.
func (r *Runtime) memcpyIntoHost(_ *shadowRegion, dst, src, n uint64) error {
	if r.isHostAddr(src) {
		buf, err := r.appSpace.Slice(src, n)
		if err != nil {
			return err
		}
		return r.appSpace.WriteAt(dst, buf)
	}
	resp, err := r.simpleCall(opMemRead, src, n)
	if err != nil {
		return err
	}
	return r.appSpace.WriteAt(dst, resp.payload)
}

// memcpyFromHost copies from an app-side (shadow) source.
func (r *Runtime) memcpyFromHost(dst, src, n uint64) error {
	buf, err := r.appSpace.Slice(src, n)
	if err != nil {
		return err
	}
	if r.isHostAddr(dst) {
		return r.appSpace.WriteAt(dst, buf)
	}
	_, err = r.call(&message{op: opMemWrite, vals: []uint64{dst}, payload: buf})
	return err
}

// MemcpyAsync implements crt.Runtime (synchronously, as proxy designs
// serialize copies through the RPC channel anyway).
func (r *Runtime) MemcpyAsync(dst, src, n uint64, kind crt.MemcpyKind, _ crt.StreamHandle) error {
	return r.Memcpy(dst, src, n, kind)
}

// Memset implements crt.Runtime.
func (r *Runtime) Memset(addr uint64, value byte, n uint64) error {
	r.others.Add(1)
	if sr := r.shadowOf(addr); sr != nil {
		buf, err := r.appSpace.Slice(addr, n)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = value
		}
		sr.hostDirty = true
		return nil
	}
	if r.isHostAddr(addr) {
		buf, err := r.appSpace.Slice(addr, n)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = value
		}
		return nil
	}
	_, err := r.simpleCall(opMemset, addr, uint64(value), n)
	return err
}

// StreamCreate implements crt.Runtime.
func (r *Runtime) StreamCreate() (crt.StreamHandle, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opStreamCreate)
	if err != nil {
		return 0, err
	}
	return crt.StreamHandle(resp.vals[0]), nil
}

// StreamDestroy implements crt.Runtime.
func (r *Runtime) StreamDestroy(s crt.StreamHandle) error {
	r.others.Add(1)
	if err := r.syncStreamShadows(s); err != nil {
		return err
	}
	_, err := r.simpleCall(opStreamDestroy, uint64(s))
	return err
}

// StreamSynchronize implements crt.Runtime: after the stream drains, the
// shadow copies of managed regions its kernels touched are pulled back.
func (r *Runtime) StreamSynchronize(s crt.StreamHandle) error {
	r.others.Add(1)
	if _, err := r.simpleCall(opStreamSync, uint64(s)); err != nil {
		return err
	}
	return r.syncStreamShadows(s)
}

func (r *Runtime) syncStreamShadows(s crt.StreamHandle) error {
	r.mu.Lock()
	regions := r.outstanding[s]
	delete(r.outstanding, s)
	r.mu.Unlock()
	for _, sr := range regions {
		if sr.devDirty {
			if err := r.pullShadow(sr); err != nil {
				return err
			}
		}
	}
	return nil
}

// EventCreate implements crt.Runtime.
func (r *Runtime) EventCreate() (crt.EventHandle, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opEventCreate)
	if err != nil {
		return 0, err
	}
	return crt.EventHandle(resp.vals[0]), nil
}

// EventDestroy implements crt.Runtime.
func (r *Runtime) EventDestroy(e crt.EventHandle) error {
	r.others.Add(1)
	_, err := r.simpleCall(opEventDestroy, uint64(e))
	return err
}

// EventRecord implements crt.Runtime.
func (r *Runtime) EventRecord(e crt.EventHandle, s crt.StreamHandle) error {
	r.others.Add(1)
	_, err := r.simpleCall(opEventRecord, uint64(e), uint64(s))
	return err
}

// EventSynchronize implements crt.Runtime.
func (r *Runtime) EventSynchronize(e crt.EventHandle) error {
	r.others.Add(1)
	_, err := r.simpleCall(opEventSync, uint64(e))
	return err
}

// EventElapsed implements crt.Runtime.
func (r *Runtime) EventElapsed(start, end crt.EventHandle) (time.Duration, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opEventElapsed, uint64(start), uint64(end))
	if err != nil {
		return 0, err
	}
	return time.Duration(resp.vals[0]), nil
}

// StreamWaitEvent implements crt.Runtime.
func (r *Runtime) StreamWaitEvent(s crt.StreamHandle, e crt.EventHandle) error {
	r.others.Add(1)
	_, err := r.simpleCall(opStreamWaitEvent, uint64(s), uint64(e))
	return err
}

// MemGetInfo implements crt.Runtime.
func (r *Runtime) MemGetInfo() (uint64, uint64, error) {
	r.others.Add(1)
	resp, err := r.simpleCall(opMemGetInfo)
	if err != nil {
		return 0, 0, err
	}
	return resp.vals[0], resp.vals[1], nil
}

// RegisterFatBinary implements crt.Runtime.
func (r *Runtime) RegisterFatBinary(module string) (crt.FatBinHandle, error) {
	r.others.Add(1)
	resp, err := r.call(&message{op: opRegisterFat, str: module})
	if err != nil {
		return 0, err
	}
	return crt.FatBinHandle(resp.vals[0]), nil
}

// RegisterFunction implements crt.Runtime.
func (r *Runtime) RegisterFunction(h crt.FatBinHandle, name string, k cuda.Kernel) error {
	r.others.Add(1)
	id := r.reg.add(k)
	_, err := r.call(&message{op: opRegisterFunc, vals: []uint64{uint64(h), id}, str: name})
	return err
}

// UnregisterFatBinary implements crt.Runtime.
func (r *Runtime) UnregisterFatBinary(h crt.FatBinHandle) error {
	r.others.Add(1)
	_, err := r.simpleCall(opUnregisterFat, uint64(h))
	return err
}

// LaunchKernel implements crt.Runtime: arguments are marshalled; shadow
// regions referenced by the arguments are pushed first (CRUM's pattern),
// and concurrent cross-stream writes to the same region are rejected.
func (r *Runtime) LaunchKernel(h crt.FatBinHandle, name string, cfg crt.LaunchConfig, s crt.StreamHandle, args ...uint64) error {
	r.launches.Add(1)
	// Translate shadow pointers and collect the managed regions touched.
	var touched []*shadowRegion
	targs := make([]uint64, len(args))
	for i, a := range args {
		if sr := r.shadowOf(a); sr != nil {
			targs[i] = sr.realBase + (a - sr.shadowBase)
			touched = append(touched, sr)
		} else {
			targs[i] = a
		}
	}
	if len(touched) > 0 {
		r.mu.Lock()
		for other, regions := range r.outstanding {
			if other == s {
				continue
			}
			for _, or := range regions {
				for _, tr := range touched {
					if or == tr {
						r.mu.Unlock()
						return fmt.Errorf("%w: region %#x, streams %d and %d",
							ErrShadowConflict, tr.shadowBase, s, other)
					}
				}
			}
		}
		r.outstanding[s] = append(r.outstanding[s], touched...)
		r.mu.Unlock()
		for _, sr := range touched {
			if sr.hostDirty {
				if err := r.pushShadow(sr); err != nil {
					return err
				}
			}
			sr.devDirty = true
		}
	}
	vals := make([]uint64, 0, 10+len(targs))
	vals = append(vals, uint64(h), uint64(s),
		uint64(cfg.Grid.X), uint64(cfg.Grid.Y), uint64(cfg.Grid.Z),
		uint64(cfg.Block.X), uint64(cfg.Block.Y), uint64(cfg.Block.Z),
		uint64(cfg.SharedMem), uint64(len(targs)))
	vals = append(vals, targs...)
	_, err := r.call(&message{op: opLaunch, vals: vals, str: name})
	return err
}

// DeviceSynchronize implements crt.Runtime: drains the device and pulls
// every outstanding shadow region back.
func (r *Runtime) DeviceSynchronize() error {
	r.others.Add(1)
	if _, err := r.simpleCall(opDeviceSync); err != nil {
		return err
	}
	r.mu.Lock()
	var all []*shadowRegion
	for _, regions := range r.outstanding {
		all = append(all, regions...)
	}
	r.outstanding = make(map[crt.StreamHandle][]*shadowRegion)
	r.mu.Unlock()
	seen := make(map[*shadowRegion]bool)
	for _, sr := range all {
		if seen[sr] {
			continue
		}
		seen[sr] = true
		if sr.devDirty {
			if err := r.pullShadow(sr); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeviceProperties implements crt.Runtime.
func (r *Runtime) DeviceProperties() gpusim.Properties {
	r.others.Add(1)
	r.propsOnce.Do(func() {
		resp, err := r.simpleCall(opProps)
		if err != nil {
			return
		}
		r.props = gpusim.Properties{
			Name:                 string(resp.payload),
			ComputeMajor:         int(resp.vals[0]),
			ComputeMinor:         int(resp.vals[1]),
			SMCount:              int(resp.vals[2]),
			MaxConcurrentKernels: int(resp.vals[3]),
			GlobalMemBytes:       resp.vals[4],
		}
	})
	return r.props
}

// HostAccess implements crt.Runtime. Reads of device-dirty shadow regions
// pull first (the mprotect/userfaultfd interception CRUM pays for);
// writes mark the shadow host-dirty.
func (r *Runtime) HostAccess(addr, n uint64, write bool) ([]byte, error) {
	if sr := r.shadowOf(addr); sr != nil {
		if sr.devDirty {
			if err := r.pullShadow(sr); err != nil {
				return nil, err
			}
		}
		if write {
			sr.hostDirty = true
		}
	}
	return r.appSpace.Slice(addr, n)
}

// AppAlloc implements crt.Runtime.
func (r *Runtime) AppAlloc(size uint64) (uint64, error) { return r.heap.Alloc(size) }

// AppFree implements crt.Runtime.
func (r *Runtime) AppFree(addr uint64) error { return r.heap.Free(addr) }

// Counters implements crt.Runtime.
func (r *Runtime) Counters() crt.Counters {
	return crt.Counters{LaunchKernel: r.launches.Load(), OtherCalls: r.others.Load()}
}

var _ crt.Runtime = (*Runtime)(nil)

// BLAS executes a cuBLAS routine proxy-side with per-call operand
// shipping, the synthetic CMA/IPC benchmark of Table 3: operands are
// copied from the application to the proxy, the routine executes there,
// and the result is copied back.
type BLAS struct {
	rt *Runtime
}

// NewBLAS returns the Table 3 BLAS client over the runtime's transport.
func NewBLAS(rt *Runtime) *BLAS { return &BLAS{rt: rt} }

// Sdot ships x and y (n float32 each), returning dot(x, y).
func (b *BLAS) Sdot(n int, x, y []byte) (float32, error) {
	payload := make([]byte, 0, len(x)+len(y))
	payload = append(payload, x...)
	payload = append(payload, y...)
	resp, err := b.rt.call(&message{op: opBlasSdot, vals: []uint64{uint64(n)}, payload: payload})
	if err != nil {
		return 0, err
	}
	return f32FromBytes(resp.payload), nil
}

// Sgemv ships A (m×n) and x (n), returning y = A·x as raw bytes.
func (b *BLAS) Sgemv(m, n int, a, x []byte) ([]byte, error) {
	payload := make([]byte, 0, len(a)+len(x))
	payload = append(payload, a...)
	payload = append(payload, x...)
	resp, err := b.rt.call(&message{op: opBlasSgemv, vals: []uint64{uint64(m), uint64(n)}, payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.payload, nil
}

// Sgemm ships A (m×k) and B (k×n), returning C = A·B as raw bytes.
func (b *BLAS) Sgemm(m, n, k int, a, bb []byte) ([]byte, error) {
	payload := make([]byte, 0, len(a)+len(bb))
	payload = append(payload, a...)
	payload = append(payload, bb...)
	resp, err := b.rt.call(&message{op: opBlasSgemm, vals: []uint64{uint64(m), uint64(n), uint64(k)}, payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.payload, nil
}

func f32FromBytes(b []byte) float32 {
	if len(b) < 4 {
		return 0
	}
	bits := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(bits)
}
