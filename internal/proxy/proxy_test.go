package proxy

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/memview"
)

func newProxy(t *testing.T, kind string) *Runtime {
	t.Helper()
	rt, err := New(Config{TransportKind: kind})
	if err != nil {
		t.Fatalf("proxy.New(%s): %v", kind, err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestTransports(t *testing.T) {
	echo := func(req []byte) []byte { return append([]byte("echo:"), req...) }
	pipe, err := NewPipeTransport(echo)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	cma := NewCMATransport(echo)
	for _, tr := range []Transport{pipe, cma} {
		resp, err := tr.RoundTrip([]byte("hello"))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if string(resp) != "echo:hello" {
			t.Fatalf("%s resp = %q", tr.Name(), resp)
		}
		st := tr.Stats()
		if st.Calls != 1 || st.BytesSent != 5 || st.BytesReceived != 10 {
			t.Fatalf("%s stats = %+v", tr.Name(), st)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &message{op: opLaunch, str: "kern", vals: []uint64{1, 2, 3}, payload: []byte{9, 8}}
	got, err := decodeMessage(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.op != m.op || got.str != m.str || len(got.vals) != 3 || got.vals[2] != 3 || !bytes.Equal(got.payload, m.payload) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeMessage([]byte{1}); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestErrorPropagation(t *testing.T) {
	rt := newProxy(t, "pipe")
	// Freeing a bogus pointer produces a CUDA error across the wire.
	err := rt.Free(0xdeadbeef)
	if cuda.CodeOf(err) != cuda.ErrorInvalidDevicePointer {
		t.Fatalf("err = %v, want invalid device pointer", err)
	}
}

func TestMemcpyThroughProxy(t *testing.T) {
	for _, kind := range []string{"pipe", "cma"} {
		t.Run(kind, func(t *testing.T) {
			rt := newProxy(t, kind)
			d, err := rt.Malloc(1 << 16)
			if err != nil {
				t.Fatal(err)
			}
			h, err := rt.AppAlloc(1 << 16)
			if err != nil {
				t.Fatal(err)
			}
			hv, err := rt.HostAccess(h, 1<<16, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hv {
				hv[i] = byte(i)
			}
			if err := rt.Memcpy(d, h, 1<<16, crt.MemcpyHostToDevice); err != nil {
				t.Fatal(err)
			}
			h2, _ := rt.AppAlloc(1 << 16)
			if err := rt.Memcpy(h2, d, 1<<16, crt.MemcpyDeviceToHost); err != nil {
				t.Fatal(err)
			}
			got, _ := rt.HostAccess(h2, 1<<16, false)
			if !bytes.Equal(got, hv) {
				t.Fatal("H2D/D2H through proxy corrupted data")
			}
			// Every byte crossed the transport twice.
			if st := rt.Transport().Stats(); st.BytesSent < 1<<16 || st.BytesReceived < 1<<16 {
				t.Fatalf("transport stats = %+v", st)
			}
		})
	}
}

func TestKernelLaunchThroughProxy(t *testing.T) {
	rt := newProxy(t, "pipe")
	fat, err := rt.RegisterFatBinary("mod")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFunction(fat, "fill7", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		b := ctx.Bytes(args[0], args[1])
		for i := range b {
			b[i] = 7
		}
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := rt.Malloc(4096)
	if err := rt.LaunchKernel(fat, "fill7", gpusim.LaunchConfig{}, crt.DefaultStream, d, 4096); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	h, _ := rt.AppAlloc(4096)
	if err := rt.Memcpy(h, d, 4096, crt.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	hv, _ := rt.HostAccess(h, 4096, false)
	for _, v := range hv {
		if v != 7 {
			t.Fatalf("kernel result byte = %d", v)
		}
	}
}

func TestShadowUVMReadModifyWrite(t *testing.T) {
	// The pattern CRUM supports: CUDA call, host read, host modify,
	// host write, next CUDA call.
	rt := newProxy(t, "pipe")
	fat, _ := rt.RegisterFatBinary("mod")
	_ = rt.RegisterFunction(fat, "inc", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		f := ctx.Float32s(args[0], int(args[1]))
		for i := range f {
			f[i]++
		}
	})
	m, err := rt.MallocManaged(1024 * 4)
	if err != nil {
		t.Fatal(err)
	}
	// Host initializes the shadow.
	hv, err := rt.HostAccess(m, 1024*4, true)
	if err != nil {
		t.Fatal(err)
	}
	fv := memview.Float32s(hv, 1024)
	for i := range fv {
		fv[i] = float32(i)
	}
	// Kernel increments on the device (shadow pushed before launch).
	if err := rt.LaunchKernel(fat, "inc", gpusim.LaunchConfig{}, crt.DefaultStream, m, 1024); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	// Host reads back (shadow pulled).
	hv, err = rt.HostAccess(m, 1024*4, false)
	if err != nil {
		t.Fatal(err)
	}
	fv = memview.Float32s(hv, 1024)
	for i := range fv {
		if fv[i] != float32(i)+1 {
			t.Fatalf("fv[%d] = %v", i, fv[i])
		}
	}
}

func TestShadowConflictAcrossStreams(t *testing.T) {
	// CRUM's limitation: two concurrent streams writing the same managed
	// region (paper Section 1 item 2).
	rt := newProxy(t, "pipe")
	fat, _ := rt.RegisterFatBinary("mod")
	_ = rt.RegisterFunction(fat, "w", func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
		ctx.Bytes(args[0], 8)[0] = 1
	})
	m, _ := rt.MallocManaged(4096)
	s1, _ := rt.StreamCreate()
	s2, _ := rt.StreamCreate()
	if err := rt.LaunchKernel(fat, "w", gpusim.LaunchConfig{}, s1, m); err != nil {
		t.Fatalf("first launch: %v", err)
	}
	err := rt.LaunchKernel(fat, "w", gpusim.LaunchConfig{}, s2, m)
	if !errors.Is(err, ErrShadowConflict) {
		t.Fatalf("err = %v, want ErrShadowConflict", err)
	}
	// After synchronizing the first stream, the second may proceed.
	if err := rt.StreamSynchronize(s1); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchKernel(fat, "w", gpusim.LaunchConfig{}, s2, m); err != nil {
		t.Fatalf("launch after sync: %v", err)
	}
}

func TestManagedFreeReleasesShadow(t *testing.T) {
	rt := newProxy(t, "pipe")
	m, _ := rt.MallocManaged(4096)
	if err := rt.Free(m); err != nil {
		t.Fatal(err)
	}
	if sr := rt.shadowOf(m); sr != nil {
		t.Fatal("shadow survives free")
	}
}

func TestProxyStreamsAndEvents(t *testing.T) {
	rt := newProxy(t, "cma")
	s, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := rt.EventCreate()
	e2, _ := rt.EventCreate()
	if err := rt.EventRecord(e1, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventRecord(e2, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventSynchronize(e2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.EventElapsed(e1, e2); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventDestroy(e1); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
}

func TestProxyProperties(t *testing.T) {
	rt := newProxy(t, "pipe")
	p := rt.DeviceProperties()
	if p.Name != gpusim.TeslaV100().Name || p.MaxConcurrentKernels != 128 {
		t.Fatalf("props = %+v", p)
	}
}

func TestBLASSdotThroughCMA(t *testing.T) {
	rt := newProxy(t, "cma")
	blas := NewBLAS(rt)
	const n = 1024
	x := make([]byte, 4*n)
	y := make([]byte, 4*n)
	xv := memview.Float32s(x, n)
	yv := memview.Float32s(y, n)
	for i := 0; i < n; i++ {
		xv[i], yv[i] = 1, 2
	}
	got, err := blas.Sdot(n, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*n {
		t.Fatalf("sdot = %v, want %v", got, 2*n)
	}
	// No leaked proxy-side allocations.
	if live := rt.Server().Library().ActiveDeviceMallocs(); len(live) != 0 {
		t.Fatalf("BLAS leaked %d device allocations", len(live))
	}
}

func TestBLASSgemvAndSgemm(t *testing.T) {
	rt := newProxy(t, "pipe")
	blas := NewBLAS(rt)
	const m, n, k = 8, 8, 8
	a := make([]byte, 4*m*k)
	b := make([]byte, 4*k*n)
	av := memview.Float32s(a, m*k)
	bv := memview.Float32s(b, k*n)
	for i := range av {
		av[i] = 1
	}
	for i := range bv {
		bv[i] = 1
	}
	y, err := blas.Sgemv(m, k, a, b[:4*k])
	if err != nil {
		t.Fatal(err)
	}
	yv := memview.Float32s(y, m)
	if yv[0] != k {
		t.Fatalf("gemv = %v", yv[0])
	}
	c, err := blas.Sgemm(m, n, k, a, b)
	if err != nil {
		t.Fatal(err)
	}
	cv := memview.Float32s(c, m*n)
	if cv[0] != k {
		t.Fatalf("gemm = %v", cv[0])
	}
}

func TestUnknownTransport(t *testing.T) {
	if _, err := New(Config{TransportKind: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
