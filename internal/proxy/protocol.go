package proxy

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cuda"
)

// Operation codes of the app↔proxy RPC protocol.
const (
	opMalloc uint8 = iota + 1
	opFree
	opMallocManaged
	opMemWrite // H2D and shadow-page push: vals[0]=dst, payload=data
	opMemRead  // D2H and shadow-page pull: vals[0]=src, vals[1]=n
	opMemCopy  // D2D: vals[0]=dst, vals[1]=src, vals[2]=n
	opMemset   // vals[0]=addr, vals[1]=value, vals[2]=n
	opStreamCreate
	opStreamDestroy
	opStreamSync
	opEventCreate
	opEventDestroy
	opEventRecord  // vals[0]=event, vals[1]=stream
	opEventSync    // vals[0]=event
	opEventElapsed // vals[0]=start, vals[1]=end -> vals[0]=nanoseconds
	opRegisterFat  // str=module -> vals[0]=handle
	opRegisterFunc // vals[0]=fat, vals[1]=kernelID, str=name
	opUnregisterFat
	opLaunch // vals[0]=fat, vals[1]=stream, vals[2..7]=grid/block, vals[8]=shared, vals[9]=nargs, vals[10..]=args; str=name
	opDeviceSync
	opProps
	opStreamWaitEvent // vals[0]=stream, vals[1]=event
	opMemGetInfo      // -> vals[0]=free, vals[1]=total
	opBlasSdot        // vals[0]=n, payload=x||y -> payload=result(4B)
	opBlasSgemv       // vals[0]=m, vals[1]=n, payload=A||x -> payload=y
	opBlasSgemm       // vals[0]=m, vals[1]=n, vals[2]=k, payload=A||B -> payload=C
)

// message is the symmetric wire format for requests and responses.
type message struct {
	op      uint8  // requests only
	status  uint8  // responses only: 0 = ok, 1 = error
	errCode int32  // cuda.Code on error
	errMsg  string // error text
	str     string
	vals    []uint64
	payload []byte
}

// encode serializes m.
func (m *message) encode() []byte {
	size := 1 + 1 + 4 + 2 + len(m.errMsg) + 2 + len(m.str) + 2 + 8*len(m.vals) + 4 + len(m.payload)
	b := make([]byte, 0, size)
	b = append(b, m.op, m.status)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.errCode))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.errMsg)))
	b = append(b, m.errMsg...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.str)))
	b = append(b, m.str...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.vals)))
	for _, v := range m.vals {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.payload)))
	b = append(b, m.payload...)
	return b
}

// decodeMessage parses a wire message.
func decodeMessage(b []byte) (*message, error) {
	m := &message{}
	if len(b) < 2 {
		return nil, fmt.Errorf("proxy: short message (%d bytes)", len(b))
	}
	m.op, m.status = b[0], b[1]
	b = b[2:]
	take := func(n int) ([]byte, error) {
		if len(b) < n {
			return nil, fmt.Errorf("proxy: truncated message")
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	f, err := take(4)
	if err != nil {
		return nil, err
	}
	m.errCode = int32(binary.LittleEndian.Uint32(f))
	if f, err = take(2); err != nil {
		return nil, err
	}
	if f, err = take(int(binary.LittleEndian.Uint16(f))); err != nil {
		return nil, err
	}
	m.errMsg = string(f)
	if f, err = take(2); err != nil {
		return nil, err
	}
	if f, err = take(int(binary.LittleEndian.Uint16(f))); err != nil {
		return nil, err
	}
	m.str = string(f)
	if f, err = take(2); err != nil {
		return nil, err
	}
	nvals := int(binary.LittleEndian.Uint16(f))
	m.vals = make([]uint64, nvals)
	for i := 0; i < nvals; i++ {
		if f, err = take(8); err != nil {
			return nil, err
		}
		m.vals[i] = binary.LittleEndian.Uint64(f)
	}
	if f, err = take(4); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(f))
	if f, err = take(n); err != nil {
		return nil, err
	}
	m.payload = f
	return m, nil
}

// okResp builds a success response.
func okResp(vals []uint64, payload []byte) []byte {
	return (&message{vals: vals, payload: payload}).encode()
}

// errResp builds an error response from err.
func errResp(err error) []byte {
	m := &message{status: 1, errMsg: err.Error(), errCode: int32(cuda.CodeOf(err))}
	return m.encode()
}

// respError reconstructs the error carried by a response, if any.
func (m *message) respError() error {
	if m.status == 0 {
		return nil
	}
	return &cuda.Error{Code: cuda.Code(m.errCode), Op: "proxy", Msg: m.errMsg}
}
