// Package proxy implements the proxy-process checkpointing architecture
// of CRCUDA and CRUM, the baseline CRAC is compared against (paper
// Sections 1, 2.3 and 4.4.4). The application and the CUDA library live
// in separate processes with separate address spaces; every CUDA call is
// marshalled across an IPC transport, and every data buffer is copied —
// the inherent cost that motivates CRAC's single-address-space design.
//
// Two transports are provided:
//
//   - Pipe: requests and responses travel through real OS pipes, paying
//     genuine kernel copies per message;
//   - CMA: Cross-Memory Attach (process_vm_readv/writev), modelled as a
//     direct memory copy between the two simulated address spaces plus
//     one real system call per direction — the transport used for the
//     paper's Table 3 ("CMA/IPC").
//
// The package also implements CRUM's shadow-page scheme for UVM, which
// only supports the read-modify-write-between-CUDA-calls pattern and
// fails when two concurrent streams write the same managed region
// (Section 1, item 2) — reproduced here as ErrShadowConflict.
package proxy

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// TransportStats are cumulative transport counters.
type TransportStats struct {
	Calls         uint64
	BytesSent     uint64
	BytesReceived uint64
}

// Transport moves one request to the proxy and returns its response.
type Transport interface {
	// RoundTrip sends req and returns the proxy's response.
	RoundTrip(req []byte) ([]byte, error)
	// Name identifies the transport ("pipe" or "cma").
	Name() string
	// Stats returns cumulative counters.
	Stats() TransportStats
	// Close tears the transport down.
	Close() error
}

// Handler is the proxy-side request processor.
type Handler func(req []byte) []byte

// PipeTransport ships requests and responses through OS pipes, as an
// RPC-over-pipe proxy would. Every byte crosses the kernel twice (write
// and read), so large buffers pay the real IPC cost.
type PipeTransport struct {
	mu    sync.Mutex // one outstanding call at a time
	reqW  *os.File
	respR *os.File
	done  chan struct{}

	calls atomic.Uint64
	sent  atomic.Uint64
	recvd atomic.Uint64

	reqR  *os.File
	respW *os.File
}

// NewPipeTransport starts a proxy server goroutine processing requests
// with h and returns the client transport.
func NewPipeTransport(h Handler) (*PipeTransport, error) {
	reqR, reqW, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	respR, respW, err := os.Pipe()
	if err != nil {
		reqR.Close()
		reqW.Close()
		return nil, err
	}
	t := &PipeTransport{reqW: reqW, respR: respR, reqR: reqR, respW: respW, done: make(chan struct{})}
	go t.serve(h)
	return t, nil
}

func (t *PipeTransport) serve(h Handler) {
	defer close(t.done)
	for {
		req, err := readFrame(t.reqR)
		if err != nil {
			return // client closed
		}
		resp := h(req)
		if err := writeFrame(t.respW, resp); err != nil {
			return
		}
	}
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// RoundTrip implements Transport.
func (t *PipeTransport) RoundTrip(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls.Add(1)
	t.sent.Add(uint64(len(req)))
	if err := writeFrame(t.reqW, req); err != nil {
		return nil, fmt.Errorf("proxy: pipe write: %w", err)
	}
	resp, err := readFrame(t.respR)
	if err != nil {
		return nil, fmt.Errorf("proxy: pipe read: %w", err)
	}
	t.recvd.Add(uint64(len(resp)))
	return resp, nil
}

// Name implements Transport.
func (t *PipeTransport) Name() string { return "pipe" }

// Stats implements Transport.
func (t *PipeTransport) Stats() TransportStats {
	return TransportStats{Calls: t.calls.Load(), BytesSent: t.sent.Load(), BytesReceived: t.recvd.Load()}
}

// Close implements Transport.
func (t *PipeTransport) Close() error {
	t.reqW.Close()
	t.respW.Close()
	<-t.done
	t.reqR.Close()
	t.respR.Close()
	return nil
}

// CMATransport models Cross-Memory Attach: the request and response
// buffers are copied directly between the two processes' memories
// (process_vm_writev / process_vm_readv), paying one system call per
// direction plus the memcpy itself. This is the "CMA/IPC" column of the
// paper's Table 3.
type CMATransport struct {
	mu sync.Mutex
	h  Handler

	calls atomic.Uint64
	sent  atomic.Uint64
	recvd atomic.Uint64
}

// NewCMATransport returns a CMA transport over the handler.
func NewCMATransport(h Handler) *CMATransport {
	return &CMATransport{h: h}
}

// RoundTrip implements Transport.
func (t *CMATransport) RoundTrip(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls.Add(1)
	t.sent.Add(uint64(len(req)))
	// process_vm_writev: one kernel entry, then the cross-space copy.
	syscall.Getpid()
	reqCopy := make([]byte, len(req))
	copy(reqCopy, req)

	resp := t.h(reqCopy)

	// process_vm_readv for the response.
	syscall.Getpid()
	respCopy := make([]byte, len(resp))
	copy(respCopy, resp)
	t.recvd.Add(uint64(len(respCopy)))
	return respCopy, nil
}

// Name implements Transport.
func (t *CMATransport) Name() string { return "cma" }

// Stats implements Transport.
func (t *CMATransport) Stats() TransportStats {
	return TransportStats{Calls: t.calls.Load(), BytesSent: t.sent.Load(), BytesReceived: t.recvd.Load()}
}

// Close implements Transport.
func (t *CMATransport) Close() error { return nil }
