package proxy

import (
	"fmt"
	"sync"

	"repro/internal/addrspace"
	"repro/internal/cublas"
	"repro/internal/cuda"
	"repro/internal/gpusim"
)

// kernelRegistry shares kernel function values between the application
// and the proxy. In the real CRCUDA/CRUM design the proxy process links
// the application's fat binaries, so device code is available on both
// sides; the registry is the simulation's equivalent.
type kernelRegistry struct {
	mu   sync.Mutex
	m    map[uint64]cuda.Kernel
	next uint64
}

func newKernelRegistry() *kernelRegistry {
	return &kernelRegistry{m: make(map[uint64]cuda.Kernel)}
}

func (r *kernelRegistry) add(k cuda.Kernel) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	r.m[r.next] = k
	return r.next
}

func (r *kernelRegistry) get(id uint64) cuda.Kernel {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

// Server is the proxy process: it owns its own address space and the
// active CUDA library, and executes the CUDA calls the application sends
// over the transport.
type Server struct {
	space *addrspace.Space
	lib   *cuda.Library
	reg   *kernelRegistry

	blasFat cuda.FatBinaryHandle
}

// NewServer builds the proxy process around a fresh CUDA library.
func NewServer(prop gpusim.Properties, reg *kernelRegistry) (*Server, error) {
	space := addrspace.New()
	lib, err := cuda.NewLibrary(cuda.Config{Prop: prop, Space: space})
	if err != nil {
		return nil, err
	}
	s := &Server{space: space, lib: lib, reg: reg}
	// The proxy links cuBLAS directly (as CRCUDA/CRUM proxies link the
	// CUDA libraries the application needs).
	fat, err := lib.RegisterFatBinary(cublas.Module)
	if err != nil {
		return nil, err
	}
	for name, k := range cublas.Table() {
		if err := lib.RegisterFunction(fat, name, k); err != nil {
			return nil, err
		}
	}
	s.blasFat = fat
	return s, nil
}

// Library exposes the proxy-side CUDA library (tests only).
func (s *Server) Library() *cuda.Library { return s.lib }

// Close tears the proxy process down.
func (s *Server) Close() { s.lib.Destroy() }

// Handle processes one encoded request and returns the encoded response.
func (s *Server) Handle(req []byte) []byte {
	m, err := decodeMessage(req)
	if err != nil {
		return errResp(err)
	}
	resp, err := s.dispatch(m)
	if err != nil {
		return errResp(err)
	}
	return resp
}

func (s *Server) dispatch(m *message) ([]byte, error) {
	v := func(i int) uint64 {
		if i < len(m.vals) {
			return m.vals[i]
		}
		return 0
	}
	switch m.op {
	case opMalloc:
		addr, err := s.lib.Malloc(v(0))
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{addr}, nil), nil
	case opFree:
		return okResp(nil, nil), s.lib.Free(v(0))
	case opMallocManaged:
		addr, err := s.lib.MallocManaged(v(0))
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{addr}, nil), nil
	case opMemWrite:
		// The proxy's copies behave like synchronous cudaMemcpy: they
		// are ordered after in-flight device work.
		if err := s.lib.DeviceSynchronize(); err != nil {
			return nil, err
		}
		if err := s.space.WriteAt(v(0), m.payload); err != nil {
			return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.memWrite", Msg: err.Error()}
		}
		return okResp(nil, nil), nil
	case opMemRead:
		if err := s.lib.DeviceSynchronize(); err != nil {
			return nil, err
		}
		buf := make([]byte, v(1))
		if err := s.space.ReadAt(v(0), buf); err != nil {
			return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.memRead", Msg: err.Error()}
		}
		return okResp(nil, buf), nil
	case opMemCopy:
		return okResp(nil, nil), s.lib.Memcpy(v(0), v(1), v(2), cuda.MemcpyDeviceToDevice)
	case opMemset:
		return okResp(nil, nil), s.lib.Memset(v(0), byte(v(1)), v(2))
	case opStreamCreate:
		h, err := s.lib.StreamCreate()
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{uint64(h)}, nil), nil
	case opStreamDestroy:
		return okResp(nil, nil), s.lib.StreamDestroy(cuda.Stream(v(0)))
	case opStreamSync:
		return okResp(nil, nil), s.lib.StreamSynchronize(cuda.Stream(v(0)))
	case opEventCreate:
		h, err := s.lib.EventCreate()
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{uint64(h)}, nil), nil
	case opEventDestroy:
		return okResp(nil, nil), s.lib.EventDestroy(cuda.Event(v(0)))
	case opEventRecord:
		return okResp(nil, nil), s.lib.EventRecord(cuda.Event(v(0)), cuda.Stream(v(1)))
	case opEventSync:
		return okResp(nil, nil), s.lib.EventSynchronize(cuda.Event(v(0)))
	case opEventElapsed:
		d, err := s.lib.EventElapsed(cuda.Event(v(0)), cuda.Event(v(1)))
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{uint64(d)}, nil), nil
	case opRegisterFat:
		h, err := s.lib.RegisterFatBinary(m.str)
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{uint64(h)}, nil), nil
	case opRegisterFunc:
		k := s.reg.get(v(1))
		if k == nil {
			return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.registerFunc",
				Msg: fmt.Sprintf("unknown kernel id %d", v(1))}
		}
		return okResp(nil, nil), s.lib.RegisterFunction(cuda.FatBinaryHandle(v(0)), m.str, k)
	case opUnregisterFat:
		return okResp(nil, nil), s.lib.UnregisterFatBinary(cuda.FatBinaryHandle(v(0)))
	case opLaunch:
		cfg := gpusim.LaunchConfig{
			Grid:      gpusim.Dim3{X: int(v(2)), Y: int(v(3)), Z: int(v(4))},
			Block:     gpusim.Dim3{X: int(v(5)), Y: int(v(6)), Z: int(v(7))},
			SharedMem: int(v(8)),
		}
		nargs := int(v(9))
		args := make([]uint64, nargs)
		for i := 0; i < nargs; i++ {
			args[i] = v(10 + i)
		}
		err := s.lib.LaunchKernel(cuda.FatBinaryHandle(v(0)), m.str, cfg, cuda.Stream(v(1)), args...)
		return okResp(nil, nil), err
	case opStreamWaitEvent:
		return okResp(nil, nil), s.lib.StreamWaitEvent(cuda.Stream(v(0)), cuda.Event(v(1)))
	case opMemGetInfo:
		free, total, err := s.lib.MemGetInfo()
		if err != nil {
			return nil, err
		}
		return okResp([]uint64{free, total}, nil), nil
	case opDeviceSync:
		return okResp(nil, nil), s.lib.DeviceSynchronize()
	case opProps:
		p := s.lib.DeviceProperties()
		return okResp([]uint64{uint64(p.ComputeMajor), uint64(p.ComputeMinor), uint64(p.SMCount),
			uint64(p.MaxConcurrentKernels), p.GlobalMemBytes}, []byte(p.Name)), nil
	case opBlasSdot:
		return s.blasSdot(m)
	case opBlasSgemv:
		return s.blasSgemv(m)
	case opBlasSgemm:
		return s.blasSgemm(m)
	default:
		return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.dispatch",
			Msg: fmt.Sprintf("unknown op %d", m.op)}
	}
}

// blasBuffer stages payload bytes into proxy device memory.
func (s *Server) blasBuffer(data []byte) (uint64, error) {
	addr, err := s.lib.Malloc(uint64(len(data)))
	if err != nil {
		return 0, err
	}
	if err := s.space.WriteAt(addr, data); err != nil {
		s.lib.Free(addr)
		return 0, err
	}
	return addr, nil
}

// blasSdot executes cublasSdot on buffers shipped in the request: the
// proxy copies operands in, runs the kernel, and ships the result back —
// the per-call buffer movement the paper's Table 3 quantifies.
func (s *Server) blasSdot(m *message) ([]byte, error) {
	n := int(m.vals[0])
	if len(m.payload) != 8*n {
		return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.sdot",
			Msg: fmt.Sprintf("payload %d bytes, want %d", len(m.payload), 8*n)}
	}
	x, err := s.blasBuffer(m.payload[:4*n])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(x)
	y, err := s.blasBuffer(m.payload[4*n:])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(y)
	out, err := s.lib.Malloc(4)
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(out)
	if err := s.launchBlas("sdot", x, y, out, uint64(n)); err != nil {
		return nil, err
	}
	res := make([]byte, 4)
	if err := s.space.ReadAt(out, res); err != nil {
		return nil, err
	}
	return okResp(nil, res), nil
}

func (s *Server) blasSgemv(m *message) ([]byte, error) {
	mm, n := int(m.vals[0]), int(m.vals[1])
	want := 4 * (mm*n + n)
	if len(m.payload) != want {
		return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.sgemv",
			Msg: fmt.Sprintf("payload %d bytes, want %d", len(m.payload), want)}
	}
	a, err := s.blasBuffer(m.payload[:4*mm*n])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(a)
	x, err := s.blasBuffer(m.payload[4*mm*n:])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(x)
	y, err := s.lib.Malloc(uint64(4 * mm))
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(y)
	if err := s.launchBlas("sgemv", a, x, y, uint64(mm), uint64(n)); err != nil {
		return nil, err
	}
	res := make([]byte, 4*mm)
	if err := s.space.ReadAt(y, res); err != nil {
		return nil, err
	}
	return okResp(nil, res), nil
}

func (s *Server) blasSgemm(m *message) ([]byte, error) {
	mm, n, k := int(m.vals[0]), int(m.vals[1]), int(m.vals[2])
	want := 4 * (mm*k + k*n)
	if len(m.payload) != want {
		return nil, &cuda.Error{Code: cuda.ErrorInvalidValue, Op: "proxy.sgemm",
			Msg: fmt.Sprintf("payload %d bytes, want %d", len(m.payload), want)}
	}
	a, err := s.blasBuffer(m.payload[:4*mm*k])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(a)
	b, err := s.blasBuffer(m.payload[4*mm*k:])
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(b)
	c, err := s.lib.Malloc(uint64(4 * mm * n))
	if err != nil {
		return nil, err
	}
	defer s.lib.Free(c)
	if err := s.launchBlas("sgemm", a, b, c, uint64(mm), uint64(n), uint64(k)); err != nil {
		return nil, err
	}
	res := make([]byte, 4*mm*n)
	if err := s.space.ReadAt(c, res); err != nil {
		return nil, err
	}
	return okResp(nil, res), nil
}

func (s *Server) launchBlas(name string, args ...uint64) error {
	cfg := gpusim.LaunchConfig{Grid: gpusim.Dim3{X: 1}, Block: gpusim.Dim3{X: 256}}
	if err := s.lib.LaunchKernel(s.blasFat, name, cfg, cuda.DefaultStream, args...); err != nil {
		return err
	}
	return s.lib.DeviceSynchronize()
}
