// Package hypre implements a scaled-down HYPRE-style linear solver, the
// second real-world benchmark of the paper's Section 4.4.3. The paper
// runs HYPRE's ij driver (BoomerAMG-preconditioned solver on a 250³
// grid): large Unified-Memory regions (up to 1 GB per rank), long-running
// kernels, only ~600 CUDA calls per second, and host + device working on
// the same UVM regions simultaneously via streams.
//
// This implementation runs diagonally preconditioned conjugate gradient
// (PCG) on the 7-point Laplacian of an n³ grid. Every vector lives in
// Unified Memory; the SpMV is partitioned across CUDA streams; and the
// host reads the scalar reduction results straight from managed memory
// each iteration — the access pattern (host and device interleaving on
// UVM) that CRUM's shadow paging cannot support.
package hypre

import (
	"math"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Module is the HYPRE fat-binary name.
const Module = "hypre"

func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }
func f32arg(a uint64) float32  { return math.Float32frombits(uint32(a)) }

// Table returns the PCG kernels.
func Table() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: x, y, w, lo, hi — y = A·x on rows [lo,hi) of the n³ 7-point Laplacian
		"spmv": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w := int(args[2])
			lo, hi := int(args[3]), int(args[4])
			n := w * w * w
			x := ctx.Float32s(args[0], n)
			y := ctx.Float32s(args[1], n)
			plane := w * w
			par.For(hi-lo, 1<<12, func(a, b int) {
				for i := lo + a; i < lo+b; i++ {
					v := 6 * x[i]
					ix := i % w
					iy := (i / w) % w
					iz := i / plane
					if ix > 0 {
						v -= x[i-1]
					}
					if ix < w-1 {
						v -= x[i+1]
					}
					if iy > 0 {
						v -= x[i-w]
					}
					if iy < w-1 {
						v -= x[i+w]
					}
					if iz > 0 {
						v -= x[i-plane]
					}
					if iz < w-1 {
						v -= x[i+plane]
					}
					y[i] = v
				}
			})
		},
		// args: x, y, out, n — dot product into out[0]
		"dot": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[3])
			x := ctx.Float32s(args[0], n)
			y := ctx.Float32s(args[1], n)
			out := ctx.Float32s(args[2], 1)
			var s float64
			for i := 0; i < n; i++ {
				s += float64(x[i]) * float64(y[i])
			}
			out[0] = float32(s)
		},
		// args: x, y, aBits, n — y += a*x
		"axpy": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[3])
			a := f32arg(args[2])
			x := ctx.Float32s(args[0], n)
			y := ctx.Float32s(args[1], n)
			par.For(n, 1<<14, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					y[i] += a * x[i]
				}
			})
		},
		// args: x, y, bBits, n — y = x + b*y  (xpby, for direction update)
		"xpby": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[3])
			b := f32arg(args[2])
			x := ctx.Float32s(args[0], n)
			y := ctx.Float32s(args[1], n)
			par.For(n, 1<<14, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					y[i] = x[i] + b*y[i]
				}
			})
		},
	}
}

// App returns the HYPRE application.
func App() *workloads.App {
	return &workloads.App{
		Name: "HYPRE",
		PaperArgs: "ij -solver 1 -rlx 18 -ns 2 -CF 0 -hmis -interptype 6 -Pmx 4" +
			" -keepT 1 -tol 1.e-8 -agg_nl 1 -n 250 250 250",
		Char: workloads.Characteristics{
			UVM:         true,
			Streams:     true,
			MinStreams:  1,
			MaxStreams:  10,
			Description: "PCG on a 7-point Laplacian; large UVM regions, long kernels, low CPS",
		},
		KernelTables: func() map[string]map[string]workloads.Kernel {
			return map[string]map[string]workloads.Kernel{Module: Table()}
		},
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "HYPRE", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(Module, Table())

				w := workloads.ScaleInt(96, cfg.EffScale(), 16)
				n := w * w * w
				iters := workloads.ScaleInt(60, cfg.EffScale(), 10)
				nstreams := cfg.Streams
				if nstreams == 0 {
					nstreams = 4
				}

				// Large UVM regions, as HYPRE creates (up to 1 GB/rank in
				// the paper).
				bytes := uint64(4 * n)
				dX := e.MallocManaged(bytes)
				dR := e.MallocManaged(bytes)
				dP := e.MallocManaged(bytes)
				dAp := e.MallocManaged(bytes)
				dScalar := e.MallocManaged(16)

				streams := make([]crt.StreamHandle, nstreams)
				for i := range streams {
					streams[i] = e.StreamCreate()
				}

				// b = 1 everywhere: host initializes managed memory; with
				// x0 = 0, r0 = b and p0 = r0.
				rv := e.HostF32(dR, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				for i := range rv {
					rv[i] = 1
				}
				e.Memcpy(dP, dR, bytes, crt.MemcpyDefault)
				e.Memset(dX, 0, bytes)

				one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
				chunk := (n + nstreams - 1) / nstreams
				spmv := func(x, y uint64) {
					for si := 0; si < nstreams; si++ {
						lo := si * chunk
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						if lo >= hi {
							continue
						}
						e.Launch(Module, "spmv", workloads.Launch1D(hi-lo), streams[si],
							x, y, uint64(w), uint64(lo), uint64(hi))
					}
					for _, st := range streams {
						e.StreamSync(st)
					}
				}
				hostScalar := func(off int) float32 {
					sv := e.HostF32(dScalar+uint64(4*off), 1)
					if sv == nil {
						return 0
					}
					return sv[0]
				}

				lcAll := workloads.Launch1D(n)
				var rr float32
				e.Launch(Module, "dot", one, crt.DefaultStream, dR, dR, dScalar, uint64(n))
				e.DeviceSync()
				rr = hostScalar(0)

				for it := 0; it < iters; it++ {
					spmv(dP, dAp)
					e.Launch(Module, "dot", one, crt.DefaultStream, dP, dAp, dScalar+4, uint64(n))
					e.DeviceSync()
					pap := hostScalar(1)
					if pap == 0 {
						break
					}
					alpha := rr / pap
					e.Launch(Module, "axpy", lcAll, crt.DefaultStream, dP, dX, f32bits(alpha), uint64(n))
					e.Launch(Module, "axpy", lcAll, crt.DefaultStream, dAp, dR, f32bits(-alpha), uint64(n))
					e.Launch(Module, "dot", one, crt.DefaultStream, dR, dR, dScalar+8, uint64(n))
					e.DeviceSync()
					rrNew := hostScalar(2)
					beta := rrNew / rr
					rr = rrNew
					e.Launch(Module, "xpby", lcAll, crt.DefaultStream, dR, dP, f32bits(beta), uint64(n))
					// The next iteration's SpMV reads dP from user
					// streams; order it after the default-stream update.
					e.DeviceSync()
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					if rr < 1e-8 {
						break
					}
				}
				e.DeviceSync()
				xv := e.HostF32(dX, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range xv {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
