package hypre

import (
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/workloads"
)

func run(t *testing.T, cfg workloads.RunConfig) (workloads.Result, *cuda.Library) {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := crt.NewNative(lib)
	t.Cleanup(rt.Close)
	res, err := App().Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, lib
}

func TestPCGSolvesLaplacian(t *testing.T) {
	// With b = 1 on a 7-point Laplacian with Dirichlet-like boundary, the
	// CG iterate's mass must be positive and finite.
	res, lib := run(t, workloads.RunConfig{Scale: 0.25, Streams: 2, Seed: 7})
	if res.Checksum <= 0 || res.Checksum != res.Checksum {
		t.Fatalf("solution mass = %v", res.Checksum)
	}
	// All vectors in UVM (large managed regions, paper Section 4.4.3).
	st := lib.UVM().Stats()
	if st.RegisteredBytes == 0 || st.DeviceFaults == 0 || st.HostFaults == 0 {
		t.Fatalf("UVM stats = %+v", st)
	}
}

func TestDeterministicAcrossStreamCounts(t *testing.T) {
	a, _ := run(t, workloads.RunConfig{Scale: 0.2, Streams: 1, Seed: 7})
	b, _ := run(t, workloads.RunConfig{Scale: 0.2, Streams: 4, Seed: 7})
	if a.Checksum != b.Checksum {
		t.Fatalf("stream count changed CG result: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestMetadata(t *testing.T) {
	app := App()
	if !app.Char.UVM || !app.Char.Streams || app.Char.MinStreams != 1 || app.Char.MaxStreams != 10 {
		t.Fatalf("characteristics = %+v (paper Table 1: UVM + streams 1-10)", app.Char)
	}
}
