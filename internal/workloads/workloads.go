// Package workloads defines the application framework shared by every
// benchmark in the paper's evaluation (Section 4.4): the 14 Rodinia
// mini-apps, the stream-oriented NVIDIA samples (simpleStreams,
// UnifiedMemoryStreams), and the real-world DOE codes (LULESH, HPGMG-FV,
// HYPRE).
//
// Applications are written against crt.Runtime, so the identical code
// runs natively, under CRAC, or under the proxy baseline. Each App
// reports the characteristics Table 1 tabulates (UVM use, stream use,
// stream range) and returns a Result carrying elapsed time, the CUDA
// call counters (for the paper's CPS formula), and an output checksum
// used by the checkpoint-transparency tests.
package workloads

import (
	"fmt"
	"time"

	"repro/internal/crt"
)

// Characteristics describes an application for Table 1.
type Characteristics struct {
	UVM         bool
	Streams     bool
	MinStreams  int // 0 when Streams is false
	MaxStreams  int
	Description string
}

// RunConfig parameterizes one application run.
type RunConfig struct {
	// Scale multiplies the default problem size (1.0 = repository
	// default, which is the paper's configuration scaled to
	// laptop/CI size).
	Scale float64
	// Streams overrides the application's stream count (0 = default).
	Streams int
	// Iters overrides app-specific inner iteration counts (0 = default;
	// simpleStreams' niterations, for example).
	Iters int
	// Reps overrides app-specific repetition counts (0 = default;
	// simpleStreams' nreps).
	Reps int
	// Seed seeds app-specific randomness (UnifiedMemoryStreams uses
	// 12701 as in the paper).
	Seed int64
	// Hook, if non-nil, is called between outer iterations with the
	// 0-based step index; returning an error aborts the run. The harness
	// uses it to trigger a checkpoint at a chosen point mid-run.
	Hook func(step int) error
}

// EffScale returns the configured scale, defaulting to 1.
func (c RunConfig) EffScale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Result is the outcome of one application run.
type Result struct {
	App      string
	Elapsed  time.Duration
	Calls    crt.Counters
	Checksum float64
	// Detail carries app-specific measurements (e.g. simpleStreams'
	// per-kernel streamed/non-streamed times).
	Detail map[string]float64
}

// CPS returns CUDA calls per second per the paper's Equation 2.
func (r Result) CPS() float64 { return r.Calls.CPS(r.Elapsed) }

// App is one benchmark application.
type App struct {
	Name string
	Char Characteristics
	// PaperArgs is the command line the paper used (Table 2 and
	// Section 4.4.3), recorded for the reproduction index.
	PaperArgs string
	// Run executes the application on rt.
	Run func(rt crt.Runtime, cfg RunConfig) (Result, error)
	// KernelTables returns the app's fat-binary tables keyed by module,
	// for cross-process restore.
	KernelTables func() map[string]map[string]Kernel
}

// Kernel aliases the device kernel type for workload files.
type Kernel = crt.Kernel

// Env is an error-accumulating wrapper over crt.Runtime that keeps
// application code close to CUDA style: the first error poisons the
// environment and subsequent operations are no-ops, checked once via
// Err (like CUDA's sticky error state).
type Env struct {
	RT  crt.Runtime
	fat map[string]crt.FatBinHandle
	err error
}

// NewEnv wraps rt.
func NewEnv(rt crt.Runtime) *Env {
	return &Env{RT: rt, fat: make(map[string]crt.FatBinHandle)}
}

// Err returns the first error encountered.
func (e *Env) Err() error { return e.err }

// FailWith records an externally produced error (first one wins).
func (e *Env) FailWith(err error) { e.fail(err) }

// FailIf is shorthand for recording a possible error from a direct
// runtime call made outside the Env helpers.
func (e *Env) FailIf(err error) { e.fail(err) }

// fail records err if it is the first.
func (e *Env) fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// RegisterModule registers a fat binary and its kernels.
func (e *Env) RegisterModule(module string, table map[string]Kernel) {
	if e.err != nil {
		return
	}
	fat, err := e.RT.RegisterFatBinary(module)
	if err != nil {
		e.fail(err)
		return
	}
	e.fat[module] = fat
	for name, k := range table {
		if err := e.RT.RegisterFunction(fat, name, k); err != nil {
			e.fail(err)
			return
		}
	}
}

// Malloc allocates device memory.
func (e *Env) Malloc(n uint64) uint64 {
	if e.err != nil {
		return 0
	}
	a, err := e.RT.Malloc(n)
	e.fail(err)
	return a
}

// MallocManaged allocates UVM memory.
func (e *Env) MallocManaged(n uint64) uint64 {
	if e.err != nil {
		return 0
	}
	a, err := e.RT.MallocManaged(n)
	e.fail(err)
	return a
}

// MallocHost allocates pinned host memory.
func (e *Env) MallocHost(n uint64) uint64 {
	if e.err != nil {
		return 0
	}
	a, err := e.RT.MallocHost(n)
	e.fail(err)
	return a
}

// AppAlloc allocates plain host memory.
func (e *Env) AppAlloc(n uint64) uint64 {
	if e.err != nil {
		return 0
	}
	a, err := e.RT.AppAlloc(n)
	e.fail(err)
	return a
}

// Free releases device or managed memory.
func (e *Env) Free(addr uint64) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.Free(addr))
}

// FreeHost releases pinned host memory.
func (e *Env) FreeHost(addr uint64) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.FreeHost(addr))
}

// Memcpy copies memory.
func (e *Env) Memcpy(dst, src, n uint64, kind crt.MemcpyKind) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.Memcpy(dst, src, n, kind))
}

// MemcpyAsync copies memory on a stream.
func (e *Env) MemcpyAsync(dst, src, n uint64, kind crt.MemcpyKind, s crt.StreamHandle) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.MemcpyAsync(dst, src, n, kind, s))
}

// Memset fills memory.
func (e *Env) Memset(addr uint64, v byte, n uint64) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.Memset(addr, v, n))
}

// Launch launches a kernel from a registered module.
func (e *Env) Launch(module, kernel string, cfg crt.LaunchConfig, s crt.StreamHandle, args ...uint64) {
	if e.err != nil {
		return
	}
	fat, ok := e.fat[module]
	if !ok {
		e.fail(fmt.Errorf("workloads: module %q not registered", module))
		return
	}
	e.fail(e.RT.LaunchKernel(fat, kernel, cfg, s, args...))
}

// StreamCreate creates a stream.
func (e *Env) StreamCreate() crt.StreamHandle {
	if e.err != nil {
		return 0
	}
	s, err := e.RT.StreamCreate()
	e.fail(err)
	return s
}

// StreamDestroy destroys a stream.
func (e *Env) StreamDestroy(s crt.StreamHandle) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.StreamDestroy(s))
}

// StreamSync synchronizes a stream.
func (e *Env) StreamSync(s crt.StreamHandle) {
	if e.err != nil {
		return
	}
	e.fail(e.RT.StreamSynchronize(s))
}

// DeviceSync synchronizes the device.
func (e *Env) DeviceSync() {
	if e.err != nil {
		return
	}
	e.fail(e.RT.DeviceSynchronize())
}

// HostF32 returns a host float32 view.
func (e *Env) HostF32(addr uint64, count int) []float32 {
	if e.err != nil {
		return nil
	}
	v, err := crt.HostF32(e.RT, addr, count)
	e.fail(err)
	return v
}

// HostI32 returns a host int32 view.
func (e *Env) HostI32(addr uint64, count int) []int32 {
	if e.err != nil {
		return nil
	}
	v, err := crt.HostI32(e.RT, addr, count)
	e.fail(err)
	return v
}

// Measure wraps an application body with the timing and call-counter
// bookkeeping every Result needs. body returns the output checksum and
// optional detail measurements.
func Measure(rt crt.Runtime, app string, body func() (float64, map[string]float64, error)) (Result, error) {
	before := rt.Counters()
	start := time.Now()
	checksum, detail, err := body()
	if err != nil {
		return Result{}, err
	}
	after := rt.Counters()
	return Result{
		App:     app,
		Elapsed: time.Since(start),
		Calls: crt.Counters{
			LaunchKernel: after.LaunchKernel - before.LaunchKernel,
			OtherCalls:   after.OtherCalls - before.OtherCalls,
		},
		Checksum: checksum,
		Detail:   detail,
	}, nil
}

// Launch1D builds a 1-D launch configuration covering n elements with
// 256-thread blocks.
func Launch1D(n int) crt.LaunchConfig {
	blocks := (n + 255) / 256
	if blocks == 0 {
		blocks = 1
	}
	return crt.LaunchConfig{Grid: crt.Dim3{X: blocks}, Block: crt.Dim3{X: 256}}
}

// Launch2D builds a 2-D launch configuration for a w×h grid with 16×16
// blocks.
func Launch2D(w, h int) crt.LaunchConfig {
	bx := (w + 15) / 16
	by := (h + 15) / 16
	if bx == 0 {
		bx = 1
	}
	if by == 0 {
		by = 1
	}
	return crt.LaunchConfig{Grid: crt.Dim3{X: bx, Y: by}, Block: crt.Dim3{X: 16, Y: 16}}
}

// ScaleInt scales n by s, with a floor of min.
func ScaleInt(n int, s float64, min int) int {
	v := int(float64(n) * s)
	if v < min {
		return min
	}
	return v
}

// LCG is a tiny deterministic generator for workload inputs (identical
// inputs across native/CRAC/proxy runs are required for checksum
// comparisons).
type LCG struct{ state uint64 }

// NewLCG seeds a generator.
func NewLCG(seed int64) *LCG { return &LCG{state: uint64(seed)*2862933555777941757 + 3037000493} }

// Next returns the next raw 64-bit value.
func (g *LCG) Next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Float32 returns a float32 in [0, 1).
func (g *LCG) Float32() float32 {
	return float32(g.Next()>>40) / float32(1<<24)
}

// Intn returns an int in [0, n).
func (g *LCG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.Next() % uint64(n))
}
