// Package lulesh implements a scaled-down GPU LULESH 2.0 (Livermore
// Unstructured Lagrangian Explicit Shock Hydrodynamics), the first DOE
// real-world application of the paper's Section 4.4.2. The structured
// grid variant is used, as in the paper ("-s 150", a 150³ element mesh,
// ~2 GB); the repository default is a smaller cube.
//
// The dataflow matches the original's per-timestep sequence — element
// stress/force computation scattered to nodes, nodal acceleration /
// velocity / position integration, then element volume and EOS updates —
// launched across multiple CUDA streams by partitioning the element
// space (Table 1 characterizes LULESH with 2–32 streams, no UVM).
package lulesh

import (
	"math"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Module is the LULESH fat-binary name.
const Module = "lulesh"

func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }
func f32arg(a uint64) float32  { return math.Float32frombits(uint32(a)) }

// Table returns the LULESH kernels.
func Table() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: e, p, q, f, s, lo, hi — element stress → force contribution
		"calcForce": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			lo, hi := int(args[5]), int(args[6])
			n := hi
			energy := ctx.Float32s(args[0], n)
			pressure := ctx.Float32s(args[1], n)
			qq := ctx.Float32s(args[2], n)
			force := ctx.Float32s(args[3], n)
			sound := ctx.Float32s(args[4], n)
			par.For(hi-lo, 1<<12, func(a, b int) {
				for i := lo + a; i < lo+b; i++ {
					sig := -pressure[i] - qq[i]
					force[i] = sig * (1 + 0.01*energy[i])
					sound[i] = float32(math.Sqrt(float64(1.0 + pressure[i])))
				}
			})
		},
		// args: f, vel, pos, lo, hi, dtBits — nodal integration
		"integrate": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			lo, hi := int(args[3]), int(args[4])
			dt := f32arg(args[5])
			n := hi
			force := ctx.Float32s(args[0], n)
			vel := ctx.Float32s(args[1], n)
			pos := ctx.Float32s(args[2], n)
			par.For(hi-lo, 1<<12, func(a, b int) {
				for i := lo + a; i < lo+b; i++ {
					acc := force[i] // unit nodal mass
					vel[i] += acc * dt
					vel[i] *= 0.999 // drag, for stability
					pos[i] += vel[i] * dt
				}
			})
		},
		// args: pos, vol, e, p, q, lo, hi, w — element EOS update
		"updateEOS": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			lo, hi := int(args[5]), int(args[6])
			w := int(args[7])
			n := hi
			pos := ctx.Float32s(args[0], n)
			vol := ctx.Float32s(args[1], n)
			energy := ctx.Float32s(args[2], n)
			pressure := ctx.Float32s(args[3], n)
			qq := ctx.Float32s(args[4], n)
			par.For(hi-lo, 1<<12, func(a, b int) {
				for i := lo + a; i < lo+b; i++ {
					right := i + 1
					if right >= n {
						right = i
					}
					below := i + w
					if below >= n {
						below = i
					}
					dv := (pos[right] - pos[i]) + (pos[below] - pos[i])
					vol[i] += dv * 0.01
					if vol[i] < 0.1 {
						vol[i] = 0.1
					}
					compression := 1/vol[i] - 1
					energy[i] += 0.5 * pressure[i] * dv * 0.01
					if energy[i] < 0 {
						energy[i] = 0
					}
					pressure[i] = 0.6 * energy[i] * compression
					if pressure[i] < 0 {
						pressure[i] = 0
					}
					dvel := dv
					if dvel < 0 {
						qq[i] = dvel * dvel * 2
					} else {
						qq[i] = 0
					}
				}
			})
		},
		// args: sound, out, n — courant timestep reduction
		"calcDt": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			sound := ctx.Float32s(args[0], n)
			out := ctx.Float32s(args[1], 1)
			minDt := float32(math.Inf(1))
			for i := 0; i < n; i++ {
				if sound[i] > 0 {
					if dt := 0.1 / sound[i]; dt < minDt {
						minDt = dt
					}
				}
			}
			out[0] = minDt
		},
	}
}

// App returns the LULESH application.
func App() *workloads.App {
	return &workloads.App{
		Name:      "LULESH",
		PaperArgs: "-s 150 (structured grid, 150x150x150, ~2GB)",
		Char: workloads.Characteristics{
			Streams:     true,
			MinStreams:  2,
			MaxStreams:  32,
			Description: "Lagrangian explicit shock hydrodynamics (DOE proxy app)",
		},
		KernelTables: func() map[string]map[string]workloads.Kernel {
			return map[string]map[string]workloads.Kernel{Module: Table()}
		},
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "LULESH", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(Module, Table())

				s := workloads.ScaleInt(40, cfg.EffScale(), 8) // edge elements
				n := s * s * s
				iters := workloads.ScaleInt(160, cfg.EffScale(), 10)
				nstreams := cfg.Streams
				if nstreams == 0 {
					nstreams = 8
				}

				alloc := func() uint64 { return e.Malloc(uint64(4 * n)) }
				dEnergy, dPressure, dQ := alloc(), alloc(), alloc()
				dForce, dVel, dPos := alloc(), alloc(), alloc()
				dVol, dSound := alloc(), alloc()
				dDt := e.Malloc(4)
				hInit := e.AppAlloc(uint64(4 * n))
				hDt := e.AppAlloc(4 * 64)

				iv := e.HostF32(hInit, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				// Sedov-like initial condition: energy deposited at origin.
				for i := range iv {
					iv[i] = 0
				}
				iv[0] = float32(n) * 3
				e.Memcpy(dEnergy, hInit, uint64(4*n), crt.MemcpyHostToDevice)
				e.Memset(dPressure, 0, uint64(4*n))
				e.Memset(dQ, 0, uint64(4*n))
				e.Memset(dForce, 0, uint64(4*n))
				e.Memset(dVel, 0, uint64(4*n))
				for i := range iv {
					iv[i] = float32(i % s)
				}
				e.Memcpy(dPos, hInit, uint64(4*n), crt.MemcpyHostToDevice)
				for i := range iv {
					iv[i] = 1
				}
				e.Memcpy(dVol, hInit, uint64(4*n), crt.MemcpyHostToDevice)

				streams := make([]crt.StreamHandle, nstreams)
				for i := range streams {
					streams[i] = e.StreamCreate()
				}
				chunk := (n + nstreams - 1) / nstreams

				dt := float32(1e-3)
				one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
				for it := 0; it < iters; it++ {
					// Phase 1: element force, partitioned across streams.
					for si := 0; si < nstreams; si++ {
						lo := si * chunk
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						if lo >= hi {
							continue
						}
						e.Launch(Module, "calcForce", workloads.Launch1D(hi-lo), streams[si],
							dEnergy, dPressure, dQ, dForce, dSound, uint64(lo), uint64(hi))
					}
					for _, st := range streams {
						e.StreamSync(st)
					}
					// Phase 2: nodal integration.
					for si := 0; si < nstreams; si++ {
						lo := si * chunk
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						if lo >= hi {
							continue
						}
						e.Launch(Module, "integrate", workloads.Launch1D(hi-lo), streams[si],
							dForce, dVel, dPos, uint64(lo), uint64(hi), f32bits(dt))
					}
					for _, st := range streams {
						e.StreamSync(st)
					}
					// Phase 3: element EOS.
					for si := 0; si < nstreams; si++ {
						lo := si * chunk
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						if lo >= hi {
							continue
						}
						e.Launch(Module, "updateEOS", workloads.Launch1D(hi-lo), streams[si],
							dPos, dVol, dEnergy, dPressure, dQ, uint64(lo), uint64(hi), uint64(s))
					}
					for _, st := range streams {
						e.StreamSync(st)
					}
					// Courant condition on the host, as the original does.
					e.Launch(Module, "calcDt", one, crt.DefaultStream, dSound, dDt, uint64(n))
					e.Memcpy(hDt, dDt, 4, crt.MemcpyDeviceToHost)
					dv := e.HostF32(hDt, 1)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					if dv[0] > 0 && dv[0] < dt {
						dt = dv[0]
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
				}
				e.DeviceSync()
				e.Memcpy(hInit, dEnergy, uint64(4*n), crt.MemcpyDeviceToHost)
				ev := e.HostF32(hInit, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range ev {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
