package lulesh

import (
	"testing"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/workloads"
)

func run(t *testing.T, cfg workloads.RunConfig) workloads.Result {
	t.Helper()
	lib, err := cuda.NewLibrary(cuda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt := crt.NewNative(lib)
	t.Cleanup(rt.Close)
	res, err := App().Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunsAndConservesEnergySign(t *testing.T) {
	res := run(t, workloads.RunConfig{Scale: 0.3, Streams: 2, Seed: 7})
	// The Sedov-like deposit decays but total energy stays positive and
	// finite.
	if res.Checksum <= 0 || res.Checksum != res.Checksum /* NaN */ {
		t.Fatalf("energy checksum = %v", res.Checksum)
	}
	if res.Calls.LaunchKernel == 0 {
		t.Fatal("no kernels launched")
	}
}

func TestDeterministicAcrossStreamCounts(t *testing.T) {
	// Stream partitioning must not change the physics: 1 stream vs 4.
	a := run(t, workloads.RunConfig{Scale: 0.25, Streams: 1, Seed: 7})
	b := run(t, workloads.RunConfig{Scale: 0.25, Streams: 4, Seed: 7})
	if a.Checksum != b.Checksum {
		t.Fatalf("stream count changed result: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestMetadata(t *testing.T) {
	app := App()
	if !app.Char.Streams || app.Char.MinStreams != 2 || app.Char.MaxStreams != 32 {
		t.Fatalf("characteristics = %+v (paper Table 1: streams 2-32)", app.Char)
	}
	if app.Char.UVM {
		t.Fatal("LULESH does not use UVM in Table 1")
	}
	if len(Table()) == 0 || app.KernelTables()[Module] == nil {
		t.Fatal("kernel table")
	}
}
