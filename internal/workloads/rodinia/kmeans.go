package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const kmeansModule = "rodinia.kmeans"

// kmeansTable holds the K-means kernels: point-to-centroid assignment on
// the device; the (small) centroid update runs on the host, as in the
// original.
func kmeansTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: points, centroids, membership, n, d, k
		"assign": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, d, k := int(args[3]), int(args[4]), int(args[5])
			pts := ctx.Float32s(args[0], n*d)
			cent := ctx.Float32s(args[1], k*d)
			member := ctx.Int32s(args[2], n)
			par.For(n, 1<<11, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					pi := pts[i*d : (i+1)*d]
					best, bestDist := 0, float32(1e30)
					for c := 0; c < k; c++ {
						cc := cent[c*d : (c+1)*d]
						var dist float32
						for j := 0; j < d; j++ {
							diff := pi[j] - cc[j]
							dist += diff * diff
						}
						if dist < bestDist {
							best, bestDist = c, dist
						}
					}
					member[i] = int32(best)
				}
			})
		},
	}
}

// Kmeans is Rodinia's K-means clustering (kdd_cup, -l 1000 in the
// paper).
func Kmeans() *workloads.App {
	return &workloads.App{
		Name:      "Kmeans",
		PaperArgs: "kdd_cup -l 1000",
		Char: workloads.Characteristics{
			Description: "K-means clustering; device assignment, host centroid update",
		},
		KernelTables: singleTable(kmeansModule, kmeansTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Kmeans", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(kmeansModule, kmeansTable())

				n := workloads.ScaleInt(32_000, cfg.EffScale(), 512)
				iters := workloads.ScaleInt(150, cfg.EffScale(), 8)
				const d, k = 16, 8

				hPts := e.AppAlloc(uint64(4 * n * d))
				hCent := e.AppAlloc(uint64(4 * k * d))
				hMember := e.AppAlloc(uint64(4 * n))
				pts := e.HostF32(hPts, n*d)
				cent := e.HostF32(hCent, k*d)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 8)
				for i := range pts {
					pts[i] = rng.Float32()
				}
				copy(cent, pts[:k*d]) // first k points seed the centroids

				dPts := e.Malloc(uint64(4 * n * d))
				dCent := e.Malloc(uint64(4 * k * d))
				dMember := e.Malloc(uint64(4 * n))
				e.Memcpy(dPts, hPts, uint64(4*n*d), crt.MemcpyHostToDevice)

				lc := workloads.Launch1D(n)
				for it := 0; it < iters; it++ {
					e.Memcpy(dCent, hCent, uint64(4*k*d), crt.MemcpyHostToDevice)
					e.Launch(kmeansModule, "assign", lc, crt.DefaultStream,
						dPts, dCent, dMember, uint64(n), uint64(d), uint64(k))
					e.Memcpy(hMember, dMember, uint64(4*n), crt.MemcpyDeviceToHost)
					member := e.HostI32(hMember, n)
					cent = e.HostF32(hCent, k*d)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					// Host-side centroid update.
					var counts [k]int
					for i := range cent {
						cent[i] = 0
					}
					for i := 0; i < n; i++ {
						c := int(member[i])
						counts[c]++
						for j := 0; j < d; j++ {
							cent[c*d+j] += pts[i*d+j]
						}
					}
					for c := 0; c < k; c++ {
						if counts[c] == 0 {
							continue
						}
						inv := 1 / float32(counts[c])
						for j := 0; j < d; j++ {
							cent[c*d+j] *= inv
						}
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
				}
				var sum float64
				for _, v := range cent {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
