package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const ludModule = "rodinia.lud"

// ludTable holds the blocked LU-decomposition kernels (diagonal,
// perimeter, internal), the three-phase structure of Rodinia's lud.
func ludTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: a, n, k, bs — factor the k-th diagonal block in place
		"lud_diagonal": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, k, bs := int(args[1]), int(args[2]), int(args[3])
			a := ctx.Float32s(args[0], n*n)
			base := k * bs
			for i := 0; i < bs; i++ {
				gi := base + i
				for j := i + 1; j < bs; j++ {
					gj := base + j
					m := a[gj*n+gi] / a[gi*n+gi]
					a[gj*n+gi] = m
					for c := i + 1; c < bs; c++ {
						a[gj*n+base+c] -= m * a[gi*n+base+c]
					}
				}
			}
		},
		// args: a, n, k, bs — update the k-th block row and column
		"lud_perimeter": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, k, bs := int(args[1]), int(args[2]), int(args[3])
			a := ctx.Float32s(args[0], n*n)
			base := k * bs
			nb := n / bs
			blocks := nb - k - 1
			if blocks <= 0 {
				return
			}
			par.For(blocks, 1, func(lo, hi int) {
				for b := lo; b < hi; b++ {
					off := (k + 1 + b) * bs
					// Row panel: solve L(diag) * U(block) = A.
					for i := 0; i < bs; i++ {
						gi := base + i
						for j := 0; j < i; j++ {
							m := a[gi*n+base+j]
							for c := 0; c < bs; c++ {
								a[gi*n+off+c] -= m * a[(base+j)*n+off+c]
							}
						}
					}
					// Column panel: solve L(block) * U(diag) = A.
					for i := 0; i < bs; i++ {
						gi := off + i
						for j := 0; j < bs; j++ {
							m := a[gi*n+base+j] / a[(base+j)*n+base+j]
							a[gi*n+base+j] = m
							for c := j + 1; c < bs; c++ {
								a[gi*n+base+c] -= m * a[(base+j)*n+base+c]
							}
						}
					}
				}
			})
		},
		// args: a, n, k, bs — trailing submatrix update
		"lud_internal": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, k, bs := int(args[1]), int(args[2]), int(args[3])
			a := ctx.Float32s(args[0], n*n)
			base := k * bs
			nb := n / bs
			blocks := nb - k - 1
			if blocks <= 0 {
				return
			}
			par.For(blocks, 1, func(lo, hi int) {
				for bi := lo; bi < hi; bi++ {
					rowOff := (k + 1 + bi) * bs
					for bj := 0; bj < blocks; bj++ {
						colOff := (k + 1 + bj) * bs
						for i := 0; i < bs; i++ {
							gi := rowOff + i
							for l := 0; l < bs; l++ {
								m := a[gi*n+base+l]
								if m == 0 {
									continue
								}
								for j := 0; j < bs; j++ {
									a[gi*n+colOff+j] -= m * a[(base+l)*n+colOff+j]
								}
							}
						}
					}
				}
			})
		},
	}
}

// LUD is Rodinia's blocked LU decomposition (-s 2048 in the paper).
func LUD() *workloads.App {
	return &workloads.App{
		Name:      "LUD",
		PaperArgs: "-s 2048 -v",
		Char: workloads.Characteristics{
			Description: "blocked LU decomposition (diagonal/perimeter/internal)",
		},
		KernelTables: singleTable(ludModule, ludTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "LUD", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(ludModule, ludTable())

				const bs = 16
				n := workloads.ScaleInt(640, cfg.EffScale(), 2*bs)
				n = (n / bs) * bs

				hA := e.AppAlloc(uint64(4 * n * n))
				av := e.HostF32(hA, n*n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 9)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						av[i*n+j] = rng.Float32()
						if i == j {
							av[i*n+j] += float32(n)
						}
					}
				}
				dA := e.Malloc(uint64(4 * n * n))
				e.Memcpy(dA, hA, uint64(4*n*n), crt.MemcpyHostToDevice)

				nb := n / bs
				one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: bs}}
				for k := 0; k < nb; k++ {
					e.Launch(ludModule, "lud_diagonal", one, crt.DefaultStream, dA, uint64(n), uint64(k), uint64(bs))
					if k < nb-1 {
						e.Launch(ludModule, "lud_perimeter", one, crt.DefaultStream, dA, uint64(n), uint64(k), uint64(bs))
						e.Launch(ludModule, "lud_internal", one, crt.DefaultStream, dA, uint64(n), uint64(k), uint64(bs))
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(k); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hA, dA, uint64(4*n*n), crt.MemcpyDeviceToHost)
				out := e.HostF32(hA, n*n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				// Checksum over the diagonal of U (stable summary).
				var sum float64
				for i := 0; i < n; i++ {
					sum += float64(out[i*n+i])
				}
				return sum, nil, nil
			})
		},
	}
}
