package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const heartwallModule = "rodinia.heartwall"

// heartwallTable holds the Heartwall kernels: per video frame, a
// template-correlation pass around each tracking point. Faithful to the
// original's structure, the host allocates fresh per-frame device
// buffers and frees them afterwards — Heartwall is one of the two
// Figure 3 outliers whose restart outweighs its checkpoint because CRAC
// replays that long cudaMalloc/cudaFree history (Section 4.4.1).
func heartwallTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: frame, pts, scores, w, h, npts, win
		"track": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[3]), int(args[4])
			npts := int(args[5])
			win := int(args[6])
			frame := ctx.Float32s(args[0], w*h)
			pts := ctx.Int32s(args[1], 2*npts)
			scores := ctx.Float32s(args[2], npts)
			par.For(npts, 4, func(lo, hi int) {
				for p := lo; p < hi; p++ {
					cx, cy := int(pts[2*p]), int(pts[2*p+1])
					var acc float64
					for dy := -win; dy <= win; dy++ {
						y := cy + dy
						if y < 0 || y >= h {
							continue
						}
						for dx := -win; dx <= win; dx++ {
							x := cx + dx
							if x < 0 || x >= w {
								continue
							}
							v := float64(frame[y*w+x])
							acc += v * v
						}
					}
					scores[p] = float32(acc)
				}
			})
		},
		// args: scores, pts, npts, w, h — drift each point by its score
		"advance": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			npts := int(args[2])
			w, h := int(args[3]), int(args[4])
			scores := ctx.Float32s(args[0], npts)
			pts := ctx.Int32s(args[1], 2*npts)
			for p := 0; p < npts; p++ {
				dx := int32(scores[p]) % 3
				pts[2*p] = (pts[2*p] + dx + int32(w)) % int32(w)
				pts[2*p+1] = (pts[2*p+1] + 1) % int32(h)
			}
		},
	}
}

// Heartwall is Rodinia's heart-wall tracking (test.avi, 104 frames in
// the paper).
func Heartwall() *workloads.App {
	return &workloads.App{
		Name:      "Heartwall",
		PaperArgs: "test.avi 104",
		Char: workloads.Characteristics{
			Description: "ultrasound heart-wall tracking; per-frame cudaMalloc/cudaFree churn",
		},
		KernelTables: singleTable(heartwallModule, heartwallTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Heartwall", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(heartwallModule, heartwallTable())

				w := workloads.ScaleInt(256, cfg.EffScale(), 64)
				h := w
				frames := workloads.ScaleInt(104, cfg.EffScale(), 8)
				npts := 48
				const win = 10

				hFrame := e.AppAlloc(uint64(4 * w * h))
				hPts := e.AppAlloc(uint64(4 * 2 * npts))
				hScores := e.AppAlloc(uint64(4 * npts))
				pv := e.HostI32(hPts, 2*npts)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 5)
				for i := range pv {
					pv[i] = int32(rng.Intn(w))
				}

				// Persistent point state on the device.
				dPts := e.Malloc(uint64(4 * 2 * npts))
				e.Memcpy(dPts, hPts, uint64(4*2*npts), crt.MemcpyHostToDevice)

				var sum float64
				for f := 0; f < frames; f++ {
					// Synthesize the frame (stand-in for AVI decode).
					// The view is re-acquired each frame: a checkpoint and
					// restart may have replaced the backing memory.
					fv := e.HostF32(hFrame, w*h)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for i := range fv {
						fv[i] = rng.Float32()
					}
					// Fresh per-frame device buffers — the original
					// allocates dozens of working arrays per frame, the
					// allocation pattern that stresses restart replay.
					dFrame := e.Malloc(uint64(4 * w * h))
					dScores := e.Malloc(uint64(4 * npts))
					var scratch [6]uint64
					for si := range scratch {
						scratch[si] = e.Malloc(uint64(4 * w))
					}
					e.Memcpy(dFrame, hFrame, uint64(4*w*h), crt.MemcpyHostToDevice)
					e.Launch(heartwallModule, "track", workloads.Launch1D(npts), crt.DefaultStream,
						dFrame, dPts, dScores, uint64(w), uint64(h), uint64(npts), uint64(win))
					e.Launch(heartwallModule, "advance", workloads.Launch1D(npts), crt.DefaultStream,
						dScores, dPts, uint64(npts), uint64(w), uint64(h))
					e.Memcpy(hScores, dScores, uint64(4*npts), crt.MemcpyDeviceToHost)
					sv := e.HostF32(hScores, npts)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for _, s := range sv {
						sum += float64(s)
					}
					for si := len(scratch) - 1; si >= 0; si-- {
						e.Free(scratch[si])
					}
					e.Free(dScores)
					e.Free(dFrame)
					if cfg.Hook != nil {
						if err := cfg.Hook(f); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				return sum, nil, nil
			})
		},
	}
}
