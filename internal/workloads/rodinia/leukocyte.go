package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const leukocyteModule = "rodinia.leukocyte"

// leukocyteTable holds the Leukocyte kernels: per video frame, a
// GICOV-style gradient score over the image followed by a dilation pass,
// the two device stages of Rodinia's leukocyte tracker.
func leukocyteTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: img, score, w, h — gradient inner-product score
		"gicov": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			img := ctx.Float32s(args[0], w*h)
			score := ctx.Float32s(args[1], w*h)
			par.For(h, 32, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					for x := 0; x < w; x++ {
						i := y*w + x
						gx, gy := float32(0), float32(0)
						if x > 0 && x < w-1 {
							gx = (img[i+1] - img[i-1]) * 0.5
						}
						if y > 0 && y < h-1 {
							gy = (img[i+w] - img[i-w]) * 0.5
						}
						score[i] = gx*gx + gy*gy
					}
				}
			})
		},
		// args: score, out, w, h, radius — max-dilation
		"dilate": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			r := int(args[4])
			score := ctx.Float32s(args[0], w*h)
			out := ctx.Float32s(args[1], w*h)
			par.For(h, 32, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					for x := 0; x < w; x++ {
						best := float32(0)
						for dy := -r; dy <= r; dy++ {
							yy := y + dy
							if yy < 0 || yy >= h {
								continue
							}
							for dx := -r; dx <= r; dx++ {
								xx := x + dx
								if xx < 0 || xx >= w {
									continue
								}
								if v := score[yy*w+xx]; v > best {
									best = v
								}
							}
						}
						out[y*w+x] = best
					}
				}
			})
		},
	}
}

// Leukocyte is Rodinia's white-blood-cell tracker (testfile.avi, 500
// frames in the paper).
func Leukocyte() *workloads.App {
	return &workloads.App{
		Name:      "Leukocyte",
		PaperArgs: "testfile.avi 500",
		Char: workloads.Characteristics{
			Description: "leukocyte detection and tracking (GICOV + dilation per frame)",
		},
		KernelTables: singleTable(leukocyteModule, leukocyteTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Leukocyte", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(leukocyteModule, leukocyteTable())

				w := workloads.ScaleInt(224, cfg.EffScale(), 40)
				h := w
				frames := workloads.ScaleInt(90, cfg.EffScale(), 6)
				const radius = 2
				px := w * h

				hImg := e.AppAlloc(uint64(4 * px))
				hOut := e.AppAlloc(uint64(4 * px))
				rng := workloads.NewLCG(cfg.Seed + 10)

				dImg := e.Malloc(uint64(4 * px))
				dScore := e.Malloc(uint64(4 * px))
				dOut := e.Malloc(uint64(4 * px))

				lc := workloads.Launch2D(w, h)
				var sum float64
				for f := 0; f < frames; f++ {
					// Re-acquired per frame: restart may replace the backing.
					iv := e.HostF32(hImg, px)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for i := range iv {
						iv[i] = rng.Float32()
					}
					e.Memcpy(dImg, hImg, uint64(4*px), crt.MemcpyHostToDevice)
					e.Launch(leukocyteModule, "gicov", lc, crt.DefaultStream,
						dImg, dScore, uint64(w), uint64(h))
					e.Launch(leukocyteModule, "dilate", lc, crt.DefaultStream,
						dScore, dOut, uint64(w), uint64(h), uint64(radius))
					e.Memcpy(hOut, dOut, uint64(4*px), crt.MemcpyDeviceToHost)
					ov := e.HostF32(hOut, px)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					var frameMax float64
					for _, v := range ov {
						if float64(v) > frameMax {
							frameMax = float64(v)
						}
					}
					sum += frameMax
					if cfg.Hook != nil {
						if err := cfg.Hook(f); err != nil {
							return 0, nil, err
						}
					}
				}
				return sum, nil, nil
			})
		},
	}
}
