package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const dwtModule = "rodinia.dwt2d"

// dwtTable holds the 2-D discrete wavelet transform kernels: a Haar
// lifting step applied to rows then columns, per decomposition level —
// the structure of Rodinia's dwt2d. The paper's run ("-f -5 -l 100000")
// repeats the forward 5-level transform many times, making DWT2D the
// most call-intensive Rodinia benchmark (≈800K CUDA calls).
func dwtTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: img, tmp, w, h, level  (transform rows of the w×h top-left block)
		"dwt_rows": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			stride := int(args[4])
			img := ctx.Float32s(args[0], stride*h)
			tmp := ctx.Float32s(args[1], stride*h)
			half := w / 2
			par.For(h, 64, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					row := img[y*stride : y*stride+w]
					out := tmp[y*stride : y*stride+w]
					for x := 0; x < half; x++ {
						a, b := row[2*x], row[2*x+1]
						out[x] = (a + b) * 0.5
						out[half+x] = (a - b) * 0.5
					}
					copy(row, out)
				}
			})
		},
		// args: img, tmp, w, h, stride  (transform columns)
		"dwt_cols": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			stride := int(args[4])
			img := ctx.Float32s(args[0], stride*h)
			tmp := ctx.Float32s(args[1], stride*h)
			half := h / 2
			par.For(w, 64, func(lo, hi int) {
				for x := lo; x < hi; x++ {
					for y := 0; y < half; y++ {
						a, b := img[(2*y)*stride+x], img[(2*y+1)*stride+x]
						tmp[y*stride+x] = (a + b) * 0.5
						tmp[(half+y)*stride+x] = (a - b) * 0.5
					}
					for y := 0; y < h; y++ {
						img[y*stride+x] = tmp[y*stride+x]
					}
				}
			})
		},
	}
}

// DWT2D is Rodinia's 2-D discrete wavelet transform.
func DWT2D() *workloads.App {
	return &workloads.App{
		Name:      "DWT2D",
		PaperArgs: "rgb.bmp -d 1024x1024 -f -5 -l 100000",
		Char: workloads.Characteristics{
			Description: "repeated forward 5-level 2-D Haar wavelet transform",
		},
		KernelTables: singleTable(dwtModule, dwtTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "DWT2D", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(dwtModule, dwtTable())

				size := workloads.ScaleInt(256, cfg.EffScale(), 32) // image side
				reps := workloads.ScaleInt(1500, cfg.EffScale(), 10)
				const levels = 5

				px := size * size
				hImg := e.AppAlloc(uint64(4 * px))
				img := e.HostF32(hImg, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 3)
				for i := range img {
					img[i] = rng.Float32() * 255
				}
				dImg := e.Malloc(uint64(4 * px))
				dTmp := e.Malloc(uint64(4 * px))
				e.Memcpy(dImg, hImg, uint64(4*px), crt.MemcpyHostToDevice)

				for rep := 0; rep < reps; rep++ {
					w, h := size, size
					for lvl := 0; lvl < levels && w >= 2 && h >= 2; lvl++ {
						lc := workloads.Launch2D(w, h)
						e.Launch(dwtModule, "dwt_rows", lc, crt.DefaultStream,
							dImg, dTmp, uint64(w), uint64(h), uint64(size))
						e.Launch(dwtModule, "dwt_cols", lc, crt.DefaultStream,
							dImg, dTmp, uint64(w), uint64(h), uint64(size))
						w, h = w/2, h/2
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(rep); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hImg, dImg, uint64(4*px), crt.MemcpyDeviceToHost)
				out := e.HostF32(hImg, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range out {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
