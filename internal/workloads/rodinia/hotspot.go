package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const hotspotModule = "rodinia.hotspot"

// hotspotTable holds the Hotspot kernel: one step of the thermal
// simulation combining the power map with a 5-point diffusion stencil.
func hotspotTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: temp, power, out, w, h, capBits
		"hotspot_step": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[3]), int(args[4])
			cap := f32arg(args[5])
			temp := ctx.Float32s(args[0], w*h)
			power := ctx.Float32s(args[1], w*h)
			out := ctx.Float32s(args[2], w*h)
			par.For(h, 64, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					for x := 0; x < w; x++ {
						i := y*w + x
						c := temp[i]
						up, down, left, right := c, c, c, c
						if y > 0 {
							up = temp[i-w]
						}
						if y < h-1 {
							down = temp[i+w]
						}
						if x > 0 {
							left = temp[i-1]
						}
						if x < w-1 {
							right = temp[i+1]
						}
						out[i] = c + cap*(power[i]+(up+down+left+right-4*c)*0.25)
					}
				}
			})
		},
	}
}

// Hotspot is Rodinia's 2-D thermal simulation (512×512 in the paper).
func Hotspot() *workloads.App {
	return &workloads.App{
		Name:      "Hotspot",
		PaperArgs: "temp_512 power_512 output.out",
		Char: workloads.Characteristics{
			Description: "2-D transient thermal simulation (5-point stencil + power map)",
		},
		KernelTables: singleTable(hotspotModule, hotspotTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Hotspot", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(hotspotModule, hotspotTable())

				side := workloads.ScaleInt(512, cfg.EffScale(), 32)
				iters := workloads.ScaleInt(240, cfg.EffScale(), 10)
				px := side * side

				hTemp := e.AppAlloc(uint64(4 * px))
				hPower := e.AppAlloc(uint64(4 * px))
				tv := e.HostF32(hTemp, px)
				pw := e.HostF32(hPower, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 6)
				for i := range tv {
					tv[i] = 320 + 10*rng.Float32()
					pw[i] = rng.Float32() * 0.01
				}

				dTemp := e.Malloc(uint64(4 * px))
				dPower := e.Malloc(uint64(4 * px))
				dOut := e.Malloc(uint64(4 * px))
				e.Memcpy(dTemp, hTemp, uint64(4*px), crt.MemcpyHostToDevice)
				e.Memcpy(dPower, hPower, uint64(4*px), crt.MemcpyHostToDevice)

				lc := workloads.Launch2D(side, side)
				for it := 0; it < iters; it++ {
					e.Launch(hotspotModule, "hotspot_step", lc, crt.DefaultStream,
						dTemp, dPower, dOut, uint64(side), uint64(side), f32bits(0.5))
					dTemp, dOut = dOut, dTemp
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hTemp, dTemp, uint64(4*px), crt.MemcpyDeviceToHost)
				out := e.HostF32(hTemp, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range out {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
