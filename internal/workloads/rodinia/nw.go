package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const nwModule = "rodinia.nw"

// nwTable holds the Needleman-Wunsch kernel: the DP matrix is filled in
// anti-diagonal waves of tiles, one kernel launch per wave, as in
// Rodinia's needle.
func nwTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: score, ref, n, wave, tile, penalty
		// Processes every tile on the given anti-diagonal wave.
		"nw_wave": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			wave := int(args[3])
			tile := int(args[4])
			penalty := int32(args[5])
			score := ctx.Int32s(args[0], (n+1)*(n+1))
			ref := ctx.Int32s(args[1], n*n)
			tiles := n / tile
			// Tiles on this wave: (ti, tj) with ti+tj == wave.
			first := 0
			if wave >= tiles {
				first = wave - tiles + 1
			}
			last := wave
			if last >= tiles {
				last = tiles - 1
			}
			count := last - first + 1
			if count <= 0 {
				return
			}
			stride := n + 1
			par.For(count, 1, func(lo, hi int) {
				for t := lo; t < hi; t++ {
					ti := first + t
					tj := wave - ti
					for i := ti*tile + 1; i <= (ti+1)*tile; i++ {
						for j := tj*tile + 1; j <= (tj+1)*tile; j++ {
							match := score[(i-1)*stride+(j-1)] + ref[(i-1)*n+(j-1)]
							del := score[(i-1)*stride+j] - penalty
							ins := score[i*stride+(j-1)] - penalty
							best := match
							if del > best {
								best = del
							}
							if ins > best {
								best = ins
							}
							score[i*stride+j] = best
						}
					}
				}
			})
		},
	}
}

// NW is Rodinia's Needleman-Wunsch sequence alignment (40960 10 in the
// paper).
func NW() *workloads.App {
	return &workloads.App{
		Name:      "NW",
		PaperArgs: "40960 10",
		Char: workloads.Characteristics{
			Description: "Needleman-Wunsch alignment, anti-diagonal tile waves",
		},
		KernelTables: singleTable(nwModule, nwTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "NW", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(nwModule, nwTable())

				const tile = 16
				n := workloads.ScaleInt(2048, cfg.EffScale(), 4*tile)
				n = (n / tile) * tile
				const penalty = 10

				stride := n + 1
				hScore := e.AppAlloc(uint64(4 * stride * stride))
				hRef := e.AppAlloc(uint64(4 * n * n))
				sv := e.HostI32(hScore, stride*stride)
				rv := e.HostI32(hRef, n*n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 11)
				for i := range rv {
					rv[i] = int32(rng.Intn(21)) - 10 // BLOSUM-like scores
				}
				for i := 0; i <= n; i++ {
					sv[i] = int32(-i * penalty)
					sv[i*stride] = int32(-i * penalty)
				}

				dScore := e.Malloc(uint64(4 * stride * stride))
				dRef := e.Malloc(uint64(4 * n * n))
				e.Memcpy(dScore, hScore, uint64(4*stride*stride), crt.MemcpyHostToDevice)
				e.Memcpy(dRef, hRef, uint64(4*n*n), crt.MemcpyHostToDevice)

				tiles := n / tile
				waves := 2*tiles - 1
				for wv := 0; wv < waves; wv++ {
					e.Launch(nwModule, "nw_wave", workloads.Launch1D(tiles), crt.DefaultStream,
						dScore, dRef, uint64(n), uint64(wv), uint64(tile), uint64(penalty))
					if cfg.Hook != nil {
						if err := cfg.Hook(wv); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hScore, dScore, uint64(4*stride*stride), crt.MemcpyDeviceToHost)
				sv = e.HostI32(hScore, stride*stride)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				return float64(sv[n*stride+n]), nil, nil
			})
		},
	}
}
