package rodinia

import (
	"sync/atomic"

	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const bfsModule = "rodinia.bfs"

// bfsTable holds the BFS kernels: a level-synchronous step in pull
// (bottom-up) form — each unvisited vertex scans its in-neighbours for a
// frontier member. Unlike the original's push form (whose same-value
// writes to shared neighbours are benign on a GPU but undefined in Go's
// memory model), every vertex is written by exactly one worker, so the
// kernel is deterministic and race-free.
func bfsTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: offsets, edges, frontier, next, visited, cost, n, level, done
		"bfs_step": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[6])
			level := int32(args[7])
			offsets := ctx.Int32s(args[0], n+1)
			frontier := ctx.Int32s(args[2], n)
			visited := ctx.Int32s(args[4], n)
			cost := ctx.Int32s(args[5], n)
			edges := ctx.Int32s(args[1], int(offsets[n]))
			next := ctx.Int32s(args[3], n)
			done := ctx.Int32s(args[8], 1)
			var advanced atomic.Bool
			par.For(n, 1<<12, func(lo, hi int) {
				adv := false
				for v := lo; v < hi; v++ {
					if visited[v] != 0 {
						continue
					}
					for ei := offsets[v]; ei < offsets[v+1]; ei++ {
						if frontier[edges[ei]] != 0 {
							visited[v] = 1
							cost[v] = level
							next[v] = 1
							adv = true
							break
						}
					}
				}
				if adv {
					advanced.Store(true)
				}
			})
			if advanced.Load() {
				done[0] = 1
			}
		},
	}
}

// BFS is Rodinia's breadth-first search on a generated graph
// (graph1MW_6.txt in the paper: 1M nodes, average degree 6).
func BFS() *workloads.App {
	return &workloads.App{
		Name:      "BFS",
		PaperArgs: "graph1MW_6.txt",
		Char: workloads.Characteristics{
			Description: "level-synchronous breadth-first search",
		},
		KernelTables: singleTable(bfsModule, bfsTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "BFS", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(bfsModule, bfsTable())

				n := workloads.ScaleInt(400_000, cfg.EffScale(), 1024)
				const deg = 6
				// Build a random graph in host memory (CSR).
				hOff := e.AppAlloc(uint64(4 * (n + 1)))
				hEdges := e.AppAlloc(uint64(4 * n * deg))
				off := e.HostI32(hOff, n+1)
				edges := e.HostI32(hEdges, n*deg)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 1)
				for i := 0; i <= n; i++ {
					off[i] = int32(i * deg)
				}
				for i := range edges {
					edges[i] = int32(rng.Intn(n))
				}

				dOff := e.Malloc(uint64(4 * (n + 1)))
				dEdges := e.Malloc(uint64(4 * n * deg))
				dFrontier := e.Malloc(uint64(4 * n))
				dNext := e.Malloc(uint64(4 * n))
				dVisited := e.Malloc(uint64(4 * n))
				dCost := e.Malloc(uint64(4 * n))
				dDone := e.Malloc(4)
				hScratch := e.AppAlloc(uint64(4 * n))

				e.Memcpy(dOff, hOff, uint64(4*(n+1)), crt.MemcpyHostToDevice)
				e.Memcpy(dEdges, hEdges, uint64(4*n*deg), crt.MemcpyHostToDevice)
				e.Memset(dFrontier, 0, uint64(4*n))
				e.Memset(dNext, 0, uint64(4*n))
				e.Memset(dVisited, 0, uint64(4*n))
				e.Memset(dCost, 0, uint64(4*n))

				// Seed: node 0 in the frontier.
				seed := e.AppAlloc(8)
				sv := e.HostI32(seed, 1)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				sv[0] = 1
				e.Memcpy(dFrontier, seed, 4, crt.MemcpyHostToDevice)
				e.Memcpy(dVisited, seed, 4, crt.MemcpyHostToDevice)

				lc := workloads.Launch1D(n)
				hDone := e.AppAlloc(8)
				for level := int32(1); ; level++ {
					e.Memset(dDone, 0, 4)
					e.Launch(bfsModule, "bfs_step", lc, crt.DefaultStream,
						dOff, dEdges, dFrontier, dNext, dVisited, dCost, uint64(n), uint64(level), dDone)
					e.Memcpy(hDone, dDone, 4, crt.MemcpyDeviceToHost)
					dv := e.HostI32(hDone, 1)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					if cfg.Hook != nil {
						if err := cfg.Hook(int(level)); err != nil {
							return 0, nil, err
						}
					}
					if dv[0] == 0 {
						break
					}
					// Swap frontier and next; clear next.
					dFrontier, dNext = dNext, dFrontier
					e.Memset(dNext, 0, uint64(4*n))
				}

				e.Memcpy(hScratch, dCost, uint64(4*n), crt.MemcpyDeviceToHost)
				costs := e.HostI32(hScratch, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, c := range costs {
					sum += float64(c)
				}
				return sum, nil, nil
			})
		},
	}
}
