package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const particlefilterModule = "rodinia.particlefilter"

// particlefilterTable holds the particle-filter kernels: per video
// frame, propagate particles, compute likelihood weights against the
// observation, normalize, and resample — the four device stages of
// Rodinia's particlefilter.
func particlefilterTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: xs, ys, n, seed — random-walk propagation
		"propagate": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			seed := args[3]
			xs := ctx.Float32s(args[0], n)
			ys := ctx.Float32s(args[1], n)
			par.For(n, 1<<12, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := seed + uint64(i)*2654435761
					s = s*6364136223846793005 + 1442695040888963407
					dx := float32(int32(s>>33)%100) / 1000
					s = s*6364136223846793005 + 1442695040888963407
					dy := float32(int32(s>>33)%100) / 1000
					xs[i] += dx
					ys[i] += dy
				}
			})
		},
		// args: xs, ys, w, n, txBits, tyBits — Gaussian likelihood around target
		"likelihood": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[3])
			tx, ty := f32arg(args[4]), f32arg(args[5])
			xs := ctx.Float32s(args[0], n)
			ys := ctx.Float32s(args[1], n)
			w := ctx.Float32s(args[2], n)
			par.For(n, 1<<12, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dx := xs[i] - tx
					dy := ys[i] - ty
					d2 := dx*dx + dy*dy
					w[i] = 1 / (1 + d2)
				}
			})
		},
		// args: w, sum, n — weight normalization (sum precomputed by reduce)
		"normalize": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			w := ctx.Float32s(args[0], n)
			sum := ctx.Float32s(args[1], 1)
			s := sum[0]
			if s == 0 {
				s = 1
			}
			inv := 1 / s
			par.For(n, 1<<13, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					w[i] *= inv
				}
			})
		},
		// args: w, out, n — serial reduction into out[0]
		"wsum": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			w := ctx.Float32s(args[0], n)
			out := ctx.Float32s(args[1], 1)
			var s float64
			for i := 0; i < n; i++ {
				s += float64(w[i])
			}
			out[0] = float32(s)
		},
		// args: xs, ys, w, nxs, nys, n — systematic resampling
		"resample": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[5])
			xs := ctx.Float32s(args[0], n)
			ys := ctx.Float32s(args[1], n)
			w := ctx.Float32s(args[2], n)
			nxs := ctx.Float32s(args[3], n)
			nys := ctx.Float32s(args[4], n)
			// Cumulative distribution (serial, as the original's
			// find_index phase is effectively sequential).
			cdf := make([]float32, n)
			var acc float32
			for i := 0; i < n; i++ {
				acc += w[i]
				cdf[i] = acc
			}
			step := acc / float32(n)
			j := 0
			for i := 0; i < n; i++ {
				u := step * (float32(i) + 0.5)
				for j < n-1 && cdf[j] < u {
					j++
				}
				nxs[i] = xs[j]
				nys[i] = ys[j]
			}
		},
	}
}

// Particlefilter is Rodinia's particle filter (-x 128 -y 128 -z 10
// -np 100000 in the paper; Table 2 spells it "Particlefinder").
func Particlefilter() *workloads.App {
	return &workloads.App{
		Name:      "Particlefilter",
		PaperArgs: "-x 128 -y 128 -z 10 -np 100000",
		Char: workloads.Characteristics{
			Description: "particle filter: propagate/likelihood/normalize/resample per frame",
		},
		KernelTables: singleTable(particlefilterModule, particlefilterTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Particlefilter", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(particlefilterModule, particlefilterTable())

				n := workloads.ScaleInt(300_000, cfg.EffScale(), 1024)
				frames := workloads.ScaleInt(10, cfg.EffScale(), 3)

				alloc := func() uint64 { return e.Malloc(uint64(4 * n)) }
				dXs, dYs, dW := alloc(), alloc(), alloc()
				dNxs, dNys := alloc(), alloc()
				dSum := e.Malloc(4)
				hBuf := e.AppAlloc(uint64(4 * n))

				e.Memset(dXs, 0, uint64(4*n))
				e.Memset(dYs, 0, uint64(4*n))

				lc := workloads.Launch1D(n)
				one := crt.LaunchConfig{Grid: crt.Dim3{X: 1}, Block: crt.Dim3{X: 1}}
				for f := 0; f < frames; f++ {
					tx := float32(f) * 0.1
					ty := float32(f) * 0.05
					e.Launch(particlefilterModule, "propagate", lc, crt.DefaultStream,
						dXs, dYs, uint64(n), uint64(cfg.Seed)+uint64(f)*7919)
					e.Launch(particlefilterModule, "likelihood", lc, crt.DefaultStream,
						dXs, dYs, dW, uint64(n), f32bits(tx), f32bits(ty))
					e.Launch(particlefilterModule, "wsum", one, crt.DefaultStream, dW, dSum, uint64(n))
					e.Launch(particlefilterModule, "normalize", lc, crt.DefaultStream, dW, dSum, uint64(n))
					e.Launch(particlefilterModule, "resample", one, crt.DefaultStream,
						dXs, dYs, dW, dNxs, dNys, uint64(n))
					dXs, dNxs = dNxs, dXs
					dYs, dNys = dNys, dYs
					if cfg.Hook != nil {
						if err := cfg.Hook(f); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hBuf, dXs, uint64(4*n), crt.MemcpyDeviceToHost)
				xv := e.HostF32(hBuf, n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range xv {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
