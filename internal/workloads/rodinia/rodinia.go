// Package rodinia implements scaled-down but algorithmically faithful
// versions of the 14 Rodinia 3.1 benchmarks used in the paper's
// evaluation (Section 4.4.1, Table 2, Figures 2, 3 and 6): BFS, CFD,
// DWT2D, Gaussian, Heartwall, Hotspot, Hotspot3D, Kmeans, LUD,
// Leukocyte, NW, Particlefilter, SRAD, and Streamcluster.
//
// Each application runs the real algorithm on the simulated device with
// inputs generated deterministically, so output checksums are identical
// across native/CRAC/proxy runs — the property the checkpoint
// transparency tests rely on. Problem sizes default to laptop scale; the
// paper's command lines are recorded in each App's PaperArgs.
//
// Two of the applications (Heartwall and Streamcluster) perform many
// cudaMalloc/cudaFree calls per frame/chunk, reproducing the Figure 3
// outliers whose restart is slower than their checkpoint because CRAC
// must replay the whole allocation history (Section 4.4.1, "Checkpoint
// overhead").
package rodinia

import (
	"math"

	"repro/internal/workloads"
)

// f32bits packs a float32 into a kernel argument word.
func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }

// f32arg unpacks a float32 kernel argument word.
func f32arg(a uint64) float32 { return math.Float32frombits(uint32(a)) }

// Apps returns the 14 Rodinia applications in the paper's order.
func Apps() []*workloads.App {
	return []*workloads.App{
		BFS(), CFD(), DWT2D(), Gaussian(), Heartwall(), Hotspot(), Hotspot3D(),
		Kmeans(), LUD(), Leukocyte(), NW(), Particlefilter(), SRAD(), Streamcluster(),
	}
}

// AllApps additionally includes Myocyte, which the paper's Table 2
// configures but Figure 2 omits (it completes within a second).
func AllApps() []*workloads.App {
	return append(Apps(), Myocyte())
}

// ByName returns the app with the given (case-sensitive) name, or nil.
func ByName(name string) *workloads.App {
	for _, a := range AllApps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Tables aggregates every app's kernel tables for cross-process restore.
func Tables() map[string]map[string]workloads.Kernel {
	out := make(map[string]map[string]workloads.Kernel)
	for _, a := range AllApps() {
		for m, t := range a.KernelTables() {
			out[m] = t
		}
	}
	return out
}

// singleTable is a helper for apps with one module.
func singleTable(module string, table map[string]workloads.Kernel) func() map[string]map[string]workloads.Kernel {
	return func() map[string]map[string]workloads.Kernel {
		return map[string]map[string]workloads.Kernel{module: table}
	}
}
