package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const myocyteModule = "rodinia.myocyte"

// myocyteTable holds the Myocyte kernel: one explicit-Euler step of the
// cardiac myocyte ODE system, evaluated for many simulation instances in
// parallel — the structure of Rodinia's myocyte.
//
// Myocyte appears in the paper's Table 2 but not in Figure 2 (it
// completes within a second); it is included for Table 2 completeness
// and reachable through AllApps and the cracrun command.
func myocyteTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: state, nInstances, nEq, dtBits
		"euler_step": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			inst, neq := int(args[1]), int(args[2])
			dt := f32arg(args[3])
			state := ctx.Float32s(args[0], inst*neq)
			par.For(inst, 32, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := state[i*neq : (i+1)*neq]
					// A stiff, coupled nonlinear system standing in for
					// the 91-equation myocyte model.
					for j := 0; j < neq; j++ {
						prev := s[(j+neq-1)%neq]
						next := s[(j+1)%neq]
						ds := -s[j]*0.1 + 0.05*prev*next - 0.01*s[j]*s[j]*s[j]
						s[j] += dt * ds
					}
				}
			})
		},
	}
}

// Myocyte is Rodinia's cardiac myocyte simulation (500 1 0 in the
// paper's Table 2).
func Myocyte() *workloads.App {
	return &workloads.App{
		Name:      "Myocyte",
		PaperArgs: "500 1 0",
		Char: workloads.Characteristics{
			Description: "cardiac myocyte ODE integration (explicit Euler)",
		},
		KernelTables: singleTable(myocyteModule, myocyteTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Myocyte", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(myocyteModule, myocyteTable())

				instances := workloads.ScaleInt(1024, cfg.EffScale(), 32)
				steps := workloads.ScaleInt(500, cfg.EffScale(), 20)
				const neq = 32

				hState := e.AppAlloc(uint64(4 * instances * neq))
				sv := e.HostF32(hState, instances*neq)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 14)
				for i := range sv {
					sv[i] = rng.Float32()
				}
				dState := e.Malloc(uint64(4 * instances * neq))
				e.Memcpy(dState, hState, uint64(4*instances*neq), crt.MemcpyHostToDevice)

				lc := workloads.Launch1D(instances)
				for s := 0; s < steps; s++ {
					e.Launch(myocyteModule, "euler_step", lc, crt.DefaultStream,
						dState, uint64(instances), uint64(neq), f32bits(0.01))
					if cfg.Hook != nil {
						if err := cfg.Hook(s); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hState, dState, uint64(4*instances*neq), crt.MemcpyDeviceToHost)
				sv = e.HostF32(hState, instances*neq)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range sv {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
