package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const cfdModule = "rodinia.cfd"

// cfdTable holds the euler3d kernels: an unstructured-mesh compressible
// flow solver reduced to its structure — per-cell flux accumulation over
// neighbour cells followed by an explicit time step, iterated.
func cfdTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: vars, nbr, flux, n  (5 conserved variables, 4 neighbours)
		"compute_flux": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[3])
			vars := ctx.Float32s(args[0], 5*n)
			nbr := ctx.Int32s(args[1], 4*n)
			flux := ctx.Float32s(args[2], 5*n)
			par.For(n, 1<<11, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					for v := 0; v < 5; v++ {
						var f float32
						ci := vars[v*n+i]
						for k := 0; k < 4; k++ {
							j := nbr[4*i+k]
							f += vars[v*n+int(j)] - ci
						}
						flux[v*n+i] = f
					}
				}
			})
		},
		// args: vars, flux, n, dtBits
		"time_step": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n := int(args[2])
			dt := f32arg(args[3])
			vars := ctx.Float32s(args[0], 5*n)
			flux := ctx.Float32s(args[1], 5*n)
			par.For(5*n, 1<<13, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					vars[i] += dt * flux[i]
				}
			})
		},
	}
}

// CFD is Rodinia's euler3d (fvcorr.domn.193K in the paper: 193K-cell
// unstructured mesh).
func CFD() *workloads.App {
	return &workloads.App{
		Name:      "CFD",
		PaperArgs: "fvcorr.domn.193K",
		Char: workloads.Characteristics{
			Description: "unstructured-mesh Euler solver (euler3d)",
		},
		KernelTables: singleTable(cfdModule, cfdTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "CFD", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(cfdModule, cfdTable())

				n := workloads.ScaleInt(12_000, cfg.EffScale(), 256)
				iters := workloads.ScaleInt(900, cfg.EffScale(), 20)

				hVars := e.AppAlloc(uint64(4 * 5 * n))
				hNbr := e.AppAlloc(uint64(4 * 4 * n))
				vars := e.HostF32(hVars, 5*n)
				nbr := e.HostI32(hNbr, 4*n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 2)
				for i := range vars {
					vars[i] = 0.5 + rng.Float32()
				}
				for i := range nbr {
					nbr[i] = int32(rng.Intn(n))
				}

				dVars := e.Malloc(uint64(4 * 5 * n))
				dNbr := e.Malloc(uint64(4 * 4 * n))
				dFlux := e.Malloc(uint64(4 * 5 * n))
				e.Memcpy(dVars, hVars, uint64(4*5*n), crt.MemcpyHostToDevice)
				e.Memcpy(dNbr, hNbr, uint64(4*4*n), crt.MemcpyHostToDevice)

				lc := workloads.Launch1D(n)
				const dt = 1e-4
				for it := 0; it < iters; it++ {
					e.Launch(cfdModule, "compute_flux", lc, crt.DefaultStream, dVars, dNbr, dFlux, uint64(n))
					e.Launch(cfdModule, "time_step", lc, crt.DefaultStream, dVars, dFlux, uint64(n), f32bits(dt))
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
				}
				e.DeviceSync()
				e.Memcpy(hVars, dVars, uint64(4*5*n), crt.MemcpyDeviceToHost)
				out := e.HostF32(hVars, 5*n)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range out {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
