package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const sradModule = "rodinia.srad"

// sradTable holds the SRAD (speckle-reducing anisotropic diffusion)
// kernels: the two-phase structure of Rodinia's srad_v1 — compute
// diffusion coefficients, then apply the divergence update.
func sradTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: img, coef, w, h, q0Bits — diffusion coefficient
		"srad1": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			q0 := f32arg(args[4])
			img := ctx.Float32s(args[0], w*h)
			coef := ctx.Float32s(args[1], w*h)
			par.For(h, 64, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					for x := 0; x < w; x++ {
						i := y*w + x
						c := img[i]
						if c == 0 {
							coef[i] = 0
							continue
						}
						up, down, left, right := c, c, c, c
						if y > 0 {
							up = img[i-w]
						}
						if y < h-1 {
							down = img[i+w]
						}
						if x > 0 {
							left = img[i-1]
						}
						if x < w-1 {
							right = img[i+1]
						}
						dN, dS, dW, dE := up-c, down-c, left-c, right-c
						g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (c * c)
						l := (dN + dS + dW + dE) / c
						num := 0.5*g2 - 0.0625*l*l
						den := 1 + 0.25*l
						qsqr := num / (den * den)
						cd := 1 / (1 + (qsqr-q0)/(q0*(1+q0)))
						if cd < 0 {
							cd = 0
						} else if cd > 1 {
							cd = 1
						}
						coef[i] = cd
					}
				}
			})
		},
		// args: img, coef, w, h, lambdaBits — divergence update
		"srad2": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			w, h := int(args[2]), int(args[3])
			lambda := f32arg(args[4])
			img := ctx.Float32s(args[0], w*h)
			coef := ctx.Float32s(args[1], w*h)
			par.For(h, 64, func(lo, hi int) {
				for y := lo; y < hi; y++ {
					for x := 0; x < w; x++ {
						i := y*w + x
						c := img[i]
						cC := coef[i]
						cS, cE := cC, cC
						down, right := c, c
						if y < h-1 {
							cS = coef[i+w]
							down = img[i+w]
						}
						if x < w-1 {
							cE = coef[i+1]
							right = img[i+1]
						}
						div := cS*(down-c) + cE*(right-c)
						img[i] = c + 0.25*lambda*div
					}
				}
			})
		},
	}
}

// SRAD is Rodinia's speckle-reducing anisotropic diffusion
// (2048 2048 ... 0.5 1000 in the paper).
func SRAD() *workloads.App {
	return &workloads.App{
		Name:      "SRAD",
		PaperArgs: "2048 2048 0 127 0 127 0.5 1000",
		Char: workloads.Characteristics{
			Description: "speckle-reducing anisotropic diffusion (two kernels per iteration)",
		},
		KernelTables: singleTable(sradModule, sradTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "SRAD", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(sradModule, sradTable())

				side := workloads.ScaleInt(512, cfg.EffScale(), 32)
				iters := workloads.ScaleInt(120, cfg.EffScale(), 8)
				px := side * side
				const lambda = 0.5

				hImg := e.AppAlloc(uint64(4 * px))
				iv := e.HostF32(hImg, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				rng := workloads.NewLCG(cfg.Seed + 12)
				for i := range iv {
					iv[i] = 1 + rng.Float32() // speckled intensity
				}

				dImg := e.Malloc(uint64(4 * px))
				dCoef := e.Malloc(uint64(4 * px))
				e.Memcpy(dImg, hImg, uint64(4*px), crt.MemcpyHostToDevice)

				lc := workloads.Launch2D(side, side)
				for it := 0; it < iters; it++ {
					e.Launch(sradModule, "srad1", lc, crt.DefaultStream,
						dImg, dCoef, uint64(side), uint64(side), f32bits(0.05))
					e.Launch(sradModule, "srad2", lc, crt.DefaultStream,
						dImg, dCoef, uint64(side), uint64(side), f32bits(lambda))
					if cfg.Hook != nil {
						if err := cfg.Hook(it); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				e.DeviceSync()
				e.Memcpy(hImg, dImg, uint64(4*px), crt.MemcpyDeviceToHost)
				out := e.HostF32(hImg, px)
				if e.Err() != nil {
					return 0, nil, e.Err()
				}
				var sum float64
				for _, v := range out {
					sum += float64(v)
				}
				return sum, nil, nil
			})
		},
	}
}
