package rodinia

import "testing"

func TestRegistry(t *testing.T) {
	apps := Apps()
	if len(apps) != 14 {
		t.Fatalf("Figure 2 suite has %d apps, want 14", len(apps))
	}
	if len(AllApps()) != 15 {
		t.Fatalf("AllApps (with Myocyte) = %d, want 15", len(AllApps()))
	}
	seen := map[string]bool{}
	for _, a := range AllApps() {
		if a.Name == "" || a.PaperArgs == "" || a.Char.Description == "" {
			t.Fatalf("app %+v incomplete", a.Name)
		}
		if a.Run == nil || a.KernelTables == nil {
			t.Fatalf("app %s missing Run/KernelTables", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
	}
	if ByName("Hotspot") == nil || ByName("Myocyte") == nil {
		t.Fatal("ByName lookups failed")
	}
	if ByName("bogus") != nil {
		t.Fatal("ByName returned a bogus app")
	}
}

func TestTablesAggregated(t *testing.T) {
	tables := Tables()
	if len(tables) != 15 {
		t.Fatalf("aggregated modules = %d, want 15 (one per app)", len(tables))
	}
	for mod, funcs := range tables {
		if len(funcs) == 0 {
			t.Fatalf("module %s has no kernels", mod)
		}
	}
}

func TestF32Helpers(t *testing.T) {
	if f32arg(f32bits(1.25)) != 1.25 {
		t.Fatal("f32 round trip")
	}
}
