package rodinia

import (
	"repro/internal/crt"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/par"
	"repro/internal/workloads"
)

const streamclusterModule = "rodinia.streamcluster"

// streamclusterTable holds the Streamcluster kernel: the pgain gather —
// for each point, the cost delta of opening a candidate median. The host
// drives the streaming structure, allocating fresh device buffers per
// chunk (Streamcluster is the second Figure 3 outlier whose restart
// replay of cudaMalloc/cudaFree history dominates, Section 4.4.1).
func streamclusterTable() map[string]workloads.Kernel {
	return map[string]workloads.Kernel{
		// args: pts, centers, cost, n, d, centerIdx
		"pgain": func(ctx *cuda.DevCtx, _ gpusim.LaunchConfig, args []uint64) {
			n, d := int(args[3]), int(args[4])
			ci := int(args[5])
			pts := ctx.Float32s(args[0], n*d)
			centers := ctx.Float32s(args[1], n*d)
			cost := ctx.Float32s(args[2], n)
			cand := centers[ci*d : (ci+1)*d]
			par.For(n, 1<<10, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					pi := pts[i*d : (i+1)*d]
					var dist float32
					for j := 0; j < d; j++ {
						diff := pi[j] - cand[j]
						dist += diff * diff
					}
					if dist < cost[i] {
						cost[i] = dist
					}
				}
			})
		},
	}
}

// Streamcluster is Rodinia's streaming k-median clustering
// (10 20 256 65536 ... in the paper).
func Streamcluster() *workloads.App {
	return &workloads.App{
		Name:      "Streamcluster",
		PaperArgs: "10 20 256 65536 65536 1000 none output.txt 1",
		Char: workloads.Characteristics{
			Description: "streaming k-median; per-chunk cudaMalloc/cudaFree churn",
		},
		KernelTables: singleTable(streamclusterModule, streamclusterTable()),
		Run: func(rt crt.Runtime, cfg workloads.RunConfig) (workloads.Result, error) {
			return workloads.Measure(rt, "Streamcluster", func() (float64, map[string]float64, error) {
				e := workloads.NewEnv(rt)
				e.RegisterModule(streamclusterModule, streamclusterTable())

				chunkN := workloads.ScaleInt(2048, cfg.EffScale(), 128)
				chunks := workloads.ScaleInt(150, cfg.EffScale(), 4)
				medians := 8
				const d = 24

				hPts := e.AppAlloc(uint64(4 * chunkN * d))
				hCost := e.AppAlloc(uint64(4 * chunkN))
				rng := workloads.NewLCG(cfg.Seed + 13)

				var sum float64
				for c := 0; c < chunks; c++ {
					pv := e.HostF32(hPts, chunkN*d)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for i := range pv {
						pv[i] = rng.Float32()
					}
					// The streaming structure: fresh device buffers per chunk.
					dPts := e.Malloc(uint64(4 * chunkN * d))
					dCenters := e.Malloc(uint64(4 * chunkN * d))
					dCost := e.Malloc(uint64(4 * chunkN))
					dScratch := e.Malloc(uint64(4 * chunkN))
					dWork := e.Malloc(uint64(4 * chunkN))
					dAssign := e.Malloc(uint64(4 * chunkN))
					e.Memcpy(dPts, hPts, uint64(4*chunkN*d), crt.MemcpyHostToDevice)
					e.Memcpy(dCenters, dPts, uint64(4*chunkN*d), crt.MemcpyDeviceToDevice)
					// cost = +inf
					e.Memset(dCost, 0x7f, uint64(4*chunkN))

					lc := workloads.Launch1D(chunkN)
					for m := 0; m < medians; m++ {
						e.Launch(streamclusterModule, "pgain", lc, crt.DefaultStream,
							dPts, dCenters, dCost, uint64(chunkN), uint64(d), uint64(m*7%chunkN))
					}
					e.Memcpy(hCost, dCost, uint64(4*chunkN), crt.MemcpyDeviceToHost)
					cv := e.HostF32(hCost, chunkN)
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
					for _, v := range cv {
						sum += float64(v)
					}
					e.Free(dAssign)
					e.Free(dWork)
					e.Free(dScratch)
					e.Free(dCost)
					e.Free(dCenters)
					e.Free(dPts)
					if cfg.Hook != nil {
						if err := cfg.Hook(c); err != nil {
							return 0, nil, err
						}
					}
					if e.Err() != nil {
						return 0, nil, e.Err()
					}
				}
				return sum, nil, nil
			})
		},
	}
}
